// Quickstart: build an E2-NVM key-value store, load it, and watch the
// bit-flip/energy savings of memory-aware placement.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The store stack (Fig 3 of the paper): a DRAM red-black-tree index, an
// NVM device simulator behind a memory controller (DCW differential
// writes), and the VAE+K-means placement engine with its
// cluster-to-address pool between them.

#include <cstdio>

#include "core/store.h"
#include "workload/datasets.h"

using e2nvm::core::E2KvStore;
using e2nvm::core::StoreConfig;

int main() {
  // 1. Configure: 256 segments of 256 bytes, an 8-cluster model.
  StoreConfig cfg;
  cfg.num_segments = 256;
  cfg.segment_bits = 2048;
  cfg.model.k = 8;
  cfg.model.hidden_dim = 64;
  cfg.model.latent_dim = 10;
  cfg.model.pretrain_epochs = 6;

  auto store = E2KvStore::Create(cfg);
  if (!store.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  // 2. Seed the device with "old data" and train the placement model on
  //    it (the paper's initialization phase).
  auto dataset = e2nvm::workload::MakeMixedRealDataset(400, 2048, 42);
  (*store)->Seed(dataset);
  if (e2nvm::Status s = (*store)->Bootstrap(); !s.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("model trained: %zu clusters over %zu segments\n",
              (*store)->model().config().k, cfg.num_segments);

  // 3. PUT / GET / UPDATE / DELETE / SCAN. Written values are *updated
  //    versions* of the resident data (a few percent of bits changed), as
  //    in a live store.
  e2nvm::Rng update_rng(7);
  for (uint64_t key = 0; key < 100; ++key) {
    e2nvm::BitVector value = dataset.items[key % dataset.items.size()];
    value.FlipRandomBits(value.size() / 32, update_rng);
    if (e2nvm::Status s = (*store)->Put(key, value); !s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  auto value = (*store)->Get(17);
  std::printf("GET 17 -> %zu bits (ok=%d)\n",
              value.ok() ? value->size() : 0, value.ok());

  (void)(*store)->Put(17, dataset.items[200]);  // UPDATE: re-placed.
  (void)(*store)->Delete(3);                    // DELETE: recycled.
  auto range = (*store)->Scan(10, 5);
  std::printf("SCAN from 10: ");
  for (auto& [k, v] : range) std::printf("%llu ",
                                         (unsigned long long)k);
  std::printf("\n");

  // 4. Inspect the savings.
  const auto& stats = (*store)->device().stats();
  std::printf("\n--- device counters ---\n");
  std::printf("writes:               %llu\n",
              (unsigned long long)stats.writes);
  std::printf("bits flipped / write: %.1f (of %zu bits/segment)\n",
              stats.FlipsPerWrite(), cfg.segment_bits);
  std::printf("dirty cache lines:    %llu\n",
              (unsigned long long)stats.dirty_lines);
  auto& meter = (*store)->meter();
  std::printf("energy: write=%.2f uJ, read=%.2f uJ, model(CPU)=%.2f uJ\n",
              meter.DomainPj(e2nvm::nvm::EnergyDomain::kPmemWrite) * 1e-6,
              meter.DomainPj(e2nvm::nvm::EnergyDomain::kPmemRead) * 1e-6,
              meter.DomainPj(e2nvm::nvm::EnergyDomain::kCpuModel) * 1e-6);
  std::printf("free addresses remaining in the pool: %zu\n",
              (*store)->engine().pool().TotalFree());
  return 0;
}
