// Scenario example: a CCTV video archive on NVM — the motivating
// low-power use case from the paper's introduction (IoT / surveillance
// devices on batteries).
//
// Stores a stream of (synthetic) camera frames twice: once with arbitrary
// first-free placement, once through the E2-NVM engine, and compares bit
// flips, energy, and estimated device lifetime. Because consecutive
// frames of the same scene are nearly identical, content-aware placement
// routes each new frame onto a segment holding a similar old frame.

#include <cstdio>

#include "core/e2_model.h"
#include "core/placement_engine.h"
#include "index/value_placer.h"
#include "nvm/controller.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace {

constexpr size_t kSegments = 256;
constexpr size_t kFrameBits = 2048;  // 256-byte frame tiles.
constexpr size_t kFrames = 600;

struct Archive {
  Archive() {
    e2nvm::nvm::DeviceConfig dc;
    dc.num_segments = kSegments;
    dc.segment_bits = kFrameBits;
    dc.track_bit_wear = true;
    device = std::make_unique<e2nvm::nvm::NvmDevice>(dc);
    ctrl = std::make_unique<e2nvm::nvm::MemoryController>(
        device.get(), &dcw, kSegments, 0);
  }
  e2nvm::schemes::Dcw dcw;
  std::unique_ptr<e2nvm::nvm::NvmDevice> device;
  std::unique_ptr<e2nvm::nvm::MemoryController> ctrl;
};

void Report(const char* label, Archive& a, uint64_t frames) {
  const auto& st = a.device->stats();
  std::printf("%12s: %6.1f flips/frame, %8.2f uJ, max cell wear %llu\n",
              label, st.FlipsPerWrite(),
              a.device->meter().TotalPj() * 1e-6,
              (unsigned long long)a.device->MaxCellWear());
}

}  // namespace

int main() {
  auto video = e2nvm::workload::MakeVideoDataset(
      {.name = "cctv", .dim = kFrameBits, .frames = kSegments + kFrames,
       .frame_noise = 0.005, .scene_len = 80, .scene_change = 0.2,
       .seed = 7});

  // Both archives start with the same "old footage" on the device.
  Archive naive_archive, smart_archive;
  for (size_t i = 0; i < kSegments; ++i) {
    naive_archive.ctrl->Seed(i, video.items[i]);
    smart_archive.ctrl->Seed(i, video.items[i]);
  }

  // Arbitrary placement: frames land wherever a slot is free.
  e2nvm::index::ArbitraryPlacer first_free(naive_archive.ctrl.get(), 0,
                                           kSegments);
  // E2-NVM placement: VAE+K-means routes frames to similar old frames.
  e2nvm::core::E2ModelConfig mc;
  mc.input_dim = kFrameBits;
  mc.k = 8;
  mc.hidden_dim = 64;
  mc.latent_dim = 10;
  mc.pretrain_epochs = 6;
  e2nvm::core::E2Model model(mc);
  e2nvm::core::PlacementEngine::Config ec;
  ec.first_segment = 0;
  ec.num_segments = kSegments;
  e2nvm::core::PlacementEngine engine(smart_archive.ctrl.get(), &model,
                                      ec);
  if (e2nvm::Status s = engine.Bootstrap(); !s.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", s.ToString().c_str());
    return 1;
  }

  // Ring-buffer recording: every new frame overwrites the oldest slot
  // (naive) or whatever slot E2-NVM recommends (smart), with the
  // displaced slot recycled.
  std::printf("recording %zu frames of %zu bits...\n\n", kFrames,
              kFrameBits);
  std::vector<uint64_t> smart_ring;
  for (size_t f = 0; f < kFrames; ++f) {
    const auto& frame = video.items[kSegments + f];
    // Naive: fixed ring buffer position.
    if (first_free.FreeCount() == 0) {
      (void)first_free.Release(f % kSegments);
    }
    (void)first_free.Place(frame);
    // Smart: place, and recycle the oldest recorded frame.
    auto addr = engine.Place(frame);
    if (addr.ok()) smart_ring.push_back(*addr);
    if (smart_ring.size() > 32) {
      (void)engine.Release(smart_ring.front());
      smart_ring.erase(smart_ring.begin());
    }
  }

  Report("first-free", naive_archive, kFrames);
  Report("E2-NVM", smart_archive, kFrames);

  double naive_flips =
      static_cast<double>(naive_archive.device->stats()
                              .total_bits_flipped());
  double smart_flips =
      static_cast<double>(smart_archive.device->stats()
                              .total_bits_flipped());
  std::printf("\nbit flips saved by memory-aware placement: %.1f%%\n",
              100.0 * (1.0 - smart_flips / naive_flips));
  std::printf("(fewer flips = lower energy and proportionally longer "
              "PCM lifetime at 1e8 writes/cell)\n");
  return 0;
}
