// Walkthrough of the paper's Table 1 / Figure 5 padding example: a PCM
// with 12 memory segments grouped into 3 clusters, and an incoming 4-bit
// item d1 = [0,0,0,1] that must be padded to the model's 8-bit input.
// Prints the padded output of every strategy at every position, plus the
// cluster each lands in.

#include <cstdio>
#include <string>

#include "core/padding.h"
#include "ml/kmeans.h"
#include "ml/lstm.h"

using e2nvm::BitVector;
using e2nvm::core::Padder;
using e2nvm::core::PaddingContext;
using e2nvm::core::PadLocation;
using e2nvm::core::PadType;

int main() {
  // Table 1: 12 segments of 8 bits in 3 clusters.
  const char* contents[12] = {
      "00111101", "00101100", "00111100", "00111000",  // Cluster 0
      "10001011", "00001011", "00001111", "00001010",  // Cluster 1
      "10110000", "01110010", "11110000", "11010000",  // Cluster 2
  };
  std::printf("Table 1 memory pool:\n");
  for (int i = 0; i < 12; ++i) {
    std::printf("  segment %2d: [%s] (cluster %d)\n", i, contents[i],
                i / 4);
  }

  // Cluster the pool (multi-restart K-means, as E2-NVM would).
  e2nvm::ml::Matrix x(12, 8);
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      x(i, j) = contents[i][j] == '1' ? 1.0f : 0.0f;
    }
  }
  std::unique_ptr<e2nvm::ml::KMeans> km;
  double best_sse = 1e300;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto cand = std::make_unique<e2nvm::ml::KMeans>(
        e2nvm::ml::KMeansConfig{.k = 3, .max_iters = 100, .seed = seed});
    if (!cand->Fit(x).ok()) return 1;
    double sse = cand->Sse(x);
    if (sse < best_sse) {
      best_sse = sse;
      km = std::move(cand);
    }
  }

  // Train the learned-padding LSTM on the pool contents (7 bits -> 8th),
  // the toy from §4.1.3.
  e2nvm::ml::LstmConfig lc;
  lc.input_size = 7;
  lc.timesteps = 1;
  lc.hidden_size = 10;
  lc.output_size = 1;
  e2nvm::ml::Lstm lstm(lc);
  {
    e2nvm::ml::Matrix lx(12, 7), ly(12, 1);
    for (size_t i = 0; i < 12; ++i) {
      for (size_t j = 0; j < 7; ++j) {
        lx(i, j) = contents[i][j] == '1' ? 1.0f : 0.0f;
      }
      ly(i, 0) = contents[i][7] == '1' ? 1.0f : 0.0f;
    }
    lstm.Train(lx, ly, 200, 12);
  }

  BitVector d1 = BitVector::FromString("0001");
  std::printf("\nincoming item d1 = [%s], model input width = 8\n\n",
              d1.ToString().c_str());
  std::printf("%8s %8s %12s %8s\n", "loc", "type", "padded", "cluster");

  e2nvm::Rng rng(9);
  for (auto loc :
       {PadLocation::kBegin, PadLocation::kMiddle, PadLocation::kEnd}) {
    for (auto type : {PadType::kZero, PadType::kOne, PadType::kRandom,
                      PadType::kInputBased, PadType::kDatasetBased,
                      PadType::kMemoryBased, PadType::kLearned}) {
      Padder padder(type, loc, 8);
      PaddingContext ctx;
      ctx.rng = &rng;
      ctx.lstm = &lstm;
      // Dataset/memory densities from the Table 1 pool itself.
      size_t ones = 0;
      for (const char* c : contents) {
        for (const char* p = c; *p != '\0'; ++p) ones += (*p == '1');
      }
      ctx.dataset_ones_ratio = static_cast<double>(ones) / 96.0;
      ctx.memory_ones_ratio = ctx.dataset_ones_ratio;

      auto padded = padder.Pad(d1, ctx);
      if (!padded.ok()) {
        std::printf("%8s %8s %12s %8s\n",
                    std::string(PadLocationName(loc)).c_str(),
                    std::string(PadTypeName(type)).c_str(), "-", "-");
        continue;
      }
      auto feats = padded->ToFloats();
      size_t cluster = km->Predict(feats.data(), feats.size());
      std::printf("%8s %8s %12s %8zu\n",
                  std::string(PadLocationName(loc)).c_str(),
                  std::string(PadTypeName(type)).c_str(),
                  padded->ToString().c_str(), cluster);
    }
  }
  std::printf("\n(compare with the paper's Figure 5 grid — the padded "
              "layouts match; predicted clusters depend on the K-means "
              "fit of Table 1)\n");
  return 0;
}
