// Scenario example: plugging an existing NVM data structure into E2-NVM
// (the Fig 12 workflow). A B+-Tree with sorted, value-inline leaves is
// run natively, then re-run with its values delegated to the E2-NVM
// placement engine; the example prints the bit-update reduction.

#include <cstdio>

#include "core/e2_model.h"
#include "core/placement_engine.h"
#include "index/bptree.h"
#include "index/placed_index.h"
#include "nvm/controller.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"
#include "workload/ycsb.h"

namespace {
constexpr size_t kBits = 512;
constexpr size_t kKeys = 150;
constexpr size_t kOps = 600;
}  // namespace

/// Zipfian insert/update/delete churn against any index.
static double Churn(e2nvm::index::NvmKvIndex& idx,
                    e2nvm::nvm::NvmDevice& device,
                    const e2nvm::workload::BitDataset& values) {
  e2nvm::Rng rng(5);
  e2nvm::ZipfianGenerator zipf(kKeys, 0.9);
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (!idx.Put(k, values.items[k]).ok()) return -1;
  }
  device.ResetStats();
  uint64_t user_bits = 0;
  for (size_t op = 0; op < kOps; ++op) {
    uint64_t key = zipf.Next(rng);
    if (rng.NextDouble() < 0.1) {
      (void)idx.Delete(key);
    } else {
      size_t vi = (key * 31 + op) % values.items.size();
      if (!idx.Put(key, values.items[vi]).ok()) return -1;
      user_bits += kBits;
    }
  }
  return static_cast<double>(device.stats().total_bits_flipped()) /
         static_cast<double>(user_bits);
}

int main() {
  e2nvm::workload::ProtoConfig pc;
  pc.dim = kBits;
  pc.num_classes = 8;
  pc.samples = 1200;
  pc.noise = 0.04;
  pc.seed = 3;
  auto values = e2nvm::workload::MakeProtoDataset(pc);

  // --- Native B+-Tree: values inline in sorted NVM leaves. ---
  double native_ratio;
  {
    e2nvm::nvm::DeviceConfig dc;
    dc.num_segments = 4096;
    dc.segment_bits = kBits;
    e2nvm::nvm::NvmDevice device(dc);
    e2nvm::schemes::Dcw dcw;
    e2nvm::nvm::MemoryController ctrl(&device, &dcw, 4096, 0);
    e2nvm::index::BpTreeKv bptree(
        &ctrl, {.leaf_capacity = 16, .value_bits = kBits});
    native_ratio = Churn(bptree, device, values);
    std::printf("native B+Tree:   %.4f bit updates per written data bit\n",
                native_ratio);
  }

  // --- The same tree plugged into E2-NVM. ---
  double plugged_ratio;
  {
    e2nvm::nvm::DeviceConfig dc;
    dc.num_segments = 256;
    dc.segment_bits = kBits;
    e2nvm::nvm::NvmDevice device(dc);
    e2nvm::schemes::Dcw dcw;
    e2nvm::nvm::MemoryController ctrl(&device, &dcw, 256, 0);
    for (size_t i = 0; i < 256; ++i) {
      ctrl.Seed(i, values.items[i % values.items.size()]);
    }
    e2nvm::core::E2ModelConfig mc;
    mc.input_dim = kBits;
    mc.k = 8;
    mc.pretrain_epochs = 6;
    e2nvm::core::E2Model model(mc);
    e2nvm::core::PlacementEngine::Config ec;
    ec.first_segment = 0;
    ec.num_segments = 256;
    e2nvm::core::PlacementEngine engine(&ctrl, &model, ec);
    if (!engine.Bootstrap().ok()) return 1;
    e2nvm::index::PlacedKvIndex plugged("B+Tree+E2-NVM", &engine);
    plugged_ratio = Churn(plugged, device, values);
    std::printf("B+Tree + E2-NVM: %.4f bit updates per written data bit\n",
                plugged_ratio);
  }

  std::printf("\nreduction from plugging into E2-NVM: %.1f%% "
              "(paper Fig 12 reports up to 91%%)\n",
              100.0 * (1.0 - plugged_ratio / native_ratio));
  return 0;
}
