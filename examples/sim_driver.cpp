// Configurable experiment driver — run custom E2-NVM simulations from
// the command line without writing code:
//
//   ./build/examples/sim_driver --segments 256 --segment-bytes 256 \
//       --clusters 8 --dataset mnist --writes 500 --scheme DCW --psi 0 \
//       --placement e2
//
// Placements: e2 (VAE+K-means), pnw (raw K-means), pca (PCA+K-means),
//             datacon (polarity buckets), arbitrary (first-free).
// Datasets:   mnist, fashion, cifar, video, access, road, pubmed, mixed.
// Schemes:    Naive, DCW, FNW, MinShift, Captopril, FMR.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/e2_model.h"
#include "core/placement_engine.h"
#include "index/value_placer.h"
#include "nvm/controller.h"
#include "placement/clusterer.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace {

struct Options {
  size_t segments = 256;
  size_t segment_bytes = 256;
  size_t clusters = 8;
  std::string dataset = "mnist";
  std::string scheme = "DCW";
  std::string placement = "e2";
  size_t writes = 500;
  uint64_t psi = 0;
  uint64_t seed = 42;
  double delete_fraction = 0.95;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--segments N] [--segment-bytes N] [--clusters K]\n"
      "          [--dataset mnist|fashion|cifar|video|access|road|pubmed|"
      "mixed]\n"
      "          [--scheme Naive|DCW|FNW|MinShift|Captopril|FMR]\n"
      "          [--placement e2|pnw|pca|datacon|arbitrary]\n"
      "          [--writes N] [--psi N] [--seed N] [--deletes F]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--segments" && (v = next())) {
      opt->segments = std::strtoull(v, nullptr, 10);
    } else if (flag == "--segment-bytes" && (v = next())) {
      opt->segment_bytes = std::strtoull(v, nullptr, 10);
    } else if (flag == "--clusters" && (v = next())) {
      opt->clusters = std::strtoull(v, nullptr, 10);
    } else if (flag == "--dataset" && (v = next())) {
      opt->dataset = v;
    } else if (flag == "--scheme" && (v = next())) {
      opt->scheme = v;
    } else if (flag == "--placement" && (v = next())) {
      opt->placement = v;
    } else if (flag == "--writes" && (v = next())) {
      opt->writes = std::strtoull(v, nullptr, 10);
    } else if (flag == "--psi" && (v = next())) {
      opt->psi = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed" && (v = next())) {
      opt->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--deletes" && (v = next())) {
      opt->delete_fraction = std::strtod(v, nullptr);
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

e2nvm::workload::BitDataset MakeData(const Options& opt, size_t n,
                                     size_t dim) {
  using namespace e2nvm::workload;
  BitDataset ds;
  if (opt.dataset == "mnist") {
    ds = MakeMnistLike(n, opt.seed);
  } else if (opt.dataset == "fashion") {
    ds = MakeFashionLike(n, opt.seed);
  } else if (opt.dataset == "cifar") {
    ds = MakeCifarLike(n, opt.seed);
  } else if (opt.dataset == "video") {
    ds = MakeStructuredVideoDataset({.side = 28, .frames = n,
                                     .seed = opt.seed});
  } else if (opt.dataset == "access") {
    ds = MakeAccessLogDataset(n, 256, opt.seed);
  } else if (opt.dataset == "road") {
    ds = MakeRoadNetworkDataset(n, 192, opt.seed);
  } else if (opt.dataset == "pubmed") {
    ds = MakePubMedLike(n, dim, 8, opt.seed);
  } else {
    ds = MakeMixedRealDataset(n, dim, opt.seed);
  }
  return ResizeItems(ds, dim);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;
  const size_t dim = opt.segment_bytes * 8;

  auto scheme = e2nvm::schemes::MakeScheme(opt.scheme);
  if (scheme == nullptr) {
    std::fprintf(stderr, "unknown scheme '%s'\n", opt.scheme.c_str());
    return 2;
  }

  e2nvm::nvm::DeviceConfig dc;
  dc.num_segments = opt.segments + (opt.psi > 0 ? 1 : 0);
  dc.segment_bits = dim;
  dc.track_bit_wear = true;
  e2nvm::nvm::NvmDevice device(dc);
  e2nvm::nvm::MemoryController ctrl(&device, scheme.get(), opt.segments,
                                    opt.psi);

  auto seed_data = MakeData(opt, opt.segments, dim);
  for (size_t i = 0; i < opt.segments; ++i) {
    ctrl.Seed(i, seed_data.items[i % seed_data.items.size()]);
  }

  // Placement policy.
  std::unique_ptr<e2nvm::placement::ContentClusterer> clusterer;
  std::unique_ptr<e2nvm::core::E2Model> e2_model;
  if (opt.placement == "e2") {
    e2nvm::core::E2ModelConfig mc;
    mc.input_dim = dim;
    mc.k = opt.clusters;
    mc.seed = opt.seed;
    e2_model = std::make_unique<e2nvm::core::E2Model>(mc);
  } else if (opt.placement == "pnw") {
    clusterer = std::make_unique<e2nvm::placement::RawKMeansClusterer>(
        opt.clusters, opt.seed);
  } else if (opt.placement == "pca") {
    clusterer = std::make_unique<e2nvm::placement::PcaKMeansClusterer>(
        opt.clusters, 10, opt.seed);
  } else if (opt.placement == "datacon") {
    clusterer = std::make_unique<e2nvm::placement::DensityClusterer>(
        opt.clusters);
  } else if (opt.placement != "arbitrary") {
    std::fprintf(stderr, "unknown placement '%s'\n",
                 opt.placement.c_str());
    return 2;
  }

  std::unique_ptr<e2nvm::index::ValuePlacer> placer;
  std::unique_ptr<e2nvm::core::PlacementEngine> engine;
  if (opt.placement == "arbitrary") {
    placer = std::make_unique<e2nvm::index::ArbitraryPlacer>(
        &ctrl, 0, opt.segments);
  } else {
    e2nvm::core::PlacementEngine::Config ec;
    ec.first_segment = 0;
    ec.num_segments = opt.segments;
    engine = std::make_unique<e2nvm::core::PlacementEngine>(
        &ctrl, e2_model ? static_cast<e2nvm::placement::ContentClusterer*>(
                              e2_model.get())
                        : clusterer.get(),
        ec);
    if (e2nvm::Status s = engine->Bootstrap(); !s.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  e2nvm::index::ValuePlacer& sink =
      engine ? static_cast<e2nvm::index::ValuePlacer&>(*engine) : *placer;

  // Write stream with recycling.
  auto stream = MakeData(opt, opt.writes, dim);
  e2nvm::Rng rng(opt.seed ^ 0xD1CEull);
  std::vector<uint64_t> live;
  device.ResetStats();
  for (const auto& item : stream.items) {
    auto addr = sink.Place(item);
    if (!addr.ok()) {
      std::fprintf(stderr, "placement stopped: %s\n",
                   addr.status().ToString().c_str());
      break;
    }
    live.push_back(*addr);
    if (!live.empty() && rng.NextDouble() < opt.delete_fraction) {
      size_t idx = rng.NextBounded(live.size());
      (void)sink.Release(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }

  const auto& st = device.stats();
  std::printf("--- sim_driver results ---\n");
  std::printf("dataset=%s scheme=%s placement=%s segments=%zu x %zuB "
              "k=%zu psi=%llu\n",
              opt.dataset.c_str(), opt.scheme.c_str(),
              opt.placement.c_str(), opt.segments, opt.segment_bytes,
              opt.clusters, (unsigned long long)opt.psi);
  std::printf("device writes:        %llu\n",
              (unsigned long long)st.writes);
  std::printf("flips per write:      %.1f\n", st.FlipsPerWrite());
  std::printf("flips per data bit:   %.4f\n", st.FlipsPerDataBit());
  std::printf("dirty lines:          %llu\n",
              (unsigned long long)st.dirty_lines);
  std::printf("energy (uJ):          %.2f (write %.2f, model %.2f)\n",
              device.meter().TotalPj() * 1e-6,
              device.meter().DomainPj(
                  e2nvm::nvm::EnergyDomain::kPmemWrite) * 1e-6,
              device.meter().DomainPj(
                  e2nvm::nvm::EnergyDomain::kCpuModel) * 1e-6);
  std::printf("simulated time (ms):  %.3f\n",
              device.meter().now_ns() * 1e-6);
  std::printf("max cell wear:        %llu (lifetime consumed %.2e)\n",
              (unsigned long long)device.MaxCellWear(),
              device.LifetimeConsumed());
  return 0;
}
