// Scenario example: an IoT sensor log on battery-powered NVM — the other
// deployment the paper's introduction motivates (energy-harvesting /
// battery devices with low-power PCM).
//
// Sensors emit tiny readings (a 96-bit GPS/altitude record). Writing each
// reading to its own 256-byte segment wastes both energy (a whole-segment
// write request per reading) and DAP space; the paper's §4.1.4 batching
// groups readings into segment-sized writes placed by E2-NVM. This
// example runs both modes and prints the energy per reading.

#include <cstdio>

#include "core/batch.h"
#include "core/e2_model.h"
#include "core/placement_engine.h"
#include "nvm/controller.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace {
constexpr size_t kSegBits = 2048;  // 256-byte segments.
constexpr size_t kSegments = 128;
constexpr size_t kReadings = 4000;
}  // namespace

int main() {
  // Sensor readings: 96-bit road-network-style records (quantized
  // lat/lon/alt along a vehicle's route).
  auto readings =
      e2nvm::workload::MakeRoadNetworkDataset(kReadings, 96, 11);
  auto seed_content = e2nvm::workload::ResizeItems(
      e2nvm::workload::MakeRoadNetworkDataset(kSegments, 96, 3),
      kSegBits);

  double per_reading_uj[2] = {0, 0};
  uint64_t nvm_writes[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {  // 0 = direct, 1 = batched.
    e2nvm::nvm::DeviceConfig dc;
    dc.num_segments = kSegments;
    dc.segment_bits = kSegBits;
    e2nvm::nvm::NvmDevice device(dc);
    e2nvm::schemes::Dcw dcw;
    e2nvm::nvm::MemoryController ctrl(&device, &dcw, kSegments, 0);
    for (size_t i = 0; i < kSegments; ++i) {
      ctrl.Seed(i, seed_content.items[i]);
    }
    e2nvm::core::E2ModelConfig mc;
    mc.input_dim = kSegBits;
    mc.k = 6;
    mc.pretrain_epochs = 5;
    e2nvm::core::E2Model model(mc);
    e2nvm::core::PlacementEngine::Config ec;
    ec.first_segment = 0;
    ec.num_segments = kSegments;
    e2nvm::core::PlacementEngine engine(&ctrl, &model, ec);
    if (!engine.Bootstrap().ok()) return 1;

    double pj_before = device.meter().TotalPj();
    if (mode == 1) {
      e2nvm::core::BatchWriter batcher(&engine, kSegBits);
      for (uint64_t k = 0; k < kReadings; ++k) {
        if (!batcher.Put(k, readings.items[k]).ok()) break;
        // Retention policy: keep the latest ~2000 readings.
        if (k >= 2000) (void)batcher.Delete(k - 2000);
      }
      (void)batcher.Flush();
    } else {
      std::vector<uint64_t> ring;
      for (uint64_t k = 0; k < kReadings; ++k) {
        auto addr = engine.Place(readings.items[k]);
        if (!addr.ok()) break;
        ring.push_back(*addr);
        // One whole segment per reading: retention must be much shorter.
        if (ring.size() > kSegments - 8) {
          (void)engine.Release(ring.front());
          ring.erase(ring.begin());
        }
      }
    }
    per_reading_uj[mode] =
        (device.meter().TotalPj() - pj_before) * 1e-6 / kReadings;
    nvm_writes[mode] = device.stats().writes;
  }

  std::printf("IoT sensor log: %u readings of 96 bits, %zu-byte "
              "segments\n\n",
              kReadings, kSegBits / 8);
  std::printf("%10s %14s %18s %22s\n", "mode", "nvm_writes",
              "uJ_per_reading", "readings_retained");
  std::printf("%10s %14llu %18.4f %22d\n", "direct",
              (unsigned long long)nvm_writes[0], per_reading_uj[0],
              static_cast<int>(kSegments - 8));
  std::printf("%10s %14llu %18.4f %22d\n", "batched",
              (unsigned long long)nvm_writes[1], per_reading_uj[1], 2000);
  std::printf("\nbatching cuts NVM writes ~%.0fx and energy per reading "
              "~%.1fx, while retaining %.0fx more history in the same "
              "pool\n",
              static_cast<double>(nvm_writes[0]) /
                  static_cast<double>(nvm_writes[1]),
              per_reading_uj[0] / per_reading_uj[1],
              2000.0 / static_cast<double>(kSegments - 8));
  return 0;
}
