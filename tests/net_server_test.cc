// End-to-end tests of the epoll server + pipelining client over
// loopback: correctness of the pipelined batched write path (responses
// in order, read-your-writes within a pipeline), malformed-frame
// survival at the connection level, and the steady-state guarantee —
// once warm, a connection worker's request loop performs ZERO heap
// allocations and acquires no shard-external lock, observed through the
// server's own audit counters (ServerConfig::audit_after_requests).
// Registered in the TSan stage of scripts/check.sh: concurrent clients
// pipeline against a multi-shard server while workers race the
// acceptor and STATS aggregation.

#include "net/server.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sharded_store.h"
#include "net/client.h"
#include "workload/datasets.h"

// --- Heap-allocation accounting (same idiom as bench/micro_ops) -----
// Thread-local: each connection worker samples its OWN counter through
// ServerConfig::alloc_probe, so allocations on other threads (gtest,
// client) cannot pollute the audit.
namespace {
thread_local uint64_t t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace e2nvm::net {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kSegmentsPerShard = 96;
constexpr size_t kBits = 256;

core::ShardedStoreConfig StoreConfigForTest() {
  core::ShardedStoreConfig cfg;
  cfg.num_shards = kShards;
  cfg.shard.num_segments = kSegmentsPerShard;
  cfg.shard.segment_bits = kBits;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.model.finetune_rounds = 1;
  // Steady state by construction: retraining is maintenance work, not
  // the request path under audit.
  cfg.shard.auto_retrain = false;
  cfg.shard.background_retrain = false;
  return cfg;
}

std::unique_ptr<core::ShardedStore> MakeStore(uint64_t seed) {
  workload::ProtoConfig pc;
  pc.dim = kBits;
  pc.num_classes = 4;
  pc.samples = kSegmentsPerShard + 32;
  pc.noise = 0.03;
  pc.seed = seed;
  auto ds = workload::MakeProtoDataset(pc);
  auto store_or = core::ShardedStore::Create(StoreConfigForTest());
  EXPECT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  EXPECT_TRUE(store->Bootstrap().ok());
  return store;
}

BitVector RandomBits(size_t n, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) v.Set(i, rng.NextBernoulli(0.5));
  return v;
}

TEST(NetServerTest, SynchronousPutGetDeleteRoundTrip) {
  auto store = MakeStore(21);
  auto server_or = Server::Start(store.get(), ServerConfig{});
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  auto client_or = Client::Connect(server->port());
  ASSERT_TRUE(client_or.ok());
  auto& client = *client_or;

  const BitVector value = RandomBits(kBits, 1);
  ASSERT_TRUE(client->Put(7, value).ok());
  auto got = client->Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got == value);

  EXPECT_EQ(client->Get(8).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client->Delete(7).ok());
  EXPECT_EQ(client->Get(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->Delete(7).code(), StatusCode::kNotFound);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->puts, 1u);
  EXPECT_EQ(stats->gets, 3u);
  EXPECT_EQ(stats->deletes, 2u);
  EXPECT_EQ(stats->connections, 1u);
  EXPECT_EQ(stats->keys, 0u);
}

TEST(NetServerTest, PipelinedBatchedPutsReadYourWrites) {
  auto store = MakeStore(22);
  auto server_or = Server::Start(store.get(), ServerConfig{});
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  auto client_or = Client::Connect(server->port());
  ASSERT_TRUE(client_or.ok());
  auto& client = *client_or;

  // One flush carrying 32 PUTs, a GET of every key, and an update +
  // re-GET of key 3: responses must come back strictly in order and the
  // GETs must observe the writes queued before them in the SAME
  // pipeline (the server flushes staged batches at read barriers).
  constexpr uint64_t kKeys = 32;
  std::vector<BitVector> values;
  for (uint64_t k = 0; k < kKeys; ++k) {
    values.push_back(RandomBits(kBits, 100 + k));
    client->QueuePut(k, values.back());
  }
  for (uint64_t k = 0; k < kKeys; ++k) client->QueueGet(k);
  const BitVector updated = RandomBits(kBits, 999);
  client->QueuePut(3, updated);
  client->QueueGet(3);
  ASSERT_TRUE(client->Flush().ok());

  for (uint64_t k = 0; k < kKeys; ++k) {
    auto r = client->ReadResponse();
    ASSERT_TRUE(r.ok()) << "put " << k;
    EXPECT_EQ(r->op, Op::kPut);
    EXPECT_EQ(r->status, WireStatus::kOk);
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto r = client->ReadResponse();
    ASSERT_TRUE(r.ok()) << "get " << k;
    ASSERT_EQ(r->status, WireStatus::kOk) << "get " << k;
    BitVector got;
    got.AssignFromWords(r->value.words, r->value.bits);
    EXPECT_TRUE(got == values[k]) << "get " << k;
  }
  ASSERT_TRUE(client->ReadResponse().ok());  // The update PUT.
  auto r = client->ReadResponse();
  ASSERT_TRUE(r.ok());
  BitVector got;
  got.AssignFromWords(r->value.words, r->value.bits);
  EXPECT_TRUE(got == updated);

  // The server must have applied the PUTs through shard-grouped
  // batches, not one-by-one.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->batched_puts, kKeys + 1);
  EXPECT_LT(stats->batches, kKeys);  // Grouped: fewer submissions than PUTs.
  EXPECT_EQ(stats->keys, kKeys);
}

TEST(NetServerTest, MultiPutAppliesAllEntries) {
  auto store = MakeStore(23);
  auto server_or = Server::Start(store.get(), ServerConfig{});
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  auto client_or = Client::Connect(server->port());
  ASSERT_TRUE(client_or.ok());
  auto& client = *client_or;

  std::vector<std::pair<uint64_t, BitVector>> kvs;
  for (uint64_t i = 0; i < 12; ++i) {
    kvs.emplace_back(50 + i, RandomBits(kBits, 300 + i));
  }
  client->QueueMultiPut(kvs.data(), kvs.size());
  ASSERT_TRUE(client->Flush().ok());
  auto r = client->ReadResponse();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->op, Op::kMultiPut);
  EXPECT_EQ(r->status, WireStatus::kOk);

  for (const auto& [key, value] : kvs) {
    auto got = client->Get(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    EXPECT_TRUE(*got == value) << "key " << key;
  }
}

TEST(NetServerTest, MalformedFramesRejectedConnectionSurvives) {
  auto store = MakeStore(24);
  auto server_or = Server::Start(store.get(), ServerConfig{});
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  auto client_or = Client::Connect(server->port());
  ASSERT_TRUE(client_or.ok());
  auto& client = *client_or;

  const BitVector value = RandomBits(kBits, 2);
  ASSERT_TRUE(client->Put(1, value).ok());

  // Corrupt a well-formed frame's payload: the server must answer
  // kBadFrame for it, keep the connection, and serve the next request.
  ByteRing frame;
  EncodePutRequest(&frame, /*seq=*/1000, /*key=*/2, value);
  *frame.at(kLenBytes + kHeaderBytes + 2) ^= 0x10;
  ASSERT_TRUE(client->SendRaw(frame.data(), frame.size()).ok());
  auto bad = client->ReadResponse();
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, WireStatus::kBadFrame);

  // Connection survived: the store never saw key 2, key 1 still reads.
  EXPECT_EQ(client->Get(2).status().code(), StatusCode::kNotFound);
  auto got = client->Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got == value);
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->frames_rejected, 1u);
}

TEST(NetServerTest, FatalFramingClosesOnlyThatConnection) {
  auto store = MakeStore(25);
  auto server_or = Server::Start(store.get(), ServerConfig{});
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;

  auto victim_or = Client::Connect(server->port());
  ASSERT_TRUE(victim_or.ok());
  auto& victim = *victim_or;
  const uint32_t lie = 0x7FFFFFFF;  // Larger than any legal frame.
  ASSERT_TRUE(victim->SendRaw(&lie, sizeof(lie)).ok());
  // The server closes the connection; the next read must fail rather
  // than hang or return fabricated data.
  EXPECT_FALSE(victim->ReadResponse().ok());

  // A fresh connection is unaffected.
  auto client_or = Client::Connect(server->port());
  ASSERT_TRUE(client_or.ok());
  auto& client = *client_or;
  ASSERT_TRUE(client->Put(3, RandomBits(kBits, 3)).ok());
  EXPECT_TRUE(client->Get(3).ok());
}

TEST(NetServerTest, SteadyStateLoopIsAllocAndSharedLockFree) {
  auto store = MakeStore(26);

  // Warmup sizes every piece of per-connection scratch; the audited
  // phase repeats the EXACT same request sequence, so any allocation it
  // makes is a per-request allocation, not growth to working size.
  constexpr uint64_t kKeys = 48;
  constexpr size_t kDepth = 16;
  constexpr size_t kOpsPerPhase = 320;
  // Requests before the audited phase: seed PUTs + one unaudited phase.
  constexpr uint64_t kWarmupRequests = kKeys + kOpsPerPhase;

  ServerConfig sc;
  sc.num_workers = 1;  // All requests on one worker: exact threshold.
  sc.audit_after_requests = kWarmupRequests;
  sc.alloc_probe = +[] { return t_alloc_count; };
  auto server_or = Server::Start(store.get(), sc);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  auto client_or = Client::Connect(server->port());
  ASSERT_TRUE(client_or.ok());
  auto& client = *client_or;

  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(client->Put(k, RandomBits(kBits, 400 + k)).ok());
  }
  auto run_phase = [&] {
    Rng rng(77);  // Same seed both phases: identical request stream.
    size_t queued = 0;
    for (size_t op = 0; op < kOpsPerPhase; ++op) {
      const uint64_t key = rng.NextBounded(kKeys);
      if (rng.NextBernoulli(0.5)) {
        client->QueuePut(key, RandomBits(kBits, 500 + op));
      } else {
        client->QueueGet(key);
      }
      if (++queued == kDepth || op + 1 == kOpsPerPhase) {
        ASSERT_TRUE(client->Flush().ok());
        for (; queued > 0; --queued) {
          auto r = client->ReadResponse();
          ASSERT_TRUE(r.ok());
          ASSERT_NE(r->status, WireStatus::kError);
        }
      }
    }
  };
  run_phase();  // Unaudited: reaches the audit threshold exactly.
  run_phase();  // Audited.

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->audit_requests, kOpsPerPhase);
  EXPECT_EQ(stats->audit_allocs, 0u)
      << "steady-state request loop allocated on the heap";
  EXPECT_EQ(stats->audit_shared_locks, 0u)
      << "steady-state request loop took a shard-external lock";
}

TEST(NetServerTest, ConcurrentPipelinedClients) {
  auto store = MakeStore(27);
  ServerConfig sc;
  sc.num_workers = 2;
  auto server_or = Server::Start(store.get(), sc);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;

  constexpr size_t kClients = 4;
  constexpr size_t kOps = 150;
  constexpr size_t kDepth = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client_or = Client::Connect(server->port());
      if (!client_or.ok()) {
        failed.store(true);
        return;
      }
      auto& client = *client_or;
      Rng rng(900 + t);
      // Disjoint key stripes: cross-client values never collide, so
      // every readback is exact.
      const uint64_t base = 1000 * (t + 1);
      size_t queued = 0;
      for (size_t op = 0; op < kOps; ++op) {
        const uint64_t key = base + rng.NextBounded(24);
        client->QueuePut(key, RandomBits(kBits, key * 31 + op));
        if (++queued == kDepth || op + 1 == kOps) {
          if (!client->Flush().ok()) failed.store(true);
          for (; queued > 0; --queued) {
            auto r = client->ReadResponse();
            if (!r.ok() || r->status != WireStatus::kOk) failed.store(true);
          }
        }
      }
      // Spot-check a readback through the same connection.
      const uint64_t key = base + 1;
      (void)client->Put(key, RandomBits(kBits, key));
      auto got = client->Get(key);
      if (!got.ok() || !(*got == RandomBits(kBits, key))) failed.store(true);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  auto client_or = Client::Connect(server->port());
  ASSERT_TRUE(client_or.ok());
  auto stats = (*client_or)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->puts, kClients * (kOps + 1));
  EXPECT_EQ(stats->connections, kClients + 1);
}

}  // namespace
}  // namespace e2nvm::net
