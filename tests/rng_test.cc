#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace e2nvm {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, ReseedResetsStream) {
  Rng a(5);
  uint64_t first = a.NextU64();
  a.NextU64();
  a.Reseed(5);
  EXPECT_EQ(a.NextU64(), first);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(42);
  std::map<uint64_t, int> counts;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (uint64_t v = 0; v < 10; ++v) {
    EXPECT_GT(counts[v], kDraws / 10 * 0.9) << v;
    EXPECT_LT(counts[v], kDraws / 10 * 1.1) << v;
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfianTest, RanksInRange) {
  Rng rng(1);
  ZipfianGenerator zipf(1000);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, HeadIsHot) {
  Rng rng(2);
  ZipfianGenerator zipf(10000, 0.99);
  int head_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 100) ++head_hits;  // Top 1% of ranks.
  }
  // With theta=0.99 the top 1% draws far more than 1% of accesses.
  EXPECT_GT(head_hits, n / 4);
}

TEST(ZipfianTest, LowerThetaIsFlatter) {
  Rng r1(3), r2(3);
  ZipfianGenerator skewed(10000, 0.99);
  ZipfianGenerator flat(10000, 0.5);
  int skewed_head = 0, flat_head = 0;
  for (int i = 0; i < 20000; ++i) {
    if (skewed.Next(r1) < 100) ++skewed_head;
    if (flat.Next(r2) < 100) ++flat_head;
  }
  EXPECT_GT(skewed_head, flat_head);
}

TEST(LatestTest, SkewsTowardNewest) {
  Rng rng(4);
  LatestGenerator latest(10000);
  int recent = 0;
  const uint64_t max_seen = 9999;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = latest.Next(rng, max_seen);
    EXPECT_LE(k, max_seen);
    if (k > max_seen - 100) ++recent;
  }
  EXPECT_GT(recent, 20000 / 4);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  Rng rng(5);
  ScrambledZipfianGenerator gen(10000);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.Next(rng)];
  // The two hottest keys should not be adjacent (scrambling).
  uint64_t hottest = 0, second = 0;
  int c1 = -1, c2 = -1;
  for (auto& [k, c] : counts) {
    if (c > c1) {
      second = hottest;
      c2 = c1;
      hottest = k;
      c1 = c;
    } else if (c > c2) {
      second = k;
      c2 = c;
    }
  }
  EXPECT_NE(hottest + 1, second);
  EXPECT_NE(second + 1, hottest);
}

TEST(Fnv1aTest, StableAndSensitive) {
  uint64_t a = 1, b = 2;
  EXPECT_EQ(Fnv1a64(&a, sizeof(a)), Fnv1a64(&a, sizeof(a)));
  EXPECT_NE(Fnv1a64(&a, sizeof(a)), Fnv1a64(&b, sizeof(b)));
}

}  // namespace
}  // namespace e2nvm
