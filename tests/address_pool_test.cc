#include "core/address_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"

namespace e2nvm::core {
namespace {

TEST(AddressPoolTest, InsertAcquireFifo) {
  DynamicAddressPool pool(3);
  pool.Insert(1, 100);
  pool.Insert(1, 101);
  EXPECT_EQ(pool.FreeCount(1), 2u);
  EXPECT_EQ(pool.Acquire(1).value(), 100u);  // First available (paper).
  EXPECT_EQ(pool.Acquire(1).value(), 101u);
  EXPECT_FALSE(pool.Acquire(1).has_value());  // Empty everywhere now.
}

TEST(AddressPoolTest, FallbackToLargestCluster) {
  DynamicAddressPool pool(3);
  pool.Insert(0, 1);
  pool.Insert(2, 10);
  pool.Insert(2, 11);
  pool.Insert(2, 12);
  // Cluster 1 empty: falls back to the largest (cluster 2).
  auto a = pool.Acquire(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 10u);
}

TEST(AddressPoolTest, ExhaustionReturnsNullopt) {
  DynamicAddressPool pool(2);
  EXPECT_FALSE(pool.Acquire(0).has_value());
  pool.Insert(0, 5);
  EXPECT_TRUE(pool.Acquire(1).has_value());  // Fallback drains it.
  EXPECT_FALSE(pool.Acquire(0).has_value());
}

TEST(AddressPoolTest, AcquireBestPicksMinHamming) {
  DynamicAddressPool pool(1);
  pool.Insert(0, 0);
  pool.Insert(0, 1);
  pool.Insert(0, 2);
  std::vector<BitVector> contents = {
      BitVector::FromString("11110000"),
      BitVector::FromString("00000001"),
      BitVector::FromString("11111111"),
  };
  BitVector target = BitVector::FromString("00000011");
  auto best = pool.AcquireBest(0, target, [&](uint64_t addr) {
    return contents[addr];
  });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);  // Hamming 1 vs 5 and 6.
  EXPECT_EQ(pool.TotalFree(), 2u);
}

TEST(AddressPoolTest, MinClusterFreeAndThresholds) {
  DynamicAddressPool pool(3);
  pool.Insert(0, 1);
  pool.Insert(0, 2);
  pool.Insert(1, 3);
  EXPECT_EQ(pool.MinClusterFree(), 0u);  // Cluster 2 empty.
  pool.Insert(2, 4);
  EXPECT_EQ(pool.MinClusterFree(), 1u);
}

TEST(AddressPoolTest, AllFreeSnapshot) {
  DynamicAddressPool pool(2);
  pool.Insert(0, 7);
  pool.Insert(1, 8);
  pool.Insert(1, 9);
  auto all = pool.AllFree();
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<uint64_t>{7, 8, 9}));
}

TEST(AddressPoolTest, ClearEmpties) {
  DynamicAddressPool pool(2);
  pool.Insert(0, 1);
  pool.Clear();
  EXPECT_EQ(pool.TotalFree(), 0u);
  EXPECT_FALSE(pool.Acquire(0).has_value());
}

TEST(AddressPoolTest, OutOfRangeClusterIdsClampInsteadOfUb) {
  DynamicAddressPool pool(2);
  pool.Insert(99, 7);  // Clamped to the last cluster.
  EXPECT_EQ(pool.FreeCount(1), 1u);
  EXPECT_EQ(pool.FreeCount(99), 0u);  // Out-of-range query: 0, counted.
  EXPECT_GE(pool.clamped_ids(), 2u);
  EXPECT_EQ(pool.Acquire(99).value(), 7u);  // Clamped acquire still works.
  EXPECT_EQ(pool.TotalFree(), 0u);
}

TEST(AddressPoolTest, ZeroClusterPoolIsInert) {
  DynamicAddressPool pool(0);
  pool.Insert(0, 1);  // Dropped: nowhere to put it — but no crash.
  EXPECT_EQ(pool.TotalFree(), 0u);
  EXPECT_FALSE(pool.Acquire(0).has_value());
  EXPECT_FALSE(pool.AcquireAny().has_value());
  EXPECT_FALSE(
      pool.AcquireBest(0, BitVector(8), [](uint64_t) {
            return BitVector(8);
          }).has_value());
}

TEST(AddressPoolTest, AcquireAnyPopsFromFullestCluster) {
  DynamicAddressPool pool(3);
  pool.Insert(0, 1);
  pool.Insert(2, 10);
  pool.Insert(2, 11);
  EXPECT_EQ(pool.AcquireAny().value(), 10u);
  EXPECT_EQ(pool.TotalFree(), 2u);
  EXPECT_EQ(pool.AcquireAny().value(), 1u);  // Now both size 1; first wins.
  EXPECT_EQ(pool.AcquireAny().value(), 11u);
  EXPECT_FALSE(pool.AcquireAny().has_value());
}

TEST(AddressPoolTest, FootprintGrowsWithAddresses) {
  DynamicAddressPool pool(4);
  size_t base = pool.MemoryFootprintBytes();
  for (uint64_t i = 0; i < 1000; ++i) pool.Insert(i % 4, i);
  EXPECT_GE(pool.MemoryFootprintBytes(), base + 1000 * sizeof(uint64_t));
}

TEST(AddressPoolTest, ConcurrentInsertAcquireIsSafe) {
  DynamicAddressPool pool(4);
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kPerThread; ++i) {
        pool.Insert(t, static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.TotalFree(), 4u * kPerThread);

  std::atomic<int> acquired{0};
  threads.clear();
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, &acquired, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (pool.Acquire(t % 4).has_value()) {
          acquired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(acquired.load(), 4 * kPerThread);
  EXPECT_EQ(pool.TotalFree(), 0u);
}

}  // namespace
}  // namespace e2nvm::core
