// Equivalence of the write-path inference fast path (scratch buffers,
// fused k-means assignment, batched PlaceMany, Release cluster memo)
// with the allocating reference path: identical placement addresses,
// cluster ids, and device flip counts for the same PUT stream — the
// fast path is an optimization, never a behavior change. Also pins the
// zero-allocation contract of steady-state prediction.

#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "core/store.h"
#include "workload/datasets.h"

// Thread-local allocation counter for the zero-allocation assertions.
// One test binary per source file, so replacing global new here does not
// affect any other test.
namespace {
thread_local uint64_t t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace e2nvm::core {
namespace {

constexpr size_t kSegments = 128;
constexpr size_t kBits = 256;
constexpr uint64_t kKeys = 48;

workload::BitDataset ClusteredData(uint64_t seed) {
  workload::ProtoConfig cfg;
  cfg.dim = kBits;
  cfg.num_classes = 4;
  cfg.samples = kSegments + 64;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

std::unique_ptr<E2KvStore> MakeStore(const workload::BitDataset& ds,
                                     bool reference,
                                     bool background_retrain = false) {
  StoreConfig sc;
  sc.num_segments = kSegments;
  sc.segment_bits = kBits;
  sc.model.k = 4;
  sc.model.pretrain_epochs = 2;
  sc.model.finetune_rounds = 1;
  sc.auto_retrain = true;
  sc.background_retrain = background_retrain;
  sc.retrain.min_free_per_cluster = 8;
  sc.reference_inference = reference;
  auto store_or = E2KvStore::Create(sc);
  EXPECT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  EXPECT_TRUE(store->Bootstrap().ok());
  return store;
}

/// Every observable outcome that must match between the two paths.
struct Observed {
  std::vector<std::optional<uint64_t>> addrs;  // Per-key final address.
  uint64_t data_flips;
  uint64_t writes;
  uint64_t placements;
  uint64_t fallbacks;
};

Observed ObserveStore(E2KvStore& store) {
  Observed o;
  for (uint64_t key = 0; key < kKeys; ++key) {
    o.addrs.push_back(store.tree().Get(key));
  }
  o.data_flips = store.device().stats().data_bits_flipped;
  o.writes = store.device().stats().writes;
  o.placements = store.engine().stats().placements;
  o.fallbacks = store.engine().stats().fallback_placements;
  return o;
}

void ExpectSame(const Observed& ref, const Observed& fast) {
  EXPECT_EQ(ref.addrs, fast.addrs);
  EXPECT_EQ(ref.data_flips, fast.data_flips);
  EXPECT_EQ(ref.writes, fast.writes);
  EXPECT_EQ(ref.placements, fast.placements);
  EXPECT_EQ(ref.fallbacks, fast.fallbacks);
}

TEST(FastPathEquivalence, SequentialPutsMatchReferenceAcrossSeeds) {
  for (uint64_t seed : {2u, 11u, 29u}) {
    auto ds = ClusteredData(seed);
    auto ref = MakeStore(ds, /*reference=*/true);
    auto fast = MakeStore(ds, /*reference=*/false);
    for (uint64_t i = 0; i < 300; ++i) {
      const auto& v = ds.items[i % ds.items.size()];
      ASSERT_TRUE(ref->Put(i % kKeys, v).ok()) << "seed " << seed;
      ASSERT_TRUE(fast->Put(i % kKeys, v).ok()) << "seed " << seed;
    }
    ExpectSame(ObserveStore(*ref), ObserveStore(*fast));
    // Same synchronous retrain schedule on both sides.
    EXPECT_EQ(ref->engine().stats().retrains,
              fast->engine().stats().retrains);
    EXPECT_GT(fast->engine().stats().retrains, 0u) << "seed " << seed;
  }
}

TEST(FastPathEquivalence, PredictClusterMatchesReference) {
  auto ds = ClusteredData(5);
  auto ref = MakeStore(ds, /*reference=*/true);
  auto fast = MakeStore(ds, /*reference=*/false);
  for (size_t i = 0; i < ds.items.size(); ++i) {
    auto a = ref->engine().PredictClusterFor(ds.items[i]);
    auto b = fast->engine().PredictClusterFor(ds.items[i]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "item " << i;
  }
}

TEST(FastPathEquivalence, MultiPutMatchesSequentialPuts) {
  auto ds = ClusteredData(7);
  auto seq = MakeStore(ds, /*reference=*/false);
  auto batched = MakeStore(ds, /*reference=*/false);
  constexpr size_t kBatch = 16;
  std::vector<std::pair<uint64_t, BitVector>> kvs;
  for (uint64_t i = 0; i < 320; ++i) {
    const auto& v = ds.items[i % ds.items.size()];
    ASSERT_TRUE(seq->Put(i % kKeys, v).ok());
    kvs.emplace_back(i % kKeys, v);
    if (kvs.size() == kBatch) {
      ASSERT_TRUE(batched->MultiPut(kvs).ok());
      kvs.clear();
    }
  }
  ASSERT_TRUE(batched->MultiPut(kvs).ok());
  // MultiPut recycles superseded addresses after the whole batch instead
  // of between placements, so the address *sequence* differs; what must
  // match is the content every key reads back, the prediction schedule,
  // and that neither path fell back.
  for (uint64_t key = 0; key < kKeys; ++key) {
    auto a = seq->Get(key);
    auto b = batched->Get(key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "key " << key;
  }
  EXPECT_EQ(seq->engine().stats().placements,
            batched->engine().stats().placements);
  EXPECT_EQ(seq->engine().stats().fallback_placements,
            batched->engine().stats().fallback_placements);
  EXPECT_EQ(batched->engine().stats().fallback_placements, 0u);
}

TEST(FastPathEquivalence, MultiPutMatchesReferenceWithoutUpdates) {
  // Unique keys: no mid-stream recycling, so the batched fast path must
  // reproduce the reference path address-for-address and flip-for-flip.
  auto ds = ClusteredData(13);
  auto ref = MakeStore(ds, /*reference=*/true);
  auto batched = MakeStore(ds, /*reference=*/false);
  constexpr size_t kBatch = 12;
  std::vector<std::pair<uint64_t, BitVector>> kvs;
  for (uint64_t i = 0; i < kKeys; ++i) {
    const auto& v = ds.items[i % ds.items.size()];
    ASSERT_TRUE(ref->Put(i, v).ok());
    kvs.emplace_back(i, v);
    if (kvs.size() == kBatch) {
      ASSERT_TRUE(batched->MultiPut(kvs).ok());
      kvs.clear();
    }
  }
  ASSERT_TRUE(batched->MultiPut(kvs).ok());
  ExpectSame(ObserveStore(*ref), ObserveStore(*batched));
}

TEST(FastPathEquivalence, MatchesReferenceAcrossBackgroundSwap) {
  // Drive both stores through a deterministic shadow-model swap: run the
  // same stream, and whenever a shadow training is in flight, drain it
  // and adopt it at the same operation index on both sides.
  auto ds = ClusteredData(17);
  auto ref = MakeStore(ds, /*reference=*/true, /*background_retrain=*/true);
  auto fast =
      MakeStore(ds, /*reference=*/false, /*background_retrain=*/true);
  auto drain = [](E2KvStore& s) {
    while (s.engine().RetrainInFlight()) {
    }
    s.engine().PumpBackgroundRetrain();
  };
  for (uint64_t i = 0; i < 300; ++i) {
    const auto& v = ds.items[i % ds.items.size()];
    ASSERT_TRUE(ref->Put(i % kKeys, v).ok());
    ASSERT_TRUE(fast->Put(i % kKeys, v).ok());
    drain(*ref);
    drain(*fast);
    ASSERT_EQ(ref->engine().model_generation(),
              fast->engine().model_generation())
        << "op " << i;
  }
  EXPECT_GT(fast->engine().model_generation(), 0u)
      << "no shadow model was ever adopted; swap never exercised";
  ExpectSame(ObserveStore(*ref), ObserveStore(*fast));
}

TEST(FastPathEquivalence, SteadyStatePredictionIsAllocationFree) {
  auto ds = ClusteredData(3);
  auto store = MakeStore(ds, /*reference=*/false);
  // Warm up: first predictions size the scratch buffers (grow-only).
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(store->engine().PredictClusterFor(ds.items[i]).ok());
  }
  uint64_t before = t_alloc_count;
  for (size_t i = 0; i < 200; ++i) {
    auto c = store->engine().PredictClusterFor(
        ds.items[i % ds.items.size()]);
    ASSERT_TRUE(c.ok());
  }
  EXPECT_EQ(t_alloc_count, before)
      << "steady-state PredictClusterFor allocated on the heap";
  // The reference path allocates every call — the counter must move, or
  // the counting itself is broken and the assertion above is vacuous.
  auto ref = MakeStore(ds, /*reference=*/true);
  before = t_alloc_count;
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ref->engine().PredictClusterFor(ds.items[i]).ok());
  }
  EXPECT_GT(t_alloc_count, before);
}

TEST(FastPathEquivalence, SteadyStatePutsAreAllocationFree) {
  // The full PUT pipeline — placement inference, DAP acquire, DCW write,
  // index update, old-address recycling, retrain-window accounting —
  // must stay off the heap once every scratch buffer and ring has grown
  // to its working size. auto_retrain stays off: a retrain legitimately
  // rebuilds the model and repopulates the pool, which allocates.
  auto ds = ClusteredData(19);
  StoreConfig sc;
  sc.num_segments = kSegments;
  sc.segment_bits = kBits;
  sc.model.k = 4;
  sc.model.pretrain_epochs = 2;
  sc.model.finetune_rounds = 1;
  sc.auto_retrain = false;
  auto store_or = E2KvStore::Create(sc);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());

  // Warm up: grow inference scratch, WriteResult buffers, free-list
  // rings, and the retrain window to steady-state capacity.
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        store->Put(i % kKeys, ds.items[i % ds.items.size()]).ok());
  }

  uint64_t before = t_alloc_count;
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store->Put(i % kKeys, ds.items[i % ds.items.size()]).ok());
  }
  EXPECT_EQ(t_alloc_count - before, 0u)
      << "steady-state Put allocated on the heap";

  // Same contract for the batched path: reuse one staged batch so only
  // MultiPut's own work is measured.
  std::vector<std::pair<uint64_t, BitVector>> kvs;
  for (uint64_t i = 0; i < 16; ++i) {
    kvs.emplace_back(i % kKeys, ds.items[i % ds.items.size()]);
  }
  for (int warm = 0; warm < 8; ++warm) {
    ASSERT_TRUE(store->MultiPut(kvs).ok());
  }
  before = t_alloc_count;
  for (int round = 0; round < 16; ++round) {
    ASSERT_TRUE(store->MultiPut(kvs).ok());
  }
  EXPECT_EQ(t_alloc_count - before, 0u)
      << "steady-state MultiPut allocated on the heap";
}

}  // namespace
}  // namespace e2nvm::core
