#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include <map>

namespace e2nvm::workload {
namespace {

std::map<OpType, int> RunMix(YcsbWorkload w, int n = 20000) {
  YcsbGenerator::Config cfg;
  cfg.workload = w;
  cfg.record_count = 1000;
  YcsbGenerator gen(cfg);
  std::map<OpType, int> counts;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().type];
  return counts;
}

TEST(YcsbTest, WorkloadAMix) {
  auto counts = RunMix(YcsbWorkload::kA);
  EXPECT_NEAR(counts[OpType::kRead] / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[OpType::kUpdate] / 20000.0, 0.5, 0.02);
}

TEST(YcsbTest, WorkloadBMix) {
  auto counts = RunMix(YcsbWorkload::kB);
  EXPECT_NEAR(counts[OpType::kRead] / 20000.0, 0.95, 0.01);
  EXPECT_NEAR(counts[OpType::kUpdate] / 20000.0, 0.05, 0.01);
}

TEST(YcsbTest, WorkloadCIsReadOnly) {
  auto counts = RunMix(YcsbWorkload::kC);
  EXPECT_EQ(counts[OpType::kRead], 20000);
}

TEST(YcsbTest, WorkloadDInsertsGrowKeyspace) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kD;
  cfg.record_count = 1000;
  YcsbGenerator gen(cfg);
  int inserts = 0;
  for (int i = 0; i < 20000; ++i) {
    YcsbOp op = gen.Next();
    if (op.type == OpType::kInsert) {
      EXPECT_EQ(op.key, 1000u + inserts);  // Sequential new keys.
      ++inserts;
    }
  }
  EXPECT_NEAR(inserts / 20000.0, 0.05, 0.01);
  EXPECT_EQ(gen.current_records(), 1000u + inserts);
}

TEST(YcsbTest, WorkloadEScansWithLengths) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kE;
  cfg.record_count = 1000;
  cfg.max_scan_len = 50;
  YcsbGenerator gen(cfg);
  int scans = 0;
  for (int i = 0; i < 10000; ++i) {
    YcsbOp op = gen.Next();
    if (op.type == OpType::kScan) {
      ++scans;
      EXPECT_GE(op.scan_len, 1u);
      EXPECT_LE(op.scan_len, 50u);
    }
  }
  EXPECT_NEAR(scans / 10000.0, 0.95, 0.02);
}

TEST(YcsbTest, WorkloadFMix) {
  auto counts = RunMix(YcsbWorkload::kF);
  EXPECT_NEAR(counts[OpType::kReadModifyWrite] / 20000.0, 0.5, 0.02);
}

TEST(YcsbTest, ZipfianKeysAreSkewed) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kA;
  cfg.record_count = 10000;
  YcsbGenerator gen(cfg);
  std::map<uint64_t, int> key_counts;
  for (int i = 0; i < 30000; ++i) {
    YcsbOp op = gen.Next();
    EXPECT_LT(op.key, 10000u);
    ++key_counts[op.key];
  }
  // A heavy hitter exists (zipfian head).
  int max_count = 0;
  for (auto& [k, c] : key_counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 30000 / 10000 * 20);
}

TEST(YcsbTest, ValuesDeterministicPerKeyVersion) {
  YcsbGenerator::Config cfg;
  cfg.value_bits = 512;
  YcsbGenerator g1(cfg), g2(cfg);
  EXPECT_EQ(g1.MakeValue(42, 0), g2.MakeValue(42, 0));
  EXPECT_NE(g1.MakeValue(42, 0), g1.MakeValue(42, 1));
  EXPECT_EQ(g1.MakeValue(42, 0).size(), 512u);
}

TEST(YcsbTest, ValueVersionsAreNearbyInHamming) {
  YcsbGenerator::Config cfg;
  cfg.value_bits = 1024;
  cfg.value_noise = 0.05;
  YcsbGenerator gen(cfg);
  BitVector v0 = gen.MakeValue(7, 0);
  BitVector v1 = gen.MakeValue(7, 1);
  // Successive versions differ by ~2*noise (two independent perturbations
  // of the same prototype).
  size_t d = v0.HammingDistance(v1);
  EXPECT_LT(d, 1024 / 4);
  EXPECT_GT(d, 0u);
}

TEST(YcsbTest, SameClassKeysShareStructure) {
  YcsbGenerator::Config cfg;
  cfg.value_bits = 1024;
  cfg.num_value_classes = 4;
  YcsbGenerator gen(cfg);
  // Keys 0 and 4 share a class; 0 and 1 don't.
  size_t same = gen.MakeValue(0, 0).HammingDistance(gen.MakeValue(4, 0));
  size_t diff = gen.MakeValue(0, 0).HammingDistance(gen.MakeValue(1, 0));
  EXPECT_LT(same, diff);
}

TEST(YcsbTest, NamesStable) {
  EXPECT_STREQ(YcsbWorkloadName(YcsbWorkload::kA), "A");
  EXPECT_STREQ(YcsbWorkloadName(YcsbWorkload::kF), "F");
}

}  // namespace
}  // namespace e2nvm::workload
