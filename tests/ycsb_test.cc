#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace e2nvm::workload {
namespace {

std::map<OpType, int> RunMix(YcsbWorkload w, int n = 20000) {
  YcsbGenerator::Config cfg;
  cfg.workload = w;
  cfg.record_count = 1000;
  YcsbGenerator gen(cfg);
  std::map<OpType, int> counts;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().type];
  return counts;
}

TEST(YcsbTest, WorkloadAMix) {
  auto counts = RunMix(YcsbWorkload::kA);
  EXPECT_NEAR(counts[OpType::kRead] / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[OpType::kUpdate] / 20000.0, 0.5, 0.02);
}

TEST(YcsbTest, WorkloadBMix) {
  auto counts = RunMix(YcsbWorkload::kB);
  EXPECT_NEAR(counts[OpType::kRead] / 20000.0, 0.95, 0.01);
  EXPECT_NEAR(counts[OpType::kUpdate] / 20000.0, 0.05, 0.01);
}

TEST(YcsbTest, WorkloadCIsReadOnly) {
  auto counts = RunMix(YcsbWorkload::kC);
  EXPECT_EQ(counts[OpType::kRead], 20000);
}

TEST(YcsbTest, WorkloadDInsertsGrowKeyspace) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kD;
  cfg.record_count = 1000;
  YcsbGenerator gen(cfg);
  int inserts = 0;
  for (int i = 0; i < 20000; ++i) {
    YcsbOp op = gen.Next();
    if (op.type == OpType::kInsert) {
      EXPECT_EQ(op.key, 1000u + inserts);  // Sequential new keys.
      ++inserts;
    }
  }
  EXPECT_NEAR(inserts / 20000.0, 0.05, 0.01);
  EXPECT_EQ(gen.current_records(), 1000u + inserts);
}

TEST(YcsbTest, WorkloadEScansWithLengths) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kE;
  cfg.record_count = 1000;
  cfg.max_scan_len = 50;
  YcsbGenerator gen(cfg);
  int scans = 0;
  for (int i = 0; i < 10000; ++i) {
    YcsbOp op = gen.Next();
    if (op.type == OpType::kScan) {
      ++scans;
      EXPECT_GE(op.scan_len, 1u);
      EXPECT_LE(op.scan_len, 50u);
    }
  }
  EXPECT_NEAR(scans / 10000.0, 0.95, 0.02);
}

TEST(YcsbTest, WorkloadFMix) {
  auto counts = RunMix(YcsbWorkload::kF);
  EXPECT_NEAR(counts[OpType::kReadModifyWrite] / 20000.0, 0.5, 0.02);
}

TEST(YcsbTest, ZipfianKeysAreSkewed) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kA;
  cfg.record_count = 10000;
  YcsbGenerator gen(cfg);
  std::map<uint64_t, int> key_counts;
  for (int i = 0; i < 30000; ++i) {
    YcsbOp op = gen.Next();
    EXPECT_LT(op.key, 10000u);
    ++key_counts[op.key];
  }
  // A heavy hitter exists (zipfian head).
  int max_count = 0;
  for (auto& [k, c] : key_counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 30000 / 10000 * 20);
}

TEST(YcsbTest, ValuesDeterministicPerKeyVersion) {
  YcsbGenerator::Config cfg;
  cfg.value_bits = 512;
  YcsbGenerator g1(cfg), g2(cfg);
  EXPECT_EQ(g1.MakeValue(42, 0), g2.MakeValue(42, 0));
  EXPECT_NE(g1.MakeValue(42, 0), g1.MakeValue(42, 1));
  EXPECT_EQ(g1.MakeValue(42, 0).size(), 512u);
}

TEST(YcsbTest, ValueVersionsAreNearbyInHamming) {
  YcsbGenerator::Config cfg;
  cfg.value_bits = 1024;
  cfg.value_noise = 0.05;
  YcsbGenerator gen(cfg);
  BitVector v0 = gen.MakeValue(7, 0);
  BitVector v1 = gen.MakeValue(7, 1);
  // Successive versions differ by ~2*noise (two independent perturbations
  // of the same prototype).
  size_t d = v0.HammingDistance(v1);
  EXPECT_LT(d, 1024 / 4);
  EXPECT_GT(d, 0u);
}

TEST(YcsbTest, SameClassKeysShareStructure) {
  YcsbGenerator::Config cfg;
  cfg.value_bits = 1024;
  cfg.num_value_classes = 4;
  YcsbGenerator gen(cfg);
  // Keys 0 and 4 share a class; 0 and 1 don't.
  size_t same = gen.MakeValue(0, 0).HammingDistance(gen.MakeValue(4, 0));
  size_t diff = gen.MakeValue(0, 0).HammingDistance(gen.MakeValue(1, 0));
  EXPECT_LT(same, diff);
}

TEST(YcsbTest, NamesStable) {
  EXPECT_STREQ(YcsbWorkloadName(YcsbWorkload::kA), "A");
  EXPECT_STREQ(YcsbWorkloadName(YcsbWorkload::kF), "F");
}

// --- Scenario-matrix coverage (DESIGN.md §15) -------------------------

/// Flattened op record for stream-equality comparisons.
struct OpRec {
  OpType type;
  uint64_t key;
  size_t scan_len;
  bool operator==(const OpRec& o) const {
    return type == o.type && key == o.key && scan_len == o.scan_len;
  }
};

std::vector<OpRec> Stream(const YcsbGenerator::Config& cfg, int n) {
  YcsbGenerator gen(cfg);
  std::vector<OpRec> ops;
  ops.reserve(n);
  for (int i = 0; i < n; ++i) {
    YcsbOp op = gen.Next();
    ops.push_back({op.type, op.key, op.scan_len});
  }
  return ops;
}

TEST(YcsbTest, SameSeedSameOpAndValueStream) {
  for (auto w : {YcsbWorkload::kA, YcsbWorkload::kD, YcsbWorkload::kE}) {
    YcsbGenerator::Config cfg;
    cfg.workload = w;
    cfg.record_count = 500;
    cfg.churn_fraction = 0.1;
    cfg.drift_period = 300;
    cfg.width_mix = {64, 128, 256};
    cfg.value_bits = 256;
    EXPECT_EQ(Stream(cfg, 2000), Stream(cfg, 2000));
    YcsbGenerator g1(cfg), g2(cfg);
    for (int i = 0; i < 500; ++i) {
      g1.Next();
      g2.Next();
    }
    EXPECT_EQ(g1.phase(), g2.phase());
    EXPECT_EQ(g1.MakeValue(3, 7), g2.MakeValue(3, 7));
  }
}

TEST(YcsbTest, DifferentSeedDifferentStream) {
  YcsbGenerator::Config a;
  a.record_count = 500;
  YcsbGenerator::Config b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(Stream(a, 1000), Stream(b, 1000));
}

/// Fraction of draws landing on the 10% most-drawn keys.
double HotMass(double theta) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kC;
  cfg.record_count = 1000;
  cfg.zipf_theta = theta;
  YcsbGenerator gen(cfg);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().key];
  std::vector<int> sorted;
  for (auto& [k, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  int hot = 0;
  for (size_t i = 0; i < 100 && i < sorted.size(); ++i) hot += sorted[i];
  return static_cast<double>(hot) / n;
}

TEST(YcsbTest, ZipfianMassConcentratesWithTheta) {
  const double m50 = HotMass(0.50);
  const double m80 = HotMass(0.80);
  const double m99 = HotMass(0.99);
  // Zipf(s) over 1000 keys puts ~30% / ~50% / ~69% of the mass on the
  // top decile at s = 0.5 / 0.8 / 0.99; assert with wide margins plus
  // strict monotonicity in theta.
  EXPECT_LT(m50, 0.45);
  EXPECT_GT(m99, 0.55);
  EXPECT_LT(m50, m80);
  EXPECT_LT(m80, m99);
}

TEST(YcsbTest, ChurnTurnsOverKeysKeepingWindowSize) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kA;
  cfg.record_count = 200;
  cfg.churn_fraction = 0.3;
  YcsbGenerator gen(cfg);
  int inserts = 0, deletes = 0;
  for (int i = 0; i < 10000; ++i) {
    YcsbOp op = gen.Next();
    switch (op.type) {
      case OpType::kInsert:
        EXPECT_EQ(op.key, 200u + inserts);  // Fresh sequential keys.
        ++inserts;
        break;
      case OpType::kDelete:
        EXPECT_EQ(op.key, gen.oldest_live() - 1);  // Oldest live key.
        ++deletes;
        break;
      default:
        // Skewed choosers must stay inside the live window.
        EXPECT_GE(op.key, gen.oldest_live());
        EXPECT_LT(op.key, gen.current_records());
        break;
    }
    EXPECT_GE(gen.live_records(), 100u);  // Never below half.
  }
  EXPECT_NEAR((inserts + deletes) / 10000.0, 0.3, 0.02);
  // Alternation keeps the window near the initial population.
  EXPECT_LE(inserts - deletes, 1);
  EXPECT_EQ(gen.live_records(), 200u + inserts - deletes);
}

TEST(YcsbTest, ChurnZeroNeverDeletes) {
  auto ops = Stream([] {
    YcsbGenerator::Config cfg;
    cfg.workload = YcsbWorkload::kA;
    cfg.record_count = 100;
    return cfg;
  }(), 5000);
  for (const OpRec& op : ops) EXPECT_NE(op.type, OpType::kDelete);
}

TEST(YcsbTest, DriftAdvancesPhaseAndRedrawsPrototypes) {
  YcsbGenerator::Config cfg;
  cfg.record_count = 100;
  cfg.drift_period = 250;
  cfg.value_bits = 1024;
  YcsbGenerator gen(cfg);
  EXPECT_EQ(gen.phase(), 0u);
  BitVector before = gen.MakeValue(5, 0);
  for (int i = 0; i < 250; ++i) gen.Next();
  // The phase boundary lands exactly on the period.
  EXPECT_EQ(gen.phase(), 0u);
  gen.Next();
  EXPECT_EQ(gen.phase(), 1u);
  BitVector after = gen.MakeValue(5, 0);
  // Prototypes were re-drawn: same (key, version) is now far away
  // (independent random vectors differ in ~half the bits).
  EXPECT_GT(before.HammingDistance(after), 1024u / 4);
  // A forced shift (harness hook) does the same without ops.
  gen.AdvancePhase();
  EXPECT_EQ(gen.phase(), 2u);
  EXPECT_GT(after.HammingDistance(gen.MakeValue(5, 0)), 1024u / 4);
}

TEST(YcsbTest, PhaseZeroMatchesDriftFreeGenerator) {
  YcsbGenerator::Config plain;
  plain.record_count = 100;
  YcsbGenerator::Config drifting = plain;
  drifting.drift_period = 1000;
  YcsbGenerator a(plain), b(drifting);
  EXPECT_EQ(a.MakeValue(17, 3), b.MakeValue(17, 3));
}

TEST(YcsbTest, WidthMixDrawsEveryWidthDeterministically) {
  YcsbGenerator::Config cfg;
  cfg.record_count = 200;
  cfg.value_bits = 256;
  cfg.width_mix = {64, 128, 192, 256};
  YcsbGenerator g1(cfg), g2(cfg);
  std::set<size_t> seen;
  for (uint64_t k = 0; k < 200; ++k) {
    BitVector v = g1.MakeValue(k, 0);
    seen.insert(v.size());
    EXPECT_EQ(v, g2.MakeValue(k, 0));  // Width choice is (key, version).
    EXPECT_TRUE(std::count(cfg.width_mix.begin(), cfg.width_mix.end(),
                           v.size()) > 0);
  }
  EXPECT_EQ(seen.size(), 4u);  // All widths occur across 200 keys.
  // A truncated value is a prefix of the full-width value.
  YcsbGenerator::Config full = cfg;
  full.width_mix.clear();
  YcsbGenerator gf(full);
  for (uint64_t k = 0; k < 20; ++k) {
    BitVector narrow = g1.MakeValue(k, 0);
    BitVector wide = gf.MakeValue(k, 0);
    EXPECT_EQ(narrow, wide.Slice(0, narrow.size()));
  }
}

}  // namespace
}  // namespace e2nvm::workload
