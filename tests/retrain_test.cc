#include "core/retrain.h"

#include <gtest/gtest.h>

namespace e2nvm::core {
namespace {

TEST(RetrainPolicyTest, CapacityTrigger) {
  RetrainPolicy policy({.min_free_per_cluster = 2});
  DynamicAddressPool pool(2);
  pool.Insert(0, 1);
  pool.Insert(0, 2);
  pool.Insert(1, 3);
  // Cluster 1 has only one free address: below threshold 2.
  EXPECT_TRUE(policy.ShouldRetrain(pool));
  pool.Insert(1, 4);
  EXPECT_FALSE(policy.ShouldRetrain(pool));
}

TEST(RetrainPolicyTest, EfficiencyTriggerAfterDegradation) {
  RetrainPolicy::Config cfg;
  cfg.min_free_per_cluster = 0;
  cfg.window = 50;
  cfg.baseline_writes = 50;
  cfg.degradation_factor = 1.5;
  RetrainPolicy policy(cfg);
  DynamicAddressPool pool(1);
  pool.Insert(0, 1);

  // Healthy phase: 5% of bits flip.
  for (int i = 0; i < 100; ++i) policy.RecordWrite(5, 100);
  EXPECT_FALSE(policy.ShouldRetrain(pool));
  EXPECT_NEAR(policy.BaselineRatio(), 0.05, 1e-9);

  // Distribution shift: 20% of bits flip.
  for (int i = 0; i < 60; ++i) policy.RecordWrite(20, 100);
  EXPECT_GT(policy.CurrentRatio(), 0.1);
  EXPECT_TRUE(policy.ShouldRetrain(pool));
}

TEST(RetrainPolicyTest, OnRetrainResetsBaseline) {
  RetrainPolicy::Config cfg;
  cfg.min_free_per_cluster = 0;
  cfg.window = 10;
  cfg.baseline_writes = 10;
  RetrainPolicy policy(cfg);
  DynamicAddressPool pool(1);
  pool.Insert(0, 1);
  for (int i = 0; i < 20; ++i) policy.RecordWrite(1, 100);
  EXPECT_GT(policy.BaselineRatio(), 0.0);
  policy.OnRetrain();
  EXPECT_LT(policy.BaselineRatio(), 0.0);  // Unfrozen again.
  EXPECT_FALSE(policy.ShouldRetrain(pool));
}

TEST(RetrainPolicyTest, WindowForgetsOldWrites) {
  RetrainPolicy::Config cfg;
  cfg.window = 10;
  cfg.baseline_writes = 5;
  cfg.min_free_per_cluster = 0;
  RetrainPolicy policy(cfg);
  for (int i = 0; i < 20; ++i) policy.RecordWrite(50, 100);
  // Now 10 perfect writes flush the window entirely.
  for (int i = 0; i < 10; ++i) policy.RecordWrite(0, 100);
  EXPECT_DOUBLE_EQ(policy.CurrentRatio(), 0.0);
}

TEST(RetrainPolicyTest, NoBaselineBeforeEnoughWrites) {
  RetrainPolicy::Config cfg;
  cfg.baseline_writes = 100;
  RetrainPolicy policy(cfg);
  for (int i = 0; i < 50; ++i) policy.RecordWrite(10, 100);
  EXPECT_LT(policy.BaselineRatio(), 0.0);
}

}  // namespace
}  // namespace e2nvm::core
