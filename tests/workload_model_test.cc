// Oracle-backed replay of the workload scenario matrix (DESIGN.md §15):
// short versions of every bench/workload_sweep scenario shape — skew,
// the YCSB mixes, churn, drift, mixed width — run against a
// ShardedStore and a std::unordered_map shadow oracle, asserting
//
//  1. read-your-writes: every GET (including scan sub-reads and the
//     read half of RMW) returns exactly the oracle's value, and keys
//     outside the generator's live window are NotFound;
//  2. post-drain key-set equality: after the stream ends and any
//     in-flight background retrain is adopted, the store holds exactly
//     the oracle's key set, value-for-value.
//
// Background retraining is ON with the sweep's drain-on-trigger policy
// (wait out any in-flight retrain after every op), so the oracle also
// covers reads that cross a model swap. Single-threaded op stream —
// failures replay deterministically from the scenario name.
//
// The drift test at the bottom is the §5.3 adaptability property: a
// phase shift of the latent value classes degrades flips-per-bit, the
// efficiency trigger launches a background retrain, and after the swap
// the flips-per-bit of steady-state updates recovers.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitvec.h"
#include "core/sharded_store.h"
#include "workload/datasets.h"
#include "workload/ycsb.h"

namespace e2nvm::core {
namespace {

using workload::OpType;
using workload::YcsbWorkload;

constexpr size_t kSegmentsPerShard = 96;
constexpr size_t kBits = 128;
constexpr size_t kClasses = 4;
constexpr uint64_t kRecords = 48;
constexpr uint64_t kOps = 400;

struct ScenarioCase {
  std::string name;
  YcsbWorkload workload = YcsbWorkload::kA;
  double theta = 0.99;
  double churn = 0.0;
  uint64_t drift_period = 0;
  bool mixed_width = false;
};

std::vector<ScenarioCase> Matrix() {
  return {
      {"skew_low_theta", YcsbWorkload::kA, 0.50},
      {"mix_b", YcsbWorkload::kB},
      {"mix_c", YcsbWorkload::kC},
      {"mix_d_inserts", YcsbWorkload::kD},
      {"mix_e_scans", YcsbWorkload::kE},
      {"mix_f_rmw", YcsbWorkload::kF},
      {"churn", YcsbWorkload::kA, 0.99, 0.3},
      {"drift", YcsbWorkload::kA, 0.99, 0.0, kOps / 3},
      {"mixed_width", YcsbWorkload::kA, 0.99, 0.0, 0, true},
  };
}

workload::YcsbGenerator::Config GenConfig(const ScenarioCase& sc) {
  workload::YcsbGenerator::Config gc;
  gc.workload = sc.workload;
  gc.record_count = kRecords;
  gc.value_bits = kBits;
  gc.num_value_classes = kClasses;
  gc.max_scan_len = 8;
  gc.zipf_theta = sc.theta;
  gc.churn_fraction = sc.churn;
  gc.drift_period = sc.drift_period;
  if (sc.mixed_width) gc.width_mix = {kBits / 4, kBits / 2, kBits};
  return gc;
}

std::unique_ptr<ShardedStore> MakeStore(size_t shards,
                                        const ScenarioCase& sc) {
  ShardedStoreConfig cfg;
  cfg.num_shards = shards;
  cfg.shard.num_segments = kSegmentsPerShard;
  cfg.shard.segment_bits = kBits;
  cfg.shard.model.input_dim = kBits;
  cfg.shard.model.k = kClasses;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.auto_retrain = true;
  cfg.shard.background_retrain = true;
  cfg.shard.retrain.window = 40;
  cfg.shard.retrain.baseline_writes = 40;
  cfg.shard.retrain.degradation_factor = 1.4;
  auto store_or = ShardedStore::Create(cfg);
  EXPECT_TRUE(store_or.ok()) << store_or.status().ToString();

  // Seed from the scenario's own phase-0 prototypes (full width), like
  // the sweep does.
  workload::YcsbGenerator::Config gc = GenConfig(sc);
  gc.width_mix.clear();
  workload::YcsbGenerator seed_gen(gc);
  workload::BitDataset ds;
  ds.dim = kBits;
  for (uint64_t k = 0; k < kRecords; ++k) {
    ds.items.push_back(seed_gen.MakeValue(k, 0));
    ds.labels.push_back(static_cast<int>(k % kClasses));
  }
  (*store_or)->Seed(ds);
  Status st = (*store_or)->Bootstrap();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return std::move(*store_or);
}

/// The sweep's drain-on-trigger policy: any retrain launched by the
/// previous op is finished and adopted before the next op.
void DrainRetrains(ShardedStore& store) {
  for (size_t s = 0; s < store.num_shards(); ++s) {
    while (store.shard(s).engine().RetrainInFlight()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  store.PumpRetrains();
}

void ReplayScenario(const ScenarioCase& sc, size_t shards) {
  SCOPED_TRACE(sc.name + " shards=" + std::to_string(shards));
  auto store = MakeStore(shards, sc);
  workload::YcsbGenerator gen(GenConfig(sc));
  std::unordered_map<uint64_t, uint32_t> versions;
  std::unordered_map<uint64_t, BitVector> oracle;

  for (uint64_t k = 0; k < kRecords; ++k) {
    BitVector v = gen.MakeValue(k, 0);
    ASSERT_TRUE(store->Put(k, v).ok());
    versions[k] = 0;
    oracle[k] = std::move(v);
  }
  DrainRetrains(*store);

  BitVector scratch(kBits);
  auto check_read = [&](uint64_t key) {
    Status st = store->GetInto(key, &scratch);
    auto it = oracle.find(key);
    if (it == oracle.end()) {
      EXPECT_FALSE(st.ok()) << "ghost key " << key;
    } else {
      ASSERT_TRUE(st.ok()) << "key " << key << ": " << st.ToString();
      EXPECT_EQ(scratch, it->second) << "key " << key;
    }
  };
  auto write = [&](uint64_t key, uint32_t version) {
    BitVector v = gen.MakeValue(key, version);
    ASSERT_TRUE(store->Put(key, v).ok()) << "key " << key;
    oracle[key] = std::move(v);
  };

  for (uint64_t i = 0; i < kOps; ++i) {
    const workload::YcsbOp op = gen.Next();
    switch (op.type) {
      case OpType::kRead:
        check_read(op.key);
        break;
      case OpType::kUpdate:
        write(op.key, ++versions[op.key]);
        break;
      case OpType::kInsert:
        versions[op.key] = 0;
        write(op.key, 0);
        break;
      case OpType::kDelete:
        versions.erase(op.key);
        oracle.erase(op.key);
        ASSERT_TRUE(store->Delete(op.key).ok()) << "key " << op.key;
        break;
      case OpType::kScan:
        // The sweep's scan shape: consecutive keys, misses past the live
        // window. Every key inside the window must be in the oracle.
        for (size_t j = 0; j < op.scan_len; ++j) {
          const uint64_t k = op.key + j;
          const bool in_window =
              k >= gen.oldest_live() && k < gen.current_records();
          EXPECT_EQ(in_window, oracle.count(k) > 0) << "key " << k;
          check_read(k);
        }
        break;
      case OpType::kReadModifyWrite:
        check_read(op.key);
        write(op.key, ++versions[op.key]);
        break;
    }
    DrainRetrains(*store);
  }
  DrainRetrains(*store);

  // Post-drain key-set equality, value for value.
  EXPECT_EQ(store->size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    auto got = store->Get(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    EXPECT_EQ(*got, value) << "key " << key;
  }
  // A band of keys just outside the live window must be absent.
  for (uint64_t k = gen.current_records(); k < gen.current_records() + 8;
       ++k) {
    EXPECT_FALSE(store->Get(k).ok()) << "key " << k;
  }
  if (gen.oldest_live() > 0) {
    EXPECT_FALSE(store->Get(gen.oldest_live() - 1).ok());
  }
}

class WorkloadModelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadModelTest, ScenarioMatrixMatchesOracle) {
  for (const ScenarioCase& sc : Matrix()) ReplayScenario(sc, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Shards, WorkloadModelTest,
                         ::testing::Values(1, 2));

// --- Drift / adaptability (§5.3) --------------------------------------

/// Flips-per-bit of `n` round-robin updates through the live key set.
double UpdateRatio(ShardedStore& store, workload::YcsbGenerator& gen,
                   std::unordered_map<uint64_t, uint32_t>& versions,
                   uint64_t records, int n) {
  const auto before = store.TakeSnapshot();
  for (int i = 0; i < n; ++i) {
    const uint64_t key = static_cast<uint64_t>(i) % records;
    BitVector v = gen.MakeValue(key, ++versions[key]);
    EXPECT_TRUE(store.Put(key, v).ok());
    DrainRetrains(store);
  }
  const auto after = store.TakeSnapshot();
  const uint64_t flips = after.device.total_bits_flipped() -
                         before.device.total_bits_flipped();
  const uint64_t bits = after.device.logical_bits_written -
                        before.device.logical_bits_written;
  return bits > 0 ? static_cast<double>(flips) / bits : 0.0;
}

TEST(WorkloadDriftTest, PhaseShiftTriggersRetrainAndFlipsRecover) {
  ScenarioCase sc;
  sc.name = "drift_unit";
  auto store = MakeStore(1, sc);
  workload::YcsbGenerator gen(GenConfig(sc));
  std::unordered_map<uint64_t, uint32_t> versions;
  for (uint64_t k = 0; k < kRecords; ++k) {
    ASSERT_TRUE(store->Put(k, gen.MakeValue(k, 0)).ok());
    versions[k] = 0;
  }
  DrainRetrains(*store);

  // Steady state on the trained distribution.
  const double pre = UpdateRatio(*store, gen, versions, kRecords, 100);
  const uint64_t bg0 = store->TakeSnapshot().engine.background_retrains;

  // The phase shift re-draws every class prototype: the serving model
  // now clusters by a distribution that no longer exists in memory.
  gen.AdvancePhase();
  const double degraded =
      UpdateRatio(*store, gen, versions, kRecords, 40);
  EXPECT_GT(degraded, pre * 1.4) << "shift did not degrade flips";

  // Keep writing until the efficiency trigger has fired (the drain
  // policy adopts the swap immediately); bounded, so a broken trigger
  // fails the test instead of hanging it.
  uint64_t bg1 = bg0;
  for (int i = 0; i < 300 && bg1 == bg0; ++i) {
    UpdateRatio(*store, gen, versions, kRecords, 10);
    bg1 = store->TakeSnapshot().engine.background_retrains;
  }
  EXPECT_GT(bg1, bg0) << "no background retrain after phase shift";

  // After the swap (and a settling pass so every live segment holds
  // current-phase content), steady-state updates recover.
  UpdateRatio(*store, gen, versions, kRecords, 100);
  const double recovered =
      UpdateRatio(*store, gen, versions, kRecords, 100);
  EXPECT_LT(recovered, degraded * 0.9)
      << "pre=" << pre << " degraded=" << degraded
      << " recovered=" << recovered;
}

}  // namespace
}  // namespace e2nvm::core
