#include "core/batch.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/value_placer.h"
#include "nvm/controller.h"
#include "nvm/device.h"
#include "schemes/schemes.h"

namespace e2nvm::core {
namespace {

constexpr size_t kSegBits = 512;
constexpr size_t kSegments = 64;

struct Rig {
  Rig()
      : device(nvm::DeviceConfig{.num_segments = kSegments,
                                 .segment_bits = kSegBits}),
        ctrl(&device, &dcw, kSegments, 0),
        placer(&ctrl, 0, kSegments) {}
  schemes::Dcw dcw;
  nvm::NvmDevice device;
  nvm::MemoryController ctrl;
  index::ArbitraryPlacer placer;
};

BitVector SmallValue(uint64_t key, size_t bits = 64) {
  Rng rng(key * 7 + 1);
  BitVector v(bits);
  v.Randomize(rng);
  return v;
}

TEST(BatchWriterTest, RejectsOversizedAndEmpty) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  EXPECT_FALSE(bw.Put(1, BitVector(kSegBits + 1)).ok());
  EXPECT_FALSE(bw.Put(1, BitVector()).ok());
}

TEST(BatchWriterTest, StagedReadBeforeFlush) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  ASSERT_TRUE(bw.Put(1, SmallValue(1)).ok());
  ASSERT_TRUE(bw.Put(2, SmallValue(2)).ok());
  EXPECT_EQ(bw.staged_pairs(), 2u);
  EXPECT_EQ(bw.batches_placed(), 0u);
  EXPECT_EQ(rig.device.stats().writes, 0u);  // Nothing hit NVM yet.
  EXPECT_EQ(bw.Get(1).value(), SmallValue(1));
  EXPECT_EQ(bw.Get(2).value(), SmallValue(2));
}

TEST(BatchWriterTest, AutoFlushGroupsSmallWritesIntoOneSegment) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  // 8 x 64-bit values fill one 512-bit batch; the 9th triggers a flush.
  for (uint64_t k = 0; k < 9; ++k) {
    ASSERT_TRUE(bw.Put(k, SmallValue(k)).ok());
  }
  EXPECT_EQ(bw.batches_placed(), 1u);
  EXPECT_EQ(rig.device.stats().writes, 1u);  // One segment write for 8 pairs.
  for (uint64_t k = 0; k < 9; ++k) {
    EXPECT_EQ(bw.Get(k).value(), SmallValue(k)) << k;
  }
}

TEST(BatchWriterTest, ExplicitFlushAndReadBack) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  ASSERT_TRUE(bw.Put(10, SmallValue(10, 100)).ok());
  ASSERT_TRUE(bw.Put(11, SmallValue(11, 200)).ok());
  ASSERT_TRUE(bw.Flush().ok());
  EXPECT_EQ(bw.staged_pairs(), 0u);
  EXPECT_EQ(bw.Get(10).value(), SmallValue(10, 100));
  EXPECT_EQ(bw.Get(11).value(), SmallValue(11, 200));
  EXPECT_FALSE(bw.Get(99).ok());
}

TEST(BatchWriterTest, UpdateSupersedesAcrossBatches) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  ASSERT_TRUE(bw.Put(5, SmallValue(5)).ok());
  ASSERT_TRUE(bw.Flush().ok());
  ASSERT_TRUE(bw.Put(5, SmallValue(500)).ok());
  EXPECT_EQ(bw.Get(5).value(), SmallValue(500));
  ASSERT_TRUE(bw.Flush().ok());
  EXPECT_EQ(bw.Get(5).value(), SmallValue(500));
}

TEST(BatchWriterTest, SegmentReclaimedWhenAllPairsDie) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(bw.Put(k, SmallValue(k)).ok());
  }
  ASSERT_TRUE(bw.Flush().ok());
  size_t free_before = rig.placer.FreeCount();
  for (uint64_t k = 0; k < 7; ++k) {
    ASSERT_TRUE(bw.Delete(k).ok());
  }
  EXPECT_EQ(bw.segments_reclaimed(), 0u);  // One pair still alive.
  ASSERT_TRUE(bw.Delete(7).ok());
  EXPECT_EQ(bw.segments_reclaimed(), 1u);
  EXPECT_EQ(rig.placer.FreeCount(), free_before + 1);
  EXPECT_FALSE(bw.Delete(7).ok());
}

TEST(BatchWriterTest, DeleteFromStaging) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  ASSERT_TRUE(bw.Put(1, SmallValue(1)).ok());
  ASSERT_TRUE(bw.Delete(1).ok());
  EXPECT_FALSE(bw.Get(1).ok());
  EXPECT_EQ(bw.size(), 0u);
}

TEST(BatchWriterTest, ChurnConsistency) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  std::map<uint64_t, uint64_t> ref;  // key -> value seed
  Rng rng(77);
  for (int op = 0; op < 1500; ++op) {
    uint64_t key = rng.NextBounded(60);
    double p = rng.NextDouble();
    if (p < 0.6) {
      uint64_t seed = rng.NextU64() % 100000;
      ASSERT_TRUE(bw.Put(key, SmallValue(seed)).ok()) << op;
      ref[key] = seed;
    } else if (p < 0.8) {
      Status s = bw.Delete(key);
      EXPECT_EQ(s.ok(), ref.erase(key) > 0) << op;
    } else {
      auto v = bw.Get(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_FALSE(v.ok()) << op;
      } else {
        ASSERT_TRUE(v.ok()) << op;
        EXPECT_EQ(*v, SmallValue(it->second)) << op;
      }
    }
  }
  // Batching efficiency: far fewer NVM writes than puts.
  EXPECT_LT(rig.device.stats().writes, 1500u / 4);
}

TEST(BatchWriterTest, VariableWidthsPackTightly) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits);
  ASSERT_TRUE(bw.Put(1, SmallValue(1, 100)).ok());
  ASSERT_TRUE(bw.Put(2, SmallValue(2, 300)).ok());
  ASSERT_TRUE(bw.Put(3, SmallValue(3, 111)).ok());  // 511/512 used.
  EXPECT_EQ(bw.batches_placed(), 0u);
  ASSERT_TRUE(bw.Put(4, SmallValue(4, 2)).ok());  // Forces flush.
  EXPECT_EQ(bw.batches_placed(), 1u);
  for (auto [k, bits] :
       std::vector<std::pair<uint64_t, size_t>>{{1, 100}, {2, 300},
                                                 {3, 111}, {4, 2}}) {
    EXPECT_EQ(bw.Get(k).value(), SmallValue(k, bits)) << k;
  }
}

TEST(BatchWriterTest, FlushBatchesGroupsSealedBuffersIntoOnePlaceMany) {
  Rig rig;
  // Sealed full buffers pile up and are placed 4-at-a-time through one
  // PlaceMany call instead of one Place per buffer.
  BatchWriter bw(&rig.placer, kSegBits, /*flush_batches=*/4);
  // 8 x 64-bit pairs fill one buffer; 3 full buffers stay sealed.
  for (uint64_t k = 0; k < 3 * 8 + 1; ++k) {
    ASSERT_TRUE(bw.Put(k, SmallValue(k)).ok());
  }
  EXPECT_EQ(bw.batches_placed(), 0u);
  EXPECT_EQ(rig.device.stats().writes, 0u);
  EXPECT_EQ(bw.staged_pairs(), 25u);
  // Sealed values are still served from DRAM.
  EXPECT_EQ(bw.Get(0).value(), SmallValue(0));
  EXPECT_EQ(bw.Get(20).value(), SmallValue(20));
  // The 4th buffer fills and the whole group goes out at once.
  for (uint64_t k = 25; k < 4 * 8 + 1; ++k) {
    ASSERT_TRUE(bw.Put(k, SmallValue(k)).ok());
  }
  EXPECT_EQ(bw.batches_placed(), 4u);
  EXPECT_EQ(rig.device.stats().writes, 4u);
  for (uint64_t k = 0; k < 33; ++k) {
    EXPECT_EQ(bw.Get(k).value(), SmallValue(k)) << k;
  }
}

TEST(BatchWriterTest, DeleteAndUpdateInSealedBuffers) {
  Rig rig;
  BatchWriter bw(&rig.placer, kSegBits, /*flush_batches=*/8);
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(bw.Put(k, SmallValue(k)).ok());  // Buffer 0 sealed at k=8.
  }
  ASSERT_TRUE(bw.Delete(3).ok());               // Dies in a sealed buffer.
  ASSERT_TRUE(bw.Put(5, SmallValue(5, 32)).ok());  // Restaged into current.
  EXPECT_FALSE(bw.Get(3).ok());
  EXPECT_EQ(bw.Get(5).value(), SmallValue(5, 32));
  ASSERT_TRUE(bw.Flush().ok());
  EXPECT_FALSE(bw.Get(3).ok());
  EXPECT_EQ(bw.Get(5).value(), SmallValue(5, 32));
  for (uint64_t k : {0u, 1u, 2u, 4u, 6u, 7u, 8u, 9u}) {
    EXPECT_EQ(bw.Get(k).value(), SmallValue(k)) << k;
  }
}

}  // namespace
}  // namespace e2nvm::core
