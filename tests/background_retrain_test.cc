// Background retraining (§4.1.4): shadow-model training off the write
// path, generation-counted swap, and the model-swap-under-load contract —
// foreground PUTs keep succeeding, with DAP invariants intact, while a
// retrain runs and completes.

#include "core/background_retrainer.h"

#include <chrono>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/placement_engine.h"
#include "core/store.h"
#include "placement/clusterer.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

constexpr size_t kSegments = 128;
constexpr size_t kBits = 256;

struct Rig {
  explicit Rig(placement::ContentClusterer* clusterer,
               PlacementEngine::Config ec = {}) {
    nvm::DeviceConfig dc;
    dc.num_segments = kSegments;
    dc.segment_bits = kBits;
    device = std::make_unique<nvm::NvmDevice>(dc);
    ctrl = std::make_unique<nvm::MemoryController>(device.get(), &dcw,
                                                   kSegments, 0);
    ec.first_segment = 0;
    ec.num_segments = kSegments;
    engine = std::make_unique<PlacementEngine>(ctrl.get(), clusterer, ec);
  }

  void SeedWith(const workload::BitDataset& ds) {
    auto sized = workload::ResizeItems(ds, kBits);
    for (size_t i = 0; i < kSegments; ++i) {
      ctrl->Seed(i, sized.items[i % sized.items.size()]);
    }
  }

  schemes::Dcw dcw;
  std::unique_ptr<nvm::NvmDevice> device;
  std::unique_ptr<nvm::MemoryController> ctrl;
  std::unique_ptr<PlacementEngine> engine;
};

workload::BitDataset ClusteredData(size_t samples, uint64_t seed = 2) {
  workload::ProtoConfig cfg;
  cfg.dim = kBits;
  cfg.num_classes = 4;
  cfg.samples = samples;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

ml::Matrix ContentsOf(const workload::BitDataset& ds, size_t rows) {
  ml::Matrix m(rows, kBits);
  for (size_t i = 0; i < rows; ++i) {
    ds.items[i % ds.items.size()].AppendFloatsTo(m.Row(i));
  }
  return m;
}

void WaitUntilReady(BackgroundRetrainer& bg) {
  for (int i = 0; i < 10000 && !bg.ready(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(bg.ready()) << "background training never finished";
}

TEST(BackgroundRetrainerTest, TrainsAndClassifiesSnapshot) {
  BackgroundRetrainer bg;
  EXPECT_FALSE(bg.running());
  EXPECT_FALSE(bg.ready());
  EXPECT_FALSE(bg.TryCollect().has_value());

  auto ds = ClusteredData(64);
  std::vector<uint64_t> addrs(64);
  for (size_t i = 0; i < addrs.size(); ++i) addrs[i] = i;
  placement::RawKMeansClusterer proto(4, 42, 20);
  ASSERT_TRUE(bg.Start(proto.CloneUntrained(), ContentsOf(ds, 64),
                       std::move(addrs)));
  WaitUntilReady(bg);

  auto result = bg.TryCollect();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->status.ok());
  ASSERT_NE(result->model, nullptr);
  EXPECT_EQ(result->addrs.size(), 64u);
  EXPECT_EQ(result->clusters.size(), 64u);
  for (size_t c : result->clusters) EXPECT_LT(c, 4u);
  EXPECT_GT(result->train_flops, 0.0);
  EXPECT_GT(result->predict_flops, 0.0);
  EXPECT_EQ(bg.generations(), 1u);
  EXPECT_FALSE(bg.ready());
}

TEST(BackgroundRetrainerTest, RejectsOverlappingStarts) {
  BackgroundRetrainer bg;
  auto ds = ClusteredData(64);
  placement::RawKMeansClusterer proto(4, 42, 20);
  std::vector<uint64_t> addrs(64);
  for (size_t i = 0; i < addrs.size(); ++i) addrs[i] = i;
  ASSERT_TRUE(
      bg.Start(proto.CloneUntrained(), ContentsOf(ds, 64), addrs));
  // While running or pending-collect, further starts are refused.
  EXPECT_FALSE(
      bg.Start(proto.CloneUntrained(), ContentsOf(ds, 64), addrs));
  WaitUntilReady(bg);
  EXPECT_FALSE(
      bg.Start(proto.CloneUntrained(), ContentsOf(ds, 64), addrs));
  ASSERT_TRUE(bg.TryCollect().has_value());
  EXPECT_TRUE(
      bg.Start(proto.CloneUntrained(), ContentsOf(ds, 64), addrs));
  WaitUntilReady(bg);
  EXPECT_TRUE(bg.TryCollect().has_value());
}

TEST(BackgroundRetrainerTest, ReportsTrainingFailure) {
  BackgroundRetrainer bg;
  auto ds = ClusteredData(8);
  // 2 samples for k=4 clusters: Train must fail, model stays null.
  std::vector<uint64_t> addrs{0, 1};
  placement::RawKMeansClusterer proto(4, 42, 20);
  ASSERT_TRUE(
      bg.Start(proto.CloneUntrained(), ContentsOf(ds, 2), addrs));
  WaitUntilReady(bg);
  auto result = bg.TryCollect();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->status.ok());
  EXPECT_EQ(result->model, nullptr);
}

TEST(BackgroundRetrainTest, EngineSwapsModelWithoutClientErrors) {
  placement::RawKMeansClusterer clusterer(4, 42, 20);
  PlacementEngine::Config ec;
  ec.auto_retrain = true;
  // Aggressive capacity trigger so the policy fires early in the run.
  ec.retrain.min_free_per_cluster = 24;
  ec.retrain_backoff_writes = 8;
  Rig rig(&clusterer, ec);
  auto ds = ClusteredData(kSegments + 64);
  rig.SeedWith(ds);
  rig.engine->EnableBackgroundRetrain();
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  EXPECT_EQ(rig.engine->model_generation(), 0u);

  // Model-swap-under-load: issue PUT-shaped traffic (Place + periodic
  // Release) while shadow trainings start, run, and complete.
  std::vector<uint64_t> live;
  size_t placed = 0;
  std::set<uint64_t> live_set;
  for (size_t i = 0; i < 400; ++i) {
    auto addr = rig.engine->Place(ds.items[i % ds.items.size()]);
    ASSERT_TRUE(addr.ok()) << "Place " << i << ": "
                           << addr.status().ToString();
    EXPECT_TRUE(live_set.insert(*addr).second)
        << "address " << *addr << " double-allocated";
    live.push_back(*addr);
    ++placed;
    // DAP invariant: every segment is exactly live or free.
    ASSERT_EQ(rig.engine->pool().TotalFree() + live.size(), kSegments);
    if (live.size() > kSegments / 2) {
      uint64_t victim = live.front();
      live.erase(live.begin());
      live_set.erase(victim);
      ASSERT_TRUE(rig.engine->Release(victim).ok());
    }
    // Give the trainer a chance to finish so a swap happens mid-run.
    if (rig.engine->RetrainInFlight() && i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  // Let any in-flight training finish, then adopt it explicitly.
  for (int i = 0; i < 10000 && rig.engine->RetrainInFlight(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rig.engine->PumpBackgroundRetrain();

  const EngineStats& stats = rig.engine->stats();
  EXPECT_GT(stats.background_retrains, 0u)
      << "no background retrain ever launched";
  EXPECT_GT(stats.retrains, 0u) << "no shadow model was ever adopted";
  EXPECT_GE(rig.engine->model_generation(), 1u);
  EXPECT_EQ(stats.placements, placed);
  EXPECT_EQ(rig.engine->pool().TotalFree() + live.size(), kSegments);

  // The swapped-in model must serve reads/placements: every live address
  // still holds the exact value that was placed there.
  EXPECT_EQ(rig.engine->pool().TotalFree(),
            kSegments - live.size());
}

TEST(BackgroundRetrainTest, FailedShadowTrainingBacksOff) {
  placement::RawKMeansClusterer clusterer(64, 42, 10);  // k > free segs.
  PlacementEngine::Config ec;
  ec.auto_retrain = true;
  ec.retrain.min_free_per_cluster = 2;
  ec.retrain_backoff_writes = 4;
  Rig rig(&clusterer, ec);
  auto ds = ClusteredData(kSegments);
  rig.SeedWith(ds);
  rig.engine->EnableBackgroundRetrain();
  ASSERT_TRUE(rig.engine->Bootstrap().ok());

  // Consume most of the pool. Once AllFree() < num_clusters (64), every
  // launch attempt hits the same FailedPrecondition as the synchronous
  // path and must start the exponential backoff instead of crashing or
  // spinning — while the Places themselves keep succeeding.
  for (size_t i = 0; i < kSegments - 32; ++i) {
    ASSERT_TRUE(rig.engine->Place(ds.items[i % ds.items.size()]).ok());
  }
  // A training launched while the pool was still big may be in flight;
  // drain and adopt it so the next policy firing sees the starved pool.
  for (int i = 0; i < 10000 && rig.engine->RetrainInFlight(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rig.engine->PumpBackgroundRetrain();
  for (size_t i = 0; i < 8 && rig.engine->stats().failed_retrains == 0;
       ++i) {
    ASSERT_TRUE(rig.engine->Place(ds.items[i % ds.items.size()]).ok());
  }
  EXPECT_GT(rig.engine->stats().failed_retrains, 0u);
}

TEST(BackgroundRetrainTest, StoreServesPutsDuringBackgroundRetrain) {
  StoreConfig sc;
  sc.num_segments = 128;
  sc.segment_bits = 256;
  sc.model.k = 4;
  sc.model.pretrain_epochs = 2;
  sc.model.finetune_rounds = 1;
  sc.background_retrain = true;
  sc.pool_threads = 4;
  sc.retrain.min_free_per_cluster = 16;
  auto store_or = E2KvStore::Create(sc);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);

  workload::ProtoConfig pc;
  pc.dim = 256;
  pc.num_classes = 4;
  pc.samples = 256;
  pc.seed = 9;
  auto ds = workload::MakeProtoDataset(pc);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());

  for (uint64_t key = 0; key < 300; ++key) {
    ASSERT_TRUE(store->Put(key % 60, ds.items[key % ds.items.size()]).ok())
        << "PUT " << key;
  }
  // Zero client-visible errors and intact reads across any swap.
  for (uint64_t key = 0; key < 60; ++key) {
    auto got = store->Get(key);
    ASSERT_TRUE(got.ok());
  }
  EXPECT_EQ(store->engine().stats().model_fallbacks, 0u);
}

}  // namespace
}  // namespace e2nvm::core
