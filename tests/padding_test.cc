#include "core/padding.h"

#include <gtest/gtest.h>

#include "ml/kmeans.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

TEST(PaddingTest, NamesStable) {
  EXPECT_EQ(PadTypeName(PadType::kZero), "zero");
  EXPECT_EQ(PadTypeName(PadType::kLearned), "LB");
  EXPECT_EQ(PadLocationName(PadLocation::kMiddle), "middle");
}

TEST(PaddingTest, AssembleMatchesFig5Layouts) {
  // Fig 5: d1 = [0,0,0,1], pad of 4 bits (all '1' here to be visible).
  BitVector input = BitVector::FromString("0001");
  BitVector pad = BitVector::FromString("1111");
  EXPECT_EQ(Padder::Assemble(input, pad, PadLocation::kBegin).ToString(),
            "11110001");
  EXPECT_EQ(Padder::Assemble(input, pad, PadLocation::kEnd).ToString(),
            "00011111");
  EXPECT_EQ(Padder::Assemble(input, pad, PadLocation::kMiddle).ToString(),
            "11000111");  // Split halves around the data? No: pad/2 each
                          // side of the 4-bit data: 11 0001 11.
}

TEST(PaddingTest, OnePaddingBeginMatchesPaperExample) {
  // §4.1.1: one-padding, beginning location on d1=[0,0,0,1] with model
  // width 8 yields [1,1,1,1,0,0,0,1].
  Padder padder(PadType::kOne, PadLocation::kBegin, 8);
  PaddingContext ctx;
  auto out = padder.Pad(BitVector::FromString("0001"), ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->ToString(), "11110001");
}

TEST(PaddingTest, ZeroPaddingAllLocations) {
  PaddingContext ctx;
  BitVector input = BitVector::FromString("0001");
  for (auto loc : {PadLocation::kBegin, PadLocation::kMiddle,
                   PadLocation::kEnd}) {
    Padder padder(PadType::kZero, loc, 8);
    auto out = padder.Pad(input, ctx);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 8u);
    EXPECT_EQ(out->Popcount(), 1u);  // Only the input's single 1.
  }
}

TEST(PaddingTest, ExactWidthPassThrough) {
  Padder padder(PadType::kOne, PadLocation::kEnd, 8);
  PaddingContext ctx;
  BitVector input = BitVector::FromString("10101010");
  auto out = padder.Pad(input, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(PaddingTest, TooWideRejected) {
  Padder padder(PadType::kZero, PadLocation::kEnd, 4);
  PaddingContext ctx;
  auto out = padder.Pad(BitVector(8), ctx);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(PaddingTest, RandomNeedsRng) {
  Padder padder(PadType::kRandom, PadLocation::kEnd, 8);
  PaddingContext ctx;  // No rng.
  auto out = padder.Pad(BitVector(4), ctx);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  Rng rng(1);
  ctx.rng = &rng;
  EXPECT_TRUE(padder.Pad(BitVector(4), ctx).ok());
}

TEST(PaddingTest, InputBasedMatchesInputDensity) {
  // IB: pad bits are Bernoulli with the input's ones-ratio (§4.1.2).
  Rng rng(3);
  PaddingContext ctx;
  ctx.rng = &rng;
  // Input of 256 bits, 25% ones; pad 768 bits.
  BitVector input(256);
  for (size_t i = 0; i < 64; ++i) input.Set(i, true);
  Padder padder(PadType::kInputBased, PadLocation::kEnd, 1024);
  auto out = padder.Pad(input, ctx);
  ASSERT_TRUE(out.ok());
  size_t pad_ones = out->Popcount() - 64;
  EXPECT_NEAR(static_cast<double>(pad_ones) / 768.0, 0.25, 0.06);
}

TEST(PaddingTest, DatasetAndMemoryBasedUseContextRatios) {
  Rng rng(4);
  PaddingContext ctx;
  ctx.rng = &rng;
  ctx.dataset_ones_ratio = 0.9;
  ctx.memory_ones_ratio = 0.1;
  BitVector input(64);
  Padder db(PadType::kDatasetBased, PadLocation::kEnd, 1024);
  Padder mb(PadType::kMemoryBased, PadLocation::kEnd, 1024);
  auto dbout = db.Pad(input, ctx);
  auto mbout = mb.Pad(input, ctx);
  ASSERT_TRUE(dbout.ok());
  ASSERT_TRUE(mbout.ok());
  EXPECT_GT(dbout->Popcount(), 960u * 8 / 10);
  EXPECT_LT(mbout->Popcount(), 960u * 2 / 10);
}

TEST(PaddingTest, OnesRatioHelper) {
  EXPECT_DOUBLE_EQ(OnesRatio(BitVector::FromString("1100")), 0.5);
  EXPECT_DOUBLE_EQ(OnesRatio(BitVector()), 0.5);  // Neutral default.
}

TEST(PaddingTest, LearnedNeedsLstm) {
  Padder padder(PadType::kLearned, PadLocation::kEnd, 128);
  PaddingContext ctx;
  auto out = padder.Pad(BitVector(64), ctx);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

class LearnedPaddingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Periodic-structure dataset the LSTM can learn.
    workload::VideoConfig vc;
    vc.dim = 512;
    vc.frames = 60;
    vc.frame_noise = 0.01;
    vc.scene_len = 30;
    vc.seed = 5;
    train_ = workload::MakeVideoDataset(vc);
    ml::LstmConfig lc;
    lc.input_size = 8;
    lc.timesteps = 8;
    lc.hidden_size = 10;
    lc.output_size = 8;
    auto lstm = TrainPaddingLstm(train_, lc, /*epochs=*/3,
                                 /*max_windows=*/2000);
    ASSERT_TRUE(lstm.ok()) << lstm.status().ToString();
    lstm_ = std::move(*lstm);
  }

  workload::BitDataset train_;
  std::unique_ptr<ml::Lstm> lstm_;
};

TEST_F(LearnedPaddingTest, GeneratesRequestedWidthAllLocations) {
  PaddingContext ctx;
  ctx.lstm = lstm_.get();
  BitVector input = train_.items[0].Slice(0, 300);
  for (auto loc : {PadLocation::kBegin, PadLocation::kMiddle,
                   PadLocation::kEnd}) {
    Padder padder(PadType::kLearned, loc, 512);
    auto out = padder.Pad(input, ctx);
    ASSERT_TRUE(out.ok()) << PadLocationName(loc);
    EXPECT_EQ(out->size(), 512u);
  }
  // End padding preserves the input prefix.
  Padder end_padder(PadType::kLearned, PadLocation::kEnd, 512);
  auto out = end_padder.Pad(input, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Slice(0, 300), input);
}

TEST_F(LearnedPaddingTest, TrainRejectsTinyItems) {
  workload::BitDataset tiny;
  tiny.dim = 16;
  tiny.items.assign(4, BitVector(16));
  ml::LstmConfig lc;
  lc.input_size = 8;
  lc.timesteps = 8;
  lc.output_size = 8;
  auto lstm = TrainPaddingLstm(tiny, lc, 1);
  EXPECT_EQ(lstm.status().code(), StatusCode::kInvalidArgument);
}

TEST(PaddingTable1Test, PaperExampleClusterAssignments) {
  // Build the 12-segment memory of Table 1, cluster into 3 groups with
  // K-means on the raw bits, and verify the table's grouping is
  // recoverable: rows 0-3, 4-7, 8-11 form the three clusters.
  const char* contents[12] = {
      "00111101", "00101100", "00111100", "00111000",
      "10001011", "00001011", "00001111", "00001010",
      "10110000", "01110010", "11110000", "11010000",
  };
  ml::Matrix x(12, 8);
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      x(i, j) = contents[i][j] == '1' ? 1.0f : 0.0f;
    }
  }
  // Multi-restart: keep the lowest-SSE fit (12 points are small enough
  // for k-means++ to hit bad local optima on a single seed).
  std::unique_ptr<ml::KMeans> best;
  double best_sse = 1e300;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto km = std::make_unique<ml::KMeans>(
        ml::KMeansConfig{.k = 3, .max_iters = 100, .seed = seed});
    ASSERT_TRUE(km->Fit(x).ok());
    double sse = km->Sse(x);
    if (sse < best_sse) {
      best_sse = sse;
      best = std::move(km);
    }
  }
  ml::KMeans& km = *best;
  auto assign = km.PredictBatch(x);
  for (size_t group = 0; group < 3; ++group) {
    for (size_t i = 1; i < 4; ++i) {
      EXPECT_EQ(assign[group * 4 + i], assign[group * 4])
          << "row " << group * 4 + i;
    }
  }
  EXPECT_NE(assign[0], assign[4]);
  EXPECT_NE(assign[4], assign[8]);
  EXPECT_NE(assign[0], assign[8]);

  // One-padding at the beginning on d1=[0,0,0,1] produces 11110001,
  // which Fig 5 assigns to the cluster of rows 8-11 (the '1'-heavy
  // prefix group).
  std::vector<float> padded(8);
  BitVector p = BitVector::FromString("11110001");
  for (size_t j = 0; j < 8; ++j) padded[j] = p.Get(j) ? 1.0f : 0.0f;
  EXPECT_EQ(km.Predict(padded.data(), 8), assign[8]);

  // Zero-padding at the beginning gives 00000001, closest to the
  // cluster of rows 4-7 (sparse prefix group) per Fig 5.
  std::vector<float> zp(8, 0.0f);
  zp[7] = 1.0f;
  EXPECT_EQ(km.Predict(zp.data(), 8), assign[4]);
}

}  // namespace
}  // namespace e2nvm::core
