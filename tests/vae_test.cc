#include "ml/vae.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace e2nvm::ml {
namespace {

/// Two-prototype binary dataset: easy structure a tiny VAE must learn.
Matrix TwoProtoData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, dim);
  for (size_t i = 0; i < n; ++i) {
    bool cls = (i % 2) == 0;
    for (size_t d = 0; d < dim; ++d) {
      // Class 0: first half ones; class 1: second half ones; 5% noise.
      bool bit = cls ? (d < dim / 2) : (d >= dim / 2);
      if (rng.NextBernoulli(0.05)) bit = !bit;
      x(i, d) = bit ? 1.0f : 0.0f;
    }
  }
  return x;
}

VaeConfig SmallConfig(size_t dim = 64) {
  VaeConfig c;
  c.input_dim = dim;
  c.hidden_dim = 32;
  c.latent_dim = 4;
  c.beta = 0.1f;
  c.seed = 42;
  return c;
}

TEST(VaeTest, ShapesAreCorrect) {
  Vae vae(SmallConfig());
  Matrix x = TwoProtoData(10, 64, 1);
  Matrix mu = vae.EncodeMu(x);
  EXPECT_EQ(mu.rows(), 10u);
  EXPECT_EQ(mu.cols(), 4u);
  Matrix probs = vae.Decode(mu);
  EXPECT_EQ(probs.rows(), 10u);
  EXPECT_EQ(probs.cols(), 64u);
  for (float p : probs.data()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(VaeTest, EncodeOneMatchesBatch) {
  Vae vae(SmallConfig());
  Matrix x = TwoProtoData(3, 64, 2);
  Matrix mu = vae.EncodeMu(x);
  std::vector<float> row(x.Row(1), x.Row(1) + 64);
  auto one = vae.EncodeOne(row);
  ASSERT_EQ(one.size(), 4u);
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_NEAR(one[d], mu(1, d), 1e-5f);
  }
}

TEST(VaeTest, TrainingReducesLoss) {
  Vae vae(SmallConfig());
  Matrix x = TwoProtoData(200, 64, 3);
  double before = vae.EvalLoss(x);
  VaeTrainOptions opts;
  opts.epochs = 8;
  opts.batch_size = 32;
  TrainHistory h = vae.Train(x, opts);
  double after = vae.EvalLoss(x);
  EXPECT_LT(after, before * 0.75);
  ASSERT_EQ(h.train_loss.size(), 8u);
  ASSERT_EQ(h.val_loss.size(), 8u);
  // Learning curve: final epoch loss well below the first (Fig 9 shape).
  EXPECT_LT(h.train_loss.back(), h.train_loss.front() * 0.8);
  EXPECT_GT(h.flops, 0.0);
}

TEST(VaeTest, LatentSeparatesClasses) {
  Vae vae(SmallConfig());
  Matrix x = TwoProtoData(200, 64, 4);
  VaeTrainOptions opts;
  opts.epochs = 12;
  opts.batch_size = 32;
  vae.Train(x, opts);
  Matrix mu = vae.EncodeMu(x);
  // Mean latent of class 0 vs class 1 must be farther apart than the
  // average intra-class spread.
  std::vector<double> m0(4, 0), m1(4, 0);
  size_t n0 = 0, n1 = 0;
  for (size_t i = 0; i < mu.rows(); ++i) {
    for (size_t d = 0; d < 4; ++d) {
      if (i % 2 == 0) {
        m0[d] += mu(i, d);
      } else {
        m1[d] += mu(i, d);
      }
    }
    (i % 2 == 0 ? n0 : n1) += 1;
  }
  double between = 0;
  for (size_t d = 0; d < 4; ++d) {
    m0[d] /= n0;
    m1[d] /= n1;
    between += (m0[d] - m1[d]) * (m0[d] - m1[d]);
  }
  double within = 0;
  for (size_t i = 0; i < mu.rows(); ++i) {
    const auto& m = (i % 2 == 0) ? m0 : m1;
    for (size_t d = 0; d < 4; ++d) {
      within += (mu(i, d) - m[d]) * (mu(i, d) - m[d]);
    }
  }
  within /= mu.rows();
  EXPECT_GT(between, 2.0 * within);
}

TEST(VaeTest, ReconstructionBeatsChanceAfterTraining) {
  Vae vae(SmallConfig());
  Matrix x = TwoProtoData(200, 64, 5);
  VaeTrainOptions opts;
  opts.epochs = 12;
  opts.batch_size = 32;
  vae.Train(x, opts);
  Matrix mu = vae.EncodeMu(x);
  Matrix probs = vae.Decode(mu);
  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if ((probs.data()[i] >= 0.5f) == (x.data()[i] >= 0.5f)) ++correct;
  }
  double accuracy = static_cast<double>(correct) / x.size();
  EXPECT_GT(accuracy, 0.85);
}

TEST(VaeTest, ValidationSplitIsHonored) {
  Vae vae(SmallConfig());
  Matrix x = TwoProtoData(100, 64, 6);
  VaeTrainOptions opts;
  opts.epochs = 2;
  opts.validation_fraction = 0.2;
  TrainHistory h = vae.Train(x, opts);
  // Validation loss should be finite and comparable to train loss.
  EXPECT_GT(h.val_loss.back(), 0.0);
  EXPECT_LT(h.val_loss.back(), 10.0 * h.train_loss.back() + 100.0);
}

TEST(VaeTest, DeterministicPerSeed) {
  VaeConfig c = SmallConfig();
  Vae a(c), b(c);
  Matrix x = TwoProtoData(50, 64, 7);
  VaeTrainOptions opts;
  opts.epochs = 2;
  a.Train(x, opts);
  b.Train(x, opts);
  Matrix za = a.EncodeMu(x), zb = b.EncodeMu(x);
  for (size_t i = 0; i < za.size(); ++i) {
    EXPECT_FLOAT_EQ(za.data()[i], zb.data()[i]);
  }
}

TEST(VaeTest, ClusterRegularizerPullsTowardCentroid) {
  VaeConfig c = SmallConfig();
  Vae vae(c);
  Matrix x = TwoProtoData(32, 64, 8);
  // One fake centroid at the origin with huge weight: latents shrink.
  Matrix centroids(1, 4);
  std::vector<size_t> assign(32, 0);
  double norm_before = FrobeniusSq(vae.EncodeMu(x));
  VaeTrainOptions opts;
  opts.centroids = &centroids;
  opts.assignments = &assign;
  opts.cluster_weight = 5.0f;
  for (int i = 0; i < 30; ++i) vae.TrainBatch(x, opts);
  double norm_after = FrobeniusSq(vae.EncodeMu(x));
  EXPECT_LT(norm_after, norm_before);
}

TEST(VaeTest, FlopsEstimatesPositiveAndOrdered) {
  Vae vae(SmallConfig());
  EXPECT_GT(vae.PredictFlops(), 0.0);
  EXPECT_GT(vae.TrainStepFlops(32), vae.PredictFlops());
  EXPECT_GT(vae.ParamCount(), 0u);
}

}  // namespace
}  // namespace e2nvm::ml
