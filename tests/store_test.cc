#include "core/store.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace e2nvm::core {
namespace {

StoreConfig SmallStoreConfig() {
  StoreConfig cfg;
  cfg.num_segments = 128;
  cfg.segment_bits = 256;
  cfg.model.k = 4;
  cfg.model.hidden_dim = 32;
  cfg.model.latent_dim = 6;
  cfg.model.pretrain_epochs = 4;
  cfg.model.finetune_rounds = 1;
  return cfg;
}

workload::BitDataset SeedData(uint64_t seed = 1) {
  workload::ProtoConfig cfg;
  cfg.dim = 256;
  cfg.num_classes = 4;
  cfg.samples = 200;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

std::unique_ptr<E2KvStore> MakeStore(StoreConfig cfg = SmallStoreConfig()) {
  auto store = E2KvStore::Create(cfg);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  (*store)->Seed(SeedData());
  EXPECT_TRUE((*store)->Bootstrap().ok());
  return std::move(*store);
}

TEST(StoreTest, CreateRejectsEmptyGeometry) {
  StoreConfig cfg;
  cfg.num_segments = 0;
  EXPECT_FALSE(E2KvStore::Create(cfg).ok());
}

TEST(StoreTest, PutGetRoundTrip) {
  auto store = MakeStore();
  auto ds = SeedData(2);
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(store->Put(k, ds.items[k]).ok());
  }
  EXPECT_EQ(store->size(), 20u);
  for (uint64_t k = 0; k < 20; ++k) {
    auto v = store->Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, ds.items[k]) << k;
  }
  EXPECT_FALSE(store->Get(999).ok());
}

TEST(StoreTest, UpdateReplacesAndRecycles) {
  auto store = MakeStore();
  auto ds = SeedData(3);
  ASSERT_TRUE(store->Put(7, ds.items[0]).ok());
  size_t free_after_put = store->engine().pool().TotalFree();
  ASSERT_TRUE(store->Put(7, ds.items[1]).ok());
  // New address consumed, old one recycled: net free unchanged.
  EXPECT_EQ(store->engine().pool().TotalFree(), free_after_put);
  EXPECT_EQ(store->Get(7).value(), ds.items[1]);
  EXPECT_EQ(store->size(), 1u);
}

TEST(StoreTest, DeleteRemovesAndRecycles) {
  auto store = MakeStore();
  auto ds = SeedData(4);
  ASSERT_TRUE(store->Put(1, ds.items[0]).ok());
  size_t free_now = store->engine().pool().TotalFree();
  ASSERT_TRUE(store->Delete(1).ok());
  EXPECT_EQ(store->engine().pool().TotalFree(), free_now + 1);
  EXPECT_FALSE(store->Get(1).ok());
  EXPECT_EQ(store->Delete(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(store->size(), 0u);
}

TEST(StoreTest, ScanReturnsOrderedRange) {
  auto store = MakeStore();
  auto ds = SeedData(5);
  for (uint64_t k = 0; k < 30; k += 2) {
    ASSERT_TRUE(store->Put(k, ds.items[k]).ok());
  }
  auto scan = store->Scan(10, 5);
  ASSERT_EQ(scan.size(), 5u);
  EXPECT_EQ(scan[0].first, 10u);
  EXPECT_EQ(scan[0].second, ds.items[10]);
  for (size_t i = 1; i < scan.size(); ++i) {
    EXPECT_GT(scan[i].first, scan[i - 1].first);
  }
}

TEST(StoreTest, VariableSizeValues) {
  auto store = MakeStore();
  BitVector small(100);
  small.Set(3, true);
  ASSERT_TRUE(store->Put(5, small).ok());
  auto v = store->Get(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 100u);
  EXPECT_EQ(*v, small);
}

TEST(StoreTest, WearLevelingKeepsSemantics) {
  StoreConfig cfg = SmallStoreConfig();
  cfg.psi = 4;  // Gap move every 4 writes.
  auto store = E2KvStore::Create(cfg);
  ASSERT_TRUE(store.ok());
  (*store)->Seed(SeedData(6));
  ASSERT_TRUE((*store)->Bootstrap().ok());
  auto ds = SeedData(7);
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE((*store)->Put(k, ds.items[k]).ok());
  }
  for (uint64_t k = 0; k < 40; ++k) {
    auto v = (*store)->Get(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, ds.items[k]) << k;
  }
  ASSERT_NE((*store)->controller().leveler(), nullptr);
  EXPECT_GT((*store)->controller().leveler()->moves(), 0u);
}

TEST(StoreTest, FlipsStayLowOnClusterableWrites) {
  auto store = MakeStore();
  // Same distribution the store was seeded (and its model trained) on:
  // seed 1 reproduces the same class prototypes.
  auto ds = SeedData(1);
  uint64_t writes = 0;
  store->device().ResetStats();
  for (uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(store->Put(k, ds.items[k % ds.items.size()]).ok());
    ++writes;
  }
  // Average flips per write should be far below half the segment
  // (random placement would flip ~dim/2 plus noise; same-cluster
  // placement flips ~2*noise*dim).
  double flips_per_write =
      static_cast<double>(store->device().stats().total_bits_flipped()) /
      static_cast<double>(writes);
  EXPECT_LT(flips_per_write, 256 * 0.25)
      << "flips/write=" << flips_per_write;
}

TEST(StoreTest, EnergyAccumulatesAcrossDomains) {
  auto store = MakeStore();
  auto ds = SeedData(9);
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(store->Put(k, ds.items[k]).ok());
    ASSERT_TRUE(store->Get(k).ok());
  }
  auto& meter = store->meter();
  EXPECT_GT(meter.DomainPj(nvm::EnergyDomain::kPmemWrite), 0.0);
  EXPECT_GT(meter.DomainPj(nvm::EnergyDomain::kPmemRead), 0.0);
  EXPECT_GT(meter.DomainPj(nvm::EnergyDomain::kCpuModel), 0.0);
  EXPECT_GT(meter.now_ns(), 0.0);
}

TEST(StoreTest, TreeInvariantsHoldUnderChurn) {
  auto store = MakeStore();
  auto ds = SeedData(10);
  Rng rng(11);
  for (int op = 0; op < 200; ++op) {
    uint64_t key = rng.NextBounded(50);
    if (rng.NextBernoulli(0.7)) {
      ASSERT_TRUE(
          store->Put(key, ds.items[key % ds.items.size()]).ok());
    } else {
      store->Delete(key);  // May be NotFound; that's fine.
    }
  }
  EXPECT_TRUE(store->tree().CheckInvariants());
}

}  // namespace
}  // namespace e2nvm::core
