#include "ml/layers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace e2nvm::ml {
namespace {

/// Numerical gradient check: perturbs each parameter/input and compares
/// the finite-difference slope of a scalar loss L = sum(Y) against the
/// analytic gradient from Backward(ones).
double SumForward(Layer& layer, const Matrix& x) {
  Matrix y = layer.Forward(x);
  double s = 0;
  for (float v : y.data()) s += v;
  return s;
}

TEST(DenseTest, ForwardMatchesManual) {
  Rng rng(1);
  Dense d(2, 2, rng);
  d.weights().value(0, 0) = 1;
  d.weights().value(0, 1) = 2;
  d.weights().value(1, 0) = 3;
  d.weights().value(1, 1) = 4;
  d.bias().value(0, 0) = 10;
  d.bias().value(0, 1) = 20;
  Matrix x(1, 2);
  x(0, 0) = 1;
  x(0, 1) = 1;
  Matrix y = d.Forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y(0, 1), 2 + 4 + 20);
}

TEST(DenseTest, GradientCheckWeights) {
  Rng rng(2);
  Dense d(3, 2, rng);
  Matrix x(4, 3);
  for (auto& v : x.data()) v = rng.NextFloat() - 0.5f;

  // Analytic gradient of L = sum(Y).
  d.Forward(x);
  Matrix dy(4, 2);
  dy.Fill(1.0f);
  d.ZeroGrad();
  Matrix dx = d.Backward(dy);

  const float eps = 1e-3f;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      float orig = d.weights().value(i, j);
      d.weights().value(i, j) = orig + eps;
      double up = SumForward(d, x);
      d.weights().value(i, j) = orig - eps;
      double down = SumForward(d, x);
      d.weights().value(i, j) = orig;
      double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(d.weights().grad(i, j), numeric, 1e-2)
          << "w(" << i << "," << j << ")";
    }
  }
  // Input gradient: dL/dx = sum over outputs of W.
  for (size_t r = 0; r < 4; ++r) {
    for (size_t i = 0; i < 3; ++i) {
      float expect =
          d.weights().value(i, 0) + d.weights().value(i, 1);
      EXPECT_NEAR(dx(r, i), expect, 1e-4);
    }
  }
}

TEST(DenseTest, BiasGradientIsBatchCount) {
  Rng rng(3);
  Dense d(2, 2, rng);
  Matrix x(5, 2);
  for (auto& v : x.data()) v = rng.NextFloat();
  d.Forward(x);
  Matrix dy(5, 2);
  dy.Fill(1.0f);
  d.ZeroGrad();
  d.Backward(dy);
  EXPECT_FLOAT_EQ(d.bias().grad(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(d.bias().grad(0, 1), 5.0f);
}

template <typename ActT>
void ActivationGradientCheck(uint64_t seed) {
  Rng rng(seed);
  ActT act;
  Matrix x(3, 4);
  for (auto& v : x.data()) v = 2.0f * rng.NextFloat() - 1.0f;
  act.Forward(x);
  Matrix dy(3, 4);
  dy.Fill(1.0f);
  Matrix dx = act.Backward(dy);
  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); ++i) {
    Matrix xp = x, xm = x;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    ActT fresh;
    double up = SumForward(fresh, xp);
    double down = SumForward(fresh, xm);
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, 5e-3) << "elem " << i;
  }
}

TEST(ActivationTest, SigmoidGradient) {
  ActivationGradientCheck<Sigmoid>(4);
}
TEST(ActivationTest, TanhGradient) { ActivationGradientCheck<Tanh>(5); }

TEST(ActivationTest, ReluForwardAndGradient) {
  Relu relu;
  Matrix x(1, 4);
  x(0, 0) = -1;
  x(0, 1) = 2;
  x(0, 2) = 0;
  x(0, 3) = 3;
  Matrix y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0);
  EXPECT_FLOAT_EQ(y(0, 1), 2);
  EXPECT_FLOAT_EQ(y(0, 3), 3);
  Matrix dy(1, 4);
  dy.Fill(1.0f);
  Matrix dx = relu.Backward(dy);
  EXPECT_FLOAT_EQ(dx(0, 0), 0);
  EXPECT_FLOAT_EQ(dx(0, 1), 1);
  EXPECT_FLOAT_EQ(dx(0, 3), 1);
}

TEST(SigmoidTest, OutputsInUnitInterval) {
  Sigmoid s;
  Matrix x(1, 3);
  x(0, 0) = -100;
  x(0, 1) = 0;
  x(0, 2) = 100;
  Matrix y = s.Forward(x);
  EXPECT_NEAR(y(0, 0), 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(y(0, 1), 0.5f);
  EXPECT_NEAR(y(0, 2), 1.0f, 1e-6);
}

TEST(AdamTest, StepReducesSimpleQuadratic) {
  // Minimize f(w) = (w - 3)^2 with Adam on a 1x1 ParamBlock.
  ParamBlock w(1, 1);
  w.value(0, 0) = 0.0f;
  AdamConfig cfg;
  cfg.lr = 0.1f;
  for (int t = 1; t <= 300; ++t) {
    w.grad(0, 0) = 2.0f * (w.value(0, 0) - 3.0f);
    w.Step(cfg, t);
    w.ZeroGrad();
  }
  EXPECT_NEAR(w.value(0, 0), 3.0f, 0.05f);
}

TEST(SequentialTest, ComposesLayers) {
  Rng rng(6);
  Sequential seq;
  seq.Add(std::make_unique<Dense>(4, 8, rng));
  seq.Add(std::make_unique<Relu>());
  seq.Add(std::make_unique<Dense>(8, 2, rng));
  Matrix x(3, 4);
  for (auto& v : x.data()) v = rng.NextFloat();
  Matrix y = seq.Forward(x);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_EQ(seq.ParamCount(), (4 * 8 + 8) + (8 * 2 + 2));
  EXPECT_GT(seq.ForwardFlops(3), 0.0);
}

TEST(SequentialTest, LearnsLinearMap) {
  // y = 2x: a single Dense should fit it quickly.
  Rng rng(7);
  Sequential seq;
  seq.Add(std::make_unique<Dense>(1, 1, rng));
  AdamConfig cfg;
  cfg.lr = 0.05f;
  for (int t = 1; t <= 500; ++t) {
    Matrix x(8, 1);
    for (auto& v : x.data()) v = rng.NextFloat() * 2 - 1;
    Matrix y = seq.Forward(x);
    Matrix dy(8, 1);
    double loss = 0;
    for (size_t i = 0; i < 8; ++i) {
      float diff = y(i, 0) - 2.0f * x(i, 0);
      loss += diff * diff;
      dy(i, 0) = 2.0f * diff / 8.0f;
    }
    seq.ZeroGrad();
    seq.Backward(dy);
    seq.Step(cfg, t);
  }
  Matrix probe(1, 1);
  probe(0, 0) = 0.5f;
  EXPECT_NEAR(seq.Forward(probe)(0, 0), 1.0f, 0.05f);
}

}  // namespace
}  // namespace e2nvm::ml
