#include "workload/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

namespace e2nvm::workload {
namespace {

TEST(TraceTest, AppendAndReplayRoutesOps) {
  OpTrace trace;
  trace.Append({TraceOp::kPut, 1, 0, 0});
  trace.Append({TraceOp::kGet, 1, 0, 0});
  trace.Append({TraceOp::kScan, 0, 0, 5});
  trace.Append({TraceOp::kDelete, 1, 0, 0});
  trace.Append({TraceOp::kGet, 1, 0, 0});

  std::map<uint64_t, uint32_t> store;
  ReplayStats stats = trace.Replay(
      [&](uint64_t k, uint32_t v) {
        store[k] = v;
        return Status::Ok();
      },
      [&](uint64_t k) {
        return store.count(k) ? Status::Ok()
                              : Status::NotFound("missing");
      },
      [&](uint64_t k) {
        return store.erase(k) ? Status::Ok()
                              : Status::NotFound("missing");
      },
      [&](uint64_t, uint32_t) { return Status::Ok(); });
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.scans, 1u);
  EXPECT_EQ(stats.failures, 1u);  // The final GET after DELETE.
  EXPECT_EQ(stats.total(), 5u);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "e2nvm_trace_test.bin").string();
  OpTrace trace;
  for (uint64_t i = 0; i < 100; ++i) {
    trace.Append({static_cast<TraceOp>(i % 4), i * 7,
                  static_cast<uint32_t>(i), static_cast<uint32_t>(i % 9)});
  }
  ASSERT_TRUE(trace.SaveTo(path).ok());
  auto loaded = OpTrace::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->records()[i].op, trace.records()[i].op) << i;
    EXPECT_EQ(loaded->records()[i].key, trace.records()[i].key) << i;
    EXPECT_EQ(loaded->records()[i].version, trace.records()[i].version);
    EXPECT_EQ(loaded->records()[i].scan_len, trace.records()[i].scan_len);
  }
  fs::remove(path);
}

TEST(TraceTest, LoadRejectsGarbage) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "e2nvm_trace_garbage.bin").string();
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a trace file at all";
    fwrite(junk, 1, sizeof(junk), f);
    fclose(f);
  }
  auto loaded = OpTrace::LoadFrom(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(OpTrace::LoadFrom("/definitely/missing/file").status().code(),
            StatusCode::kNotFound);
  fs::remove(path);
}

TEST(TraceTest, RecordFromYcsbTracksVersions) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kA;
  cfg.record_count = 50;
  cfg.seed = 3;
  YcsbGenerator gen(cfg);
  OpTrace trace = OpTrace::RecordFromYcsb(gen, 2000);
  EXPECT_EQ(trace.size(), 2000u);

  // Versions per key must be strictly increasing among PUTs.
  std::map<uint64_t, int64_t> last_version;
  size_t puts = 0;
  for (const auto& r : trace.records()) {
    if (r.op != TraceOp::kPut) continue;
    ++puts;
    auto it = last_version.find(r.key);
    if (it != last_version.end()) {
      EXPECT_GT(static_cast<int64_t>(r.version), it->second)
          << "key " << r.key;
    }
    last_version[r.key] = r.version;
  }
  // Workload A: about half the ops are writes.
  EXPECT_NEAR(static_cast<double>(puts) / 2000.0, 0.5, 0.05);
}

TEST(TraceTest, ReplayIsDeterministicAcrossRuns) {
  YcsbGenerator::Config cfg;
  cfg.workload = YcsbWorkload::kF;
  cfg.record_count = 30;
  YcsbGenerator g1(cfg), g2(cfg);
  OpTrace t1 = OpTrace::RecordFromYcsb(g1, 500);
  OpTrace t2 = OpTrace::RecordFromYcsb(g2, 500);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1.records()[i].key, t2.records()[i].key) << i;
    EXPECT_EQ(t1.records()[i].op, t2.records()[i].op) << i;
  }
}

}  // namespace
}  // namespace e2nvm::workload
