#include "index/rbtree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace e2nvm::index {
namespace {

TEST(RbTreeTest, EmptyBehavior) {
  RbTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Get(1).has_value());
  EXPECT_FALSE(t.Erase(1).has_value());
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_TRUE(t.Scan(0, 10).empty());
}

TEST(RbTreeTest, PutGetOverwrite) {
  RbTree t;
  EXPECT_TRUE(t.Put(5, 50));
  EXPECT_FALSE(t.Put(5, 55));  // Overwrite returns false.
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Get(5).value(), 55u);
}

TEST(RbTreeTest, EraseReturnsValue) {
  RbTree t;
  t.Put(1, 10);
  t.Put(2, 20);
  auto v = t.Erase(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 10u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.Get(1).has_value());
  EXPECT_TRUE(t.Get(2).has_value());
}

TEST(RbTreeTest, AscendingInsertKeepsInvariants) {
  RbTree t;
  for (uint64_t k = 0; k < 1000; ++k) {
    t.Put(k, k * 2);
    if (k % 100 == 0) ASSERT_TRUE(t.CheckInvariants()) << k;
  }
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(t.size(), 1000u);
}

TEST(RbTreeTest, DescendingInsertKeepsInvariants) {
  RbTree t;
  for (uint64_t k = 1000; k > 0; --k) {
    t.Put(k, k);
  }
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(RbTreeTest, RandomInsertEraseMatchesStdMap) {
  RbTree t;
  std::map<uint64_t, uint64_t> ref;
  Rng rng(77);
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.NextBounded(500);
    if (rng.NextBernoulli(0.6)) {
      uint64_t val = rng.NextU64();
      t.Put(key, val);
      ref[key] = val;
    } else {
      auto got = t.Erase(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, it->second);
        ref.erase(it);
      }
    }
    if (op % 1000 == 0) {
      ASSERT_TRUE(t.CheckInvariants()) << "op " << op;
      ASSERT_EQ(t.size(), ref.size());
    }
  }
  ASSERT_TRUE(t.CheckInvariants());
  ASSERT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto got = t.Get(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST(RbTreeTest, ScanIsOrderedAndBounded) {
  RbTree t;
  for (uint64_t k = 0; k < 100; k += 2) t.Put(k, k + 1);
  auto scan = t.Scan(10, 5);
  ASSERT_EQ(scan.size(), 5u);
  EXPECT_EQ(scan[0].first, 10u);
  EXPECT_EQ(scan[0].second, 11u);
  for (size_t i = 1; i < scan.size(); ++i) {
    EXPECT_GT(scan[i].first, scan[i - 1].first);
  }
  // Start between keys.
  auto scan2 = t.Scan(11, 3);
  EXPECT_EQ(scan2[0].first, 12u);
  // Past the end.
  EXPECT_TRUE(t.Scan(1000, 3).empty());
}

TEST(RbTreeTest, ForEachVisitsAllInOrder) {
  RbTree t;
  Rng rng(9);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 200; ++i) {
    uint64_t k = rng.NextU64();
    if (t.Put(k, 0)) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<uint64_t> visited;
  t.ForEach([&](uint64_t k, uint64_t) { visited.push_back(k); });
  EXPECT_EQ(visited, keys);
}

TEST(RbTreeTest, MemoryFootprintScalesWithSize) {
  RbTree t;
  size_t empty_fp = t.MemoryFootprintBytes();
  for (uint64_t k = 0; k < 100; ++k) t.Put(k, k);
  EXPECT_GT(t.MemoryFootprintBytes(), empty_fp);
  EXPECT_EQ(t.MemoryFootprintBytes() % 100, 0u);  // nodes * sizeof(Node)
}

TEST(RbTreeTest, MoveSemantics) {
  RbTree t;
  t.Put(1, 10);
  RbTree u = std::move(t);
  EXPECT_EQ(u.Get(1).value(), 10u);
  EXPECT_EQ(t.size(), 0u);  // NOLINT: moved-from is empty by contract.
}

}  // namespace
}  // namespace e2nvm::index
