#include "nvm/device.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nvm/controller.h"
#include "nvm/wear_leveler.h"
#include "schemes/schemes.h"

namespace e2nvm::nvm {
namespace {

DeviceConfig SmallConfig(size_t segments = 8, size_t bits = 256,
                         bool wear = false) {
  DeviceConfig c;
  c.num_segments = segments;
  c.segment_bits = bits;
  c.track_bit_wear = wear;
  return c;
}

TEST(DeviceTest, StartsZeroed) {
  NvmDevice dev(SmallConfig());
  for (size_t i = 0; i < dev.num_segments(); ++i) {
    EXPECT_EQ(dev.PeekSegment(i).Popcount(), 0u);
  }
  EXPECT_EQ(dev.stats().writes, 0u);
}

TEST(DeviceTest, DcwWriteCountsExactFlips) {
  NvmDevice dev(SmallConfig());
  schemes::Dcw dcw;
  BitVector data(256);
  data.Set(0, true);
  data.Set(100, true);
  data.Set(255, true);
  WriteResult r = dev.WriteSegment(3, data, dcw);
  EXPECT_EQ(r.data_bits_flipped, 3u);
  EXPECT_EQ(dev.stats().data_bits_flipped, 3u);
  EXPECT_EQ(dev.stats().set_transitions, 3u);
  EXPECT_EQ(dev.stats().reset_transitions, 0u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.PeekSegment(3), data);

  // Overwrite with complement: 3 resets + 253 sets.
  dev.WriteSegment(3, data.Inverted(), dcw);
  EXPECT_EQ(dev.stats().reset_transitions, 3u);
  EXPECT_EQ(dev.stats().set_transitions, 3u + 253u);
}

TEST(DeviceTest, IdenticalWriteFlipsNothing) {
  NvmDevice dev(SmallConfig());
  schemes::Dcw dcw;
  Rng rng(5);
  BitVector data(256);
  data.Randomize(rng);
  dev.WriteSegment(0, data, dcw);
  uint64_t flips = dev.stats().total_bits_flipped();
  uint64_t lines = dev.stats().dirty_lines;
  dev.WriteSegment(0, data, dcw);
  EXPECT_EQ(dev.stats().total_bits_flipped(), flips);
  EXPECT_EQ(dev.stats().dirty_lines, lines);  // No dirty lines added.
  EXPECT_EQ(dev.stats().writes, 2u);
}

TEST(DeviceTest, DirtyLinesReflectLocality) {
  // 2048-bit segment = 4 cache lines of 512 bits.
  DeviceConfig c = SmallConfig(2, 2048);
  NvmDevice dev(c);
  schemes::Dcw dcw;
  BitVector data(2048);
  data.Set(0, true);  // Only line 0 touched.
  dev.WriteSegment(0, data, dcw);
  EXPECT_EQ(dev.stats().dirty_lines, 1u);
  BitVector more = data;
  more.Set(600, true);   // Line 1.
  more.Set(1999, true);  // Line 3.
  dev.WriteSegment(0, more, dcw);
  EXPECT_EQ(dev.stats().dirty_lines, 1u + 2u);
}

TEST(DeviceTest, EnergyMonotoneInFlips) {
  // The Fig 1 premise: more differing bits => more energy and latency.
  double prev_energy = -1;
  double prev_time = -1;
  for (size_t flips : {16u, 64u, 128u, 256u}) {
    NvmDevice dev(SmallConfig(2, 256));
    schemes::Dcw dcw;
    Rng rng(7);
    BitVector init(256);
    init.Randomize(rng);
    dev.SeedSegment(0, init);
    BitVector next = init;
    next.FlipRandomBits(flips, rng);
    dev.WriteSegment(0, next, dcw);
    double e = dev.meter().DomainPj(EnergyDomain::kPmemWrite);
    double t = dev.meter().now_ns();
    EXPECT_GT(e, prev_energy);
    EXPECT_GE(t, prev_time);
    prev_energy = e;
    prev_time = t;
  }
}

TEST(DeviceTest, SeedDoesNotCount) {
  NvmDevice dev(SmallConfig());
  Rng rng(1);
  BitVector data(256);
  data.Randomize(rng);
  dev.SeedSegment(2, data);
  EXPECT_EQ(dev.stats().writes, 0u);
  EXPECT_EQ(dev.stats().total_bits_flipped(), 0u);
  EXPECT_EQ(dev.PeekSegment(2), data);
}

TEST(DeviceTest, ReadChargesEnergyAndCounts) {
  NvmDevice dev(SmallConfig());
  dev.ReadSegment(0);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_GT(dev.meter().DomainPj(EnergyDomain::kPmemRead), 0.0);
}

TEST(DeviceTest, MigrateCountsFlips) {
  NvmDevice dev(SmallConfig());
  schemes::Dcw dcw;
  Rng rng(9);
  BitVector a(256), b(256);
  a.Randomize(rng);
  b.Randomize(rng);
  dev.SeedSegment(0, a);
  dev.SeedSegment(1, b);
  size_t expect = a.HammingDistance(b);
  dev.MigrateSegment(0, 1);
  EXPECT_EQ(dev.stats().data_bits_flipped, expect);
  EXPECT_EQ(dev.PeekSegment(1), a);
  EXPECT_EQ(dev.PeekSegment(0), a);  // Source untouched.
}

TEST(DeviceTest, BitWearTracking) {
  DeviceConfig c = SmallConfig(2, 128, /*wear=*/true);
  NvmDevice dev(c);
  schemes::Dcw dcw;
  BitVector one(128);
  one.Set(5, true);
  dev.WriteSegment(0, one, dcw);       // Bit 5 flips.
  dev.WriteSegment(0, BitVector(128), dcw);  // Bit 5 flips back.
  auto hist = dev.BitWearHistogram();
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->Max(), 2u);
  EXPECT_EQ(dev.MaxCellWear(), 2u);
  // 2*128 cells, exactly one has wear 2.
  EXPECT_DOUBLE_EQ(hist->CdfAt(1), (256.0 - 1.0) / 256.0);
}

TEST(DeviceTest, WearHistogramRequiresTracking) {
  NvmDevice dev(SmallConfig());
  EXPECT_EQ(dev.BitWearHistogram().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DeviceTest, SegmentWriteHistogram) {
  NvmDevice dev(SmallConfig(4, 64));
  schemes::Dcw dcw;
  BitVector d(64);
  d.Set(0, true);
  dev.WriteSegment(0, d, dcw);
  dev.WriteSegment(0, BitVector(64), dcw);
  dev.WriteSegment(1, d, dcw);
  Histogram h = dev.SegmentWriteHistogram();
  EXPECT_EQ(h.count(), 4u);  // 4 segments observed.
  EXPECT_EQ(h.Max(), 2u);
  EXPECT_DOUBLE_EQ(h.CdfAt(0), 0.5);  // Segments 2,3 never written.
}

TEST(DeviceTest, LifetimeConsumedUsesEndurance) {
  DeviceConfig c = SmallConfig(1, 64, true);
  c.pcm.endurance_writes = 100;
  NvmDevice dev(c);
  schemes::Dcw dcw;
  BitVector d(64);
  for (int i = 0; i < 10; ++i) {
    d.Set(0, i % 2 == 0);
    dev.WriteSegment(0, d, dcw);
  }
  // Bit 0 flipped ~9-10 times out of 100 endurance.
  EXPECT_NEAR(dev.LifetimeConsumed(), 0.09, 0.02);
}

TEST(EnergyModelTest, Arithmetic) {
  PcmParams p;
  p.set_energy_pj = 50;
  p.reset_energy_pj = 60;
  p.line_overhead_pj = 100;
  p.request_overhead_pj = 1000;
  EnergyModel m(p);
  EXPECT_DOUBLE_EQ(m.WritePj(2, 3, 1),
                   1000.0 + 2 * 50.0 + 3 * 60.0 + 100.0);
  EXPECT_DOUBLE_EQ(m.ReadPj(10), 10 * p.read_energy_pj);
  EXPECT_DOUBLE_EQ(m.WriteNs(0), p.write_base_ns);
  EXPECT_GT(m.CpuPj(1e6), 0.0);
}

TEST(EnergyMeterTest, DomainsAndSamples) {
  EnergyMeter meter;
  meter.Charge(EnergyDomain::kPmemWrite, 100);
  meter.Charge(EnergyDomain::kCpuModel, 50);
  EXPECT_DOUBLE_EQ(meter.TotalPj(), 150);
  EXPECT_DOUBLE_EQ(meter.DomainPj(EnergyDomain::kPmemWrite), 100);
  meter.AdvanceTime(10);
  meter.Sample();
  meter.Charge(EnergyDomain::kDram, 25);
  meter.AdvanceTime(5);
  meter.Sample();
  ASSERT_EQ(meter.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(meter.samples()[0].first, 10);
  EXPECT_DOUBLE_EQ(meter.samples()[1].second, 175);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.TotalPj(), 0);
}

TEST(WearLevelerTest, MappingIsBijection) {
  const size_t n = 16;
  NvmDevice dev(SmallConfig(n + 1, 64));
  StartGapLeveler lev(n, /*psi=*/1);
  for (int step = 0; step < 100; ++step) {
    std::vector<bool> used(n + 1, false);
    for (size_t l = 0; l < n; ++l) {
      size_t p = lev.Map(l);
      ASSERT_LT(p, n + 1);
      ASSERT_FALSE(used[p]) << "collision at step " << step;
      used[p] = true;
    }
    ASSERT_FALSE(used[lev.gap()]) << "gap should be unmapped";
    lev.ForceMove(dev);
  }
}

TEST(WearLevelerTest, ContentFollowsMapping) {
  const size_t n = 8;
  NvmDevice dev(SmallConfig(n + 1, 64));
  StartGapLeveler lev(n, 1);
  Rng rng(3);
  std::vector<BitVector> logical(n, BitVector(64));
  for (size_t l = 0; l < n; ++l) {
    logical[l].Randomize(rng);
    dev.SeedSegment(lev.Map(l), logical[l]);
  }
  // After many gap moves (several full rotations), every logical segment
  // must still read back its own content through the new mapping.
  for (int step = 0; step < 50; ++step) {
    lev.ForceMove(dev);
    for (size_t l = 0; l < n; ++l) {
      ASSERT_EQ(dev.PeekSegment(lev.Map(l)), logical[l])
          << "step " << step << " logical " << l;
    }
  }
  EXPECT_GT(dev.stats().writes, 0u);  // Moves are real writes.
}

TEST(WearLevelerTest, PsiControlsMoveRate) {
  const size_t n = 8;
  NvmDevice dev(SmallConfig(n + 1, 64));
  StartGapLeveler lev(n, /*psi=*/10);
  int moves = 0;
  for (int i = 0; i < 100; ++i) {
    if (lev.OnWrite(dev)) ++moves;
  }
  EXPECT_EQ(moves, 10);
  EXPECT_EQ(lev.moves(), 10u);
}

TEST(WearLevelerTest, PsiZeroDisables) {
  const size_t n = 8;
  NvmDevice dev(SmallConfig(n + 1, 64));
  StartGapLeveler lev(n, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(lev.OnWrite(dev));
  }
  EXPECT_EQ(dev.stats().writes, 0u);
}

TEST(ControllerTest, ReadWriteThroughMapping) {
  DeviceConfig c = SmallConfig(9, 64);
  NvmDevice dev(c);
  schemes::Dcw dcw;
  MemoryController ctrl(&dev, &dcw, /*num_logical=*/8, /*psi=*/4);
  Rng rng(17);
  std::vector<BitVector> values;
  for (size_t l = 0; l < 8; ++l) {
    BitVector v(64);
    v.Randomize(rng);
    values.push_back(v);
    ctrl.Write(l, v);
  }
  // After wear-leveling moves, logical reads still return logical data.
  for (size_t l = 0; l < 8; ++l) {
    EXPECT_EQ(ctrl.Peek(l), values[l]) << l;
    EXPECT_EQ(ctrl.Read(l), values[l]) << l;
  }
  EXPECT_NE(ctrl.leveler(), nullptr);
  EXPECT_GT(ctrl.leveler()->moves(), 0u);
}

TEST(ControllerTest, StatefulSchemeSurvivesWearLeveling) {
  // FNW keeps per-segment flip flags; a gap move copies cells to another
  // physical slot, so the flags must migrate too or decode breaks.
  DeviceConfig c = SmallConfig(9, 64);
  NvmDevice dev(c);
  schemes::FlipNWrite fnw(16);
  MemoryController ctrl(&dev, &fnw, /*num_logical=*/8, /*psi=*/2);
  Rng rng(31);
  std::vector<BitVector> values(8, BitVector(64));
  for (size_t l = 0; l < 8; ++l) {
    values[l].Randomize(rng);
    ctrl.Write(l, values[l]);
  }
  // Plenty of writes => plenty of gap moves through FNW-encoded cells.
  for (int round = 0; round < 10; ++round) {
    for (size_t l = 0; l < 8; ++l) {
      values[l].FlipRandomBits(16, rng);
      ctrl.Write(l, values[l]);
    }
  }
  ASSERT_GT(ctrl.leveler()->moves(), 8u);
  for (size_t l = 0; l < 8; ++l) {
    EXPECT_EQ(ctrl.Peek(l), values[l]) << l;
  }
}

TEST(ControllerTest, DecodeThroughScheme) {
  DeviceConfig c = SmallConfig(4, 64);
  NvmDevice dev(c);
  schemes::FlipNWrite fnw(16);
  MemoryController ctrl(&dev, &fnw, 4, 0);
  Rng rng(23);
  BitVector v(64);
  v.Randomize(rng);
  ctrl.Write(1, v);
  EXPECT_EQ(ctrl.Peek(1), v);  // Decoded logical view.
}

}  // namespace
}  // namespace e2nvm::nvm
