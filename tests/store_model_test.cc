// Oracle-backed property test of the sharded store: a seeded random
// operation stream (PUT/UPDATE/DELETE/GET with variable value widths,
// occasional MultiPut batches) runs against a std::unordered_map shadow
// oracle, and every K operations the full invariant set is checked:
//
//  1. Round-trip: every live key reads back exactly the oracle's value,
//     and absent keys are NotFound.
//  2. Conservation: per shard, DAP free addresses + live keys equals the
//     shard's segment count — no address is leaked or double-counted.
//  3. Exclusivity: no physical address is held by two live keys, and every
//     address lies inside its owning shard's segment range.
//
// Runs at shard counts {1, 4} over several seeds; single-threaded, so any
// failure replays deterministically from the (count, seed) pair.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sharded_store.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

constexpr size_t kSegmentsPerShard = 96;
constexpr size_t kBits = 256;
constexpr size_t kCheckEvery = 32;

workload::BitDataset ClusteredData(uint64_t seed) {
  workload::ProtoConfig cfg;
  cfg.dim = kBits;
  cfg.num_classes = 4;
  cfg.samples = kSegmentsPerShard + 32;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

/// A fresh value for `key`: derived from a dataset item (so placement sees
/// clusterable content) at one of several widths, salted with a few
/// random flips so successive writes of one key differ.
BitVector MakeValue(const workload::BitDataset& ds, Rng& rng) {
  static constexpr size_t kWidths[] = {kBits, kBits - 32, kBits / 2};
  const auto& item = ds.items[rng.NextBounded(ds.items.size())];
  BitVector v = item.Slice(0, kWidths[rng.NextBounded(3)]);
  v.FlipRandomBits(rng.NextBounded(4), rng);
  return v;
}

void CheckInvariants(ShardedStore& store,
                     const std::unordered_map<uint64_t, BitVector>& oracle,
                     uint64_t key_space, size_t op) {
  // 1. Round-trip every oracle key; probe a band of absent keys.
  ASSERT_EQ(store.size(), oracle.size()) << "op " << op;
  for (const auto& [key, value] : oracle) {
    auto got = store.Get(key);
    ASSERT_TRUE(got.ok()) << "op " << op << " key " << key;
    ASSERT_EQ(*got, value) << "op " << op << " key " << key;
  }
  for (uint64_t key = 0; key < key_space; ++key) {
    if (oracle.count(key) == 0) {
      ASSERT_FALSE(store.Get(key).ok()) << "op " << op << " key " << key;
    }
  }
  // 2 + 3. Conservation and exclusivity, per shard and globally.
  std::unordered_set<uint64_t> live_addrs;
  for (size_t s = 0; s < store.num_shards(); ++s) {
    E2KvStore& shard = store.shard(s);
    const size_t free_addrs = shard.engine().pool().TotalFree();
    ASSERT_EQ(free_addrs + shard.size(), kSegmentsPerShard)
        << "op " << op << " shard " << s
        << ": DAP free + live keys must cover the shard exactly";
    const uint64_t first = shard.first_segment();
    shard.tree().ForEach([&](uint64_t key, uint64_t addr) {
      ASSERT_GE(addr, first) << "op " << op << " key " << key;
      ASSERT_LT(addr, first + kSegmentsPerShard)
          << "op " << op << " key " << key;
      ASSERT_TRUE(live_addrs.insert(addr).second)
          << "op " << op << " address " << addr
          << " handed to two live keys";
    });
  }
}

void RunModelCheck(size_t num_shards, uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "shards=" << num_shards << " seed=" << seed);
  auto ds = ClusteredData(seed);
  ShardedStoreConfig cfg;
  cfg.num_shards = num_shards;
  cfg.shard.num_segments = kSegmentsPerShard;
  cfg.shard.segment_bits = kBits;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.model.finetune_rounds = 1;
  cfg.shard.auto_retrain = true;
  cfg.shard.retrain.min_free_per_cluster = 8;
  auto store_or = ShardedStore::Create(cfg);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());

  // Keys per shard stay well under the shard's segment count so the DAP
  // never runs dry even if hashing is uneven.
  const uint64_t key_space = 40 * num_shards;
  std::unordered_map<uint64_t, BitVector> oracle;
  Rng rng(seed * 7919 + num_shards);

  const size_t kOps = 600;
  for (size_t op = 0; op < kOps; ++op) {
    const double dice = rng.NextDouble();
    const uint64_t key = rng.NextBounded(key_space);
    if (dice < 0.45) {  // PUT (insert or update).
      BitVector v = MakeValue(ds, rng);
      ASSERT_TRUE(store->Put(key, v).ok()) << "op " << op;
      oracle[key] = std::move(v);
    } else if (dice < 0.60) {  // DELETE (often missing).
      Status st = store->Delete(key);
      ASSERT_EQ(st.ok(), oracle.erase(key) > 0) << "op " << op;
    } else if (dice < 0.90) {  // GET.
      auto got = store->Get(key);
      auto it = oracle.find(key);
      ASSERT_EQ(got.ok(), it != oracle.end()) << "op " << op;
      if (got.ok()) ASSERT_EQ(*got, it->second) << "op " << op;
    } else {  // MultiPut batch of 8 (duplicates across batches allowed).
      std::vector<std::pair<uint64_t, BitVector>> kvs;
      for (size_t i = 0; i < 8; ++i) {
        kvs.emplace_back(rng.NextBounded(key_space), MakeValue(ds, rng));
      }
      ASSERT_TRUE(store->MultiPut(kvs).ok()) << "op " << op;
      for (auto& [k, v] : kvs) oracle[k] = std::move(v);
    }
    if ((op + 1) % kCheckEvery == 0) {
      CheckInvariants(*store, oracle, key_space, op);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  CheckInvariants(*store, oracle, key_space, kOps);
}

TEST(StoreModelCheck, SingleShardMatchesOracle) {
  for (uint64_t seed : {3u, 17u, 23u}) {
    RunModelCheck(/*num_shards=*/1, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StoreModelCheck, FourShardsMatchOracle) {
  for (uint64_t seed : {3u, 17u}) {
    RunModelCheck(/*num_shards=*/4, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace e2nvm::core
