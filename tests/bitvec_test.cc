#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace e2nvm {
namespace {

TEST(BitVectorTest, DefaultEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.Popcount(), 0u);
}

TEST(BitVectorTest, SetGetRoundTrip) {
  BitVector v(130);  // Crosses word boundaries.
  v.Set(0, true);
  v.Set(63, true);
  v.Set(64, true);
  v.Set(129, true);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(129));
  EXPECT_FALSE(v.Get(1));
  EXPECT_FALSE(v.Get(128));
  EXPECT_EQ(v.Popcount(), 4u);
  v.Set(63, false);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Popcount(), 3u);
}

TEST(BitVectorTest, FromStringMatchesPaperNotation) {
  // Paper Table 1 row 0: [0, 0, 1, 1, 1, 1, 0, 1].
  BitVector v = BitVector::FromString("00111101");
  EXPECT_EQ(v.size(), 8u);
  EXPECT_FALSE(v.Get(0));
  EXPECT_TRUE(v.Get(2));
  EXPECT_TRUE(v.Get(7));
  EXPECT_EQ(v.ToString(), "00111101");
}

TEST(BitVectorTest, FromBytesLittleEndianPerByte) {
  uint8_t bytes[2] = {0x01, 0x80};
  BitVector v = BitVector::FromBytes(bytes, 2);
  EXPECT_EQ(v.size(), 16u);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(15));
  EXPECT_EQ(v.Popcount(), 2u);
}

TEST(BitVectorTest, FromFloatsThreshold) {
  BitVector v = BitVector::FromFloats({0.1f, 0.9f, 0.5f, 0.49f});
  EXPECT_EQ(v.ToString(), "0110");
}

TEST(BitVectorTest, HammingDistanceBasics) {
  BitVector a = BitVector::FromString("0000");
  BitVector b = BitVector::FromString("1111");
  EXPECT_EQ(a.HammingDistance(b), 4u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
  EXPECT_EQ(b.HammingDistance(a), 4u);
}

TEST(BitVectorTest, HammingDistanceSymmetricProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    BitVector a(257), b(257);
    a.Randomize(rng);
    b.Randomize(rng);
    EXPECT_EQ(a.HammingDistance(b), b.HammingDistance(a));
    // Triangle inequality through a third point.
    BitVector c(257);
    c.Randomize(rng);
    EXPECT_LE(a.HammingDistance(b),
              a.HammingDistance(c) + c.HammingDistance(b));
  }
}

TEST(BitVectorTest, InvertedFlipsEverything) {
  BitVector v = BitVector::FromString("0101");
  EXPECT_EQ(v.Inverted().ToString(), "1010");
  BitVector big(100);
  big.Set(50, true);
  EXPECT_EQ(big.Inverted().Popcount(), 99u);
  // Inverting twice restores, and tail bits stay masked.
  EXPECT_EQ(big.Inverted().Inverted(), big);
}

TEST(BitVectorTest, RotationPreservesPopcount) {
  Rng rng(3);
  BitVector v(77);
  v.Randomize(rng);
  size_t pop = v.Popcount();
  for (size_t k : {size_t{0}, size_t{1}, size_t{13}, size_t{76}, size_t{77}}) {
    EXPECT_EQ(v.RotatedLeft(k).Popcount(), pop) << "k=" << k;
  }
  EXPECT_EQ(v.RotatedLeft(77), v);  // Full rotation is identity.
  EXPECT_EQ(v.RotatedLeft(13).RotatedLeft(77 - 13), v);
}

TEST(BitVectorTest, SliceAndOverlay) {
  BitVector v = BitVector::FromString("00111101");
  EXPECT_EQ(v.Slice(2, 4).ToString(), "1111");
  EXPECT_EQ(v.Slice(0, 8), v);
  BitVector w(8);
  w.Overlay(2, BitVector::FromString("1111"));
  EXPECT_EQ(w.ToString(), "00111100");
}

TEST(BitVectorTest, ConcatOrdersBits) {
  BitVector a = BitVector::FromString("01");
  BitVector b = BitVector::FromString("10");
  EXPECT_EQ(a.Concat(b).ToString(), "0110");
  EXPECT_EQ(a.Concat(BitVector()).ToString(), "01");
}

TEST(BitVectorTest, DirtyLinesCountsChangedLinesOnly) {
  // 4 lines of 8 bits each.
  BitVector old_bits(32);
  BitVector new_bits(32);
  new_bits.Set(0, true);   // Line 0 dirty.
  new_bits.Set(17, true);  // Line 2 dirty.
  EXPECT_EQ(new_bits.DirtyLines(old_bits, 8), 2u);
  EXPECT_EQ(old_bits.DirtyLines(old_bits, 8), 0u);
  // Everything different -> all 4 lines.
  EXPECT_EQ(old_bits.Inverted().DirtyLines(old_bits, 8), 4u);
}

TEST(BitVectorTest, DirtyLinesPartialTailLine) {
  BitVector a(10), b(10);
  b.Set(9, true);  // Lives in the second (partial) 8-bit line.
  EXPECT_EQ(a.DirtyLines(b, 8), 1u);
}

TEST(BitVectorTest, ToFloatsRoundTrip) {
  BitVector v = BitVector::FromString("0110");
  auto f = v.ToFloats();
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(BitVector::FromFloats(f), v);
}

TEST(BitVectorTest, FlipRandomBitsExactCount) {
  Rng rng(11);
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{100},
                   size_t{200}}) {
    BitVector v(200);
    BitVector orig = v;
    v.FlipRandomBits(n, rng);
    EXPECT_EQ(v.HammingDistance(orig), n) << "n=" << n;
  }
}

TEST(BitVectorTest, RandomizeIsDeterministicPerSeed) {
  Rng r1(99), r2(99);
  BitVector a(321), b(321);
  a.Randomize(r1);
  b.Randomize(r2);
  EXPECT_EQ(a, b);
}

TEST(BitVectorTest, EqualityRespectsSizeAndBits) {
  BitVector a(8), b(9);
  EXPECT_FALSE(a == b);
  BitVector c(8);
  EXPECT_TRUE(a == c);
  c.Set(3, true);
  EXPECT_FALSE(a == c);
}

class BitVectorSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorSizeTest, PopcountMatchesManualCount) {
  size_t n = GetParam();
  Rng rng(n * 31 + 1);
  BitVector v(n);
  v.Randomize(rng);
  size_t manual = 0;
  for (size_t i = 0; i < n; ++i) manual += v.Get(i) ? 1 : 0;
  EXPECT_EQ(v.Popcount(), manual);
}

TEST_P(BitVectorSizeTest, SliceConcatIdentity) {
  size_t n = GetParam();
  if (n < 2) return;
  Rng rng(n);
  BitVector v(n);
  v.Randomize(rng);
  size_t cut = n / 2;
  EXPECT_EQ(v.Slice(0, cut).Concat(v.Slice(cut, n - cut)), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorSizeTest,
                         ::testing::Values(1, 7, 8, 63, 64, 65, 127, 128,
                                           1000, 2048));

}  // namespace
}  // namespace e2nvm
