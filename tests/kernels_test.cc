#include "common/kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/matrix.h"

namespace e2nvm {
namespace {

/// Every tier compiled in AND supported by this CPU, scalar first.
/// On a machine without AVX2 this collapses to {scalar} and the
/// cross-tier comparisons become trivially true — the test still runs.
std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> out = {SimdLevel::kScalar};
  if (OpsFor(SimdLevel::kAvx2) != nullptr) out.push_back(SimdLevel::kAvx2);
  if (OpsFor(SimdLevel::kAvx512) != nullptr) {
    out.push_back(SimdLevel::kAvx512);
  }
  return out;
}

/// memcmp requires non-null pointers even for zero bytes (UBSan traps
/// the empty-vector data() == nullptr case), so the size-0 corners of
/// the sweeps go through this guard.
bool BytesEqual(const void* a, const void* b, size_t bytes) {
  return bytes == 0 || std::memcmp(a, b, bytes) == 0;
}

/// Fills `words` with random bits, then masks everything above
/// `num_bits` the way BitVector does, so tail-word garbage can't hide
/// (or fake) a kernel that reads past the last valid bit.
void RandomBits(Rng& rng, size_t num_bits, std::vector<uint64_t>* words) {
  words->assign((num_bits + 63) / 64, 0);
  for (auto& w : *words) w = rng.NextU64();
  if (num_bits % 64 != 0 && !words->empty()) {
    words->back() &= (uint64_t{1} << (num_bits % 64)) - 1;
  }
}

TEST(KernelsTest, DispatchReportsAConsistentTier) {
  const SimdLevel active = ActiveSimdLevel();
  EXPECT_NE(OpsFor(active), nullptr);
  EXPECT_EQ(OpsFor(active), &Ops());
  const std::string name = SimdLevelName(active);
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "avx512");
  // The scalar reference must always be reachable for A/B testing.
  ASSERT_NE(OpsFor(SimdLevel::kScalar), nullptr);
}

// --- Bit kernels: exhaustive over sizes 0..257 so every tail-mask
// shape (empty, sub-word, word-aligned, 4-word SIMD block + remainder)
// is covered, with several random fills per size. ---

TEST(KernelsTest, BitKernelsMatchScalarForAllSizes) {
  const KernelOps& ref = *OpsFor(SimdLevel::kScalar);
  Rng rng(0xfeedbeef);
  std::vector<uint64_t> a, b;
  for (SimdLevel level : AvailableLevels()) {
    const KernelOps& ops = *OpsFor(level);
    for (size_t bits = 0; bits <= 257; ++bits) {
      for (int trial = 0; trial < 4; ++trial) {
        RandomBits(rng, bits, &a);
        RandomBits(rng, bits, &b);
        const size_t n = a.size();
        ASSERT_EQ(ops.popcount_words(a.data(), n),
                  ref.popcount_words(a.data(), n))
            << SimdLevelName(level) << " popcount, bits=" << bits;
        ASSERT_EQ(ops.hamming_words(a.data(), b.data(), n),
                  ref.hamming_words(a.data(), b.data(), n))
            << SimdLevelName(level) << " hamming, bits=" << bits;
        DiffCounts dv = ops.diff_words(a.data(), b.data(), n);
        DiffCounts ds = ref.diff_words(a.data(), b.data(), n);
        ASSERT_EQ(dv.sets, ds.sets)
            << SimdLevelName(level) << " diff sets, bits=" << bits;
        ASSERT_EQ(dv.resets, ds.resets)
            << SimdLevelName(level) << " diff resets, bits=" << bits;
      }
    }
  }
}

TEST(KernelsTest, DiffCountsDecomposeHamming) {
  Rng rng(77);
  std::vector<uint64_t> a, b;
  for (size_t bits : {0u, 1u, 63u, 64u, 65u, 200u, 257u}) {
    RandomBits(rng, bits, &a);
    RandomBits(rng, bits, &b);
    for (SimdLevel level : AvailableLevels()) {
      const KernelOps& ops = *OpsFor(level);
      DiffCounts d = ops.diff_words(a.data(), b.data(), a.size());
      EXPECT_EQ(d.sets + d.resets,
                ops.hamming_words(a.data(), b.data(), a.size()));
      // sets = bits that are 0 in old and 1 in new.
      size_t sets = 0;
      for (size_t w = 0; w < a.size(); ++w) {
        sets += static_cast<size_t>(__builtin_popcountll(~a[w] & b[w]));
      }
      EXPECT_EQ(d.sets, sets);
    }
  }
}

TEST(KernelsTest, BitsToFloatsMatchScalarForAllSizes) {
  const KernelOps& ref = *OpsFor(SimdLevel::kScalar);
  Rng rng(123);
  std::vector<uint64_t> words;
  for (SimdLevel level : AvailableLevels()) {
    const KernelOps& ops = *OpsFor(level);
    for (size_t bits = 0; bits <= 257; ++bits) {
      RandomBits(rng, bits, &words);
      // Canary-padded outputs: a kernel writing past `bits` floats
      // breaks the trailing sentinel comparison.
      std::vector<float> got(bits + 8, -7.0f), want(bits + 8, -7.0f);
      ops.bits_to_floats(words.data(), bits, got.data());
      ref.bits_to_floats(words.data(), bits, want.data());
      ASSERT_EQ(std::memcmp(got.data(), want.data(),
                            got.size() * sizeof(float)),
                0)
          << SimdLevelName(level) << " bits=" << bits;
      for (size_t i = 0; i < bits; ++i) {
        ASSERT_TRUE(want[i] == 0.0f || want[i] == 1.0f);
      }
    }
  }
}

// --- Float kernels: bitwise equality against scalar, unaligned start
// offsets included so the vector loops can't assume 32-byte alignment. ---

TEST(KernelsTest, AddAndAxpyMatchScalarBitwise) {
  const KernelOps& ref = *OpsFor(SimdLevel::kScalar);
  Rng rng(9);
  for (SimdLevel level : AvailableLevels()) {
    const KernelOps& ops = *OpsFor(level);
    for (size_t n = 0; n <= 257; ++n) {
      for (size_t offset : {0u, 1u, 3u}) {  // Unaligned starts.
        std::vector<float> base(offset + n), src(offset + n);
        for (auto& v : base) v = rng.NextFloat() * 4.0f - 2.0f;
        for (auto& v : src) v = rng.NextFloat() * 4.0f - 2.0f;
        const float a = rng.NextFloat() * 2.0f - 1.0f;

        std::vector<float> got = base, want = base;
        ops.add_f32(got.data() + offset, src.data() + offset, n);
        ref.add_f32(want.data() + offset, src.data() + offset, n);
        ASSERT_TRUE(BytesEqual(got.data(), want.data(),
                               got.size() * sizeof(float)))
            << SimdLevelName(level) << " add n=" << n << " off=" << offset;

        got = base;
        want = base;
        ops.axpy_f32(got.data() + offset, src.data() + offset, a, n);
        ref.axpy_f32(want.data() + offset, src.data() + offset, a, n);
        ASSERT_TRUE(BytesEqual(got.data(), want.data(),
                               got.size() * sizeof(float)))
            << SimdLevelName(level) << " axpy n=" << n << " off=" << offset;
      }
    }
  }
}

TEST(KernelsTest, Dot8MatchesScalarBitwise) {
  const KernelOps& ref = *OpsFor(SimdLevel::kScalar);
  Rng rng(31);
  for (SimdLevel level : AvailableLevels()) {
    const KernelOps& ops = *OpsFor(level);
    // k sweeps the accumulation depth; ldb > k exercises strided rows.
    for (size_t k : {0u, 1u, 2u, 7u, 8u, 31u, 64u, 129u}) {
      for (size_t ldb : {k, k + 1, k + 13}) {
        if (ldb == 0) continue;
        std::vector<float> a(k), b(8 * ldb);
        for (auto& v : a) v = rng.NextFloat() * 2.0f - 1.0f;
        for (auto& v : b) v = rng.NextFloat() * 2.0f - 1.0f;
        float got[8], want[8];
        ops.dot8_f32(a.data(), b.data(), ldb, k, got);
        ref.dot8_f32(a.data(), b.data(), ldb, k, want);
        ASSERT_EQ(std::memcmp(got, want, sizeof(got)), 0)
            << SimdLevelName(level) << " k=" << k << " ldb=" << ldb;
      }
    }
  }
}

TEST(KernelsTest, GemvMatchesScalarBitwise) {
  const KernelOps& ref = *OpsFor(SimdLevel::kScalar);
  Rng rng(41);
  for (SimdLevel level : AvailableLevels()) {
    const KernelOps& ops = *OpsFor(level);
    // n sweeps every tail shape of the 64/16 (avx512) and 32/8 (avx2)
    // tiling; k == 0 must yield all zeros. A mix of 0.0/1.0/general
    // values in `a` exercises the zero-skip against the reference.
    for (size_t n : {0u,  1u,  7u,  8u,  9u,  15u,  16u,  17u, 31u,
                     32u, 33u, 63u, 64u, 65u, 127u, 128u, 257u}) {
      for (size_t k : {0u, 1u, 3u, 64u, 129u}) {
        std::vector<float> a(k), b(k * n);
        for (auto& v : a) {
          const float r = rng.NextFloat();
          v = r < 0.3f ? 0.0f : (r < 0.6f ? 1.0f : r * 2.0f - 1.0f);
        }
        for (auto& v : b) v = rng.NextFloat() * 2.0f - 1.0f;
        std::vector<float> got(n + 4, -3.0f), want(n + 4, -3.0f);
        ops.gemv_f32(a.data(), b.data(), k, n, got.data());
        ref.gemv_f32(a.data(), b.data(), k, n, want.data());
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << SimdLevelName(level) << " gemv k=" << k << " n=" << n;
      }
    }
  }
}

// --- CRC32C: known-answer vectors, chaining, and cross-tier equality
// (the hardware-accelerated tiers must produce standard Castagnoli
// checksums, byte-for-byte interchangeable with the scalar table). ---

TEST(KernelsTest, Crc32cKnownAnswers) {
  // The canonical CRC32C check value (RFC 3720 appendix / zlib tests).
  const char* check = "123456789";
  EXPECT_EQ(Crc32c(check, 9), 0xE3069283u);
  // Empty input with seed 0 is 0.
  EXPECT_EQ(Crc32c(check, 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ffs(32, 0xFF);
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62A8AB43u);
}

TEST(KernelsTest, Crc32cChainsAcrossSplits) {
  Rng rng(0xc5c5c5c5);
  std::vector<uint64_t> words;
  RandomBits(rng, 257 * 64, &words);
  const auto* bytes = reinterpret_cast<const uint8_t*>(words.data());
  const size_t n = words.size() * 8;
  for (SimdLevel level : AvailableLevels()) {
    const KernelOps& ops = *OpsFor(level);
    const uint32_t whole = ops.crc32c(0, bytes, n);
    for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{555}, n - 1, n}) {
      uint32_t part = ops.crc32c(0, bytes, split);
      part = ops.crc32c(part, bytes + split, n - split);
      ASSERT_EQ(part, whole)
          << SimdLevelName(level) << " split=" << split;
    }
  }
}

TEST(KernelsTest, Crc32cMatchesScalarForAllSizes) {
  const KernelOps& ref = *OpsFor(SimdLevel::kScalar);
  Rng rng(0x32c32c);
  std::vector<uint64_t> words;
  for (SimdLevel level : AvailableLevels()) {
    const KernelOps& ops = *OpsFor(level);
    for (size_t bytes = 0; bytes <= 257; ++bytes) {
      RandomBits(rng, (bytes + 8) * 8, &words);
      const auto* p = reinterpret_cast<const uint8_t*>(words.data());
      const uint32_t seed = static_cast<uint32_t>(rng.NextU64());
      ASSERT_EQ(ops.crc32c(seed, p, bytes), ref.crc32c(seed, p, bytes))
          << SimdLevelName(level) << " bytes=" << bytes;
    }
  }
}

TEST(KernelsTest, Crc32cDetectsSingleBitDamage) {
  Rng rng(0xdead);
  std::vector<uint64_t> words;
  RandomBits(rng, 64 * 64, &words);
  auto* bytes = reinterpret_cast<uint8_t*>(words.data());
  const size_t n = words.size() * 8;
  const uint32_t clean = Crc32c(bytes, n);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t bit = static_cast<size_t>(rng.NextBounded(n * 8));
    bytes[bit / 8] ^= uint8_t{1} << (bit % 8);
    EXPECT_NE(Crc32c(bytes, n), clean) << "flipped bit " << bit;
    bytes[bit / 8] ^= uint8_t{1} << (bit % 8);
  }
  EXPECT_EQ(Crc32c(bytes, n), clean);
}

// --- BitVector front-end: the primitives agree with a per-bit oracle. ---

TEST(KernelsTest, BitVectorDiffStatsMatchesPerBitWalk) {
  Rng rng(55);
  for (size_t bits : {0u, 1u, 64u, 100u, 257u, 2048u}) {
    BitVector oldv(bits), newv(bits);
    oldv.Randomize(rng);
    newv.Randomize(rng);
    DiffCounts d = BitVector::DiffStats(oldv, newv);
    size_t sets = 0, resets = 0;
    for (size_t i = 0; i < bits; ++i) {
      if (oldv.Get(i) != newv.Get(i)) {
        ++(newv.Get(i) ? sets : resets);
      }
    }
    EXPECT_EQ(d.sets, sets) << "bits=" << bits;
    EXPECT_EQ(d.resets, resets) << "bits=" << bits;
    EXPECT_EQ(d.sets + d.resets, oldv.HammingDistance(newv));
  }
}

// --- GEMM: the dispatched j-vectorized paths must be bit-identical to
// a naive triple loop, serial and pooled alike. ---

ml::Matrix RandomMatrix(size_t r, size_t c, Rng& rng) {
  ml::Matrix m(r, c);
  for (auto& v : m.data()) v = rng.NextFloat() * 2.0f - 1.0f;
  return m;
}

/// c[i][j] = sum_p a[i][p] * b[p][j], scalar ascending-p — the
/// accumulation order every MatMul path promises to preserve.
ml::Matrix NaiveMatMul(const ml::Matrix& a, const ml::Matrix& b) {
  ml::Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float s = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

ml::Matrix NaiveMatMulTransB(const ml::Matrix& a, const ml::Matrix& b) {
  ml::Matrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      float s = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(j, p);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(KernelsTest, GemmBitIdenticalToNaiveSerialAndPooled) {
  Rng rng(2024);
  // Odd sizes force dot8/axpy tails; 0/1-valued A rows exercise the
  // av==0 skip and av==1 add_f32 lanes the featurized encode GEMM hits.
  const std::vector<std::tuple<size_t, size_t, size_t>> shapes = {
      {1, 1, 1}, {3, 5, 7}, {8, 16, 24}, {13, 33, 65}, {17, 128, 9}};
  for (auto [m, k, n] : shapes) {
    ml::Matrix a = RandomMatrix(m, k, rng);
    for (size_t p = 0; p < k; p += 3) a(0, p) = (p % 2 == 0) ? 0.0f : 1.0f;
    ml::Matrix b = RandomMatrix(k, n, rng);
    ml::Matrix bt = RandomMatrix(n, k, rng);

    ml::Matrix want = NaiveMatMul(a, b);
    ml::Matrix want_tb = NaiveMatMulTransB(a, bt);

    ml::Matrix got;
    ml::MatMulInto(a, b, &got);
    EXPECT_EQ(std::memcmp(got.data().data(), want.data().data(),
                          want.size() * sizeof(float)),
              0)
        << "MatMulInto " << m << "x" << k << "x" << n;

    ml::Matrix got_tb;
    ml::MatMulTransBInto(a, bt, &got_tb);
    EXPECT_EQ(std::memcmp(got_tb.data().data(), want_tb.data().data(),
                          want_tb.size() * sizeof(float)),
              0)
        << "MatMulTransBInto " << m << "x" << k << "x" << n;

    {
      ThreadPool pool(3);
      ml::SetComputePool(&pool);
      ml::Matrix pooled = ml::MatMul(a, b);
      ml::Matrix pooled_tb = ml::MatMulTransB(a, bt);
      ml::SetComputePool(nullptr);
      EXPECT_EQ(std::memcmp(pooled.data().data(), want.data().data(),
                            want.size() * sizeof(float)),
                0)
          << "pooled MatMul " << m << "x" << k << "x" << n;
      EXPECT_EQ(std::memcmp(pooled_tb.data().data(),
                            want_tb.data().data(),
                            want_tb.size() * sizeof(float)),
                0)
          << "pooled MatMulTransB " << m << "x" << k << "x" << n;
    }
  }
}

}  // namespace
}  // namespace e2nvm
