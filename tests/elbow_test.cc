#include "core/elbow.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace e2nvm::core {
namespace {

/// Latent-like blobs: `true_k` Gaussian clusters in `dim` dimensions.
ml::Matrix Blobs(size_t true_k, size_t per, size_t dim, uint64_t seed) {
  Rng rng(seed);
  ml::Matrix centers(true_k, dim);
  for (auto& v : centers.data()) {
    v = static_cast<float>(rng.NextGaussian()) * 20.0f;
  }
  ml::Matrix x(true_k * per, dim);
  for (size_t c = 0; c < true_k; ++c) {
    for (size_t i = 0; i < per; ++i) {
      for (size_t d = 0; d < dim; ++d) {
        x(c * per + i, d) =
            centers(c, d) + static_cast<float>(rng.NextGaussian());
      }
    }
  }
  return x;
}

TEST(ElbowTest, SseMonotoneDecreasing) {
  ml::Matrix x = Blobs(4, 40, 6, 1);
  ElbowResult r = SweepK(x, 1, 10);
  ASSERT_EQ(r.ks.size(), 10u);
  for (size_t i = 1; i < r.sse.size(); ++i) {
    EXPECT_LE(r.sse[i], r.sse[i - 1] * 1.02) << "k=" << r.ks[i];
  }
}

TEST(ElbowTest, FindsTrueClusterCount) {
  ml::Matrix x = Blobs(5, 50, 8, 2);
  ElbowResult r = SweepK(x, 1, 12);
  // The knee should land near the true K (the paper reads K=6 off a
  // CIFAR-10 curve; exactness isn't required, proximity is).
  EXPECT_GE(r.best_k, 4u);
  EXPECT_LE(r.best_k, 7u);
}

TEST(ElbowTest, HandlesTinyInputs) {
  ml::Matrix x = Blobs(2, 3, 2, 3);  // 6 samples.
  ElbowResult r = SweepK(x, 1, 10);
  EXPECT_LE(r.ks.size(), 6u);  // Cannot exceed sample count.
  EXPECT_GE(r.best_k, 1u);
}

TEST(ElbowTest, RangeRespected) {
  ml::Matrix x = Blobs(3, 30, 4, 4);
  ElbowResult r = SweepK(x, 2, 6);
  ASSERT_FALSE(r.ks.empty());
  EXPECT_EQ(r.ks.front(), 2u);
  EXPECT_EQ(r.ks.back(), 6u);
}

}  // namespace
}  // namespace e2nvm::core
