#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/kernels.h"
#include "pmem/allocator.h"
#include "pmem/pool.h"
#include "pmem/tx.h"

namespace e2nvm::pmem {
namespace {

constexpr size_t kPoolSize = 4 * 1024 * 1024;

class PmemFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("e2nvm_pool_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
             std::to_string(counter_++));
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  static int counter_;
};
int PmemFileTest::counter_ = 0;

TEST_F(PmemFileTest, CreateOpenRoundTrip) {
  {
    auto pool = Pool::Create(path_, "kvstore", kPoolSize);
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    (*pool)->set_root(1234);
    (*pool)->Close();
  }
  auto pool = Pool::Open(path_, "kvstore");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_EQ((*pool)->root(), 1234u);
  EXPECT_FALSE((*pool)->recovered());  // Clean shutdown.
  EXPECT_EQ((*pool)->size(), kPoolSize);
}

TEST_F(PmemFileTest, CreateFailsIfExists) {
  auto p1 = Pool::Create(path_, "x", kPoolSize);
  ASSERT_TRUE(p1.ok());
  (*p1)->Close();
  auto p2 = Pool::Create(path_, "x", kPoolSize);
  EXPECT_EQ(p2.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(PmemFileTest, OpenMissingFileFails) {
  auto p = Pool::Open(path_, "x");
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST_F(PmemFileTest, LayoutMismatchRejected) {
  {
    auto p = Pool::Create(path_, "layout_a", kPoolSize);
    ASSERT_TRUE(p.ok());
    (*p)->Close();
  }
  auto p = Pool::Open(path_, "layout_b");
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PmemFileTest, DataPersistsAcrossReopen) {
  PoolOffset off;
  {
    auto pool = Pool::Create(path_, "data", kPoolSize);
    ASSERT_TRUE(pool.ok());
    Allocator alloc(pool->get());
    auto a = alloc.Alloc(64);
    ASSERT_TRUE(a.ok());
    off = *a;
    std::memcpy((*pool)->Direct(off), "hello persistent world", 23);
    (*pool)->Persist(off, 23);
    (*pool)->set_root(off);
    (*pool)->Close();
  }
  auto pool = Pool::Open(path_, "data");
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->root(), off);
  EXPECT_STREQ(
      static_cast<const char*>((*pool)->Direct((*pool)->root())),
      "hello persistent world");
}

TEST_F(PmemFileTest, UncommittedTxRollsBackOnReopen) {
  PoolOffset off;
  {
    auto pool = Pool::Create(path_, "crash", kPoolSize);
    ASSERT_TRUE(pool.ok());
    Allocator alloc(pool->get());
    off = alloc.Alloc(64).value();
    std::memcpy((*pool)->Direct(off), "ORIGINAL", 9);
    (*pool)->Persist(off, 9);
    (*pool)->set_root(off);

    // Begin a transaction, snapshot, mutate ... and "crash" (no commit,
    // and no Close — simulating power loss before the tx completes).
    TxLog log(pool->get(), (*pool)->header()->tx_log);
    ASSERT_TRUE(log.Begin().ok());
    ASSERT_TRUE(log.Snapshot(off, 9).ok());
    std::memcpy((*pool)->Direct(off), "GARBLED!", 9);
    (*pool)->Persist(off, 9);
    // Deliberately skip Close(): destructor marks clean shutdown, so we
    // leak the mapping state by releasing without Close via msync only.
    // To model a crash we must bypass Close: mark header dirty manually.
    (*pool)->header()->clean_shutdown = 0;
    // Simulate the process dying: drop the object without Close by
    // swapping in a no-op — easiest is to just let Close run but force
    // the dirty flag back afterward via a raw reopen below. Instead we
    // copy the file NOW while the tx is active.
    std::filesystem::copy_file(
        path_, path_ + ".crash",
        std::filesystem::copy_options::overwrite_existing);
    (*pool)->Close();
  }
  // Open the crash image: recovery must roll the garbled write back.
  auto pool = Pool::Open(path_ + ".crash", "crash");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_TRUE((*pool)->recovered());
  EXPECT_STREQ(static_cast<const char*>((*pool)->Direct(off)),
               "ORIGINAL");
  std::filesystem::remove(path_ + ".crash");
}

TEST_F(PmemFileTest, HeaderChecksumDetectsTamperedFile) {
  {
    auto pool = Pool::Create(path_, "tamper", kPoolSize);
    ASSERT_TRUE(pool.ok());
    (*pool)->set_root(4096);
    (*pool)->Close();
  }
  // Bit-rot one byte of the root field on "media" without restamping.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offsetof(Pool::Header, root)));
    char b = 0;
    f.read(&b, 1);
    b ^= 0x40;
    f.seekp(static_cast<std::streamoff>(offsetof(Pool::Header, root)));
    f.write(&b, 1);
  }
  auto pool = Pool::Open(path_, "tamper");
  EXPECT_EQ(pool.status().code(), StatusCode::kDataLoss)
      << pool.status().ToString();
}

TEST_F(PmemFileTest, DirtyOpenWithIdleTxLogRecovers) {
  // Power loss between transactions: the open mark is dirty but the tx
  // log is idle. Open must take the recovery path (recovered() true),
  // and the header checksum — restamped by set_root — must still
  // validate on the crash image.
  {
    auto pool = Pool::Create(path_, "dirty_idle", kPoolSize);
    ASSERT_TRUE(pool.ok());
    (*pool)->set_root(8192);
    std::filesystem::copy_file(
        path_, path_ + ".crash",
        std::filesystem::copy_options::overwrite_existing);
    (*pool)->Close();
  }
  auto pool = Pool::Open(path_ + ".crash", "dirty_idle");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_TRUE((*pool)->recovered());
  EXPECT_EQ((*pool)->root(), 8192u);
  std::filesystem::remove(path_ + ".crash");
}

TEST_F(PmemFileTest, CleanMarkWithActiveTxLogRejected) {
  // A header claiming clean shutdown while its tx log holds an active
  // transaction is self-contradictory — some layer lied about ordering.
  {
    auto pool = Pool::Create(path_, "liar", kPoolSize);
    ASSERT_TRUE(pool.ok());
    TxLog log(pool->get(), (*pool)->header()->tx_log);
    ASSERT_TRUE(log.Begin().ok());
    auto* h = (*pool)->header();
    h->clean_shutdown = 1;
    // Forge a matching checksum so only the semantic check can object.
    h->header_crc = Crc32c(h, offsetof(Pool::Header, header_crc));
    (*pool)->Persist(0, sizeof(Pool::Header));
    std::filesystem::copy_file(
        path_, path_ + ".crash",
        std::filesystem::copy_options::overwrite_existing);
    log.Abort();
    (*pool)->Close();
  }
  auto pool = Pool::Open(path_ + ".crash", "liar");
  EXPECT_EQ(pool.status().code(), StatusCode::kDataLoss)
      << pool.status().ToString();
  std::filesystem::remove(path_ + ".crash");
}

TEST_F(PmemFileTest, CleanReopenSkipsRecovery) {
  {
    auto pool = Pool::Create(path_, "clean", kPoolSize);
    ASSERT_TRUE(pool.ok());
    (*pool)->set_root(4096);
    (*pool)->Close();
  }
  auto pool = Pool::Open(path_, "clean");
  ASSERT_TRUE(pool.ok());
  EXPECT_FALSE((*pool)->recovered());
  // The reopen re-marked the pool dirty (it is open); a second open of
  // a copy taken now must go through recovery again.
  std::filesystem::copy_file(
      path_, path_ + ".crash",
      std::filesystem::copy_options::overwrite_existing);
  (*pool)->Close();
  auto dirty = Pool::Open(path_ + ".crash", "clean");
  ASSERT_TRUE(dirty.ok()) << dirty.status().ToString();
  EXPECT_TRUE((*dirty)->recovered());
  std::filesystem::remove(path_ + ".crash");
}

TEST(PmemAnonTest, AnonymousPoolWorks) {
  auto pool = Pool::CreateAnonymous("anon", kPoolSize);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->layout(), "anon");
  EXPECT_EQ((*pool)->root(), kNullOffset);
}

TEST(PmemAnonTest, TooSmallPoolRejected) {
  auto pool = Pool::CreateAnonymous("anon", 1024);
  EXPECT_EQ(pool.status().code(), StatusCode::kInvalidArgument);
}

TEST(PmemTxTest, CommitKeepsChanges) {
  auto pool = Pool::CreateAnonymous("tx", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  PoolOffset off = alloc.Alloc(32).value();
  std::memcpy((*pool)->Direct(off), "AAAA", 4);

  Transaction tx(pool->get());
  ASSERT_TRUE(tx.Begin().ok());
  ASSERT_TRUE(tx.AddRange(off, 4).ok());
  std::memcpy((*pool)->Direct(off), "BBBB", 4);
  tx.Commit();
  EXPECT_EQ(std::memcmp((*pool)->Direct(off), "BBBB", 4), 0);
}

TEST(PmemTxTest, ScopeExitAborts) {
  auto pool = Pool::CreateAnonymous("tx2", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  PoolOffset off = alloc.Alloc(32).value();
  std::memcpy((*pool)->Direct(off), "AAAA", 4);
  {
    Transaction tx(pool->get());
    ASSERT_TRUE(tx.Begin().ok());
    ASSERT_TRUE(tx.AddRange(off, 4).ok());
    std::memcpy((*pool)->Direct(off), "BBBB", 4);
    // No Commit: destructor must roll back.
  }
  EXPECT_EQ(std::memcmp((*pool)->Direct(off), "AAAA", 4), 0);
}

TEST(PmemTxTest, AbortRestoresReverseOrder) {
  auto pool = Pool::CreateAnonymous("tx3", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  PoolOffset off = alloc.Alloc(32).value();
  std::memcpy((*pool)->Direct(off), "AAAA", 4);

  Transaction tx(pool->get());
  ASSERT_TRUE(tx.Begin().ok());
  // Two snapshots of the same range: the OLDEST image must win on abort.
  ASSERT_TRUE(tx.AddRange(off, 4).ok());
  std::memcpy((*pool)->Direct(off), "BBBB", 4);
  ASSERT_TRUE(tx.AddRange(off, 4).ok());
  std::memcpy((*pool)->Direct(off), "CCCC", 4);
  tx.Abort();
  EXPECT_EQ(std::memcmp((*pool)->Direct(off), "AAAA", 4), 0);
}

TEST(PmemTxTest, NestedBeginRejected) {
  auto pool = Pool::CreateAnonymous("tx4", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Transaction tx1(pool->get());
  ASSERT_TRUE(tx1.Begin().ok());
  Transaction tx2(pool->get());
  EXPECT_EQ(tx2.Begin().code(), StatusCode::kFailedPrecondition);
  tx1.Commit();
}

TEST(PmemTxTest, SnapshotOutsideTxRejected) {
  auto pool = Pool::CreateAnonymous("tx5", kPoolSize);
  ASSERT_TRUE(pool.ok());
  TxLog log(pool->get(), (*pool)->header()->tx_log);
  EXPECT_EQ(log.Snapshot(8192, 8).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PmemTxTest, LogFullReported) {
  auto pool = Pool::CreateAnonymous("tx6", kPoolSize);
  ASSERT_TRUE(pool.ok());
  TxLog log(pool->get(), (*pool)->header()->tx_log);
  ASSERT_TRUE(log.Begin().ok());
  // Snapshot ranges until the 256 KiB log fills.
  Status last = Status::Ok();
  for (int i = 0; i < 100; ++i) {
    last = log.Snapshot(Pool::kHeaderBytes + TxLog::kLogBytes, 8000);
    if (!last.ok()) break;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  log.Abort();
}

TEST(PmemTxTest, FlushTrackerCountsLines) {
  FlushTracker ft;
  alignas(64) char buf[256];
  EXPECT_EQ(ft.FlushRange(buf, 1), 1u);
  EXPECT_EQ(ft.FlushRange(buf, 64), 1u);
  EXPECT_EQ(ft.FlushRange(buf, 65), 2u);
  EXPECT_EQ(ft.FlushRange(buf, 256), 4u);
  EXPECT_EQ(ft.FlushRange(buf, 0), 0u);
  ft.Fence();
  EXPECT_EQ(ft.lines_flushed(), 1u + 1 + 2 + 4);
  EXPECT_EQ(ft.fences(), 1u);
  ft.Reset();
  EXPECT_EQ(ft.lines_flushed(), 0u);
}

TEST(PmemAllocatorTest, ClassSizing) {
  EXPECT_EQ(Allocator::ClassFor(1), 0);
  EXPECT_EQ(Allocator::ClassFor(32), 0);
  EXPECT_EQ(Allocator::ClassFor(33), 1);
  EXPECT_EQ(Allocator::ClassFor(64), 1);
  EXPECT_EQ(Allocator::ClassFor(65), 2);
  EXPECT_EQ(Allocator::ClassSize(0), 32u);
  EXPECT_EQ(Allocator::ClassSize(3), 256u);
}

TEST(PmemAllocatorTest, AllocFreeReuse) {
  auto pool = Pool::CreateAnonymous("alloc", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  auto a = alloc.Alloc(100);
  ASSERT_TRUE(a.ok());
  EXPECT_GE(alloc.UsableSize(*a), 100u);
  EXPECT_EQ(alloc.live_objects(), 1u);
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.live_objects(), 0u);
  // Same class allocation must reuse the freed chunk.
  auto b = alloc.Alloc(100);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
}

TEST(PmemAllocatorTest, DoubleFreeDetected) {
  auto pool = Pool::CreateAnonymous("alloc2", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  PoolOffset a = alloc.Alloc(64).value();
  ASSERT_TRUE(alloc.Free(a).ok());
  EXPECT_EQ(alloc.Free(a).code(), StatusCode::kFailedPrecondition);
}

TEST(PmemAllocatorTest, ZeroAndHugeRejected) {
  auto pool = Pool::CreateAnonymous("alloc3", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  EXPECT_EQ(alloc.Alloc(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(alloc.Alloc(size_t{2} << 40).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PmemAllocatorTest, ExhaustionReported) {
  auto pool = Pool::CreateAnonymous("alloc4", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  Status last = Status::Ok();
  for (int i = 0; i < 100000; ++i) {
    auto a = alloc.Alloc(1024);
    if (!a.ok()) {
      last = a.status();
      break;
    }
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST(PmemAllocatorTest, DistinctAllocationsDontOverlap) {
  auto pool = Pool::CreateAnonymous("alloc5", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  std::vector<PoolOffset> offs;
  for (int i = 0; i < 50; ++i) offs.push_back(alloc.Alloc(128).value());
  std::sort(offs.begin(), offs.end());
  for (size_t i = 1; i < offs.size(); ++i) {
    EXPECT_GE(offs[i] - offs[i - 1], 128u + Allocator::kChunkHeaderBytes);
  }
}

}  // namespace
}  // namespace e2nvm::pmem
