#include "workload/datasets.h"

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace e2nvm::workload {
namespace {

/// Mean intra-class and inter-class Hamming distances (the property all
/// generators must supply: intra << inter).
std::pair<double, double> ClassDistances(const BitDataset& ds,
                                         size_t max_pairs = 2000) {
  RunningStat intra, inter;
  size_t n = ds.size();
  size_t step = std::max<size_t>(1, n * n / (max_pairs * 2));
  size_t pair_idx = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (pair_idx++ % step != 0) continue;
      double d = static_cast<double>(ds.items[i].HammingDistance(
          ds.items[j]));
      if (ds.labels[i] == ds.labels[j]) {
        intra.Add(d);
      } else {
        inter.Add(d);
      }
    }
  }
  return {intra.mean(), inter.mean()};
}

TEST(ProtoDatasetTest, ShapeAndLabels) {
  ProtoConfig cfg;
  cfg.dim = 128;
  cfg.num_classes = 4;
  cfg.samples = 200;
  BitDataset ds = MakeProtoDataset(cfg);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.dim, 128u);
  ASSERT_EQ(ds.labels.size(), 200u);
  for (int l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  for (const auto& item : ds.items) EXPECT_EQ(item.size(), 128u);
}

TEST(ProtoDatasetTest, IntraClassMuchCloserThanInter) {
  ProtoConfig cfg;
  cfg.dim = 256;
  cfg.num_classes = 6;
  cfg.samples = 300;
  cfg.noise = 0.05;
  BitDataset ds = MakeProtoDataset(cfg);
  auto [intra, inter] = ClassDistances(ds);
  EXPECT_LT(intra, inter * 0.5) << "intra=" << intra
                                << " inter=" << inter;
  // Expected intra distance ~= 2 * noise * (1-noise) * dim.
  EXPECT_NEAR(intra, 2 * 0.05 * 0.95 * 256, 10.0);
}

TEST(ProtoDatasetTest, DeterministicPerSeed) {
  ProtoConfig cfg;
  cfg.samples = 20;
  BitDataset a = MakeProtoDataset(cfg);
  BitDataset b = MakeProtoDataset(cfg);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.items[i], b.items[i]);
}

TEST(ImageLikeDatasetsTest, StructuralProperties) {
  for (auto maker : {MakeMnistLike, MakeFashionLike}) {
    BitDataset ds = maker(300, 7, 0.05);
    EXPECT_EQ(ds.dim, 784u);
    auto [intra, inter] = ClassDistances(ds);
    EXPECT_LT(intra, inter) << ds.name;
  }
  BitDataset cifar = MakeCifarLike(300, 7);
  EXPECT_EQ(cifar.dim, 1024u);
  auto [intra, inter] = ClassDistances(cifar);
  EXPECT_LT(intra, inter);
}

TEST(ImageLikeDatasetsTest, FamiliesDiffer) {
  // MNIST-like and Fashion-like with the same seed must produce different
  // prototype families (Fig 17's distribution shift relies on it).
  BitDataset a = MakeMnistLike(50, 3);
  BitDataset b = MakeFashionLike(50, 3);
  RunningStat cross;
  for (size_t i = 0; i < 50; ++i) {
    cross.Add(static_cast<double>(a.items[i].HammingDistance(b.items[i])));
  }
  EXPECT_GT(cross.mean(), 40.0);
}

TEST(VideoDatasetTest, ConsecutiveFramesAreClose) {
  VideoConfig cfg;
  cfg.dim = 512;
  cfg.frames = 300;
  cfg.frame_noise = 0.02;
  cfg.scene_len = 50;
  BitDataset ds = MakeVideoDataset(cfg);
  ASSERT_EQ(ds.size(), 300u);
  RunningStat within_scene, at_cuts;
  for (size_t f = 1; f < ds.size(); ++f) {
    double d = static_cast<double>(
        ds.items[f].HammingDistance(ds.items[f - 1]));
    if (f % cfg.scene_len == 0) {
      at_cuts.Add(d);
    } else {
      within_scene.Add(d);
    }
  }
  // Motion flips ~2% of bits per frame; scene cuts flip ~25%.
  EXPECT_NEAR(within_scene.mean(), 0.02 * 512, 4.0);
  EXPECT_GT(at_cuts.mean(), 0.2 * 512);
  EXPECT_LT(at_cuts.mean(), 0.35 * 512);
  // Scene labels advance at cuts.
  EXPECT_EQ(ds.labels.front(), 0);
  EXPECT_EQ(ds.labels.back(), static_cast<int>(299 / 50));
}

TEST(StructuredVideoTest, PanKeepsFramesCloseWithinScene) {
  workload::StructuredVideoConfig cfg;
  cfg.side = 16;
  cfg.frames = 200;
  cfg.scene_len = 40;
  cfg.noise = 0.0;
  BitDataset ds = MakeStructuredVideoDataset(cfg);
  ASSERT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.dim, 256u);
  // Consecutive frames (one-pixel pan) are much closer than frames from
  // different scenes.
  RunningStat consecutive, cross_scene;
  for (size_t f = 1; f < ds.size(); ++f) {
    double d = static_cast<double>(
        ds.items[f].HammingDistance(ds.items[f - 1]));
    if (ds.labels[f] == ds.labels[f - 1]) {
      consecutive.Add(d);
    } else {
      cross_scene.Add(d);
    }
  }
  EXPECT_LT(consecutive.mean(), cross_scene.mean() * 0.7);
  // A pan preserves popcount exactly when noise is 0.
  EXPECT_EQ(ds.items[0].Popcount(), ds.items[1].Popcount());
}

TEST(AccessLogDatasetTest, PopularResourcesCluster) {
  BitDataset ds = MakeAccessLogDataset(500, 256, 11);
  EXPECT_EQ(ds.dim, 256u);
  auto [intra, inter] = ClassDistances(ds);
  EXPECT_LT(intra, inter);
}

TEST(RoadNetworkDatasetTest, SameRoadPointsAreClose) {
  BitDataset ds = MakeRoadNetworkDataset(256, 192, 13);
  EXPECT_EQ(ds.dim, 192u);
  auto [intra, inter] = ClassDistances(ds);
  EXPECT_LT(intra, inter);
}

TEST(PubMedDatasetTest, TopicalSparsity) {
  BitDataset ds = MakePubMedLike(300, 512, 6, 17);
  // Sparse: well under half the bits set.
  RunningStat density;
  for (const auto& item : ds.items) {
    density.Add(static_cast<double>(item.Popcount()) / 512.0);
  }
  EXPECT_LT(density.mean(), 0.25);
  auto [intra, inter] = ClassDistances(ds);
  EXPECT_LT(intra, inter);
}

TEST(ResizeItemsTest, TilesAndTruncates) {
  ProtoConfig cfg;
  cfg.dim = 100;
  cfg.samples = 10;
  BitDataset ds = MakeProtoDataset(cfg);
  BitDataset big = ResizeItems(ds, 250);
  EXPECT_EQ(big.dim, 250u);
  for (size_t i = 0; i < big.size(); ++i) {
    EXPECT_EQ(big.items[i].Slice(0, 100), ds.items[i]);
    EXPECT_EQ(big.items[i].Slice(100, 100), ds.items[i]);  // Tiled.
  }
  BitDataset small = ResizeItems(ds, 40);
  EXPECT_EQ(small.items[0], ds.items[0].Slice(0, 40));
}

TEST(MixedDatasetTest, CoversFamilies) {
  BitDataset ds = MakeMixedRealDataset(200, 512, 19);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.dim, 512u);
  std::vector<int> family_counts(5, 0);
  for (int l : ds.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 5);
    ++family_counts[l];
  }
  for (int c : family_counts) EXPECT_GT(c, 0);
}

TEST(SplitTest, FractionRespected) {
  ProtoConfig cfg;
  cfg.samples = 100;
  BitDataset ds = MakeProtoDataset(cfg);
  auto [train, test] = ds.Split(0.8);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  EXPECT_EQ(train.labels.size(), 80u);
  EXPECT_EQ(train.items[0], ds.items[0]);
  EXPECT_EQ(test.items[0], ds.items[80]);
}

TEST(ToMatrixTest, BitsBecomeFloats) {
  BitDataset ds;
  ds.dim = 4;
  ds.items.push_back(BitVector::FromString("0110"));
  ml::Matrix m = ds.ToMatrix();
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 1.0f);
}

}  // namespace
}  // namespace e2nvm::workload
