#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>

#include "common/rng.h"
#include "index/bptree.h"
#include "index/fptree.h"
#include "index/novelsm.h"
#include "index/path_hashing.h"
#include "index/placed_index.h"
#include "index/wisckey.h"
#include "schemes/schemes.h"

namespace e2nvm::index {
namespace {

constexpr size_t kBits = 128;
constexpr size_t kSegments = 2048;

struct IndexRig {
  IndexRig() {
    nvm::DeviceConfig dc;
    dc.num_segments = kSegments;
    dc.segment_bits = kBits;
    device = std::make_unique<nvm::NvmDevice>(dc);
    ctrl = std::make_unique<nvm::MemoryController>(device.get(), &dcw,
                                                   kSegments, 0);
  }
  schemes::Dcw dcw;
  std::unique_ptr<nvm::NvmDevice> device;
  std::unique_ptr<nvm::MemoryController> ctrl;
};

using IndexFactory =
    std::function<std::unique_ptr<NvmKvIndex>(IndexRig&)>;

struct NamedFactory {
  const char* label;
  IndexFactory make;
};

std::unique_ptr<NvmKvIndex> MakeBp(IndexRig& rig) {
  return std::make_unique<BpTreeKv>(
      rig.ctrl.get(), BpTreeKv::Config{.leaf_capacity = 8,
                                       .value_bits = kBits});
}
std::unique_ptr<NvmKvIndex> MakePath(IndexRig& rig) {
  return std::make_unique<PathHashingKv>(
      rig.ctrl.get(),
      PathHashingKv::Config{.root_cells = 512, .levels = 3,
                            .value_bits = kBits});
}
std::unique_ptr<NvmKvIndex> MakeFp(IndexRig& rig) {
  return std::make_unique<FpTreeKv>(
      rig.ctrl.get(),
      FpTreeKv::Config{.leaf_capacity = 8, .value_bits = kBits});
}
std::unique_ptr<NvmKvIndex> MakeWisc(IndexRig& rig) {
  return std::make_unique<WisckeyKv>(
      rig.ctrl.get(),
      WisckeyKv::Config{.log_slots = kSegments, .gc_region = 64,
                        .value_bits = kBits});
}
std::unique_ptr<NvmKvIndex> MakeLsm(IndexRig& rig) {
  return std::make_unique<NoveLsmKv>(
      rig.ctrl.get(),
      NoveLsmKv::Config{.memtable_entries = 16, .max_runs = 3,
                        .value_bits = kBits});
}

class AllIndexesTest : public ::testing::TestWithParam<NamedFactory> {};

BitVector ValueFor(uint64_t key, uint32_t version = 0) {
  Rng rng(key * 1000003 + version);
  BitVector v(kBits);
  v.Randomize(rng);
  return v;
}

TEST_P(AllIndexesTest, PutGetRoundTrip) {
  IndexRig rig;
  auto idx = GetParam().make(rig);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(idx->Put(k, ValueFor(k)).ok()) << idx->name() << " " << k;
  }
  EXPECT_EQ(idx->size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    auto v = idx->Get(k);
    ASSERT_TRUE(v.ok()) << idx->name() << " key " << k;
    EXPECT_EQ(*v, ValueFor(k)) << idx->name() << " key " << k;
  }
  EXPECT_FALSE(idx->Get(5000).ok());
}

TEST_P(AllIndexesTest, UpdateOverwrites) {
  IndexRig rig;
  auto idx = GetParam().make(rig);
  ASSERT_TRUE(idx->Put(42, ValueFor(42, 0)).ok());
  ASSERT_TRUE(idx->Put(42, ValueFor(42, 1)).ok());
  auto v = idx->Get(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, ValueFor(42, 1));
}

TEST_P(AllIndexesTest, DeleteRemoves) {
  IndexRig rig;
  auto idx = GetParam().make(rig);
  for (uint64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(idx->Put(k, ValueFor(k)).ok());
  }
  ASSERT_TRUE(idx->Delete(10).ok());
  EXPECT_FALSE(idx->Get(10).ok());
  EXPECT_TRUE(idx->Get(11).ok());
  EXPECT_FALSE(idx->Delete(1000).ok());
}

TEST_P(AllIndexesTest, RandomChurnConsistentWithReference) {
  IndexRig rig;
  auto idx = GetParam().make(rig);
  std::map<uint64_t, uint32_t> ref;  // key -> version
  Rng rng(13);
  for (int op = 0; op < 800; ++op) {
    uint64_t key = rng.NextBounded(120);
    double p = rng.NextDouble();
    if (p < 0.6) {
      uint32_t ver = ref.count(key) ? ref[key] + 1 : 0;
      ASSERT_TRUE(idx->Put(key, ValueFor(key, ver)).ok())
          << idx->name() << " op " << op;
      ref[key] = ver;
    } else if (p < 0.8) {
      Status s = idx->Delete(key);
      EXPECT_EQ(s.ok(), ref.erase(key) > 0) << idx->name();
    } else {
      auto v = idx->Get(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_FALSE(v.ok()) << idx->name() << " key " << key;
      } else {
        ASSERT_TRUE(v.ok()) << idx->name() << " key " << key;
        EXPECT_EQ(*v, ValueFor(key, it->second)) << idx->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, AllIndexesTest,
    ::testing::Values(NamedFactory{"bptree", MakeBp},
                      NamedFactory{"path", MakePath},
                      NamedFactory{"fptree", MakeFp},
                      NamedFactory{"wisckey", MakeWisc},
                      NamedFactory{"novelsm", MakeLsm}),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      return info.param.label;
    });

TEST(BpTreeSpecificTest, SortedInsertShiftsValues) {
  IndexRig rig;
  BpTreeKv bp(rig.ctrl.get(), {.leaf_capacity = 8, .value_bits = kBits});
  // Fill a leaf with keys 0,2,4,6; inserting key 1 shifts three values.
  for (uint64_t k : {0u, 2u, 4u, 6u}) {
    ASSERT_TRUE(bp.Put(k, ValueFor(k)).ok());
  }
  uint64_t writes_before = rig.device->stats().writes;
  ASSERT_TRUE(bp.Put(1, ValueFor(1)).ok());
  // 3 shifts + 1 insert = 4 segment writes.
  EXPECT_EQ(rig.device->stats().writes - writes_before, 4u);
}

TEST(BpTreeSpecificTest, ScanOrdered) {
  IndexRig rig;
  BpTreeKv bp(rig.ctrl.get(), {.leaf_capacity = 4, .value_bits = kBits});
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(bp.Put(k * 3, ValueFor(k * 3)).ok());
  }
  auto scan = bp.Scan(10, 5);
  ASSERT_EQ(scan.size(), 5u);
  EXPECT_EQ(scan[0].first, 12u);
  for (size_t i = 1; i < scan.size(); ++i) {
    EXPECT_GT(scan[i].first, scan[i - 1].first);
  }
  EXPECT_GT(bp.num_leaves(), 1u);  // Splits happened.
}

TEST(FpTreeSpecificTest, InsertWritesSingleSegment) {
  IndexRig rig;
  FpTreeKv fp(rig.ctrl.get(), {.leaf_capacity = 8, .value_bits = kBits});
  for (uint64_t k : {0u, 2u, 4u, 6u}) {
    ASSERT_TRUE(fp.Put(k, ValueFor(k)).ok());
  }
  uint64_t writes_before = rig.device->stats().writes;
  ASSERT_TRUE(fp.Put(1, ValueFor(1)).ok());
  EXPECT_EQ(rig.device->stats().writes - writes_before, 1u);
}

TEST(FpTreeVsBpTreeTest, UnsortedLeavesFlipFewerBits) {
  // The Fig 12 story at unit scale: sorted B+Tree leaves move values,
  // FPTree's unsorted leaves don't.
  IndexRig bp_rig, fp_rig;
  BpTreeKv bp(bp_rig.ctrl.get(), {.leaf_capacity = 16,
                                  .value_bits = kBits});
  FpTreeKv fp(fp_rig.ctrl.get(), {.leaf_capacity = 16,
                                  .value_bits = kBits});
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 400; ++i) keys.push_back(rng.NextU64() % 10000);
  for (uint64_t k : keys) {
    ASSERT_TRUE(bp.Put(k, ValueFor(k)).ok());
    ASSERT_TRUE(fp.Put(k, ValueFor(k)).ok());
  }
  EXPECT_GT(bp_rig.device->stats().total_bits_flipped(),
            2 * fp_rig.device->stats().total_bits_flipped());
}

TEST(PathHashingSpecificTest, CollisionsFallThroughPath) {
  IndexRig rig;
  PathHashingKv ph(rig.ctrl.get(),
                   {.root_cells = 4, .levels = 3, .value_bits = kBits});
  // 4 + 2 + 1 = 7 cells total; inserting 7 keys must succeed only while
  // paths are free, then report exhaustion.
  int inserted = 0;
  Status last = Status::Ok();
  for (uint64_t k = 0; k < 64 && last.ok(); ++k) {
    last = ph.Put(k, ValueFor(k));
    if (last.ok()) ++inserted;
  }
  EXPECT_GT(inserted, 3);
  EXPECT_LE(inserted, 7);
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST(WisckeySpecificTest, GcRelocatesLiveValues) {
  IndexRig rig;
  WisckeyKv wk(rig.ctrl.get(),
               {.log_slots = 64, .gc_region = 16, .value_bits = kBits});
  // Keep 8 live keys, update them repeatedly to churn the log.
  for (int round = 0; round < 30; ++round) {
    for (uint64_t k = 0; k < 8; ++k) {
      ASSERT_TRUE(wk.Put(k, ValueFor(k, round)).ok());
    }
  }
  EXPECT_GT(wk.gc_passes(), 0u);
  for (uint64_t k = 0; k < 8; ++k) {
    auto v = wk.Get(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, ValueFor(k, 29));
  }
}

TEST(NoveLsmSpecificTest, FlushAndCompactionHappen) {
  IndexRig rig;
  NoveLsmKv lsm(rig.ctrl.get(),
                {.memtable_entries = 8, .max_runs = 2,
                 .value_bits = kBits});
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(lsm.Put(k, ValueFor(k)).ok());
  }
  EXPECT_GT(lsm.flushes(), 0u);
  EXPECT_GT(lsm.compactions(), 0u);
  // All keys still readable after flush/compaction.
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(lsm.Get(k).ok()) << k;
  }
  // LSM write amplification: device writes exceed logical puts.
  EXPECT_GT(rig.device->stats().writes, 100u);
}

TEST(NoveLsmSpecificTest, TombstonesSurviveFlush) {
  IndexRig rig;
  NoveLsmKv lsm(rig.ctrl.get(),
                {.memtable_entries = 4, .max_runs = 8,
                 .value_bits = kBits});
  ASSERT_TRUE(lsm.Put(1, ValueFor(1)).ok());
  // Force the put into a run.
  for (uint64_t k = 10; k < 14; ++k) {
    ASSERT_TRUE(lsm.Put(k, ValueFor(k)).ok());
  }
  ASSERT_TRUE(lsm.Delete(1).ok());
  for (uint64_t k = 20; k < 28; ++k) {
    ASSERT_TRUE(lsm.Put(k, ValueFor(k)).ok());
  }
  EXPECT_FALSE(lsm.Get(1).ok());
}

TEST(PlacedIndexTest, DelegatesToPlacer) {
  IndexRig rig;
  ArbitraryPlacer placer(rig.ctrl.get(), 0, 256);
  PlacedKvIndex idx("B+Tree+E2", &placer);
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(idx.Put(k, ValueFor(k)).ok());
  }
  EXPECT_EQ(idx.size(), 50u);
  EXPECT_EQ(placer.FreeCount(), 256u - 50u);
  for (uint64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(idx.Get(k).value(), ValueFor(k));
  }
  // Update: place new + release old keeps free count stable.
  ASSERT_TRUE(idx.Put(0, ValueFor(0, 1)).ok());
  EXPECT_EQ(placer.FreeCount(), 256u - 50u);
  ASSERT_TRUE(idx.Delete(0).ok());
  EXPECT_EQ(placer.FreeCount(), 256u - 49u);
  EXPECT_EQ(idx.name(), "B+Tree+E2");
}

TEST(ArbitraryPlacerTest, FirstFreeOrder) {
  IndexRig rig;
  ArbitraryPlacer placer(rig.ctrl.get(), 10, 4);
  BitVector v(kBits);
  EXPECT_EQ(placer.Place(v).value(), 10u);
  EXPECT_EQ(placer.Place(v).value(), 11u);
  ASSERT_TRUE(placer.Release(10).ok());
  EXPECT_EQ(placer.Place(v).value(), 12u);  // FIFO: released goes last.
  EXPECT_EQ(placer.Place(v).value(), 13u);
  EXPECT_EQ(placer.Place(v).value(), 10u);
  EXPECT_EQ(placer.Place(v).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(MergeWriteTest, PartialWidthPreservesTail) {
  IndexRig rig;
  Rng rng(5);
  BitVector seed(kBits);
  seed.Randomize(rng);
  rig.ctrl->Seed(0, seed);
  BitVector narrow(32);
  narrow.Randomize(rng);
  MergeWrite(*rig.ctrl, 0, narrow);
  EXPECT_EQ(rig.ctrl->Peek(0).Slice(0, 32), narrow);
  EXPECT_EQ(rig.ctrl->Peek(0).Slice(32, kBits - 32),
            seed.Slice(32, kBits - 32));
}

}  // namespace
}  // namespace e2nvm::index
