#include "ml/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace e2nvm::ml {
namespace {

TEST(PcaTest, RejectsTooFewSamples) {
  Pca pca({.num_components = 2});
  Matrix x(1, 4);
  EXPECT_FALSE(pca.Fit(x).ok());
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points stretched along (1, 1)/sqrt(2) with small orthogonal noise.
  Rng rng(11);
  Matrix x(300, 2);
  for (size_t i = 0; i < 300; ++i) {
    float t = static_cast<float>(rng.NextGaussian()) * 10.0f;
    float n = static_cast<float>(rng.NextGaussian()) * 0.1f;
    x(i, 0) = t + n + 5.0f;  // Offset tests mean-centering.
    x(i, 1) = t - n + 3.0f;
  }
  Pca pca({.num_components = 1, .power_iters = 60, .seed = 1});
  ASSERT_TRUE(pca.Fit(x).ok());
  const Matrix& c = pca.components();
  float inv_sqrt2 = 1.0f / std::sqrt(2.0f);
  // Direction is defined up to sign.
  float dot = c(0, 0) * inv_sqrt2 + c(0, 1) * inv_sqrt2;
  EXPECT_NEAR(std::abs(dot), 1.0f, 0.01f);
  EXPECT_GT(pca.explained_variance()[0], 50.0);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(13);
  Matrix x(200, 8);
  for (auto& v : x.data()) v = static_cast<float>(rng.NextGaussian());
  Pca pca({.num_components = 4, .power_iters = 50, .seed = 2});
  ASSERT_TRUE(pca.Fit(x).ok());
  const Matrix& c = pca.components();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i; j < 4; ++j) {
      double dot = 0;
      for (size_t d = 0; d < 8; ++d) dot += c(i, d) * c(j, d);
      if (i == j) {
        EXPECT_NEAR(dot, 1.0, 0.05) << i;
      } else {
        EXPECT_NEAR(dot, 0.0, 0.08) << i << "," << j;
      }
    }
  }
}

TEST(PcaTest, EigenvaluesDescending) {
  Rng rng(17);
  Matrix x(300, 6);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t d = 0; d < 6; ++d) {
      // Variance shrinks with dimension index.
      x(i, d) = static_cast<float>(rng.NextGaussian()) *
                static_cast<float>(6 - d);
    }
  }
  Pca pca({.num_components = 4, .power_iters = 60, .seed = 3});
  ASSERT_TRUE(pca.Fit(x).ok());
  const auto& ev = pca.explained_variance();
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i - 1], ev[i] * 0.9) << i;  // Allow slight noise.
  }
}

TEST(PcaTest, TransformShapesAndCentering) {
  Rng rng(19);
  Matrix x(50, 5);
  for (auto& v : x.data()) v = rng.NextFloat();
  Pca pca({.num_components = 3, .seed = 4});
  ASSERT_TRUE(pca.Fit(x).ok());
  Matrix z = pca.Transform(x);
  EXPECT_EQ(z.rows(), 50u);
  EXPECT_EQ(z.cols(), 3u);
  // Projection of the mean point is ~0 in every component.
  std::vector<float> mean = pca.mean();
  auto z0 = pca.TransformOne(mean.data(), mean.size());
  for (float v : z0) EXPECT_NEAR(v, 0.0f, 1e-4f);
}

TEST(PcaTest, ComponentCapRespectsDims) {
  Rng rng(23);
  Matrix x(10, 3);
  for (auto& v : x.data()) v = rng.NextFloat();
  Pca pca({.num_components = 16, .seed = 5});
  ASSERT_TRUE(pca.Fit(x).ok());
  EXPECT_LE(pca.components().rows(), 3u);
}

TEST(PcaTest, FlopsPositive) {
  Rng rng(29);
  Matrix x(20, 4);
  for (auto& v : x.data()) v = rng.NextFloat();
  Pca pca({.num_components = 2, .seed = 6});
  ASSERT_TRUE(pca.Fit(x).ok());
  EXPECT_GT(pca.TransformFlops(), 0.0);
  EXPECT_GT(pca.FitFlops(20), pca.TransformFlops());
}

}  // namespace
}  // namespace e2nvm::ml
