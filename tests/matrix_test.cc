#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace e2nvm::ml {
namespace {

Matrix M(std::initializer_list<std::initializer_list<float>> rows) {
  size_t r = rows.size();
  size_t c = rows.begin()->size();
  Matrix m(r, c);
  size_t i = 0;
  for (const auto& row : rows) {
    size_t j = 0;
    for (float v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

void ExpectMatrixNear(const Matrix& a, const Matrix& b, float tol = 1e-5f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a(i, j), b(i, j), tol) << i << "," << j;
    }
  }
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (float v : m.data()) EXPECT_EQ(v, 0.0f);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a = M({{1, 2}, {3, 4}});
  Matrix b = M({{5, 6}, {7, 8}});
  ExpectMatrixNear(MatMul(a, b), M({{19, 22}, {43, 50}}));
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a = M({{1, 2, 3}});           // 1x3
  Matrix b = M({{1}, {2}, {3}});       // 3x1
  ExpectMatrixNear(MatMul(a, b), M({{14}}));
  ExpectMatrixNear(MatMul(b, a),
                   M({{1, 2, 3}, {2, 4, 6}, {3, 6, 9}}));
}

TEST(MatrixTest, TransposedVariantsAgree) {
  Rng rng(3);
  Matrix a(4, 6), b(6, 5);
  for (auto& v : a.data()) v = rng.NextFloat() - 0.5f;
  for (auto& v : b.data()) v = rng.NextFloat() - 0.5f;
  Matrix ab = MatMul(a, b);
  // a * b == a * (b^T)^T via MatMulTransB with bt = b^T.
  Matrix bt(5, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 5; ++j) bt(j, i) = b(i, j);
  }
  ExpectMatrixNear(MatMulTransB(a, bt), ab);
  // a * b == (a^T)^T * b via MatMulTransA with at = a^T.
  Matrix at(6, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 6; ++j) at(j, i) = a(i, j);
  }
  ExpectMatrixNear(MatMulTransA(at, b), ab);
}

TEST(MatrixTest, AddAndAxpy) {
  Matrix a = M({{1, 2}});
  Matrix b = M({{10, 20}});
  AddInPlace(a, b);
  ExpectMatrixNear(a, M({{11, 22}}));
  Axpy(a, b, 0.5f);
  ExpectMatrixNear(a, M({{16, 32}}));
}

TEST(MatrixTest, AddRowVector) {
  Matrix a = M({{1, 2}, {3, 4}});
  AddRowVector(a, {10, 20});
  ExpectMatrixNear(a, M({{11, 22}, {13, 24}}));
}

TEST(MatrixTest, HadamardAndColSums) {
  Matrix a = M({{1, 2}, {3, 4}});
  Matrix b = M({{2, 2}, {2, 2}});
  ExpectMatrixNear(Hadamard(a, b), M({{2, 4}, {6, 8}}));
  auto cs = ColSums(a);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_FLOAT_EQ(cs[0], 4.0f);
  EXPECT_FLOAT_EQ(cs[1], 6.0f);
}

TEST(MatrixTest, FrobeniusSq) {
  Matrix a = M({{3, 4}});
  EXPECT_DOUBLE_EQ(FrobeniusSq(a), 25.0);
}

TEST(MatrixTest, XavierInitBounded) {
  Rng rng(5);
  Matrix w(64, 32);
  w.XavierInit(rng, 64, 32);
  float limit = std::sqrt(6.0f / (64 + 32));
  bool nonzero = false;
  for (float v : w.data()) {
    EXPECT_LE(std::abs(v), limit);
    if (v != 0) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
}

TEST(MatrixTest, CopyRowFrom) {
  Matrix a = M({{1, 2}, {3, 4}});
  Matrix b(2, 2);
  b.CopyRowFrom(a, 1, 0);
  EXPECT_FLOAT_EQ(b(0, 0), 3);
  EXPECT_FLOAT_EQ(b(0, 1), 4);
}

}  // namespace
}  // namespace e2nvm::ml
