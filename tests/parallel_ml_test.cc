// The parallel ML kernels behind ml::SetComputePool: row-parallel
// MatMul* must reproduce the serial results bit-for-bit, and the blocked
// reductions (K-means, VAE) must be deterministic in the pool size.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "ml/kmeans.h"
#include "ml/matrix.h"
#include "ml/vae.h"

namespace e2nvm::ml {
namespace {

/// Installs a pool for one scope and restores serial mode on exit.
class ScopedPool {
 public:
  explicit ScopedPool(size_t threads) : pool_(threads) {
    SetComputePool(&pool_);
  }
  ~ScopedPool() { SetComputePool(nullptr); }

 private:
  ThreadPool pool_;
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.NextFloat() * 2.0f - 1.0f;
  return m;
}

TEST(ParallelMlTest, MatMulMatchesSerialBitForBit) {
  Matrix a = RandomMatrix(97, 64, 1);
  Matrix b = RandomMatrix(64, 53, 2);
  Matrix serial = MatMul(a, b);
  ScopedPool pool(4);
  Matrix parallel = MatMul(a, b);
  ASSERT_EQ(serial.rows(), parallel.rows());
  EXPECT_EQ(serial.data(), parallel.data());
}

TEST(ParallelMlTest, MatMulTransBMatchesSerialBitForBit) {
  Matrix a = RandomMatrix(97, 64, 3);
  Matrix b = RandomMatrix(53, 64, 4);
  Matrix serial = MatMulTransB(a, b);
  ScopedPool pool(4);
  Matrix parallel = MatMulTransB(a, b);
  EXPECT_EQ(serial.data(), parallel.data());
}

TEST(ParallelMlTest, MatMulTransAMatchesSerialBitForBit) {
  // The parallel TransA kernel exchanges the loop nest but keeps the
  // per-element accumulation order, so equality is exact.
  Matrix a = RandomMatrix(64, 97, 5);
  Matrix b = RandomMatrix(64, 53, 6);
  Matrix serial = MatMulTransA(a, b);
  ScopedPool pool(4);
  Matrix parallel = MatMulTransA(a, b);
  EXPECT_EQ(serial.data(), parallel.data());
}

TEST(ParallelMlTest, KMeansFitDeterministicAcrossPoolSizes) {
  Matrix x = RandomMatrix(512, 32, 7);
  KMeansConfig cfg{.k = 8, .max_iters = 25, .seed = 11};
  Matrix c2, c4;
  {
    ScopedPool pool(2);
    KMeans km(cfg);
    ASSERT_TRUE(km.Fit(x).ok());
    c2 = km.centroids();
  }
  {
    ScopedPool pool(4);
    KMeans km(cfg);
    ASSERT_TRUE(km.Fit(x).ok());
    c4 = km.centroids();
  }
  // Fixed-grain blocking: the reduction is a pure function of the data,
  // so different pool sizes agree bit-for-bit.
  EXPECT_EQ(c2.data(), c4.data());
}

TEST(ParallelMlTest, KMeansPooledReachesSerialQuality) {
  Matrix x = RandomMatrix(512, 32, 8);
  KMeansConfig cfg{.k = 8, .max_iters = 25, .seed = 11};
  KMeans serial(cfg);
  ASSERT_TRUE(serial.Fit(x).ok());
  double serial_sse = serial.Sse(x);
  ScopedPool pool(4);
  KMeans pooled(cfg);
  ASSERT_TRUE(pooled.Fit(x).ok());
  // Blocked reductions reorder float additions, which can flip borderline
  // assignments across iterations — so compare the *quality* of the fit,
  // not the exact clustering.
  EXPECT_NEAR(serial_sse, pooled.Sse(x), 0.05 * std::abs(serial_sse));
}

TEST(ParallelMlTest, KMeansPredictBatchMatchesSerial) {
  Matrix x = RandomMatrix(300, 16, 9);
  KMeans km({.k = 5, .max_iters = 10, .seed = 3});
  ASSERT_TRUE(km.Fit(x).ok());
  std::vector<size_t> serial = km.PredictBatch(x);
  ScopedPool pool(4);
  std::vector<size_t> parallel = km.PredictBatch(x);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMlTest, VaeTrainingDeterministicAcrossPoolSizes) {
  // batch 64 x 1024 inputs = 64k-element sigmoid/BCE loops: large enough
  // to take the parallel elementwise path, not just parallel MatMul.
  Matrix x(128, 1024);
  Rng rng(10);
  for (auto& v : x.data()) v = rng.NextBernoulli(0.3) ? 1.0f : 0.0f;
  VaeConfig cfg;
  cfg.input_dim = 1024;
  cfg.hidden_dim = 32;
  cfg.latent_dim = 6;
  cfg.seed = 5;
  VaeTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 64;

  auto train = [&](size_t threads) {
    ScopedPool pool(threads);
    Vae vae(cfg);
    TrainHistory h = vae.Train(x, opts);
    return h.train_loss;
  };
  std::vector<double> l2 = train(2);
  std::vector<double> l4 = train(4);
  ASSERT_EQ(l2.size(), l4.size());
  for (size_t i = 0; i < l2.size(); ++i) EXPECT_EQ(l2[i], l4[i]);
}

TEST(ParallelMlTest, VaePooledLossCloseToSerial) {
  Matrix x(128, 1024);
  Rng rng(12);
  for (auto& v : x.data()) v = rng.NextBernoulli(0.3) ? 1.0f : 0.0f;
  VaeConfig cfg;
  cfg.input_dim = 1024;
  cfg.hidden_dim = 32;
  cfg.latent_dim = 6;
  cfg.seed = 5;
  VaeTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 64;

  Vae serial(cfg);
  double sl = serial.Train(x, opts).train_loss.back();
  ScopedPool pool(4);
  Vae pooled(cfg);
  double pl = pooled.Train(x, opts).train_loss.back();
  EXPECT_NEAR(sl, pl, 1e-3 * std::abs(sl) + 1e-6);
}

}  // namespace
}  // namespace e2nvm::ml
