#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/sharded_store.h"
#include "pmem/allocator.h"
#include "pmem/pool.h"
#include "pmem/tx.h"
#include "workload/datasets.h"

namespace e2nvm::pmem {
namespace {

constexpr size_t kPoolSize = 1024 * 1024;
constexpr size_t kRanges = 3;
const char* const kOld[kRanges] = {"OLD_AAAA", "OLD_BBBB", "OLD_CCCC"};
const char* const kNew[kRanges] = {"NEW_aaaa", "NEW_bbbb", "NEW_cccc"};
constexpr size_t kLen = 9;  // Includes the terminator.

struct TxRunResult {
  bool fired_in_body = false;       // Crash happened before Commit.
  uint64_t persists_in_body = 0;    // Persists from Begin through mutation.
  std::vector<PoolOffset> offs;     // The three ranges.
  std::vector<uint8_t> image;       // Captured pool image (if fired).
};

/// Builds a fresh pool with kRanges committed ranges, then runs one
/// multi-range transaction overwriting all of them with a CrashPoint
/// armed at the k-th persist of the transaction body.
TxRunResult RunTxWithCrashAt(uint64_t k) {
  TxRunResult out;
  auto pool = Pool::CreateAnonymous("crash", kPoolSize);
  EXPECT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  for (size_t i = 0; i < kRanges; ++i) {
    PoolOffset off = alloc.Alloc(64).value();
    std::memcpy((*pool)->Direct(off), kOld[i], kLen);
    (*pool)->Persist(off, kLen);
    out.offs.push_back(off);
  }

  CrashPoint cp;
  (*pool)->SetCrashPoint(&cp);
  cp.ArmAt(k);  // Counting starts here: setup persists are excluded.

  Transaction tx(pool->get());
  EXPECT_TRUE(tx.Begin().ok());
  for (size_t i = 0; i < kRanges; ++i) {
    EXPECT_TRUE(tx.AddRange(out.offs[i], kLen).ok());
    std::memcpy((*pool)->Direct(out.offs[i]), kNew[i], kLen);
    (*pool)->Persist(out.offs[i], kLen);
  }
  out.fired_in_body = cp.fired();
  out.persists_in_body = cp.persists_seen();
  tx.Commit();
  if (cp.fired()) out.image = cp.image();
  (*pool)->SetCrashPoint(nullptr);
  return out;
}

TEST(CrashRecoveryTest, EveryPersistPointRestoresPreTxImage) {
  // First pass just counts the persist points inside the tx body.
  uint64_t body = RunTxWithCrashAt(1'000'000).persists_in_body;
  ASSERT_GE(body, 6u);  // Begin + 3 x (snapshot + data persist) at least.

  for (uint64_t k = 0; k < body; ++k) {
    TxRunResult run = RunTxWithCrashAt(k);
    ASSERT_TRUE(run.fired_in_body) << "k=" << k;

    auto reopened = Pool::OpenFromImage(run.image, "crash");
    ASSERT_TRUE(reopened.ok()) << "k=" << k << ": "
                               << reopened.status().ToString();
    EXPECT_TRUE((*reopened)->recovered()) << "k=" << k;
    for (size_t i = 0; i < kRanges; ++i) {
      EXPECT_STREQ(
          static_cast<const char*>((*reopened)->Direct(run.offs[i])),
          kOld[i])
          << "power loss at persist " << k << " corrupted range " << i;
    }
  }
}

TEST(CrashRecoveryTest, CrashAtCommitKeepsNewData) {
  uint64_t body = RunTxWithCrashAt(1'000'000).persists_in_body;
  // The commit persist is the first one after the body: a power loss
  // right after it must preserve the transaction.
  TxRunResult run = RunTxWithCrashAt(body);
  ASSERT_FALSE(run.fired_in_body);
  ASSERT_FALSE(run.image.empty());

  auto reopened = Pool::OpenFromImage(run.image, "crash");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (size_t i = 0; i < kRanges; ++i) {
    EXPECT_STREQ(
        static_cast<const char*>((*reopened)->Direct(run.offs[i])),
        kNew[i]);
  }
}

TEST(CrashRecoveryTest, LogFullTxAbortRestoresSnapshottedRanges) {
  auto pool = Pool::CreateAnonymous("logfull", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  PoolOffset off = alloc.Alloc(64).value();
  std::memcpy((*pool)->Direct(off), kOld[0], kLen);
  (*pool)->Persist(off, kLen);

  TxLog log(pool->get(), (*pool)->header()->tx_log);
  ASSERT_TRUE(log.Begin().ok());
  ASSERT_TRUE(log.Snapshot(off, kLen).ok());
  std::memcpy((*pool)->Direct(off), kNew[0], kLen);

  // Fill the log until Snapshot reports exhaustion — the tx cannot grow.
  Status last = Status::Ok();
  for (int i = 0; i < 1000 && last.ok(); ++i) {
    last = log.Snapshot(Pool::kHeaderBytes + TxLog::kLogBytes, 8000);
  }
  ASSERT_EQ(last.code(), StatusCode::kResourceExhausted);

  // The only sane client response is to abort; the snapshotted range
  // must roll back even though later snapshots were refused.
  log.Abort();
  EXPECT_STREQ(static_cast<const char*>((*pool)->Direct(off)), kOld[0]);
  EXPECT_FALSE(log.active());
}

TEST(CrashRecoveryTest, OpenFromImageValidatesHeader) {
  std::vector<uint8_t> garbage(kPoolSize, 0xAB);
  auto p = Pool::OpenFromImage(garbage, "crash");
  EXPECT_EQ(p.status().code(), StatusCode::kDataLoss);

  std::vector<uint8_t> tiny(128, 0);
  auto q = Pool::OpenFromImage(tiny, "crash");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace e2nvm::pmem

namespace e2nvm::core {
namespace {

// Crash consistency of the sharded store's per-shard journals: a power
// loss at ANY persist ordinal inside one shard's journal Append must
// (a) leave that shard's journal replaying to an exact prefix of its
// appended operations — the in-flight record either fully visible or
// fully invisible — and (b) leave every other shard's journal byte-intact,
// since shards journal into independent pools.

constexpr size_t kCrashShards = 2;
constexpr size_t kCrashSegments = 64;  // Per shard.
constexpr size_t kCrashBits = 128;

std::unique_ptr<ShardedStore> MakeJournaledStore() {
  workload::ProtoConfig pc;
  pc.dim = kCrashBits;
  pc.num_classes = 4;
  pc.samples = kCrashSegments + 16;
  pc.noise = 0.03;
  pc.seed = 41;
  auto ds = workload::MakeProtoDataset(pc);

  ShardedStoreConfig cfg;
  cfg.num_shards = kCrashShards;
  cfg.shard.num_segments = kCrashSegments;
  cfg.shard.segment_bits = kCrashBits;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.model.finetune_rounds = 1;
  cfg.journal = true;
  cfg.journal_capacity = 128;
  auto store_or = ShardedStore::Create(cfg);
  EXPECT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  EXPECT_TRUE(store->Bootstrap().ok());
  return store;
}

BitVector ValueFor(uint64_t key) {
  BitVector v(kCrashBits);
  for (size_t i = 0; i < kCrashBits; ++i) {
    v.Set(i, ((key * 0x9E3779B97F4A7C15ull) >> (i % 64)) & 1);
  }
  return v;
}

TEST(ShardedCrashRecovery, MidPutCrashOnOneShardLeavesOthersIntact) {
  auto store = MakeJournaledStore();

  // Collect keys owned by each shard.
  std::vector<std::vector<uint64_t>> keys(kCrashShards);
  for (uint64_t key = 0; keys[0].size() < 40 || keys[1].size() < 8;
       ++key) {
    keys[store->ShardOf(key)].push_back(key);
  }

  // Committed baseline on both shards.
  const size_t kBaseline1 = 8;
  for (size_t i = 0; i < kBaseline1; ++i) {
    ASSERT_TRUE(store->Put(keys[1][i], ValueFor(keys[1][i])).ok());
  }
  const size_t kBaseline0 = 4;
  for (size_t i = 0; i < kBaseline0; ++i) {
    ASSERT_TRUE(store->Put(keys[0][i], ValueFor(keys[0][i])).ok());
  }

  // Count the persist ordinals inside one shard-0 journal Append.
  pmem::CrashPoint cp;
  store->journal(0)->pool().SetCrashPoint(&cp);
  cp.ArmAt(1'000'000);
  size_t next0 = kBaseline0;
  ASSERT_TRUE(
      store->Put(keys[0][next0], ValueFor(keys[0][next0])).ok());
  ++next0;
  const uint64_t body = cp.persists_seen();
  ASSERT_GE(body, 4u);  // Begin, slot, undo snapshot, count, commit.

  for (uint64_t k = 0; k < body; ++k) {
    // Fire the crash at the k-th persist of a fresh key's Append. The
    // live store keeps running (the CrashPoint only captures an image),
    // so one store serves every ordinal.
    cp.ArmAt(k);
    const uint64_t key = keys[0][next0];
    ASSERT_TRUE(store->Put(key, ValueFor(key)).ok()) << "k=" << k;
    ++next0;
    ASSERT_TRUE(cp.fired()) << "k=" << k;

    // (a) The crashed shard's journal replays to an exact prefix: every
    // append before this Put, plus at most the in-flight record.
    auto replay_or = ShardJournal::ReplayImage(cp.image());
    ASSERT_TRUE(replay_or.ok())
        << "k=" << k << ": " << replay_or.status().ToString();
    const auto& replayed = *replay_or;
    const size_t before = next0 - 1;  // Appends committed before this Put.
    ASSERT_TRUE(replayed.size() == before ||
                replayed.size() == before + 1)
        << "k=" << k << " replayed " << replayed.size()
        << " records, expected " << before << " or " << before + 1;
    for (size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_EQ(replayed[i].op, ShardJournal::Op::kPut) << "k=" << k;
      EXPECT_EQ(replayed[i].key, keys[0][i]) << "k=" << k;
      EXPECT_EQ(replayed[i].value, ValueFor(keys[0][i])) << "k=" << k;
    }

    // (b) The other shard's journal is untouched by the crash.
    auto other_or =
        ShardJournal::ReplayImage(store->journal(1)->SnapshotImage());
    ASSERT_TRUE(other_or.ok()) << "k=" << k;
    ASSERT_EQ(other_or->size(), kBaseline1) << "k=" << k;
    for (size_t i = 0; i < kBaseline1; ++i) {
      EXPECT_EQ((*other_or)[i].key, keys[1][i]) << "k=" << k;
      EXPECT_EQ((*other_or)[i].value, ValueFor(keys[1][i])) << "k=" << k;
    }
  }
  store->journal(0)->pool().SetCrashPoint(nullptr);

  // The live store itself was never disturbed by the image captures.
  for (size_t i = 0; i < next0; ++i) {
    auto got = store->Get(keys[0][i]);
    ASSERT_TRUE(got.ok()) << "key " << keys[0][i];
    EXPECT_EQ(*got, ValueFor(keys[0][i]));
  }
  for (size_t i = 0; i < kBaseline1; ++i) {
    auto got = store->Get(keys[1][i]);
    ASSERT_TRUE(got.ok()) << "key " << keys[1][i];
    EXPECT_EQ(*got, ValueFor(keys[1][i]));
  }
}

}  // namespace
}  // namespace e2nvm::core
