#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pmem/allocator.h"
#include "pmem/pool.h"
#include "pmem/tx.h"

namespace e2nvm::pmem {
namespace {

constexpr size_t kPoolSize = 1024 * 1024;
constexpr size_t kRanges = 3;
const char* const kOld[kRanges] = {"OLD_AAAA", "OLD_BBBB", "OLD_CCCC"};
const char* const kNew[kRanges] = {"NEW_aaaa", "NEW_bbbb", "NEW_cccc"};
constexpr size_t kLen = 9;  // Includes the terminator.

struct TxRunResult {
  bool fired_in_body = false;       // Crash happened before Commit.
  uint64_t persists_in_body = 0;    // Persists from Begin through mutation.
  std::vector<PoolOffset> offs;     // The three ranges.
  std::vector<uint8_t> image;       // Captured pool image (if fired).
};

/// Builds a fresh pool with kRanges committed ranges, then runs one
/// multi-range transaction overwriting all of them with a CrashPoint
/// armed at the k-th persist of the transaction body.
TxRunResult RunTxWithCrashAt(uint64_t k) {
  TxRunResult out;
  auto pool = Pool::CreateAnonymous("crash", kPoolSize);
  EXPECT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  for (size_t i = 0; i < kRanges; ++i) {
    PoolOffset off = alloc.Alloc(64).value();
    std::memcpy((*pool)->Direct(off), kOld[i], kLen);
    (*pool)->Persist(off, kLen);
    out.offs.push_back(off);
  }

  CrashPoint cp;
  (*pool)->SetCrashPoint(&cp);
  cp.ArmAt(k);  // Counting starts here: setup persists are excluded.

  Transaction tx(pool->get());
  EXPECT_TRUE(tx.Begin().ok());
  for (size_t i = 0; i < kRanges; ++i) {
    EXPECT_TRUE(tx.AddRange(out.offs[i], kLen).ok());
    std::memcpy((*pool)->Direct(out.offs[i]), kNew[i], kLen);
    (*pool)->Persist(out.offs[i], kLen);
  }
  out.fired_in_body = cp.fired();
  out.persists_in_body = cp.persists_seen();
  tx.Commit();
  if (cp.fired()) out.image = cp.image();
  (*pool)->SetCrashPoint(nullptr);
  return out;
}

TEST(CrashRecoveryTest, EveryPersistPointRestoresPreTxImage) {
  // First pass just counts the persist points inside the tx body.
  uint64_t body = RunTxWithCrashAt(1'000'000).persists_in_body;
  ASSERT_GE(body, 6u);  // Begin + 3 x (snapshot + data persist) at least.

  for (uint64_t k = 0; k < body; ++k) {
    TxRunResult run = RunTxWithCrashAt(k);
    ASSERT_TRUE(run.fired_in_body) << "k=" << k;

    auto reopened = Pool::OpenFromImage(run.image, "crash");
    ASSERT_TRUE(reopened.ok()) << "k=" << k << ": "
                               << reopened.status().ToString();
    EXPECT_TRUE((*reopened)->recovered()) << "k=" << k;
    for (size_t i = 0; i < kRanges; ++i) {
      EXPECT_STREQ(
          static_cast<const char*>((*reopened)->Direct(run.offs[i])),
          kOld[i])
          << "power loss at persist " << k << " corrupted range " << i;
    }
  }
}

TEST(CrashRecoveryTest, CrashAtCommitKeepsNewData) {
  uint64_t body = RunTxWithCrashAt(1'000'000).persists_in_body;
  // The commit persist is the first one after the body: a power loss
  // right after it must preserve the transaction.
  TxRunResult run = RunTxWithCrashAt(body);
  ASSERT_FALSE(run.fired_in_body);
  ASSERT_FALSE(run.image.empty());

  auto reopened = Pool::OpenFromImage(run.image, "crash");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (size_t i = 0; i < kRanges; ++i) {
    EXPECT_STREQ(
        static_cast<const char*>((*reopened)->Direct(run.offs[i])),
        kNew[i]);
  }
}

TEST(CrashRecoveryTest, LogFullTxAbortRestoresSnapshottedRanges) {
  auto pool = Pool::CreateAnonymous("logfull", kPoolSize);
  ASSERT_TRUE(pool.ok());
  Allocator alloc(pool->get());
  PoolOffset off = alloc.Alloc(64).value();
  std::memcpy((*pool)->Direct(off), kOld[0], kLen);
  (*pool)->Persist(off, kLen);

  TxLog log(pool->get(), (*pool)->header()->tx_log);
  ASSERT_TRUE(log.Begin().ok());
  ASSERT_TRUE(log.Snapshot(off, kLen).ok());
  std::memcpy((*pool)->Direct(off), kNew[0], kLen);

  // Fill the log until Snapshot reports exhaustion — the tx cannot grow.
  Status last = Status::Ok();
  for (int i = 0; i < 1000 && last.ok(); ++i) {
    last = log.Snapshot(Pool::kHeaderBytes + TxLog::kLogBytes, 8000);
  }
  ASSERT_EQ(last.code(), StatusCode::kResourceExhausted);

  // The only sane client response is to abort; the snapshotted range
  // must roll back even though later snapshots were refused.
  log.Abort();
  EXPECT_STREQ(static_cast<const char*>((*pool)->Direct(off)), kOld[0]);
  EXPECT_FALSE(log.active());
}

TEST(CrashRecoveryTest, OpenFromImageValidatesHeader) {
  std::vector<uint8_t> garbage(kPoolSize, 0xAB);
  auto p = Pool::OpenFromImage(garbage, "crash");
  EXPECT_EQ(p.status().code(), StatusCode::kDataLoss);

  std::vector<uint8_t> tiny(128, 0);
  auto q = Pool::OpenFromImage(tiny, "crash");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace e2nvm::pmem
