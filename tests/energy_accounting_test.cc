// The accounting-equivalence suite for the striped (per-lane
// relaxed-atomic) meters introduced by DESIGN.md §13: merged
// energy/flip/wear totals must be BIT-IDENTICAL to the serial path.
//
//  - Single-lane meters reproduce a plain-double reference accumulator
//    exactly (the historical mutex meter's accumulation order).
//  - N-lane meters merged at Snapshot() equal a lane-ordered serial
//    replay of the per-lane charge streams — independent of how many
//    client threads produced them or how they interleaved.
//  - Re-striping (SetLanes / ConfigureAccountingLanes) folds the carry
//    without losing a picojoule or a count.
//  - The same holds one level up for NvmDevice's per-lane stats slabs
//    and end-to-end for a multi-shard ShardedStore.
//
// Registered in the TSan stage of scripts/check.sh: the concurrent
// cases double as data-race detectors for the lock-free charge path.

#include <array>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sharded_store.h"
#include "nvm/device.h"
#include "nvm/energy.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace e2nvm {
namespace {

using nvm::EnergyDomain;
using nvm::EnergyMeter;
using nvm::EnergyTotals;
using nvm::kNumEnergyDomains;

// ---------------------------------------------------------------------
// Meter-level equivalence.

struct ChargeEvent {
  int domain;
  double pj;
  double ns;
};

/// One lane's deterministic charge stream. Regenerated (same seed) for
/// every run being compared, so concurrent and serial executions see
/// identical per-lane sequences.
std::vector<ChargeEvent> LaneStream(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<ChargeEvent> ev(n);
  for (auto& e : ev) {
    e.domain = static_cast<int>(rng.NextBounded(kNumEnergyDomains));
    e.pj = rng.NextDouble() * 16.0;
    e.ns = rng.NextDouble() * 4.0;
  }
  return ev;
}

void Apply(EnergyMeter& m, size_t lane, const std::vector<ChargeEvent>& ev) {
  for (const auto& e : ev) {
    m.ChargeLane(lane, static_cast<EnergyDomain>(e.domain), e.pj);
    m.AdvanceTimeLane(lane, e.ns);
  }
}

/// The documented merge contract, computed with plain doubles: per-lane
/// serial accumulation, then Snapshot()'s lane-order merge, then
/// TotalPj()'s domain-order sum. This is the reference the striped meter
/// must match bitwise.
EnergyTotals ReferenceMerge(
    const std::vector<std::vector<ChargeEvent>>& lanes) {
  std::vector<std::array<double, kNumEnergyDomains>> pj(
      lanes.size(), std::array<double, kNumEnergyDomains>{});
  std::vector<double> ns(lanes.size(), 0.0);
  for (size_t l = 0; l < lanes.size(); ++l) {
    for (const auto& e : lanes[l]) {
      pj[l][e.domain] += e.pj;
      ns[l] += e.ns;
    }
  }
  EnergyTotals t;
  for (int d = 0; d < kNumEnergyDomains; ++d) {
    for (size_t l = 0; l < lanes.size(); ++l) t.pj[d] += pj[l][d];
  }
  for (size_t l = 0; l < lanes.size(); ++l) t.now_ns += ns[l];
  return t;
}

void ExpectBitIdentical(const EnergyTotals& got, const EnergyTotals& want) {
  for (int d = 0; d < kNumEnergyDomains; ++d) {
    EXPECT_EQ(got.pj[d], want.pj[d]) << "domain " << d;
  }
  EXPECT_EQ(got.now_ns, want.now_ns);
  EXPECT_EQ(got.TotalPj(), want.TotalPj());
}

TEST(EnergyAccounting, SingleLaneMatchesPlainAccumulator) {
  // The default 1-lane meter must reproduce the historical serial
  // accumulator exactly — same values, same order, same rounding.
  auto ev = LaneStream(101, 5000);
  EnergyMeter meter;
  for (const auto& e : ev) {
    meter.Charge(static_cast<EnergyDomain>(e.domain), e.pj);
    meter.AdvanceTime(e.ns);
  }
  ExpectBitIdentical(meter.Snapshot(), ReferenceMerge({ev}));
  // The convenience accessors read through the same Snapshot().
  EXPECT_EQ(meter.TotalPj(), meter.Snapshot().TotalPj());
  EXPECT_EQ(meter.now_ns(), meter.Snapshot().now_ns);
}

TEST(EnergyAccounting, SetLanesFoldsCarryExactly) {
  auto ev = LaneStream(102, 2000);
  EnergyMeter meter;
  Apply(meter, 0, ev);
  const EnergyTotals before = meter.Snapshot();
  meter.SetLanes(4);
  ASSERT_EQ(meter.num_lanes(), 4u);
  ExpectBitIdentical(meter.Snapshot(), before);
  // Fresh lanes still accumulate on top of the folded carry.
  meter.ChargeLane(3, EnergyDomain::kDram, 7.5);
  EXPECT_EQ(meter.DomainPj(EnergyDomain::kDram),
            before.DomainPj(EnergyDomain::kDram) + 7.5);
}

TEST(EnergyAccounting, StripedMergeIsThreadCountInvariant) {
  // The heart of the §13 contract: the merged totals depend only on the
  // per-lane charge streams, NOT on which threads delivered them or how
  // the threads interleaved. Three executions of identical per-lane
  // streams — 4 threads (one per lane), 2 threads (two lanes each,
  // interleaved), and the plain-double reference — must agree bitwise.
  constexpr size_t kLanes = 4;
  std::vector<std::vector<ChargeEvent>> streams;
  for (size_t l = 0; l < kLanes; ++l) {
    streams.push_back(LaneStream(777 + l, 4000));
  }
  const EnergyTotals want = ReferenceMerge(streams);

  {  // One thread per lane.
    EnergyMeter meter;
    meter.SetLanes(kLanes);
    std::vector<std::thread> ts;
    for (size_t l = 0; l < kLanes; ++l) {
      ts.emplace_back([&, l] { Apply(meter, l, streams[l]); });
    }
    for (auto& t : ts) t.join();
    ExpectBitIdentical(meter.Snapshot(), want);
  }
  {  // Two threads, each interleaving two lanes event-by-event. Still
     // single-writer per lane, but a completely different global
     // interleaving — the totals must not move.
    EnergyMeter meter;
    meter.SetLanes(kLanes);
    std::vector<std::thread> ts;
    for (size_t t = 0; t < 2; ++t) {
      ts.emplace_back([&, t] {
        const size_t a = 2 * t, b = 2 * t + 1;
        for (size_t i = 0; i < streams[a].size(); ++i) {
          const auto& ea = streams[a][i];
          meter.ChargeLane(a, static_cast<EnergyDomain>(ea.domain), ea.pj);
          meter.AdvanceTimeLane(a, ea.ns);
          const auto& eb = streams[b][i];
          meter.ChargeLane(b, static_cast<EnergyDomain>(eb.domain), eb.pj);
          meter.AdvanceTimeLane(b, eb.ns);
        }
      });
    }
    for (auto& t : ts) t.join();
    ExpectBitIdentical(meter.Snapshot(), want);
  }
}

TEST(EnergyAccounting, SnapshotIsConsistentUnderConcurrentCharging) {
  // S6 regression: the old accessors each took the mutex separately, so
  // a TotalPj() read concurrent with a charge could mix epochs across
  // domains. Snapshot() returns ONE struct; its TotalPj() must equal the
  // domain-order sum of its own fields, and per-domain values must be
  // monotone across snapshots (single writer storing increasing values;
  // atomic coherence orders the relaxed loads).
  EnergyMeter meter;
  meter.SetLanes(2);
  std::atomic<bool> stop{false};
  std::thread charger([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      meter.ChargeLane(i & 1, static_cast<EnergyDomain>(i % 4), 1.0);
      meter.AdvanceTimeLane(i & 1, 1.0);
      ++i;
    }
  });
  EnergyTotals prev;
  for (int iter = 0; iter < 20000; ++iter) {
    EnergyTotals snap = meter.Snapshot();
    double sum = 0;
    for (int d = 0; d < kNumEnergyDomains; ++d) {
      ASSERT_GE(snap.pj[d], prev.pj[d]) << "domain " << d << " went backward";
      sum += snap.pj[d];
    }
    ASSERT_EQ(snap.TotalPj(), sum) << "torn multi-field read";
    ASSERT_GE(snap.now_ns, prev.now_ns);
    prev = snap;
  }
  stop.store(true, std::memory_order_release);
  charger.join();
}

// ---------------------------------------------------------------------
// Device-level equivalence: per-lane stats slabs routed by segment range.

struct DeviceOp {
  size_t seg;
  bool is_read;
  BitVector data;  // Empty for reads.
};

/// Lane `l`'s stream over its own segment range [l*segs_per_lane, ...).
std::vector<DeviceOp> DeviceStream(uint64_t seed, size_t lane,
                                   size_t segs_per_lane, size_t bits,
                                   size_t n) {
  Rng rng(seed);
  std::vector<DeviceOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DeviceOp op;
    op.seg = lane * segs_per_lane + rng.NextBounded(segs_per_lane);
    op.is_read = rng.NextDouble() < 0.3;
    if (!op.is_read) {
      op.data = BitVector(bits);
      op.data.Randomize(rng);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void ApplyDeviceStream(nvm::NvmDevice& dev, const std::vector<DeviceOp>& ops) {
  schemes::Dcw dcw;  // Stateless; one per caller keeps lanes independent.
  for (const auto& op : ops) {
    if (op.is_read) {
      dev.ReadSegment(op.seg);
    } else {
      dev.WriteSegment(op.seg, op.data, dcw);
    }
  }
}

void ExpectStatsEqual(const nvm::DeviceStats& a, const nvm::DeviceStats& b) {
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.data_bits_flipped, b.data_bits_flipped);
  EXPECT_EQ(a.aux_bits_flipped, b.aux_bits_flipped);
  EXPECT_EQ(a.set_transitions, b.set_transitions);
  EXPECT_EQ(a.reset_transitions, b.reset_transitions);
  EXPECT_EQ(a.dirty_lines, b.dirty_lines);
  EXPECT_EQ(a.logical_bits_written, b.logical_bits_written);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.torn_writes, b.torn_writes);
  EXPECT_EQ(a.read_disturbs, b.read_disturbs);
  EXPECT_EQ(a.verify_retries, b.verify_retries);
  EXPECT_EQ(a.verify_failures, b.verify_failures);
  EXPECT_EQ(a.repaired_cells, b.repaired_cells);
}

nvm::DeviceConfig TwoLaneConfig() {
  nvm::DeviceConfig c;
  c.num_segments = 16;
  c.segment_bits = 256;
  return c;
}

TEST(EnergyAccounting, DeviceLaneStatsMatchSerialReplay) {
  // Two threads driving disjoint lane ranges concurrently must produce
  // the same merged stats() AND the same merged energy snapshot as one
  // thread replaying the identical streams lane-by-lane in lane order.
  constexpr size_t kSegsPerLane = 8;
  auto s0 = DeviceStream(61, 0, kSegsPerLane, 256, 300);
  auto s1 = DeviceStream(62, 1, kSegsPerLane, 256, 300);

  nvm::NvmDevice concurrent(TwoLaneConfig());
  concurrent.ConfigureAccountingLanes(2, kSegsPerLane);
  {
    std::thread t0([&] { ApplyDeviceStream(concurrent, s0); });
    std::thread t1([&] { ApplyDeviceStream(concurrent, s1); });
    t0.join();
    t1.join();
  }

  nvm::NvmDevice serial(TwoLaneConfig());
  serial.ConfigureAccountingLanes(2, kSegsPerLane);
  ApplyDeviceStream(serial, s0);
  ApplyDeviceStream(serial, s1);

  ExpectStatsEqual(concurrent.stats(), serial.stats());
  ExpectBitIdentical(concurrent.meter().Snapshot(),
                     serial.meter().Snapshot());
  // Per-segment state is untouched by striping: both devices hold the
  // same final cells.
  for (size_t seg = 0; seg < concurrent.num_segments(); ++seg) {
    EXPECT_EQ(concurrent.PeekSegment(seg), serial.PeekSegment(seg))
        << "segment " << seg;
  }
}

TEST(EnergyAccounting, DeviceConfigureLanesFoldsCarryExactly) {
  nvm::NvmDevice dev(TwoLaneConfig());
  auto warm = DeviceStream(63, 0, 16, 256, 50);  // Whole range, lane 0.
  ApplyDeviceStream(dev, warm);
  const nvm::DeviceStats before = dev.stats();
  const EnergyTotals energy_before = dev.meter().Snapshot();
  ASSERT_GT(before.writes, 0u);

  dev.ConfigureAccountingLanes(2, 8);
  ASSERT_EQ(dev.num_accounting_lanes(), 2u);
  EXPECT_EQ(dev.LaneOfSegment(7), 0u);
  EXPECT_EQ(dev.LaneOfSegment(8), 1u);
  ExpectStatsEqual(dev.stats(), before);
  ExpectBitIdentical(dev.meter().Snapshot(), energy_before);
}

// ---------------------------------------------------------------------
// End-to-end: a 4-shard store's merged accounting is invariant to
// whether the per-shard operation streams ran concurrently or serially.

core::ShardedStoreConfig StoreConfig4() {
  core::ShardedStoreConfig cfg;
  cfg.num_shards = 4;
  cfg.shard.num_segments = 64;
  cfg.shard.segment_bits = 256;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 1;
  cfg.shard.model.finetune_rounds = 1;
  // Synchronous auto-retrain: retrain CPU charges land on the owning
  // shard's lane from the client thread itself, deterministically per
  // stream.
  cfg.shard.auto_retrain = true;
  cfg.shard.background_retrain = false;
  // Free floor near the 64/4 per-cluster average so a handful of live
  // keys triggers synchronous retrains during the streams — their CPU
  // charges must be part of the totals being compared. (Kept low enough
  // that the test stays unit-sized under TSan.)
  cfg.shard.retrain.min_free_per_cluster = 12;
  cfg.pool_threads = 0;  // Serial kernels: placement math is identical.
  return cfg;
}

struct StoreOp {
  enum Kind { kPut, kGet, kDelete } kind;
  uint64_t key;
  BitVector value;
};

std::vector<StoreOp> ShardStream(uint64_t seed,
                                 const std::vector<uint64_t>& keys,
                                 const workload::BitDataset& ds, size_t n) {
  Rng rng(seed);
  std::vector<StoreOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StoreOp op;
    op.key = keys[rng.NextBounded(keys.size())];
    const double dice = rng.NextDouble();
    if (dice < 0.60) {
      op.kind = StoreOp::kPut;
      op.value = ds.items[rng.NextBounded(ds.items.size())];
      op.value.FlipRandomBits(rng.NextBounded(4), rng);
    } else if (dice < 0.75) {
      op.kind = StoreOp::kDelete;
    } else {
      op.kind = StoreOp::kGet;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void ApplyShardStream(core::ShardedStore& store,
                      const std::vector<StoreOp>& ops) {
  for (const auto& op : ops) {
    switch (op.kind) {
      case StoreOp::kPut:
        ASSERT_TRUE(store.Put(op.key, op.value).ok());
        break;
      case StoreOp::kGet:
        (void)store.Get(op.key);  // NotFound is fine.
        break;
      case StoreOp::kDelete:
        (void)store.Delete(op.key);  // Ditto.
        break;
    }
  }
}

TEST(EnergyAccounting, ShardedStoreConcurrentMatchesSerialReplay) {
  workload::ProtoConfig pc;
  pc.dim = 256;
  pc.num_classes = 4;
  pc.samples = 96;
  pc.noise = 0.03;
  pc.seed = 71;
  auto ds = workload::MakeProtoDataset(pc);

  auto make_store = [&] {
    auto store_or = core::ShardedStore::Create(StoreConfig4());
    EXPECT_TRUE(store_or.ok());
    auto store = std::move(*store_or);
    store->Seed(ds);
    EXPECT_TRUE(store->Bootstrap().ok());
    return store;
  };
  auto concurrent = make_store();
  auto serial = make_store();

  // 12 keys per shard (ownership is hash-derived, identical for both
  // stores), one fixed stream per shard.
  std::vector<std::vector<uint64_t>> keys(4);
  for (uint64_t key = 0; key < 100000; ++key) {
    auto& bucket = keys[concurrent->ShardOf(key)];
    if (bucket.size() < 12) bucket.push_back(key);
  }
  std::vector<std::vector<StoreOp>> streams;
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_EQ(keys[s].size(), 12u) << "shard " << s;
    streams.push_back(ShardStream(9000 + s, keys[s], ds, 80));
  }

  {  // One client thread per shard, all four running at once.
    std::vector<std::thread> ts;
    for (size_t s = 0; s < 4; ++s) {
      ts.emplace_back([&, s] { ApplyShardStream(*concurrent, streams[s]); });
    }
    for (auto& t : ts) t.join();
  }
  for (size_t s = 0; s < 4; ++s) {  // Same streams, back to back.
    ApplyShardStream(*serial, streams[s]);
  }

  auto csnap = concurrent->TakeSnapshot();
  auto ssnap = serial->TakeSnapshot();
  // The §13 claim, end to end: energy, flips and wear merged from the
  // per-shard lanes are byte-identical to the serial execution.
  EXPECT_EQ(csnap.total_pj, ssnap.total_pj);
  ExpectBitIdentical(concurrent->meter().Snapshot(),
                     serial->meter().Snapshot());
  ExpectStatsEqual(csnap.device, ssnap.device);
  EXPECT_EQ(csnap.keys, ssnap.keys);
  EXPECT_EQ(csnap.engine.placements, ssnap.engine.placements);
  EXPECT_EQ(csnap.engine.releases, ssnap.engine.releases);
  EXPECT_EQ(csnap.engine.retrains, ssnap.engine.retrains);
  EXPECT_EQ(csnap.engine.predict_flops, ssnap.engine.predict_flops);
  EXPECT_EQ(csnap.engine.train_flops, ssnap.engine.train_flops);
  // Wear landed on the same segments in both executions.
  EXPECT_EQ(concurrent->device().segment_write_counts(),
            serial->device().segment_write_counts());
  // The retrain path demonstrably ran, so its CPU charges are part of
  // what just matched.
  EXPECT_GT(csnap.engine.retrains, 0u);
}

}  // namespace
}  // namespace e2nvm
