#include "schemes/schemes.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace e2nvm::schemes {
namespace {

// ---- Shared property suite: every scheme must decode what it wrote and
// ---- never flip more data cells than a naive differential write of the
// ---- stored pattern implies.
class SchemeRoundTripTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeRoundTripTest, DecodeRecoversLogicalValue) {
  auto scheme = MakeScheme(GetParam());
  ASSERT_NE(scheme, nullptr);
  Rng rng(101);
  BitVector cells(256);
  cells.Randomize(rng);
  for (int round = 0; round < 10; ++round) {
    BitVector data(256);
    data.Randomize(rng);
    nvm::WriteResult r = scheme->Write(7, cells, data);
    ASSERT_EQ(r.stored.size(), 256u);
    EXPECT_EQ(scheme->Decode(7, r.stored), data) << "round " << round;
    cells = r.stored;
  }
}

TEST_P(SchemeRoundTripTest, FlipCountMatchesStoredDelta) {
  auto scheme = MakeScheme(GetParam());
  Rng rng(55);
  BitVector cells(128);
  cells.Randomize(rng);
  BitVector data(128);
  data.Randomize(rng);
  nvm::WriteResult r = scheme->Write(0, cells, data);
  EXPECT_EQ(r.data_bits_flipped, cells.HammingDistance(r.stored));
}

TEST_P(SchemeRoundTripTest, IdempotentRewriteIsFree) {
  auto scheme = MakeScheme(GetParam());
  Rng rng(77);
  BitVector cells(128);
  cells.Randomize(rng);
  BitVector data(128);
  data.Randomize(rng);
  nvm::WriteResult first = scheme->Write(3, cells, data);
  // Writing the same logical value again over its own stored cells must
  // flip nothing.
  nvm::WriteResult second = scheme->Write(3, first.stored, data);
  EXPECT_EQ(second.data_bits_flipped, 0u);
  EXPECT_EQ(second.aux_bits_flipped, 0u);
  EXPECT_EQ(scheme->Decode(3, second.stored), data);
}

TEST_P(SchemeRoundTripTest, SeparateSegmentsHaveSeparateState) {
  auto scheme = MakeScheme(GetParam());
  Rng rng(88);
  BitVector cells_a(64), cells_b(64), da(64), db(64);
  cells_a.Randomize(rng);
  cells_b.Randomize(rng);
  da.Randomize(rng);
  db.Randomize(rng);
  auto ra = scheme->Write(1, cells_a, da);
  auto rb = scheme->Write(2, cells_b, db);
  EXPECT_EQ(scheme->Decode(1, ra.stored), da);
  EXPECT_EQ(scheme->Decode(2, rb.stored), db);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeRoundTripTest,
                         ::testing::Values("Naive", "DCW", "FNW",
                                           "MinShift", "Captopril",
                                           "FMR"));

TEST(FmrTest, MirrorBeatsFlipWhenReversalMatches) {
  // Old cells = bit-reversal of the incoming word: the mirror encoding
  // stores it with zero data flips (2 tag bits at most).
  FlipMirrorRotate fmr(16);
  Rng rng(41);
  BitVector data(16);
  data.Randomize(rng);
  BitVector cells(16);
  for (size_t i = 0; i < 16; ++i) cells.Set(i, data.Get(15 - i));
  auto r = fmr.Write(0, cells, data);
  EXPECT_EQ(r.data_bits_flipped, 0u);
  EXPECT_EQ(fmr.Decode(0, r.stored), data);
}

TEST(FmrTest, AtLeastAsGoodAsFnwPerWrite) {
  // FMR's candidate set strictly contains FNW's {identity, flip}, so on
  // fresh state a single FMR write never flips more data cells.
  Rng rng(43);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector cells(128), data(128);
    cells.Randomize(rng);
    data.Randomize(rng);
    FlipMirrorRotate fmr(16);
    FlipNWrite fnw(16);
    auto rm = fmr.Write(0, cells, data);
    auto rn = fnw.Write(0, cells, data);
    EXPECT_LE(rm.data_bits_flipped, rn.data_bits_flipped) << trial;
  }
}

TEST(FmrTest, AuxAccounting) {
  FlipMirrorRotate fmr(16);
  EXPECT_EQ(fmr.AuxBitsPerSegment(128), 16u);  // 8 words x 2 tag bits.
}

// ---- Width sweep: schemes must handle any segment width, including
// ---- widths that don't divide evenly into their word/tag granularity.
class SchemeWidthTest
    : public ::testing::TestWithParam<std::tuple<const char*, size_t>> {};

TEST_P(SchemeWidthTest, RoundTripAtOddWidths) {
  auto [name, width] = GetParam();
  auto scheme = MakeScheme(name);
  ASSERT_NE(scheme, nullptr);
  Rng rng(width * 7 + 3);
  BitVector cells(width);
  cells.Randomize(rng);
  for (int round = 0; round < 4; ++round) {
    BitVector data(width);
    data.Randomize(rng);
    nvm::WriteResult r = scheme->Write(1, cells, data);
    ASSERT_EQ(r.stored.size(), width);
    ASSERT_EQ(scheme->Decode(1, r.stored), data)
        << name << " width " << width << " round " << round;
    cells = r.stored;
  }
}

TEST_P(SchemeWidthTest, MigratedStateDecodesAtNewSegment) {
  auto [name, width] = GetParam();
  auto scheme = MakeScheme(name);
  Rng rng(width + 11);
  BitVector cells(width), data(width);
  cells.Randomize(rng);
  data.Randomize(rng);
  nvm::WriteResult r = scheme->Write(5, cells, data);
  scheme->OnMigrate(5, 9);
  EXPECT_EQ(scheme->Decode(9, r.stored), data) << name << "/" << width;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemeWidthTest,
    ::testing::Combine(::testing::Values("DCW", "FNW", "MinShift",
                                         "Captopril", "FMR"),
                       ::testing::Values(size_t{8}, size_t{33},
                                         size_t{100}, size_t{255},
                                         size_t{2048})),
    [](const ::testing::TestParamInfo<std::tuple<const char*, size_t>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NaiveTest, ProgramsEveryCell) {
  NaiveWrite naive;
  BitVector old_cells(64), data(64);
  data.Set(0, true);
  auto r = naive.Write(0, old_cells, data);
  EXPECT_EQ(r.bits_programmed, 64u);
  EXPECT_EQ(r.data_bits_flipped, 1u);
}

TEST(DcwTest, ProgramsOnlyDiffs) {
  Dcw dcw;
  BitVector old_cells(64), data(64);
  data.Set(0, true);
  data.Set(33, true);
  auto r = dcw.Write(0, old_cells, data);
  EXPECT_EQ(r.bits_programmed, 2u);
  EXPECT_EQ(r.data_bits_flipped, 2u);
  EXPECT_EQ(r.aux_bits_flipped, 0u);
}

TEST(FnwTest, WorstCaseBoundedByHalfPlusFlag) {
  // FNW's guarantee: per w-bit word at most w/2 data flips + 1 flag flip.
  FlipNWrite fnw(32);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector cells(256), data(256);
    cells.Randomize(rng);
    data.Randomize(rng);
    auto r = fnw.Write(static_cast<uint64_t>(trial), cells, data);
    size_t words = 256 / 32;
    EXPECT_LE(r.data_bits_flipped, words * 16);
    EXPECT_LE(r.aux_bits_flipped, words);
  }
}

TEST(FnwTest, InvertsWhenComplementCloser) {
  FlipNWrite fnw(8);
  BitVector cells = BitVector::FromString("11111111");
  BitVector data = BitVector::FromString("00000001");
  // Direct write flips 7 cells; inverted data (11111110) flips 1 + flag.
  auto r = fnw.Write(0, cells, data);
  EXPECT_LE(r.total_bits_flipped(), 2u);
  EXPECT_EQ(fnw.Decode(0, r.stored), data);
}

TEST(FnwTest, BeatsOrMatchesDcwOnAdversarialData) {
  FlipNWrite fnw(32);
  Dcw dcw;
  Rng rng(6);
  size_t fnw_total = 0, dcw_total = 0;
  BitVector fnw_cells(256), dcw_cells(256);
  fnw_cells.Randomize(rng);
  dcw_cells = fnw_cells;
  for (int i = 0; i < 30; ++i) {
    BitVector data(256);
    data.Randomize(rng);
    auto rf = fnw.Write(0, fnw_cells, data);
    auto rd = dcw.Write(0, dcw_cells, data);
    fnw_total += rf.total_bits_flipped();
    dcw_total += rd.total_bits_flipped();
    fnw_cells = rf.stored;
    dcw_cells = rd.stored;
  }
  EXPECT_LE(fnw_total, dcw_total);
}

TEST(FnwTest, AuxOverheadAccounting) {
  FlipNWrite fnw(32);
  EXPECT_EQ(fnw.AuxBitsPerSegment(256), 8u);
  EXPECT_EQ(fnw.AuxBitsPerSegment(33), 2u);
}

TEST(MinShiftTest, NeverWorseThanDcwPlusTag) {
  MinShift ms;
  Dcw dcw;
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector cells(128), data(128);
    cells.Randomize(rng);
    data.Randomize(rng);
    MinShift fresh;  // Fresh tag state: old tag is (0, false).
    auto rm = fresh.Write(0, cells, data);
    auto rd = dcw.Write(0, cells, data);
    // Shift 0 / no flip is always a candidate, so MinShift can at worst
    // equal DCW (its tag cost for the identity candidate is 0).
    EXPECT_LE(rm.total_bits_flipped(), rd.data_bits_flipped);
  }
}

TEST(MinShiftTest, FindsObviousShift) {
  MinShift ms(/*try_flip=*/false);
  Rng rng(9);
  BitVector cells(64);
  cells.Randomize(rng);
  // Data = cells rotated right by 3: rotating data left by 3 restores the
  // cell pattern exactly, so the best candidate flips ~0 data cells.
  BitVector data = cells.RotatedLeft(64 - 3);
  auto r = ms.Write(0, cells, data);
  EXPECT_EQ(r.data_bits_flipped, 0u);
  EXPECT_EQ(ms.Decode(0, r.stored), data);
}

TEST(MinShiftTest, FlipModeHandlesComplement) {
  MinShift ms(/*try_flip=*/true);
  Rng rng(10);
  BitVector cells(64);
  cells.Randomize(rng);
  BitVector data = cells.Inverted();
  auto r = ms.Write(0, cells, data);
  // Complement candidate matches the cells exactly; only the tag flips.
  EXPECT_EQ(r.data_bits_flipped, 0u);
  EXPECT_EQ(ms.Decode(0, r.stored), data);
}

TEST(CaptoprilTest, ReducesPressureOnHotWords) {
  Captopril cap(8, /*hot_penalty=*/4.0);
  Rng rng(11);
  BitVector cells(64);
  cells.Randomize(rng);
  // Hammer segment 0 so some words become hot; the scheme should still
  // round-trip and not blow up flips relative to naive.
  size_t total = 0;
  for (int i = 0; i < 40; ++i) {
    BitVector data(64);
    data.Randomize(rng);
    auto r = cap.Write(0, cells, data);
    EXPECT_EQ(cap.Decode(0, r.stored), data);
    total += r.total_bits_flipped();
    cells = r.stored;
  }
  // FNW-style choice guarantees at most half the bits + flags per write.
  EXPECT_LE(total, 40u * (32 + 8));
}

TEST(SchemeFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeScheme("Bogus"), nullptr);
}

TEST(SchemeResetTest, ResetClearsPerSegmentState) {
  FlipNWrite fnw(8);
  BitVector cells = BitVector::FromString("11111111");
  BitVector data = BitVector::FromString("00000000");
  auto r = fnw.Write(0, cells, data);  // Stored inverted, flag set.
  EXPECT_EQ(fnw.Decode(0, r.stored), data);
  fnw.Reset();
  // After reset the flag table is empty: decode is identity again.
  EXPECT_EQ(fnw.Decode(0, r.stored), r.stored);
}

}  // namespace
}  // namespace e2nvm::schemes
