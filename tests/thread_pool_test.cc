#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace e2nvm {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 7, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForBlocksCoverRangeExactly) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(997);  // Prime: uneven tail block.
  pool.ParallelForBlocks(0, 997, 64,
                         [&](size_t lo, size_t hi, size_t blk) {
                           EXPECT_EQ(lo, blk * 64);
                           for (size_t i = lo; i < hi; ++i) {
                             hits[i].fetch_add(1);
                           }
                         });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NumBlocksIsThreadCountIndependent) {
  EXPECT_EQ(ThreadPool::NumBlocks(0, 8), 0u);
  EXPECT_EQ(ThreadPool::NumBlocks(1, 8), 1u);
  EXPECT_EQ(ThreadPool::NumBlocks(8, 8), 1u);
  EXPECT_EQ(ThreadPool::NumBlocks(9, 8), 2u);
  EXPECT_EQ(ThreadPool::NumBlocks(100, 0), 100u);  // grain clamped to 1.
}

TEST(ThreadPoolTest, BlockReductionIsIdenticalForAnyPoolSize) {
  // Per-block partials combined in block order must not depend on how
  // many workers ran the blocks.
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    const size_t n = 10000, grain = 128;
    std::vector<double> partial(ThreadPool::NumBlocks(n, grain), 0.0);
    pool.ParallelForBlocks(0, n, grain,
                           [&](size_t lo, size_t hi, size_t blk) {
                             double s = 0.0;
                             for (size_t i = lo; i < hi; ++i) {
                               s += 1.0 / static_cast<double>(i + 1);
                             }
                             partial[blk] = s;
                           });
    double total = 0.0;
    for (double s : partial) total += s;
    return total;
  };
  double t1 = run(1), t2 = run(2), t4 = run(4);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t2, t4);
}

TEST(ThreadPoolTest, TaskSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(ThreadPool::TaskSeed(42, 0), ThreadPool::TaskSeed(42, 0));
  EXPECT_NE(ThreadPool::TaskSeed(42, 0), ThreadPool::TaskSeed(42, 1));
  EXPECT_NE(ThreadPool::TaskSeed(42, 0), ThreadPool::TaskSeed(43, 0));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](size_t i) {
                         if (i == 37) throw std::runtime_error("boom 37");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, FirstExceptionByBlockIndexWins) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(0, 100, 10, [](size_t i) {
      if (i % 10 == 0) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t) {
    // A nested loop from a worker must complete without deadlocking.
    pool.ParallelFor(0, 16, 1, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, SubmittedTasksRunBeforeShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor must drain the queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::atomic<size_t> grand{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < 10; ++rep) {
        std::atomic<size_t> local{0};
        pool.ParallelFor(0, 500, 16,
                         [&](size_t) { local.fetch_add(1); });
        grand.fetch_add(local.load());
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(grand.load(), 4u * 10u * 500u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsSeriallyInCallerOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(0, 50, 8, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expect(50);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace e2nvm
