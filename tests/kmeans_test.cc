#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace e2nvm::ml {
namespace {

/// Three well-separated Gaussian blobs in 2D.
Matrix MakeBlobs(size_t per_cluster, std::vector<size_t>* labels,
                 uint64_t seed = 3) {
  Rng rng(seed);
  const float centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  Matrix x(per_cluster * 3, 2);
  labels->clear();
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      size_t row = c * per_cluster + i;
      x(row, 0) = centers[c][0] + static_cast<float>(rng.NextGaussian());
      x(row, 1) = centers[c][1] + static_cast<float>(rng.NextGaussian());
      labels->push_back(c);
    }
  }
  return x;
}

TEST(KMeansTest, RejectsBadInput) {
  KMeans km({.k = 5});
  Matrix tiny(2, 3);
  EXPECT_EQ(km.Fit(tiny).code(), StatusCode::kInvalidArgument);
  KMeans zero({.k = 0});
  Matrix x(10, 2);
  EXPECT_FALSE(zero.Fit(x).ok());
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  std::vector<size_t> labels;
  Matrix x = MakeBlobs(50, &labels);
  KMeans km({.k = 3, .seed = 1});
  ASSERT_TRUE(km.Fit(x).ok());
  auto assign = km.PredictBatch(x);
  // All points of a true cluster must map to the same predicted cluster,
  // and different true clusters to different predicted ones.
  std::vector<size_t> rep(3, SIZE_MAX);
  for (size_t i = 0; i < assign.size(); ++i) {
    size_t t = labels[i];
    if (rep[t] == SIZE_MAX) rep[t] = assign[i];
    EXPECT_EQ(assign[i], rep[t]) << "point " << i;
  }
  EXPECT_NE(rep[0], rep[1]);
  EXPECT_NE(rep[1], rep[2]);
  EXPECT_NE(rep[0], rep[2]);
}

TEST(KMeansTest, SseDecreasesWithK) {
  std::vector<size_t> labels;
  Matrix x = MakeBlobs(40, &labels);
  double prev = 1e18;
  for (size_t k : {1u, 2u, 3u, 6u}) {
    KMeans km({.k = k, .seed = 7});
    ASSERT_TRUE(km.Fit(x).ok());
    double sse = km.Sse(x);
    EXPECT_LT(sse, prev + 1e-9) << "k=" << k;
    prev = sse;
  }
}

TEST(KMeansTest, PredictConsistentWithCentroidDistance) {
  std::vector<size_t> labels;
  Matrix x = MakeBlobs(30, &labels);
  KMeans km({.k = 3, .seed = 5});
  ASSERT_TRUE(km.Fit(x).ok());
  const Matrix& c = km.centroids();
  float probe[2] = {9.5f, 10.5f};
  size_t pred = km.Predict(probe, 2);
  double best = 1e18;
  size_t manual = 0;
  for (size_t i = 0; i < 3; ++i) {
    double d = 0;
    for (size_t j = 0; j < 2; ++j) {
      d += (probe[j] - c(i, j)) * (probe[j] - c(i, j));
    }
    if (d < best) {
      best = d;
      manual = i;
    }
  }
  EXPECT_EQ(pred, manual);
}

TEST(KMeansTest, DeterministicPerSeed) {
  std::vector<size_t> labels;
  Matrix x = MakeBlobs(30, &labels);
  KMeans a({.k = 3, .seed = 9}), b({.k = 3, .seed = 9});
  ASSERT_TRUE(a.Fit(x).ok());
  ASSERT_TRUE(b.Fit(x).ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_FLOAT_EQ(a.centroids()(i, j), b.centroids()(i, j));
    }
  }
}

TEST(KMeansTest, KEqualsNZeroSse) {
  Matrix x(4, 2);
  x(0, 0) = 0;
  x(1, 0) = 1;
  x(2, 0) = 2;
  x(3, 0) = 3;
  KMeans km({.k = 4, .max_iters = 100, .seed = 2});
  ASSERT_TRUE(km.Fit(x).ok());
  EXPECT_NEAR(km.Sse(x), 0.0, 1e-6);
}

TEST(KMeansTest, FlopsAccountingPositive) {
  std::vector<size_t> labels;
  Matrix x = MakeBlobs(20, &labels);
  KMeans km({.k = 3, .seed = 4});
  ASSERT_TRUE(km.Fit(x).ok());
  EXPECT_GT(km.PredictFlops(), 0.0);
  EXPECT_GT(km.FitFlops(x.rows()), km.PredictFlops());
  EXPECT_GT(km.iters_run(), 0);
}

TEST(FindElbowTest, DetectsSharpKnee) {
  // SSE drops fast until K=4, then flattens: the knee is at K=4.
  std::vector<double> sse = {1000, 600, 300, 100, 90, 82, 76, 71, 67};
  EXPECT_EQ(FindElbow(sse), 4u);
}

TEST(FindElbowTest, LinearCurveHasNoStrongKnee) {
  std::vector<double> sse = {100, 90, 80, 70, 60, 50};
  size_t k = FindElbow(sse);
  EXPECT_GE(k, 1u);
  EXPECT_LE(k, 6u);
}

TEST(FindElbowTest, DegenerateInputs) {
  EXPECT_EQ(FindElbow({}), 1u);
  EXPECT_EQ(FindElbow({5.0}), 1u);
  EXPECT_EQ(FindElbow({5.0, 4.0}), 2u);
}

}  // namespace
}  // namespace e2nvm::ml
