// Concurrent stress of the sharded store, written to run under TSan
// (registered in the E2NVM_SANITIZE=thread stage of scripts/check.sh):
//
//  - 8 client threads drive a mixed PUT/GET/DELETE/MultiPut workload over
//    disjoint key stripes with background retraining forced on, while a
//    monitor thread takes merged snapshots and pumps retrain swaps. After
//    join, every stripe's shadow oracle must agree with the store and the
//    per-shard DAP conservation invariant must hold.
//
//  - A same-shard hammer aims every thread at ONE shard, so the shard
//    mutex is the only thing between concurrent callers and the
//    placement engine's unsynchronized internals (Release's
//    placed_cluster_ memo, EngineStats counters) — the regression test
//    for the engine's documented external-locking contract.

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/lock_audit.h"
#include "common/rng.h"
#include "core/sharded_store.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kSegmentsPerShard = 128;
constexpr size_t kBits = 256;
constexpr size_t kThreads = 8;

workload::BitDataset ClusteredData(uint64_t seed) {
  workload::ProtoConfig cfg;
  cfg.dim = kBits;
  cfg.num_classes = 4;
  cfg.samples = kSegmentsPerShard + 32;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

std::unique_ptr<ShardedStore> MakeStore(const workload::BitDataset& ds,
                                        size_t num_shards,
                                        size_t pool_threads,
                                        size_t min_free_per_cluster = 8) {
  ShardedStoreConfig cfg;
  cfg.num_shards = num_shards;
  cfg.shard.num_segments = kSegmentsPerShard;
  cfg.shard.segment_bits = kBits;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.model.finetune_rounds = 1;
  cfg.shard.auto_retrain = true;
  cfg.shard.background_retrain = true;
  cfg.shard.retrain.min_free_per_cluster = min_free_per_cluster;
  cfg.pool_threads = pool_threads;
  auto store_or = ShardedStore::Create(cfg);
  EXPECT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  EXPECT_TRUE(store->Bootstrap().ok());
  return store;
}

void CheckConservation(ShardedStore& store) {
  for (size_t s = 0; s < store.num_shards(); ++s) {
    E2KvStore& shard = store.shard(s);
    EXPECT_EQ(shard.engine().pool().TotalFree() + shard.size(),
              kSegmentsPerShard)
        << "shard " << s;
  }
}

TEST(ShardedStress, ConcurrentMixedWorkloadAgreesWithOracles) {
  auto ds = ClusteredData(29);
  auto store = MakeStore(ds, kShards, /*pool_threads=*/2);

  // Thread t owns keys with key % kThreads == t: stripes are disjoint, so
  // each thread's private oracle is exact, while stripes interleave
  // across shards so every shard sees contention from several threads.
  const uint64_t keys_per_thread = 32;
  const size_t ops_per_thread = 300;
  std::atomic<bool> failed{false};
  std::atomic<bool> stop_monitor{false};

  std::thread monitor([&] {
    while (!stop_monitor.load(std::memory_order_acquire)) {
      auto snap = store->TakeSnapshot();
      if (snap.keys > kThreads * keys_per_thread) {
        failed.store(true, std::memory_order_release);
      }
      store->PumpRetrains();
      std::this_thread::yield();
    }
  });

  std::vector<std::unordered_map<uint64_t, BitVector>> oracles(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      auto& oracle = oracles[t];
      auto pick_key = [&] {
        return t + kThreads * rng.NextBounded(keys_per_thread);
      };
      for (size_t op = 0; op < ops_per_thread && !failed.load(); ++op) {
        const double dice = rng.NextDouble();
        const uint64_t key = pick_key();
        if (dice < 0.50) {
          BitVector v = ds.items[rng.NextBounded(ds.items.size())];
          v.FlipRandomBits(rng.NextBounded(4), rng);
          if (!store->Put(key, v).ok()) failed.store(true);
          oracle[key] = std::move(v);
        } else if (dice < 0.62) {
          bool ok = store->Delete(key).ok();
          if (ok != (oracle.erase(key) > 0)) failed.store(true);
        } else if (dice < 0.90) {
          auto got = store->Get(key);
          auto it = oracle.find(key);
          if (got.ok() != (it != oracle.end())) failed.store(true);
          if (got.ok() && !(*got == it->second)) failed.store(true);
        } else {
          std::vector<std::pair<uint64_t, BitVector>> kvs;
          for (size_t i = 0; i < 6; ++i) {
            BitVector v = ds.items[rng.NextBounded(ds.items.size())];
            v.FlipRandomBits(rng.NextBounded(4), rng);
            kvs.emplace_back(pick_key(), std::move(v));
          }
          if (!store->MultiPut(kvs).ok()) failed.store(true);
          for (auto& [k, v] : kvs) oracle[k] = std::move(v);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  stop_monitor.store(true, std::memory_order_release);
  monitor.join();
  ASSERT_FALSE(failed.load()) << "a concurrent operation misbehaved";

  // Quiescent: every stripe agrees with its oracle.
  size_t live = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (const auto& [key, value] : oracles[t]) {
      auto got = store->Get(key);
      ASSERT_TRUE(got.ok()) << "thread " << t << " key " << key;
      ASSERT_EQ(*got, value) << "thread " << t << " key " << key;
    }
    live += oracles[t].size();
  }
  EXPECT_EQ(store->size(), live);
  CheckConservation(*store);

  auto snap = store->TakeSnapshot();
  EXPECT_EQ(snap.keys, live);
  EXPECT_GT(snap.engine.placements, 0u);
  EXPECT_GT(snap.total_pj, 0.0);
}

TEST(ShardedStress, SameShardHammerSerializesEngineInternals) {
  // Every thread targets keys of shard 0 only: all contention lands on
  // one mutex, one engine, one DAP — with background retraining swapping
  // models underneath. TSan verifies the shard mutex is sufficient to
  // serialize the engine's unsynchronized state (its documented
  // threading contract); the oracle check verifies nothing was lost.
  auto ds = ClusteredData(31);
  // A high per-cluster free floor (~the 128/4 average with two dozen
  // live keys) keeps the retrain trigger firing throughout the hammer.
  auto store = MakeStore(ds, kShards, /*pool_threads=*/2,
                         /*min_free_per_cluster=*/28);

  // Precompute a pool of keys owned by shard 0.
  std::vector<uint64_t> shard0_keys;
  for (uint64_t key = 0; shard0_keys.size() < 24; ++key) {
    if (store->ShardOf(key) == 0) shard0_keys.push_back(key);
  }

  constexpr size_t kHammerThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  // Stripe the shard-0 key pool across threads (disjoint, exact oracles).
  std::vector<std::unordered_map<uint64_t, BitVector>> oracles(
      kHammerThreads);
  for (size_t t = 0; t < kHammerThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(2000 + t);
      auto& oracle = oracles[t];
      for (size_t op = 0; op < 250 && !failed.load(); ++op) {
        uint64_t key =
            shard0_keys[t + kHammerThreads *
                                rng.NextBounded(shard0_keys.size() /
                                                kHammerThreads)];
        if (rng.NextDouble() < 0.7) {
          BitVector v = ds.items[rng.NextBounded(ds.items.size())];
          v.FlipRandomBits(rng.NextBounded(4), rng);
          if (!store->Put(key, v).ok()) failed.store(true);
          oracle[key] = std::move(v);
        } else {
          bool ok = store->Delete(key).ok();
          if (ok != (oracle.erase(key) > 0)) failed.store(true);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  ASSERT_FALSE(failed.load());
  for (size_t t = 0; t < kHammerThreads; ++t) {
    for (const auto& [key, value] : oracles[t]) {
      auto got = store->Get(key);
      ASSERT_TRUE(got.ok()) << "key " << key;
      ASSERT_EQ(*got, value) << "key " << key;
    }
  }
  CheckConservation(*store);
  // The hammer must actually have exercised retraining on shard 0 for
  // the regression to mean anything.
  EXPECT_GT(store->shard(0).engine().stats().background_retrains, 0u);
}

TEST(ShardedStress, SteadyStatePutTakesNoSharedLocks) {
  // The mutex-acquisition assertion for the §13 contract: once warm, the
  // PUT/GET/DELETE/MultiPut path must acquire NO shard-external lock.
  // Every instrumented shared-lock site (ThreadPool::Submit's queue
  // mutex, the DAP's internal-locking mode, the fault injector) bumps a
  // thread-local counter (common/lock_audit.h); a steady-state window
  // must leave it untouched. pool_threads > 0 on purpose: the lanes
  // exist, and the test proves steady-state operations never enqueue on
  // them (inference stays below the kernels' parallel threshold).
  auto ds = ClusteredData(41);
  ShardedStoreConfig cfg;
  cfg.num_shards = kShards;
  cfg.shard.num_segments = kSegmentsPerShard;
  cfg.shard.segment_bits = kBits;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.model.finetune_rounds = 1;
  // Steady state by construction: no retrain epochs inside the window
  // (a retrain is background/maintenance work, not the steady path).
  cfg.shard.auto_retrain = false;
  cfg.shard.background_retrain = false;
  cfg.pool_threads = 4;
  // An attached-but-unarmed fault injector (no stuck cells, zero tear /
  // disturb probability) must ride along for free: its unarmed fast
  // path skips the injector mutex, so the audit below still sees zero.
  nvm::FaultInjector injector{nvm::FaultConfig{}};
  auto store_or = ShardedStore::Create(cfg);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->device().AttachFaultInjector(&injector);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());  // Training MAY submit to lanes.

  // Warm up: every key placed once, so window puts are re-placements.
  constexpr uint64_t kKeys = 48;
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(store->Put(key, ds.items[key % ds.items.size()]).ok());
  }

  auto run_window = [&](uint64_t seed) {
    Rng rng(seed);
    for (size_t op = 0; op < 400; ++op) {
      const double dice = rng.NextDouble();
      const uint64_t key = rng.NextBounded(kKeys);
      if (dice < 0.45) {
        BitVector v = ds.items[rng.NextBounded(ds.items.size())];
        v.FlipRandomBits(rng.NextBounded(4), rng);
        ASSERT_TRUE(store->Put(key, v).ok());
      } else if (dice < 0.60) {
        (void)store->Delete(key);
      } else if (dice < 0.90) {
        (void)store->Get(key);
      } else {
        std::vector<std::pair<uint64_t, BitVector>> kvs;
        for (size_t i = 0; i < 6; ++i) {
          BitVector v = ds.items[rng.NextBounded(ds.items.size())];
          v.FlipRandomBits(rng.NextBounded(4), rng);
          kvs.emplace_back(rng.NextBounded(kKeys), std::move(v));
        }
        ASSERT_TRUE(store->MultiPut(kvs).ok());
      }
    }
  };

  // Single-threaded steady window: zero shared-lock acquisitions.
  const uint64_t before = debug::SharedLockAcquisitions();
  run_window(51);
  EXPECT_EQ(debug::SharedLockAcquisitions(), before)
      << "a steady-state operation took a shard-external lock";

  // Multi-threaded window: every client thread's own (thread-local)
  // counter must stay zero, concurrently with the other clients.
  std::atomic<uint64_t> total_shared_locks{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      run_window(60 + t);
      total_shared_locks.fetch_add(debug::SharedLockAcquisitions(),
                                   std::memory_order_relaxed);
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(total_shared_locks.load(), 0u)
      << "a concurrent steady-state operation took a shard-external lock";
}

TEST(ShardedStress, FaultInjectionWithBackgroundScrubKeepsOraclesExact) {
  // The integrity-hardening soak: 6 client threads run the mixed
  // workload on disjoint stripes while the device tears writes and
  // sticks cells (write-verify + spare repair + re-placement absorb
  // them) AND the background scrubber sweeps segment/journal checksums
  // from the shared pool. TSan checks the injector's internal lock, the
  // thread-local device buffers and the scrub/client interleavings; the
  // oracles check no operation result was corrupted. A quiescent
  // bit-rot phase then proves the scrubber repairs silent damage from
  // the journal's redundant copy.
  auto ds = ClusteredData(37);
  nvm::FaultConfig fc;
  fc.seed = 0xD15EA5Eull;
  fc.initial_stuck_fraction = 0.01;
  fc.torn_write_probability = 0.05;
  fc.spare_cells_per_segment = 5;  // Tight budget: some repairs denied.
  nvm::FaultInjector injector(fc);

  ShardedStoreConfig cfg;
  cfg.num_shards = kShards;
  cfg.shard.num_segments = kSegmentsPerShard;
  cfg.shard.segment_bits = kBits;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.model.finetune_rounds = 1;
  cfg.shard.auto_retrain = true;
  cfg.shard.background_retrain = true;
  cfg.shard.retrain.min_free_per_cluster = 8;
  cfg.shard.verify_writes = true;
  cfg.shard.integrity_tracking = true;
  cfg.pool_threads = 2;
  cfg.journal = true;
  auto store_or = ShardedStore::Create(cfg);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->device().AttachFaultInjector(&injector);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());
  ASSERT_TRUE(store->StartBackgroundScrub());

  constexpr size_t kFaultThreads = 6;
  const uint64_t keys_per_thread = 24;
  std::atomic<bool> failed{false};
  std::vector<std::unordered_map<uint64_t, BitVector>> oracles(
      kFaultThreads);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kFaultThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(3000 + t);
      auto& oracle = oracles[t];
      auto pick_key = [&] {
        return t + kFaultThreads * rng.NextBounded(keys_per_thread);
      };
      for (size_t op = 0; op < 250 && !failed.load(); ++op) {
        const double dice = rng.NextDouble();
        const uint64_t key = pick_key();
        if (dice < 0.55) {
          BitVector v = ds.items[rng.NextBounded(ds.items.size())];
          v.FlipRandomBits(rng.NextBounded(4), rng);
          if (!store->Put(key, v).ok()) failed.store(true);
          oracle[key] = std::move(v);
        } else if (dice < 0.70) {
          bool ok = store->Delete(key).ok();
          if (ok != (oracle.erase(key) > 0)) failed.store(true);
        } else {
          auto got = store->Get(key);
          auto it = oracle.find(key);
          if (got.ok() != (it != oracle.end())) failed.store(true);
          if (got.ok() && !(*got == it->second)) failed.store(true);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  ASSERT_FALSE(failed.load()) << "an operation misbehaved under faults";
  store->StopBackgroundScrub();

  // Quiescent: every surviving key reads back exactly despite torn
  // writes, stuck cells and concurrent scrubbing.
  for (size_t t = 0; t < kFaultThreads; ++t) {
    for (const auto& [key, value] : oracles[t]) {
      auto got = store->Get(key);
      ASSERT_TRUE(got.ok()) << "thread " << t << " key " << key;
      ASSERT_EQ(*got, value) << "thread " << t << " key " << key;
    }
  }
  // Conservation, quarantine-aware: addresses are free, live, or dropped
  // as poisoned (re-placement never hands out a quarantined segment).
  for (size_t s = 0; s < store->num_shards(); ++s) {
    E2KvStore& shard = store->shard(s);
    const size_t free_live = shard.engine().pool().TotalFree() + shard.size();
    EXPECT_LE(free_live, kSegmentsPerShard) << "shard " << s;
    EXPECT_GE(free_live + shard.controller().quarantined_count(),
              kSegmentsPerShard)
        << "shard " << s;
  }
  // The fault machinery and the scrubber both demonstrably ran.
  auto stats = injector.stats();
  EXPECT_GT(stats.torn_writes, 0u);
  EXPECT_GT(stats.stuck_clamps, 0u);
  auto scrub = store->TakeScrubStats();
  EXPECT_GT(scrub.segments_scanned, 0u);

  // Silent bit-rot phase: flip cells under three live keys, sweep every
  // shard once, and require the journal-backed repair to restore them.
  std::vector<uint64_t> victims;
  for (size_t t = 0; t < kFaultThreads && victims.size() < 3; ++t) {
    if (!oracles[t].empty()) victims.push_back(oracles[t].begin()->first);
  }
  ASSERT_FALSE(victims.empty());
  for (uint64_t key : victims) {
    const size_t s = store->ShardOf(key);
    const uint64_t addr = *store->shard(s).tree().Get(key);
    const size_t off =
        static_cast<size_t>(addr - store->shard(s).first_segment());
    store->InjectBitRot(s, off, 7);
    store->InjectBitRot(s, off, 133);
  }
  const uint64_t repaired_before = store->TakeScrubStats().repaired;
  for (size_t s = 0; s < store->num_shards(); ++s) {
    store->ScrubShard(s, kSegmentsPerShard);
  }
  EXPECT_GT(store->TakeScrubStats().repaired, repaired_before);
  for (uint64_t key : victims) {
    for (size_t t = 0; t < kFaultThreads; ++t) {
      auto it = oracles[t].find(key);
      if (it == oracles[t].end()) continue;
      auto got = store->Get(key);
      ASSERT_TRUE(got.ok()) << "victim " << key;
      ASSERT_EQ(*got, it->second) << "victim " << key;
    }
  }
  store->device().AttachFaultInjector(nullptr);
}

}  // namespace
}  // namespace e2nvm::core
