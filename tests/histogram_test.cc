#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace e2nvm {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.CdfAt(10), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, CdfMatchesPaperStyleReadout) {
  // Mimic Fig 19's readout: P(X <= v).
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_DOUBLE_EQ(h.CdfAt(10), 0.10);
  EXPECT_DOUBLE_EQ(h.CdfAt(81), 0.81);
  EXPECT_DOUBLE_EQ(h.CdfAt(100), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(1000), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(0), 0.0);
}

TEST(HistogramTest, QuantileInverseOfCdf) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.Quantile(0.5), 50u);
  EXPECT_EQ(h.Quantile(0.9), 90u);
  EXPECT_EQ(h.Quantile(1.0), 100u);
  EXPECT_EQ(h.Quantile(0.01), 1u);
}

TEST(HistogramTest, AddNWeights) {
  Histogram h;
  h.AddN(5, 10);
  h.AddN(10, 30);
  EXPECT_EQ(h.count(), 40u);
  EXPECT_DOUBLE_EQ(h.CdfAt(5), 0.25);
  EXPECT_DOUBLE_EQ(h.Mean(), (5.0 * 10 + 10.0 * 30) / 40.0);
}

TEST(HistogramTest, MinMax) {
  Histogram h;
  h.Add(7);
  h.Add(3);
  h.Add(11);
  EXPECT_EQ(h.Min(), 3u);
  EXPECT_EQ(h.Max(), 11u);
}

TEST(HistogramTest, CdfSeriesMonotone) {
  Histogram h;
  h.Add(1);
  h.Add(1);
  h.Add(5);
  h.Add(9);
  auto series = h.CdfSeries();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].first, 1u);
  EXPECT_DOUBLE_EQ(series[0].second, 0.5);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].second, series[i - 1].second);
    EXPECT_GT(series[i].first, series[i - 1].first);
  }
}

TEST(HistogramTest, SummaryContainsFields) {
  Histogram h;
  h.Add(4);
  std::string s = h.Summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("max=4"), std::string::npos);
}

TEST(RunningStatTest, MeanMinMax) {
  RunningStat rs;
  rs.Add(1.0);
  rs.Add(2.0);
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 6.0);
  EXPECT_EQ(rs.count(), 3u);
}

TEST(RunningStatTest, VarianceMatchesClosedForm) {
  RunningStat rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(rs.Variance(), 32.0 / 7.0, 1e-9);
  EXPECT_NEAR(rs.Stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(RunningStatTest, EmptyIsSafe) {
  RunningStat rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.Variance(), 0.0);
}

}  // namespace
}  // namespace e2nvm
