#include "nvm/fault_injector.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nvm/controller.h"
#include "nvm/device.h"
#include "schemes/schemes.h"

namespace e2nvm::nvm {
namespace {

constexpr size_t kSegs = 4;
constexpr size_t kBits = 64;

DeviceConfig SmallConfig(bool verify) {
  DeviceConfig dc;
  dc.num_segments = kSegs;
  dc.segment_bits = kBits;
  dc.verify_writes = verify;
  return dc;
}

BitVector RandomBits(size_t n, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) v.Set(i, rng.NextBernoulli(0.5));
  return v;
}

TEST(FaultInjectorTest, StuckCellRepairedByWriteVerify) {
  NvmDevice dev(SmallConfig(/*verify=*/true));
  FaultConfig fc;
  fc.spare_cells_per_segment = 4;
  FaultInjector inj(fc);
  dev.AttachFaultInjector(&inj);
  inj.StickCell(0, 3, /*value=*/true);

  schemes::Dcw dcw;
  BitVector zeros(kBits);  // Wants bit 3 = 0, but the cell is stuck at 1.
  WriteResult r = dev.WriteSegment(0, zeros, dcw);

  EXPECT_FALSE(r.verify_failed);
  EXPECT_TRUE(dev.PeekSegment(0) == zeros);  // Repair made it exact.
  EXPECT_GE(dev.stats().repaired_cells, 1u);
  EXPECT_FALSE(inj.IsStuck(0, 3));  // Remapped to a spare.
  EXPECT_EQ(inj.SparesUsed(0), 1u);
}

TEST(FaultInjectorTest, QuarantineWhenSparesExhausted) {
  NvmDevice dev(SmallConfig(/*verify=*/true));
  FaultConfig fc;
  fc.spare_cells_per_segment = 0;  // No repair budget at all.
  FaultInjector inj(fc);
  dev.AttachFaultInjector(&inj);
  inj.StickCell(0, 3, /*value=*/true);

  schemes::Dcw dcw;
  MemoryController ctrl(&dev, &dcw, kSegs, /*psi=*/0);
  WriteResult r = ctrl.Write(0, BitVector(kBits));

  EXPECT_TRUE(r.verify_failed);
  EXPECT_TRUE(ctrl.IsQuarantined(0));
  EXPECT_FALSE(ctrl.IsQuarantined(1));
  EXPECT_GE(dev.stats().verify_failures, 1u);
  EXPECT_GE(inj.stats().repairs_denied, 1u);
  EXPECT_GE(dev.stats().verify_retries, 1u);
}

TEST(FaultInjectorTest, TornWriteHealedByVerify) {
  NvmDevice dev(SmallConfig(/*verify=*/true));
  FaultConfig fc;
  fc.torn_write_probability = 1.0;  // Every program attempt tears.
  FaultInjector inj(fc);
  dev.AttachFaultInjector(&inj);

  schemes::Dcw dcw;
  BitVector data = RandomBits(kBits, 7);
  WriteResult r = dev.WriteSegment(0, data, dcw);

  // No stuck cells: the final no-tear program always converges.
  EXPECT_FALSE(r.verify_failed);
  EXPECT_TRUE(dev.PeekSegment(0) == data);
  EXPECT_GE(dev.stats().torn_writes, 1u);
}

TEST(FaultInjectorTest, TornWriteCorruptsWithoutVerify) {
  NvmDevice dev(SmallConfig(/*verify=*/false));
  FaultConfig fc;
  fc.torn_write_probability = 1.0;
  FaultInjector inj(fc);
  dev.AttachFaultInjector(&inj);

  schemes::Dcw dcw;
  BitVector data = RandomBits(kBits, 7);
  dev.WriteSegment(0, data, dcw);

  // A tear always reverts at least one changed bit, and nothing fixed it.
  EXPECT_FALSE(dev.PeekSegment(0) == data);
  EXPECT_GE(dev.stats().torn_writes, 1u);
}

TEST(FaultInjectorTest, ReadDisturbIsTransient) {
  NvmDevice dev(SmallConfig(/*verify=*/false));
  FaultConfig fc;
  fc.read_disturb_probability = 1.0;
  FaultInjector inj(fc);
  dev.AttachFaultInjector(&inj);

  BitVector data = RandomBits(kBits, 11);
  dev.SeedSegment(0, data);

  const BitVector& got = dev.ReadSegment(0);
  EXPECT_EQ(got.HammingDistance(data), 1u);  // One flipped bit returned...
  EXPECT_TRUE(dev.PeekSegment(0) == data);   // ...but the cells are fine.
  EXPECT_EQ(dev.stats().read_disturbs, 1u);
}

TEST(FaultInjectorTest, InitialStuckFractionSticksCells) {
  NvmDevice dev(SmallConfig(/*verify=*/false));
  FaultConfig fc;
  fc.initial_stuck_fraction = 0.05;  // ~13 of 256 cells.
  FaultInjector inj(fc);
  dev.AttachFaultInjector(&inj);

  EXPECT_GT(inj.stats().stuck_cells, 0u);
  EXPECT_LT(inj.stats().stuck_cells, kSegs * kBits / 4);
}

TEST(FaultInjectorTest, WearDrivenSticking) {
  DeviceConfig dc = SmallConfig(/*verify=*/false);
  dc.track_bit_wear = true;
  dc.pcm.endurance_writes = 4;  // Tiny budget so wear-out is reachable.
  NvmDevice dev(dc);
  FaultConfig fc;
  fc.wear_onset_fraction = 0.5;          // Eligible after 2 programs.
  fc.stuck_on_program_probability = 1.0;  // Then stick immediately.
  FaultInjector inj(fc);
  dev.AttachFaultInjector(&inj);

  schemes::Dcw dcw;
  BitVector ones(kBits);
  for (size_t i = 0; i < kBits; ++i) ones.Set(i, true);
  for (int i = 0; i < 8; ++i) {
    dev.WriteSegment(0, (i % 2 == 0) ? ones : BitVector(kBits), dcw);
  }
  EXPECT_GT(inj.stats().stuck_cells, 0u);
  EXPECT_GT(inj.stats().stuck_clamps, 0u);
}

TEST(FaultInjectorTest, RepairBudgetIsAllOrNothing) {
  FaultConfig fc;
  fc.spare_cells_per_segment = 4;
  FaultInjector inj(fc);
  inj.Bind(/*num_segments=*/1, /*segment_bits=*/64,
           /*endurance_writes=*/1000);
  std::vector<size_t> many = {0, 1, 2, 3, 4, 5};
  for (size_t b : many) inj.StickCell(0, b, true);

  EXPECT_FALSE(inj.RepairCells(0, many));  // 6 stuck > 4 spares.
  EXPECT_EQ(inj.SparesUsed(0), 0u);        // Nothing partially repaired.
  EXPECT_GE(inj.stats().repairs_denied, 1u);

  EXPECT_TRUE(inj.RepairCells(0, {0, 1}));
  EXPECT_EQ(inj.SparesUsed(0), 2u);
  EXPECT_FALSE(inj.IsStuck(0, 0));
  EXPECT_TRUE(inj.IsStuck(0, 2));
}

TEST(FaultInjectorTest, SameSeedReplaysBitForBit) {
  auto run = [] {
    NvmDevice dev(SmallConfig(/*verify=*/true));
    FaultConfig fc;
    fc.seed = 123;
    fc.initial_stuck_fraction = 0.02;
    fc.torn_write_probability = 0.3;
    fc.read_disturb_probability = 0.1;
    fc.spare_cells_per_segment = 2;
    FaultInjector inj(fc);
    dev.AttachFaultInjector(&inj);
    schemes::Dcw dcw;
    for (int i = 0; i < 50; ++i) {
      dev.WriteSegment(i % kSegs, RandomBits(kBits, 1000 + i), dcw);
      dev.ReadSegment(i % kSegs);
    }
    return std::make_pair(dev.stats(), inj.stats());
  };
  auto [d1, i1] = run();
  auto [d2, i2] = run();
  EXPECT_EQ(d1.data_bits_flipped, d2.data_bits_flipped);
  EXPECT_EQ(d1.faults_injected, d2.faults_injected);
  EXPECT_EQ(d1.torn_writes, d2.torn_writes);
  EXPECT_EQ(d1.read_disturbs, d2.read_disturbs);
  EXPECT_EQ(d1.verify_retries, d2.verify_retries);
  EXPECT_EQ(d1.verify_failures, d2.verify_failures);
  EXPECT_EQ(i1.stuck_cells, i2.stuck_cells);
  EXPECT_EQ(i1.repaired_cells, i2.repaired_cells);
  EXPECT_EQ(i1.stuck_clamps, i2.stuck_clamps);
}

TEST(FaultInjectorTest, UnarmedWritePathSkipsSharedLock) {
  // An attached injector with nothing armed must not serialize writers:
  // MutateWrite/ClampStuck take the mutex-free fast path, so the
  // lock-audit counter (common/lock_audit.h) stays flat across writes.
  NvmDevice dev(SmallConfig(/*verify=*/true));
  FaultInjector inj{FaultConfig{}};
  dev.AttachFaultInjector(&inj);
  EXPECT_TRUE(inj.WriteUnarmed(/*allow_tear=*/true));

  schemes::Dcw dcw;
  const uint64_t before = debug::SharedLockAcquisitions();
  for (int i = 0; i < 20; ++i) {
    dev.WriteSegment(i % kSegs, RandomBits(kBits, 2000 + i), dcw);
  }
  EXPECT_EQ(debug::SharedLockAcquisitions(), before)
      << "unarmed injector took its mutex on the write path";
  EXPECT_EQ(inj.stats().stuck_clamps, 0u);
  EXPECT_EQ(inj.stats().torn_writes, 0u);

  // Arming re-engages the locked path: sticking one cell flips the
  // fast-path gate and subsequent writes clamp (and count) again.
  inj.StickCell(0, 3, /*value=*/true);
  EXPECT_FALSE(inj.WriteUnarmed(/*allow_tear=*/false));
  const uint64_t armed = debug::SharedLockAcquisitions();
  dev.WriteSegment(0, BitVector(kBits), dcw);
  EXPECT_GT(debug::SharedLockAcquisitions(), armed);

  // Repairing every stuck cell disarms the gate once more.
  if (inj.IsStuck(0, 3)) {
    EXPECT_TRUE(inj.RepairCells(0, {3}));
  }
  EXPECT_TRUE(inj.WriteUnarmed(/*allow_tear=*/true));
}

}  // namespace
}  // namespace e2nvm::nvm
