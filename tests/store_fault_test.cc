#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/store.h"
#include "nvm/fault_injector.h"

namespace e2nvm::core {
namespace {

StoreConfig FaultStoreConfig() {
  StoreConfig cfg;
  cfg.num_segments = 128;
  cfg.segment_bits = 256;
  cfg.model.k = 4;
  cfg.model.hidden_dim = 32;
  cfg.model.latent_dim = 6;
  cfg.model.pretrain_epochs = 4;
  cfg.model.finetune_rounds = 1;
  cfg.verify_writes = true;
  cfg.max_write_retries = 2;
  return cfg;
}

workload::BitDataset SeedData(uint64_t seed = 1) {
  workload::ProtoConfig cfg;
  cfg.dim = 256;
  cfg.num_classes = 4;
  cfg.samples = 200;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

/// Sticks 12 cells of `seg` at alternating values: no realistic value can
/// match all of them, so a write-verify there always needs more repairs
/// than the spare budget allows and the segment quarantines on first use.
void PoisonSegment(nvm::FaultInjector& inj, size_t seg) {
  for (size_t b = 0; b < 12; ++b) inj.StickCell(seg, b, b % 2 == 0);
}

struct RunCounters {
  nvm::DeviceStats dev;
  nvm::FaultStats fault;
  EngineStats engine;
  size_t quarantined;
};

/// A YCSB-style update-heavy run against a store with 1% of cells stuck
/// plus a few unrecoverable segments. Every operation must succeed.
RunCounters DegradedRun() {
  nvm::FaultConfig fc;
  fc.seed = 77;
  fc.initial_stuck_fraction = 0.01;
  fc.spare_cells_per_segment = 5;
  nvm::FaultInjector inj(fc);

  auto store = E2KvStore::Create(FaultStoreConfig()).value();
  store->device().AttachFaultInjector(&inj);
  for (size_t seg : {5u, 17u, 33u, 60u}) PoisonSegment(inj, seg);
  store->Seed(SeedData());
  EXPECT_TRUE(store->Bootstrap().ok());

  auto ds = SeedData(2);
  constexpr uint64_t kKeys = 50;
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(store->Put(k, ds.items[k]).ok()) << k;
  }
  Rng rng(123);
  std::vector<uint64_t> latest(kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) latest[k] = k;
  for (int op = 0; op < 400; ++op) {
    uint64_t key = rng.NextBounded(kKeys);
    uint64_t item = rng.NextBounded(ds.items.size());
    EXPECT_TRUE(store->Put(key, ds.items[item]).ok()) << "op " << op;
    latest[key] = item;
  }
  // Zero client-visible corruption: every key reads back exactly.
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto v = store->Get(k);
    EXPECT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, ds.items[latest[k]]) << k;
  }

  RunCounters out;
  out.dev = store->device().stats();
  out.fault = inj.stats();
  out.engine = store->engine().stats();
  out.quarantined = store->controller().quarantined_count();
  store->device().AttachFaultInjector(nullptr);
  return out;
}

TEST(StoreFaultTest, DegradedRunHasNoClientVisibleErrors) {
  RunCounters r = DegradedRun();
  // The degradation machinery visibly absorbed real faults ...
  EXPECT_GT(r.quarantined, 0u);
  EXPECT_GT(r.engine.quarantined_segments, 0u);
  EXPECT_GT(r.engine.fallback_placements, 0u);
  EXPECT_GT(r.engine.write_retries, 0u);
  EXPECT_GT(r.dev.verify_retries, 0u);
  EXPECT_GT(r.dev.repaired_cells, 0u);
  EXPECT_GT(r.fault.stuck_clamps, 0u);
  // ... while the pool never ran dry (errors would have tripped above).
  EXPECT_GT(r.engine.placements, 400u);
}

TEST(StoreFaultTest, DegradedRunReplaysDeterministically) {
  RunCounters a = DegradedRun();
  RunCounters b = DegradedRun();
  EXPECT_EQ(a.dev.data_bits_flipped, b.dev.data_bits_flipped);
  EXPECT_EQ(a.dev.faults_injected, b.dev.faults_injected);
  EXPECT_EQ(a.dev.verify_retries, b.dev.verify_retries);
  EXPECT_EQ(a.dev.verify_failures, b.dev.verify_failures);
  EXPECT_EQ(a.dev.repaired_cells, b.dev.repaired_cells);
  EXPECT_EQ(a.fault.stuck_cells, b.fault.stuck_cells);
  EXPECT_EQ(a.fault.stuck_clamps, b.fault.stuck_clamps);
  EXPECT_EQ(a.fault.repairs_denied, b.fault.repairs_denied);
  EXPECT_EQ(a.engine.quarantined_segments, b.engine.quarantined_segments);
  EXPECT_EQ(a.engine.fallback_placements, b.engine.fallback_placements);
  EXPECT_EQ(a.quarantined, b.quarantined);
}

TEST(StoreFaultTest, PoolExhaustionRecyclesOnDelete) {
  StoreConfig cfg = FaultStoreConfig();
  cfg.num_segments = 16;
  cfg.verify_writes = false;
  auto store = E2KvStore::Create(cfg).value();
  store->Seed(SeedData(3));
  ASSERT_TRUE(store->Bootstrap().ok());

  auto ds = SeedData(4);
  // Distinct keys each consume one segment; 16 fit, the 17th must not.
  for (uint64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(store->Put(k, ds.items[k]).ok()) << k;
  }
  EXPECT_EQ(store->engine().pool().TotalFree(), 0u);
  Status full = store->Put(16, ds.items[16]);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);

  // Deleting recycles exactly one address, which the next Put reuses.
  uint64_t freed = store->tree().Get(7).value();
  ASSERT_TRUE(store->Delete(7).ok());
  EXPECT_EQ(store->engine().pool().TotalFree(), 1u);
  ASSERT_TRUE(store->Put(16, ds.items[16]).ok());
  EXPECT_EQ(store->tree().Get(16).value(), freed);
  EXPECT_EQ(store->Get(16).value(), ds.items[16]);
}

TEST(StoreFaultTest, FailedRetrainBacksOff) {
  StoreConfig cfg = FaultStoreConfig();
  cfg.num_segments = 8;
  cfg.verify_writes = false;
  cfg.auto_retrain = true;
  cfg.retrain.min_free_per_cluster = 100000;  // Always wants a retrain.
  cfg.retrain_backoff_writes = 8;
  auto store = E2KvStore::Create(cfg).value();
  store->Seed(SeedData(5));
  ASSERT_TRUE(store->Bootstrap().ok());

  auto ds = SeedData(6);
  // Occupy segments until fewer than k=4 are free: from here on every
  // retrain attempt fails (too few free segments to train on).
  for (uint64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(store->Put(k, ds.items[k]).ok()) << k;
  }
  ASSERT_LT(store->engine().pool().TotalFree(), 4u);
  uint64_t failures_at_start = store->engine().stats().failed_retrains;

  constexpr int kUpdates = 100;
  for (int op = 0; op < kUpdates; ++op) {
    ASSERT_TRUE(
        store->Put(op % 6, ds.items[(op + 7) % ds.items.size()]).ok());
  }
  uint64_t failures =
      store->engine().stats().failed_retrains - failures_at_start;
  // Without the backoff this would fail on every one of the 100 updates;
  // with doubling starting at 8 it fails only a handful of times.
  EXPECT_GE(failures, 1u);
  EXPECT_LE(failures, 6u);
  EXPECT_GT(store->engine().retrain_cooldown(), 0u);
}

}  // namespace
}  // namespace e2nvm::core
