// End-to-end tests across module boundaries: the full store under a YCSB
// mix with wear leveling, auto-retraining under distribution drift,
// padding-enabled variable-size values, E2-vs-arbitrary end-to-end flip
// comparison, and a pmem-pool-backed write-ahead log replayed into the
// store after a simulated crash.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "core/store.h"
#include "index/value_placer.h"
#include "pmem/allocator.h"
#include "pmem/pool.h"
#include "pmem/tx.h"
#include "workload/datasets.h"
#include "workload/ycsb.h"

namespace e2nvm {
namespace {

core::StoreConfig BaseConfig() {
  core::StoreConfig cfg;
  cfg.num_segments = 128;
  cfg.segment_bits = 512;
  cfg.model.k = 4;
  cfg.model.hidden_dim = 32;
  cfg.model.latent_dim = 6;
  cfg.model.pretrain_epochs = 4;
  cfg.model.finetune_rounds = 1;
  return cfg;
}

workload::BitDataset Seeds(uint64_t seed = 1) {
  workload::ProtoConfig pc;
  pc.dim = 512;
  pc.num_classes = 4;
  pc.samples = 300;
  pc.noise = 0.03;
  pc.seed = seed;
  return workload::MakeProtoDataset(pc);
}

TEST(IntegrationTest, YcsbMixOverFullStoreWithWearLeveling) {
  core::StoreConfig cfg = BaseConfig();
  cfg.psi = 8;
  auto store = core::E2KvStore::Create(cfg);
  ASSERT_TRUE(store.ok());
  (*store)->Seed(Seeds());
  ASSERT_TRUE((*store)->Bootstrap().ok());

  workload::YcsbGenerator::Config yc;
  yc.workload = workload::YcsbWorkload::kA;
  yc.record_count = 40;
  yc.value_bits = 512;
  yc.num_value_classes = 4;
  workload::YcsbGenerator gen(yc);
  std::map<uint64_t, uint32_t> versions;
  for (uint64_t k = 0; k < yc.record_count; ++k) {
    ASSERT_TRUE((*store)->Put(k, gen.MakeValue(k, 0)).ok());
    versions[k] = 0;
  }
  for (int op = 0; op < 500; ++op) {
    workload::YcsbOp o = gen.Next();
    if (o.type == workload::OpType::kRead) {
      auto v = (*store)->Get(o.key);
      ASSERT_TRUE(v.ok()) << o.key;
      EXPECT_EQ(*v, gen.MakeValue(o.key, versions[o.key]));
    } else {
      uint32_t nv = ++versions[o.key];
      ASSERT_TRUE((*store)->Put(o.key, gen.MakeValue(o.key, nv)).ok());
    }
  }
  // Wear leveling rotated segments underneath without corrupting data.
  ASSERT_NE((*store)->controller().leveler(), nullptr);
  EXPECT_GT((*store)->controller().leveler()->moves(), 10u);
  for (auto& [k, v] : versions) {
    EXPECT_EQ((*store)->Get(k).value(), gen.MakeValue(k, v)) << k;
  }
}

TEST(IntegrationTest, AutoRetrainFiresUnderDrift) {
  core::StoreConfig cfg = BaseConfig();
  cfg.auto_retrain = true;
  cfg.retrain.min_free_per_cluster = 0;
  cfg.retrain.window = 40;
  cfg.retrain.baseline_writes = 40;
  cfg.retrain.degradation_factor = 1.4;
  auto store = core::E2KvStore::Create(cfg);
  ASSERT_TRUE(store.ok());
  (*store)->Seed(Seeds(1));
  ASSERT_TRUE((*store)->Bootstrap().ok());

  // Familiar content first, then a different distribution: the
  // efficiency trigger must fire a retrain.
  auto familiar = Seeds(1);
  auto shifted = Seeds(999);  // Different prototypes.
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(
        (*store)->Put(i, familiar.items[i % familiar.items.size()]).ok());
  }
  // Updates over a bounded key range keep the pool healthy (each update
  // recycles the old address), so only the efficiency trigger can fire.
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(
        (*store)
            ->Put(1000 + (i % 30),
                  shifted.items[i % shifted.items.size()])
            .ok())
        << i;
  }
  EXPECT_GE((*store)->engine().stats().retrains, 1u);
}

TEST(IntegrationTest, PaddedVariableSizeValuesEndToEnd) {
  core::StoreConfig cfg = BaseConfig();
  auto store = core::E2KvStore::Create(cfg);
  ASSERT_TRUE(store.ok());
  (*store)->Seed(Seeds(2));
  ASSERT_TRUE((*store)->Bootstrap().ok());

  core::Padder padder(core::PadType::kDatasetBased,
                      core::PadLocation::kEnd, 512);
  (*store)->engine().SetPadder(&padder, nullptr);

  Rng rng(3);
  for (uint64_t k = 0; k < 30; ++k) {
    size_t bits = 64 + rng.NextBounded(448);
    BitVector v(bits);
    v.Randomize(rng);
    ASSERT_TRUE((*store)->Put(k, v).ok()) << k;
    auto got = (*store)->Get(k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v) << "width " << bits;
  }
}

TEST(IntegrationTest, StoreBeatsArbitraryPlacementEndToEnd) {
  auto ds = Seeds(4);
  // E2 store.
  auto store = core::E2KvStore::Create(BaseConfig());
  ASSERT_TRUE(store.ok());
  (*store)->Seed(ds);
  ASSERT_TRUE((*store)->Bootstrap().ok());
  (*store)->device().ResetStats();
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*store)->Put(k, ds.items[100 + k]).ok());
  }
  double e2_flips = (*store)->device().stats().FlipsPerWrite();

  // Arbitrary placement over an identical device.
  nvm::DeviceConfig dc;
  dc.num_segments = 128;
  dc.segment_bits = 512;
  nvm::NvmDevice device(dc);
  schemes::Dcw dcw;
  nvm::MemoryController ctrl(&device, &dcw, 128, 0);
  auto sized = workload::ResizeItems(ds, 512);
  for (size_t i = 0; i < 128; ++i) {
    ctrl.Seed(i, sized.items[i % sized.items.size()]);
  }
  index::ArbitraryPlacer arb(&ctrl, 0, 128);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(arb.Place(ds.items[100 + k]).ok());
  }
  double arb_flips = device.stats().FlipsPerWrite();
  EXPECT_LT(e2_flips, 0.5 * arb_flips)
      << "E2=" << e2_flips << " arbitrary=" << arb_flips;
}

TEST(IntegrationTest, PmemWalSurvivesCrashAndReplaysIntoStore) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "e2nvm_wal_integration").string();
  fs::remove(path);

  // A tiny WAL format in a pmem pool: [count | (key, 64-byte value)...].
  struct WalRecord {
    uint64_t key;
    uint8_t value[64];
  };
  constexpr int kRecords = 20;
  pmem::PoolOffset data_off = 0;
  {
    auto pool = pmem::Pool::Create(path, "wal", 4 << 20);
    ASSERT_TRUE(pool.ok());
    pmem::Allocator alloc(pool->get());
    data_off =
        alloc.Alloc(8 + sizeof(WalRecord) * kRecords).value();
    (*pool)->set_root(data_off);
    auto* count = (*pool)->As<uint64_t>(data_off);
    *count = 0;
    (*pool)->Persist(data_off, 8);
    Rng rng(9);
    for (int i = 0; i < kRecords; ++i) {
      // Each append is transactional: count bump + record are atomic.
      pmem::Transaction tx(pool->get());
      ASSERT_TRUE(tx.Begin().ok());
      ASSERT_TRUE(tx.AddRange(data_off, 8).ok());
      auto* rec = (*pool)->As<WalRecord>(data_off + 8 +
                                         sizeof(WalRecord) * *count);
      rec->key = static_cast<uint64_t>(i);
      for (auto& b : rec->value) {
        b = static_cast<uint8_t>(rng.NextBounded(256));
      }
      (*pool)->Persist((*pool)->OffsetOf(rec), sizeof(WalRecord));
      *count += 1;
      (*pool)->Persist(data_off, 8);
      tx.Commit();
    }
    // Crash in the middle of record kRecords+1: tx active, then the
    // process "dies" (we copy the file image with the tx still open).
    pmem::Transaction tx(pool->get());
    ASSERT_TRUE(tx.Begin().ok());
    ASSERT_TRUE(tx.AddRange(data_off, 8).ok());
    *(*pool)->As<uint64_t>(data_off) = 9999;  // Torn update.
    (*pool)->Persist(data_off, 8);
    fs::copy_file(path, path + ".crash",
                  fs::copy_options::overwrite_existing);
    tx.Abort();
    (*pool)->Close();
  }

  // Recover the crash image and replay into a fresh store.
  auto pool = pmem::Pool::Open(path + ".crash", "wal");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_TRUE((*pool)->recovered());
  data_off = (*pool)->root();
  uint64_t count = *(*pool)->As<const uint64_t>(data_off);
  ASSERT_EQ(count, static_cast<uint64_t>(kRecords));  // Rolled back.

  auto store = core::E2KvStore::Create(BaseConfig());
  ASSERT_TRUE(store.ok());
  (*store)->Seed(Seeds(5));
  ASSERT_TRUE((*store)->Bootstrap().ok());
  for (uint64_t i = 0; i < count; ++i) {
    const auto* rec = (*pool)->As<const WalRecord>(
        data_off + 8 + sizeof(WalRecord) * i);
    BitVector v = BitVector::FromBytes(rec->value, sizeof(rec->value));
    ASSERT_TRUE((*store)->Put(rec->key, v).ok());
  }
  EXPECT_EQ((*store)->size(), static_cast<size_t>(kRecords));
  fs::remove(path);
  fs::remove(path + ".crash");
}

}  // namespace
}  // namespace e2nvm
