#include "ml/lstm.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace e2nvm::ml {
namespace {

TEST(LstmTest, ShapesAndDeterminism) {
  LstmConfig c;
  c.input_size = 4;
  c.timesteps = 3;
  c.hidden_size = 6;
  c.output_size = 2;
  Lstm a(c), b(c);
  Rng rng(1);
  Matrix x(5, 12);
  for (auto& v : x.data()) v = rng.NextFloat();
  Matrix ya = a.Predict(x);
  Matrix yb = b.Predict(x);
  EXPECT_EQ(ya.rows(), 5u);
  EXPECT_EQ(ya.cols(), 2u);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  EXPECT_GT(a.ParamCount(), 0u);
  EXPECT_GT(a.PredictFlops(), 0.0);
}

TEST(LstmTest, LearnsConstantMapping) {
  LstmConfig c;
  c.input_size = 2;
  c.timesteps = 2;
  c.hidden_size = 8;
  c.output_size = 1;
  Lstm lstm(c);
  Rng rng(2);
  Matrix x(64, 4);
  Matrix y(64, 1);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t j = 0; j < 4; ++j) x(i, j) = rng.NextFloat();
    y(i, 0) = 0.75f;
  }
  auto curve = lstm.Train(x, y, 150, 16);
  EXPECT_LT(curve.back(), curve.front() * 0.2);
  auto pred = lstm.PredictOne({0.1f, 0.2f, 0.3f, 0.4f});
  EXPECT_NEAR(pred[0], 0.75f, 0.2f);
}

TEST(LstmTest, LearnsLastBitEcho) {
  // Predict the last input bit — requires memory across the window.
  LstmConfig c;
  c.input_size = 1;
  c.timesteps = 4;
  c.hidden_size = 10;
  c.output_size = 1;
  Lstm lstm(c);
  Rng rng(3);
  Matrix x(256, 4);
  Matrix y(256, 1);
  for (size_t i = 0; i < 256; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      x(i, j) = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
    }
    y(i, 0) = x(i, 3);
  }
  auto curve = lstm.Train(x, y, 80, 32);
  EXPECT_LT(curve.back(), 0.05);
  EXPECT_GT(lstm.PredictOne({0, 0, 0, 1})[0], 0.6f);
  EXPECT_LT(lstm.PredictOne({1, 1, 1, 0})[0], 0.4f);
}

TEST(LstmTest, PaperToyExample) {
  // §4.1.3: the LSTM takes 7 bits and predicts the 8th so that the items
  // of Table 1 land in their correct clusters. Training pairs are the
  // Table 1 contents: first 7 bits -> 8th bit.
  const char* contents[12] = {
      "00111101", "00101100", "00111100", "00111000",  // Cluster 0.
      "10001011", "00001011", "00001111", "00001010",  // Cluster 1.
      "10110000", "01110010", "11110000", "11010000",  // Cluster 2.
  };
  LstmConfig c;
  c.input_size = 7;
  c.timesteps = 1;
  c.hidden_size = 10;  // The paper's LSTM(10).
  c.output_size = 1;
  Lstm lstm(c);
  Matrix x(12, 7), y(12, 1);
  for (size_t i = 0; i < 12; ++i) {
    for (size_t j = 0; j < 7; ++j) {
      x(i, j) = contents[i][j] == '1' ? 1.0f : 0.0f;
    }
    y(i, 0) = contents[i][7] == '1' ? 1.0f : 0.0f;
  }
  auto curve = lstm.Train(x, y, 200, 12);
  EXPECT_LT(curve.back(), curve.front());
  // The paper's qualitative check: the six held-in examples it lists
  // round to the correct final bit.
  struct Case {
    const char* prefix;
    float expected;
  } cases[] = {
      {"1011000", 0.0f}, {"0111001", 0.0f}, {"1111000", 0.0f},
      {"1000101", 1.0f}, {"0000101", 1.0f}, {"0000111", 1.0f},
  };
  int correct = 0;
  for (const auto& cs : cases) {
    std::vector<float> in(7);
    for (int j = 0; j < 7; ++j) in[j] = cs.prefix[j] == '1' ? 1.0f : 0.0f;
    float out = lstm.PredictOne(in)[0];
    if ((out >= 0.5f) == (cs.expected >= 0.5f)) ++correct;
  }
  EXPECT_GE(correct, 5) << "paper toy: at least 5/6 bits predicted";
}

TEST(LstmTest, BatchTrainingReducesMse) {
  LstmConfig c;
  c.input_size = 8;
  c.timesteps = 8;
  c.hidden_size = 10;
  c.output_size = 8;
  Lstm lstm(c);
  Rng rng(5);
  // Periodic bit pattern: window of 64 bits -> next 8 bits (period 16).
  Matrix x(128, 64), y(128, 8);
  for (size_t i = 0; i < 128; ++i) {
    size_t phase = i % 16;
    for (size_t j = 0; j < 64; ++j) {
      x(i, j) = ((phase + j) % 16) < 8 ? 1.0f : 0.0f;
    }
    for (size_t j = 0; j < 8; ++j) {
      y(i, j) = ((phase + 64 + j) % 16) < 8 ? 1.0f : 0.0f;
    }
  }
  auto curve = lstm.Train(x, y, 30, 32);
  EXPECT_LT(curve.back(), curve.front() * 0.5);
}

}  // namespace
}  // namespace e2nvm::ml
