// Wire-codec coverage for net/protocol: round-trips of every op type,
// pipelined multi-frame decoding, and a malformed-frame suite (truncated
// length prefix, truncated/torn frames, oversized frames, corrupted
// CRCs, structurally invalid bodies) asserting each is rejected with the
// documented outcome — kNeedMore (wait), kBadFrame (skip one frame,
// stream stays aligned) or kFatal (close). Runs under ASan/UBSan via
// the sanitizer stages of scripts/check.sh.

#include "net/protocol.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/byte_ring.h"
#include "common/kernels.h"
#include "common/rng.h"

namespace e2nvm::net {
namespace {

BitVector RandomBits(size_t n, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) v.Set(i, rng.NextBernoulli(0.5));
  return v;
}

Decoded Decode(const ByteRing& ring, Request* req, size_t* frame_bytes,
               size_t max_frame = kDefaultMaxFrameBytes) {
  return DecodeRequest(ring.data(), ring.size(), max_frame, req, frame_bytes);
}

/// Hand-builds a frame with a VALID CRC around an arbitrary body, so the
/// structural validation (not the checksum) is what rejects it.
std::vector<uint8_t> RawFrame(uint8_t op, uint32_t seq,
                              const std::vector<uint8_t>& body) {
  const size_t payload_len = kHeaderBytes + body.size();
  std::vector<uint8_t> frame(kLenBytes + payload_len + kCrcBytes);
  const uint32_t len = static_cast<uint32_t>(payload_len + kCrcBytes);
  std::memcpy(frame.data(), &len, 4);
  uint8_t* payload = frame.data() + kLenBytes;
  payload[0] = op;
  payload[1] = 0;
  payload[2] = payload[3] = 0;
  std::memcpy(payload + 4, &seq, 4);
  if (!body.empty()) {
    std::memcpy(payload + kHeaderBytes, body.data(), body.size());
  }
  const uint32_t crc = Crc32c(payload, payload_len);
  std::memcpy(payload + payload_len, &crc, 4);
  return frame;
}

TEST(NetCodecTest, PutRequestRoundTrip) {
  // 70 bits: a non-word-multiple size, so the tail-masking path of
  // AssignFromWords is exercised too.
  const BitVector value = RandomBits(70, 1);
  ByteRing ring;
  EncodePutRequest(&ring, /*seq=*/7, /*key=*/42, value);

  Request req;
  size_t frame_bytes = 0;
  ASSERT_EQ(Decode(ring, &req, &frame_bytes), Decoded::kFrame);
  EXPECT_EQ(frame_bytes, ring.size());
  EXPECT_EQ(req.op, Op::kPut);
  EXPECT_EQ(req.seq, 7u);
  EXPECT_EQ(req.key, 42u);
  ASSERT_EQ(req.value.bits, 70u);
  BitVector decoded;
  decoded.AssignFromWords(req.value.words, req.value.bits);
  EXPECT_TRUE(decoded == value);
}

TEST(NetCodecTest, KeyAndStatsRequestsRoundTrip) {
  ByteRing ring;
  EncodeKeyRequest(&ring, Op::kGet, 1, 0xDEADBEEFull);
  EncodeKeyRequest(&ring, Op::kDelete, 2, 5);
  EncodeStatsRequest(&ring, 3);

  Request req;
  size_t fb = 0;
  ASSERT_EQ(Decode(ring, &req, &fb), Decoded::kFrame);
  EXPECT_EQ(req.op, Op::kGet);
  EXPECT_EQ(req.key, 0xDEADBEEFull);
  ring.Consume(fb);
  ASSERT_EQ(Decode(ring, &req, &fb), Decoded::kFrame);
  EXPECT_EQ(req.op, Op::kDelete);
  EXPECT_EQ(req.key, 5u);
  ring.Consume(fb);
  ASSERT_EQ(Decode(ring, &req, &fb), Decoded::kFrame);
  EXPECT_EQ(req.op, Op::kStats);
  EXPECT_EQ(req.seq, 3u);
  ring.Consume(fb);
  EXPECT_TRUE(ring.empty());
}

TEST(NetCodecTest, MultiPutRoundTrip) {
  std::vector<std::pair<uint64_t, BitVector>> kvs;
  for (uint64_t i = 0; i < 5; ++i) {
    kvs.emplace_back(100 + i, RandomBits(64 + i * 3, 10 + i));
  }
  ByteRing ring;
  EncodeMultiPutRequest(&ring, 9, kvs.data(), kvs.size());

  Request req;
  size_t fb = 0;
  ASSERT_EQ(Decode(ring, &req, &fb), Decoded::kFrame);
  EXPECT_EQ(req.op, Op::kMultiPut);
  ASSERT_EQ(req.entry_count, 5u);

  const uint8_t* cursor = req.entries;
  uint64_t key = 0;
  WireValue value;
  for (size_t i = 0; i < kvs.size(); ++i) {
    ASSERT_TRUE(NextEntry(&cursor, req.entries_end, &key, &value));
    EXPECT_EQ(key, kvs[i].first);
    BitVector decoded;
    decoded.AssignFromWords(value.words, value.bits);
    EXPECT_TRUE(decoded == kvs[i].second) << "entry " << i;
  }
  EXPECT_FALSE(NextEntry(&cursor, req.entries_end, &key, &value));
}

TEST(NetCodecTest, ResponsesRoundTrip) {
  ByteRing ring;
  EncodeResponse(&ring, Op::kPut, WireStatus::kOk, 1);
  EncodeResponse(&ring, Op::kGet, WireStatus::kNotFound, 2);
  const BitVector value = RandomBits(130, 3);
  EncodeGetResponse(&ring, 3, value);
  WireStats stats;
  stats.keys = 17;
  stats.batched_puts = 1234;
  stats.audit_shared_locks = 1;
  EncodeStatsResponse(&ring, 4, stats);

  Response r;
  size_t fb = 0;
  auto next = [&] {
    Decoded d = DecodeResponse(ring.data(), ring.size(),
                               kDefaultMaxFrameBytes, &r, &fb);
    ring.Consume(fb);
    return d;
  };
  ASSERT_EQ(next(), Decoded::kFrame);
  EXPECT_EQ(r.op, Op::kPut);
  EXPECT_EQ(r.status, WireStatus::kOk);
  ASSERT_EQ(next(), Decoded::kFrame);
  EXPECT_EQ(r.op, Op::kGet);
  EXPECT_EQ(r.status, WireStatus::kNotFound);
  ASSERT_EQ(next(), Decoded::kFrame);
  EXPECT_EQ(r.seq, 3u);
  BitVector decoded;
  decoded.AssignFromWords(r.value.words, r.value.bits);
  EXPECT_TRUE(decoded == value);
  ASSERT_EQ(next(), Decoded::kFrame);
  EXPECT_EQ(r.stats.keys, 17u);
  EXPECT_EQ(r.stats.batched_puts, 1234u);
  EXPECT_EQ(r.stats.audit_shared_locks, 1u);
  EXPECT_TRUE(ring.empty());
}

TEST(NetCodecTest, TruncatedPrefixAndTornFrameNeedMore) {
  ByteRing full;
  EncodePutRequest(&full, 1, 7, RandomBits(128, 4));
  EncodePutRequest(&full, 2, 8, RandomBits(128, 5));

  // Feed the two-frame pipeline byte by byte through every torn
  // boundary: a truncated length prefix and a torn frame body must both
  // report kNeedMore (consume nothing), and at each prefix length the
  // decoder must deliver exactly the complete frames.
  ByteRing partial;
  Request req;
  size_t fb = 0;
  size_t frame1 = 0;
  {
    ASSERT_EQ(Decode(full, &req, &frame1), Decoded::kFrame);
  }
  for (size_t n = 0; n <= full.size(); ++n) {
    partial.Clear();
    partial.Append(full.data(), n);
    Decoded d = Decode(partial, &req, &fb);
    if (n < frame1) {
      EXPECT_EQ(d, Decoded::kNeedMore) << "prefix " << n;
    } else {
      ASSERT_EQ(d, Decoded::kFrame) << "prefix " << n;
      EXPECT_EQ(req.seq, 1u);
      partial.Consume(fb);
      Decoded d2 = Decode(partial, &req, &fb);
      if (n < full.size()) {
        EXPECT_EQ(d2, Decoded::kNeedMore) << "prefix " << n;
      } else {
        ASSERT_EQ(d2, Decoded::kFrame);
        EXPECT_EQ(req.seq, 2u);
      }
    }
  }
}

TEST(NetCodecTest, OversizedFrameIsFatal) {
  ByteRing ring;
  const uint32_t huge = 5u << 20;  // Exceeds kDefaultMaxFrameBytes.
  ring.Append(&huge, sizeof(huge));
  Request req;
  size_t fb = 0;
  EXPECT_EQ(Decode(ring, &req, &fb), Decoded::kFatal);
}

TEST(NetCodecTest, UndersizedLengthIsFatal) {
  ByteRing ring;
  const uint32_t tiny = 3;  // Cannot even hold header + CRC.
  ring.Append(&tiny, sizeof(tiny));
  Request req;
  size_t fb = 0;
  EXPECT_EQ(Decode(ring, &req, &fb), Decoded::kFatal);
}

TEST(NetCodecTest, CorruptedCrcSkipsOneFrameAndRealigns) {
  ByteRing ring;
  EncodePutRequest(&ring, 1, 7, RandomBits(128, 6));
  const size_t frame1 = ring.size();
  EncodePutRequest(&ring, 2, 8, RandomBits(128, 7));

  // Flip one payload byte of frame 1: CRC now fails, but the length
  // field is intact so the stream realigns on frame 2.
  *ring.at(kLenBytes + kHeaderBytes + 3) ^= 0x40;

  Request req;
  size_t fb = 0;
  ASSERT_EQ(Decode(ring, &req, &fb), Decoded::kBadFrame);
  EXPECT_EQ(fb, frame1);
  EXPECT_EQ(req.seq, 1u);  // Header echo for the error response.
  ring.Consume(fb);
  ASSERT_EQ(Decode(ring, &req, &fb), Decoded::kFrame);
  EXPECT_EQ(req.seq, 2u);
  EXPECT_EQ(req.key, 8u);
}

TEST(NetCodecTest, StructurallyInvalidBodiesAreBadFrames) {
  Request req;
  size_t fb = 0;
  auto expect_bad = [&](const std::vector<uint8_t>& frame) {
    ByteRing ring;
    ring.Append(frame.data(), frame.size());
    EXPECT_EQ(Decode(ring, &req, &fb), Decoded::kBadFrame);
    EXPECT_EQ(fb, frame.size());  // Boundary known: stream survives.
  };

  // GET body must be exactly 8 bytes.
  expect_bad(RawFrame(static_cast<uint8_t>(Op::kGet), 1,
                      std::vector<uint8_t>(7, 0)));
  // STATS body must be empty.
  expect_bad(RawFrame(static_cast<uint8_t>(Op::kStats), 2,
                      std::vector<uint8_t>(4, 0)));
  // PUT body shorter than its fixed fields.
  expect_bad(RawFrame(static_cast<uint8_t>(Op::kPut), 3,
                      std::vector<uint8_t>(11, 0)));
  // PUT whose declared value_bits disagrees with the body size.
  {
    std::vector<uint8_t> body(12 + 8, 0);
    const uint32_t bits = 1000;  // Needs 16 value bytes, only 8 present.
    std::memcpy(body.data() + 8, &bits, 4);
    expect_bad(RawFrame(static_cast<uint8_t>(Op::kPut), 4, body));
  }
  // MULTI_PUT declaring more entries than the body holds.
  {
    std::vector<uint8_t> body(4 + 12 + 8, 0);
    uint32_t count = 3;
    std::memcpy(body.data(), &count, 4);
    const uint32_t bits = 64;
    std::memcpy(body.data() + 4 + 8, &bits, 4);
    expect_bad(RawFrame(static_cast<uint8_t>(Op::kMultiPut), 5, body));
  }
  // MULTI_PUT with trailing garbage after the declared entries.
  {
    std::vector<uint8_t> body(4 + 12 + 8 + 5, 0);
    uint32_t count = 1;
    std::memcpy(body.data(), &count, 4);
    const uint32_t bits = 64;
    std::memcpy(body.data() + 4 + 8, &bits, 4);
    expect_bad(RawFrame(static_cast<uint8_t>(Op::kMultiPut), 6, body));
  }
  // Unknown op byte.
  expect_bad(RawFrame(/*op=*/99, 7, {}));
}

TEST(NetCodecTest, EmptyValuePutRoundTrips) {
  ByteRing ring;
  EncodePutRequest(&ring, 1, 3, BitVector(0));
  Request req;
  size_t fb = 0;
  ASSERT_EQ(Decode(ring, &req, &fb), Decoded::kFrame);
  EXPECT_EQ(req.value.bits, 0u);
}

}  // namespace
}  // namespace e2nvm::net
