// Randomized crash/fault recovery fuzzer for the sharded store.
//
// Each ROUND arms a CrashPoint on every shard journal's pool at a
// randomized persist ordinal (while the store is quiescent), then lets
// several client threads hammer disjoint key stripes with mixed
// PUT/GET/DELETE while the fault injector tears device writes and clamps
// stuck cells. After join, every fired crash image is reopened through
// checksum-verified replay and the recovered records must form an exact
// per-thread prefix of the operations the clients actually issued —
// the linearized-history prefix property from DESIGN.md §12. Rounds
// where the armed ordinal lands past the round's last persist validate
// the live journal snapshot instead, so every (shard, round) pair is a
// scenario either way.
//
// Thread-safety of the harness itself: CrashPoints are armed and read
// only while the store is quiescent (before spawn / after join), so the
// only accesses during a round are from Pool::Persist under the owning
// shard's mutex. The per-(shard, thread) issued-op logs are written by
// exactly one thread each and read after join.
//
// Scenario budget: E2NVM_FUZZ_ITERS (default 500). The driver stage in
// scripts/check.sh runs the default budget; raise it for soak runs.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/shard_journal.h"
#include "core/sharded_store.h"
#include "nvm/fault_injector.h"
#include "pmem/persist.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

constexpr size_t kShards = 2;
constexpr size_t kSegmentsPerShard = 64;
constexpr size_t kBits = 128;
constexpr size_t kThreads = 4;
constexpr size_t kKeysPerThread = 12;
constexpr size_t kOpsPerThread = 12;    // Per round.
constexpr size_t kRoundsPerStore = 16;  // Journal capacity covers these.
// Worst case appends per shard per store lifetime: every op journals one
// record and every record lands on one shard. Sized so the journal never
// checkpoints mid-fuzz, which would break the issued-log prefix oracle.
constexpr size_t kJournalCapacity =
    kThreads * kOpsPerThread * kRoundsPerStore + 8;

size_t ScenarioBudget() {
  const char* env = std::getenv("E2NVM_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 500;
}

/// One issued logical operation, recorded by the client thread that
/// issued it, in issue order. Values are recorded verbatim so the
/// journal record must match bit-for-bit.
struct IssuedOp {
  ShardJournal::Op op;
  uint64_t key;
  BitVector value;  // Empty for deletes.
};

BitVector ValueFor(uint64_t key, uint64_t seq) {
  BitVector v(kBits);
  uint64_t x = key * 0x9E3779B97F4A7C15ull + seq * 0xBF58476D1CE4E5B9ull;
  for (size_t i = 0; i < kBits; ++i) {
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    v.Set(i, x & 1);
  }
  return v;
}

std::unique_ptr<ShardedStore> MakeFuzzStore(uint64_t seed) {
  workload::ProtoConfig pc;
  pc.dim = kBits;
  pc.num_classes = 4;
  pc.samples = kSegmentsPerShard + 16;
  pc.noise = 0.03;
  pc.seed = seed;
  auto ds = workload::MakeProtoDataset(pc);

  ShardedStoreConfig cfg;
  cfg.num_shards = kShards;
  cfg.shard.num_segments = kSegmentsPerShard;
  cfg.shard.segment_bits = kBits;
  cfg.shard.model.k = 4;
  cfg.shard.model.pretrain_epochs = 2;
  cfg.shard.model.finetune_rounds = 1;
  cfg.shard.verify_writes = true;
  cfg.journal = true;
  cfg.journal_capacity = kJournalCapacity;
  auto store_or = ShardedStore::Create(cfg);
  EXPECT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  EXPECT_TRUE(store->Bootstrap().ok());
  return store;
}

/// Validates one replay result against the accumulated issued-op logs:
/// the records must be an interleaving whose per-thread restriction is
/// an exact prefix of that thread's issued log for this shard. Returns
/// the number of divergences (0 on success) and reports them via gtest.
size_t CheckPrefixProperty(
    size_t s, const ShardJournal::ReplayResult& replay,
    const std::vector<std::vector<IssuedOp>>& issued_for_shard,
    const std::string& what) {
  size_t divergences = 0;
  std::vector<size_t> next(kThreads, 0);
  for (size_t i = 0; i < replay.records.size(); ++i) {
    const auto& rec = replay.records[i];
    const size_t t = rec.key % kThreads;  // Stripe owner.
    const auto& log = issued_for_shard[t];
    if (next[t] >= log.size()) {
      ADD_FAILURE() << what << " shard " << s << " record " << i
                    << ": thread " << t << " replayed more records ("
                    << next[t] + 1 << ") than it issued (" << log.size()
                    << ")";
      ++divergences;
      continue;
    }
    const IssuedOp& want = log[next[t]++];
    if (rec.op != want.op || rec.key != want.key ||
        (want.op == ShardJournal::Op::kPut && !(rec.value == want.value))) {
      ADD_FAILURE() << what << " shard " << s << " record " << i
                    << ": thread " << t << " divergence at its op "
                    << next[t] - 1 << " (key " << rec.key << " vs "
                    << want.key << ")";
      ++divergences;
    }
  }
  return divergences;
}

TEST(RecoveryFuzz, CrashAndFaultScenariosRecoverToIssuedPrefix) {
  const size_t budget = ScenarioBudget();
  Rng meta(0xFADEDBEEFull);

  size_t scenarios = 0;
  size_t fired_scenarios = 0;
  size_t divergences = 0;
  size_t store_epoch = 0;

  while (scenarios < budget) {
    // Fresh store + injector per epoch; the journal capacity covers a
    // full epoch of appends so replay always sees the raw history.
    nvm::FaultConfig fc;
    fc.seed = 0xF417ull + store_epoch;
    fc.initial_stuck_fraction = 0.005;
    fc.torn_write_probability = 0.03;
    fc.spare_cells_per_segment = 6;
    nvm::FaultInjector injector(fc);
    auto store = MakeFuzzStore(100 + store_epoch);
    store->device().AttachFaultInjector(&injector);
    ++store_epoch;

    // Issued-op logs, per (shard, thread), accumulated across rounds.
    std::vector<std::vector<std::vector<IssuedOp>>> issued(
        kShards, std::vector<std::vector<IssuedOp>>(kThreads));
    // Per-thread shadow of the live key set (stripes are disjoint, so
    // each thread's view is exact) and a per-key sequence counter.
    std::vector<std::map<uint64_t, BitVector>> oracle(kThreads);
    uint64_t seq = 0;

    std::vector<pmem::CrashPoint> cps(kShards);
    for (size_t s = 0; s < kShards; ++s) {
      store->journal(s)->pool().SetCrashPoint(&cps[s]);
    }
    // Persists per round are workload-dependent; calibrate the arming
    // window from the previous round (first round: never fires).
    std::vector<uint64_t> window(kShards, 0);

    for (size_t round = 0;
         round < kRoundsPerStore && scenarios < budget; ++round) {
      for (size_t s = 0; s < kShards; ++s) {
        cps[s].ArmAt(window[s] == 0 ? ~0ull
                                    : meta.NextBounded(window[s] + 1));
      }

      const uint64_t round_seed = meta.NextU64();
      std::vector<std::thread> clients;
      clients.reserve(kThreads);
      for (size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
          Rng rng(round_seed ^ (t * 0x5851F42D4C957F2Dull + 1));
          for (size_t op = 0; op < kOpsPerThread; ++op) {
            const uint64_t key =
                t + kThreads * rng.NextBounded(kKeysPerThread);
            const size_t s = store->ShardOf(key);
            const double dice = rng.NextDouble();
            if (dice < 0.55 || oracle[t].empty()) {
              BitVector value = ValueFor(key, seq + t * 1000 + op);
              issued[s][t].push_back(
                  {ShardJournal::Op::kPut, key, value});
              ASSERT_TRUE(store->Put(key, value).ok())
                  << "key " << key;
              oracle[t][key] = std::move(value);
            } else if (dice < 0.75) {
              // Delete a key this thread knows is live, so the call
              // (and hence its journal record) is always issued.
              auto it = oracle[t].lower_bound(key);
              if (it == oracle[t].end()) it = oracle[t].begin();
              const uint64_t victim = it->first;
              const size_t vs = store->ShardOf(victim);
              issued[vs][t].push_back(
                  {ShardJournal::Op::kDelete, victim, BitVector()});
              ASSERT_TRUE(store->Delete(victim).ok())
                  << "key " << victim;
              oracle[t].erase(it);
            } else {
              auto got = store->Get(key);
              auto it = oracle[t].find(key);
              if (it == oracle[t].end()) {
                ASSERT_FALSE(got.ok()) << "key " << key;
              } else {
                ASSERT_TRUE(got.ok()) << "key " << key << ": "
                                      << got.status().ToString();
                ASSERT_TRUE(*got == it->second) << "key " << key;
              }
            }
          }
        });
      }
      for (auto& c : clients) c.join();
      seq += kThreads * 1000;

      // Quiescent: harvest this round's scenarios.
      for (size_t s = 0; s < kShards && scenarios < budget; ++s) {
        window[s] = cps[s].persists_seen();
        const bool fired = cps[s].fired();
        const std::vector<uint8_t> image =
            fired ? cps[s].image() : store->journal(s)->SnapshotImage();
        auto replay_or = ShardJournal::ReplayImageVerified(image);
        ASSERT_TRUE(replay_or.ok())
            << "shard " << s << " round " << round << ": "
            << replay_or.status().ToString();
        // A power cut between the slot persist and the count bump
        // leaves the in-flight record invisible, never half-visible:
        // checksum-verified replay must see a pristine journal.
        EXPECT_FALSE(replay_or->torn_tail)
            << "shard " << s << " round " << round;
        EXPECT_FALSE(replay_or->corrupted)
            << "shard " << s << " round " << round;
        divergences +=
            CheckPrefixProperty(s, *replay_or, issued[s],
                                fired ? "crash image" : "live snapshot");
        ++scenarios;
        if (fired) ++fired_scenarios;
      }
    }

    // Epoch epilogue, quiescent: fold the final journal snapshot and
    // compare with the union of the thread oracles — the round-trip
    // "recover then serve" check.
    for (size_t s = 0; s < kShards; ++s) {
      store->journal(s)->pool().SetCrashPoint(nullptr);
      auto replay_or =
          ShardJournal::ReplayImage(store->journal(s)->SnapshotImage());
      ASSERT_TRUE(replay_or.ok()) << replay_or.status().ToString();
      std::map<uint64_t, BitVector> folded;
      for (const auto& rec : *replay_or) {
        if (rec.op == ShardJournal::Op::kPut) {
          folded[rec.key] = rec.value;
        } else {
          folded.erase(rec.key);
        }
      }
      std::map<uint64_t, BitVector> want;
      for (size_t t = 0; t < kThreads; ++t) {
        for (const auto& [key, value] : oracle[t]) {
          if (store->ShardOf(key) == s) want.emplace(key, value);
        }
      }
      ASSERT_EQ(folded.size(), want.size()) << "shard " << s;
      for (const auto& [key, value] : want) {
        auto it = folded.find(key);
        ASSERT_TRUE(it != folded.end()) << "key " << key;
        EXPECT_TRUE(it->second == value) << "key " << key;
        auto got = store->Get(key);
        ASSERT_TRUE(got.ok()) << "key " << key << ": "
                              << got.status().ToString();
        EXPECT_TRUE(*got == value) << "key " << key;
      }
    }
    const auto stats = injector.stats();
    EXPECT_GT(stats.stuck_clamps, 0u);
    store->device().AttachFaultInjector(nullptr);
  }

  EXPECT_EQ(divergences, 0u);
  // The arming windows are calibrated to the observed persist rate, so
  // a healthy run fires crashes for a solid majority of its scenarios.
  EXPECT_GE(fired_scenarios, scenarios / 4)
      << "only " << fired_scenarios << " of " << scenarios
      << " scenarios fired a crash image";
  ::testing::Test::RecordProperty("scenarios",
                                  static_cast<int>(scenarios));
  ::testing::Test::RecordProperty("fired",
                                  static_cast<int>(fired_scenarios));
}

}  // namespace
}  // namespace e2nvm::core
