#include "common/status.h"

#include <gtest/gtest.h>

namespace e2nvm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesMatch) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::NotFound("key 42 missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "key 42 missing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key 42 missing");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<int> v = 7;
  EXPECT_EQ(v.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

StatusOr<int> Doubler(StatusOr<int> in) {
  E2_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int v) {
  E2_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  StatusOr<int> bad = Doubler(Status::Internal("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DATA_LOSS");
}

}  // namespace
}  // namespace e2nvm
