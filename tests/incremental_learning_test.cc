// Incremental online learning (DESIGN.md §16): the replay ring, the
// PartialFit mini-batch updates, the escalating drift detector, and the
// engine-level determinism contract — same seed => byte-identical ring
// contents, refinement schedule, and model predictions across runs and
// across compute-pool sizes; incremental-off stays bit-identical to the
// full-retrain-only engine.

#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/e2_model.h"
#include "core/placement_engine.h"
#include "core/replay_ring.h"
#include "core/retrain.h"
#include "core/store.h"
#include "ml/kmeans.h"
#include "ml/matrix.h"
#include "ml/vae.h"
#include "placement/clusterer.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

constexpr size_t kSegments = 128;
constexpr size_t kBits = 256;

workload::BitDataset ClusteredData(size_t samples, uint64_t seed,
                                   size_t dim = kBits) {
  workload::ProtoConfig cfg;
  cfg.dim = dim;
  cfg.num_classes = 4;
  cfg.samples = samples;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

ml::Matrix ContentsOf(const workload::BitDataset& ds, size_t rows,
                      size_t dim = kBits) {
  ml::Matrix m(rows, dim);
  for (size_t i = 0; i < rows; ++i) {
    ds.items[i % ds.items.size()].AppendFloatsTo(m.Row(i));
  }
  return m;
}

bool SameFloats(const ml::Matrix& a, const ml::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.rows(); ++i) {
    if (std::memcmp(a.Row(i), b.Row(i), a.cols() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// ReplayRing

TEST(ReplayRingTest, AppendsWrapAndKeepRecencyOrder) {
  ReplayRing ring;
  EXPECT_EQ(ring.capacity(), 0u);
  ring.Reset(4, 3);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.dim(), 3u);
  EXPECT_EQ(ring.size(), 0u);

  for (int v = 0; v < 6; ++v) {
    float* slot = ring.AppendRow();
    for (size_t j = 0; j < 3; ++j) slot[j] = static_cast<float>(v);
    if (v == 1) {
      // Partially full: two rows, newest first.
      EXPECT_EQ(ring.size(), 2u);
      EXPECT_EQ(ring.RecentRow(0)[0], 1.0f);
      EXPECT_EQ(ring.RecentRow(1)[0], 0.0f);
    }
  }
  // Wrapped: rows 2..5 survive; RecentRow(0) is the newest.
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_appends(), 6u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.RecentRow(i)[0], static_cast<float>(5 - i)) << i;
  }
}

// ---------------------------------------------------------------------
// KMeans::PartialFit

TEST(KMeansPartialFitTest, RequiresFitAndChecksWidth) {
  ml::KMeans km({.k = 2, .max_iters = 20, .seed = 5});
  ml::Matrix batch(4, 8);
  EXPECT_FALSE(km.PartialFit(batch).ok());  // Before Fit.

  ml::Matrix x(32, 8);
  for (size_t i = 0; i < 32; ++i) {
    for (size_t j = 0; j < 8; ++j) x.Row(i)[j] = i < 16 ? 0.0f : 1.0f;
  }
  ASSERT_TRUE(km.Fit(x).ok());
  ml::Matrix narrow(2, 4);
  EXPECT_FALSE(km.PartialFit(narrow).ok());  // Wrong width.
  EXPECT_TRUE(km.PartialFit(batch).ok());
  EXPECT_GT(km.PartialFitFlops(4), 0.0);
}

TEST(KMeansPartialFitTest, WarmStartDampsTheUpdate) {
  ml::KMeans km({.k = 2, .max_iters = 20, .seed = 5});
  ml::Matrix x(32, 8);
  for (size_t i = 0; i < 32; ++i) {
    for (size_t j = 0; j < 8; ++j) x.Row(i)[j] = i < 16 ? 0.0f : 1.0f;
  }
  ASSERT_TRUE(km.Fit(x).ok());

  std::vector<float> zero(8, 0.0f);
  const size_t low = km.Predict(zero.data(), 8);
  const float before = km.centroids().Row(low)[0];
  ASSERT_NEAR(before, 0.0f, 0.05f);

  // A batch at 0.25 pulls the low centroid toward it, but the counts
  // seeded from Fit's final assignment damp the move: the centroid must
  // land strictly between its old position and the batch mean.
  ml::Matrix batch(8, 8);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 8; ++j) batch.Row(i)[j] = 0.25f;
  }
  ASSERT_TRUE(km.PartialFit(batch).ok());
  const float after = km.centroids().Row(low)[0];
  EXPECT_GT(after, before);
  EXPECT_LT(after, 0.25f);
}

TEST(KMeansPartialFitTest, UpdatesAreDeterministic) {
  auto run = [] {
    ml::KMeans km({.k = 4, .max_iters = 20, .seed = 9});
    auto ds = ClusteredData(64, 2, /*dim=*/64);
    EXPECT_TRUE(km.Fit(ContentsOf(ds, 64, 64)).ok());
    auto drift = ClusteredData(16, 77, /*dim=*/64);
    EXPECT_TRUE(km.PartialFit(ContentsOf(drift, 16, 64)).ok());
    return km.centroids();
  };
  ml::Matrix a = run();
  ml::Matrix b = run();
  EXPECT_TRUE(SameFloats(a, b));
}

// ---------------------------------------------------------------------
// Vae::PartialFit

TEST(VaePartialFitTest, WarmMiniBatchesAreDeterministicAndReal) {
  ml::VaeConfig vc;
  vc.input_dim = 64;
  vc.hidden_dim = 32;
  vc.latent_dim = 4;
  vc.seed = 7;
  ml::Vae a(vc), b(vc), untouched(vc);

  auto ds = ClusteredData(64, 2, /*dim=*/64);
  ml::Matrix data = ContentsOf(ds, 64, 64);
  ml::VaeTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 16;
  a.Train(data, opts);
  b.Train(data, opts);
  untouched.Train(data, opts);

  auto drift = ClusteredData(32, 77, /*dim=*/64);
  ml::Matrix batch = ContentsOf(drift, 32, 64);
  const double fa = a.PartialFit(batch, /*batch_size=*/16);
  const double fb = b.PartialFit(batch, /*batch_size=*/16);
  EXPECT_GT(fa, 0.0);
  EXPECT_EQ(fa, fb);

  ml::Matrix probe = ContentsOf(drift, 8, 64);
  ml::Matrix za = a.EncodeMu(probe);
  ml::Matrix zb = b.EncodeMu(probe);
  EXPECT_TRUE(SameFloats(za, zb));
  // And the update is a real parameter change, not a no-op.
  ml::Matrix z0 = untouched.EncodeMu(probe);
  EXPECT_FALSE(SameFloats(za, z0));
}

TEST(VaePartialFitTest, EmptyBatchIsFree) {
  ml::VaeConfig vc;
  vc.input_dim = 16;
  vc.hidden_dim = 8;
  vc.latent_dim = 2;
  ml::Vae v(vc);
  ml::Matrix empty(0, 16);
  EXPECT_EQ(v.PartialFit(empty, 8), 0.0);
}

// ---------------------------------------------------------------------
// E2Model::PartialFit

TEST(E2ModelPartialFitTest, PreconditionAndDeterministicUpdates) {
  E2ModelConfig mc;
  mc.input_dim = 64;
  mc.k = 4;
  mc.hidden_dim = 32;
  mc.latent_dim = 4;
  mc.pretrain_epochs = 2;
  mc.finetune_rounds = 1;
  mc.kmeans_iters = 10;
  E2Model m(mc);
  EXPECT_TRUE(m.SupportsPartialFit());

  auto drift = ClusteredData(16, 77, /*dim=*/64);
  ml::Matrix batch = ContentsOf(drift, 16, 64);
  EXPECT_FALSE(m.PartialFit(batch).ok());  // Before Train.

  auto ds = ClusteredData(64, 2, /*dim=*/64);
  ml::Matrix train = ContentsOf(ds, 64, 64);
  ASSERT_TRUE(m.Train(train).ok());
  ml::Matrix narrow(2, 32);
  EXPECT_FALSE(m.PartialFit(narrow).ok());  // Wrong width.
  ASSERT_TRUE(m.PartialFit(batch).ok());
  EXPECT_GT(m.LastPartialFitFlops(), 0.0);

  // A twin model fed the identical sequence predicts identically.
  E2Model twin(mc);
  ASSERT_TRUE(twin.Train(train).ok());
  ASSERT_TRUE(twin.PartialFit(batch).ok());
  for (size_t i = 0; i < 8; ++i) {
    std::vector<float> f(64);
    drift.items[i].AppendFloatsTo(f.data());
    EXPECT_EQ(m.PredictCluster(f), twin.PredictCluster(f)) << i;
  }
}

// ---------------------------------------------------------------------
// RetrainPolicy::Decide — the escalating drift detector.

RetrainPolicy::Config RefineConfig() {
  RetrainPolicy::Config c;
  c.min_free_per_cluster = 0;  // Capacity trigger off.
  c.window = 4;
  c.baseline_writes = 2;
  c.degradation_factor = 1.5;
  c.refine_enabled = true;
  c.refine_interval = 2;
  c.max_refine_rounds = 2;
  c.recovery_factor = 1.2;
  return c;
}

void GoodWrites(RetrainPolicy& p, int n) {
  for (int i = 0; i < n; ++i) p.RecordWrite(1, 100);
}
void BadWrites(RetrainPolicy& p, int n) {
  for (int i = 0; i < n; ++i) p.RecordWrite(80, 100);
}

void FillHealthy(DynamicAddressPool& pool) {
  pool.Insert(0, 1);
  pool.Insert(0, 2);
  pool.Insert(1, 3);
  pool.Insert(1, 4);
}

TEST(RetrainPolicyDecideTest, EscalatesAfterMaxRefineRounds) {
  RetrainPolicy p(RefineConfig());
  DynamicAddressPool pool(2);
  FillHealthy(pool);

  GoodWrites(p, 2);  // Freezes a low baseline (0.01).
  EXPECT_EQ(p.Decide(pool), RetrainAction::kNone);  // Window not full.
  BadWrites(p, 4);  // Window now all-degraded.
  EXPECT_EQ(p.Decide(pool), RetrainAction::kRefine);
  p.OnRefine();
  EXPECT_EQ(p.refine_rounds(), 1u);
  // Right after a refine, the interval gates the next one.
  EXPECT_EQ(p.Decide(pool), RetrainAction::kNone);
  BadWrites(p, 2);
  EXPECT_EQ(p.Decide(pool), RetrainAction::kRefine);
  p.OnRefine();
  EXPECT_EQ(p.refine_rounds(), 2u);
  // max_refine_rounds consecutive refines without recovery: escalate.
  BadWrites(p, 2);
  EXPECT_EQ(p.Decide(pool), RetrainAction::kFullRetrain);
  p.OnRetrain();
  EXPECT_EQ(p.refine_rounds(), 0u);
  EXPECT_EQ(p.Decide(pool), RetrainAction::kNone);  // Fresh baseline.
}

TEST(RetrainPolicyDecideTest, RecoveryResetsTheEscalationCounter) {
  RetrainPolicy p(RefineConfig());
  DynamicAddressPool pool(2);
  FillHealthy(pool);

  GoodWrites(p, 2);
  BadWrites(p, 4);
  EXPECT_EQ(p.Decide(pool), RetrainAction::kRefine);
  p.OnRefine();
  EXPECT_EQ(p.refine_rounds(), 1u);
  // Refinement worked: the window ratio falls back under
  // recovery_factor * baseline and the episode counter resets.
  GoodWrites(p, 4);
  EXPECT_EQ(p.Decide(pool), RetrainAction::kNone);
  EXPECT_EQ(p.refine_rounds(), 0u);
  // A later degradation starts a fresh episode (kRefine, not escalate).
  BadWrites(p, 4);
  EXPECT_EQ(p.Decide(pool), RetrainAction::kRefine);
}

TEST(RetrainPolicyDecideTest, CapacityTriggerAlwaysEscalates) {
  RetrainPolicy::Config c = RefineConfig();
  c.min_free_per_cluster = 2;
  RetrainPolicy p(c);
  DynamicAddressPool pool(2);
  pool.Insert(0, 1);  // Cluster 0 free list below the threshold.
  pool.Insert(1, 2);
  pool.Insert(1, 3);
  // Refinement never rebuilds the DAP, so a starving cluster goes
  // straight to a full retrain — no window, no refine rounds needed.
  EXPECT_EQ(p.Decide(pool), RetrainAction::kFullRetrain);
}

TEST(RetrainPolicyDecideTest, OffModeMatchesShouldRetrainExactly) {
  RetrainPolicy::Config c = RefineConfig();
  c.refine_enabled = false;
  RetrainPolicy p(c);
  DynamicAddressPool pool(2);
  FillHealthy(pool);
  // Across baseline-freeze, degradation, and recovery, Decide() is the
  // two-way ShouldRetrain() mapped to kNone/kFullRetrain — never kRefine.
  auto check = [&] {
    RetrainAction a = p.Decide(pool);
    EXPECT_NE(a, RetrainAction::kRefine);
    EXPECT_EQ(a == RetrainAction::kFullRetrain, p.ShouldRetrain(pool));
  };
  for (int i = 0; i < 3; ++i) { GoodWrites(p, 1); check(); }
  for (int i = 0; i < 6; ++i) { BadWrites(p, 1); check(); }
  p.OnRetrain();
  check();
  for (int i = 0; i < 3; ++i) { GoodWrites(p, 1); check(); }
}

// ---------------------------------------------------------------------
// Engine-level determinism (the satellite contract): same seed =>
// byte-identical ring contents, refinement schedule, and predictions,
// across repeated runs and across compute-pool sizes.

struct Rig {
  explicit Rig(placement::ContentClusterer* clusterer,
               PlacementEngine::Config ec = {}) {
    nvm::DeviceConfig dc;
    dc.num_segments = kSegments;
    dc.segment_bits = kBits;
    device = std::make_unique<nvm::NvmDevice>(dc);
    ctrl = std::make_unique<nvm::MemoryController>(device.get(), &dcw,
                                                   kSegments, 0);
    ec.first_segment = 0;
    ec.num_segments = kSegments;
    engine = std::make_unique<PlacementEngine>(ctrl.get(), clusterer, ec);
  }

  void SeedWith(const workload::BitDataset& ds) {
    auto sized = workload::ResizeItems(ds, kBits);
    for (size_t i = 0; i < kSegments; ++i) {
      ctrl->Seed(i, sized.items[i % sized.items.size()]);
    }
  }

  schemes::Dcw dcw;
  std::unique_ptr<nvm::NvmDevice> device;
  std::unique_ptr<nvm::MemoryController> ctrl;
  std::unique_ptr<PlacementEngine> engine;
};

struct DriftRun {
  std::vector<uint64_t> addrs;
  std::vector<size_t> probe_clusters;
  std::vector<float> ring_floats;
  uint64_t ring_appends = 0;
  uint64_t refine_steps = 0;
  uint64_t retrains = 0;
  uint64_t background_retrains = 0;
  uint64_t model_generation = 0;
  double refine_flops = 0;
};

PlacementEngine::Config DriftEngineConfig(size_t max_refine_rounds) {
  PlacementEngine::Config ec;
  ec.auto_retrain = true;
  ec.retrain.window = 32;
  ec.retrain.baseline_writes = 16;
  ec.retrain.degradation_factor = 1.3;
  ec.retrain.min_free_per_cluster = 0;  // Isolate the efficiency trigger.
  ec.retrain.refine_interval = 8;
  ec.retrain.max_refine_rounds = max_refine_rounds;
  ec.incremental.enabled = true;
  ec.incremental.ring_capacity = 64;
  ec.incremental.refine_batch = 16;
  return ec;
}

/// Phase A traffic matching the seeded distribution, then phase B with
/// different prototypes — the Fig 17 drift scenario. `background` drains
/// any launched shadow training at its (deterministic) launch point so
/// swap points are reproducible.
DriftRun RunDriftWorkload(size_t max_refine_rounds, bool background) {
  placement::RawKMeansClusterer km(4, /*seed=*/42, /*max_iters=*/20);
  Rig rig(&km, DriftEngineConfig(max_refine_rounds));
  rig.SeedWith(ClusteredData(kSegments, 2));
  if (background) rig.engine->EnableBackgroundRetrain();
  EXPECT_TRUE(rig.engine->Bootstrap().ok());

  DriftRun out;
  std::deque<uint64_t> live;
  auto drive = [&](const workload::BitDataset& ds) {
    for (const auto& item : ds.items) {
      auto addr = rig.engine->Place(item);
      ASSERT_TRUE(addr.ok()) << addr.status().message();
      out.addrs.push_back(*addr);
      live.push_back(*addr);
      if (live.size() > kSegments / 2) {
        EXPECT_TRUE(rig.engine->Release(live.front()).ok());
        live.pop_front();
      }
      if (background) {
        while (rig.engine->RetrainInFlight()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        rig.engine->PumpBackgroundRetrain();
      }
    }
  };
  // Phase A shares the seed distribution (same prototypes => low flips,
  // low frozen baseline); phase B re-draws the prototypes — the drift.
  drive(ClusteredData(100, 2));
  auto phase_b = ClusteredData(200, 99);
  drive(phase_b);

  for (size_t i = 0; i < 8; ++i) {
    auto c = rig.engine->PredictClusterFor(phase_b.items[i]);
    EXPECT_TRUE(c.ok());
    out.probe_clusters.push_back(c.ok() ? *c : ~size_t{0});
  }
  const ReplayRing& ring = rig.engine->replay_ring();
  EXPECT_EQ(ring.capacity(), 64u);
  const ml::Matrix& raw = ring.raw();
  for (size_t i = 0; i < raw.rows(); ++i) {
    out.ring_floats.insert(out.ring_floats.end(), raw.Row(i),
                           raw.Row(i) + raw.cols());
  }
  out.ring_appends = ring.total_appends();
  const EngineStats& st = rig.engine->stats();
  out.refine_steps = st.refine_steps;
  out.retrains = st.retrains;
  out.background_retrains = st.background_retrains;
  out.model_generation = rig.engine->model_generation();
  out.refine_flops = st.refine_flops;
  return out;
}

void ExpectSameRun(const DriftRun& a, const DriftRun& b) {
  EXPECT_EQ(a.addrs, b.addrs);
  EXPECT_EQ(a.probe_clusters, b.probe_clusters);
  EXPECT_EQ(a.ring_appends, b.ring_appends);
  EXPECT_EQ(a.refine_steps, b.refine_steps);
  EXPECT_EQ(a.retrains, b.retrains);
  EXPECT_EQ(a.background_retrains, b.background_retrains);
  EXPECT_EQ(a.model_generation, b.model_generation);
  EXPECT_EQ(a.refine_flops, b.refine_flops);
  ASSERT_EQ(a.ring_floats.size(), b.ring_floats.size());
  EXPECT_EQ(std::memcmp(a.ring_floats.data(), b.ring_floats.data(),
                        a.ring_floats.size() * sizeof(float)),
            0);
}

TEST(IncrementalEngineTest, DriftIsAbsorbedByRefinementSteps) {
  // A generous escalation budget: all drift must be handled inline.
  DriftRun run = RunDriftWorkload(/*max_refine_rounds=*/1000,
                                  /*background=*/false);
  EXPECT_GT(run.refine_steps, 0u);
  EXPECT_GT(run.refine_flops, 0.0);
  EXPECT_EQ(run.retrains, 0u);
  EXPECT_EQ(run.background_retrains, 0u);
  EXPECT_GT(run.ring_appends, 0u);
}

TEST(IncrementalEngineTest, RefinementIsDeterministicAcrossRunsAndPools) {
  DriftRun serial1 = RunDriftWorkload(1000, /*background=*/false);
  DriftRun serial2 = RunDriftWorkload(1000, /*background=*/false);
  ExpectSameRun(serial1, serial2);
  EXPECT_GT(serial1.refine_steps, 0u);

  // Parallel ML kernels are pool-size invariant by design; refinement
  // must inherit that (same ring bytes, schedule, and predictions).
  ThreadPool pool(3);
  ml::ScopedComputePool scoped(&pool);
  DriftRun pooled = RunDriftWorkload(1000, /*background=*/false);
  ExpectSameRun(serial1, pooled);
}

TEST(IncrementalEngineTest, EscalationSwapsDeterministically) {
  // A tiny escalation budget under sustained drift: refinement steps run
  // first, then the policy escalates to a background full retrain whose
  // swap point (drained at launch) is reproducible.
  DriftRun a = RunDriftWorkload(/*max_refine_rounds=*/2,
                                /*background=*/true);
  EXPECT_GE(a.refine_steps, 2u);
  EXPECT_GE(a.background_retrains, 1u);
  EXPECT_GE(a.model_generation, 1u);

  DriftRun b = RunDriftWorkload(2, /*background=*/true);
  ExpectSameRun(a, b);
}

TEST(IncrementalEngineTest, OffModeKnobsAreInert) {
  // With incremental.enabled false, the ring/batch knobs must change
  // nothing: placements and the retrain schedule stay bit-identical to
  // the default-config engine (the fastpath/determinism anchor for §16).
  auto run = [](PlacementEngine::Config::Incremental inc) {
    placement::RawKMeansClusterer km(4, 42, 20);
    PlacementEngine::Config ec;
    ec.auto_retrain = true;
    ec.retrain.window = 32;
    ec.retrain.baseline_writes = 16;
    ec.retrain.degradation_factor = 1.3;
    ec.incremental = inc;
    Rig rig(&km, ec);
    rig.SeedWith(ClusteredData(kSegments, 2));
    EXPECT_TRUE(rig.engine->Bootstrap().ok());
    DriftRun out;
    std::deque<uint64_t> live;
    auto drive = [&](const workload::BitDataset& ds) {
      for (const auto& item : ds.items) {
        auto addr = rig.engine->Place(item);
        EXPECT_TRUE(addr.ok());
        out.addrs.push_back(addr.ok() ? *addr : ~uint64_t{0});
        live.push_back(out.addrs.back());
        if (live.size() > kSegments / 2) {
          EXPECT_TRUE(rig.engine->Release(live.front()).ok());
          live.pop_front();
        }
      }
    };
    drive(ClusteredData(60, 3));
    drive(ClusteredData(120, 99));
    out.refine_steps = rig.engine->stats().refine_steps;
    out.retrains = rig.engine->stats().retrains;
    out.ring_appends = rig.engine->replay_ring().capacity();  // Reused.
    return out;
  };

  DriftRun plain = run({});
  PlacementEngine::Config::Incremental tweaked;
  tweaked.enabled = false;
  tweaked.ring_capacity = 8;
  tweaked.refine_batch = 4;
  DriftRun off = run(tweaked);
  EXPECT_EQ(plain.addrs, off.addrs);
  EXPECT_EQ(plain.retrains, off.retrains);
  EXPECT_EQ(plain.refine_steps, 0u);
  EXPECT_EQ(off.refine_steps, 0u);
  // The ring is never even allocated when disabled.
  EXPECT_EQ(plain.ring_appends, 0u);
  EXPECT_EQ(off.ring_appends, 0u);
}

TEST(IncrementalEngineTest, FallsBackToFullRetrainsWithoutPartialFit) {
  // incremental.enabled with a clusterer that has no PartialFit
  // (DensityClusterer): refinement is derived off and the engine keeps
  // the full-retrain schedule instead of failing on kRefine.
  placement::DensityClusterer density(4);
  Rig rig(&density, DriftEngineConfig(/*max_refine_rounds=*/2));
  rig.SeedWith(ClusteredData(kSegments, 2));
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  std::deque<uint64_t> live;
  auto drive = [&](const workload::BitDataset& ds) {
    for (const auto& item : ds.items) {
      auto addr = rig.engine->Place(item);
      ASSERT_TRUE(addr.ok());
      live.push_back(*addr);
      if (live.size() > kSegments / 2) {
        ASSERT_TRUE(rig.engine->Release(live.front()).ok());
        live.pop_front();
      }
    }
  };
  drive(ClusteredData(100, 3));
  drive(ClusteredData(200, 99));
  EXPECT_EQ(rig.engine->stats().refine_steps, 0u);
}

// ---------------------------------------------------------------------
// Store plumbing: StoreConfig knobs reach the engine and refinement runs
// end-to-end with the real E2Model (VAE + k-means PartialFit).

TEST(IncrementalStoreTest, StoreRefinesUnderDriftAndServesReads) {
  StoreConfig sc;
  sc.num_segments = 64;
  sc.segment_bits = 128;
  sc.model.k = 4;
  sc.model.hidden_dim = 32;
  sc.model.latent_dim = 4;
  sc.model.pretrain_epochs = 2;
  sc.model.finetune_rounds = 1;
  sc.model.kmeans_iters = 10;
  sc.auto_retrain = true;
  sc.retrain.window = 32;
  sc.retrain.baseline_writes = 16;
  sc.retrain.degradation_factor = 1.3;
  sc.retrain.min_free_per_cluster = 0;
  sc.retrain.refine_interval = 8;
  sc.retrain.max_refine_rounds = 1000;
  sc.incremental_learning = true;
  sc.replay_ring_capacity = 32;
  sc.refine_batch = 8;

  auto store_or = E2KvStore::Create(sc);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ClusteredData(64, 2, /*dim=*/128));
  ASSERT_TRUE(store->Bootstrap().ok());
  EXPECT_EQ(store->engine().replay_ring().capacity(), 32u);

  auto phase_a = ClusteredData(32, 2, /*dim=*/128);
  for (size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(store->Put(i, phase_a.items[i]).ok());
  }
  auto phase_b = ClusteredData(64, 99, /*dim=*/128);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t i = 0; i < 32; ++i) {
      ASSERT_TRUE(store->Put(i, phase_b.items[r * 32 + i]).ok());
    }
  }
  EXPECT_GT(store->engine().stats().refine_steps, 0u);
  EXPECT_EQ(store->engine().stats().retrains, 0u);
  // Reads serve the latest values through the refined model's layout.
  for (size_t i = 0; i < 32; ++i) {
    auto got = store->Get(i);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, phase_b.items[32 + i]) << i;
  }
}

}  // namespace
}  // namespace e2nvm::core
