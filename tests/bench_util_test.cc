// Unit tests for the shared bench helpers (bench/bench_util.h): the
// truncated-rank percentile convention every BENCH_*.json has always
// used, the tail-grid summarizer, and the line-stable JSON writer.

#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace e2nvm::bench {
namespace {

TEST(PercentileTest, EmptyIsZero) {
  std::vector<double> v;
  EXPECT_EQ(Percentile(v, 0.5), 0.0);
}

TEST(PercentileTest, SingleElement) {
  std::vector<double> v{7.5};
  EXPECT_EQ(Percentile(v, 0.0), 7.5);
  EXPECT_EQ(Percentile(v, 0.5), 7.5);
  EXPECT_EQ(Percentile(v, 1.0), 7.5);
}

TEST(PercentileTest, TruncatedRankConvention) {
  // sorted[floor(q * (n - 1))] over 1..100.
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_EQ(Percentile(v, 0.0), 1.0);    // front
  EXPECT_EQ(Percentile(v, 0.5), 50.0);   // floor(0.5 * 99) = 49 -> 50
  EXPECT_EQ(Percentile(v, 0.99), 99.0);  // floor(0.99 * 99) = 98 -> 99
  EXPECT_EQ(Percentile(v, 0.999), 99.0);
  EXPECT_EQ(Percentile(v, 1.0), 100.0);  // max
}

TEST(PercentileTest, ClampsOutOfRangeQ) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(Percentile(v, -0.5), 1.0);
  EXPECT_EQ(Percentile(v, 1.5), 3.0);
}

TEST(SummarizeLatenciesTest, SortsAndFillsTailGrid) {
  std::vector<double> us{30.0, 10.0, 20.0, 40.0};  // Unsorted on entry.
  TailStats s = SummarizeLatencies(us, /*seconds=*/2.0, /*ops=*/4);
  EXPECT_TRUE(std::is_sorted(us.begin(), us.end()));
  EXPECT_DOUBLE_EQ(s.ops_s, 2.0);
  EXPECT_DOUBLE_EQ(s.p50_us, 30.0);  // us[n/2] = us[2].
  EXPECT_DOUBLE_EQ(s.p99_us, 30.0);  // floor(0.99 * 3) = 2.
  EXPECT_DOUBLE_EQ(s.max_us, 40.0);
}

TEST(SummarizeLatenciesTest, BatchedOpsScaleTheRate) {
  // One sample may cover a batch: ops is quoted, not us.size().
  std::vector<double> us{100.0};
  TailStats s = SummarizeLatencies(us, 1.0, /*ops=*/16);
  EXPECT_DOUBLE_EQ(s.ops_s, 16.0);
}

TEST(SummarizeLatenciesTest, EmptyOrZeroTimeIsAllZero) {
  std::vector<double> empty;
  TailStats s = SummarizeLatencies(empty, 1.0, 0);
  EXPECT_EQ(s.ops_s, 0.0);
  EXPECT_EQ(s.p999_us, 0.0);
  std::vector<double> us{1.0};
  s = SummarizeLatencies(us, 0.0, 1);
  EXPECT_EQ(s.ops_s, 0.0);
}

std::string WriteJson(const std::function<void(JsonWriter&)>& body) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  {
    JsonWriter jw(f);
    body(jw);
    jw.Finish();
  }
  std::fseek(f, 0, SEEK_END);
  std::string out(static_cast<size_t>(std::ftell(f)), '\0');
  std::rewind(f);
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

TEST(JsonWriterTest, EmptyRoot) {
  EXPECT_EQ(WriteJson([](JsonWriter&) {}), "{}\n");
}

TEST(JsonWriterTest, FieldsObjectsArrays) {
  const std::string out = WriteJson([](JsonWriter& jw) {
    jw.Field("n", static_cast<uint64_t>(3));
    jw.Field("x", 1.5, 2);
    jw.Field("s", "hi");
    jw.Field("b", true);
    jw.BeginObject("o");
    jw.Field("inner", 1);
    jw.EndObject();
    jw.BeginArray("a");
    jw.BeginObject();
    jw.Field("i", 0);
    jw.EndObject();
    jw.EndArray();
  });
  EXPECT_EQ(out,
            "{\n"
            "  \"n\": 3,\n"
            "  \"x\": 1.50,\n"
            "  \"s\": \"hi\",\n"
            "  \"b\": true,\n"
            "  \"o\": {\n"
            "    \"inner\": 1\n"
            "  },\n"
            "  \"a\": [\n"
            "    {\n"
            "      \"i\": 0\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, TailSectionKeysAreCanonical) {
  TailStats s;
  s.ops_s = 10.0;
  s.p50_us = 1.0;
  s.p99_us = 2.0;
  s.p999_us = 3.0;
  s.max_us = 4.0;
  const std::string out =
      WriteJson([&](JsonWriter& jw) { jw.TailSection("put", s); });
  EXPECT_NE(out.find("\"put\": {"), std::string::npos);
  EXPECT_NE(out.find("\"ops_per_s\": 10.0"), std::string::npos);
  EXPECT_NE(out.find("\"p50_us\": 1.00"), std::string::npos);
  EXPECT_NE(out.find("\"p999_us\": 3.00"), std::string::npos);
  EXPECT_NE(out.find("\"max_us\": 4.00"), std::string::npos);
}

}  // namespace
}  // namespace e2nvm::bench
