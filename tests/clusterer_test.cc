#include "placement/clusterer.h"

#include <gtest/gtest.h>

#include "core/e2_model.h"
#include "workload/datasets.h"

namespace e2nvm {
namespace {

/// Purity of predicted clusters against true labels: for each predicted
/// cluster take its majority true label; purity = fraction matching.
double Purity(placement::ContentClusterer& clusterer,
              const workload::BitDataset& ds) {
  std::map<size_t, std::map<int, int>> votes;
  std::vector<size_t> preds(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    preds[i] = clusterer.PredictCluster(ds.items[i].ToFloats());
    ++votes[preds[i]][ds.labels[i]];
  }
  size_t correct = 0;
  std::map<size_t, int> majority;
  for (auto& [c, v] : votes) {
    int best = -1, best_count = -1;
    for (auto& [label, count] : v) {
      if (count > best_count) {
        best = label;
        best_count = count;
      }
    }
    majority[c] = best;
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    if (majority[preds[i]] == ds.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

workload::BitDataset EasyDataset(size_t samples = 300, size_t dim = 256,
                                 size_t classes = 5) {
  workload::ProtoConfig cfg;
  cfg.dim = dim;
  cfg.num_classes = classes;
  cfg.samples = samples;
  cfg.noise = 0.04;
  cfg.seed = 21;
  return workload::MakeProtoDataset(cfg);
}

TEST(SingleClustererTest, AlwaysClusterZero) {
  placement::SingleClusterer s;
  EXPECT_EQ(s.num_clusters(), 1u);
  EXPECT_EQ(s.PredictCluster(std::vector<float>(16, 0.f)), 0u);
  EXPECT_TRUE(s.Train(ml::Matrix(4, 4)).ok());
}

TEST(DensityClustererTest, BucketsByPolarity) {
  placement::DensityClusterer d(4);
  EXPECT_EQ(d.num_clusters(), 4u);
  EXPECT_EQ(d.PredictCluster(std::vector<float>(64, 0.0f)), 0u);
  EXPECT_EQ(d.PredictCluster(std::vector<float>(64, 1.0f)), 3u);
  std::vector<float> half(64, 0.0f);
  for (size_t i = 0; i < 32; ++i) half[i] = 1.0f;
  EXPECT_EQ(d.PredictCluster(half), 2u);
  EXPECT_TRUE(d.Train(ml::Matrix(2, 2)).ok());
}

TEST(DensityClustererTest, SeparatesSparseFromDense) {
  // Sparse vs dense contents land in different buckets — the DATACON
  // zeros-region / ones-region redirection.
  placement::DensityClusterer d(2);
  std::vector<float> sparse(128, 0.0f);
  sparse[0] = sparse[1] = 1.0f;
  std::vector<float> dense(128, 1.0f);
  dense[0] = dense[1] = 0.0f;
  EXPECT_NE(d.PredictCluster(sparse), d.PredictCluster(dense));
}

TEST(RawKMeansClustererTest, HighPurityOnSeparatedData) {
  auto ds = EasyDataset();
  placement::RawKMeansClusterer c(5, 3);
  ASSERT_TRUE(c.Train(ds.ToMatrix()).ok());
  EXPECT_GT(Purity(c, ds), 0.9);
  EXPECT_GT(c.LastTrainFlops(), 0.0);
  EXPECT_GT(c.PredictFlops(), 0.0);
}

TEST(PcaKMeansClustererTest, GoodPurityDespiteProjection) {
  auto ds = EasyDataset();
  placement::PcaKMeansClusterer c(5, /*components=*/8, 3);
  ASSERT_TRUE(c.Train(ds.ToMatrix()).ok());
  EXPECT_GT(Purity(c, ds), 0.85);
  // PCA+K-means prediction is cheaper than raw K-means prediction at high
  // dimensionality? Not necessarily per call, but train must be counted.
  EXPECT_GT(c.LastTrainFlops(), 0.0);
}

TEST(E2ModelTest, TrainsAndPredictsInRange) {
  auto ds = EasyDataset(200);
  core::E2ModelConfig cfg;
  cfg.input_dim = ds.dim;
  cfg.k = 5;
  cfg.hidden_dim = 64;
  cfg.latent_dim = 8;
  cfg.pretrain_epochs = 6;
  core::E2Model model(cfg);
  ASSERT_TRUE(model.Train(ds.ToMatrix()).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_LT(model.PredictCluster(ds.items[i].ToFloats()), 5u);
  }
  EXPECT_GT(model.LastTrainFlops(), 0.0);
  EXPECT_FALSE(model.history().train_loss.empty());
}

TEST(E2ModelTest, HighPurityOnSeparatedData) {
  auto ds = EasyDataset(400);
  core::E2ModelConfig cfg;
  cfg.input_dim = ds.dim;
  cfg.k = 5;
  cfg.hidden_dim = 64;
  cfg.latent_dim = 8;
  cfg.pretrain_epochs = 10;
  core::E2Model model(cfg);
  ASSERT_TRUE(model.Train(ds.ToMatrix()).ok());
  EXPECT_GT(Purity(model, ds), 0.85);
}

TEST(E2ModelTest, JointFinetuneFlagChangesTraining) {
  auto ds = EasyDataset(200);
  core::E2ModelConfig cfg;
  cfg.input_dim = ds.dim;
  cfg.k = 5;
  cfg.pretrain_epochs = 4;
  cfg.joint_finetune = false;
  core::E2Model seq_model(cfg);
  ASSERT_TRUE(seq_model.Train(ds.ToMatrix()).ok());
  cfg.joint_finetune = true;
  core::E2Model joint_model(cfg);
  ASSERT_TRUE(joint_model.Train(ds.ToMatrix()).ok());
  // Joint fine-tuning must cost extra training flops.
  EXPECT_GT(joint_model.LastTrainFlops(), seq_model.LastTrainFlops());
}

TEST(E2ModelTest, RejectsBadGeometry) {
  core::E2ModelConfig cfg;
  cfg.input_dim = 64;
  cfg.k = 50;
  core::E2Model model(cfg);
  ml::Matrix tiny(10, 64);
  EXPECT_EQ(model.Train(tiny).code(), StatusCode::kInvalidArgument);
  ml::Matrix wrong_dim(100, 32);
  EXPECT_EQ(model.Train(wrong_dim).code(),
            StatusCode::kInvalidArgument);
}

TEST(E2ModelTest, LatentSsePositiveAndDropsWithK) {
  auto ds = EasyDataset(200);
  double prev = 1e30;
  for (size_t k : {2u, 5u}) {
    core::E2ModelConfig cfg;
    cfg.input_dim = ds.dim;
    cfg.k = k;
    cfg.pretrain_epochs = 4;
    cfg.seed = 5;
    core::E2Model model(cfg);
    ASSERT_TRUE(model.Train(ds.ToMatrix()).ok());
    double sse = model.LatentSse(ds.ToMatrix());
    EXPECT_GT(sse, 0.0);
    EXPECT_LT(sse, prev);
    prev = sse;
  }
}

TEST(E2ModelTest, RetrainReplacesModel) {
  auto ds = EasyDataset(150);
  core::E2ModelConfig cfg;
  cfg.input_dim = ds.dim;
  cfg.k = 3;
  cfg.pretrain_epochs = 3;
  core::E2Model model(cfg);
  ASSERT_TRUE(model.Train(ds.ToMatrix()).ok());
  // Second Train (re-training) must succeed from scratch.
  ASSERT_TRUE(model.Train(ds.ToMatrix()).ok());
  EXPECT_LT(model.PredictCluster(ds.items[0].ToFloats()), 3u);
}

}  // namespace
}  // namespace e2nvm
