#include "core/placement_engine.h"

#include <gtest/gtest.h>

#include "core/e2_model.h"
#include "index/value_placer.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

constexpr size_t kSegments = 128;
constexpr size_t kBits = 256;

struct Rig {
  explicit Rig(placement::ContentClusterer* clusterer,
               PlacementEngine::Config ec = {}) {
    nvm::DeviceConfig dc;
    dc.num_segments = kSegments;
    dc.segment_bits = kBits;
    device = std::make_unique<nvm::NvmDevice>(dc);
    ctrl = std::make_unique<nvm::MemoryController>(device.get(), &dcw,
                                                   kSegments, 0);
    ec.first_segment = 0;
    ec.num_segments = kSegments;
    engine = std::make_unique<PlacementEngine>(ctrl.get(), clusterer, ec);
  }

  void SeedWith(const workload::BitDataset& ds) {
    auto sized = workload::ResizeItems(ds, kBits);
    for (size_t i = 0; i < kSegments; ++i) {
      ctrl->Seed(i, sized.items[i % sized.items.size()]);
    }
  }

  schemes::Dcw dcw;
  std::unique_ptr<nvm::NvmDevice> device;
  std::unique_ptr<nvm::MemoryController> ctrl;
  std::unique_ptr<PlacementEngine> engine;
};

workload::BitDataset ClusteredData(size_t samples, uint64_t seed = 2) {
  workload::ProtoConfig cfg;
  cfg.dim = kBits;
  cfg.num_classes = 4;
  cfg.samples = samples;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

TEST(PlacementEngineTest, PlaceBeforeBootstrapFails) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  EXPECT_EQ(rig.engine->Place(BitVector(kBits)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PlacementEngineTest, BootstrapPopulatesWholePool) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  rig.SeedWith(ClusteredData(64));
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  EXPECT_EQ(rig.engine->pool().TotalFree(), kSegments);
  EXPECT_GT(rig.engine->stats().train_flops, 0.0);
}

TEST(PlacementEngineTest, PlaceConsumesAndWrites) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  auto ds = ClusteredData(64);
  rig.SeedWith(ds);
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  auto addr = rig.engine->Place(ds.items[0]);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(rig.engine->pool().TotalFree(), kSegments - 1);
  EXPECT_EQ(rig.ctrl->Peek(*addr), ds.items[0]);
  EXPECT_EQ(rig.engine->stats().placements, 1u);
}

TEST(PlacementEngineTest, MemoryAwarePlacementBeatsArbitrary) {
  // The paper's core claim at module level: placing onto same-cluster
  // content flips far fewer bits than first-free placement.
  auto ds = ClusteredData(kSegments + 200);

  placement::RawKMeansClusterer clusterer(4);
  Rig aware_rig(&clusterer);
  aware_rig.SeedWith(ds);
  ASSERT_TRUE(aware_rig.engine->Bootstrap().ok());

  Rig arb_rig_holder(&clusterer);  // Device only; placer below.
  arb_rig_holder.SeedWith(ds);
  index::ArbitraryPlacer arbitrary(arb_rig_holder.ctrl.get(), 0,
                                   kSegments);

  uint64_t aware_flips_before =
      aware_rig.device->stats().total_bits_flipped();
  uint64_t arb_flips_before =
      arb_rig_holder.device->stats().total_bits_flipped();
  for (size_t i = 0; i < 100; ++i) {
    const BitVector& v = ds.items[kSegments + i];
    ASSERT_TRUE(aware_rig.engine->Place(v).ok());
    ASSERT_TRUE(arbitrary.Place(v).ok());
  }
  uint64_t aware_flips =
      aware_rig.device->stats().total_bits_flipped() - aware_flips_before;
  uint64_t arb_flips = arb_rig_holder.device->stats().total_bits_flipped() -
                       arb_flips_before;
  EXPECT_LT(aware_flips, arb_flips / 2)
      << "aware=" << aware_flips << " arbitrary=" << arb_flips;
}

TEST(PlacementEngineTest, ReleaseRecyclesByContent) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  auto ds = ClusteredData(64);
  rig.SeedWith(ds);
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  auto addr = rig.engine->Place(ds.items[0]);
  ASSERT_TRUE(addr.ok());
  size_t free_before = rig.engine->pool().TotalFree();
  ASSERT_TRUE(rig.engine->Release(*addr).ok());
  EXPECT_EQ(rig.engine->pool().TotalFree(), free_before + 1);
  EXPECT_EQ(rig.engine->stats().releases, 1u);
  // The recycled address must be in the cluster its content predicts.
  auto cluster = rig.engine->PredictClusterFor(rig.ctrl->Peek(*addr));
  ASSERT_TRUE(cluster.ok());
  EXPECT_GT(rig.engine->pool().FreeCount(*cluster), 0u);
}

TEST(PlacementEngineTest, ExhaustionReported) {
  placement::RawKMeansClusterer clusterer(2);
  Rig rig(&clusterer);
  rig.SeedWith(ClusteredData(32));
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  BitVector v(kBits);
  for (size_t i = 0; i < kSegments; ++i) {
    ASSERT_TRUE(rig.engine->Place(v).ok()) << i;
  }
  EXPECT_EQ(rig.engine->Place(v).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PlacementEngineTest, SearchBestFindsCloserMatches) {
  auto ds = ClusteredData(kSegments + 100, 9);
  placement::RawKMeansClusterer c1(4), c2(4);
  PlacementEngine::Config best_cfg;
  best_cfg.search_best_in_cluster = true;
  Rig first_rig(&c1);
  Rig best_rig(&c2, best_cfg);
  first_rig.SeedWith(ds);
  best_rig.SeedWith(ds);
  ASSERT_TRUE(first_rig.engine->Bootstrap().ok());
  ASSERT_TRUE(best_rig.engine->Bootstrap().ok());
  for (size_t i = 0; i < 60; ++i) {
    const BitVector& v = ds.items[kSegments + i];
    ASSERT_TRUE(first_rig.engine->Place(v).ok());
    ASSERT_TRUE(best_rig.engine->Place(v).ok());
  }
  // Best-search can only improve (or match) flips.
  EXPECT_LE(best_rig.device->stats().total_bits_flipped(),
            first_rig.device->stats().total_bits_flipped());
}

TEST(PlacementEngineTest, RetrainRebuildsPool) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  auto ds = ClusteredData(64);
  rig.SeedWith(ds);
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.engine->Place(ds.items[i]).ok());
  }
  size_t free_before = rig.engine->pool().TotalFree();
  ASSERT_TRUE(rig.engine->Retrain().ok());
  EXPECT_EQ(rig.engine->pool().TotalFree(), free_before);
  EXPECT_EQ(rig.engine->stats().retrains, 1u);
}

TEST(PlacementEngineTest, CpuEnergyCharged) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  auto ds = ClusteredData(64);
  rig.SeedWith(ds);
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  double train_energy =
      rig.device->meter().DomainPj(nvm::EnergyDomain::kCpuModel);
  EXPECT_GT(train_energy, 0.0);
  ASSERT_TRUE(rig.engine->Place(ds.items[0]).ok());
  EXPECT_GT(rig.device->meter().DomainPj(nvm::EnergyDomain::kCpuModel),
            train_energy);
}

TEST(PlacementEngineTest, NarrowValueZeroExtendedByDefault) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  auto ds = ClusteredData(64);
  rig.SeedWith(ds);
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  BitVector narrow(100);
  narrow.Set(0, true);
  auto addr = rig.engine->Place(narrow);
  ASSERT_TRUE(addr.ok());
  // Only the first 100 bits were written; the tail keeps old content.
  EXPECT_EQ(rig.ctrl->Peek(*addr).Slice(0, 100), narrow);
}

TEST(PlacementEngineTest, ExtendRegionIndexesIncrementally) {
  // Incremental DAP indexing (§4.1.4): bootstrap over half the device,
  // extend over the rest without retraining.
  placement::RawKMeansClusterer clusterer(4);
  nvm::DeviceConfig dc;
  dc.num_segments = kSegments;
  dc.segment_bits = kBits;
  nvm::NvmDevice device(dc);
  schemes::Dcw dcw;
  nvm::MemoryController ctrl(&device, &dcw, kSegments, 0);
  auto ds = ClusteredData(kSegments);
  auto sized = workload::ResizeItems(ds, kBits);
  for (size_t i = 0; i < kSegments; ++i) {
    ctrl.Seed(i, sized.items[i % sized.items.size()]);
  }
  PlacementEngine::Config ec;
  ec.first_segment = 0;
  ec.num_segments = kSegments / 2;
  PlacementEngine engine(&ctrl, &clusterer, ec);

  EXPECT_EQ(engine.ExtendRegion(4).code(),
            StatusCode::kFailedPrecondition);  // Before bootstrap.
  ASSERT_TRUE(engine.Bootstrap().ok());
  EXPECT_EQ(engine.pool().TotalFree(), kSegments / 2);
  ASSERT_TRUE(engine.ExtendRegion(kSegments / 2).ok());
  EXPECT_EQ(engine.pool().TotalFree(), kSegments);
  // Extending past the device fails.
  EXPECT_EQ(engine.ExtendRegion(1).code(), StatusCode::kOutOfRange);
  // The extended addresses are usable.
  for (size_t i = 0; i < kSegments; ++i) {
    ASSERT_TRUE(engine.Place(ds.items[i % ds.items.size()]).ok()) << i;
  }
}

TEST(PlacementEngineTest, WiderThanSegmentRejected) {
  placement::RawKMeansClusterer clusterer(4);
  Rig rig(&clusterer);
  rig.SeedWith(ClusteredData(64));
  ASSERT_TRUE(rig.engine->Bootstrap().ok());
  EXPECT_EQ(rig.engine->Place(BitVector(kBits + 1)).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace e2nvm::core
