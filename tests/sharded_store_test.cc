// ShardedStore unit tests: the shards=1 determinism contract (bit-identical
// placements, flips and retrain schedule vs a plain E2KvStore), merged
// stats across shards, shard-range containment, construction validation,
// and the ShardJournal append/replay protocol.

#include <unordered_map>

#include <gtest/gtest.h>

#include "core/shard_journal.h"
#include "core/sharded_store.h"
#include "core/store.h"
#include "workload/datasets.h"

namespace e2nvm::core {
namespace {

constexpr size_t kSegments = 128;  // Per shard.
constexpr size_t kBits = 256;
constexpr uint64_t kKeys = 48;

workload::BitDataset ClusteredData(uint64_t seed) {
  workload::ProtoConfig cfg;
  cfg.dim = kBits;
  cfg.num_classes = 4;
  cfg.samples = kSegments + 64;
  cfg.noise = 0.03;
  cfg.seed = seed;
  return workload::MakeProtoDataset(cfg);
}

StoreConfig ShardConfig(bool background_retrain = false) {
  StoreConfig sc;
  sc.num_segments = kSegments;
  sc.segment_bits = kBits;
  sc.model.k = 4;
  sc.model.pretrain_epochs = 2;
  sc.model.finetune_rounds = 1;
  sc.auto_retrain = true;
  sc.background_retrain = background_retrain;
  sc.retrain.min_free_per_cluster = 8;
  return sc;
}

std::unique_ptr<E2KvStore> MakePlainStore(const workload::BitDataset& ds,
                                          bool background_retrain = false) {
  auto store_or = E2KvStore::Create(ShardConfig(background_retrain));
  EXPECT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  EXPECT_TRUE(store->Bootstrap().ok());
  return store;
}

std::unique_ptr<ShardedStore> MakeSharded(const workload::BitDataset& ds,
                                          size_t num_shards,
                                          bool background_retrain = false,
                                          bool journal = false) {
  ShardedStoreConfig cfg;
  cfg.num_shards = num_shards;
  cfg.shard = ShardConfig(background_retrain);
  cfg.journal = journal;
  auto store_or = ShardedStore::Create(cfg);
  EXPECT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  EXPECT_TRUE(store->Bootstrap().ok());
  return store;
}

TEST(ShardedStore, OneShardIsBitIdenticalToPlainStore) {
  for (uint64_t seed : {2u, 11u}) {
    auto ds = ClusteredData(seed);
    auto plain = MakePlainStore(ds);
    auto sharded = MakeSharded(ds, /*num_shards=*/1);
    for (uint64_t i = 0; i < 300; ++i) {
      const auto& v = ds.items[i % ds.items.size()];
      ASSERT_TRUE(plain->Put(i % kKeys, v).ok()) << "seed " << seed;
      ASSERT_TRUE(sharded->Put(i % kKeys, v).ok()) << "seed " << seed;
    }
    E2KvStore& shard = sharded->shard(0);
    // Same final address for every key...
    for (uint64_t key = 0; key < kKeys; ++key) {
      EXPECT_EQ(plain->tree().Get(key), shard.tree().Get(key))
          << "seed " << seed << " key " << key;
    }
    // ...the same device activity bit for bit...
    EXPECT_EQ(plain->device().stats().writes,
              sharded->device().stats().writes);
    EXPECT_EQ(plain->device().stats().data_bits_flipped,
              sharded->device().stats().data_bits_flipped);
    EXPECT_EQ(plain->device().stats().dirty_lines,
              sharded->device().stats().dirty_lines);
    // ...and the same engine schedule (placements, fallbacks, retrains).
    EXPECT_EQ(plain->engine().stats().placements,
              shard.engine().stats().placements);
    EXPECT_EQ(plain->engine().stats().fallback_placements,
              shard.engine().stats().fallback_placements);
    EXPECT_EQ(plain->engine().stats().retrains,
              shard.engine().stats().retrains);
    EXPECT_GT(shard.engine().stats().retrains, 0u) << "seed " << seed;
  }
}

TEST(ShardedStore, OneShardBackgroundRetrainScheduleMatchesPlainStore) {
  // Drain each in-flight shadow training deterministically after every op
  // (the fastpath_equivalence_test pattern) so swaps land at the same
  // operation index on both sides.
  auto ds = ClusteredData(17);
  auto plain = MakePlainStore(ds, /*background_retrain=*/true);
  auto sharded = MakeSharded(ds, /*num_shards=*/1,
                             /*background_retrain=*/true);
  auto drain = [](E2KvStore& s) {
    while (s.engine().RetrainInFlight()) {
    }
    s.engine().PumpBackgroundRetrain();
  };
  for (uint64_t i = 0; i < 300; ++i) {
    const auto& v = ds.items[i % ds.items.size()];
    ASSERT_TRUE(plain->Put(i % kKeys, v).ok());
    ASSERT_TRUE(sharded->Put(i % kKeys, v).ok());
    drain(*plain);
    drain(sharded->shard(0));
    ASSERT_EQ(plain->engine().model_generation(),
              sharded->shard(0).engine().model_generation())
        << "op " << i;
  }
  EXPECT_GT(sharded->shard(0).engine().model_generation(), 0u);
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(plain->tree().Get(key), sharded->shard(0).tree().Get(key));
  }
  EXPECT_EQ(plain->device().stats().data_bits_flipped,
            sharded->device().stats().data_bits_flipped);
}

TEST(ShardedStore, SnapshotMergesEngineStatsAcrossShards) {
  auto ds = ClusteredData(5);
  auto sharded = MakeSharded(ds, /*num_shards=*/4);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(sharded->Put(i % 96, ds.items[i % ds.items.size()]).ok());
  }
  auto snap = sharded->TakeSnapshot();
  uint64_t placements = 0, releases = 0;
  size_t keys = 0;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    placements += sharded->shard(s).engine().stats().placements;
    releases += sharded->shard(s).engine().stats().releases;
    keys += sharded->shard(s).size();
  }
  EXPECT_EQ(snap.engine.placements, placements);
  EXPECT_EQ(snap.engine.releases, releases);
  EXPECT_EQ(snap.engine.placements, 200u);
  EXPECT_EQ(snap.keys, keys);
  EXPECT_EQ(snap.keys, sharded->size());
  EXPECT_EQ(snap.device.writes, sharded->device().stats().writes);
  EXPECT_GT(snap.total_pj, 0.0);
}

TEST(ShardedStore, ShardsPlaceOnlyInsideTheirSegmentRange) {
  auto ds = ClusteredData(7);
  auto sharded = MakeSharded(ds, /*num_shards=*/4);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(sharded->Put(i % 96, ds.items[i % ds.items.size()]).ok());
  }
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    const uint64_t first = sharded->shard(s).first_segment();
    EXPECT_EQ(first, s * kSegments);
    sharded->shard(s).tree().ForEach([&](uint64_t key, uint64_t addr) {
      EXPECT_EQ(sharded->ShardOf(key), s) << "key " << key;
      EXPECT_GE(addr, first) << "key " << key;
      EXPECT_LT(addr, first + kSegments) << "key " << key;
    });
  }
}

TEST(ShardedStore, RejectsInvalidConfigs) {
  ShardedStoreConfig cfg;
  cfg.num_shards = 0;
  EXPECT_FALSE(ShardedStore::Create(cfg).ok());
  cfg.num_shards = 2;
  cfg.shard = ShardConfig();
  cfg.shard.psi = 64;
  EXPECT_FALSE(ShardedStore::Create(cfg).ok());
}

TEST(ShardedStore, CreateShardValidatesAttachment) {
  StoreConfig sc = ShardConfig();
  nvm::DeviceConfig dc;
  dc.num_segments = kSegments;
  dc.segment_bits = kBits;
  nvm::EnergyMeter meter;
  nvm::NvmDevice device(dc, &meter);

  E2KvStore::ShardAttachment attach;
  EXPECT_FALSE(E2KvStore::CreateShard(sc, attach).ok());  // No device.
  attach.device = &device;
  attach.first_segment = 1;  // Range [1, 1+kSegments) overflows.
  EXPECT_FALSE(E2KvStore::CreateShard(sc, attach).ok());
  attach.first_segment = 0;
  sc.psi = 64;  // Start-Gap under a shard.
  EXPECT_FALSE(E2KvStore::CreateShard(sc, attach).ok());
  sc.psi = 0;
  EXPECT_TRUE(E2KvStore::CreateShard(sc, attach).ok());
}

TEST(ShardJournal, AppendsReplayInOrder) {
  auto j_or = ShardJournal::Create(/*capacity=*/16, /*max_value_bits=*/96);
  ASSERT_TRUE(j_or.ok());
  auto j = std::move(*j_or);
  EXPECT_EQ(j->count(), 0u);

  BitVector a = BitVector::FromString("1011");
  BitVector b(96);
  b.Set(0, true);
  b.Set(95, true);
  ASSERT_TRUE(j->Append(ShardJournal::Op::kPut, 7, a).ok());
  ASSERT_TRUE(j->Append(ShardJournal::Op::kPut, 9, b).ok());
  ASSERT_TRUE(j->Append(ShardJournal::Op::kDelete, 7, BitVector()).ok());
  EXPECT_EQ(j->count(), 3u);

  auto records_or = ShardJournal::ReplayImage(j->SnapshotImage());
  ASSERT_TRUE(records_or.ok());
  const auto& records = *records_or;
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].op, ShardJournal::Op::kPut);
  EXPECT_EQ(records[0].key, 7u);
  EXPECT_EQ(records[0].value, a);
  EXPECT_EQ(records[1].key, 9u);
  EXPECT_EQ(records[1].value, b);
  EXPECT_EQ(records[2].op, ShardJournal::Op::kDelete);
  EXPECT_TRUE(records[2].value.empty());
}

TEST(ShardJournal, RejectsOverflowAndOversizedValues) {
  auto j_or = ShardJournal::Create(/*capacity=*/2, /*max_value_bits=*/64);
  ASSERT_TRUE(j_or.ok());
  auto j = std::move(*j_or);
  BitVector wide(65);
  EXPECT_FALSE(j->Append(ShardJournal::Op::kPut, 1, wide).ok());
  BitVector v(64);
  ASSERT_TRUE(j->Append(ShardJournal::Op::kPut, 1, v).ok());
  ASSERT_TRUE(j->Append(ShardJournal::Op::kPut, 2, v).ok());
  EXPECT_FALSE(j->Append(ShardJournal::Op::kPut, 3, v).ok());
  EXPECT_EQ(j->count(), 2u);
}

// Slot geometry mirrored from the journal layout (SlotHeader = 4 u64
// fields, value words rounded up; header = 8 u64 fields) so tests can
// reach into a snapshot image and damage specific bytes.
constexpr size_t kJournalHeaderBytes = 8 * sizeof(uint64_t);
size_t SlotBytesFor(size_t max_value_bits) {
  return 4 * sizeof(uint64_t) + ((max_value_bits + 63) / 64) * 8;
}

TEST(ShardJournal, CheckpointReplacesHistoryWithFreshGeneration) {
  auto j_or = ShardJournal::Create(/*capacity=*/4, /*max_value_bits=*/64);
  ASSERT_TRUE(j_or.ok());
  auto j = std::move(*j_or);
  BitVector v(64);
  for (uint64_t k = 0; k < 4; ++k) {
    v.Set(static_cast<size_t>(k), true);
    ASSERT_TRUE(j->Append(ShardJournal::Op::kPut, k, v).ok());
  }
  EXPECT_EQ(j->Append(ShardJournal::Op::kPut, 9, v).code(),
            StatusCode::kResourceExhausted);

  // Checkpoint to the live state of just two keys.
  BitVector a = BitVector::FromString("101");
  BitVector b = BitVector::FromString("011");
  std::vector<ShardJournal::Record> live = {
      {ShardJournal::Op::kPut, 1, a}, {ShardJournal::Op::kPut, 3, b}};
  ASSERT_TRUE(j->Checkpoint(live).ok());
  EXPECT_EQ(j->count(), 2u);
  EXPECT_EQ(j->generation(), 1u);

  // The journal has room again and replays checkpoint + new appends.
  ASSERT_TRUE(j->Append(ShardJournal::Op::kDelete, 1, BitVector()).ok());
  auto records_or = ShardJournal::ReplayImage(j->SnapshotImage());
  ASSERT_TRUE(records_or.ok());
  ASSERT_EQ(records_or->size(), 3u);
  EXPECT_EQ((*records_or)[0].key, 1u);
  EXPECT_EQ((*records_or)[0].value, a);
  EXPECT_EQ((*records_or)[1].key, 3u);
  EXPECT_EQ((*records_or)[1].value, b);
  EXPECT_EQ((*records_or)[2].op, ShardJournal::Op::kDelete);

  // An oversized checkpoint is rejected.
  std::vector<ShardJournal::Record> big(
      5, ShardJournal::Record{ShardJournal::Op::kPut, 0, BitVector(8)});
  EXPECT_EQ(j->Checkpoint(big).code(), StatusCode::kResourceExhausted);
}

TEST(ShardJournal, MidLogCorruptionIsDetectedNotReplayed) {
  // The PR's acceptance scenario: a deliberately corrupted mid-log
  // record must fail its checksum and be quarantined (valid prefix
  // recovered, tail untrusted) instead of silently replaying garbage.
  constexpr size_t kBitsPerSlot = 64;
  auto j_or = ShardJournal::Create(/*capacity=*/8, kBitsPerSlot);
  ASSERT_TRUE(j_or.ok());
  auto j = std::move(*j_or);
  BitVector v(kBitsPerSlot);
  for (uint64_t k = 0; k < 5; ++k) {
    v.Set(static_cast<size_t>(k), true);
    ASSERT_TRUE(j->Append(ShardJournal::Op::kPut, k, v).ok());
  }
  const size_t slot_bytes = SlotBytesFor(kBitsPerSlot);
  auto image = j->SnapshotImage();
  // Rot one value byte of committed record #2 (of 5) on "media".
  const size_t slot2 =
      j->pool().root() + kJournalHeaderBytes + 2 * slot_bytes;
  image[slot2 + 4 * sizeof(uint64_t)] ^= 0x10;

  EXPECT_EQ(ShardJournal::ReplayImage(image).status().code(),
            StatusCode::kDataLoss);

  auto verified_or = ShardJournal::ReplayImageVerified(image);
  ASSERT_TRUE(verified_or.ok()) << verified_or.status().ToString();
  const auto& verified = *verified_or;
  EXPECT_TRUE(verified.corrupted);
  EXPECT_FALSE(verified.torn_tail);
  EXPECT_EQ(verified.first_bad_slot, 2u);
  EXPECT_EQ(verified.committed_count, 5u);
  ASSERT_EQ(verified.records.size(), 2u);  // The clean prefix.
  EXPECT_EQ(verified.records[0].key, 0u);
  EXPECT_EQ(verified.records[1].key, 1u);

  // The live journal's scrub face sees the same damage.
  auto* cells = static_cast<uint8_t*>(j->pool().Direct(
      j->pool().root() + kJournalHeaderBytes + 2 * slot_bytes));
  cells[4 * sizeof(uint64_t)] ^= 0x10;
  size_t scanned = 0;
  EXPECT_EQ(j->VerifySlots(&scanned), 1u);
  EXPECT_EQ(scanned, 5u);
}

TEST(ShardJournal, TornTailIsTruncatedCleanly) {
  constexpr size_t kBitsPerSlot = 64;
  auto j_or = ShardJournal::Create(/*capacity=*/8, kBitsPerSlot);
  ASSERT_TRUE(j_or.ok());
  auto j = std::move(*j_or);
  BitVector v(kBitsPerSlot);
  for (uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(j->Append(ShardJournal::Op::kPut, k, v).ok());
  }
  auto image = j->SnapshotImage();
  // Damage the LAST committed record: indistinguishable from a program
  // pulse torn by the crash itself, so replay truncates it.
  const size_t slot4 =
      j->pool().root() + kJournalHeaderBytes + 4 * SlotBytesFor(kBitsPerSlot);
  image[slot4 + 4 * sizeof(uint64_t)] ^= 0x01;

  auto records_or = ShardJournal::ReplayImage(image);
  ASSERT_TRUE(records_or.ok()) << records_or.status().ToString();
  EXPECT_EQ(records_or->size(), 4u);

  auto verified_or = ShardJournal::ReplayImageVerified(image);
  ASSERT_TRUE(verified_or.ok());
  EXPECT_TRUE(verified_or->torn_tail);
  EXPECT_FALSE(verified_or->corrupted);
  EXPECT_EQ(verified_or->first_bad_slot, 4u);
}

TEST(ShardedStore, FullJournalCheckpointsAndKeepsServing) {
  auto ds = ClusteredData(13);
  ShardedStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.shard = ShardConfig();
  cfg.journal = true;
  cfg.journal_capacity = 16;  // Tiny: updates must overflow it.
  auto store_or = ShardedStore::Create(cfg);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());

  // 10 distinct keys, 12 rounds of updates: 120 appends through
  // 16-slot journals — impossible without checkpoint-and-truncate.
  for (uint64_t round = 0; round < 12; ++round) {
    for (uint64_t key = 0; key < 10; ++key) {
      const auto& val = ds.items[(round * 10 + key) % ds.items.size()];
      ASSERT_TRUE(store->Put(key, val).ok())
          << "round " << round << " key " << key;
    }
  }
  ASSERT_TRUE(store->Delete(4).ok());

  auto snap = store->TakeSnapshot();
  EXPECT_GT(snap.journal_checkpoints, 0u);
  // Every journal shrank to live state + appends since its checkpoint,
  // and its replay still reconstructs the shard exactly.
  for (size_t s = 0; s < store->num_shards(); ++s) {
    EXPECT_LE(store->journal(s)->count(), cfg.journal_capacity);
    auto records_or =
        ShardJournal::ReplayImage(store->journal(s)->SnapshotImage());
    ASSERT_TRUE(records_or.ok());
    std::unordered_map<uint64_t, BitVector> replayed;
    for (const auto& r : *records_or) {
      if (r.op == ShardJournal::Op::kPut) {
        replayed[r.key] = r.value;
      } else {
        replayed.erase(r.key);
      }
    }
    EXPECT_EQ(replayed.size(), store->shard(s).size()) << "shard " << s;
    for (const auto& [key, value] : replayed) {
      auto got = store->Get(key);
      ASSERT_TRUE(got.ok()) << "key " << key;
      EXPECT_EQ(*got, value) << "key " << key;
    }
  }
}

TEST(ShardedStore, ScrubRepairsSilentBitRotFromJournalCopy) {
  auto ds = ClusteredData(21);
  ShardedStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.shard = ShardConfig();
  cfg.shard.integrity_tracking = true;
  cfg.journal = true;
  auto store_or = ShardedStore::Create(cfg);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());

  for (uint64_t key = 0; key < 16; ++key) {
    ASSERT_TRUE(store->Put(key, ds.items[key % ds.items.size()]).ok());
  }
  const uint64_t victim = 5;
  const BitVector want = *store->Get(victim);
  const size_t s = store->ShardOf(victim);
  const uint64_t addr = *store->shard(s).tree().Get(victim);
  const size_t seg_off =
      static_cast<size_t>(addr - store->shard(s).first_segment());

  // Silent in-array rot: three cells flip with no write, no stats.
  store->InjectBitRot(s, seg_off, 3);
  store->InjectBitRot(s, seg_off, 64);
  store->InjectBitRot(s, seg_off, 200);

  // One full sweep of the damaged shard finds and repairs it.
  store->ScrubShard(s, kSegments);
  auto scrub = store->TakeScrubStats();
  EXPECT_GE(scrub.mismatches, 1u);
  EXPECT_GE(scrub.repaired, 1u);
  EXPECT_EQ(scrub.quarantined, 0u);

  // The key moved to a clean segment and reads back exactly.
  auto got = store->Get(victim);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, want);
  EXPECT_NE(*store->shard(s).tree().Get(victim), addr);

  // A second sweep is quiet: the damage was restamped, not re-flagged.
  store->ScrubShard(s, kSegments);
  EXPECT_EQ(store->TakeScrubStats().repaired, scrub.repaired);
}

TEST(ShardedStore, ScrubQuarantinesWhenNoRedundantCopyExists) {
  auto ds = ClusteredData(23);
  ShardedStoreConfig cfg;
  cfg.num_shards = 1;
  cfg.shard = ShardConfig();
  cfg.shard.integrity_tracking = true;
  cfg.journal = false;  // No redundant copy to repair from.
  auto store_or = ShardedStore::Create(cfg);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(*store_or);
  store->Seed(ds);
  ASSERT_TRUE(store->Bootstrap().ok());
  for (uint64_t key = 0; key < 8; ++key) {
    ASSERT_TRUE(store->Put(key, ds.items[key % ds.items.size()]).ok());
  }
  const uint64_t addr = *store->shard(0).tree().Get(2);
  store->InjectBitRot(0, static_cast<size_t>(addr), 17);

  store->ScrubShard(0, kSegments);
  auto scrub = store->TakeScrubStats();
  EXPECT_GE(scrub.mismatches, 1u);
  EXPECT_GE(scrub.quarantined, 1u);
  EXPECT_EQ(scrub.repaired, 0u);
  EXPECT_TRUE(store->shard(0).controller().IsQuarantined(addr));
}

TEST(ShardedStore, JournaledShardsRecordEveryOperation) {
  auto ds = ClusteredData(9);
  auto sharded = MakeSharded(ds, /*num_shards=*/2,
                             /*background_retrain=*/false,
                             /*journal=*/true);
  for (uint64_t key = 0; key < 20; ++key) {
    ASSERT_TRUE(sharded->Put(key, ds.items[key % ds.items.size()]).ok());
  }
  ASSERT_TRUE(sharded->Delete(3).ok());
  size_t journaled = 0;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    ASSERT_NE(sharded->journal(s), nullptr);
    journaled += sharded->journal(s)->count();
  }
  EXPECT_EQ(journaled, 21u);  // 20 puts + 1 delete.
  // Replaying a shard's journal reproduces that shard's live key set.
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    auto records_or =
        ShardJournal::ReplayImage(sharded->journal(s)->SnapshotImage());
    ASSERT_TRUE(records_or.ok());
    std::unordered_map<uint64_t, BitVector> replayed;
    for (const auto& r : *records_or) {
      if (r.op == ShardJournal::Op::kPut) {
        replayed[r.key] = r.value;
      } else {
        replayed.erase(r.key);
      }
    }
    EXPECT_EQ(replayed.size(), sharded->shard(s).size());
    for (const auto& [key, value] : replayed) {
      auto got = sharded->Get(key);
      ASSERT_TRUE(got.ok()) << "key " << key;
      EXPECT_EQ(*got, value) << "key " << key;
    }
  }
}

}  // namespace
}  // namespace e2nvm::core
