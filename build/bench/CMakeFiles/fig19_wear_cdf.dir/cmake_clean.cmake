file(REMOVE_RECURSE
  "CMakeFiles/fig19_wear_cdf.dir/fig19_wear_cdf.cc.o"
  "CMakeFiles/fig19_wear_cdf.dir/fig19_wear_cdf.cc.o.d"
  "fig19_wear_cdf"
  "fig19_wear_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_wear_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
