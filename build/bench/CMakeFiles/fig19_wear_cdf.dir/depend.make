# Empty dependencies file for fig19_wear_cdf.
# This may be replaced when dependencies are built.
