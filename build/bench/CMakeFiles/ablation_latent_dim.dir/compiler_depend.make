# Empty compiler generated dependencies file for ablation_latent_dim.
# This may be replaced when dependencies are built.
