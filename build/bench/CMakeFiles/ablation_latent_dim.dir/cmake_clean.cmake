file(REMOVE_RECURSE
  "CMakeFiles/ablation_latent_dim.dir/ablation_latent_dim.cc.o"
  "CMakeFiles/ablation_latent_dim.dir/ablation_latent_dim.cc.o.d"
  "ablation_latent_dim"
  "ablation_latent_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latent_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
