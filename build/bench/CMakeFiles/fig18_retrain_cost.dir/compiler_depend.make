# Empty compiler generated dependencies file for fig18_retrain_cost.
# This may be replaced when dependencies are built.
