file(REMOVE_RECURSE
  "CMakeFiles/fig18_retrain_cost.dir/fig18_retrain_cost.cc.o"
  "CMakeFiles/fig18_retrain_cost.dir/fig18_retrain_cost.cc.o.d"
  "fig18_retrain_cost"
  "fig18_retrain_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_retrain_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
