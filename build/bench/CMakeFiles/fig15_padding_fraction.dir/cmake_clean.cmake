file(REMOVE_RECURSE
  "CMakeFiles/fig15_padding_fraction.dir/fig15_padding_fraction.cc.o"
  "CMakeFiles/fig15_padding_fraction.dir/fig15_padding_fraction.cc.o.d"
  "fig15_padding_fraction"
  "fig15_padding_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_padding_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
