# Empty dependencies file for fig15_padding_fraction.
# This may be replaced when dependencies are built.
