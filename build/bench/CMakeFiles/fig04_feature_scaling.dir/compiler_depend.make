# Empty compiler generated dependencies file for fig04_feature_scaling.
# This may be replaced when dependencies are built.
