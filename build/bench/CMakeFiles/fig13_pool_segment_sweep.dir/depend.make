# Empty dependencies file for fig13_pool_segment_sweep.
# This may be replaced when dependencies are built.
