file(REMOVE_RECURSE
  "CMakeFiles/fig11_ycsb_segment_size.dir/fig11_ycsb_segment_size.cc.o"
  "CMakeFiles/fig11_ycsb_segment_size.dir/fig11_ycsb_segment_size.cc.o.d"
  "fig11_ycsb_segment_size"
  "fig11_ycsb_segment_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ycsb_segment_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
