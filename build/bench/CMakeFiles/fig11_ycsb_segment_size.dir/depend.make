# Empty dependencies file for fig11_ycsb_segment_size.
# This may be replaced when dependencies are built.
