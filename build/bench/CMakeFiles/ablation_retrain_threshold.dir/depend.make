# Empty dependencies file for ablation_retrain_threshold.
# This may be replaced when dependencies are built.
