file(REMOVE_RECURSE
  "CMakeFiles/ablation_retrain_threshold.dir/ablation_retrain_threshold.cc.o"
  "CMakeFiles/ablation_retrain_threshold.dir/ablation_retrain_threshold.cc.o.d"
  "ablation_retrain_threshold"
  "ablation_retrain_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retrain_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
