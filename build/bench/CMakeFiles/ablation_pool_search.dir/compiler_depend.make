# Empty compiler generated dependencies file for ablation_pool_search.
# This may be replaced when dependencies are built.
