file(REMOVE_RECURSE
  "CMakeFiles/ablation_pool_search.dir/ablation_pool_search.cc.o"
  "CMakeFiles/ablation_pool_search.dir/ablation_pool_search.cc.o.d"
  "ablation_pool_search"
  "ablation_pool_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pool_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
