file(REMOVE_RECURSE
  "CMakeFiles/fig09_learning_curves.dir/fig09_learning_curves.cc.o"
  "CMakeFiles/fig09_learning_curves.dir/fig09_learning_curves.cc.o.d"
  "fig09_learning_curves"
  "fig09_learning_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_learning_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
