# Empty dependencies file for fig09_learning_curves.
# This may be replaced when dependencies are built.
