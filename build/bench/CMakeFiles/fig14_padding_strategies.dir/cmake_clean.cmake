file(REMOVE_RECURSE
  "CMakeFiles/fig14_padding_strategies.dir/fig14_padding_strategies.cc.o"
  "CMakeFiles/fig14_padding_strategies.dir/fig14_padding_strategies.cc.o.d"
  "fig14_padding_strategies"
  "fig14_padding_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_padding_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
