# Empty dependencies file for fig14_padding_strategies.
# This may be replaced when dependencies are built.
