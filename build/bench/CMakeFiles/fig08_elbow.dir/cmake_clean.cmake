file(REMOVE_RECURSE
  "CMakeFiles/fig08_elbow.dir/fig08_elbow.cc.o"
  "CMakeFiles/fig08_elbow.dir/fig08_elbow.cc.o.d"
  "fig08_elbow"
  "fig08_elbow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_elbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
