# Empty dependencies file for fig08_elbow.
# This may be replaced when dependencies are built.
