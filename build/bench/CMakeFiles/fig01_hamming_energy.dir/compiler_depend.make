# Empty compiler generated dependencies file for fig01_hamming_energy.
# This may be replaced when dependencies are built.
