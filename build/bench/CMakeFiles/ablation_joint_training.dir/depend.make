# Empty dependencies file for ablation_joint_training.
# This may be replaced when dependencies are built.
