file(REMOVE_RECURSE
  "CMakeFiles/ablation_joint_training.dir/ablation_joint_training.cc.o"
  "CMakeFiles/ablation_joint_training.dir/ablation_joint_training.cc.o.d"
  "ablation_joint_training"
  "ablation_joint_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_joint_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
