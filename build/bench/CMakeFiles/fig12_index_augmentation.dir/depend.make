# Empty dependencies file for fig12_index_augmentation.
# This may be replaced when dependencies are built.
