file(REMOVE_RECURSE
  "CMakeFiles/fig12_index_augmentation.dir/fig12_index_augmentation.cc.o"
  "CMakeFiles/fig12_index_augmentation.dir/fig12_index_augmentation.cc.o.d"
  "fig12_index_augmentation"
  "fig12_index_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_index_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
