file(REMOVE_RECURSE
  "CMakeFiles/fig10_bitflips_vs_baselines.dir/fig10_bitflips_vs_baselines.cc.o"
  "CMakeFiles/fig10_bitflips_vs_baselines.dir/fig10_bitflips_vs_baselines.cc.o.d"
  "fig10_bitflips_vs_baselines"
  "fig10_bitflips_vs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bitflips_vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
