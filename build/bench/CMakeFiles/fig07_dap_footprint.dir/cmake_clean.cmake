file(REMOVE_RECURSE
  "CMakeFiles/fig07_dap_footprint.dir/fig07_dap_footprint.cc.o"
  "CMakeFiles/fig07_dap_footprint.dir/fig07_dap_footprint.cc.o.d"
  "fig07_dap_footprint"
  "fig07_dap_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dap_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
