# Empty dependencies file for fig07_dap_footprint.
# This may be replaced when dependencies are built.
