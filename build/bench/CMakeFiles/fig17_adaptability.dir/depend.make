# Empty dependencies file for fig17_adaptability.
# This may be replaced when dependencies are built.
