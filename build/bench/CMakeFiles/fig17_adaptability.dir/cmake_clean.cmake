file(REMOVE_RECURSE
  "CMakeFiles/fig17_adaptability.dir/fig17_adaptability.cc.o"
  "CMakeFiles/fig17_adaptability.dir/fig17_adaptability.cc.o.d"
  "fig17_adaptability"
  "fig17_adaptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
