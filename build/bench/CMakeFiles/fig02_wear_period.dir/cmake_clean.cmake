file(REMOVE_RECURSE
  "CMakeFiles/fig02_wear_period.dir/fig02_wear_period.cc.o"
  "CMakeFiles/fig02_wear_period.dir/fig02_wear_period.cc.o.d"
  "fig02_wear_period"
  "fig02_wear_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_wear_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
