# Empty dependencies file for fig02_wear_period.
# This may be replaced when dependencies are built.
