# Empty dependencies file for indexes_test.
# This may be replaced when dependencies are built.
