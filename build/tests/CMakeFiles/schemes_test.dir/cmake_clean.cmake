file(REMOVE_RECURSE
  "CMakeFiles/schemes_test.dir/schemes_test.cc.o"
  "CMakeFiles/schemes_test.dir/schemes_test.cc.o.d"
  "schemes_test"
  "schemes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
