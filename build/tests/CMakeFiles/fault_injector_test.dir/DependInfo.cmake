
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_injector_test.cc" "tests/CMakeFiles/fault_injector_test.dir/fault_injector_test.cc.o" "gcc" "tests/CMakeFiles/fault_injector_test.dir/fault_injector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/e2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/e2_index.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/e2_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/e2_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/e2_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/e2_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/e2_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/e2_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/e2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
