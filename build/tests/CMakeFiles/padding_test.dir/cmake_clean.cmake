file(REMOVE_RECURSE
  "CMakeFiles/padding_test.dir/padding_test.cc.o"
  "CMakeFiles/padding_test.dir/padding_test.cc.o.d"
  "padding_test"
  "padding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
