file(REMOVE_RECURSE
  "CMakeFiles/vae_test.dir/vae_test.cc.o"
  "CMakeFiles/vae_test.dir/vae_test.cc.o.d"
  "vae_test"
  "vae_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vae_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
