# Empty dependencies file for placement_engine_test.
# This may be replaced when dependencies are built.
