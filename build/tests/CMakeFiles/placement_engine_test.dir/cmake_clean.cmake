file(REMOVE_RECURSE
  "CMakeFiles/placement_engine_test.dir/placement_engine_test.cc.o"
  "CMakeFiles/placement_engine_test.dir/placement_engine_test.cc.o.d"
  "placement_engine_test"
  "placement_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
