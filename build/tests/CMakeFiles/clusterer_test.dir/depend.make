# Empty dependencies file for clusterer_test.
# This may be replaced when dependencies are built.
