file(REMOVE_RECURSE
  "CMakeFiles/address_pool_test.dir/address_pool_test.cc.o"
  "CMakeFiles/address_pool_test.dir/address_pool_test.cc.o.d"
  "address_pool_test"
  "address_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
