file(REMOVE_RECURSE
  "libe2_workload.a"
)
