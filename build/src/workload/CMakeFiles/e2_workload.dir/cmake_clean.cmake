file(REMOVE_RECURSE
  "CMakeFiles/e2_workload.dir/datasets.cc.o"
  "CMakeFiles/e2_workload.dir/datasets.cc.o.d"
  "CMakeFiles/e2_workload.dir/trace.cc.o"
  "CMakeFiles/e2_workload.dir/trace.cc.o.d"
  "CMakeFiles/e2_workload.dir/ycsb.cc.o"
  "CMakeFiles/e2_workload.dir/ycsb.cc.o.d"
  "libe2_workload.a"
  "libe2_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
