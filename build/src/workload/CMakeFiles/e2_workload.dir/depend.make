# Empty dependencies file for e2_workload.
# This may be replaced when dependencies are built.
