file(REMOVE_RECURSE
  "libe2_placement.a"
)
