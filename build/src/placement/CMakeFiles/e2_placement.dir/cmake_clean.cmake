file(REMOVE_RECURSE
  "CMakeFiles/e2_placement.dir/clusterer.cc.o"
  "CMakeFiles/e2_placement.dir/clusterer.cc.o.d"
  "libe2_placement.a"
  "libe2_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
