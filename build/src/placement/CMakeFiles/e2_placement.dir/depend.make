# Empty dependencies file for e2_placement.
# This may be replaced when dependencies are built.
