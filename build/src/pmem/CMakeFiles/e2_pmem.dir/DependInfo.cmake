
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/allocator.cc" "src/pmem/CMakeFiles/e2_pmem.dir/allocator.cc.o" "gcc" "src/pmem/CMakeFiles/e2_pmem.dir/allocator.cc.o.d"
  "/root/repo/src/pmem/pool.cc" "src/pmem/CMakeFiles/e2_pmem.dir/pool.cc.o" "gcc" "src/pmem/CMakeFiles/e2_pmem.dir/pool.cc.o.d"
  "/root/repo/src/pmem/tx.cc" "src/pmem/CMakeFiles/e2_pmem.dir/tx.cc.o" "gcc" "src/pmem/CMakeFiles/e2_pmem.dir/tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
