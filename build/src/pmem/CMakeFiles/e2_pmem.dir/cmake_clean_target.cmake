file(REMOVE_RECURSE
  "libe2_pmem.a"
)
