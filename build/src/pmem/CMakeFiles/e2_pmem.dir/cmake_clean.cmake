file(REMOVE_RECURSE
  "CMakeFiles/e2_pmem.dir/allocator.cc.o"
  "CMakeFiles/e2_pmem.dir/allocator.cc.o.d"
  "CMakeFiles/e2_pmem.dir/pool.cc.o"
  "CMakeFiles/e2_pmem.dir/pool.cc.o.d"
  "CMakeFiles/e2_pmem.dir/tx.cc.o"
  "CMakeFiles/e2_pmem.dir/tx.cc.o.d"
  "libe2_pmem.a"
  "libe2_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
