# Empty compiler generated dependencies file for e2_pmem.
# This may be replaced when dependencies are built.
