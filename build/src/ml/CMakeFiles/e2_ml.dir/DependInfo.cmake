
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/e2_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/e2_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/layers.cc" "src/ml/CMakeFiles/e2_ml.dir/layers.cc.o" "gcc" "src/ml/CMakeFiles/e2_ml.dir/layers.cc.o.d"
  "/root/repo/src/ml/lstm.cc" "src/ml/CMakeFiles/e2_ml.dir/lstm.cc.o" "gcc" "src/ml/CMakeFiles/e2_ml.dir/lstm.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/e2_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/e2_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/pca.cc" "src/ml/CMakeFiles/e2_ml.dir/pca.cc.o" "gcc" "src/ml/CMakeFiles/e2_ml.dir/pca.cc.o.d"
  "/root/repo/src/ml/vae.cc" "src/ml/CMakeFiles/e2_ml.dir/vae.cc.o" "gcc" "src/ml/CMakeFiles/e2_ml.dir/vae.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
