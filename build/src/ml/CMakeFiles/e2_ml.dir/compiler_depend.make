# Empty compiler generated dependencies file for e2_ml.
# This may be replaced when dependencies are built.
