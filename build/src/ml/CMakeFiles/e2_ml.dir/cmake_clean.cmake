file(REMOVE_RECURSE
  "CMakeFiles/e2_ml.dir/kmeans.cc.o"
  "CMakeFiles/e2_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/e2_ml.dir/layers.cc.o"
  "CMakeFiles/e2_ml.dir/layers.cc.o.d"
  "CMakeFiles/e2_ml.dir/lstm.cc.o"
  "CMakeFiles/e2_ml.dir/lstm.cc.o.d"
  "CMakeFiles/e2_ml.dir/matrix.cc.o"
  "CMakeFiles/e2_ml.dir/matrix.cc.o.d"
  "CMakeFiles/e2_ml.dir/pca.cc.o"
  "CMakeFiles/e2_ml.dir/pca.cc.o.d"
  "CMakeFiles/e2_ml.dir/vae.cc.o"
  "CMakeFiles/e2_ml.dir/vae.cc.o.d"
  "libe2_ml.a"
  "libe2_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
