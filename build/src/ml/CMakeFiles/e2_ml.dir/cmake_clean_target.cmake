file(REMOVE_RECURSE
  "libe2_ml.a"
)
