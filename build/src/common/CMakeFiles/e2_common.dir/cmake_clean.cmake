file(REMOVE_RECURSE
  "CMakeFiles/e2_common.dir/bitvec.cc.o"
  "CMakeFiles/e2_common.dir/bitvec.cc.o.d"
  "CMakeFiles/e2_common.dir/histogram.cc.o"
  "CMakeFiles/e2_common.dir/histogram.cc.o.d"
  "CMakeFiles/e2_common.dir/rng.cc.o"
  "CMakeFiles/e2_common.dir/rng.cc.o.d"
  "CMakeFiles/e2_common.dir/status.cc.o"
  "CMakeFiles/e2_common.dir/status.cc.o.d"
  "libe2_common.a"
  "libe2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
