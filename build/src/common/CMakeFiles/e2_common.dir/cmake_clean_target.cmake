file(REMOVE_RECURSE
  "libe2_common.a"
)
