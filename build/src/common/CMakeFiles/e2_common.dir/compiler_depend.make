# Empty compiler generated dependencies file for e2_common.
# This may be replaced when dependencies are built.
