file(REMOVE_RECURSE
  "CMakeFiles/e2_index.dir/bptree.cc.o"
  "CMakeFiles/e2_index.dir/bptree.cc.o.d"
  "CMakeFiles/e2_index.dir/fptree.cc.o"
  "CMakeFiles/e2_index.dir/fptree.cc.o.d"
  "CMakeFiles/e2_index.dir/novelsm.cc.o"
  "CMakeFiles/e2_index.dir/novelsm.cc.o.d"
  "CMakeFiles/e2_index.dir/path_hashing.cc.o"
  "CMakeFiles/e2_index.dir/path_hashing.cc.o.d"
  "CMakeFiles/e2_index.dir/rbtree.cc.o"
  "CMakeFiles/e2_index.dir/rbtree.cc.o.d"
  "CMakeFiles/e2_index.dir/value_placer.cc.o"
  "CMakeFiles/e2_index.dir/value_placer.cc.o.d"
  "CMakeFiles/e2_index.dir/wisckey.cc.o"
  "CMakeFiles/e2_index.dir/wisckey.cc.o.d"
  "libe2_index.a"
  "libe2_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
