file(REMOVE_RECURSE
  "libe2_index.a"
)
