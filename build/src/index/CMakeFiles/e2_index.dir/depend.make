# Empty dependencies file for e2_index.
# This may be replaced when dependencies are built.
