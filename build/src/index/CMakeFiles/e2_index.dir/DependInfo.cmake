
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/bptree.cc" "src/index/CMakeFiles/e2_index.dir/bptree.cc.o" "gcc" "src/index/CMakeFiles/e2_index.dir/bptree.cc.o.d"
  "/root/repo/src/index/fptree.cc" "src/index/CMakeFiles/e2_index.dir/fptree.cc.o" "gcc" "src/index/CMakeFiles/e2_index.dir/fptree.cc.o.d"
  "/root/repo/src/index/novelsm.cc" "src/index/CMakeFiles/e2_index.dir/novelsm.cc.o" "gcc" "src/index/CMakeFiles/e2_index.dir/novelsm.cc.o.d"
  "/root/repo/src/index/path_hashing.cc" "src/index/CMakeFiles/e2_index.dir/path_hashing.cc.o" "gcc" "src/index/CMakeFiles/e2_index.dir/path_hashing.cc.o.d"
  "/root/repo/src/index/rbtree.cc" "src/index/CMakeFiles/e2_index.dir/rbtree.cc.o" "gcc" "src/index/CMakeFiles/e2_index.dir/rbtree.cc.o.d"
  "/root/repo/src/index/value_placer.cc" "src/index/CMakeFiles/e2_index.dir/value_placer.cc.o" "gcc" "src/index/CMakeFiles/e2_index.dir/value_placer.cc.o.d"
  "/root/repo/src/index/wisckey.cc" "src/index/CMakeFiles/e2_index.dir/wisckey.cc.o" "gcc" "src/index/CMakeFiles/e2_index.dir/wisckey.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/e2_nvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
