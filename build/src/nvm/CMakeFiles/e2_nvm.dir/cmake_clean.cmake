file(REMOVE_RECURSE
  "CMakeFiles/e2_nvm.dir/device.cc.o"
  "CMakeFiles/e2_nvm.dir/device.cc.o.d"
  "CMakeFiles/e2_nvm.dir/fault_injector.cc.o"
  "CMakeFiles/e2_nvm.dir/fault_injector.cc.o.d"
  "CMakeFiles/e2_nvm.dir/wear_leveler.cc.o"
  "CMakeFiles/e2_nvm.dir/wear_leveler.cc.o.d"
  "libe2_nvm.a"
  "libe2_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
