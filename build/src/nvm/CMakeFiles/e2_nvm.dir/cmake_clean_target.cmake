file(REMOVE_RECURSE
  "libe2_nvm.a"
)
