
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvm/device.cc" "src/nvm/CMakeFiles/e2_nvm.dir/device.cc.o" "gcc" "src/nvm/CMakeFiles/e2_nvm.dir/device.cc.o.d"
  "/root/repo/src/nvm/fault_injector.cc" "src/nvm/CMakeFiles/e2_nvm.dir/fault_injector.cc.o" "gcc" "src/nvm/CMakeFiles/e2_nvm.dir/fault_injector.cc.o.d"
  "/root/repo/src/nvm/wear_leveler.cc" "src/nvm/CMakeFiles/e2_nvm.dir/wear_leveler.cc.o" "gcc" "src/nvm/CMakeFiles/e2_nvm.dir/wear_leveler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
