# Empty compiler generated dependencies file for e2_nvm.
# This may be replaced when dependencies are built.
