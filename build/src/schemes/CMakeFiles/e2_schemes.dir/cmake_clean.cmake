file(REMOVE_RECURSE
  "CMakeFiles/e2_schemes.dir/schemes.cc.o"
  "CMakeFiles/e2_schemes.dir/schemes.cc.o.d"
  "libe2_schemes.a"
  "libe2_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
