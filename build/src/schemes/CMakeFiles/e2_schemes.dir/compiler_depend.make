# Empty compiler generated dependencies file for e2_schemes.
# This may be replaced when dependencies are built.
