file(REMOVE_RECURSE
  "libe2_schemes.a"
)
