file(REMOVE_RECURSE
  "CMakeFiles/e2_core.dir/address_pool.cc.o"
  "CMakeFiles/e2_core.dir/address_pool.cc.o.d"
  "CMakeFiles/e2_core.dir/batch.cc.o"
  "CMakeFiles/e2_core.dir/batch.cc.o.d"
  "CMakeFiles/e2_core.dir/e2_model.cc.o"
  "CMakeFiles/e2_core.dir/e2_model.cc.o.d"
  "CMakeFiles/e2_core.dir/elbow.cc.o"
  "CMakeFiles/e2_core.dir/elbow.cc.o.d"
  "CMakeFiles/e2_core.dir/padding.cc.o"
  "CMakeFiles/e2_core.dir/padding.cc.o.d"
  "CMakeFiles/e2_core.dir/placement_engine.cc.o"
  "CMakeFiles/e2_core.dir/placement_engine.cc.o.d"
  "CMakeFiles/e2_core.dir/retrain.cc.o"
  "CMakeFiles/e2_core.dir/retrain.cc.o.d"
  "CMakeFiles/e2_core.dir/store.cc.o"
  "CMakeFiles/e2_core.dir/store.cc.o.d"
  "libe2_core.a"
  "libe2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
