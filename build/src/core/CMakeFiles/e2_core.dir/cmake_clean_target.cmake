file(REMOVE_RECURSE
  "libe2_core.a"
)
