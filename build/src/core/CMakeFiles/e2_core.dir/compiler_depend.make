# Empty compiler generated dependencies file for e2_core.
# This may be replaced when dependencies are built.
