
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_pool.cc" "src/core/CMakeFiles/e2_core.dir/address_pool.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/address_pool.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/core/CMakeFiles/e2_core.dir/batch.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/batch.cc.o.d"
  "/root/repo/src/core/e2_model.cc" "src/core/CMakeFiles/e2_core.dir/e2_model.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/e2_model.cc.o.d"
  "/root/repo/src/core/elbow.cc" "src/core/CMakeFiles/e2_core.dir/elbow.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/elbow.cc.o.d"
  "/root/repo/src/core/padding.cc" "src/core/CMakeFiles/e2_core.dir/padding.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/padding.cc.o.d"
  "/root/repo/src/core/placement_engine.cc" "src/core/CMakeFiles/e2_core.dir/placement_engine.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/placement_engine.cc.o.d"
  "/root/repo/src/core/retrain.cc" "src/core/CMakeFiles/e2_core.dir/retrain.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/retrain.cc.o.d"
  "/root/repo/src/core/store.cc" "src/core/CMakeFiles/e2_core.dir/store.cc.o" "gcc" "src/core/CMakeFiles/e2_core.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/e2_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/e2_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/e2_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/e2_index.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/e2_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/e2_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
