# Empty compiler generated dependencies file for padding_tour.
# This may be replaced when dependencies are built.
