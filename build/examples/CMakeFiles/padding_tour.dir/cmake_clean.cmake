file(REMOVE_RECURSE
  "CMakeFiles/padding_tour.dir/padding_tour.cpp.o"
  "CMakeFiles/padding_tour.dir/padding_tour.cpp.o.d"
  "padding_tour"
  "padding_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padding_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
