# Empty compiler generated dependencies file for index_plugin.
# This may be replaced when dependencies are built.
