file(REMOVE_RECURSE
  "CMakeFiles/index_plugin.dir/index_plugin.cpp.o"
  "CMakeFiles/index_plugin.dir/index_plugin.cpp.o.d"
  "index_plugin"
  "index_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
