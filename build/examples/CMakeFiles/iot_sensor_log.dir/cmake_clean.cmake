file(REMOVE_RECURSE
  "CMakeFiles/iot_sensor_log.dir/iot_sensor_log.cpp.o"
  "CMakeFiles/iot_sensor_log.dir/iot_sensor_log.cpp.o.d"
  "iot_sensor_log"
  "iot_sensor_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_sensor_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
