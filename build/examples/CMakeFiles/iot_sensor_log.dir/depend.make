# Empty dependencies file for iot_sensor_log.
# This may be replaced when dependencies are built.
