#!/usr/bin/env python3
"""Compare two BENCH_*.json files and print per-metric regression ratios.

Usage:
    scripts/bench_ratio.py BASELINE.json CURRENT.json [options]

Typical use: compare a fresh build-perf run against the committed
baseline to spot regressions before updating the checked-in file:

    scripts/bench_ratio.py BENCH_ops.json build-perf/BENCH_ops.json
    scripts/bench_ratio.py BENCH_ops.json build-perf/BENCH_ops.json \
        --only 'ops_per_s|put_max_us_steady' --fail-worse 1.5

The two files are walked structurally: objects align by key, and lists
of objects align by their "name" field when present (so the
BENCH_workloads.json scenario matrix matches by scenario name even if
rows are reordered or added), falling back to index alignment. Every
numeric leaf present in both files yields one row:

    path                              baseline     current   ratio
    incremental_put.put_ops_per_s       2614.1      2782.8   1.065

The ratio is always current/baseline. Whether a ratio > 1 is good or
bad depends on the metric, so --fail-worse interprets direction from
the leaf key: throughput-like keys (ops_per_s, speedup_*) regress when
the ratio falls BELOW 1/factor; everything else (latencies, allocs,
flips, energy, counters) regresses when it rises ABOVE factor. Counter
metrics whose baseline is 0 cannot form a ratio and are reported as
"new"/"n/a" but never gated.

Stdlib only; exits 0 when no gated regression, 1 otherwise, 2 on bad
input.
"""

import argparse
import json
import re
import sys

# Leaf-key patterns where bigger numbers are better. Anything numeric
# that does not match is treated as smaller-is-better for gating.
HIGHER_IS_BETTER = re.compile(
    r"(ops_per_s|speedup|recovered_records|refine_steps)$"
)

# Environment facts, not measurements: never worth a ratio row.
SKIP_KEYS = {
    "hardware_concurrency", "simd_level", "pool_threads", "smoke",
    "seed", "undersubscribed",
}


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def align_lists(base, cur):
    """Pair list elements by "name" when both sides carry one."""
    def named(xs):
        return all(isinstance(x, dict) and "name" in x for x in xs)

    if named(base) and named(cur):
        cur_by_name = {x["name"]: x for x in cur}
        pairs, missing = [], []
        for b in base:
            c = cur_by_name.pop(b["name"], None)
            if c is None:
                missing.append(b["name"])
            else:
                pairs.append((str(b["name"]), b, c))
        return pairs, missing, sorted(cur_by_name)
    n = min(len(base), len(cur))
    return ([(str(i), base[i], cur[i]) for i in range(n)], [], [])


def walk(base, cur, path, rows, structure_notes):
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in base:
            if key in SKIP_KEYS:
                continue
            if key not in cur:
                structure_notes.append(f"dropped: {path}{key}")
                continue
            walk(base[key], cur[key], f"{path}{key}.", rows,
                 structure_notes)
        for key in cur:
            if key not in base and key not in SKIP_KEYS:
                structure_notes.append(f"new: {path}{key}")
    elif isinstance(base, list) and isinstance(cur, list):
        pairs, dropped, added = align_lists(base, cur)
        structure_notes.extend(f"dropped: {path}{n}" for n in dropped)
        structure_notes.extend(f"new: {path}{n}" for n in added)
        for name, b, c in pairs:
            walk(b, c, f"{path}{name}.", rows, structure_notes)
    elif is_number(base) and is_number(cur):
        rows.append((path.rstrip("."), float(base), float(cur)))


def leaf_key(path):
    return path.rsplit(".", 1)[-1]


def main(argv):
    ap = argparse.ArgumentParser(
        description="Print current/baseline ratios between two "
                    "BENCH_*.json files.")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--only", metavar="REGEX", default=None,
                    help="only report leaves whose path matches")
    ap.add_argument("--fail-worse", metavar="FACTOR", type=float,
                    default=None,
                    help="exit 1 if any reported metric is worse than "
                         "FACTOR x baseline (direction-aware)")
    args = ap.parse_args(argv)

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.current) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_ratio: {e}", file=sys.stderr)
        return 2

    rows, notes = [], []
    walk(base, cur, "", rows, notes)
    if args.only:
        sel = re.compile(args.only)
        rows = [r for r in rows if sel.search(r[0])]

    if not rows:
        print("bench_ratio: no comparable numeric leaves", file=sys.stderr)
        return 2

    width = max(len(p) for p, _, _ in rows)
    print(f"{'path':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    regressions = []
    for path, b, c in rows:
        if b == 0.0:
            ratio_s = "new" if c != 0.0 else "n/a"
        else:
            ratio = c / b
            ratio_s = f"{ratio:.3f}"
            if args.fail_worse is not None:
                better = HIGHER_IS_BETTER.search(leaf_key(path))
                worse = (ratio < 1.0 / args.fail_worse) if better \
                    else (ratio > args.fail_worse)
                if worse:
                    regressions.append((path, ratio))
        print(f"{path:<{width}}  {b:>12g}  {c:>12g}  {ratio_s}")

    for note in notes:
        print(f"  ({note})")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.fail_worse}x:", file=sys.stderr)
        for path, ratio in regressions:
            print(f"  {path}: {ratio:.3f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
