#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the test suite — first plain,
# then (unless SKIP_SANITIZE=1) again under ASan+UBSan, and finally the
# concurrency tests under TSan, via the E2NVM_SANITIZE CMake option.
# Run from anywhere inside the repo.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  local test_filter="$2"
  shift 2
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
    ${test_filter:+-R "$test_filter"}
}

echo "== plain build + ctest =="
run_suite "$repo_root/build" ""

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== sanitized build + ctest (ASan+UBSan) =="
  run_suite "$repo_root/build-sanitize" "" -DE2NVM_SANITIZE=ON

  echo "== concurrency tests under TSan =="
  run_suite "$repo_root/build-tsan" \
    "thread_pool|parallel_ml|background_retrain" -DE2NVM_SANITIZE=thread
fi

if [[ "${SKIP_PERF_SMOKE:-0}" != "1" ]]; then
  echo "== perf smoke (Release micro_ops, shortened pass) =="
  perf_dir="$repo_root/build-perf"
  cmake -B "$perf_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$perf_dir" -j "$jobs" --target micro_ops
  # Short store-ops pass; microbenchmarks are skipped via a filter that
  # matches nothing. Writes BENCH_ops.json into the build dir.
  (cd "$perf_dir" && E2NVM_OPS_SMOKE=1 \
    ./bench/micro_ops --benchmark_filter='NoSuchBenchmark')
  for key in serial_sync_retrain pooled_background_retrain batched_put \
             put_ops_per_s get_ops_per_s alloc_per_put; do
    if ! grep -q "\"$key\"" "$perf_dir/BENCH_ops.json"; then
      echo "perf smoke: key '$key' missing from BENCH_ops.json" >&2
      exit 1
    fi
  done
  echo "perf smoke OK"
fi

echo "All checks passed."
