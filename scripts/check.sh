#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the test suite — fast `unit`
# label first, then the long-running `stress` label, then (unless
# SKIP_SANITIZE=1) again under ASan+UBSan, and finally the concurrency
# tests under TSan, via the E2NVM_SANITIZE CMake option. Ends with a
# per-test timing summary of the plain run. Run from anywhere inside
# the repo.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
timing_log="$(mktemp)"
trap 'rm -f "$timing_log"' EXIT

build_tree() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j "$jobs"
}

run_ctest() {
  local build_dir="$1"
  shift
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" "$@" \
    | tee -a "$timing_log"
}

echo "== plain build =="
build_tree "$repo_root/build"
echo "== unit tests (native SIMD dispatch) =="
run_ctest "$repo_root/build" -L unit
echo "== unit tests (forced scalar kernels, E2NVM_SIMD=scalar) =="
E2NVM_SIMD=scalar run_ctest "$repo_root/build" -L unit
echo "== stress tests (oracle model check + concurrent shards + recovery fuzz) =="
# The recovery fuzzer runs its fixed-seed default budget (500 crash/fault
# scenarios) here; set E2NVM_FUZZ_ITERS for longer soak runs, e.g.
#   E2NVM_FUZZ_ITERS=20000 ctest --test-dir build -R recovery_fuzz
run_ctest "$repo_root/build" -L stress --timeout 600

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "== sanitized build + ctest (ASan+UBSan) =="
  build_tree "$repo_root/build-sanitize" -DE2NVM_SANITIZE=ON
  run_ctest "$repo_root/build-sanitize"

  echo "== concurrency tests under TSan =="
  build_tree "$repo_root/build-tsan" -DE2NVM_SANITIZE=thread
  run_ctest "$repo_root/build-tsan" --timeout 600 \
    -R "thread_pool|parallel_ml|background_retrain|incremental_learning|sharded_stress|sharded_store|store_model|workload_model|recovery_fuzz|energy_accounting|net_server"
fi

if [[ "${SKIP_PERF_SMOKE:-0}" != "1" ]]; then
  echo "== perf smoke (Release micro_ops, shortened pass) =="
  perf_dir="$repo_root/build-perf"
  cmake -B "$perf_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$perf_dir" -j "$jobs" --target micro_ops
  # Short store-ops pass; microbenchmarks are skipped via a filter that
  # matches nothing. Writes BENCH_ops.json into the build dir.
  (cd "$perf_dir" && E2NVM_OPS_SMOKE=1 \
    ./bench/micro_ops --benchmark_filter='NoSuchBenchmark')
  for key in serial_sync_retrain pooled_background_retrain batched_put \
             sharded_put incremental_put speedup_vs_pooled_put \
             put_ops_per_s get_ops_per_s alloc_per_put \
             alloc_per_put_steady warmup_allocs retrain_allocs \
             refine_allocs refine_steps put_max_us_steady \
             put_p999_us get_p50_us get_p99_us get_p999_us \
             undersubscribed hardware_concurrency simd_level; do
    if ! grep -q "\"$key\"" "$perf_dir/BENCH_ops.json"; then
      echo "perf smoke: key '$key' missing from BENCH_ops.json" >&2
      exit 1
    fi
  done
  # Speedup gate: on a multi-core box where the sharded section actually
  # had a core per client, the concurrent front-end must at least match
  # the single-store pooled path. On an oversubscribed run (more clients
  # than cores — e.g. a 1-core CI box) the figure measures the scheduler,
  # not the store, so the gate is skipped instead of recorded as a bogus
  # failure.
  hw="$(sed -nE 's/.*"hardware_concurrency": ([0-9]+).*/\1/p' \
          "$perf_dir/BENCH_ops.json" | head -1)"
  under="$(sed -nE 's/.*"undersubscribed": (true|false).*/\1/p' \
             "$perf_dir/BENCH_ops.json" | head -1)"
  speedup="$(sed -nE 's/.*"speedup_vs_pooled_put": ([0-9.]+).*/\1/p' \
               "$perf_dir/BENCH_ops.json" | head -1)"
  if [[ "$hw" -ge 2 && "$under" == "false" ]]; then
    if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 1.0) }'; then
      echo "perf smoke: sharded speedup_vs_pooled_put $speedup < 1.0" >&2
      exit 1
    fi
    echo "perf smoke: speedup gate OK (speedup_vs_pooled_put=$speedup)"
  else
    echo "perf smoke: speedup gate skipped (hw=$hw, undersubscribed=$under)"
  fi
  # Incremental-learning tail gate (§16): with replay-ring refinement on,
  # the worst PUT outside warmup and full-retrain epochs — refinement
  # steps included — must stay under 1 ms. The threshold is generous
  # (smoke runs sit well below half of it), and like the speedup gate it
  # self-disarms on a box where the run was timesliced rather than
  # measured, since a descheduled put inflates the max arbitrarily.
  steady_max="$(awk '
      /"incremental_put": \{/   { in_inc = 1 }
      in_inc && /"put_max_us_steady":/ { v = $2 + 0; print v; exit }' \
      "$perf_dir/BENCH_ops.json")"
  refines="$(awk '
      /"incremental_put": \{/   { in_inc = 1 }
      in_inc && /"refine_steps":/ { print $2 + 0; exit }' \
      "$perf_dir/BENCH_ops.json")"
  if ! awk -v r="$refines" 'BEGIN { exit !(r >= 1) }'; then
    echo "perf smoke: incremental_put recorded no refinement step" >&2
    exit 1
  fi
  if [[ "$hw" -ge 2 && "$under" == "false" ]]; then
    if ! awk -v s="$steady_max" 'BEGIN { exit !(s < 1000.0) }'; then
      echo "perf smoke: incremental put_max_us_steady $steady_max >= 1000" >&2
      exit 1
    fi
    echo "perf smoke: tail gate OK (put_max_us_steady=$steady_max us," \
         "refine_steps=$refines)"
  else
    echo "perf smoke: tail gate skipped (hw=$hw, undersubscribed=$under;" \
         "put_max_us_steady=$steady_max us, refine_steps=$refines)"
  fi
  echo "perf smoke OK"

  echo "== scaling smoke (1/2/4/8-shard sweep -> BENCH_scaling.json) =="
  (cd "$perf_dir" && E2NVM_OPS_SMOKE=1 E2NVM_OPS_SCALING_ONLY=1 \
    ./bench/micro_ops --benchmark_filter='NoSuchBenchmark')
  for key in points shards client_threads batch_size put_ops_per_s \
             get_ops_per_s put_p50_us put_p99_us put_p999_us \
             speedup_vs_1shard \
             undersubscribed hardware_concurrency; do
    if ! grep -q "\"$key\"" "$perf_dir/BENCH_scaling.json"; then
      echo "scaling smoke: key '$key' missing from BENCH_scaling.json" >&2
      exit 1
    fi
  done
  # Regression gate: every multi-shard point that genuinely had a core
  # per client must not scale BELOW the 1-shard baseline. Oversubscribed
  # points are reported but not gated (same reasoning as above).
  if ! awk -v hw="$hw" '
      /"shards":/            { s = $2 + 0 }
      /"speedup_vs_1shard":/ { sp = $2 + 0 }
      /"undersubscribed":/   { under = ($2 ~ /true/) }
      /^    \}/ {
        if (hw >= 2 && s > 1 && !under && sp < 1.0) {
          printf "scaling smoke: %d-shard speedup %.2f < 1.0\n", s, sp \
            > "/dev/stderr"
          bad = 1
        }
      }
      END { exit bad }' "$perf_dir/BENCH_scaling.json"; then
    exit 1
  fi
  echo "scaling smoke OK"

  echo "== chaos smoke (crash/fault/scrub sweep) =="
  cmake --build "$perf_dir" -j "$jobs" --target chaos_sweep
  # Exits nonzero on any recovered-prefix violation or undetected rot;
  # writes BENCH_chaos.json into the build dir.
  (cd "$perf_dir" && ./bench/chaos_sweep)
  for key in prefix_violations recovered_records recovery_latency_us_mean \
             scrub_mismatches scrub_repaired scrub_quarantined; do
    if ! grep -q "\"$key\"" "$perf_dir/BENCH_chaos.json"; then
      echo "chaos smoke: key '$key' missing from BENCH_chaos.json" >&2
      exit 1
    fi
  done
  echo "chaos smoke OK"

  echo "== net smoke (loopback server + closed/open-loop sweep) =="
  cmake --build "$perf_dir" -j "$jobs" --target net_sweep
  # Spins up the epoll server on an ephemeral loopback port, runs the
  # shortened closed-loop depth sweep + open-loop Poisson section, and
  # writes BENCH_net.json into the build dir. The binary itself exits
  # nonzero if any request failed or went unanswered, so a lossy server
  # cannot pass this stage.
  (cd "$perf_dir" && E2NVM_NET_SMOKE=1 ./bench/net_sweep)
  for key in workers shards value_bits pipeline_depth closed_loop \
             put_depth1 put_depth32 get_depth1 get_depth32 multi_put \
             ops_per_s p50_us p99_us p999_us \
             pipelined_put_speedup_vs_depth1 open_loop \
             offered_ops_per_s achieved_ops_per_s \
             dropped_requests failed_requests undersubscribed; do
    if ! grep -q "\"$key\"" "$perf_dir/BENCH_net.json"; then
      echo "net smoke: key '$key' missing from BENCH_net.json" >&2
      exit 1
    fi
  done
  # The pipelining gate stays armed even on undersubscribed boxes: the
  # depth-32/depth-1 ratio compares two equally timesliced runs, and the
  # win comes from syscall/wakeup amortization + per-shard write
  # batching, not from parallelism the machine may lack.
  net_speedup="$(sed -nE \
      's/.*"pipelined_put_speedup_vs_depth1": ([0-9.]+).*/\1/p' \
      "$perf_dir/BENCH_net.json" | head -1)"
  if ! awk -v s="$net_speedup" 'BEGIN { exit !(s >= 2.0) }'; then
    echo "net smoke: pipelined PUT speedup $net_speedup < 2.0" >&2
    exit 1
  fi
  echo "net smoke OK (pipelined_put_speedup_vs_depth1=$net_speedup)"

  echo "== workload smoke (scenario matrix -> BENCH_workloads.json) =="
  cmake --build "$perf_dir" -j "$jobs" --target workload_sweep
  # Runs the shortened scenario matrix (skew / YCSB mixes / churn /
  # drift / mixed-width / net front-end). The binary itself exits
  # nonzero when any operation fails or the store's final key count
  # disagrees with the generator, so a lossy scenario cannot pass.
  (cd "$perf_dir" && E2NVM_WORKLOAD_SMOKE=1 ./bench/workload_sweep)
  for key in scenarios zipf_theta churn_fraction drift_period pad \
             reads updates inserts deletes scans scan_misses failed_ops \
             live_keys store_keys ops_per_s flips_per_bit pj_per_write \
             total_pj retrains background_retrains refine_steps \
             incremental undersubscribed; do
    if ! grep -q "\"$key\"" "$perf_dir/BENCH_workloads.json"; then
      echo "workload smoke: key '$key' missing from BENCH_workloads.json" >&2
      exit 1
    fi
  done
  for name in zipf_0.50 zipf_0.80 zipf_0.99 ycsb_a ycsb_b ycsb_c ycsb_d \
              ycsb_e ycsb_f churn drift drift_incremental width_zero \
              width_one width_random width_input width_dataset \
              width_memory net_ycsb_a; do
    if ! grep -q "\"name\": \"$name\"" "$perf_dir/BENCH_workloads.json"; then
      echo "workload smoke: scenario '$name' missing" >&2
      exit 1
    fi
  done
  # Drift gate: the phase-shifted scenario must actually have fired at
  # least one background retrain (the §5.3 adaptability loop end-to-end).
  if ! awk '
      /"name":/ { in_drift = ($0 ~ /"drift"/) }
      in_drift && /"background_retrains":/ { bg = $2 + 0; found = 1 }
      END { exit !(found && bg >= 1) }' \
      "$perf_dir/BENCH_workloads.json"; then
    echo "workload smoke: drift scenario recorded no background retrain" >&2
    exit 1
  fi
  # Incremental drift gate (§16): the same drifting stream with replay-
  # ring refinement on must absorb the drift entirely inline — at least
  # one refinement step, and not a single full retrain (foreground or
  # background). This is deliberately a separate gate from the one above:
  # `drift` proves the escalation path still works end-to-end, while
  # `drift_incremental` proves refinement makes escalation unnecessary.
  if ! awk '
      /"name":/ { in_inc = ($0 ~ /"drift_incremental"/) }
      in_inc && /"refine_steps":/         { rs = $2 + 0; found = 1 }
      in_inc && /"retrains":/             { rt = $2 + 0 }
      in_inc && /"background_retrains":/  { bg = $2 + 0 }
      END { exit !(found && rs >= 1 && rt == 0 && bg == 0) }' \
      "$perf_dir/BENCH_workloads.json"; then
    echo "workload smoke: drift_incremental gate failed" \
         "(want refine_steps >= 1 and zero full retrains)" >&2
    exit 1
  fi
  # Determinism anchor: zipf_0.99 and ycsb_a are the same scenario run
  # twice from scratch; their (seed-deterministic) flips_per_bit must
  # match bit-for-bit.
  if ! awk '
      /"name":/ { cur = $2 }
      /"flips_per_bit":/ {
        if (cur == "\"zipf_0.99\",") a = $2 + 0
        if (cur == "\"ycsb_a\",") b = $2 + 0
      }
      END { exit !(a == b && a > 0) }' \
      "$perf_dir/BENCH_workloads.json"; then
    echo "workload smoke: determinism anchor broken (zipf_0.99 vs ycsb_a)" >&2
    exit 1
  fi
  echo "workload smoke OK"
fi

echo "== slowest tests =="
sed -nE 's@^ *[0-9]+/[0-9]+ Test +#[0-9]+: +([A-Za-z0-9_]+) .* (Passed|\*\*\*[A-Za-z]+) +([0-9.]+) sec.*@\3 \1@p' \
    "$timing_log" \
  | sort -rn | head -10 | awk '{printf "%8.2f s  %s\n", $1, $2}'

echo "All checks passed."
