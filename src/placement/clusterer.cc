#include "placement/clusterer.h"

namespace e2nvm::placement {

Status RawKMeansClusterer::Train(const ml::Matrix& contents) {
  E2_RETURN_IF_ERROR(kmeans_.Fit(contents));
  train_flops_ = kmeans_.FitFlops(contents.rows());
  return Status::Ok();
}

size_t RawKMeansClusterer::PredictCluster(
    const std::vector<float>& features) {
  return kmeans_.Predict(features.data(), features.size());
}

Status PcaKMeansClusterer::Train(const ml::Matrix& contents) {
  E2_RETURN_IF_ERROR(pca_.Fit(contents));
  ml::Matrix projected = pca_.Transform(contents);
  E2_RETURN_IF_ERROR(kmeans_.Fit(projected));
  train_flops_ =
      pca_.FitFlops(contents.rows()) + kmeans_.FitFlops(contents.rows());
  return Status::Ok();
}

size_t PcaKMeansClusterer::PredictCluster(
    const std::vector<float>& features) {
  std::vector<float> projected =
      pca_.TransformOne(features.data(), features.size());
  return kmeans_.Predict(projected.data(), projected.size());
}

}  // namespace e2nvm::placement
