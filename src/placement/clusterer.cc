#include "placement/clusterer.h"

namespace e2nvm::placement {

void ContentClusterer::AssignScratch(ml::InferenceScratch* scratch) {
  // Reference fallback: row-by-row PredictCluster. Allocates per row;
  // models on the write path override this with a batched scratch
  // kernel. Kept as the behavioral definition the overrides must match.
  const size_t n = scratch->in.rows();
  const size_t dim = scratch->in.cols();
  scratch->clusters.resize(n);
  for (size_t r = 0; r < n; ++r) {
    const float* row = scratch->in.Row(r);
    std::vector<float> features(row, row + dim);
    scratch->clusters[r] = PredictCluster(features);
  }
}

Status RawKMeansClusterer::Train(const ml::Matrix& contents) {
  E2_RETURN_IF_ERROR(kmeans_.Fit(contents));
  train_flops_ = kmeans_.FitFlops(contents.rows());
  return Status::Ok();
}

size_t RawKMeansClusterer::PredictCluster(
    const std::vector<float>& features) {
  return kmeans_.Predict(features.data(), features.size());
}

Status PcaKMeansClusterer::Train(const ml::Matrix& contents) {
  E2_RETURN_IF_ERROR(pca_.Fit(contents));
  ml::Matrix projected = pca_.Transform(contents);
  E2_RETURN_IF_ERROR(kmeans_.Fit(projected));
  train_flops_ =
      pca_.FitFlops(contents.rows()) + kmeans_.FitFlops(contents.rows());
  return Status::Ok();
}

size_t PcaKMeansClusterer::PredictCluster(
    const std::vector<float>& features) {
  std::vector<float> projected =
      pca_.TransformOne(features.data(), features.size());
  return kmeans_.Predict(projected.data(), projected.size());
}

}  // namespace e2nvm::placement
