#ifndef E2NVM_PLACEMENT_CLUSTERER_H_
#define E2NVM_PLACEMENT_CLUSTERER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ml/inference.h"
#include "ml/kmeans.h"
#include "ml/matrix.h"
#include "ml/pca.h"

namespace e2nvm::placement {

/// The common abstraction behind every memory-aware placement policy in
/// the paper: a model trained on the bit contents of memory segments that
/// maps any content vector to a cluster of similar contents.
///
/// Implementations:
///  - SingleClusterer     — k=1; degenerates to arbitrary placement (the
///                          Fig 10 "k=1" baseline, equivalent to plain DCW);
///  - RawKMeansClusterer  — PNW [26] mode 1: K-means directly on bits;
///  - PcaKMeansClusterer  — PNW [26] mode 2: PCA then K-means;
///  - core::E2Model       — the paper's contribution: VAE + K-means,
///                          optionally jointly fine-tuned.
class ContentClusterer {
 public:
  virtual ~ContentClusterer() = default;

  virtual std::string_view name() const = 0;

  /// A fresh, untrained clusterer with this one's configuration — the
  /// shadow model a background retrain trains and then swaps in while
  /// the original keeps serving predictions (§4.1.4: retraining runs
  /// "in the background").
  virtual std::unique_ptr<ContentClusterer> CloneUntrained() const = 0;

  /// Trains (or re-trains) on segment contents, one row per segment.
  virtual Status Train(const ml::Matrix& contents) = 0;

  /// Maps a content vector (0/1 floats, length = input dim) to a cluster.
  virtual size_t PredictCluster(const std::vector<float>& features) = 0;

  /// Write-path inference: assigns every feature row staged in
  /// scratch->in to a cluster, filling scratch->clusters (one id per
  /// row). Results must be identical to calling PredictCluster on each
  /// row; the base implementation does exactly that (allocating).
  /// Hot-path models override it with a zero-allocation batched kernel
  /// (one encoder GEMM + one fused assignment for the whole batch).
  virtual void AssignScratch(ml::InferenceScratch* scratch);

  virtual size_t num_clusters() const = 0;

  /// Multiply-accumulates of one PredictCluster call (prediction-latency
  /// and CPU-energy accounting, Figs 4 and 10).
  virtual double PredictFlops() const = 0;

  /// Multiply-accumulates consumed by the most recent Train call.
  virtual double LastTrainFlops() const = 0;

  /// Incremental refinement support (DESIGN.md §16): PartialFit applies
  /// a cheap mini-batch update to the *current* parameters from recently
  /// written contents, instead of a from-scratch Train — the engine's
  /// replay-ring refinement steps run through it. Models that support it
  /// override all three members; engines fall back to full retrains for
  /// the rest. PartialFit must keep the determinism contract: the
  /// post-update model is a pure function of (pre-update model, batch),
  /// independent of the installed compute pool.
  virtual bool SupportsPartialFit() const { return false; }
  virtual Status PartialFit(const ml::Matrix& batch) {
    (void)batch;
    return Status::Unimplemented("clusterer has no incremental update");
  }
  /// Multiply-accumulates of the most recent successful PartialFit call.
  virtual double LastPartialFitFlops() const { return 0; }
};

/// k = 1: every segment is in the single cluster; placement degenerates to
/// "first free address".
class SingleClusterer : public ContentClusterer {
 public:
  std::string_view name() const override { return "single"; }
  std::unique_ptr<ContentClusterer> CloneUntrained() const override {
    return std::make_unique<SingleClusterer>();
  }
  Status Train(const ml::Matrix& contents) override {
    return Status::Ok();
  }
  size_t PredictCluster(const std::vector<float>& features) override {
    return 0;
  }
  void AssignScratch(ml::InferenceScratch* scratch) override {
    scratch->clusters.assign(scratch->in.rows(), 0);
  }
  size_t num_clusters() const override { return 1; }
  double PredictFlops() const override { return 0; }
  double LastTrainFlops() const override { return 0; }
};

/// PNW mode 1: K-means directly on the raw bit features. Accurate but its
/// cost scales linearly with the bit width, which is why the paper finds
/// it infeasible beyond a few thousand features (Fig 4).
class RawKMeansClusterer : public ContentClusterer {
 public:
  RawKMeansClusterer(size_t k, uint64_t seed = 42, int max_iters = 50,
                     double tol = 1e-4)
      : kmeans_({.k = k, .max_iters = max_iters, .tol = tol,
                 .seed = seed}) {}

  std::string_view name() const override { return "PNW-kmeans"; }
  std::unique_ptr<ContentClusterer> CloneUntrained() const override {
    const ml::KMeansConfig& c = kmeans_.config();
    return std::make_unique<RawKMeansClusterer>(c.k, c.seed, c.max_iters,
                                                c.tol);
  }
  Status Train(const ml::Matrix& contents) override;
  size_t PredictCluster(const std::vector<float>& features) override;
  void AssignScratch(ml::InferenceScratch* scratch) override {
    kmeans_.AssignFusedInto(scratch->in, &scratch->scores,
                            &scratch->clusters);
  }
  size_t num_clusters() const override { return kmeans_.k(); }
  double PredictFlops() const override { return kmeans_.PredictFlops(); }
  double LastTrainFlops() const override { return train_flops_; }
  /// Mini-batch k-means directly on the bits (warm-started counts from
  /// the last Fit; see ml::KMeans::PartialFit).
  bool SupportsPartialFit() const override { return true; }
  Status PartialFit(const ml::Matrix& batch) override {
    E2_RETURN_IF_ERROR(kmeans_.PartialFit(batch));
    partial_fit_flops_ = kmeans_.PartialFitFlops(batch.rows());
    return Status::Ok();
  }
  double LastPartialFitFlops() const override { return partial_fit_flops_; }

 private:
  ml::KMeans kmeans_;
  double train_flops_ = 0;
  double partial_fit_flops_ = 0;
};

/// DATACON-style placement (Song et al. [48]): the memory controller
/// redirects each write toward regions whose cells are predominantly
/// zeros or predominantly ones, matching the incoming content's polarity.
/// Modeled as a density clusterer: `k` buckets over the fraction of 1
/// bits. Training is trivial (no model), prediction is a popcount — the
/// cheapest possible content-awareness, and the natural midpoint between
/// arbitrary placement and PNW/E2-NVM.
class DensityClusterer : public ContentClusterer {
 public:
  explicit DensityClusterer(size_t k = 2) : k_(k) {}

  std::string_view name() const override { return "DATACON"; }
  std::unique_ptr<ContentClusterer> CloneUntrained() const override {
    return std::make_unique<DensityClusterer>(k_);
  }
  Status Train(const ml::Matrix& contents) override {
    return Status::Ok();
  }
  size_t PredictCluster(const std::vector<float>& features) override {
    double ones = 0;
    for (float f : features) ones += f >= 0.5f ? 1.0 : 0.0;
    double frac = features.empty()
                      ? 0.0
                      : ones / static_cast<double>(features.size());
    size_t bucket = static_cast<size_t>(frac * static_cast<double>(k_));
    return bucket >= k_ ? k_ - 1 : bucket;
  }
  void AssignScratch(ml::InferenceScratch* scratch) override {
    const size_t n = scratch->in.rows();
    const size_t dim = scratch->in.cols();
    scratch->clusters.resize(n);
    for (size_t r = 0; r < n; ++r) {
      const float* row = scratch->in.Row(r);
      double ones = 0;
      for (size_t i = 0; i < dim; ++i) ones += row[i] >= 0.5f ? 1.0 : 0.0;
      double frac = dim == 0 ? 0.0 : ones / static_cast<double>(dim);
      size_t bucket = static_cast<size_t>(frac * static_cast<double>(k_));
      scratch->clusters[r] = bucket >= k_ ? k_ - 1 : bucket;
    }
  }
  size_t num_clusters() const override { return k_; }
  double PredictFlops() const override { return 2.0; }  // A popcount.
  double LastTrainFlops() const override { return 0; }

 private:
  size_t k_;
};

/// PNW mode 2: PCA to `components` dimensions, then K-means in the
/// projected space. Cheaper at high dimensionality but loses information
/// (more bit flips than mode 1 — the Fig 4 trade-off).
class PcaKMeansClusterer : public ContentClusterer {
 public:
  PcaKMeansClusterer(size_t k, size_t components, uint64_t seed = 42,
                     int max_iters = 50)
      : pca_({.num_components = components, .seed = seed}),
        kmeans_({.k = k, .max_iters = max_iters, .seed = seed}) {}

  std::string_view name() const override { return "PNW-pca"; }
  std::unique_ptr<ContentClusterer> CloneUntrained() const override {
    return std::make_unique<PcaKMeansClusterer>(
        kmeans_.config().k, pca_.config().num_components,
        kmeans_.config().seed, kmeans_.config().max_iters);
  }
  Status Train(const ml::Matrix& contents) override;
  size_t PredictCluster(const std::vector<float>& features) override;
  size_t num_clusters() const override { return kmeans_.k(); }
  double PredictFlops() const override {
    return pca_.TransformFlops() + kmeans_.PredictFlops();
  }
  double LastTrainFlops() const override { return train_flops_; }

 private:
  ml::Pca pca_;
  ml::KMeans kmeans_;
  double train_flops_ = 0;
};

}  // namespace e2nvm::placement

#endif  // E2NVM_PLACEMENT_CLUSTERER_H_
