#include "index/bptree.h"

#include <algorithm>

namespace e2nvm::index {

BpTreeKv::BpTreeKv(nvm::MemoryController* ctrl, const Config& config)
    : ctrl_(ctrl), config_(config) {}

StatusOr<uint64_t> BpTreeKv::AllocLeafSlots() {
  if (!free_leaf_bases_.empty()) {
    uint64_t base = free_leaf_bases_.back();
    free_leaf_bases_.pop_back();
    return base;
  }
  if (bump_ + config_.leaf_capacity > ctrl_->num_logical()) {
    return Status::ResourceExhausted("B+Tree out of leaf segments");
  }
  uint64_t base = bump_;
  bump_ += config_.leaf_capacity;
  return base;
}

size_t BpTreeKv::FindLeaf(uint64_t key) const {
  // Last leaf whose first key is <= key (or leaf 0).
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    uint64_t first =
        leaves_[mid].keys.empty() ? 0 : leaves_[mid].keys.front();
    if (first <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

void BpTreeKv::ShiftUp(Leaf& leaf, size_t pos) {
  // Move entries [pos, n) one slot up, last first. Each move is a real
  // differential NVM write of one value over another.
  for (size_t j = leaf.keys.size(); j > pos; --j) {
    BitVector moving =
        ctrl_->Peek(leaf.base_slot + j - 1).Slice(0, config_.value_bits);
    MergeWrite(*ctrl_, leaf.base_slot + j, moving);
  }
}

void BpTreeKv::ShiftDown(Leaf& leaf, size_t pos) {
  for (size_t j = pos; j + 1 < leaf.keys.size(); ++j) {
    BitVector moving =
        ctrl_->Peek(leaf.base_slot + j + 1).Slice(0, config_.value_bits);
    MergeWrite(*ctrl_, leaf.base_slot + j, moving);
  }
}

Status BpTreeKv::SplitLeaf(size_t leaf_idx) {
  E2_ASSIGN_OR_RETURN(uint64_t new_base, AllocLeafSlots());
  Leaf& old_leaf = leaves_[leaf_idx];
  size_t half = old_leaf.keys.size() / 2;
  Leaf new_leaf;
  new_leaf.base_slot = new_base;
  // Physically copy the upper half into the new leaf's slots.
  for (size_t j = half; j < old_leaf.keys.size(); ++j) {
    BitVector moving =
        ctrl_->Peek(old_leaf.base_slot + j).Slice(0, config_.value_bits);
    MergeWrite(*ctrl_, new_base + (j - half), moving);
    new_leaf.keys.push_back(old_leaf.keys[j]);
  }
  old_leaf.keys.resize(half);
  leaves_.insert(leaves_.begin() + static_cast<std::ptrdiff_t>(leaf_idx) + 1,
                 std::move(new_leaf));
  return Status::Ok();
}

Status BpTreeKv::Put(uint64_t key, const BitVector& value) {
  if (value.size() != config_.value_bits) {
    return Status::InvalidArgument("value width mismatch");
  }
  if (leaves_.empty()) {
    E2_ASSIGN_OR_RETURN(uint64_t base, AllocLeafSlots());
    leaves_.push_back(Leaf{base, {}});
  }
  size_t li = FindLeaf(key);
  Leaf* leaf = &leaves_[li];
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) {
    // Update in place: no movement.
    size_t pos = static_cast<size_t>(it - leaf->keys.begin());
    MergeWrite(*ctrl_, leaf->base_slot + pos, value);
    return Status::Ok();
  }
  if (leaf->keys.size() == config_.leaf_capacity) {
    E2_RETURN_IF_ERROR(SplitLeaf(li));
    li = FindLeaf(key);
    leaf = &leaves_[li];
    it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  }
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  ShiftUp(*leaf, pos);
  MergeWrite(*ctrl_, leaf->base_slot + pos, value);
  leaf->keys.insert(it, key);
  ++size_;
  return Status::Ok();
}

StatusOr<BitVector> BpTreeKv::Get(uint64_t key) {
  if (leaves_.empty()) return Status::NotFound("empty tree");
  const Leaf& leaf = leaves_[FindLeaf(key)];
  auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  if (it == leaf.keys.end() || *it != key) {
    return Status::NotFound("key not found");
  }
  size_t pos = static_cast<size_t>(it - leaf.keys.begin());
  return ctrl_->Read(leaf.base_slot + pos).Slice(0, config_.value_bits);
}

Status BpTreeKv::Delete(uint64_t key) {
  if (leaves_.empty()) return Status::NotFound("empty tree");
  size_t li = FindLeaf(key);
  Leaf& leaf = leaves_[li];
  auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  if (it == leaf.keys.end() || *it != key) {
    return Status::NotFound("key not found");
  }
  size_t pos = static_cast<size_t>(it - leaf.keys.begin());
  ShiftDown(leaf, pos);
  leaf.keys.erase(it);
  --size_;
  if (leaf.keys.empty() && leaves_.size() > 1) {
    free_leaf_bases_.push_back(leaf.base_slot);
    leaves_.erase(leaves_.begin() + static_cast<std::ptrdiff_t>(li));
  }
  return Status::Ok();
}

std::vector<std::pair<uint64_t, BitVector>> BpTreeKv::Scan(uint64_t start,
                                                           size_t count) {
  std::vector<std::pair<uint64_t, BitVector>> out;
  if (leaves_.empty()) return out;
  for (size_t li = FindLeaf(start); li < leaves_.size() && out.size() < count;
       ++li) {
    const Leaf& leaf = leaves_[li];
    for (size_t j = 0; j < leaf.keys.size() && out.size() < count; ++j) {
      if (leaf.keys[j] < start) continue;
      out.emplace_back(
          leaf.keys[j],
          ctrl_->Read(leaf.base_slot + j).Slice(0, config_.value_bits));
    }
  }
  return out;
}

}  // namespace e2nvm::index
