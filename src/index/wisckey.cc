#include "index/wisckey.h"

namespace e2nvm::index {

WisckeyKv::WisckeyKv(nvm::MemoryController* ctrl, const Config& config)
    : ctrl_(ctrl), config_(config) {
  slot_owner_.assign(config_.log_slots, kFree);
}

StatusOr<uint64_t> WisckeyKv::NextSlot() {
  if (live_ahead_ >= config_.log_slots) {
    E2_RETURN_IF_ERROR(CollectGarbage());
    if (live_ahead_ >= config_.log_slots) {
      return Status::ResourceExhausted("value log full of live data");
    }
  }
  uint64_t slot = head_;
  head_ = (head_ + 1) % config_.log_slots;
  ++live_ahead_;
  return slot;
}

Status WisckeyKv::CollectGarbage() {
  ++gc_passes_;
  // Reclaim the oldest region; live values found there are re-appended
  // (the WiscKey vLog GC protocol).
  std::vector<std::pair<uint64_t, BitVector>> relocate;
  size_t region = std::min<size_t>(config_.gc_region, config_.log_slots);
  for (size_t i = 0; i < region; ++i) {
    uint64_t slot = (tail_ + i) % config_.log_slots;
    uint64_t owner = slot_owner_[slot];
    if (owner != kFree) {
      auto it = key_to_slot_.find(owner);
      if (it != key_to_slot_.end() && it->second == slot) {
        relocate.emplace_back(
            owner, ctrl_->Peek(slot).Slice(0, config_.value_bits));
      }
      slot_owner_[slot] = kFree;
    }
  }
  tail_ = (tail_ + region) % config_.log_slots;
  live_ahead_ -= std::min<uint64_t>(live_ahead_, region);

  for (auto& [key, value] : relocate) {
    E2_ASSIGN_OR_RETURN(uint64_t slot, NextSlot());
    MergeWrite(*ctrl_, slot, value);
    slot_owner_[slot] = key;
    key_to_slot_[key] = slot;
    ++gc_relocations_;
  }
  return Status::Ok();
}

Status WisckeyKv::Put(uint64_t key, const BitVector& value) {
  if (value.size() != config_.value_bits) {
    return Status::InvalidArgument("value width mismatch");
  }
  E2_ASSIGN_OR_RETURN(uint64_t slot, NextSlot());
  MergeWrite(*ctrl_, slot, value);
  // The previous version's slot (if any) becomes garbage implicitly.
  auto it = key_to_slot_.find(key);
  if (it != key_to_slot_.end()) {
    slot_owner_[it->second] = kFree;
  }
  slot_owner_[slot] = key;
  key_to_slot_[key] = slot;
  return Status::Ok();
}

StatusOr<BitVector> WisckeyKv::Get(uint64_t key) {
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end()) return Status::NotFound("key not found");
  return ctrl_->Read(it->second).Slice(0, config_.value_bits);
}

Status WisckeyKv::Delete(uint64_t key) {
  auto it = key_to_slot_.find(key);
  if (it == key_to_slot_.end()) return Status::NotFound("key not found");
  slot_owner_[it->second] = kFree;
  key_to_slot_.erase(it);
  return Status::Ok();
}

}  // namespace e2nvm::index
