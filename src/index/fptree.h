#ifndef E2NVM_INDEX_FPTREE_H_
#define E2NVM_INDEX_FPTREE_H_

#include <cstdint>
#include <vector>

#include "index/nvm_index.h"
#include "index/value_placer.h"
#include "nvm/controller.h"

namespace e2nvm::index {

/// FP-Tree-style B-tree (Oukid et al. [45]): leaves are *unsorted* slot
/// arrays guarded by a bitmap and one-byte key fingerprints, so an insert
/// writes exactly one value slot (no sorted shifting), a delete clears a
/// bitmap bit (no movement), and only splits copy values. This is the
/// design FPTree uses to be persistent-memory friendly; comparing its
/// measured flips with BpTreeKv isolates the cost of sorted leaves.
///
/// Inner routing and the fingerprint array are DRAM-resident (FPTree
/// keeps inner nodes in DRAM by design; fingerprints are one byte per
/// entry and contribute negligibly to flips).
class FpTreeKv : public NvmKvIndex {
 public:
  struct Config {
    size_t leaf_capacity = 16;
    size_t value_bits = 2048;
  };

  FpTreeKv(nvm::MemoryController* ctrl, const Config& config);

  std::string_view name() const override { return "FPTree"; }
  Status Put(uint64_t key, const BitVector& value) override;
  StatusOr<BitVector> Get(uint64_t key) override;
  Status Delete(uint64_t key) override;
  size_t size() const override { return size_; }

  size_t num_leaves() const { return leaves_.size(); }

 private:
  struct Leaf {
    uint64_t base_slot;
    uint64_t min_key = 0;
    std::vector<bool> bitmap;        // Slot occupancy.
    std::vector<uint8_t> fps;        // Fingerprints per slot.
    std::vector<uint64_t> slot_keys; // Full keys per slot (DRAM shadow).
  };

  size_t FindLeaf(uint64_t key) const;
  StatusOr<uint64_t> AllocLeafSlots();
  Status SplitLeaf(size_t leaf_idx);
  static uint8_t Fingerprint(uint64_t key);

  nvm::MemoryController* ctrl_;
  Config config_;
  std::vector<Leaf> leaves_;  // Sorted by min_key.
  uint64_t bump_ = 0;
  std::vector<uint64_t> free_leaf_bases_;
  size_t size_ = 0;
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_FPTREE_H_
