#include "index/path_hashing.h"

#include "common/rng.h"

namespace e2nvm::index {

size_t PathHashingKv::TotalCells(const Config& config) {
  size_t total = 0;
  for (size_t l = 0; l < config.levels; ++l) {
    size_t cells = config.root_cells >> l;
    if (cells == 0) break;
    total += cells;
  }
  return total;
}

PathHashingKv::PathHashingKv(nvm::MemoryController* ctrl,
                             const Config& config)
    : ctrl_(ctrl), config_(config) {
  size_t offset = 0;
  for (size_t l = 0; l < config_.levels; ++l) {
    size_t cells = config_.root_cells >> l;
    if (cells == 0) {
      config_.levels = l;
      break;
    }
    level_offset_.push_back(offset);
    offset += cells;
  }
  cells_.resize(offset);
}

size_t PathHashingKv::Candidate(uint64_t key, size_t level) const {
  uint64_t salted = key ^ (0x9E3779B97F4A7C15ull * (level + 1));
  uint64_t h = Fnv1a64(&salted, sizeof(salted));
  size_t cells = config_.root_cells >> level;
  return level_offset_[level] + (h & (cells - 1));
}

std::optional<size_t> PathHashingKv::FindCell(uint64_t key) const {
  for (size_t l = 0; l < config_.levels; ++l) {
    size_t c = Candidate(key, l);
    if (cells_[c].occupied && cells_[c].key == key) return c;
  }
  return std::nullopt;
}

Status PathHashingKv::Put(uint64_t key, const BitVector& value) {
  if (value.size() != config_.value_bits) {
    return Status::InvalidArgument("value width mismatch");
  }
  // Update in place if present.
  if (auto cell = FindCell(key)) {
    MergeWrite(*ctrl_, *cell, value);
    return Status::Ok();
  }
  // First unoccupied candidate along the path.
  for (size_t l = 0; l < config_.levels; ++l) {
    size_t c = Candidate(key, l);
    if (!cells_[c].occupied) {
      cells_[c].occupied = true;
      cells_[c].key = key;
      MergeWrite(*ctrl_, c, value);
      ++size_;
      return Status::Ok();
    }
  }
  return Status::ResourceExhausted("path hashing: all candidates occupied");
}

StatusOr<BitVector> PathHashingKv::Get(uint64_t key) {
  auto cell = FindCell(key);
  if (!cell) return Status::NotFound("key not found");
  return ctrl_->Read(*cell).Slice(0, config_.value_bits);
}

Status PathHashingKv::Delete(uint64_t key) {
  auto cell = FindCell(key);
  if (!cell) return Status::NotFound("key not found");
  cells_[*cell].occupied = false;  // Flag reset only; no movement.
  --size_;
  return Status::Ok();
}

}  // namespace e2nvm::index
