#include "index/fptree.h"

#include <algorithm>

#include "common/rng.h"

namespace e2nvm::index {

FpTreeKv::FpTreeKv(nvm::MemoryController* ctrl, const Config& config)
    : ctrl_(ctrl), config_(config) {}

uint8_t FpTreeKv::Fingerprint(uint64_t key) {
  return static_cast<uint8_t>(Fnv1a64(&key, sizeof(key)) & 0xFF);
}

StatusOr<uint64_t> FpTreeKv::AllocLeafSlots() {
  if (!free_leaf_bases_.empty()) {
    uint64_t base = free_leaf_bases_.back();
    free_leaf_bases_.pop_back();
    return base;
  }
  if (bump_ + config_.leaf_capacity > ctrl_->num_logical()) {
    return Status::ResourceExhausted("FPTree out of leaf segments");
  }
  uint64_t base = bump_;
  bump_ += config_.leaf_capacity;
  return base;
}

size_t FpTreeKv::FindLeaf(uint64_t key) const {
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (leaves_[mid].min_key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

Status FpTreeKv::SplitLeaf(size_t leaf_idx) {
  E2_ASSIGN_OR_RETURN(uint64_t new_base, AllocLeafSlots());
  Leaf& old_leaf = leaves_[leaf_idx];

  // Median key splits the unsorted leaf.
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < config_.leaf_capacity; ++i) {
    if (old_leaf.bitmap[i]) keys.push_back(old_leaf.slot_keys[i]);
  }
  std::sort(keys.begin(), keys.end());
  uint64_t median = keys[keys.size() / 2];

  Leaf new_leaf;
  new_leaf.base_slot = new_base;
  new_leaf.min_key = median;
  new_leaf.bitmap.assign(config_.leaf_capacity, false);
  new_leaf.fps.assign(config_.leaf_capacity, 0);
  new_leaf.slot_keys.assign(config_.leaf_capacity, 0);

  size_t next = 0;
  for (size_t i = 0; i < config_.leaf_capacity; ++i) {
    if (!old_leaf.bitmap[i] || old_leaf.slot_keys[i] < median) continue;
    // Copy the value segment into the new leaf (a real NVM write), then
    // clear the old slot's bitmap bit (no movement in the old leaf).
    BitVector moving =
        ctrl_->Peek(old_leaf.base_slot + i).Slice(0, config_.value_bits);
    MergeWrite(*ctrl_, new_base + next, moving);
    new_leaf.bitmap[next] = true;
    new_leaf.fps[next] = Fingerprint(old_leaf.slot_keys[i]);
    new_leaf.slot_keys[next] = old_leaf.slot_keys[i];
    ++next;
    old_leaf.bitmap[i] = false;
  }
  leaves_.insert(leaves_.begin() + static_cast<std::ptrdiff_t>(leaf_idx) + 1,
                 std::move(new_leaf));
  return Status::Ok();
}

Status FpTreeKv::Put(uint64_t key, const BitVector& value) {
  if (value.size() != config_.value_bits) {
    return Status::InvalidArgument("value width mismatch");
  }
  if (leaves_.empty()) {
    E2_ASSIGN_OR_RETURN(uint64_t base, AllocLeafSlots());
    Leaf leaf;
    leaf.base_slot = base;
    leaf.min_key = 0;
    leaf.bitmap.assign(config_.leaf_capacity, false);
    leaf.fps.assign(config_.leaf_capacity, 0);
    leaf.slot_keys.assign(config_.leaf_capacity, 0);
    leaves_.push_back(std::move(leaf));
  }
  size_t li = FindLeaf(key);
  Leaf* leaf = &leaves_[li];
  uint8_t fp = Fingerprint(key);

  // Fingerprint-guided search for an existing entry.
  for (size_t i = 0; i < config_.leaf_capacity; ++i) {
    if (leaf->bitmap[i] && leaf->fps[i] == fp &&
        leaf->slot_keys[i] == key) {
      MergeWrite(*ctrl_, leaf->base_slot + i, value);  // In-place update.
      return Status::Ok();
    }
  }
  // First free slot; split if full.
  auto first_free = [&]() -> std::optional<size_t> {
    for (size_t i = 0; i < config_.leaf_capacity; ++i) {
      if (!leaf->bitmap[i]) return i;
    }
    return std::nullopt;
  };
  auto slot = first_free();
  if (!slot) {
    E2_RETURN_IF_ERROR(SplitLeaf(li));
    li = FindLeaf(key);
    leaf = &leaves_[li];
    slot = first_free();
    if (!slot) return Status::Internal("no free slot after split");
  }
  MergeWrite(*ctrl_, leaf->base_slot + *slot, value);
  leaf->bitmap[*slot] = true;
  leaf->fps[*slot] = fp;
  leaf->slot_keys[*slot] = key;
  ++size_;
  return Status::Ok();
}

StatusOr<BitVector> FpTreeKv::Get(uint64_t key) {
  if (leaves_.empty()) return Status::NotFound("empty tree");
  const Leaf& leaf = leaves_[FindLeaf(key)];
  uint8_t fp = Fingerprint(key);
  for (size_t i = 0; i < config_.leaf_capacity; ++i) {
    if (leaf.bitmap[i] && leaf.fps[i] == fp && leaf.slot_keys[i] == key) {
      return ctrl_->Read(leaf.base_slot + i).Slice(0, config_.value_bits);
    }
  }
  return Status::NotFound("key not found");
}

Status FpTreeKv::Delete(uint64_t key) {
  if (leaves_.empty()) return Status::NotFound("empty tree");
  Leaf& leaf = leaves_[FindLeaf(key)];
  uint8_t fp = Fingerprint(key);
  for (size_t i = 0; i < config_.leaf_capacity; ++i) {
    if (leaf.bitmap[i] && leaf.fps[i] == fp && leaf.slot_keys[i] == key) {
      leaf.bitmap[i] = false;  // Bitmap clear; no value movement.
      --size_;
      return Status::Ok();
    }
  }
  return Status::NotFound("key not found");
}

}  // namespace e2nvm::index
