#ifndef E2NVM_INDEX_NVM_INDEX_H_
#define E2NVM_INDEX_NVM_INDEX_H_

#include <cstdint>
#include <string_view>

#include "common/bitvec.h"
#include "common/status.h"

namespace e2nvm::index {

/// Common interface of the NVM-resident key-value structures compared in
/// Fig 12 (B+-Tree [9], Path Hashing [54], FP-Tree [45], WiscKey [35],
/// NoveLSM [25]). Each implementation exists in two modes:
///
///  - *native*: values live inline in the structure's own NVM layout,
///    so structural maintenance (sorted-leaf shifting, splits, log
///    appends, LSM flush/compaction) rewrites value segments — the write
///    pattern that determines each structure's bit-flip profile;
///  - *augmented* ("plugged into E2-NVM"): the structure keeps key ->
///    address pointers in DRAM and delegates every value write to a
///    ValuePlacer, so E2-NVM chooses a similar-content segment and
///    structural maintenance moves only pointers.
class NvmKvIndex {
 public:
  virtual ~NvmKvIndex() = default;

  virtual std::string_view name() const = 0;

  /// Inserts or updates.
  virtual Status Put(uint64_t key, const BitVector& value) = 0;

  /// Point lookup.
  virtual StatusOr<BitVector> Get(uint64_t key) = 0;

  /// Removes a key.
  virtual Status Delete(uint64_t key) = 0;

  /// Number of live keys.
  virtual size_t size() const = 0;
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_NVM_INDEX_H_
