#ifndef E2NVM_INDEX_PATH_HASHING_H_
#define E2NVM_INDEX_PATH_HASHING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "index/nvm_index.h"
#include "index/value_placer.h"
#include "nvm/controller.h"

namespace e2nvm::index {

/// Path Hashing (Zuo & Hua [54]): a write-friendly NVM hash scheme. The
/// table is an inverted complete binary tree of cells: a key hashes to a
/// root-level cell and, on collision, may fall through to one of the
/// log-depth "path" cells below it. No insertion ever moves an existing
/// item (unlike cuckoo displacement), which is exactly its write-friendly
/// property: each PUT writes one value segment.
///
/// Levels: level 0 has `root_cells` cells; level l has root_cells >> l,
/// down to `levels - 1`. A key's candidate at level l is derived from a
/// per-level hash; the first unoccupied candidate wins.
class PathHashingKv : public NvmKvIndex {
 public:
  struct Config {
    size_t root_cells = 1024;  // Power of two.
    size_t levels = 5;
    size_t value_bits = 2048;
  };

  PathHashingKv(nvm::MemoryController* ctrl, const Config& config);

  std::string_view name() const override { return "PathHashing"; }
  Status Put(uint64_t key, const BitVector& value) override;
  StatusOr<BitVector> Get(uint64_t key) override;
  Status Delete(uint64_t key) override;
  size_t size() const override { return size_; }

  /// Total cells across levels (device must have at least this many
  /// logical segments).
  static size_t TotalCells(const Config& config);

 private:
  struct Cell {
    bool occupied = false;
    uint64_t key = 0;
  };

  /// Global cell index of `key`'s candidate at `level`.
  size_t Candidate(uint64_t key, size_t level) const;
  std::optional<size_t> FindCell(uint64_t key) const;

  nvm::MemoryController* ctrl_;
  Config config_;
  std::vector<Cell> cells_;
  std::vector<size_t> level_offset_;
  size_t size_ = 0;
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_PATH_HASHING_H_
