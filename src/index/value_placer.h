#ifndef E2NVM_INDEX_VALUE_PLACER_H_
#define E2NVM_INDEX_VALUE_PLACER_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "nvm/controller.h"

namespace e2nvm::index {

/// The seam through which a data structure's *value writes* reach NVM.
/// Native structures call WriteAt on slots they own; structures that
/// delegate placement call Place/Release and keep only the returned
/// address. E2-NVM augmentation (Fig 12) is implemented by handing an
/// index a placer backed by core::PlacementEngine instead of the
/// arbitrary one.
class ValuePlacer {
 public:
  virtual ~ValuePlacer() = default;

  virtual std::string_view name() const = 0;

  /// Writes `value` to a free segment of the placer's choosing and
  /// returns its logical address.
  virtual StatusOr<uint64_t> Place(const BitVector& value) = 0;

  /// Places `values` as if Place were called on each in order, appending
  /// one address per value to `addrs`. On error, the addresses already
  /// appended belong to the values placed before the failure. The base
  /// implementation is the sequential loop; placers with a batched
  /// model (core::PlacementEngine) override it to run the inference for
  /// the whole batch at once — with identical resulting placements.
  virtual Status PlaceMany(const std::vector<const BitVector*>& values,
                           std::vector<uint64_t>* addrs);

  /// Returns an address to the free pool (its stale content remains in
  /// the cells, as on a real device).
  virtual Status Release(uint64_t addr) = 0;

  /// Reads the first `bits` bits of the value stored at `addr`.
  virtual BitVector Read(uint64_t addr, size_t bits) = 0;

  /// Overwrites the first value.size() bits at `addr` in place
  /// (differential write through the controller's scheme).
  virtual Status WriteAt(uint64_t addr, const BitVector& value) = 0;

  /// Addresses still available for Place.
  virtual size_t FreeCount() const = 0;
};

/// First-free placement over a MemoryController — models the "arbitrary
/// location" behavior of prior systems (§1: "new data items select an
/// arbitrary location in memory").
class ArbitraryPlacer : public ValuePlacer {
 public:
  /// All logical segments of `ctrl` in [first_segment, first_segment +
  /// num_segments) start free.
  ArbitraryPlacer(nvm::MemoryController* ctrl, uint64_t first_segment,
                  size_t num_segments);

  std::string_view name() const override { return "arbitrary"; }
  StatusOr<uint64_t> Place(const BitVector& value) override;
  Status Release(uint64_t addr) override;
  BitVector Read(uint64_t addr, size_t bits) override;
  Status WriteAt(uint64_t addr, const BitVector& value) override;
  size_t FreeCount() const override { return free_.size(); }

 private:
  nvm::MemoryController* ctrl_;
  std::deque<uint64_t> free_;
};

/// Merges `value` into the logical content at `addr` (bits [0,
/// value.size()) replaced, the rest preserved) and writes it through the
/// controller. Shared by every placer and native index.
nvm::WriteResult MergeWrite(nvm::MemoryController& ctrl, uint64_t addr,
                            const BitVector& value);

/// MergeWrite into a caller-owned scratch result: the full-width case —
/// the PUT fast path — runs allocation-free (WriteScheme::WriteInto
/// reuse contract); the narrow case still peeks/overlays a temporary.
void MergeWriteInto(nvm::MemoryController& ctrl, uint64_t addr,
                    const BitVector& value, nvm::WriteResult* out);

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_VALUE_PLACER_H_
