#include "index/rbtree.h"

#include <utility>

namespace e2nvm::index {

RbTree::~RbTree() { DestroySubtree(root_); }

RbTree::RbTree(RbTree&& other) noexcept
    : root_(other.root_), size_(other.size_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

RbTree& RbTree::operator=(RbTree&& other) noexcept {
  if (this != &other) {
    DestroySubtree(root_);
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void RbTree::DestroySubtree(Node* n) {
  if (n == nullptr) return;
  DestroySubtree(n->left);
  DestroySubtree(n->right);
  delete n;
}

RbTree::Node* RbTree::Find(uint64_t key) const {
  Node* cur = root_;
  while (cur != nullptr) {
    if (key == cur->key) return cur;
    cur = key < cur->key ? cur->left : cur->right;
  }
  return nullptr;
}

void RbTree::RotateLeft(Node* x) {
  Node* y = x->right;
  x->right = y->left;
  if (y->left != nullptr) y->left->parent = x;
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->left) {
    x->parent->left = y;
  } else {
    x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
}

void RbTree::RotateRight(Node* x) {
  Node* y = x->left;
  x->left = y->right;
  if (y->right != nullptr) y->right->parent = x;
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->right) {
    x->parent->right = y;
  } else {
    x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
}

bool RbTree::Put(uint64_t key, uint64_t value) {
  Node* parent = nullptr;
  Node* cur = root_;
  while (cur != nullptr) {
    parent = cur;
    if (key == cur->key) {
      cur->value = value;
      return false;
    }
    cur = key < cur->key ? cur->left : cur->right;
  }
  Node* z = new Node{key, value};
  z->parent = parent;
  if (parent == nullptr) {
    root_ = z;
  } else if (key < parent->key) {
    parent->left = z;
  } else {
    parent->right = z;
  }
  ++size_;
  InsertFixup(z);
  return true;
}

void RbTree::InsertFixup(Node* z) {
  while (z->parent != nullptr && z->parent->color == kRed) {
    Node* gp = z->parent->parent;
    if (z->parent == gp->left) {
      Node* uncle = gp->right;
      if (uncle != nullptr && uncle->color == kRed) {
        z->parent->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        z = gp;
      } else {
        if (z == z->parent->right) {
          z = z->parent;
          RotateLeft(z);
        }
        z->parent->color = kBlack;
        gp->color = kRed;
        RotateRight(gp);
      }
    } else {
      Node* uncle = gp->left;
      if (uncle != nullptr && uncle->color == kRed) {
        z->parent->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        z = gp;
      } else {
        if (z == z->parent->left) {
          z = z->parent;
          RotateRight(z);
        }
        z->parent->color = kBlack;
        gp->color = kRed;
        RotateLeft(gp);
      }
    }
  }
  root_->color = kBlack;
}

std::optional<uint64_t> RbTree::Get(uint64_t key) const {
  Node* n = Find(key);
  if (n == nullptr) return std::nullopt;
  return n->value;
}

RbTree::Node* RbTree::Minimum(Node* n) {
  while (n->left != nullptr) n = n->left;
  return n;
}

void RbTree::Transplant(Node* u, Node* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) v->parent = u->parent;
}

std::optional<uint64_t> RbTree::Erase(uint64_t key) {
  Node* z = Find(key);
  if (z == nullptr) return std::nullopt;
  uint64_t out = z->value;

  Node* y = z;
  Color y_original = y->color;
  Node* x = nullptr;
  Node* x_parent = nullptr;
  if (z->left == nullptr) {
    x = z->right;
    x_parent = z->parent;
    Transplant(z, z->right);
  } else if (z->right == nullptr) {
    x = z->left;
    x_parent = z->parent;
    Transplant(z, z->left);
  } else {
    y = Minimum(z->right);
    y_original = y->color;
    x = y->right;
    if (y->parent == z) {
      x_parent = y;
    } else {
      x_parent = y->parent;
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->color = z->color;
  }
  delete z;
  --size_;
  if (y_original == kBlack) EraseFixup(x, x_parent);
  return out;
}

void RbTree::EraseFixup(Node* x, Node* x_parent) {
  while (x != root_ && (x == nullptr || x->color == kBlack)) {
    if (x_parent == nullptr) break;
    if (x == x_parent->left) {
      Node* w = x_parent->right;
      if (w != nullptr && w->color == kRed) {
        w->color = kBlack;
        x_parent->color = kRed;
        RotateLeft(x_parent);
        w = x_parent->right;
      }
      if (w == nullptr) {
        x = x_parent;
        x_parent = x->parent;
        continue;
      }
      bool left_black = w->left == nullptr || w->left->color == kBlack;
      bool right_black = w->right == nullptr || w->right->color == kBlack;
      if (left_black && right_black) {
        w->color = kRed;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (right_black) {
          if (w->left != nullptr) w->left->color = kBlack;
          w->color = kRed;
          RotateRight(w);
          w = x_parent->right;
        }
        w->color = x_parent->color;
        x_parent->color = kBlack;
        if (w->right != nullptr) w->right->color = kBlack;
        RotateLeft(x_parent);
        x = root_;
        break;
      }
    } else {
      Node* w = x_parent->left;
      if (w != nullptr && w->color == kRed) {
        w->color = kBlack;
        x_parent->color = kRed;
        RotateRight(x_parent);
        w = x_parent->left;
      }
      if (w == nullptr) {
        x = x_parent;
        x_parent = x->parent;
        continue;
      }
      bool left_black = w->left == nullptr || w->left->color == kBlack;
      bool right_black = w->right == nullptr || w->right->color == kBlack;
      if (left_black && right_black) {
        w->color = kRed;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (left_black) {
          if (w->right != nullptr) w->right->color = kBlack;
          w->color = kRed;
          RotateLeft(w);
          w = x_parent->left;
        }
        w->color = x_parent->color;
        x_parent->color = kBlack;
        if (w->left != nullptr) w->left->color = kBlack;
        RotateRight(x_parent);
        x = root_;
        break;
      }
    }
  }
  if (x != nullptr) x->color = kBlack;
}

std::vector<std::pair<uint64_t, uint64_t>> RbTree::Scan(
    uint64_t start, size_t count) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(count);
  // Iterative in-order from the first node >= start.
  std::vector<const Node*> stack;
  const Node* cur = root_;
  while (cur != nullptr) {
    if (cur->key >= start) {
      stack.push_back(cur);
      cur = cur->left;
    } else {
      cur = cur->right;
    }
  }
  while (!stack.empty() && out.size() < count) {
    const Node* n = stack.back();
    stack.pop_back();
    out.emplace_back(n->key, n->value);
    cur = n->right;
    while (cur != nullptr) {
      stack.push_back(cur);
      cur = cur->left;
    }
  }
  return out;
}

void RbTree::ForEach(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  std::vector<const Node*> stack;
  const Node* cur = root_;
  while (cur != nullptr || !stack.empty()) {
    while (cur != nullptr) {
      stack.push_back(cur);
      cur = cur->left;
    }
    const Node* n = stack.back();
    stack.pop_back();
    fn(n->key, n->value);
    cur = n->right;
  }
}

size_t RbTree::MemoryFootprintBytes() const {
  return size_ * sizeof(Node);
}

int RbTree::CheckSubtree(const Node* n, bool* ok) const {
  if (n == nullptr) return 1;  // Null leaves are black.
  if (n->color == kRed) {
    if ((n->left != nullptr && n->left->color == kRed) ||
        (n->right != nullptr && n->right->color == kRed)) {
      *ok = false;  // Red-red violation.
    }
  }
  if (n->left != nullptr && n->left->key >= n->key) *ok = false;
  if (n->right != nullptr && n->right->key <= n->key) *ok = false;
  int lh = CheckSubtree(n->left, ok);
  int rh = CheckSubtree(n->right, ok);
  if (lh != rh) *ok = false;
  return lh + (n->color == kBlack ? 1 : 0);
}

bool RbTree::CheckInvariants() const {
  if (root_ == nullptr) return true;
  if (root_->color != kBlack) return false;
  bool ok = true;
  CheckSubtree(root_, &ok);
  return ok;
}

}  // namespace e2nvm::index
