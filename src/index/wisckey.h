#ifndef E2NVM_INDEX_WISCKEY_H_
#define E2NVM_INDEX_WISCKEY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/nvm_index.h"
#include "index/value_placer.h"
#include "nvm/controller.h"

namespace e2nvm::index {

/// WiscKey-style key-value separation (Lu et al. [35]): keys live in a
/// DRAM index, values are appended to a circular value log on NVM.
/// A PUT appends one value segment at the head; updates leave garbage
/// behind; when the log runs out of clean space, garbage collection
/// reclaims the oldest `gc_region` slots, *re-appending* any still-live
/// values found there (that relocation is WiscKey's write-amplification
/// source).
class WisckeyKv : public NvmKvIndex {
 public:
  struct Config {
    size_t log_slots = 4096;  // Must fit in ctrl's logical space.
    size_t gc_region = 256;   // Slots reclaimed per GC pass.
    size_t value_bits = 2048;
  };

  WisckeyKv(nvm::MemoryController* ctrl, const Config& config);

  std::string_view name() const override { return "WiscKey"; }
  Status Put(uint64_t key, const BitVector& value) override;
  StatusOr<BitVector> Get(uint64_t key) override;
  Status Delete(uint64_t key) override;
  size_t size() const override { return key_to_slot_.size(); }

  uint64_t gc_passes() const { return gc_passes_; }
  uint64_t gc_relocations() const { return gc_relocations_; }

 private:
  /// Advances head, garbage-collecting if it catches the tail.
  StatusOr<uint64_t> NextSlot();
  Status CollectGarbage();

  nvm::MemoryController* ctrl_;
  Config config_;
  std::unordered_map<uint64_t, uint64_t> key_to_slot_;
  std::vector<uint64_t> slot_owner_;  // Slot -> key (or kFree).
  uint64_t head_ = 0;  // Next append position.
  uint64_t tail_ = 0;  // Oldest un-reclaimed position.
  uint64_t live_ahead_ = 0;  // Appends since tail (occupancy of the ring).
  uint64_t gc_passes_ = 0;
  uint64_t gc_relocations_ = 0;

  static constexpr uint64_t kFree = ~uint64_t{0};
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_WISCKEY_H_
