#ifndef E2NVM_INDEX_NOVELSM_H_
#define E2NVM_INDEX_NOVELSM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "index/nvm_index.h"
#include "index/value_placer.h"
#include "nvm/controller.h"

namespace e2nvm::index {

/// NoveLSM-style LSM tree (Kannan et al. [25]): a *persistent NVM
/// memtable* absorbs writes in place; when it fills it is flushed into a
/// sorted immutable run on NVM, and when too many runs accumulate they
/// are merge-compacted into one. Flush and compaction physically rewrite
/// value segments — LSM write amplification made visible as bit flips.
///
/// Regions (memtable and runs) are fixed-size groups of segments managed
/// by a free-list, so compaction reuses retired regions and overwrites
/// their stale contents differentially, as on a real device.
class NoveLsmKv : public NvmKvIndex {
 public:
  struct Config {
    size_t memtable_entries = 64;
    size_t max_runs = 4;  // Compaction trigger.
    size_t value_bits = 2048;
  };

  NoveLsmKv(nvm::MemoryController* ctrl, const Config& config);

  std::string_view name() const override { return "NoveLSM"; }
  Status Put(uint64_t key, const BitVector& value) override;
  StatusOr<BitVector> Get(uint64_t key) override;
  Status Delete(uint64_t key) override;
  size_t size() const override;

  uint64_t flushes() const { return flushes_; }
  uint64_t compactions() const { return compactions_; }
  size_t num_runs() const { return runs_.size(); }

 private:
  struct Run {
    uint64_t base_slot;
    size_t capacity;
    std::vector<uint64_t> keys;        // Sorted.
    std::vector<bool> tombstone;       // Parallel to keys.
  };

  StatusOr<uint64_t> AllocRegion(size_t slots);
  void FreeRegion(uint64_t base, size_t slots);
  Status Flush();
  Status Compact();

  nvm::MemoryController* ctrl_;
  Config config_;

  // Persistent memtable: key -> slot within the memtable region.
  uint64_t memtable_base_ = 0;
  std::map<uint64_t, std::pair<size_t, bool>> memtable_;  // slot, tombstone
  std::vector<bool> memtable_slot_used_;

  std::vector<Run> runs_;  // Newest last.
  uint64_t bump_ = 0;
  std::multimap<size_t, uint64_t> free_regions_;  // size -> base
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_NOVELSM_H_
