#ifndef E2NVM_INDEX_PLACED_INDEX_H_
#define E2NVM_INDEX_PLACED_INDEX_H_

#include <string>

#include "index/nvm_index.h"
#include "index/rbtree.h"
#include "index/value_placer.h"

namespace e2nvm::index {

/// The "plugged into E2-NVM" mode of any index structure (Fig 12): the
/// key structure lives in DRAM (here an RbTree of key -> NVM address) and
/// every value write is delegated to a ValuePlacer. Because structural
/// maintenance then moves only DRAM pointers, the NVM write pattern is
/// entirely determined by the placer — arbitrary (ArbitraryPlacer) or
/// memory-aware (core::PlacementEngine).
///
/// Updates follow the E2-NVM write algorithm: acquire a fresh
/// similar-content address, then recycle the old one.
class PlacedKvIndex : public NvmKvIndex {
 public:
  /// `label` names the augmented structure in reports ("B+Tree+E2", ...).
  PlacedKvIndex(std::string label, ValuePlacer* placer)
      : label_(std::move(label)), placer_(placer) {}

  std::string_view name() const override { return label_; }

  Status Put(uint64_t key, const BitVector& value) override {
    last_value_bits_ = value.size();
    E2_ASSIGN_OR_RETURN(uint64_t addr, placer_->Place(value));
    auto old = map_.Get(key);
    map_.Put(key, addr);
    if (old.has_value()) {
      E2_RETURN_IF_ERROR(placer_->Release(*old));
    }
    return Status::Ok();
  }

  StatusOr<BitVector> Get(uint64_t key) override {
    auto addr = map_.Get(key);
    if (!addr.has_value()) return Status::NotFound("key not found");
    return placer_->Read(*addr, value_bits_hint_ == 0
                                    ? last_value_bits_
                                    : value_bits_hint_);
  }

  Status Delete(uint64_t key) override {
    auto addr = map_.Erase(key);
    if (!addr.has_value()) return Status::NotFound("key not found");
    return placer_->Release(*addr);
  }

  size_t size() const override { return map_.size(); }

  /// Fixes the width returned by Get (defaults to the last Put width).
  void set_value_bits(size_t bits) { value_bits_hint_ = bits; }

 private:
  std::string label_;
  ValuePlacer* placer_;
  RbTree map_;
  size_t value_bits_hint_ = 0;
  size_t last_value_bits_ = 0;
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_PLACED_INDEX_H_
