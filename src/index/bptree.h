#ifndef E2NVM_INDEX_BPTREE_H_
#define E2NVM_INDEX_BPTREE_H_

#include <cstdint>
#include <vector>

#include "index/nvm_index.h"
#include "index/value_placer.h"
#include "nvm/controller.h"

namespace e2nvm::index {

/// A persistent B+-Tree with *sorted leaves holding values inline* —
/// the classic NVM-hostile layout the paper calls out (§5.3: "in a
/// regular B+-Tree the items in leaf nodes need to be sorted, which
/// increases the number of movements and bit flips").
///
/// Each leaf owns `leaf_capacity` contiguous NVM segments; entry i of a
/// leaf lives in the leaf's i-th segment. Inserting into the middle of a
/// leaf physically shifts every following value one slot up; deleting
/// compacts the leaf down; splitting copies the upper half to a freshly
/// allocated leaf. All of these are real differential segment writes, so
/// the flip cost of sorted maintenance is measured, not estimated.
///
/// The inner structure (router keys) is kept in DRAM: inner nodes are
/// small and key-only, and the paper's flip analysis concerns value
/// movement.
class BpTreeKv : public NvmKvIndex {
 public:
  struct Config {
    size_t leaf_capacity = 16;
    size_t value_bits = 2048;
  };

  /// Native mode: values inline in leaf slots carved out of `ctrl`'s
  /// logical space by an internal bump allocator.
  BpTreeKv(nvm::MemoryController* ctrl, const Config& config);

  std::string_view name() const override { return "B+Tree"; }
  Status Put(uint64_t key, const BitVector& value) override;
  StatusOr<BitVector> Get(uint64_t key) override;
  Status Delete(uint64_t key) override;
  size_t size() const override { return size_; }

  /// Ordered range scan (SCAN support for YCSB workload E).
  std::vector<std::pair<uint64_t, BitVector>> Scan(uint64_t start,
                                                   size_t count);

  size_t num_leaves() const { return leaves_.size(); }

 private:
  struct Leaf {
    uint64_t base_slot;           // First NVM segment of this leaf.
    std::vector<uint64_t> keys;   // Sorted; keys[i]'s value is slot base+i.
  };

  /// Index of the leaf that should hold `key`.
  size_t FindLeaf(uint64_t key) const;
  StatusOr<uint64_t> AllocLeafSlots();
  void ShiftUp(Leaf& leaf, size_t pos);
  void ShiftDown(Leaf& leaf, size_t pos);
  Status SplitLeaf(size_t leaf_idx);

  nvm::MemoryController* ctrl_;
  Config config_;
  std::vector<Leaf> leaves_;  // Sorted by first key.
  uint64_t bump_ = 0;
  std::vector<uint64_t> free_leaf_bases_;
  size_t size_ = 0;
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_BPTREE_H_
