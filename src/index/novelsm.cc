#include "index/novelsm.h"

#include <algorithm>

namespace e2nvm::index {

NoveLsmKv::NoveLsmKv(nvm::MemoryController* ctrl, const Config& config)
    : ctrl_(ctrl), config_(config) {
  memtable_base_ = bump_;
  bump_ += config_.memtable_entries;
  memtable_slot_used_.assign(config_.memtable_entries, false);
}

StatusOr<uint64_t> NoveLsmKv::AllocRegion(size_t slots) {
  auto it = free_regions_.lower_bound(slots);
  if (it != free_regions_.end()) {
    uint64_t base = it->second;
    size_t cap = it->first;
    free_regions_.erase(it);
    if (cap > slots) {
      free_regions_.emplace(cap - slots, base + slots);
    }
    return base;
  }
  if (bump_ + slots > ctrl_->num_logical()) {
    return Status::ResourceExhausted("NoveLSM out of run segments");
  }
  uint64_t base = bump_;
  bump_ += slots;
  return base;
}

void NoveLsmKv::FreeRegion(uint64_t base, size_t slots) {
  if (slots > 0) free_regions_.emplace(slots, base);
}

Status NoveLsmKv::Put(uint64_t key, const BitVector& value) {
  if (value.size() != config_.value_bits) {
    return Status::InvalidArgument("value width mismatch");
  }
  auto it = memtable_.find(key);
  size_t slot;
  if (it != memtable_.end()) {
    slot = it->second.first;  // Overwrite the memtable entry in place.
    it->second.second = false;
  } else {
    if (memtable_.size() == config_.memtable_entries) {
      E2_RETURN_IF_ERROR(Flush());
    }
    // First free memtable slot.
    slot = 0;
    while (slot < config_.memtable_entries && memtable_slot_used_[slot]) {
      ++slot;
    }
    memtable_slot_used_[slot] = true;
    memtable_[key] = {slot, false};
  }
  MergeWrite(*ctrl_, memtable_base_ + slot, value);
  return Status::Ok();
}

Status NoveLsmKv::Flush() {
  ++flushes_;
  // Write memtable entries (sorted by key — std::map order) into a new run.
  size_t live = 0;
  for (const auto& [k, v] : memtable_) {
    if (!v.second) ++live;
  }
  size_t entries = memtable_.size();
  E2_ASSIGN_OR_RETURN(uint64_t base, AllocRegion(entries));
  Run run;
  run.base_slot = base;
  run.capacity = entries;
  size_t pos = 0;
  for (const auto& [key, sv] : memtable_) {
    BitVector value = ctrl_->Peek(memtable_base_ + sv.first)
                          .Slice(0, config_.value_bits);
    MergeWrite(*ctrl_, base + pos, value);
    run.keys.push_back(key);
    run.tombstone.push_back(sv.second);
    ++pos;
  }
  (void)live;
  memtable_.clear();
  std::fill(memtable_slot_used_.begin(), memtable_slot_used_.end(), false);
  runs_.push_back(std::move(run));
  if (runs_.size() > config_.max_runs) {
    E2_RETURN_IF_ERROR(Compact());
  }
  return Status::Ok();
}

Status NoveLsmKv::Compact() {
  ++compactions_;
  // Newest-wins merge of all runs.
  std::map<uint64_t, std::pair<BitVector, bool>> merged;
  for (const Run& run : runs_) {  // Oldest first; later runs overwrite.
    for (size_t i = 0; i < run.keys.size(); ++i) {
      merged[run.keys[i]] = {
          ctrl_->Peek(run.base_slot + i).Slice(0, config_.value_bits),
          run.tombstone[i]};
    }
  }
  // Drop tombstones at the bottom level.
  for (auto it = merged.begin(); it != merged.end();) {
    if (it->second.second) {
      it = merged.erase(it);
    } else {
      ++it;
    }
  }
  E2_ASSIGN_OR_RETURN(uint64_t base, AllocRegion(merged.size()));
  Run out;
  out.base_slot = base;
  out.capacity = merged.size();
  size_t pos = 0;
  for (auto& [key, vb] : merged) {
    MergeWrite(*ctrl_, base + pos, vb.first);
    out.keys.push_back(key);
    out.tombstone.push_back(false);
    ++pos;
  }
  for (const Run& run : runs_) {
    FreeRegion(run.base_slot, run.capacity);
  }
  runs_.clear();
  runs_.push_back(std::move(out));
  return Status::Ok();
}

StatusOr<BitVector> NoveLsmKv::Get(uint64_t key) {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (it->second.second) return Status::NotFound("deleted");
    return ctrl_->Read(memtable_base_ + it->second.first)
        .Slice(0, config_.value_bits);
  }
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    const Run& run = *rit;
    auto kit = std::lower_bound(run.keys.begin(), run.keys.end(), key);
    if (kit != run.keys.end() && *kit == key) {
      size_t pos = static_cast<size_t>(kit - run.keys.begin());
      if (run.tombstone[pos]) return Status::NotFound("deleted");
      return ctrl_->Read(run.base_slot + pos)
          .Slice(0, config_.value_bits);
    }
  }
  return Status::NotFound("key not found");
}

Status NoveLsmKv::Delete(uint64_t key) {
  // LSM delete = tombstone write in the memtable. Real LSMs write blind
  // tombstones; for interface parity with the other structures we first
  // verify the key is live (a DRAM-side metadata check, no device read).
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (it->second.second) return Status::NotFound("already deleted");
    it->second.second = true;
    return Status::Ok();
  }
  bool live = false;
  for (auto rit = runs_.rbegin(); rit != runs_.rend() && !live; ++rit) {
    auto kit = std::lower_bound(rit->keys.begin(), rit->keys.end(), key);
    if (kit != rit->keys.end() && *kit == key) {
      size_t pos = static_cast<size_t>(kit - rit->keys.begin());
      if (rit->tombstone[pos]) break;  // Newest version is a tombstone.
      live = true;
    }
  }
  if (!live) return Status::NotFound("key not found");
  if (memtable_.size() == config_.memtable_entries) {
    E2_RETURN_IF_ERROR(Flush());
  }
  size_t slot = 0;
  while (slot < config_.memtable_entries && memtable_slot_used_[slot]) {
    ++slot;
  }
  memtable_slot_used_[slot] = true;
  memtable_[key] = {slot, true};
  return Status::Ok();
}

size_t NoveLsmKv::size() const {
  // Approximate: distinct keys across memtable and runs minus tombstones.
  std::map<uint64_t, bool> seen;
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    for (size_t i = 0; i < rit->keys.size(); ++i) {
      seen.emplace(rit->keys[i], rit->tombstone[i]);
    }
  }
  for (const auto& [k, sv] : memtable_) {
    seen[k] = sv.second;
  }
  size_t n = 0;
  for (const auto& [k, dead] : seen) {
    if (!dead) ++n;
  }
  return n;
}

}  // namespace e2nvm::index
