#include "index/value_placer.h"

#include "common/logging.h"

namespace e2nvm::index {

Status ValuePlacer::PlaceMany(const std::vector<const BitVector*>& values,
                              std::vector<uint64_t>* addrs) {
  for (const BitVector* value : values) {
    E2_ASSIGN_OR_RETURN(uint64_t addr, Place(*value));
    addrs->push_back(addr);
  }
  return Status::Ok();
}

nvm::WriteResult MergeWrite(nvm::MemoryController& ctrl, uint64_t addr,
                            const BitVector& value) {
  nvm::WriteResult r;
  MergeWriteInto(ctrl, addr, value, &r);
  return r;
}

void MergeWriteInto(nvm::MemoryController& ctrl, uint64_t addr,
                    const BitVector& value, nvm::WriteResult* out) {
  E2_CHECK(value.size() <= ctrl.segment_bits(),
           "value wider than a segment");
  if (value.size() == ctrl.segment_bits()) {
    ctrl.WriteInto(addr, value, out);
    return;
  }
  BitVector full = ctrl.Peek(addr);
  full.Overlay(0, value);
  ctrl.WriteInto(addr, full, out);
}

ArbitraryPlacer::ArbitraryPlacer(nvm::MemoryController* ctrl,
                                 uint64_t first_segment,
                                 size_t num_segments)
    : ctrl_(ctrl) {
  for (size_t i = 0; i < num_segments; ++i) {
    free_.push_back(first_segment + i);
  }
}

StatusOr<uint64_t> ArbitraryPlacer::Place(const BitVector& value) {
  if (free_.empty()) {
    return Status::ResourceExhausted("no free segments");
  }
  uint64_t addr = free_.front();
  free_.pop_front();
  MergeWrite(*ctrl_, addr, value);
  return addr;
}

Status ArbitraryPlacer::Release(uint64_t addr) {
  free_.push_back(addr);
  return Status::Ok();
}

BitVector ArbitraryPlacer::Read(uint64_t addr, size_t bits) {
  return ctrl_->Read(addr).Slice(0, bits);
}

Status ArbitraryPlacer::WriteAt(uint64_t addr, const BitVector& value) {
  MergeWrite(*ctrl_, addr, value);
  return Status::Ok();
}

}  // namespace e2nvm::index
