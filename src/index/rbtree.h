#ifndef E2NVM_INDEX_RBTREE_H_
#define E2NVM_INDEX_RBTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace e2nvm::index {

/// A left-leaning-free classic red-black tree mapping uint64 keys to
/// uint64 values — the DRAM "Data index" of the paper's KV store (Fig 3,
/// Algorithm 1 line 7: "RB-Tree.put(D, A)").
///
/// Implemented from scratch (insert, erase with standard double-black
/// fix-ups, ordered scans) rather than wrapping std::map so that the
/// index's node count and byte footprint are observable for the memory
/// overhead analysis (Fig 7).
class RbTree {
 public:
  RbTree() = default;
  ~RbTree();

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;
  RbTree(RbTree&& other) noexcept;
  RbTree& operator=(RbTree&& other) noexcept;

  /// Inserts or overwrites; returns true if the key was new.
  bool Put(uint64_t key, uint64_t value);

  /// Looks a key up.
  std::optional<uint64_t> Get(uint64_t key) const;

  /// Removes a key; returns its value if present.
  std::optional<uint64_t> Erase(uint64_t key);

  bool Contains(uint64_t key) const { return Get(key).has_value(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// In-order visit of up to `count` pairs with key >= `start` (SCAN).
  std::vector<std::pair<uint64_t, uint64_t>> Scan(uint64_t start,
                                                  size_t count) const;

  /// Visits every pair in order.
  void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const;

  /// Approximate DRAM footprint (Fig 7): nodes * sizeof(Node).
  size_t MemoryFootprintBytes() const;

  /// Validates red-black invariants (tests): root is black, no red-red
  /// edges, equal black heights. Returns false on violation.
  bool CheckInvariants() const;

 private:
  enum Color : uint8_t { kRed, kBlack };
  struct Node {
    uint64_t key;
    uint64_t value;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
    Color color = kRed;
  };

  Node* Find(uint64_t key) const;
  void RotateLeft(Node* x);
  void RotateRight(Node* x);
  void InsertFixup(Node* z);
  void EraseFixup(Node* x, Node* x_parent);
  void Transplant(Node* u, Node* v);
  static Node* Minimum(Node* n);
  void DestroySubtree(Node* n);
  int CheckSubtree(const Node* n, bool* ok) const;

  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace e2nvm::index

#endif  // E2NVM_INDEX_RBTREE_H_
