#include "common/histogram.h"

#include <cmath>
#include <sstream>

namespace e2nvm {

double Histogram::CdfAt(uint64_t value) const {
  if (n_ == 0) return 0.0;
  uint64_t cum = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    cum += c;
  }
  return static_cast<double>(cum) / static_cast<double>(n_);
}

uint64_t Histogram::Quantile(double q) const {
  if (n_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(n_)));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (const auto& [v, c] : counts_) {
    cum += c;
    if (cum >= target) return v;
  }
  return counts_.rbegin()->first;
}

double Histogram::Mean() const {
  if (n_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& [v, c] : counts_) {
    s += static_cast<double>(v) * static_cast<double>(c);
  }
  return s / static_cast<double>(n_);
}

uint64_t Histogram::Min() const {
  return counts_.empty() ? 0 : counts_.begin()->first;
}

uint64_t Histogram::Max() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::vector<std::pair<uint64_t, double>> Histogram::CdfSeries() const {
  std::vector<std::pair<uint64_t, double>> out;
  out.reserve(counts_.size());
  uint64_t cum = 0;
  for (const auto& [v, c] : counts_) {
    cum += c;
    out.emplace_back(v, static_cast<double>(cum) / static_cast<double>(n_));
  }
  return out;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << Mean() << " min=" << Min()
     << " p50=" << Quantile(0.5) << " p90=" << Quantile(0.9)
     << " p99=" << Quantile(0.99) << " max=" << Max();
  return os.str();
}

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

}  // namespace e2nvm
