#ifndef E2NVM_COMMON_STATUS_H_
#define E2NVM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace e2nvm {

/// Canonical error codes, modeled after absl::StatusCode. The library does
/// not use C++ exceptions; every fallible operation returns a Status or a
/// StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kDataLoss,
};

/// Returns a stable human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight result-of-an-operation value: an error code plus an
/// explanatory message. `Status::Ok()` carries no message and is cheap to
/// copy. Follows the Google style guide's "no exceptions" rule.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`. The message
  /// should describe the failure for a human operator, not for parsing.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers mirroring the canonical codes.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" for logging.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// The union of a Status and a value of type T: holds T iff `ok()`.
/// Accessing `value()` on a non-OK StatusOr aborts (assert), matching the
/// contract of absl::StatusOr in hardened builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK result). Implicit by design so
  /// `return value;` works in functions returning StatusOr<T>.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  /// Implicit construction from an error status. Must not be OK: an OK
  /// StatusOr requires a value.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the current function.
#define E2_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::e2nvm::Status e2_status_ = (expr);         \
    if (!e2_status_.ok()) return e2_status_;     \
  } while (false)

#define E2_INTERNAL_CONCAT_INNER(a, b) a##b
#define E2_INTERNAL_CONCAT(a, b) E2_INTERNAL_CONCAT_INNER(a, b)
#define E2_INTERNAL_ASSIGN_OR_RETURN(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

/// Evaluates `rexpr` (a StatusOr) and either assigns its value to `lhs` or
/// propagates the error.
#define E2_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  E2_INTERNAL_ASSIGN_OR_RETURN(                                         \
      E2_INTERNAL_CONCAT(e2_statusor_, __LINE__), lhs, rexpr)

}  // namespace e2nvm

#endif  // E2NVM_COMMON_STATUS_H_
