// AVX2 kernel tier. This translation unit is the only place in the
// library compiled with -mavx2, and it is also compiled with
// -ffp-contract=off and WITHOUT -mfma: the bit-identity contract in
// kernels.h requires every multiply-add to round twice, exactly like the
// scalar reference. x86 is little-endian, which the byte/word reinterpret
// casts below rely on.
#include "common/kernels.h"

#ifdef __AVX2__

#include <immintrin.h>

namespace e2nvm::internal {
namespace {

/// Per-64-bit-lane popcount via the classic nibble-LUT pshufb trick:
/// split each byte into nibbles, look both up in a 16-entry bit-count
/// table, then horizontally sum bytes per lane with SAD.
inline __m256i PopcountEpi64(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline uint64_t SumEpi64(__m256i acc) {
  __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

inline __m256i Load4(const uint64_t* w) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
}

size_t Avx2Popcount(const uint64_t* w, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, PopcountEpi64(Load4(w + i)));
  }
  size_t c = static_cast<size_t>(SumEpi64(acc));
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(w[i]));
  }
  return c;
}

size_t Avx2Hamming(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i diff = _mm256_xor_si256(Load4(a + i), Load4(b + i));
    acc = _mm256_add_epi64(acc, PopcountEpi64(diff));
  }
  size_t c = static_cast<size_t>(SumEpi64(acc));
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] ^ b[i]));
  }
  return c;
}

DiffCounts Avx2Diff(const uint64_t* old_w, const uint64_t* new_w,
                    size_t n) {
  __m256i set_acc = _mm256_setzero_si256();
  __m256i reset_acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i ov = Load4(old_w + i);
    __m256i nv = Load4(new_w + i);
    __m256i diff = _mm256_xor_si256(ov, nv);
    set_acc = _mm256_add_epi64(set_acc,
                               PopcountEpi64(_mm256_and_si256(diff, nv)));
    reset_acc = _mm256_add_epi64(
        reset_acc, PopcountEpi64(_mm256_and_si256(diff, ov)));
  }
  DiffCounts d;
  d.sets = static_cast<size_t>(SumEpi64(set_acc));
  d.resets = static_cast<size_t>(SumEpi64(reset_acc));
  for (; i < n; ++i) {
    uint64_t diff = old_w[i] ^ new_w[i];
    if (diff == 0) continue;
    d.sets += static_cast<size_t>(__builtin_popcountll(diff & new_w[i]));
    d.resets +=
        static_cast<size_t>(__builtin_popcountll(diff & old_w[i]));
  }
  return d;
}

void Avx2BitsToFloats(const uint64_t* words, size_t num_bits,
                      float* out) {
  // One source byte expands to 8 floats: broadcast the byte, isolate
  // each lane's bit, compare to produce an all-ones mask, and AND with
  // the bit pattern of 1.0f.
  const __m256i bit_of_lane =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256 ones = _mm256_set1_ps(1.0f);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const size_t full_bytes = num_bits / 8;
  for (size_t i = 0; i < full_bytes; ++i) {
    __m256i b = _mm256_set1_epi32(bytes[i]);
    __m256i is_set =
        _mm256_cmpeq_epi32(_mm256_and_si256(b, bit_of_lane), bit_of_lane);
    _mm256_storeu_ps(out + i * 8,
                     _mm256_and_ps(_mm256_castsi256_ps(is_set), ones));
  }
  for (size_t bit = full_bytes * 8; bit < num_bits; ++bit) {
    out[bit] = static_cast<float>((words[bit >> 6] >> (bit & 63)) & 1u);
  }
}

void Avx2Add(float* dst, const float* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void Avx2Axpy(float* dst, const float* src, float a, size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(src + i));
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += a * src[i];
}

void Avx2Dot8(const float* a, const float* b, size_t ldb, size_t k,
              float* out) {
  // Eight output columns live in eight lanes; a strided gather pulls
  // b[j][p] for j = 0..7 each step, and every lane accumulates its
  // products in ascending p — the scalar accumulation order.
  const __m256i idx = _mm256_setr_epi32(
      0, static_cast<int>(ldb), static_cast<int>(2 * ldb),
      static_cast<int>(3 * ldb), static_cast<int>(4 * ldb),
      static_cast<int>(5 * ldb), static_cast<int>(6 * ldb),
      static_cast<int>(7 * ldb));
  __m256 acc = _mm256_setzero_ps();
  for (size_t p = 0; p < k; ++p) {
    __m256 bv = _mm256_i32gather_ps(b + p, idx, 4);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[p]), bv));
  }
  _mm256_storeu_ps(out, acc);
}

void Avx2Gemv(const float* a, const float* b, size_t k, size_t n,
              float* c) {
  // Column tiles wide enough to keep the accumulators in registers for
  // the whole k-loop: 32 floats (4 ymm), then 8, then a scalar tail.
  // Every c[j] still sums its nonzero a[p] terms in ascending p with
  // one mul and one add per term — bit-identical to the scalar loop.
  size_t j = 0;
  for (; j + 32 <= n; j += 32) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    for (size_t p = 0; p < k; ++p) {
      const float av = a[p];
      if (av == 0.0f) continue;
      const __m256 vav = _mm256_set1_ps(av);
      const float* brow = b + p * n + j;
      acc0 = _mm256_add_ps(acc0,
                           _mm256_mul_ps(vav, _mm256_loadu_ps(brow)));
      acc1 = _mm256_add_ps(acc1,
                           _mm256_mul_ps(vav, _mm256_loadu_ps(brow + 8)));
      acc2 = _mm256_add_ps(
          acc2, _mm256_mul_ps(vav, _mm256_loadu_ps(brow + 16)));
      acc3 = _mm256_add_ps(
          acc3, _mm256_mul_ps(vav, _mm256_loadu_ps(brow + 24)));
    }
    _mm256_storeu_ps(c + j, acc0);
    _mm256_storeu_ps(c + j + 8, acc1);
    _mm256_storeu_ps(c + j + 16, acc2);
    _mm256_storeu_ps(c + j + 24, acc3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (size_t p = 0; p < k; ++p) {
      const float av = a[p];
      if (av == 0.0f) continue;
      acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av),
                                             _mm256_loadu_ps(b + p * n + j)));
    }
    _mm256_storeu_ps(c + j, acc);
  }
  if (j < n) {
    for (size_t jj = j; jj < n; ++jj) c[jj] = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      const float av = a[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (size_t jj = j; jj < n; ++jj) c[jj] += av * brow[jj];
    }
  }
}

// CRC32C via the SSE4.2 crc32 instruction (the crc32 unit is baseline
// on every AVX2 CPU and -mavx2 implies -msse4.2). The instruction works
// on the bit-inverted running state, so invert on entry/exit to keep the
// kernel's standard seed-0 chaining convention. Exact integer math:
// bit-identical to the scalar table by construction.
uint32_t Avx2Crc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t state = ~crc;
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    state = _mm_crc32_u64(state, word);
    p += 8;
    n -= 8;
  }
  auto s32 = static_cast<uint32_t>(state);
  while (n > 0) {
    s32 = _mm_crc32_u8(s32, *p++);
    --n;
  }
  return ~s32;
}

const KernelOps kAvx2Ops = {
    Avx2Popcount, Avx2Hamming, Avx2Diff, Avx2BitsToFloats,
    Avx2Add,      Avx2Axpy,    Avx2Dot8, Avx2Gemv,
    Avx2Crc32c,
};

}  // namespace

const KernelOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace e2nvm::internal

#else  // !__AVX2__

namespace e2nvm::internal {
const KernelOps* Avx2Ops() { return nullptr; }
}  // namespace e2nvm::internal

#endif  // __AVX2__
