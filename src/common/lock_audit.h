#ifndef E2NVM_COMMON_LOCK_AUDIT_H_
#define E2NVM_COMMON_LOCK_AUDIT_H_

#include <cstdint>
#include <mutex>

namespace e2nvm::debug {

/// Thread-local audit counter for *shared* (shard-external) lock
/// acquisitions — the ones the contention-free steady-state contract
/// (DESIGN.md §13) forbids on the PUT/GET/DELETE path. Instrumented at
/// the lock sites that historically serialized shards:
///   - the ThreadPool queue mutex (Submit / parallel dispatch),
///   - the DynamicAddressPool internal mutex (thread-safe mode only;
///     engines run their pool in externally-serialized mode),
///   - the FaultInjector state mutex (skipped entirely by the unarmed
///     write fast path — an attached injector with no stuck cells and
///     no tear probability stays off the steady-state audit).
/// Per-shard locks are intentionally NOT counted: holding your own
/// shard's lock is the steady-state design, not a violation.
///
/// Tests snapshot `SharedLockAcquisitions()` around a steady-state
/// operation window and assert a zero delta. The counter is
/// thread-local, so each client thread audits exactly the locks *it*
/// acquired; background workers' own acquisitions (e.g. a retrain task
/// dequeuing work) land on the worker's counter, not the client's.
inline thread_local uint64_t t_shared_lock_acquisitions = 0;

inline void NoteSharedLockAcquired() { ++t_shared_lock_acquisitions; }

/// The calling thread's lifetime count of shared-lock acquisitions.
inline uint64_t SharedLockAcquisitions() {
  return t_shared_lock_acquisitions;
}

/// Drop-in replacement for std::lock_guard at shared-lock sites: takes
/// the mutex and books the acquisition on the calling thread's audit
/// counter.
class AuditedLockGuard {
 public:
  explicit AuditedLockGuard(std::mutex& m) : lock_(m) {
    NoteSharedLockAcquired();
  }
  AuditedLockGuard(const AuditedLockGuard&) = delete;
  AuditedLockGuard& operator=(const AuditedLockGuard&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

}  // namespace e2nvm::debug

#endif  // E2NVM_COMMON_LOCK_AUDIT_H_
