#ifndef E2NVM_COMMON_KERNELS_H_
#define E2NVM_COMMON_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace e2nvm {

/// Sets/resets decomposition of a word-level bit diff (Alg. 1
/// bookkeeping: a 0->1 program is a SET pulse, a 1->0 program a RESET
/// pulse; PCM charges them differently).
struct DiffCounts {
  size_t sets = 0;
  size_t resets = 0;
};

/// Instruction-set tiers of the kernel layer, ordered so that a higher
/// value strictly extends the lower ones on the CPUs we dispatch for.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,  // Requires AVX-512F + VPOPCNTDQ.
};

/// The dispatchable hot-loop kernels. Every E2-NVM operation bottoms out
/// in one of these: the bit kernels carry Alg. 1's differential-write
/// accounting and the DAP's Hamming scans, the float kernels carry the
/// VAE encode GEMM and the fused k-means assignment.
///
/// ## Bit-identity contract
///
/// Each tier must produce results bit-identical to the scalar reference:
///  - integer kernels are trivially exact (popcounts over any grouping);
///  - float kernels vectorize across independent *output elements* only.
///    `add_f32`/`axpy_f32` are element-wise; `dot8_f32` keeps 8 output
///    columns in 8 lanes, each accumulating its k products in the same
///    ascending order as the scalar loop. No tier may reassociate an
///    accumulation or fuse a multiply-add: every product is rounded,
///    then added and rounded again, exactly like `c += a * b` compiled
///    without FP contraction. The SIMD translation units are therefore
///    built with `-ffp-contract=off` and WITHOUT `-mfma`.
struct KernelOps {
  /// Total set bits in `w[0..n)`.
  size_t (*popcount_words)(const uint64_t* w, size_t n);
  /// popcount(a ^ b) over n words — the placement similarity metric.
  size_t (*hamming_words)(const uint64_t* a, const uint64_t* b, size_t n);
  /// Set/reset transition counts of programming `new_w` over `old_w`.
  DiffCounts (*diff_words)(const uint64_t* old_w, const uint64_t* new_w,
                           size_t n);
  /// Expands the low `num_bits` bits (LSB-first per word) to
  /// 0.0f/1.0f floats — the model featurization kernel.
  void (*bits_to_floats)(const uint64_t* words, size_t num_bits,
                         float* out);
  /// dst[i] += src[i] — the GEMM av == 1.0 lane (featurized inputs).
  void (*add_f32)(float* dst, const float* src, size_t n);
  /// dst[i] += a * src[i] (two roundings per element, never an FMA).
  void (*axpy_f32)(float* dst, const float* src, float a, size_t n);
  /// Eight independent dot products against consecutive rows of a
  /// row-major matrix: out[j] = sum_p a[p] * b[j * ldb + p] for
  /// j in [0, 8), each lane accumulating in ascending p.
  void (*dot8_f32)(const float* a, const float* b, size_t ldb, size_t k,
                   float* out);
  /// Row-vector times row-major matrix: c[j] = sum_p a[p] * b[p * n + j]
  /// for j in [0, n), overwriting c. Each c[j] accumulates in ascending
  /// p with zero a[p] terms skipped — the same element order (and the
  /// same skip) as MatMulInto's scalar loop, so the register-blocked
  /// SIMD tiers are bit-identical to it. This is the single-row encode
  /// GEMV of the write path: keeping the whole k-loop inside one kernel
  /// call holds the accumulators in registers instead of re-loading the
  /// output row once per nonzero a[p].
  void (*gemv_f32)(const float* a, const float* b, size_t k, size_t n,
                   float* c);
  /// CRC32C (Castagnoli, reflected 0x82F63B78) of `data[0..n)` continued
  /// from `crc` — the integrity checksum of the durability layer (pool
  /// headers, journal slots, segment scrub). Standard convention: pass 0
  /// to start, chain by passing the previous return value; the result of
  /// one call over a buffer equals chained calls over any split of it.
  /// Integer-exact, so every tier is trivially bit-identical (the x86
  /// tiers use the SSE4.2 crc32 instruction, implied by AVX2).
  uint32_t (*crc32c)(uint32_t crc, const void* data, size_t n);
};

/// The process-wide kernel table. Chosen once on first use: the best
/// tier both compiled in and reported by CPUID, clamped down by the
/// `E2NVM_SIMD=scalar|avx2|avx512` environment override. Thread-safe.
const KernelOps& Ops();

/// Tier behind Ops().
SimdLevel ActiveSimdLevel();

/// Stable lowercase name ("scalar", "avx2", "avx512") for reports.
const char* SimdLevelName(SimdLevel level);

/// Table for one specific tier, or nullptr when that tier was not
/// compiled in or this CPU lacks it — lets tests compare every
/// available tier against the scalar reference in a single process.
const KernelOps* OpsFor(SimdLevel level);

/// Dispatched one-shot CRC32C of a buffer (seed 0). For incremental
/// checksums call Ops().crc32c directly.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Ops().crc32c(0, data, n);
}

namespace internal {
/// Defined by the feature-gated TUs (kernels_avx2.cc, kernels_avx512.cc);
/// referenced only when the matching E2NVM_HAVE_* macro is set.
const KernelOps* Avx2Ops();
const KernelOps* Avx512Ops();
}  // namespace internal

}  // namespace e2nvm

#endif  // E2NVM_COMMON_KERNELS_H_
