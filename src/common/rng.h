#ifndef E2NVM_COMMON_RNG_H_
#define E2NVM_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace e2nvm {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in the library takes an explicit
/// Rng (or seed) so experiments are reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Reseed(seed); }

  /// Re-seeds in place.
  void Reseed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // statistical quality requirements are modest.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextU64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Bernoulli draw with probability `p` of true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

/// Zipfian key chooser over [0, n) with parameter theta (default 0.99, the
/// YCSB constant). Uses the Gray/YCSB rejection-free inverse method so a
/// draw is O(1). Hot items are the *smallest* ranks; callers that want
/// scattered hot keys should compose with a hash.
class ZipfianGenerator {
 public:
  /// Creates a generator over `n` items. `theta` in (0,1); YCSB uses 0.99.
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  /// Draws a rank in [0, n); rank 0 is the most popular.
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// "Latest" distribution per YCSB workload D: recency-weighted — newer items
/// (higher indexes) are more popular. Implemented as zipfian over the
/// distance from the most recent insert.
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t n);

  /// Draws an item index in [0, max_seen]; skewed toward max_seen.
  uint64_t Next(Rng& rng, uint64_t max_seen);

 private:
  ZipfianGenerator zipf_;
};

/// Scrambled-zipfian: zipfian ranks spread over the key space by a
/// multiplicative hash, matching YCSB's ScrambledZipfianGenerator so hot
/// keys are not physically adjacent.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

/// FNV-1a 64-bit hash, used for key scrambling and fingerprints.
uint64_t Fnv1a64(const void* data, size_t len);

}  // namespace e2nvm

#endif  // E2NVM_COMMON_RNG_H_
