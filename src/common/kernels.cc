#include "common/kernels.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace e2nvm {

namespace {

// ------------------------------------------------- scalar reference --

size_t ScalarPopcount(const uint64_t* w, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(std::popcount(w[i]));
  }
  return c;
}

size_t ScalarHamming(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(std::popcount(a[i] ^ b[i]));
  }
  return c;
}

DiffCounts ScalarDiff(const uint64_t* old_w, const uint64_t* new_w,
                      size_t n) {
  DiffCounts d;
  for (size_t i = 0; i < n; ++i) {
    uint64_t diff = old_w[i] ^ new_w[i];
    if (diff == 0) continue;
    d.sets += static_cast<size_t>(std::popcount(diff & new_w[i]));
    d.resets += static_cast<size_t>(std::popcount(diff & old_w[i]));
  }
  return d;
}

void ScalarBitsToFloats(const uint64_t* words, size_t num_bits,
                        float* out) {
  const size_t full_words = num_bits / 64;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t word = words[w];
    float* o = out + w * 64;
    for (size_t b = 0; b < 64; ++b) {
      o[b] = static_cast<float>((word >> b) & 1u);
    }
  }
  const size_t tail = num_bits & 63;
  if (tail != 0) {
    uint64_t word = words[full_words];
    float* o = out + full_words * 64;
    for (size_t b = 0; b < tail; ++b) {
      o[b] = static_cast<float>((word >> b) & 1u);
    }
  }
}

void ScalarAdd(float* dst, const float* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void ScalarAxpy(float* dst, const float* src, float a, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += a * src[i];
}

void ScalarDot8(const float* a, const float* b, size_t ldb, size_t k,
                float* out) {
  for (size_t j = 0; j < 8; ++j) {
    const float* brow = b + j * ldb;
    float s = 0.0f;
    for (size_t p = 0; p < k; ++p) s += a[p] * brow[p];
    out[j] = s;
  }
}

void ScalarGemv(const float* a, const float* b, size_t k, size_t n,
                float* c) {
  for (size_t j = 0; j < n; ++j) c[j] = 0.0f;
  for (size_t p = 0; p < k; ++p) {
    const float av = a[p];
    if (av == 0.0f) continue;
    const float* brow = b + p * n;
    for (size_t j = 0; j < n; ++j) c[j] += av * brow[j];
  }
}

/// Byte-at-a-time table for the Castagnoli polynomial (reflected form
/// 0x82F63B78) — the scalar reference the hardware tiers must match.
struct Crc32cTable {
  uint32_t t[256];
  constexpr Crc32cTable() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
      }
      t[i] = c;
    }
  }
};
constexpr Crc32cTable kCrc32cTable;

uint32_t ScalarCrc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t state = ~crc;
  for (size_t i = 0; i < n; ++i) {
    state = kCrc32cTable.t[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return ~state;
}

constexpr KernelOps kScalarOps = {
    ScalarPopcount, ScalarHamming, ScalarDiff, ScalarBitsToFloats,
    ScalarAdd,      ScalarAxpy,    ScalarDot8, ScalarGemv,
    ScalarCrc32c,
};

// ----------------------------------------------------- dispatch --

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define E2NVM_X86_CPUID 1
#endif

bool CpuHasAvx2() {
#ifdef E2NVM_X86_CPUID
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#ifdef E2NVM_X86_CPUID
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512vpopcntdq");
#else
  return false;
#endif
}

/// Best tier both compiled in and supported by this CPU.
SimdLevel DetectBest() {
  SimdLevel best = SimdLevel::kScalar;
#ifdef E2NVM_HAVE_AVX2
  if (CpuHasAvx2()) best = SimdLevel::kAvx2;
#endif
#ifdef E2NVM_HAVE_AVX512
  if (CpuHasAvx512()) best = SimdLevel::kAvx512;
#endif
  return best;
}

/// Applies the E2NVM_SIMD override: the requested tier, clamped to what
/// the build + CPU can actually deliver (never *above* `best`).
SimdLevel ApplyOverride(const char* env, SimdLevel best) {
  if (env == nullptr || *env == '\0') return best;
  SimdLevel req;
  if (std::strcmp(env, "scalar") == 0) {
    req = SimdLevel::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    req = SimdLevel::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    req = SimdLevel::kAvx512;
  } else {
    E2_LOG(kWarning,
           "unknown E2NVM_SIMD value '%s' (want scalar|avx2|avx512); "
           "using autodetected tier",
           env);
    return best;
  }
  return req < best ? req : best;
}

struct Dispatch {
  SimdLevel level;
  const KernelOps* ops;
};

const Dispatch& GetDispatch() {
  static const Dispatch d = [] {
    SimdLevel level =
        ApplyOverride(std::getenv("E2NVM_SIMD"), DetectBest());
    const KernelOps* ops = OpsFor(level);
    return Dispatch{level, ops != nullptr ? ops : &kScalarOps};
  }();
  return d;
}

}  // namespace

const KernelOps& Ops() { return *GetDispatch().ops; }

SimdLevel ActiveSimdLevel() { return GetDispatch().level; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const KernelOps* OpsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarOps;
    case SimdLevel::kAvx2:
#ifdef E2NVM_HAVE_AVX2
      if (CpuHasAvx2()) return internal::Avx2Ops();
#endif
      return nullptr;
    case SimdLevel::kAvx512:
#ifdef E2NVM_HAVE_AVX512
      if (CpuHasAvx512()) return internal::Avx512Ops();
#endif
      return nullptr;
  }
  return nullptr;
}

}  // namespace e2nvm
