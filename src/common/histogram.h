#ifndef E2NVM_COMMON_HISTOGRAM_H_
#define E2NVM_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace e2nvm {

/// Exact integer-valued histogram used to build the wear CDFs of Figure 19
/// ("P(address written <= 10) = 81%") and latency distributions. Counts are
/// kept per distinct value, which is fine for write counts (small domains).
class Histogram {
 public:
  /// Records one observation of `value`.
  void Add(uint64_t value) {
    ++counts_[value];
    ++n_;
  }

  /// Records `weight` observations of `value`.
  void AddN(uint64_t value, uint64_t weight) {
    counts_[value] += weight;
    n_ += weight;
  }

  /// Total number of observations.
  uint64_t count() const { return n_; }

  /// Empirical P(X <= value). Returns 0 if empty.
  double CdfAt(uint64_t value) const;

  /// Smallest v such that P(X <= v) >= q, for q in (0, 1]. Returns 0 if
  /// empty.
  uint64_t Quantile(double q) const;

  double Mean() const;
  uint64_t Min() const;
  uint64_t Max() const;

  /// Returns (value, cumulative probability) pairs covering the support,
  /// suitable for printing a CDF series.
  std::vector<std::pair<uint64_t, double>> CdfSeries() const;

  /// Renders a one-line summary: n/mean/min/p50/p90/p99/max.
  std::string Summary() const;

 private:
  std::map<uint64_t, uint64_t> counts_;
  uint64_t n_ = 0;
};

/// Streaming mean/min/max/stddev accumulator for real-valued series
/// (energy per operation, latency, loss).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double Variance() const;
  double Stddev() const;
  double sum() const { return sum_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace e2nvm

#endif  // E2NVM_COMMON_HISTOGRAM_H_
