#ifndef E2NVM_COMMON_THREAD_POOL_H_
#define E2NVM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace e2nvm {

/// A fixed-size worker pool with a ParallelFor helper — the concurrency
/// substrate behind the parallel ML kernels and the background retrainer.
///
/// Design constraints (DESIGN.md §8):
///  - no work stealing, one shared FIFO queue: the kernels submit coarse
///    index blocks, so queue contention is negligible and scheduling stays
///    easy to reason about;
///  - ParallelFor partitions an index range into blocks whose count
///    depends only on the range size (never on the thread count), so a
///    reduction that combines per-block partials in block order is
///    deterministic for any pool size;
///  - exceptions thrown by loop bodies are captured and the *first* one
///    (lowest block index) is rethrown on the calling thread;
///  - a ParallelFor issued from inside a worker (nested parallelism) runs
///    the loop inline on that worker instead of deadlocking on the queue;
///  - per-task randomness derives from TaskSeed(base, block), not from
///    any shared RNG, so parallel runs replay bit-for-bit.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is clamped to 1; a 1-thread pool is
  /// still useful (the background retrainer runs on it), but ParallelFor
  /// degenerates to the serial loop.
  explicit ThreadPool(size_t num_threads);

  /// Drains and joins. Pending tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues one task. The task must not block on other pool tasks
  /// unless more workers exist than blockers (use ParallelFor for
  /// fork-join work instead).
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end), spread across the pool.
  /// Blocks until all iterations finish (the caller participates in the
  /// work). Rethrows the first exception thrown by any iteration.
  /// `grain` is the minimum iterations per block; the number of blocks is
  /// a pure function of (end - begin, grain), never of num_threads().
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& body);

  /// Block-granular variant: body(block_begin, block_end, block_index).
  /// Preferred for kernels that keep per-block accumulators; combining
  /// the accumulators in block-index order gives results independent of
  /// the pool size.
  void ParallelForBlocks(
      size_t begin, size_t end, size_t grain,
      const std::function<void(size_t, size_t, size_t)>& body);

  /// Number of blocks ParallelFor* will use for a range of `n` items at
  /// `grain` — exposed so callers can pre-size per-block accumulators.
  static size_t NumBlocks(size_t n, size_t grain);

  /// Derives a deterministic seed for task/block `index` from `base`
  /// (SplitMix64 finalizer). Identical across pool sizes and platforms.
  static uint64_t TaskSeed(uint64_t base, uint64_t index);

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace e2nvm

#endif  // E2NVM_COMMON_THREAD_POOL_H_
