#ifndef E2NVM_COMMON_BITVEC_H_
#define E2NVM_COMMON_BITVEC_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/kernels.h"

namespace e2nvm {

/// A dense, fixed-size bit string backed by 64-bit words.
///
/// BitVector is the unit of content everywhere in this library: memory
/// segments, values to be written, dataset samples and model inputs are all
/// bit strings. The class exposes the operations the E2-NVM pipeline needs:
///  - Hamming distance (popcount over XOR), the placement similarity metric;
///  - differential-write support (which bits differ, per-cache-line dirtiness);
///  - conversion to/from float feature vectors for the ML models;
///  - rotation/inversion, used by the MinShift and Flip-N-Write baselines.
///
/// Bits are indexed LSB-first within each word: bit i lives in
/// word i/64, position i%64.
class BitVector {
 public:
  /// Creates an empty (zero-length) vector.
  BitVector() = default;

  /// Creates a vector of `num_bits` zero bits.
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Builds a vector from '0'/'1' characters, e.g. "01101". Any other
  /// character is treated as '0'. Bit 0 is the first character, matching the
  /// paper's left-to-right list notation [b0, b1, ...].
  static BitVector FromString(const std::string& bits);

  /// Builds a vector from a byte buffer (`num_bits` <= 8 * len).
  static BitVector FromBytes(const uint8_t* data, size_t len);

  /// Builds a vector from a float feature vector using `threshold`:
  /// bit i = (features[i] >= threshold).
  static BitVector FromFloats(const std::vector<float>& features,
                              float threshold = 0.5f);

  /// In-place assign from a word-aligned little-endian byte image of
  /// `num_bits` bits: `bytes` must hold 8 * ceil(num_bits / 64) bytes
  /// laid out exactly like words() (the wire value format of
  /// net/protocol.h). Reuses the existing word storage, so re-assigning
  /// into a vector that has reached its working width allocates nothing
  /// — the decode path of the zero-alloc network request loop. Tail bits
  /// beyond num_bits are masked to preserve the class invariant even
  /// when the source image carries garbage there.
  void AssignFromWords(const uint8_t* bytes, size_t num_bits) {
    num_bits_ = num_bits;
    words_.resize((num_bits + 63) / 64);
    if (!words_.empty()) {
      std::memcpy(words_.data(), bytes, words_.size() * sizeof(uint64_t));
    }
    MaskTail();
  }

  /// Shrinks to the first `n` bits in place (n <= size()); never
  /// allocates. The read-into paths use this to cut a decoded segment
  /// down to the value width stored in it.
  void Truncate(size_t n) {
    assert(n <= num_bits_);
    num_bits_ = n;
    words_.resize((n + 63) / 64);
    MaskTail();
  }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }
  size_t num_words() const { return words_.size(); }
  const std::vector<uint64_t>& words() const { return words_; }

  /// Reads bit `i`; requires i < size().
  bool Get(size_t i) const {
    assert(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit `i` to `value`; requires i < size().
  void Set(size_t i, bool value) {
    assert(i < num_bits_);
    uint64_t mask = uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Number of set bits.
  size_t Popcount() const;

  /// Number of differing bits between *this and `other`; both must have the
  /// same size. This is the similarity metric of the paper (§1).
  size_t HammingDistance(const BitVector& other) const;

  /// Set (0->1) and reset (1->0) transition counts of reprogramming
  /// cells holding `old_value` to `new_value` (same sizes) — Alg. 1's
  /// differential-write accounting in one SIMD-dispatched pass.
  static DiffCounts DiffStats(const BitVector& old_value,
                              const BitVector& new_value);

  /// Returns a vector with every bit inverted (used by Flip-N-Write).
  BitVector Inverted() const;

  /// Returns this vector rotated left by `k` bit positions (used by
  /// MinShift-style schemes). Rotation is modulo size().
  BitVector RotatedLeft(size_t k) const;

  /// Extracts bits [start, start+len) into a new vector.
  BitVector Slice(size_t start, size_t len) const;

  /// Overwrites bits [start, start+other.size()) with `other`.
  void Overlay(size_t start, const BitVector& other);

  /// Returns the concatenation *this || other.
  BitVector Concat(const BitVector& other) const;

  /// Number of cache lines of `line_bits` bits that contain at least one
  /// differing bit vs `other`. Models Optane's write-combining: identical
  /// cache lines are not re-written by the controller (paper §2.2).
  size_t DirtyLines(const BitVector& other, size_t line_bits) const;

  /// Converts to a float vector (0.0f / 1.0f per bit) for model input.
  std::vector<float> ToFloats() const;

  /// Writes size() floats (0.0f / 1.0f per bit) to `out` through the
  /// dispatched bit->float expansion kernel — the shared featurization
  /// path behind Bootstrap/Retrain snapshots, the write-path scratch
  /// inference, and ToFloats. `out` must have room for size() floats.
  void AppendFloatsTo(float* out) const;

  /// Renders as a '0'/'1' string (bit 0 first).
  std::string ToString() const;

  /// Fills with uniformly random bits drawn from `next_u64` (a callable
  /// returning uint64_t). Templated to avoid coupling to a concrete RNG.
  template <typename Rng>
  void Randomize(Rng& rng) {
    for (auto& w : words_) w = rng.NextU64();
    MaskTail();
  }

  /// Flips exactly `n` distinct randomly-chosen bits; `n <= size()`.
  /// Used to synthesize content at a controlled Hamming distance (Fig 1).
  template <typename Rng>
  void FlipRandomBits(size_t n, Rng& rng) {
    assert(n <= num_bits_);
    // Floyd's algorithm for distinct sampling when n is small relative to
    // size; fall back to a shuffle-free scan otherwise.
    if (n == 0) return;
    if (n * 4 <= num_bits_) {
      // Rejection sampling over a small set.
      std::vector<uint8_t> taken(num_bits_, 0);
      size_t flipped = 0;
      while (flipped < n) {
        size_t i = rng.NextU64() % num_bits_;
        if (!taken[i]) {
          taken[i] = 1;
          Set(i, !Get(i));
          ++flipped;
        }
      }
    } else {
      // Reservoir-style: choose n of num_bits_ positions.
      size_t remaining = n;
      for (size_t i = 0; i < num_bits_ && remaining > 0; ++i) {
        size_t left = num_bits_ - i;
        if (rng.NextU64() % left < remaining) {
          Set(i, !Get(i));
          --remaining;
        }
      }
    }
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  /// Zeroes bits beyond num_bits_ in the last word, preserving the invariant
  /// that unused tail bits are 0 (required for Popcount / equality).
  void MaskTail();

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace e2nvm

#endif  // E2NVM_COMMON_BITVEC_H_
