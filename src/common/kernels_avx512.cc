// AVX-512 kernel tier (AVX-512F + VPOPCNTDQ). Compiled with exactly
// those ISA flags plus -ffp-contract=off and WITHOUT -mfma — see the
// bit-identity contract in kernels.h. The masked loads/stores make every
// tail exact without scalar epilogues: masked-out lanes are
// architecturally guaranteed not to fault.
#include "common/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

namespace e2nvm::internal {
namespace {

inline __mmask8 TailMask8(size_t remaining) {
  return static_cast<__mmask8>((1u << remaining) - 1);
}

inline __mmask16 TailMask16(size_t remaining) {
  return static_cast<__mmask16>((1u << remaining) - 1);
}

size_t Avx512Popcount(const uint64_t* w, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
  }
  if (i < n) {
    __m512i v = _mm512_maskz_loadu_epi64(TailMask8(n - i), w + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<size_t>(_mm512_reduce_add_epi64(acc));
}

size_t Avx512Hamming(const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i diff = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                    _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(diff));
  }
  if (i < n) {
    __mmask8 m = TailMask8(n - i);
    __m512i diff = _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                    _mm512_maskz_loadu_epi64(m, b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(diff));
  }
  return static_cast<size_t>(_mm512_reduce_add_epi64(acc));
}

DiffCounts Avx512Diff(const uint64_t* old_w, const uint64_t* new_w,
                      size_t n) {
  __m512i set_acc = _mm512_setzero_si512();
  __m512i reset_acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i ov = _mm512_loadu_si512(old_w + i);
    __m512i nv = _mm512_loadu_si512(new_w + i);
    __m512i diff = _mm512_xor_si512(ov, nv);
    set_acc = _mm512_add_epi64(
        set_acc, _mm512_popcnt_epi64(_mm512_and_si512(diff, nv)));
    reset_acc = _mm512_add_epi64(
        reset_acc, _mm512_popcnt_epi64(_mm512_and_si512(diff, ov)));
  }
  if (i < n) {
    __mmask8 m = TailMask8(n - i);
    __m512i ov = _mm512_maskz_loadu_epi64(m, old_w + i);
    __m512i nv = _mm512_maskz_loadu_epi64(m, new_w + i);
    __m512i diff = _mm512_xor_si512(ov, nv);
    set_acc = _mm512_add_epi64(
        set_acc, _mm512_popcnt_epi64(_mm512_and_si512(diff, nv)));
    reset_acc = _mm512_add_epi64(
        reset_acc, _mm512_popcnt_epi64(_mm512_and_si512(diff, ov)));
  }
  DiffCounts d;
  d.sets = static_cast<size_t>(_mm512_reduce_add_epi64(set_acc));
  d.resets = static_cast<size_t>(_mm512_reduce_add_epi64(reset_acc));
  return d;
}

void Avx512BitsToFloats(const uint64_t* words, size_t num_bits,
                        float* out) {
  // Sixteen bits expand per step: the chunk itself is the write mask,
  // so a masked move of 1.0f materializes the floats directly.
  const __m512 ones = _mm512_set1_ps(1.0f);
  const uint16_t* chunks = reinterpret_cast<const uint16_t*>(words);
  const size_t full = num_bits / 16;
  for (size_t i = 0; i < full; ++i) {
    _mm512_storeu_ps(
        out + i * 16,
        _mm512_maskz_mov_ps(static_cast<__mmask16>(chunks[i]), ones));
  }
  for (size_t bit = full * 16; bit < num_bits; ++bit) {
    out[bit] = static_cast<float>((words[bit >> 6] >> (bit & 63)) & 1u);
  }
}

void Avx512Add(float* dst, const float* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i),
                                            _mm512_loadu_ps(src + i)));
  }
  if (i < n) {
    __mmask16 m = TailMask16(n - i);
    __m512 sum = _mm512_add_ps(_mm512_maskz_loadu_ps(m, dst + i),
                               _mm512_maskz_loadu_ps(m, src + i));
    _mm512_mask_storeu_ps(dst + i, m, sum);
  }
}

void Avx512Axpy(float* dst, const float* src, float a, size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(src + i));
    _mm512_storeu_ps(dst + i,
                     _mm512_add_ps(_mm512_loadu_ps(dst + i), prod));
  }
  if (i < n) {
    __mmask16 m = TailMask16(n - i);
    __m512 prod = _mm512_mul_ps(va, _mm512_maskz_loadu_ps(m, src + i));
    __m512 sum = _mm512_add_ps(_mm512_maskz_loadu_ps(m, dst + i), prod);
    _mm512_mask_storeu_ps(dst + i, m, sum);
  }
}

void Avx512Dot8(const float* a, const float* b, size_t ldb, size_t k,
                float* out) {
  // Same column-lane layout as the AVX2 tier (8 outputs fit a __m256);
  // each lane accumulates its products in ascending p.
  const __m256i idx = _mm256_setr_epi32(
      0, static_cast<int>(ldb), static_cast<int>(2 * ldb),
      static_cast<int>(3 * ldb), static_cast<int>(4 * ldb),
      static_cast<int>(5 * ldb), static_cast<int>(6 * ldb),
      static_cast<int>(7 * ldb));
  __m256 acc = _mm256_setzero_ps();
  for (size_t p = 0; p < k; ++p) {
    __m256 bv = _mm256_i32gather_ps(b + p, idx, 4);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[p]), bv));
  }
  _mm256_storeu_ps(out, acc);
}

void Avx512Gemv(const float* a, const float* b, size_t k, size_t n,
                float* c) {
  // Column tiles of 64 floats (4 zmm accumulators held across the whole
  // k-loop), then masked 16-wide steps for the tail. Per-element math is
  // ascending-p mul-then-add with zero a[p] skipped — bit-identical to
  // the scalar reference.
  size_t j = 0;
  for (; j + 64 <= n; j += 64) {
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    __m512 acc2 = _mm512_setzero_ps();
    __m512 acc3 = _mm512_setzero_ps();
    for (size_t p = 0; p < k; ++p) {
      const float av = a[p];
      if (av == 0.0f) continue;
      const __m512 vav = _mm512_set1_ps(av);
      const float* brow = b + p * n + j;
      acc0 = _mm512_add_ps(acc0,
                           _mm512_mul_ps(vav, _mm512_loadu_ps(brow)));
      acc1 = _mm512_add_ps(
          acc1, _mm512_mul_ps(vav, _mm512_loadu_ps(brow + 16)));
      acc2 = _mm512_add_ps(
          acc2, _mm512_mul_ps(vav, _mm512_loadu_ps(brow + 32)));
      acc3 = _mm512_add_ps(
          acc3, _mm512_mul_ps(vav, _mm512_loadu_ps(brow + 48)));
    }
    _mm512_storeu_ps(c + j, acc0);
    _mm512_storeu_ps(c + j + 16, acc1);
    _mm512_storeu_ps(c + j + 32, acc2);
    _mm512_storeu_ps(c + j + 48, acc3);
  }
  for (; j < n; j += 16) {
    const __mmask16 m =
        n - j >= 16 ? static_cast<__mmask16>(0xFFFF) : TailMask16(n - j);
    __m512 acc = _mm512_setzero_ps();
    for (size_t p = 0; p < k; ++p) {
      const float av = a[p];
      if (av == 0.0f) continue;
      __m512 bv = _mm512_maskz_loadu_ps(m, b + p * n + j);
      acc = _mm512_add_ps(acc, _mm512_mul_ps(_mm512_set1_ps(av), bv));
    }
    _mm512_mask_storeu_ps(c + j, m, acc);
  }
}

// CRC32C through the same SSE4.2 crc32 unit as the AVX2 tier (baseline
// on every AVX-512 CPU); duplicated here so the tier's table stands
// alone. See kernels_avx2.cc for the inversion convention.
uint32_t Avx512Crc32c(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t state = ~crc;
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    state = _mm_crc32_u64(state, word);
    p += 8;
    n -= 8;
  }
  auto s32 = static_cast<uint32_t>(state);
  while (n > 0) {
    s32 = _mm_crc32_u8(s32, *p++);
    --n;
  }
  return ~s32;
}

const KernelOps kAvx512Ops = {
    Avx512Popcount, Avx512Hamming, Avx512Diff, Avx512BitsToFloats,
    Avx512Add,      Avx512Axpy,    Avx512Dot8, Avx512Gemv,
    Avx512Crc32c,
};

}  // namespace

const KernelOps* Avx512Ops() { return &kAvx512Ops; }

}  // namespace e2nvm::internal

#else  // !(__AVX512F__ && __AVX512VPOPCNTDQ__)

namespace e2nvm::internal {
const KernelOps* Avx512Ops() { return nullptr; }
}  // namespace e2nvm::internal

#endif  // __AVX512F__ && __AVX512VPOPCNTDQ__
