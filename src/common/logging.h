#ifndef E2NVM_COMMON_LOGGING_H_
#define E2NVM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace e2nvm {

/// Severity for E2_LOG. Messages below the compile-time threshold
/// (E2NVM_MIN_LOG_LEVEL, default INFO) are compiled out of hot paths.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {
inline const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace internal_logging

#ifndef E2NVM_MIN_LOG_LEVEL
#define E2NVM_MIN_LOG_LEVEL 1  // kInfo
#endif

/// printf-style logging: E2_LOG(kInfo, "trained %zu epochs", n).
#define E2_LOG(level, ...)                                                   \
  do {                                                                       \
    if (static_cast<int>(::e2nvm::LogLevel::level) >= E2NVM_MIN_LOG_LEVEL) { \
      std::fprintf(stderr, "[%s %s:%d] ",                                    \
                   ::e2nvm::internal_logging::LevelName(                     \
                       ::e2nvm::LogLevel::level),                            \
                   __FILE__, __LINE__);                                      \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
    }                                                                        \
  } while (false)

/// Fatal check: aborts with a message when `cond` is false. Used for
/// programmer errors (API contract violations), not runtime failures —
/// those return Status.
#define E2_CHECK(cond, ...)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::fprintf(stderr, "[FATAL %s:%d] check failed: %s — ",    \
                   __FILE__, __LINE__, #cond);                     \
      std::fprintf(stderr, __VA_ARGS__);                           \
      std::fprintf(stderr, "\n");                                  \
      std::abort();                                                \
    }                                                              \
  } while (false)

}  // namespace e2nvm

#endif  // E2NVM_COMMON_LOGGING_H_
