#ifndef E2NVM_COMMON_BYTE_RING_H_
#define E2NVM_COMMON_BYTE_RING_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace e2nvm {

/// Grow-only contiguous byte FIFO — the per-connection staging buffer of
/// the network layer (net/server, net/client). Both the readable region
/// and the writable region are contiguous: producers Reserve()/Commit()
/// raw bytes at the tail, consumers read data()/size() and Consume() from
/// the head. Compaction (one memmove of the unread bytes) happens inside
/// Reserve() only when the tail hits the end of the backing store, and
/// the backing store never shrinks, so a ring that has reached its
/// working size stages arbitrarily many frames with zero allocations —
/// the property the zero-alloc steady-state request loop is built on.
///
/// Offsets relative to the readable head (see at()) stay valid across
/// Reserve()/Commit()/compaction; they are invalidated by Consume().
/// Thread-compatible: one owner, no internal synchronization.
class ByteRing {
 public:
  /// Unread bytes.
  size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  /// Bytes the backing store can hold (diagnostic).
  size_t capacity() const { return buf_.size(); }

  /// First unread byte; valid for size() bytes.
  const uint8_t* data() const { return buf_.data() + head_; }

  /// Byte at offset `off` from the readable head (for patching frames
  /// that were Reserve()d incrementally); requires off < size().
  uint8_t* at(size_t off) {
    assert(off < size());
    return buf_.data() + head_ + off;
  }

  /// Marks `n` leading bytes as read; requires n <= size().
  void Consume(size_t n) {
    assert(n <= size());
    head_ += n;
    if (head_ == tail_) head_ = tail_ = 0;  // Free rewind, no memmove.
  }

  /// Contiguous writable span of at least `n` bytes at the tail.
  /// Compacts (memmove) or grows the backing store as needed; existing
  /// unread bytes and head-relative offsets are preserved.
  uint8_t* Reserve(size_t n) {
    if (buf_.size() - tail_ < n) {
      if (buf_.size() - size() >= n && head_ > 0) {
        std::memmove(buf_.data(), buf_.data() + head_, size());
        tail_ -= head_;
        head_ = 0;
      } else {
        // Double (amortized O(1) growth) or fit, whichever is larger.
        std::vector<uint8_t> grown(
            std::max(buf_.size() * 2, size() + n));
        // Guard: an empty vector's data() may be null, and memcpy's
        // pointer args must be non-null even for zero sizes.
        if (size() > 0) {
          std::memcpy(grown.data(), buf_.data() + head_, size());
        }
        tail_ -= head_;
        head_ = 0;
        buf_.swap(grown);
      }
    }
    return buf_.data() + tail_;
  }

  /// Publishes `n` bytes previously written into Reserve()'s span.
  void Commit(size_t n) {
    assert(tail_ + n <= buf_.size());
    tail_ += n;
  }

  /// Reserve + memcpy + Commit in one call. A zero-byte append is a
  /// no-op (memcpy pointers must be non-null even for n == 0, and an
  /// untouched ring has no storage yet).
  void Append(const void* src, size_t n) {
    if (n == 0) return;
    std::memcpy(Reserve(n), src, n);
    Commit(n);
  }

  /// Drops all unread bytes (capacity retained).
  void Clear() { head_ = tail_ = 0; }

 private:
  std::vector<uint8_t> buf_;
  size_t head_ = 0;  // First unread byte.
  size_t tail_ = 0;  // One past the last written byte.
};

}  // namespace e2nvm

#endif  // E2NVM_COMMON_BYTE_RING_H_
