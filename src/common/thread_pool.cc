#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "common/lock_audit.h"

namespace e2nvm {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(num_threads, 1);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    // The queue mutex is shared by every pool client: submitting from a
    // steady-state shard operation would be a cross-shard serialization
    // point, so the acquisition is booked with the lock audit.
    debug::AuditedLockGuard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InWorkerThread() const {
  std::thread::id self = std::this_thread::get_id();
  for (const auto& t : threads_) {
    if (t.get_id() == self) return true;
  }
  return false;
}

size_t ThreadPool::NumBlocks(size_t n, size_t grain) {
  if (n == 0) return 0;
  grain = std::max<size_t>(grain, 1);
  return (n + grain - 1) / grain;
}

uint64_t ThreadPool::TaskSeed(uint64_t base, uint64_t index) {
  // SplitMix64 finalizer over base + golden-ratio stride — statistically
  // independent streams per block, reproducible on every platform.
  uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

/// Shared fork-join state for one ParallelFor call. Runners and the
/// caller claim block indices from `next`; the caller waits until every
/// claimed block has been finished (or abandoned after an exception).
struct ForState {
  size_t begin, end, grain, blocks;
  const std::function<void(size_t, size_t, size_t)>* body;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr first_ex;
  size_t first_ex_block = SIZE_MAX;

  void RunBlocks() {
    for (;;) {
      size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) return;
      size_t lo = begin + b * grain;
      size_t hi = std::min(lo + grain, end);
      try {
        (*body)(lo, hi, b);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (b < first_ex_block) {
          first_ex_block = b;
          first_ex = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == blocks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelForBlocks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (end <= begin) return;
  grain = std::max<size_t>(grain, 1);
  const size_t blocks = NumBlocks(end - begin, grain);

  // Serial fast path: tiny range, single-thread pool, or a nested call
  // from inside a worker (running inline avoids queue deadlock and keeps
  // nested kernels correct, just unparallelized).
  if (blocks <= 1 || threads_.size() <= 1 || InWorkerThread()) {
    for (size_t b = 0; b < blocks; ++b) {
      size_t lo = begin + b * grain;
      size_t hi = std::min(lo + grain, end);
      body(lo, hi, b);
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->blocks = blocks;
  state->body = &body;

  // One runner per worker (capped by the block count); the caller also
  // claims blocks, so the pool being busy never stalls the loop.
  size_t runners = std::min(threads_.size(), blocks - 1);
  for (size_t i = 0; i < runners; ++i) {
    Submit([state] { state->RunBlocks(); });
  }
  state->RunBlocks();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->blocks;
  });
  if (state->first_ex) std::rethrow_exception(state->first_ex);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& body) {
  ParallelForBlocks(begin, end, grain,
                    [&body](size_t lo, size_t hi, size_t) {
                      for (size_t i = lo; i < hi; ++i) body(i);
                    });
}

}  // namespace e2nvm
