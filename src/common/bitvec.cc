#include "common/bitvec.h"

#include <algorithm>

namespace e2nvm {

BitVector BitVector::FromString(const std::string& bits) {
  BitVector v(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') v.Set(i, true);
  }
  return v;
}

BitVector BitVector::FromBytes(const uint8_t* data, size_t len) {
  BitVector v(len * 8);
  for (size_t i = 0; i < len; ++i) {
    v.words_[i >> 3] |= uint64_t{data[i]} << ((i & 7) * 8);
  }
  return v;
}

BitVector BitVector::FromFloats(const std::vector<float>& features,
                                float threshold) {
  BitVector v(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i] >= threshold) v.Set(i, true);
  }
  return v;
}

size_t BitVector::Popcount() const {
  return Ops().popcount_words(words_.data(), words_.size());
}

size_t BitVector::HammingDistance(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  return Ops().hamming_words(words_.data(), other.words_.data(),
                             words_.size());
}

DiffCounts BitVector::DiffStats(const BitVector& old_value,
                                const BitVector& new_value) {
  assert(old_value.num_bits_ == new_value.num_bits_);
  return Ops().diff_words(old_value.words_.data(),
                          new_value.words_.data(),
                          old_value.words_.size());
}

BitVector BitVector::Inverted() const {
  BitVector v(num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) v.words_[i] = ~words_[i];
  v.MaskTail();
  return v;
}

BitVector BitVector::RotatedLeft(size_t k) const {
  BitVector v(num_bits_);
  if (num_bits_ == 0) return v;
  k %= num_bits_;
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) v.Set((i + k) % num_bits_, true);
  }
  return v;
}

BitVector BitVector::Slice(size_t start, size_t len) const {
  assert(start + len <= num_bits_);
  BitVector v(len);
  for (size_t i = 0; i < len; ++i) {
    if (Get(start + i)) v.Set(i, true);
  }
  return v;
}

void BitVector::Overlay(size_t start, const BitVector& other) {
  assert(start + other.size() <= num_bits_);
  for (size_t i = 0; i < other.size(); ++i) {
    Set(start + i, other.Get(i));
  }
}

BitVector BitVector::Concat(const BitVector& other) const {
  BitVector v(num_bits_ + other.num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) v.Set(i, true);
  }
  for (size_t i = 0; i < other.num_bits_; ++i) {
    if (other.Get(i)) v.Set(num_bits_ + i, true);
  }
  return v;
}

size_t BitVector::DirtyLines(const BitVector& other, size_t line_bits) const {
  assert(num_bits_ == other.num_bits_);
  assert(line_bits > 0);
  size_t dirty = 0;
  for (size_t start = 0; start < num_bits_; start += line_bits) {
    size_t end = std::min(start + line_bits, num_bits_);
    // Word-level scan of [start, end): XOR whole words, masking the
    // partial first/last word of lines not aligned to 64 bits.
    bool differs = false;
    const size_t w0 = start >> 6;
    const size_t w1 = (end + 63) >> 6;
    for (size_t w = w0; w < w1 && !differs; ++w) {
      uint64_t diff = words_[w] ^ other.words_[w];
      if (w == w0 && (start & 63) != 0) {
        diff &= ~uint64_t{0} << (start & 63);
      }
      if (w == w1 - 1 && (end & 63) != 0) {
        diff &= (uint64_t{1} << (end & 63)) - 1;
      }
      differs = diff != 0;
    }
    if (differs) ++dirty;
  }
  return dirty;
}

std::vector<float> BitVector::ToFloats() const {
  std::vector<float> out(num_bits_);
  AppendFloatsTo(out.data());
  return out;
}

void BitVector::AppendFloatsTo(float* out) const {
  Ops().bits_to_floats(words_.data(), num_bits_, out);
}

std::string BitVector::ToString() const {
  std::string s(num_bits_, '0');
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) s[i] = '1';
  }
  return s;
}

void BitVector::MaskTail() {
  size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace e2nvm
