#include "common/bitvec.h"

#include <algorithm>

namespace e2nvm {

BitVector BitVector::FromString(const std::string& bits) {
  BitVector v(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') v.Set(i, true);
  }
  return v;
}

BitVector BitVector::FromBytes(const uint8_t* data, size_t len) {
  BitVector v(len * 8);
  for (size_t i = 0; i < len; ++i) {
    v.words_[i >> 3] |= uint64_t{data[i]} << ((i & 7) * 8);
  }
  return v;
}

BitVector BitVector::FromFloats(const std::vector<float>& features,
                                float threshold) {
  BitVector v(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i] >= threshold) v.Set(i, true);
  }
  return v;
}

size_t BitVector::Popcount() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

size_t BitVector::HammingDistance(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  size_t n = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return n;
}

BitVector BitVector::Inverted() const {
  BitVector v(num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) v.words_[i] = ~words_[i];
  v.MaskTail();
  return v;
}

BitVector BitVector::RotatedLeft(size_t k) const {
  BitVector v(num_bits_);
  if (num_bits_ == 0) return v;
  k %= num_bits_;
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) v.Set((i + k) % num_bits_, true);
  }
  return v;
}

BitVector BitVector::Slice(size_t start, size_t len) const {
  assert(start + len <= num_bits_);
  BitVector v(len);
  for (size_t i = 0; i < len; ++i) {
    if (Get(start + i)) v.Set(i, true);
  }
  return v;
}

void BitVector::Overlay(size_t start, const BitVector& other) {
  assert(start + other.size() <= num_bits_);
  for (size_t i = 0; i < other.size(); ++i) {
    Set(start + i, other.Get(i));
  }
}

BitVector BitVector::Concat(const BitVector& other) const {
  BitVector v(num_bits_ + other.num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) v.Set(i, true);
  }
  for (size_t i = 0; i < other.num_bits_; ++i) {
    if (other.Get(i)) v.Set(num_bits_ + i, true);
  }
  return v;
}

size_t BitVector::DirtyLines(const BitVector& other, size_t line_bits) const {
  assert(num_bits_ == other.num_bits_);
  assert(line_bits > 0);
  size_t dirty = 0;
  for (size_t start = 0; start < num_bits_; start += line_bits) {
    size_t end = std::min(start + line_bits, num_bits_);
    bool differs = false;
    for (size_t i = start; i < end && !differs; ++i) {
      differs = Get(i) != other.Get(i);
    }
    if (differs) ++dirty;
  }
  return dirty;
}

std::vector<float> BitVector::ToFloats() const {
  std::vector<float> out(num_bits_);
  AppendFloatsTo(out.data());
  return out;
}

void BitVector::AppendFloatsTo(float* out) const {
  const size_t full_words = num_bits_ / 64;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t word = words_[w];
    float* o = out + w * 64;
    for (size_t b = 0; b < 64; ++b) {
      o[b] = static_cast<float>((word >> b) & 1u);
    }
  }
  const size_t tail = num_bits_ & 63;
  if (tail != 0) {
    uint64_t word = words_[full_words];
    float* o = out + full_words * 64;
    for (size_t b = 0; b < tail; ++b) {
      o[b] = static_cast<float>((word >> b) & 1u);
    }
  }
}

std::string BitVector::ToString() const {
  std::string s(num_bits_, '0');
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Get(i)) s[i] = '1';
  }
  return s;
}

void BitVector::MaskTail() {
  size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

}  // namespace e2nvm
