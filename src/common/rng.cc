#include "common/rng.h"

#include <cmath>

namespace e2nvm {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  has_gauss_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  // Gray et al.'s "Quickly generating billion-record synthetic databases".
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

LatestGenerator::LatestGenerator(uint64_t n) : zipf_(n) {}

uint64_t LatestGenerator::Next(Rng& rng, uint64_t max_seen) {
  uint64_t off = zipf_.Next(rng);
  if (off > max_seen) off = max_seen;
  return max_seen - off;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t n, double theta)
    : n_(n), zipf_(n, theta) {}

uint64_t ScrambledZipfianGenerator::Next(Rng& rng) {
  uint64_t rank = zipf_.Next(rng);
  return Fnv1a64(&rank, sizeof(rank)) % n_;
}

uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace e2nvm
