#ifndef E2NVM_WORKLOAD_TRACE_H_
#define E2NVM_WORKLOAD_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/ycsb.h"

namespace e2nvm::workload {

/// Operation kinds captured in a trace.
enum class TraceOp : uint8_t { kPut = 0, kGet = 1, kDelete = 2, kScan = 3 };

/// One recorded operation. Values are not stored inline; they are
/// re-materialized at replay time from (key, version) — the same
/// convention YcsbGenerator::MakeValue uses — so traces stay compact and
/// deterministic.
struct TraceRecord {
  TraceOp op;
  uint64_t key;
  uint32_t version;   // For kPut: the version written.
  uint32_t scan_len;  // For kScan.
};

/// Aggregate outcome of a Replay call.
struct ReplayStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t failures = 0;  // Operations whose callback returned !ok.
  uint64_t total() const { return puts + gets + deletes + scans; }
};

/// A recordable, serializable, replayable operation trace — the glue for
/// "run the same workload against N configurations" experiments and for
/// capturing regressions. The on-disk format is a small binary header
/// plus fixed-width records; loading validates magic and size.
class OpTrace {
 public:
  OpTrace() = default;

  void Append(TraceRecord record) { records_.push_back(record); }
  void Clear() { records_.clear(); }

  size_t size() const { return records_.size(); }
  const std::vector<TraceRecord>& records() const { return records_; }

  /// Serializes to `path` (overwrites).
  Status SaveTo(const std::string& path) const;

  /// Loads a trace written by SaveTo.
  static StatusOr<OpTrace> LoadFrom(const std::string& path);

  /// Drives the trace through caller-provided operation callbacks; each
  /// returns a Status, and failures are counted rather than aborting (a
  /// replay against a smaller device may legitimately hit NotFound).
  ReplayStats Replay(
      const std::function<Status(uint64_t key, uint32_t version)>& put,
      const std::function<Status(uint64_t key)>& get,
      const std::function<Status(uint64_t key)>& del,
      const std::function<Status(uint64_t key, uint32_t len)>& scan) const;

  /// Records `n` operations from a YCSB generator, tracking per-key
  /// versions so replayed PUT values match what the live run wrote.
  static OpTrace RecordFromYcsb(YcsbGenerator& gen, size_t n);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace e2nvm::workload

#endif  // E2NVM_WORKLOAD_TRACE_H_
