#include "workload/trace.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

namespace e2nvm::workload {

namespace {
constexpr uint64_t kTraceMagic = 0xE27A6CE07A6CE0ull;

struct FileHeader {
  uint64_t magic;
  uint64_t count;
};

struct FileRecord {
  uint8_t op;
  uint8_t pad[3];
  uint32_t version;
  uint64_t key;
  uint32_t scan_len;
  uint32_t pad2;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status OpTrace::SaveTo(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::Internal("cannot open " + path);
  FileHeader hdr{kTraceMagic, records_.size()};
  if (std::fwrite(&hdr, sizeof(hdr), 1, f.get()) != 1) {
    return Status::Internal("header write failed");
  }
  for (const TraceRecord& r : records_) {
    FileRecord fr{};
    fr.op = static_cast<uint8_t>(r.op);
    fr.version = r.version;
    fr.key = r.key;
    fr.scan_len = r.scan_len;
    if (std::fwrite(&fr, sizeof(fr), 1, f.get()) != 1) {
      return Status::Internal("record write failed");
    }
  }
  return Status::Ok();
}

StatusOr<OpTrace> OpTrace::LoadFrom(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  FileHeader hdr{};
  if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1) {
    return Status::DataLoss("truncated trace header");
  }
  if (hdr.magic != kTraceMagic) {
    return Status::DataLoss("bad trace magic");
  }
  OpTrace trace;
  trace.records_.reserve(hdr.count);
  for (uint64_t i = 0; i < hdr.count; ++i) {
    FileRecord fr{};
    if (std::fread(&fr, sizeof(fr), 1, f.get()) != 1) {
      return Status::DataLoss("truncated trace record");
    }
    if (fr.op > static_cast<uint8_t>(TraceOp::kScan)) {
      return Status::DataLoss("corrupt trace op");
    }
    trace.records_.push_back(TraceRecord{static_cast<TraceOp>(fr.op),
                                         fr.key, fr.version,
                                         fr.scan_len});
  }
  return trace;
}

ReplayStats OpTrace::Replay(
    const std::function<Status(uint64_t, uint32_t)>& put,
    const std::function<Status(uint64_t)>& get,
    const std::function<Status(uint64_t)>& del,
    const std::function<Status(uint64_t, uint32_t)>& scan) const {
  ReplayStats stats;
  for (const TraceRecord& r : records_) {
    Status s;
    switch (r.op) {
      case TraceOp::kPut:
        s = put(r.key, r.version);
        ++stats.puts;
        break;
      case TraceOp::kGet:
        s = get(r.key);
        ++stats.gets;
        break;
      case TraceOp::kDelete:
        s = del(r.key);
        ++stats.deletes;
        break;
      case TraceOp::kScan:
        s = scan(r.key, r.scan_len);
        ++stats.scans;
        break;
    }
    if (!s.ok()) ++stats.failures;
  }
  return stats;
}

OpTrace OpTrace::RecordFromYcsb(YcsbGenerator& gen, size_t n) {
  OpTrace trace;
  std::map<uint64_t, uint32_t> versions;
  for (size_t i = 0; i < n; ++i) {
    YcsbOp op = gen.Next();
    switch (op.type) {
      case OpType::kRead:
        trace.Append({TraceOp::kGet, op.key, 0, 0});
        break;
      case OpType::kScan:
        trace.Append({TraceOp::kScan, op.key, 0,
                      static_cast<uint32_t>(op.scan_len)});
        break;
      case OpType::kInsert:
        trace.Append({TraceOp::kPut, op.key, 0, 0});
        versions[op.key] = 0;
        break;
      case OpType::kDelete:
        trace.Append({TraceOp::kDelete, op.key, 0, 0});
        versions.erase(op.key);
        break;
      case OpType::kReadModifyWrite:
        trace.Append({TraceOp::kGet, op.key, 0, 0});
        [[fallthrough]];
      case OpType::kUpdate: {
        uint32_t v =
            versions.count(op.key) ? ++versions[op.key] : 0;
        versions[op.key] = v;
        trace.Append({TraceOp::kPut, op.key, v, 0});
        break;
      }
    }
  }
  return trace;
}

}  // namespace e2nvm::workload
