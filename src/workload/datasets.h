#ifndef E2NVM_WORKLOAD_DATASETS_H_
#define E2NVM_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "ml/matrix.h"

namespace e2nvm::workload {

/// A dataset of equal-sized bit vectors with (optional) latent class labels.
/// These are the synthetic stand-ins for the paper's corpora (MNIST,
/// Fashion-MNIST, CIFAR-10, ImageNet crops, CCTV/Sherbrooke video frames,
/// Amazon access logs, 3D road network, PubMed doc-words). What E2-NVM
/// exploits is *cluster structure in bit space*; every generator here
/// produces a controllable number of latent classes with controllable
/// intra-class vs inter-class Hamming distance.
struct BitDataset {
  std::string name;
  size_t dim = 0;
  std::vector<BitVector> items;
  std::vector<int> labels;

  size_t size() const { return items.size(); }

  /// Converts to an (n x dim) float matrix for model training.
  ml::Matrix ToMatrix() const;

  /// Splits off the first `fraction` of items as a training set and the
  /// remainder as test (the paper's 80/20 protocol in §5, Fig 14).
  std::pair<BitDataset, BitDataset> Split(double fraction) const;
};

/// Class-prototype generator: `num_classes` random prototypes of density
/// `proto_density`; each sample copies its class prototype and flips each
/// bit with probability `noise`. Mean intra-class Hamming distance is
/// 2*noise*(1-noise)*dim; inter-class distance is ~dim/2.
struct ProtoConfig {
  std::string name = "proto";
  size_t dim = 1024;
  size_t num_classes = 10;
  size_t samples = 2000;
  double proto_density = 0.5;
  double noise = 0.05;
  uint64_t seed = 1;
};
BitDataset MakeProtoDataset(const ProtoConfig& config);

/// MNIST-like: 784-bit "images" whose prototypes are unions of a few
/// blobs on a 28x28 grid (spatially-correlated structure, low density),
/// 10 classes.
BitDataset MakeMnistLike(size_t samples, uint64_t seed,
                         double noise = 0.04);

/// Fashion-MNIST-like: same grid, denser, blockier prototypes; a
/// *different* distribution family than MNIST-like (used by the Fig 17
/// distribution-shift scenarios).
BitDataset MakeFashionLike(size_t samples, uint64_t seed,
                           double noise = 0.06);

/// CIFAR-10-like: 1024-bit items, 10 classes, higher noise (harder to
/// cluster) — models the paper's hardest image dataset.
BitDataset MakeCifarLike(size_t samples, uint64_t seed,
                         double noise = 0.12);

/// Video-like stream: frames of `dim` bits; consecutive frames differ by
/// `frame_noise` of bits; a scene change flips `scene_change` of the bits
/// every `scene_len` frames (a static camera keeps its background across
/// scene changes, so cuts are partial, not full refreshes). Labels hold
/// the scene index. Models the CCTV / Sherbrooke traffic datasets where
/// successive frames are near-identical.
struct VideoConfig {
  std::string name = "cctv";
  size_t dim = 2048;
  size_t frames = 2000;
  double frame_noise = 0.02;
  size_t scene_len = 100;
  double scene_change = 0.25;
  uint64_t seed = 5;
};
BitDataset MakeVideoDataset(const VideoConfig& config);

/// Spatially-structured video: each scene is a set of blobs on a
/// side x side grid; successive frames translate the scene by one pixel
/// (camera/object motion), and scene changes redraw the blobs. Unlike
/// MakeVideoDataset (iid bits), frames have *within-frame* spatial
/// structure — runs of 1s that a sequence model can continue — which is
/// what the learned-padding experiments (Figs 14-15) exercise.
struct StructuredVideoConfig {
  size_t side = 28;       // dim = side * side bits.
  size_t frames = 1000;
  size_t scene_len = 60;
  size_t num_blobs = 6;
  double blob_radius = 0.22;  // Fraction of side.
  double noise = 0.01;        // Per-bit sensor noise per frame.
  uint64_t seed = 5;
};
BitDataset MakeStructuredVideoDataset(const StructuredVideoConfig& config);

/// Amazon-access-log-like numeric records: (user, resource, action, epoch)
/// tuples packed as fixed-point bit fields; users and resources are
/// Zipfian so popular entities repeat, giving records natural clusters.
BitDataset MakeAccessLogDataset(size_t records, size_t dim, uint64_t seed);

/// 3D-road-network-like records: quantized (lat, lon, altitude) triplets
/// sampled along random-walk "roads"; points on the same road are close in
/// bit space.
BitDataset MakeRoadNetworkDataset(size_t records, size_t dim, uint64_t seed);

/// PubMed-doc-word-like records: sparse presence vectors drawn from
/// per-topic word distributions over a `dim`-word vocabulary.
BitDataset MakePubMedLike(size_t records, size_t dim, size_t topics,
                          uint64_t seed);

/// Tiles or truncates every item of `ds` to exactly `dim` bits (repeating
/// content), so one dataset can feed devices with different segment sizes.
BitDataset ResizeItems(const BitDataset& ds, size_t dim);

/// The standard mixed-real-workload suite used by Figs 13: one dataset of
/// each family, resized to `dim`, concatenated and shuffled.
BitDataset MakeMixedRealDataset(size_t samples, size_t dim, uint64_t seed);

}  // namespace e2nvm::workload

#endif  // E2NVM_WORKLOAD_DATASETS_H_
