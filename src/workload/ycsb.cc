#include "workload/ycsb.h"

#include <cassert>

namespace e2nvm::workload {

const char* YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
      return "A";
    case YcsbWorkload::kB:
      return "B";
    case YcsbWorkload::kC:
      return "C";
    case YcsbWorkload::kD:
      return "D";
    case YcsbWorkload::kE:
      return "E";
    case YcsbWorkload::kF:
      return "F";
  }
  return "?";
}

YcsbGenerator::YcsbGenerator(const Config& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.record_count, config.zipf_theta),
      latest_(config.record_count),
      inserted_(config.record_count) {
  for (size_t w : config_.width_mix) {
    assert(w > 0 && w <= config_.value_bits);
    (void)w;
  }
}

uint64_t YcsbGenerator::ChooseExistingKey() {
  const uint64_t window = inserted_ - evicted_;
  if (config_.workload == YcsbWorkload::kD) {
    uint64_t key = latest_.Next(rng_, inserted_ - 1);
    // Churn may have retired old keys the latest chooser still reaches;
    // fold those back into the live window.
    return key < evicted_ ? evicted_ + key % window : key;
  }
  // Zipfian over the *loaded* key space; inserts beyond it are reached by
  // the latest chooser only, matching the YCSB core behavior closely
  // enough for placement experiments. Under churn the scrambled rank is
  // folded into the moving live window [evicted_, inserted_), keeping
  // the skew while the population turns over.
  uint64_t key = zipf_.Next(rng_);
  if (evicted_ == 0 && key < inserted_) return key;
  return evicted_ + key % window;
}

YcsbOp YcsbGenerator::Next() {
  if (config_.drift_period > 0 && ops_ > 0 &&
      ops_ % config_.drift_period == 0) {
    ++phase_;
  }
  ++ops_;
  if (config_.churn_fraction > 0 &&
      rng_.NextDouble() < config_.churn_fraction) {
    // Alternate insert/delete so the live window keeps its size while
    // its identity drifts; never let it shrink below half the initial
    // population (the skewed choosers need a working set to hit).
    const bool must_insert =
        inserted_ - evicted_ <= (config_.record_count + 1) / 2;
    if (churn_insert_next_ || must_insert) {
      churn_insert_next_ = false;
      return {OpType::kInsert, inserted_++};
    }
    churn_insert_next_ = true;
    return {OpType::kDelete, evicted_++};
  }
  double p = rng_.NextDouble();
  switch (config_.workload) {
    case YcsbWorkload::kA:
      if (p < 0.5) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kUpdate, ChooseExistingKey()};
    case YcsbWorkload::kB:
      if (p < 0.95) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kUpdate, ChooseExistingKey()};
    case YcsbWorkload::kC:
      return {OpType::kRead, ChooseExistingKey()};
    case YcsbWorkload::kD:
      if (p < 0.95) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kInsert, inserted_++};
    case YcsbWorkload::kE: {
      if (p < 0.95) {
        size_t len = 1 + rng_.NextBounded(config_.max_scan_len);
        return {OpType::kScan, ChooseExistingKey(), len};
      }
      return {OpType::kInsert, inserted_++};
    }
    case YcsbWorkload::kF:
      if (p < 0.5) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kReadModifyWrite, ChooseExistingKey()};
  }
  return {OpType::kRead, 0};
}

BitVector YcsbGenerator::MakeValue(uint64_t key, uint32_t version) const {
  // The class prototype is derived deterministically from key % classes
  // and the current drift phase (phase 0 reproduces the pre-drift
  // prototypes exactly); a per-(key, version) perturbation flips
  // value_noise of the bits.
  uint64_t cls = key % config_.num_value_classes;
  Rng proto_rng(0xBEEF0000ull + cls + phase_ * 0x9E3779B1ull);
  BitVector v(config_.value_bits);
  v.Randomize(proto_rng);

  Rng perturb_rng(Fnv1a64(&key, sizeof(key)) ^
                  (0x9E37ull * (version + 1)) ^ (phase_ * 0xA5A5ull));
  size_t flips = static_cast<size_t>(config_.value_noise *
                                     static_cast<double>(config_.value_bits));
  v.FlipRandomBits(flips, perturb_rng);
  if (!config_.width_mix.empty()) {
    uint64_t h = Fnv1a64(&key, sizeof(key)) ^
                 (0x517CC1B727220A95ull * (version + 1));
    size_t width = config_.width_mix[h % config_.width_mix.size()];
    if (width < v.size()) return v.Slice(0, width);
  }
  return v;
}

}  // namespace e2nvm::workload
