#include "workload/ycsb.h"

namespace e2nvm::workload {

const char* YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
      return "A";
    case YcsbWorkload::kB:
      return "B";
    case YcsbWorkload::kC:
      return "C";
    case YcsbWorkload::kD:
      return "D";
    case YcsbWorkload::kE:
      return "E";
    case YcsbWorkload::kF:
      return "F";
  }
  return "?";
}

YcsbGenerator::YcsbGenerator(const Config& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.record_count, 0.99),
      latest_(config.record_count),
      inserted_(config.record_count) {}

uint64_t YcsbGenerator::ChooseExistingKey() {
  if (config_.workload == YcsbWorkload::kD) {
    return latest_.Next(rng_, inserted_ - 1);
  }
  // Zipfian over the *loaded* key space; inserts beyond it are reached by
  // the latest chooser only, matching the YCSB core behavior closely
  // enough for placement experiments.
  return zipf_.Next(rng_);
}

YcsbOp YcsbGenerator::Next() {
  double p = rng_.NextDouble();
  switch (config_.workload) {
    case YcsbWorkload::kA:
      if (p < 0.5) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kUpdate, ChooseExistingKey()};
    case YcsbWorkload::kB:
      if (p < 0.95) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kUpdate, ChooseExistingKey()};
    case YcsbWorkload::kC:
      return {OpType::kRead, ChooseExistingKey()};
    case YcsbWorkload::kD:
      if (p < 0.95) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kInsert, inserted_++};
    case YcsbWorkload::kE: {
      if (p < 0.95) {
        size_t len = 1 + rng_.NextBounded(config_.max_scan_len);
        return {OpType::kScan, ChooseExistingKey(), len};
      }
      return {OpType::kInsert, inserted_++};
    }
    case YcsbWorkload::kF:
      if (p < 0.5) return {OpType::kRead, ChooseExistingKey()};
      return {OpType::kReadModifyWrite, ChooseExistingKey()};
  }
  return {OpType::kRead, 0};
}

BitVector YcsbGenerator::MakeValue(uint64_t key, uint32_t version) const {
  // The class prototype is derived deterministically from key % classes;
  // a per-(key, version) perturbation flips value_noise of the bits.
  uint64_t cls = key % config_.num_value_classes;
  Rng proto_rng(0xBEEF0000ull + cls);
  BitVector v(config_.value_bits);
  v.Randomize(proto_rng);

  Rng perturb_rng(Fnv1a64(&key, sizeof(key)) ^
                  (0x9E37ull * (version + 1)));
  size_t flips = static_cast<size_t>(config_.value_noise *
                                     static_cast<double>(config_.value_bits));
  BitVector copy = v;
  copy.FlipRandomBits(flips, perturb_rng);
  return copy;
}

}  // namespace e2nvm::workload
