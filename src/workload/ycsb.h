#ifndef E2NVM_WORKLOAD_YCSB_H_
#define E2NVM_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"

namespace e2nvm::workload {

/// The six YCSB core workloads (Cooper et al. [11]) used in Fig 11:
///   A: 50% read / 50% update, Zipfian
///   B: 95% read /  5% update, Zipfian
///   C: 100% read,             Zipfian
///   D: 95% read /  5% insert, latest
///   E: 95% scan /  5% insert, Zipfian
///   F: 50% read / 50% read-modify-write, Zipfian
enum class YcsbWorkload { kA, kB, kC, kD, kE, kF };

const char* YcsbWorkloadName(YcsbWorkload w);

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };

/// One generated operation.
struct YcsbOp {
  OpType type;
  uint64_t key;
  size_t scan_len = 0;  // For kScan.
};

/// Generates YCSB operations and structured values. Values are derived
/// from a per-key latent class (plus a version perturbation), so the value
/// stream has the cluster structure E2-NVM exploits — the analogue of
/// YCSB's field-structured records.
class YcsbGenerator {
 public:
  struct Config {
    YcsbWorkload workload = YcsbWorkload::kA;
    uint64_t record_count = 10000;
    size_t value_bits = 2048;
    size_t num_value_classes = 16;
    /// Per-write random perturbation applied to the class prototype.
    double value_noise = 0.05;
    size_t max_scan_len = 100;
    uint64_t seed = 11;
  };

  explicit YcsbGenerator(const Config& config);

  /// Next operation. Inserts extend the key space (workloads D and E).
  YcsbOp Next();

  /// Deterministic value for (key, version): version 0 is the load-phase
  /// value; each update bumps the version.
  BitVector MakeValue(uint64_t key, uint32_t version) const;

  /// Keys currently in the database (load keys + inserts so far).
  uint64_t current_records() const { return inserted_; }

  const Config& config() const { return config_; }

 private:
  uint64_t ChooseExistingKey();

  Config config_;
  Rng rng_;
  ScrambledZipfianGenerator zipf_;
  LatestGenerator latest_;
  uint64_t inserted_;
};

}  // namespace e2nvm::workload

#endif  // E2NVM_WORKLOAD_YCSB_H_
