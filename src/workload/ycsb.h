#ifndef E2NVM_WORKLOAD_YCSB_H_
#define E2NVM_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"

namespace e2nvm::workload {

/// The six YCSB core workloads (Cooper et al. [11]) used in Fig 11:
///   A: 50% read / 50% update, Zipfian
///   B: 95% read /  5% update, Zipfian
///   C: 100% read,             Zipfian
///   D: 95% read /  5% insert, latest
///   E: 95% scan /  5% insert, Zipfian
///   F: 50% read / 50% read-modify-write, Zipfian
enum class YcsbWorkload { kA, kB, kC, kD, kE, kF };

const char* YcsbWorkloadName(YcsbWorkload w);

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite,
                    kDelete };

/// One generated operation.
struct YcsbOp {
  OpType type;
  uint64_t key;
  size_t scan_len = 0;  // For kScan.
};

/// Generates YCSB operations and structured values. Values are derived
/// from a per-key latent class (plus a version perturbation), so the value
/// stream has the cluster structure E2-NVM exploits — the analogue of
/// YCSB's field-structured records.
///
/// Three orthogonal scenario axes extend the core workloads for the
/// scenario matrix (DESIGN.md §15):
///  - churn: a fraction of operations turn over the key population
///    (insert a fresh key / delete the oldest live key, alternating, so
///    the live-set size stays near record_count while its identity
///    drifts);
///  - drift: every `drift_period` operations the latent value-class
///    prototypes are re-drawn (a phase shift), so a trained placement
///    model goes stale and the store's efficiency trigger must fire;
///  - width mixing: value widths are drawn per (key, version) from
///    `width_mix`, exercising the padding strategies of §4.1.
class YcsbGenerator {
 public:
  struct Config {
    YcsbWorkload workload = YcsbWorkload::kA;
    uint64_t record_count = 10000;
    size_t value_bits = 2048;
    size_t num_value_classes = 16;
    /// Per-write random perturbation applied to the class prototype.
    double value_noise = 0.05;
    size_t max_scan_len = 100;
    uint64_t seed = 11;

    /// Zipfian skew of the key chooser, in (0, 1). YCSB's constant is
    /// 0.99; lower is closer to uniform.
    double zipf_theta = 0.99;

    /// Fraction of operations diverted into key-population turnover:
    /// alternating kInsert (a fresh key) and kDelete (the oldest live
    /// key). 0 disables churn. The live window never shrinks below half
    /// of record_count.
    double churn_fraction = 0.0;

    /// Operations per value-class phase; after each period the class
    /// prototypes are re-drawn, shifting the whole value distribution.
    /// 0 = static classes (the pre-drift behavior).
    uint64_t drift_period = 0;

    /// When non-empty, MakeValue truncates each value to a width drawn
    /// from this list by (key, version) hash. Every entry must be
    /// <= value_bits; value_bits remains the full/model width.
    std::vector<size_t> width_mix;
  };

  explicit YcsbGenerator(const Config& config);

  /// Next operation. Inserts extend the key space (workloads D and E,
  /// and churn); deletes (churn only) retire the oldest live key.
  YcsbOp Next();

  /// Deterministic value for (key, version) under the *current* phase:
  /// version 0 is the load-phase value; each update bumps the version.
  /// Replaying the same op stream (same config, same seed) regenerates
  /// the identical value stream.
  BitVector MakeValue(uint64_t key, uint32_t version) const;

  /// Keys ever inserted (load keys + inserts so far). Deletes do not
  /// shrink this; see live_records().
  uint64_t current_records() const { return inserted_; }

  /// Live keys: [oldest_live(), oldest_live() + live_records()).
  uint64_t live_records() const { return inserted_ - evicted_; }
  uint64_t oldest_live() const { return evicted_; }

  /// Current value-class phase (advances every drift_period operations;
  /// tests and harnesses can also force a shift with AdvancePhase).
  uint64_t phase() const { return phase_; }
  void AdvancePhase() { ++phase_; }

  const Config& config() const { return config_; }

 private:
  uint64_t ChooseExistingKey();

  Config config_;
  Rng rng_;
  ScrambledZipfianGenerator zipf_;
  LatestGenerator latest_;
  uint64_t inserted_;
  uint64_t evicted_ = 0;       // Keys below this were churned out.
  uint64_t ops_ = 0;           // Operations generated (drives drift).
  uint64_t phase_ = 0;         // Value-class phase.
  bool churn_insert_next_ = true;  // Alternates insert/delete pairs.
};

}  // namespace e2nvm::workload

#endif  // E2NVM_WORKLOAD_YCSB_H_
