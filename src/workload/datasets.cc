#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace e2nvm::workload {

ml::Matrix BitDataset::ToMatrix() const {
  ml::Matrix m(items.size(), dim);
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t d = 0; d < dim; ++d) {
      m(i, d) = items[i].Get(d) ? 1.0f : 0.0f;
    }
  }
  return m;
}

std::pair<BitDataset, BitDataset> BitDataset::Split(double fraction) const {
  BitDataset a, b;
  a.name = name + "-train";
  b.name = name + "-test";
  a.dim = b.dim = dim;
  size_t cut = static_cast<size_t>(static_cast<double>(items.size()) *
                                   fraction);
  for (size_t i = 0; i < items.size(); ++i) {
    BitDataset& dst = (i < cut) ? a : b;
    dst.items.push_back(items[i]);
    if (!labels.empty()) dst.labels.push_back(labels[i]);
  }
  return {std::move(a), std::move(b)};
}

namespace {

/// Flips each bit of `v` independently with probability `p`.
void PerturbBits(BitVector& v, double p, Rng& rng) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (rng.NextBernoulli(p)) v.Set(i, !v.Get(i));
  }
}

/// Writes `value`'s low `bits` bits into `v` at `pos` (fixed-point field
/// packing for the numeric datasets).
void PackBits(BitVector& v, size_t pos, uint64_t value, size_t bits) {
  for (size_t i = 0; i < bits && pos + i < v.size(); ++i) {
    v.Set(pos + i, (value >> i) & 1);
  }
}

/// Blob prototype on a `side` x `side` grid: union of `blobs` discs.
BitVector MakeBlobPrototype(size_t side, size_t blobs, double radius_frac,
                            Rng& rng) {
  BitVector v(side * side);
  for (size_t b = 0; b < blobs; ++b) {
    double cx = rng.NextDouble() * static_cast<double>(side);
    double cy = rng.NextDouble() * static_cast<double>(side);
    double r = (0.5 + rng.NextDouble()) * radius_frac *
               static_cast<double>(side);
    for (size_t y = 0; y < side; ++y) {
      for (size_t x = 0; x < side; ++x) {
        double dx = static_cast<double>(x) - cx;
        double dy = static_cast<double>(y) - cy;
        if (dx * dx + dy * dy <= r * r) v.Set(y * side + x, true);
      }
    }
  }
  return v;
}

BitDataset FromPrototypes(const std::string& name,
                          const std::vector<BitVector>& protos,
                          size_t samples, double noise, Rng& rng) {
  BitDataset ds;
  ds.name = name;
  ds.dim = protos.empty() ? 0 : protos[0].size();
  ds.items.reserve(samples);
  ds.labels.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    size_t c = rng.NextBounded(protos.size());
    BitVector item = protos[c];
    PerturbBits(item, noise, rng);
    ds.items.push_back(std::move(item));
    ds.labels.push_back(static_cast<int>(c));
  }
  return ds;
}

}  // namespace

BitDataset MakeProtoDataset(const ProtoConfig& config) {
  Rng rng(config.seed);
  std::vector<BitVector> protos;
  protos.reserve(config.num_classes);
  for (size_t c = 0; c < config.num_classes; ++c) {
    BitVector p(config.dim);
    for (size_t d = 0; d < config.dim; ++d) {
      if (rng.NextBernoulli(config.proto_density)) p.Set(d, true);
    }
    protos.push_back(std::move(p));
  }
  return FromPrototypes(config.name, protos, config.samples, config.noise,
                        rng);
}

BitDataset MakeMnistLike(size_t samples, uint64_t seed, double noise) {
  Rng rng(seed);
  std::vector<BitVector> protos;
  for (int c = 0; c < 10; ++c) {
    protos.push_back(MakeBlobPrototype(28, 2 + (c % 3), 0.18, rng));
  }
  BitDataset ds = FromPrototypes("mnist-like", protos, samples, noise, rng);
  return ds;
}

BitDataset MakeFashionLike(size_t samples, uint64_t seed, double noise) {
  Rng rng(seed ^ 0xFA5410Full);
  std::vector<BitVector> protos;
  for (int c = 0; c < 10; ++c) {
    // Blockier, denser silhouettes: 4-6 large blobs.
    protos.push_back(MakeBlobPrototype(28, 4 + (c % 3), 0.28, rng));
  }
  return FromPrototypes("fashion-like", protos, samples, noise, rng);
}

BitDataset MakeCifarLike(size_t samples, uint64_t seed, double noise) {
  Rng rng(seed ^ 0xC1FA0ull);
  std::vector<BitVector> protos;
  for (int c = 0; c < 10; ++c) {
    protos.push_back(MakeBlobPrototype(32, 5 + (c % 4), 0.22, rng));
  }
  BitDataset ds = FromPrototypes("cifar-like", protos, samples, noise, rng);
  return ds;
}

BitDataset MakeVideoDataset(const VideoConfig& config) {
  Rng rng(config.seed);
  BitDataset ds;
  ds.name = config.name;
  ds.dim = config.dim;
  BitVector frame(config.dim);
  frame.Randomize(rng);
  int scene = 0;
  for (size_t f = 0; f < config.frames; ++f) {
    if (f > 0 && f % config.scene_len == 0) {
      PerturbBits(frame, config.scene_change, rng);  // Partial scene cut.
      ++scene;
    } else if (f > 0) {
      PerturbBits(frame, config.frame_noise, rng);  // Motion.
    }
    ds.items.push_back(frame);
    ds.labels.push_back(scene);
  }
  return ds;
}

BitDataset MakeStructuredVideoDataset(
    const StructuredVideoConfig& config) {
  Rng rng(config.seed);
  BitDataset ds;
  ds.name = "cctv-structured";
  ds.dim = config.side * config.side;
  BitVector scene(ds.dim);
  int scene_id = -1;
  size_t dx = 0, dy = 0;
  for (size_t f = 0; f < config.frames; ++f) {
    if (f % config.scene_len == 0) {
      scene = MakeBlobPrototype(config.side, config.num_blobs,
                                config.blob_radius, rng);
      ++scene_id;
      dx = dy = 0;
    } else {
      // One-pixel pan per frame (wrapping).
      dx = (dx + 1) % config.side;
      if (dx == 0) dy = (dy + 1) % config.side;
    }
    BitVector frame(ds.dim);
    for (size_t y = 0; y < config.side; ++y) {
      for (size_t x = 0; x < config.side; ++x) {
        size_t sx = (x + dx) % config.side;
        size_t sy = (y + dy) % config.side;
        if (scene.Get(sy * config.side + sx)) {
          frame.Set(y * config.side + x, true);
        }
      }
    }
    PerturbBits(frame, config.noise, rng);
    ds.items.push_back(std::move(frame));
    ds.labels.push_back(scene_id);
  }
  return ds;
}

BitDataset MakeAccessLogDataset(size_t records, size_t dim, uint64_t seed) {
  E2_CHECK(dim >= 128, "access-log records need >= 128 bits");
  Rng rng(seed);
  ZipfianGenerator users(4096, 0.99);
  ZipfianGenerator resources(256, 0.99);
  BitDataset ds;
  ds.name = "amazon-access-like";
  ds.dim = dim;
  uint64_t epoch = 1'600'000'000;
  for (size_t i = 0; i < records; ++i) {
    BitVector v(dim);
    uint64_t user = users.Next(rng);
    uint64_t resource = resources.Next(rng);
    uint64_t action = rng.NextBounded(4);
    epoch += rng.NextBounded(30);
    // Unary popularity stripe: popular resources share long prefixes, so
    // records about the same resource have small Hamming distance.
    size_t stripe = std::min(dim / 2, static_cast<size_t>(resource) * 4);
    for (size_t b = 0; b < stripe; ++b) v.Set(b, true);
    PackBits(v, dim / 2, user, 32);
    PackBits(v, dim / 2 + 32, resource, 16);
    PackBits(v, dim / 2 + 48, action, 8);
    PackBits(v, dim / 2 + 56, epoch, 40);
    ds.items.push_back(std::move(v));
    ds.labels.push_back(static_cast<int>(resource % 32));
  }
  return ds;
}

BitDataset MakeRoadNetworkDataset(size_t records, size_t dim,
                                  uint64_t seed) {
  E2_CHECK(dim >= 96, "road-network records need >= 96 bits");
  Rng rng(seed);
  BitDataset ds;
  ds.name = "road-3d-like";
  ds.dim = dim;
  // Random-walk "roads": each road is a sequence of nearby points.
  double lat = 57.0, lon = 9.9, alt = 20.0;  // North Jutland-ish.
  int road = 0;
  for (size_t i = 0; i < records; ++i) {
    if (i % 64 == 0) {  // New road segment.
      lat = 56.5 + rng.NextDouble();
      lon = 9.0 + 2.0 * rng.NextDouble();
      alt = 50.0 * rng.NextDouble();
      ++road;
    } else {
      lat += (rng.NextDouble() - 0.5) * 1e-4;
      lon += (rng.NextDouble() - 0.5) * 1e-4;
      alt += (rng.NextDouble() - 0.5) * 0.2;
    }
    BitVector v(dim);
    // Gray-ish fixed point: quantize to 1e-6 degrees so nearby points
    // share high-order bits.
    PackBits(v, 0, static_cast<uint64_t>(lat * 1e6), 32);
    PackBits(v, 32, static_cast<uint64_t>(lon * 1e6), 32);
    PackBits(v, 64, static_cast<uint64_t>((alt + 100.0) * 100.0), 32);
    // Tile the triplet across the rest of the record (multi-point rows).
    for (size_t pos = 96; pos + 96 <= dim; pos += 96) {
      v.Overlay(pos, v.Slice(0, 96));
    }
    ds.items.push_back(std::move(v));
    ds.labels.push_back(road % 32);
  }
  return ds;
}

BitDataset MakePubMedLike(size_t records, size_t dim, size_t topics,
                          uint64_t seed) {
  Rng rng(seed);
  BitDataset ds;
  ds.name = "pubmed-like";
  ds.dim = dim;
  // Each topic concentrates on ~10% of the vocabulary.
  std::vector<std::vector<uint32_t>> topic_words(topics);
  for (size_t t = 0; t < topics; ++t) {
    size_t vocab = std::max<size_t>(dim / 10, 4);
    for (size_t w = 0; w < vocab; ++w) {
      topic_words[t].push_back(
          static_cast<uint32_t>(rng.NextBounded(dim)));
    }
  }
  for (size_t i = 0; i < records; ++i) {
    size_t t = rng.NextBounded(topics);
    BitVector v(dim);
    size_t words = dim / 20 + rng.NextBounded(dim / 20 + 1);
    for (size_t w = 0; w < words; ++w) {
      // 85% topical words, 15% background.
      uint32_t word =
          rng.NextBernoulli(0.85)
              ? topic_words[t][rng.NextBounded(topic_words[t].size())]
              : static_cast<uint32_t>(rng.NextBounded(dim));
      v.Set(word, true);
    }
    ds.items.push_back(std::move(v));
    ds.labels.push_back(static_cast<int>(t));
  }
  return ds;
}

BitDataset ResizeItems(const BitDataset& ds, size_t dim) {
  BitDataset out;
  out.name = ds.name;
  out.dim = dim;
  out.labels = ds.labels;
  out.items.reserve(ds.items.size());
  for (const auto& item : ds.items) {
    BitVector v(dim);
    for (size_t pos = 0; pos < dim; pos += item.size()) {
      size_t len = std::min(item.size(), dim - pos);
      v.Overlay(pos, item.Slice(0, len));
    }
    out.items.push_back(std::move(v));
  }
  return out;
}

BitDataset MakeMixedRealDataset(size_t samples, size_t dim, uint64_t seed) {
  size_t per = samples / 5 + 1;
  std::vector<BitDataset> parts;
  parts.push_back(ResizeItems(MakeMnistLike(per, seed), dim));
  parts.push_back(ResizeItems(MakeCifarLike(per, seed + 1), dim));
  parts.push_back(ResizeItems(
      MakeVideoDataset({.dim = dim, .frames = per, .seed = seed + 2}), dim));
  parts.push_back(
      ResizeItems(MakeAccessLogDataset(per, std::max<size_t>(dim, 128),
                                       seed + 3),
                  dim));
  parts.push_back(ResizeItems(
      MakePubMedLike(per, std::max<size_t>(dim, 128), 8, seed + 4), dim));

  BitDataset mixed;
  mixed.name = "mixed-real";
  mixed.dim = dim;
  for (size_t p = 0; p < parts.size(); ++p) {
    for (size_t i = 0; i < parts[p].items.size(); ++i) {
      mixed.items.push_back(parts[p].items[i]);
      mixed.labels.push_back(static_cast<int>(p));
    }
  }
  Rng rng(seed ^ 0xA11CEull);
  // Joint shuffle of items and labels.
  for (size_t i = mixed.items.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(mixed.items[i - 1], mixed.items[j]);
    std::swap(mixed.labels[i - 1], mixed.labels[j]);
  }
  mixed.items.resize(std::min(mixed.items.size(), samples));
  mixed.labels.resize(mixed.items.size());
  return mixed;
}

}  // namespace e2nvm::workload
