#include "nvm/device.h"

#include <algorithm>

#include "common/logging.h"

namespace e2nvm::nvm {

namespace {

/// Bit positions where `a` and `b` differ (both the same size).
std::vector<size_t> DiffBits(const BitVector& a, const BitVector& b) {
  std::vector<size_t> out;
  const auto& aw = a.words();
  const auto& bw = b.words();
  for (size_t w = 0; w < aw.size(); ++w) {
    uint64_t diff = aw[w] ^ bw[w];
    while (diff != 0) {
      int bit = std::countr_zero(diff);
      diff &= diff - 1;
      out.push_back(w * 64 + static_cast<size_t>(bit));
    }
  }
  return out;
}

}  // namespace

NvmDevice::NvmDevice(const DeviceConfig& config, EnergyMeter* meter)
    : config_(config),
      segments_(config.num_segments, BitVector(config.segment_bits)),
      seg_writes_(config.num_segments, 0),
      lanes_(new StatsLane[1]),
      model_(config.pcm),
      meter_(meter != nullptr ? meter : &own_meter_) {
  if (config_.track_bit_wear) {
    bit_wear_.assign(config_.num_segments * config_.segment_bits, 0);
  }
}

void NvmDevice::ConfigureAccountingLanes(size_t num_lanes,
                                         size_t segments_per_lane) {
  if (num_lanes == 0) num_lanes = 1;
  DeviceStats carry = stats();
  lanes_.reset(new StatsLane[num_lanes]);
  num_lanes_ = num_lanes;
  lane_segments_ = num_lanes > 1 ? segments_per_lane : 0;
  StatsLane& l0 = lanes_[0];
  l0.writes.store(carry.writes, std::memory_order_relaxed);
  l0.reads.store(carry.reads, std::memory_order_relaxed);
  l0.data_bits_flipped.store(carry.data_bits_flipped,
                             std::memory_order_relaxed);
  l0.aux_bits_flipped.store(carry.aux_bits_flipped,
                            std::memory_order_relaxed);
  l0.set_transitions.store(carry.set_transitions, std::memory_order_relaxed);
  l0.reset_transitions.store(carry.reset_transitions,
                             std::memory_order_relaxed);
  l0.dirty_lines.store(carry.dirty_lines, std::memory_order_relaxed);
  l0.logical_bits_written.store(carry.logical_bits_written,
                                std::memory_order_relaxed);
  l0.faults_injected.store(carry.faults_injected, std::memory_order_relaxed);
  l0.torn_writes.store(carry.torn_writes, std::memory_order_relaxed);
  l0.read_disturbs.store(carry.read_disturbs, std::memory_order_relaxed);
  l0.verify_retries.store(carry.verify_retries, std::memory_order_relaxed);
  l0.verify_failures.store(carry.verify_failures, std::memory_order_relaxed);
  l0.repaired_cells.store(carry.repaired_cells, std::memory_order_relaxed);
  meter_->SetLanes(num_lanes);
}

DeviceStats NvmDevice::stats() const {
  DeviceStats s;
  for (size_t l = 0; l < num_lanes_; ++l) {
    const StatsLane& lane = lanes_[l];
    s.writes += lane.writes.load(std::memory_order_relaxed);
    s.reads += lane.reads.load(std::memory_order_relaxed);
    s.data_bits_flipped +=
        lane.data_bits_flipped.load(std::memory_order_relaxed);
    s.aux_bits_flipped +=
        lane.aux_bits_flipped.load(std::memory_order_relaxed);
    s.set_transitions += lane.set_transitions.load(std::memory_order_relaxed);
    s.reset_transitions +=
        lane.reset_transitions.load(std::memory_order_relaxed);
    s.dirty_lines += lane.dirty_lines.load(std::memory_order_relaxed);
    s.logical_bits_written +=
        lane.logical_bits_written.load(std::memory_order_relaxed);
    s.faults_injected += lane.faults_injected.load(std::memory_order_relaxed);
    s.torn_writes += lane.torn_writes.load(std::memory_order_relaxed);
    s.read_disturbs += lane.read_disturbs.load(std::memory_order_relaxed);
    s.verify_retries += lane.verify_retries.load(std::memory_order_relaxed);
    s.verify_failures += lane.verify_failures.load(std::memory_order_relaxed);
    s.repaired_cells += lane.repaired_cells.load(std::memory_order_relaxed);
  }
  return s;
}

void NvmDevice::AttachFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  if (injector_ != nullptr) {
    injector_->Bind(config_.num_segments, config_.segment_bits,
                    config_.pcm.endurance_writes);
  }
}

const BitVector& NvmDevice::ReadSegment(size_t seg) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  const size_t lane = LaneOfSegment(seg);
  Bump(lanes_[lane].reads, 1);
  meter_->ChargeLane(lane, EnergyDomain::kPmemRead,
                     model_.ReadPj(config_.segment_bits));
  size_t lines = (config_.segment_bits + kCacheLineBits - 1) / kCacheLineBits;
  meter_->AdvanceTimeLane(lane, model_.ReadNs(lines));
  if (injector_ != nullptr) {
    // Thread-local: the disturbed copy is consumed (decoded) by the
    // caller before its next read, and concurrent shard readers must not
    // share one buffer.
    thread_local BitVector read_buf;
    read_buf = segments_[seg];
    if (injector_->MutateRead(seg, &read_buf)) {
      Bump(lanes_[lane].read_disturbs, 1);
      return read_buf;
    }
  }
  return segments_[seg];
}

void NvmDevice::CommitStored(size_t seg, const BitVector& stored,
                             size_t* set_bits, size_t* reset_bits) {
  BitVector& cells = segments_[seg];
  const bool walk_bits = config_.track_bit_wear || injector_ != nullptr;
  if (!walk_bits) {
    // Fast case: only the aggregate transition counts are needed, and
    // the dispatched diff kernel produces both in one vectorized pass.
    DiffCounts d = BitVector::DiffStats(cells, stored);
    cells = stored;
    *set_bits = d.sets;
    *reset_bits = d.resets;
    return;
  }
  size_t sets = 0;
  size_t resets = 0;
  const auto& old_words = cells.words();
  const auto& new_words = stored.words();
  for (size_t w = 0; w < old_words.size(); ++w) {
    uint64_t diff = old_words[w] ^ new_words[w];
    if (diff == 0) continue;
    sets += static_cast<size_t>(std::popcount(diff & new_words[w]));
    resets += static_cast<size_t>(std::popcount(diff & old_words[w]));
    uint64_t d = diff;
    while (d != 0) {
      int bit = std::countr_zero(d);
      d &= d - 1;
      size_t bit_index = w * 64 + static_cast<size_t>(bit);
      size_t idx = seg * config_.segment_bits + bit_index;
      uint64_t wear = seg_writes_[seg];
      if (config_.track_bit_wear && idx < bit_wear_.size()) {
        wear = ++bit_wear_[idx];
      }
      if (injector_ != nullptr) {
        injector_->OnCellProgrammed(seg, bit_index,
                                    (new_words[w] >> bit) & 1, wear);
      }
    }
  }
  cells = stored;
  *set_bits = sets;
  *reset_bits = resets;
}

void NvmDevice::ProgramCells(size_t seg, const BitVector& intended,
                             bool allow_tear) {
  // Only the injector may perturb the program image; without one the
  // intended bits are committed directly, with no copy on the hot path.
  // (The thread-local scratch reuses its capacity, so even the injector
  // path settles into zero allocations, and concurrent shard writers
  // never share a program image.)
  const BitVector* target = &intended;
  bool injected = false;
  bool torn = false;
  if (injector_ != nullptr) {
    thread_local BitVector write_buf;
    write_buf = intended;
    injected = injector_->MutateWrite(seg, segments_[seg], &write_buf,
                                      allow_tear, &torn);
    target = &write_buf;
  }
  size_t dirty = target->DirtyLines(segments_[seg], kCacheLineBits);
  size_t set_bits = 0;
  size_t reset_bits = 0;
  CommitStored(seg, *target, &set_bits, &reset_bits);
  const size_t lane = LaneOfSegment(seg);
  StatsLane& slab = lanes_[lane];
  if (injected) Bump(slab.faults_injected, 1);
  if (torn) Bump(slab.torn_writes, 1);
  Bump(slab.set_transitions, set_bits);
  Bump(slab.reset_transitions, reset_bits);
  Bump(slab.dirty_lines, dirty);
  meter_->ChargeLane(lane, EnergyDomain::kPmemWrite,
                     model_.WritePj(set_bits, reset_bits, dirty));
  meter_->AdvanceTimeLane(lane, model_.WriteNs(dirty));
}

WriteResult NvmDevice::WriteSegment(size_t seg, const BitVector& data,
                                    WriteScheme& scheme) {
  WriteResult result;
  WriteSegmentInto(seg, data, scheme, &result);
  return result;
}

void NvmDevice::WriteSegmentInto(size_t seg, const BitVector& data,
                                 WriteScheme& scheme,
                                 WriteResult* result_out) {
  WriteResult& result = *result_out;
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(data.size() == config_.segment_bits,
           "data size %zu != segment bits %zu", data.size(),
           config_.segment_bits);
  scheme.WriteInto(seg, segments_[seg], data, &result);
  E2_CHECK(result.stored.size() == config_.segment_bits,
           "scheme %s produced wrong stored size",
           std::string(scheme.name()).c_str());

  ++seg_writes_[seg];
  const size_t lane = LaneOfSegment(seg);
  StatsLane& slab = lanes_[lane];
  Bump(slab.writes, 1);
  Bump(slab.data_bits_flipped, result.data_bits_flipped);
  Bump(slab.aux_bits_flipped, result.aux_bits_flipped);
  Bump(slab.logical_bits_written, data.size());
  ProgramCells(seg, result.stored, /*allow_tear=*/true);

  // Aux flips happen in metadata cells; charge them at SET cost.
  meter_->ChargeLane(lane, EnergyDomain::kPmemWrite,
                     static_cast<double>(result.aux_bits_flipped) *
                         config_.pcm.set_energy_pj);

  // Write-verify: read back and re-program while the committed cells
  // differ from the intended image (torn writes heal on retry; stuck
  // cells need the spare-cell repair below).
  if (config_.verify_writes && injector_ != nullptr) {
    size_t attempts = 1;
    size_t max_attempts = std::max<size_t>(config_.max_write_retries, 1);
    while (!(segments_[seg] == result.stored) && attempts < max_attempts) {
      ++attempts;
      ++result.verify_retries;
      Bump(slab.verify_retries, 1);
      ProgramCells(seg, result.stored, /*allow_tear=*/true);
    }
    if (!(segments_[seg] == result.stored)) {
      // Only persistently faulty (stuck) cells survive retries. Remap
      // them to spares if the segment's budget allows, then program the
      // intended image with a final careful (no-tear) pulse.
      std::vector<size_t> bad = DiffBits(segments_[seg], result.stored);
      if (injector_->RepairCells(seg, bad)) {
        Bump(slab.repaired_cells, bad.size());
        Bump(slab.verify_retries, 1);
        ++result.verify_retries;
        ProgramCells(seg, result.stored, /*allow_tear=*/false);
      }
      if (!(segments_[seg] == result.stored)) {
        result.verify_failed = true;
        Bump(slab.verify_failures, 1);
      }
    }
  }
}

void NvmDevice::SeedSegment(size_t seg, const BitVector& content) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(content.size() == config_.segment_bits,
           "seed size %zu != segment bits %zu", content.size(),
           config_.segment_bits);
  segments_[seg] = content;
}

void NvmDevice::MigrateSegment(size_t src, size_t dst) {
  E2_CHECK(src < segments_.size() && dst < segments_.size(),
           "migrate out of range");
  BitVector stored = segments_[src];
  // Gap moves are raw cell copies: stuck destination cells still hold
  // their value, but there is no verify pass (the leveler is below the
  // layer that could re-place the data).
  if (injector_ != nullptr) injector_->ClampStuck(dst, &stored);
  const BitVector& old = segments_[dst];
  size_t flips = stored.HammingDistance(old);
  size_t dirty = stored.DirtyLines(old, kCacheLineBits);
  size_t set_bits = 0;
  size_t reset_bits = 0;
  ++seg_writes_[dst];
  CommitStored(dst, stored, &set_bits, &reset_bits);
  const size_t lane = LaneOfSegment(dst);
  StatsLane& slab = lanes_[lane];
  Bump(slab.writes, 1);
  Bump(slab.data_bits_flipped, flips);
  Bump(slab.set_transitions, set_bits);
  Bump(slab.reset_transitions, reset_bits);
  Bump(slab.dirty_lines, dirty);
  meter_->ChargeLane(lane, EnergyDomain::kPmemWrite,
                     model_.WritePj(set_bits, reset_bits, dirty) +
                         model_.ReadPj(config_.segment_bits));
  meter_->AdvanceTimeLane(lane, model_.WriteNs(dirty));
}

void NvmDevice::FlipCellRaw(size_t seg, size_t bit) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(bit < config_.segment_bits, "bit %zu out of range", bit);
  segments_[seg].Set(bit, !segments_[seg].Get(bit));
}

void NvmDevice::ResetStats() {
  for (size_t l = 0; l < num_lanes_; ++l) {
    StatsLane& lane = lanes_[l];
    for (std::atomic<uint64_t>* c :
         {&lane.writes, &lane.reads, &lane.data_bits_flipped,
          &lane.aux_bits_flipped, &lane.set_transitions,
          &lane.reset_transitions, &lane.dirty_lines,
          &lane.logical_bits_written, &lane.faults_injected,
          &lane.torn_writes, &lane.read_disturbs, &lane.verify_retries,
          &lane.verify_failures, &lane.repaired_cells}) {
      c->store(0, std::memory_order_relaxed);
    }
  }
}

Histogram NvmDevice::SegmentWriteHistogram() const {
  Histogram h;
  for (uint64_t c : seg_writes_) h.Add(c);
  return h;
}

StatusOr<Histogram> NvmDevice::BitWearHistogram() const {
  if (!config_.track_bit_wear) {
    return Status::FailedPrecondition(
        "device created without track_bit_wear");
  }
  Histogram h;
  for (uint32_t c : bit_wear_) h.Add(c);
  return h;
}

uint64_t NvmDevice::MaxCellWear() const {
  if (config_.track_bit_wear) {
    uint32_t mx = 0;
    for (uint32_t c : bit_wear_) mx = std::max(mx, c);
    return mx;
  }
  // Without per-bit tracking, a segment write is an upper bound on any
  // cell's wear within it.
  uint64_t mx = 0;
  for (uint64_t c : seg_writes_) mx = std::max(mx, c);
  return mx;
}

}  // namespace e2nvm::nvm
