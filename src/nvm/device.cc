#include "nvm/device.h"

#include <algorithm>

#include "common/logging.h"

namespace e2nvm::nvm {

namespace {

/// Bit positions where `a` and `b` differ (both the same size).
std::vector<size_t> DiffBits(const BitVector& a, const BitVector& b) {
  std::vector<size_t> out;
  const auto& aw = a.words();
  const auto& bw = b.words();
  for (size_t w = 0; w < aw.size(); ++w) {
    uint64_t diff = aw[w] ^ bw[w];
    while (diff != 0) {
      int bit = std::countr_zero(diff);
      diff &= diff - 1;
      out.push_back(w * 64 + static_cast<size_t>(bit));
    }
  }
  return out;
}

}  // namespace

NvmDevice::NvmDevice(const DeviceConfig& config, EnergyMeter* meter)
    : config_(config),
      segments_(config.num_segments, BitVector(config.segment_bits)),
      seg_writes_(config.num_segments, 0),
      model_(config.pcm),
      meter_(meter != nullptr ? meter : &own_meter_) {
  if (config_.track_bit_wear) {
    bit_wear_.assign(config_.num_segments * config_.segment_bits, 0);
  }
}

void NvmDevice::AttachFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  if (injector_ != nullptr) {
    injector_->Bind(config_.num_segments, config_.segment_bits,
                    config_.pcm.endurance_writes);
  }
}

const BitVector& NvmDevice::ReadSegment(size_t seg) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
  }
  meter_->Charge(EnergyDomain::kPmemRead,
                 model_.ReadPj(config_.segment_bits));
  size_t lines = (config_.segment_bits + kCacheLineBits - 1) / kCacheLineBits;
  meter_->AdvanceTime(model_.ReadNs(lines));
  if (injector_ != nullptr) {
    // Thread-local: the disturbed copy is consumed (decoded) by the
    // caller before its next read, and concurrent shard readers must not
    // share one buffer.
    thread_local BitVector read_buf;
    read_buf = segments_[seg];
    if (injector_->MutateRead(seg, &read_buf)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.read_disturbs;
      return read_buf;
    }
  }
  return segments_[seg];
}

void NvmDevice::CommitStored(size_t seg, const BitVector& stored,
                             size_t* set_bits, size_t* reset_bits) {
  BitVector& cells = segments_[seg];
  const bool walk_bits = config_.track_bit_wear || injector_ != nullptr;
  if (!walk_bits) {
    // Fast case: only the aggregate transition counts are needed, and
    // the dispatched diff kernel produces both in one vectorized pass.
    DiffCounts d = BitVector::DiffStats(cells, stored);
    cells = stored;
    *set_bits = d.sets;
    *reset_bits = d.resets;
    return;
  }
  size_t sets = 0;
  size_t resets = 0;
  const auto& old_words = cells.words();
  const auto& new_words = stored.words();
  for (size_t w = 0; w < old_words.size(); ++w) {
    uint64_t diff = old_words[w] ^ new_words[w];
    if (diff == 0) continue;
    sets += static_cast<size_t>(std::popcount(diff & new_words[w]));
    resets += static_cast<size_t>(std::popcount(diff & old_words[w]));
    uint64_t d = diff;
    while (d != 0) {
      int bit = std::countr_zero(d);
      d &= d - 1;
      size_t bit_index = w * 64 + static_cast<size_t>(bit);
      size_t idx = seg * config_.segment_bits + bit_index;
      uint64_t wear = seg_writes_[seg];
      if (config_.track_bit_wear && idx < bit_wear_.size()) {
        wear = ++bit_wear_[idx];
      }
      if (injector_ != nullptr) {
        injector_->OnCellProgrammed(seg, bit_index,
                                    (new_words[w] >> bit) & 1, wear);
      }
    }
  }
  cells = stored;
  *set_bits = sets;
  *reset_bits = resets;
}

void NvmDevice::ProgramCells(size_t seg, const BitVector& intended,
                             bool allow_tear) {
  // Only the injector may perturb the program image; without one the
  // intended bits are committed directly, with no copy on the hot path.
  // (The thread-local scratch reuses its capacity, so even the injector
  // path settles into zero allocations, and concurrent shard writers
  // never share a program image.)
  const BitVector* target = &intended;
  bool injected = false;
  bool torn = false;
  if (injector_ != nullptr) {
    thread_local BitVector write_buf;
    write_buf = intended;
    injected = injector_->MutateWrite(seg, segments_[seg], &write_buf,
                                      allow_tear, &torn);
    target = &write_buf;
  }
  size_t dirty = target->DirtyLines(segments_[seg], kCacheLineBits);
  size_t set_bits = 0;
  size_t reset_bits = 0;
  CommitStored(seg, *target, &set_bits, &reset_bits);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (injected) ++stats_.faults_injected;
    if (torn) ++stats_.torn_writes;
    stats_.set_transitions += set_bits;
    stats_.reset_transitions += reset_bits;
    stats_.dirty_lines += dirty;
  }
  meter_->Charge(EnergyDomain::kPmemWrite,
                 model_.WritePj(set_bits, reset_bits, dirty));
  meter_->AdvanceTime(model_.WriteNs(dirty));
}

WriteResult NvmDevice::WriteSegment(size_t seg, const BitVector& data,
                                    WriteScheme& scheme) {
  WriteResult result;
  WriteSegmentInto(seg, data, scheme, &result);
  return result;
}

void NvmDevice::WriteSegmentInto(size_t seg, const BitVector& data,
                                 WriteScheme& scheme,
                                 WriteResult* result_out) {
  WriteResult& result = *result_out;
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(data.size() == config_.segment_bits,
           "data size %zu != segment bits %zu", data.size(),
           config_.segment_bits);
  scheme.WriteInto(seg, segments_[seg], data, &result);
  E2_CHECK(result.stored.size() == config_.segment_bits,
           "scheme %s produced wrong stored size",
           std::string(scheme.name()).c_str());

  ++seg_writes_[seg];
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.writes;
    stats_.data_bits_flipped += result.data_bits_flipped;
    stats_.aux_bits_flipped += result.aux_bits_flipped;
    stats_.logical_bits_written += data.size();
  }
  ProgramCells(seg, result.stored, /*allow_tear=*/true);

  // Aux flips happen in metadata cells; charge them at SET cost.
  meter_->Charge(EnergyDomain::kPmemWrite,
                 static_cast<double>(result.aux_bits_flipped) *
                     config_.pcm.set_energy_pj);

  // Write-verify: read back and re-program while the committed cells
  // differ from the intended image (torn writes heal on retry; stuck
  // cells need the spare-cell repair below).
  if (config_.verify_writes && injector_ != nullptr) {
    size_t attempts = 1;
    size_t max_attempts = std::max<size_t>(config_.max_write_retries, 1);
    while (!(segments_[seg] == result.stored) && attempts < max_attempts) {
      ++attempts;
      ++result.verify_retries;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.verify_retries;
      }
      ProgramCells(seg, result.stored, /*allow_tear=*/true);
    }
    if (!(segments_[seg] == result.stored)) {
      // Only persistently faulty (stuck) cells survive retries. Remap
      // them to spares if the segment's budget allows, then program the
      // intended image with a final careful (no-tear) pulse.
      std::vector<size_t> bad = DiffBits(segments_[seg], result.stored);
      if (injector_->RepairCells(seg, bad)) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.repaired_cells += bad.size();
          ++stats_.verify_retries;
        }
        ++result.verify_retries;
        ProgramCells(seg, result.stored, /*allow_tear=*/false);
      }
      if (!(segments_[seg] == result.stored)) {
        result.verify_failed = true;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.verify_failures;
      }
    }
  }
}

void NvmDevice::SeedSegment(size_t seg, const BitVector& content) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(content.size() == config_.segment_bits,
           "seed size %zu != segment bits %zu", content.size(),
           config_.segment_bits);
  segments_[seg] = content;
}

void NvmDevice::MigrateSegment(size_t src, size_t dst) {
  E2_CHECK(src < segments_.size() && dst < segments_.size(),
           "migrate out of range");
  BitVector stored = segments_[src];
  // Gap moves are raw cell copies: stuck destination cells still hold
  // their value, but there is no verify pass (the leveler is below the
  // layer that could re-place the data).
  if (injector_ != nullptr) injector_->ClampStuck(dst, &stored);
  const BitVector& old = segments_[dst];
  size_t flips = stored.HammingDistance(old);
  size_t dirty = stored.DirtyLines(old, kCacheLineBits);
  size_t set_bits = 0;
  size_t reset_bits = 0;
  ++seg_writes_[dst];
  CommitStored(dst, stored, &set_bits, &reset_bits);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.writes;
    stats_.data_bits_flipped += flips;
    stats_.set_transitions += set_bits;
    stats_.reset_transitions += reset_bits;
    stats_.dirty_lines += dirty;
  }
  meter_->Charge(EnergyDomain::kPmemWrite,
                 model_.WritePj(set_bits, reset_bits, dirty) +
                     model_.ReadPj(config_.segment_bits));
  meter_->AdvanceTime(model_.WriteNs(dirty));
}

void NvmDevice::FlipCellRaw(size_t seg, size_t bit) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(bit < config_.segment_bits, "bit %zu out of range", bit);
  segments_[seg].Set(bit, !segments_[seg].Get(bit));
}

void NvmDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = DeviceStats{};
}

Histogram NvmDevice::SegmentWriteHistogram() const {
  Histogram h;
  for (uint64_t c : seg_writes_) h.Add(c);
  return h;
}

StatusOr<Histogram> NvmDevice::BitWearHistogram() const {
  if (!config_.track_bit_wear) {
    return Status::FailedPrecondition(
        "device created without track_bit_wear");
  }
  Histogram h;
  for (uint32_t c : bit_wear_) h.Add(c);
  return h;
}

uint64_t NvmDevice::MaxCellWear() const {
  if (config_.track_bit_wear) {
    uint32_t mx = 0;
    for (uint32_t c : bit_wear_) mx = std::max(mx, c);
    return mx;
  }
  // Without per-bit tracking, a segment write is an upper bound on any
  // cell's wear within it.
  uint64_t mx = 0;
  for (uint64_t c : seg_writes_) mx = std::max(mx, c);
  return mx;
}

}  // namespace e2nvm::nvm
