#include "nvm/device.h"

#include <algorithm>

#include "common/logging.h"

namespace e2nvm::nvm {

NvmDevice::NvmDevice(const DeviceConfig& config, EnergyMeter* meter)
    : config_(config),
      segments_(config.num_segments, BitVector(config.segment_bits)),
      seg_writes_(config.num_segments, 0),
      model_(config.pcm),
      meter_(meter != nullptr ? meter : &own_meter_) {
  if (config_.track_bit_wear) {
    bit_wear_.assign(config_.num_segments * config_.segment_bits, 0);
  }
}

const BitVector& NvmDevice::ReadSegment(size_t seg) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  ++stats_.reads;
  meter_->Charge(EnergyDomain::kPmemRead,
                 model_.ReadPj(config_.segment_bits));
  size_t lines = (config_.segment_bits + kCacheLineBits - 1) / kCacheLineBits;
  meter_->AdvanceTime(model_.ReadNs(lines));
  return segments_[seg];
}

void NvmDevice::CommitStored(size_t seg, const BitVector& stored,
                             size_t* set_bits, size_t* reset_bits) {
  BitVector& cells = segments_[seg];
  size_t sets = 0;
  size_t resets = 0;
  const auto& old_words = cells.words();
  const auto& new_words = stored.words();
  for (size_t w = 0; w < old_words.size(); ++w) {
    uint64_t diff = old_words[w] ^ new_words[w];
    if (diff == 0) continue;
    sets += static_cast<size_t>(std::popcount(diff & new_words[w]));
    resets += static_cast<size_t>(std::popcount(diff & old_words[w]));
    if (config_.track_bit_wear) {
      uint64_t d = diff;
      while (d != 0) {
        int bit = std::countr_zero(d);
        d &= d - 1;
        size_t idx = seg * config_.segment_bits + w * 64 +
                     static_cast<size_t>(bit);
        if (idx < bit_wear_.size()) ++bit_wear_[idx];
      }
    }
  }
  cells = stored;
  *set_bits = sets;
  *reset_bits = resets;
}

WriteResult NvmDevice::WriteSegment(size_t seg, const BitVector& data,
                                    WriteScheme& scheme) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(data.size() == config_.segment_bits,
           "data size %zu != segment bits %zu", data.size(),
           config_.segment_bits);
  const BitVector& old = segments_[seg];
  WriteResult result = scheme.Write(seg, old, data);
  E2_CHECK(result.stored.size() == config_.segment_bits,
           "scheme %s produced wrong stored size",
           std::string(scheme.name()).c_str());

  size_t set_bits = 0;
  size_t reset_bits = 0;
  size_t dirty =
      result.stored.DirtyLines(old, kCacheLineBits);
  CommitStored(seg, result.stored, &set_bits, &reset_bits);

  ++stats_.writes;
  ++seg_writes_[seg];
  stats_.data_bits_flipped += result.data_bits_flipped;
  stats_.aux_bits_flipped += result.aux_bits_flipped;
  stats_.set_transitions += set_bits;
  stats_.reset_transitions += reset_bits;
  stats_.dirty_lines += dirty;
  stats_.logical_bits_written += data.size();

  // Aux flips happen in metadata cells; charge them at SET cost and fold
  // into the write energy.
  double pj = model_.WritePj(set_bits, reset_bits, dirty) +
              static_cast<double>(result.aux_bits_flipped) *
                  config_.pcm.set_energy_pj;
  meter_->Charge(EnergyDomain::kPmemWrite, pj);
  meter_->AdvanceTime(model_.WriteNs(dirty));
  return result;
}

void NvmDevice::SeedSegment(size_t seg, const BitVector& content) {
  E2_CHECK(seg < segments_.size(), "segment %zu out of range", seg);
  E2_CHECK(content.size() == config_.segment_bits,
           "seed size %zu != segment bits %zu", content.size(),
           config_.segment_bits);
  segments_[seg] = content;
}

void NvmDevice::MigrateSegment(size_t src, size_t dst) {
  E2_CHECK(src < segments_.size() && dst < segments_.size(),
           "migrate out of range");
  const BitVector stored = segments_[src];
  const BitVector& old = segments_[dst];
  size_t flips = stored.HammingDistance(old);
  size_t dirty = stored.DirtyLines(old, kCacheLineBits);
  size_t set_bits = 0;
  size_t reset_bits = 0;
  CommitStored(dst, stored, &set_bits, &reset_bits);
  ++stats_.writes;
  ++seg_writes_[dst];
  stats_.data_bits_flipped += flips;
  stats_.set_transitions += set_bits;
  stats_.reset_transitions += reset_bits;
  stats_.dirty_lines += dirty;
  meter_->Charge(EnergyDomain::kPmemWrite,
                 model_.WritePj(set_bits, reset_bits, dirty) +
                     model_.ReadPj(config_.segment_bits));
  meter_->AdvanceTime(model_.WriteNs(dirty));
}

void NvmDevice::ResetStats() { stats_ = DeviceStats{}; }

Histogram NvmDevice::SegmentWriteHistogram() const {
  Histogram h;
  for (uint64_t c : seg_writes_) h.Add(c);
  return h;
}

StatusOr<Histogram> NvmDevice::BitWearHistogram() const {
  if (!config_.track_bit_wear) {
    return Status::FailedPrecondition(
        "device created without track_bit_wear");
  }
  Histogram h;
  for (uint32_t c : bit_wear_) h.Add(c);
  return h;
}

uint64_t NvmDevice::MaxCellWear() const {
  if (config_.track_bit_wear) {
    uint32_t mx = 0;
    for (uint32_t c : bit_wear_) mx = std::max(mx, c);
    return mx;
  }
  // Without per-bit tracking, a segment write is an upper bound on any
  // cell's wear within it.
  uint64_t mx = 0;
  for (uint64_t c : seg_writes_) mx = std::max(mx, c);
  return mx;
}

}  // namespace e2nvm::nvm
