#include "nvm/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/lock_audit.h"
#include "common/logging.h"

namespace e2nvm::nvm {

void FaultInjector::Bind(size_t num_segments, size_t segment_bits,
                         uint64_t endurance_writes) {
  E2_CHECK(segment_bits > 0, "fault injector bound to empty geometry");
  debug::AuditedLockGuard lock(mu_);
  num_segments_ = num_segments;
  segment_bits_ = segment_bits;
  wear_onset_ = static_cast<uint64_t>(config_.wear_onset_fraction *
                                      static_cast<double>(endurance_writes));

  if (config_.initial_stuck_fraction > 0.0) {
    uint64_t total = static_cast<uint64_t>(num_segments) * segment_bits;
    auto want = static_cast<uint64_t>(
        config_.initial_stuck_fraction * static_cast<double>(total));
    while (stuck_.size() < want) {
      uint64_t cell = rng_.NextBounded(total);
      if (stuck_.emplace(cell, rng_.NextBernoulli(0.5)).second) {
        ++stats_.stuck_cells;
        ++stats_.cells_stuck_total;
      }
    }
  }
  armed_stuck_cells_.store(stuck_.size(), std::memory_order_release);
}

void FaultInjector::StickCell(size_t seg, size_t bit, bool value) {
  E2_CHECK(bound(), "fault injector not bound to a device");
  debug::AuditedLockGuard lock(mu_);
  auto [it, inserted] = stuck_.insert_or_assign(CellKey(seg, bit), value);
  if (inserted) {
    ++stats_.stuck_cells;
    ++stats_.cells_stuck_total;
    armed_stuck_cells_.store(stuck_.size(), std::memory_order_release);
  }
}

bool FaultInjector::MutateWrite(size_t seg, const BitVector& old,
                                BitVector* stored, bool allow_tear,
                                bool* torn) {
  if (WriteUnarmed(allow_tear)) {
    // Behavior-identical to the locked path in this state: no tear can
    // fire (so no rng draw), and ClampStuckLocked would early-return on
    // an empty stuck set without touching stats. Skipping the mutex
    // keeps an attached-but-unarmed injector off the steady-state
    // shared-lock audit (DESIGN.md §13).
    if (torn != nullptr) *torn = false;
    return false;
  }
  debug::AuditedLockGuard lock(mu_);
  bool perturbed = false;
  if (torn != nullptr) *torn = false;

  // Torn write: commit only the first k of the changed bits; the rest keep
  // their old value. k is uniform over [0, changed), so at least one
  // change is always lost when a tear fires.
  if (allow_tear && config_.torn_write_probability > 0.0 &&
      rng_.NextBernoulli(config_.torn_write_probability)) {
    std::vector<size_t> changed;
    for (size_t w = 0; w < stored->words().size(); ++w) {
      uint64_t diff = stored->words()[w] ^ old.words()[w];
      while (diff != 0) {
        int bit = std::countr_zero(diff);
        diff &= diff - 1;
        changed.push_back(w * 64 + static_cast<size_t>(bit));
      }
    }
    if (!changed.empty()) {
      size_t keep = static_cast<size_t>(rng_.NextBounded(changed.size()));
      for (size_t i = keep; i < changed.size(); ++i) {
        stored->Set(changed[i], old.Get(changed[i]));
      }
      ++stats_.torn_writes;
      if (torn != nullptr) *torn = true;
      perturbed = true;
    }
  }

  if (ClampStuckLocked(seg, stored)) perturbed = true;
  return perturbed;
}

bool FaultInjector::ClampStuck(size_t seg, BitVector* stored) {
  if (armed_stuck_cells_.load(std::memory_order_acquire) == 0) return false;
  debug::AuditedLockGuard lock(mu_);
  return ClampStuckLocked(seg, stored);
}

bool FaultInjector::ClampStuckLocked(size_t seg, BitVector* stored) {
  if (stuck_.empty()) return false;
  bool clamped = false;
  // Iterating the whole map would be O(total stuck); bound the scan by
  // whichever is smaller, the segment width or the stuck set.
  if (stuck_.size() < segment_bits_) {
    uint64_t lo = static_cast<uint64_t>(seg) * segment_bits_;
    for (const auto& [cell, value] : stuck_) {
      if (cell < lo || cell >= lo + segment_bits_) continue;
      size_t bit = static_cast<size_t>(cell - lo);
      if (stored->Get(bit) != value) {
        stored->Set(bit, value);
        clamped = true;
      }
    }
  } else {
    for (size_t bit = 0; bit < segment_bits_; ++bit) {
      auto it = stuck_.find(CellKey(seg, bit));
      if (it != stuck_.end() && stored->Get(bit) != it->second) {
        stored->Set(bit, it->second);
        clamped = true;
      }
    }
  }
  if (clamped) ++stats_.stuck_clamps;
  return clamped;
}

void FaultInjector::OnCellProgrammed(size_t seg, size_t bit, bool value,
                                     uint64_t wear) {
  // wear_onset_ is fixed by Bind before any datapath call, so this
  // pre-lock rejection of the common case is race-free.
  if (wear < wear_onset_ || config_.stuck_on_program_probability <= 0.0) {
    return;
  }
  debug::AuditedLockGuard lock(mu_);
  if (!rng_.NextBernoulli(config_.stuck_on_program_probability)) return;
  if (stuck_.emplace(CellKey(seg, bit), value).second) {
    ++stats_.stuck_cells;
    ++stats_.cells_stuck_total;
    armed_stuck_cells_.store(stuck_.size(), std::memory_order_release);
  }
}

bool FaultInjector::MutateRead(size_t seg, BitVector* out) {
  if (config_.read_disturb_probability <= 0.0 || out->size() == 0) {
    return false;
  }
  debug::AuditedLockGuard lock(mu_);
  if (!rng_.NextBernoulli(config_.read_disturb_probability)) return false;
  size_t bit = static_cast<size_t>(rng_.NextBounded(out->size()));
  out->Set(bit, !out->Get(bit));
  ++stats_.read_disturbs;
  return true;
}

bool FaultInjector::RepairCells(size_t seg, const std::vector<size_t>& bits) {
  debug::AuditedLockGuard lock(mu_);
  size_t stuck_n = 0;
  for (size_t bit : bits) {
    if (stuck_.count(CellKey(seg, bit)) != 0) ++stuck_n;
  }
  size_t used = SparesUsedLocked(seg);
  if (used + stuck_n > config_.spare_cells_per_segment) {
    ++stats_.repairs_denied;
    return false;
  }
  for (size_t bit : bits) {
    if (stuck_.erase(CellKey(seg, bit)) != 0) {
      --stats_.stuck_cells;
      ++stats_.repaired_cells;
    }
  }
  if (stuck_n > 0) {
    spares_used_[seg] = used + stuck_n;
    armed_stuck_cells_.store(stuck_.size(), std::memory_order_release);
  }
  return true;
}

}  // namespace e2nvm::nvm
