#ifndef E2NVM_NVM_DEVICE_H_
#define E2NVM_NVM_DEVICE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "common/histogram.h"
#include "common/status.h"
#include "nvm/constants.h"
#include "nvm/energy.h"
#include "nvm/fault_injector.h"
#include "nvm/write_scheme.h"

namespace e2nvm::nvm {

/// Configuration of a simulated NVM device.
struct DeviceConfig {
  /// Number of fixed-size memory segments.
  size_t num_segments = 1024;
  /// Bits per segment (the paper's motivating block is 256 B = 2048 bits).
  size_t segment_bits = 2048;
  /// Track per-bit flip counts (needed by the Fig 19 wear CDFs; costs
  /// 4 bytes per cell).
  bool track_bit_wear = false;
  /// Read back every write and re-program mismatched cells (bounded by
  /// max_write_retries). Only meaningful with a FaultInjector attached —
  /// a fault-free device always verifies clean on the first pass.
  bool verify_writes = false;
  /// Total program attempts per write before falling back to spare-cell
  /// repair (and, failing that, reporting verify_failed). Must be >= 1.
  size_t max_write_retries = 3;
  /// Physical cost parameters.
  PcmParams pcm;
};

/// Aggregate device statistics.
struct DeviceStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t data_bits_flipped = 0;
  uint64_t aux_bits_flipped = 0;
  uint64_t set_transitions = 0;    // 0 -> 1 programs
  uint64_t reset_transitions = 0;  // 1 -> 0 programs
  uint64_t dirty_lines = 0;
  uint64_t logical_bits_written = 0;  // Payload size of every write summed.

  // --- Fault handling (all zero without a FaultInjector) ---
  uint64_t faults_injected = 0;   // Programs perturbed by the injector.
  uint64_t torn_writes = 0;       // Programs that committed a prefix only.
  uint64_t read_disturbs = 0;     // Reads returned with a flipped bit.
  uint64_t verify_retries = 0;    // Extra program attempts after read-back.
  uint64_t verify_failures = 0;   // Writes left wrong after retries+repair.
  uint64_t repaired_cells = 0;    // Stuck cells remapped to spares.

  uint64_t total_bits_flipped() const {
    return data_bits_flipped + aux_bits_flipped;
  }
  /// The paper's headline metric: average bit updates per write (Fig 2)
  /// or per written data bit (Fig 12).
  double FlipsPerWrite() const {
    return writes ? static_cast<double>(total_bits_flipped()) /
                        static_cast<double>(writes)
                  : 0.0;
  }
  double FlipsPerDataBit() const {
    return logical_bits_written
               ? static_cast<double>(total_bits_flipped()) /
                     static_cast<double>(logical_bits_written)
               : 0.0;
  }
};

/// A simulated PCM/Optane device: an array of fixed-size bit segments with
/// per-segment write counters, optional per-bit wear tracking, and energy /
/// latency accounting through an EnergyMeter.
///
/// This is the substitution for the paper's real Optane DIMM: the paper
/// itself measures bit flips on an *emulated* device (§5.2, "bit flip
/// reduction ... cannot be measured using the real device") and shows
/// (Fig 1) that Optane energy is monotone in flips, which is precisely the
/// coupling this model implements.
///
/// Concurrency (DESIGN.md §10, §13): one device may serve N shards, each
/// reading/writing only its own segment range from its own thread.
/// Per-segment state (cells, write counts, bit wear) needs no locking
/// under that discipline; the aggregate counters are striped into
/// per-lane relaxed-atomic accounting slabs routed by segment range
/// (ConfigureAccountingLanes), merged only by `stats()` — there is no
/// device-level mutex anywhere on the read/write path. Each lane is
/// single-writer under the shard discipline, so the merged counts are
/// exact and bit-identical to a serial replay (integers commute; the
/// meter's energy merge contract is documented in energy.h). `stats()`
/// returns a merged value snapshot; taken while writers are active it is
/// a per-lane-consistent merge, taken quiescent it is exact. Fault
/// injection is concurrency-safe under the same per-segment discipline —
/// but note the injector serializes on its own internal mutex, so it is
/// excluded from the "no shard-external lock" steady-state guarantee.
class NvmDevice {
 public:
  /// Creates a device with all cells zero. The meter is optional; if null,
  /// an internal meter is used.
  explicit NvmDevice(const DeviceConfig& config,
                     EnergyMeter* meter = nullptr);

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  size_t num_segments() const { return config_.num_segments; }
  size_t segment_bits() const { return config_.segment_bits; }
  const DeviceConfig& config() const { return config_; }

  /// Reads segment `seg`, charging read energy and latency.
  const BitVector& ReadSegment(size_t seg);

  /// Zero-cost inspection of a segment's content — used for software
  /// bookkeeping that would live in DRAM copies (training snapshots), not
  /// for the datapath.
  const BitVector& PeekSegment(size_t seg) const {
    return segments_[seg];
  }

  /// Writes `data` to segment `seg` through `scheme`, updating storage,
  /// flip counters, per-bit wear, and charging energy/latency.
  /// `data.size()` must equal segment_bits().
  WriteResult WriteSegment(size_t seg, const BitVector& data,
                           WriteScheme& scheme);

  /// Allocation-free WriteSegment: encodes and commits into `*result`,
  /// whose `stored` BitVector reuses its capacity across calls (the
  /// write path's per-PUT scratch). Same semantics as WriteSegment.
  void WriteSegmentInto(size_t seg, const BitVector& data,
                        WriteScheme& scheme, WriteResult* result);

  /// Seeds a segment's cells without counting flips or energy (device
  /// initialization; the paper's "load phase" content).
  void SeedSegment(size_t seg, const BitVector& content);

  /// Copies segment `src`'s raw cells onto segment `dst` differentially,
  /// counting flips/energy (used by wear-leveling gap moves).
  void MigrateSegment(size_t src, size_t dst);

  /// Silently flips one cell of `seg` — no stats, no energy, no wear.
  /// Models in-array bit rot (retention drift) for scrubber tests; only
  /// an integrity scrub can notice the damage.
  void FlipCellRaw(size_t seg, size_t bit);

  /// Re-stripes the aggregate counters (and the attached EnergyMeter)
  /// into `num_lanes` slabs, lane l owning segments
  /// [l * segments_per_lane, (l+1) * segments_per_lane) with the last
  /// lane absorbing any tail. Must be called while quiescent — typically
  /// once by ShardedStore::Create, before shards attach. Counts and
  /// energy accumulated so far fold into lane 0.
  void ConfigureAccountingLanes(size_t num_lanes, size_t segments_per_lane);

  /// Accounting lane owning segment `seg`.
  size_t LaneOfSegment(size_t seg) const {
    if (lane_segments_ == 0) return 0;
    return std::min(seg / lane_segments_, num_lanes_ - 1);
  }
  size_t num_accounting_lanes() const { return num_lanes_; }

  /// Merged view of all accounting lanes (see the concurrency note
  /// above). Returns by value: the merge is the snapshot.
  DeviceStats stats() const;
  void ResetStats();

  /// Per-segment write counts (Fig 19's "maximum update addresses" CDF).
  const std::vector<uint64_t>& segment_write_counts() const {
    return seg_writes_;
  }

  /// Histogram of per-segment write counts.
  Histogram SegmentWriteHistogram() const;

  /// Histogram of per-bit flip counts; requires track_bit_wear.
  StatusOr<Histogram> BitWearHistogram() const;

  /// Highest per-cell flip count seen (endurance headroom check).
  uint64_t MaxCellWear() const;

  /// Fraction of device endurance consumed by the most-worn cell.
  double LifetimeConsumed() const {
    return static_cast<double>(MaxCellWear()) /
           static_cast<double>(config_.pcm.endurance_writes);
  }

  EnergyMeter& meter() { return *meter_; }
  const EnergyModel& energy_model() const { return model_; }

  /// Attaches a fault-injection policy (nullptr detaches). The injector
  /// must outlive the device; it is bound to this device's geometry and
  /// endurance budget, which also sticks its initial stuck-cell fraction.
  void AttachFaultInjector(FaultInjector* injector);
  FaultInjector* fault_injector() { return injector_; }

 private:
  /// Applies `stored` to the segment cells, counting transitions and wear
  /// (and feeding wear-driven sticking to the injector, if any).
  void CommitStored(size_t seg, const BitVector& stored,
                    size_t* set_bits, size_t* reset_bits);

  /// One program attempt of `intended` onto `seg`: lets the injector
  /// perturb the image, commits, and charges write energy/latency.
  void ProgramCells(size_t seg, const BitVector& intended, bool allow_tear);

  /// One striped counter slab, mirroring DeviceStats field for field.
  /// Cache-line aligned so lanes never false-share; single-writer per
  /// lane, so relaxed load+store accumulation is exact.
  struct alignas(64) StatsLane {
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> data_bits_flipped{0};
    std::atomic<uint64_t> aux_bits_flipped{0};
    std::atomic<uint64_t> set_transitions{0};
    std::atomic<uint64_t> reset_transitions{0};
    std::atomic<uint64_t> dirty_lines{0};
    std::atomic<uint64_t> logical_bits_written{0};
    std::atomic<uint64_t> faults_injected{0};
    std::atomic<uint64_t> torn_writes{0};
    std::atomic<uint64_t> read_disturbs{0};
    std::atomic<uint64_t> verify_retries{0};
    std::atomic<uint64_t> verify_failures{0};
    std::atomic<uint64_t> repaired_cells{0};
  };
  /// Single-writer relaxed accumulate (no RMW needed: the lane owner's
  /// shard lock serializes its writes).
  static void Bump(std::atomic<uint64_t>& c, uint64_t v) {
    c.store(c.load(std::memory_order_relaxed) + v,
            std::memory_order_relaxed);
  }
  StatsLane& LaneSlab(size_t seg) { return lanes_[LaneOfSegment(seg)]; }

  DeviceConfig config_;
  std::vector<BitVector> segments_;
  std::vector<uint64_t> seg_writes_;
  std::vector<uint32_t> bit_wear_;  // Flattened [seg * segment_bits + bit].
  size_t num_lanes_ = 1;
  size_t lane_segments_ = 0;  // 0 = everything maps to lane 0.
  std::unique_ptr<StatsLane[]> lanes_;
  EnergyModel model_;
  EnergyMeter own_meter_;
  EnergyMeter* meter_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_DEVICE_H_
