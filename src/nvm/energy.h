#ifndef E2NVM_NVM_ENERGY_H_
#define E2NVM_NVM_ENERGY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nvm/constants.h"

namespace e2nvm::nvm {

/// Energy accounting domains, mirroring the RAPL domains the paper samples
/// with `perf` (package, DRAM, and we separate PMem writes/reads and the
/// CPU cost of the ML models).
enum class EnergyDomain : int {
  kPmemWrite = 0,
  kPmemRead = 1,
  kDram = 2,
  kCpuModel = 3,  // VAE/K-means/LSTM training + prediction
  kNumDomains = 4,
};

inline constexpr int kNumEnergyDomains =
    static_cast<int>(EnergyDomain::kNumDomains);

/// One consistent view of the meter: every domain plus the simulated clock
/// captured by a single Snapshot() merge, so multi-field reads can never
/// observe torn state (previously each accessor re-read the meter
/// independently).
struct EnergyTotals {
  double pj[kNumEnergyDomains] = {0, 0, 0, 0};
  double now_ns = 0;

  double DomainPj(EnergyDomain domain) const {
    return pj[static_cast<int>(domain)];
  }
  /// Total "package" energy across all domains, picojoules. Summed in
  /// domain order — part of the merge contract below.
  double TotalPj() const {
    double s = 0;
    for (double v : pj) s += v;
    return s;
  }
  double TotalMj() const { return TotalPj() * 1e-9; }
};

/// A RAPL-style accumulating energy meter. Components charge picojoules to
/// domains; experiments snapshot or sample the meter to produce the
/// energy series of Figs 1, 7, 8, 11, 13, 16, 18.
///
/// The meter also carries a simulated clock (nanoseconds) so timeline
/// experiments (Fig 16) can plot cumulative energy against simulated time.
///
/// Concurrency: the meter is striped into `num_lanes()` cache-line-sized
/// accounting slabs of relaxed atomics, merged only at Snapshot()/report
/// time — there is no mutex anywhere on the charge path. Each lane is
/// SINGLE-WRITER: exactly one logical owner (a shard, whose per-shard lock
/// already serializes its operations) may charge a given lane at a time.
/// Under that discipline the lock-free `load+store` accumulation is exact:
/// no increments are lost, and each lane's partial sums are bit-identical
/// to a serial replay of that lane's charge sequence.
///
/// Merge contract (the bit-identity guarantee, see DESIGN.md §13):
///   Snapshot().pj[d]   = Σ_{lane = 0..N-1} lane[l].pj[d]   (lane order)
///   Snapshot().now_ns  = Σ_{lane = 0..N-1} lane[l].ns      (lane order)
///   Snapshot().TotalPj = Σ_{d = 0..3} Snapshot().pj[d]     (domain order)
/// With one lane (the default, and every non-sharded store) this is the
/// exact accumulation order of the historical single-accumulator meter, so
/// totals are bit-identical to the serial path. With N lanes the totals
/// are bit-identical to replaying each lane's charge stream serially in
/// lane-index order — and therefore *independent of client-thread count
/// and interleaving*, which the old mutex meter could not guarantee
/// (its rounding depended on the arrival order across threads).
/// `now_ns` accumulates *serialized* simulated time: concurrent charges
/// from N shards add up as if the operations ran back to back.
class EnergyMeter {
 public:
  EnergyMeter() : num_lanes_(1), lanes_(new Lane[1]) {}

  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  /// Re-stripes the meter to `n` lanes (>= 1). Must be called while
  /// quiescent (no concurrent charger) — typically once, right after the
  /// owning store wires up its shards and before any traffic. Totals
  /// accumulated so far are folded into lane 0 of the new stripe set.
  void SetLanes(size_t n) {
    if (n == 0) n = 1;
    EnergyTotals carry = Snapshot();
    lanes_.reset(new Lane[n]);
    num_lanes_ = n;
    for (int d = 0; d < kNumEnergyDomains; ++d) {
      lanes_[0].pj[d].store(carry.pj[d], std::memory_order_relaxed);
    }
    lanes_[0].ns.store(carry.now_ns, std::memory_order_relaxed);
  }

  size_t num_lanes() const { return num_lanes_; }

  /// Adds `pj` picojoules to `domain` on `lane`. Single-writer per lane:
  /// the caller must hold whatever serializes that lane's owner (e.g. the
  /// shard lock), which also provides the happens-before edge making the
  /// relaxed load+store exact.
  void ChargeLane(size_t lane, EnergyDomain domain, double pj) {
    std::atomic<double>& cell = lanes_[lane].pj[static_cast<int>(domain)];
    cell.store(cell.load(std::memory_order_relaxed) + pj,
               std::memory_order_relaxed);
  }

  /// Advances `lane`'s slice of the simulated clock (same single-writer
  /// rule as ChargeLane).
  void AdvanceTimeLane(size_t lane, double ns) {
    std::atomic<double>& cell = lanes_[lane].ns;
    cell.store(cell.load(std::memory_order_relaxed) + ns,
               std::memory_order_relaxed);
  }

  /// Single-lane convenience (lane 0) — the historical API, used by every
  /// non-sharded component.
  void Charge(EnergyDomain domain, double pj) { ChargeLane(0, domain, pj); }
  void AdvanceTime(double ns) { AdvanceTimeLane(0, ns); }

  /// One consistent merged view of all lanes (see the merge contract
  /// above). Tear-free per field: each atomic is read whole. A snapshot
  /// taken *while* charges are in flight is a linearizable-per-lane merge;
  /// taken while quiescent it is exact.
  EnergyTotals Snapshot() const {
    EnergyTotals t;
    for (int d = 0; d < kNumEnergyDomains; ++d) {
      for (size_t l = 0; l < num_lanes_; ++l) {
        t.pj[d] += lanes_[l].pj[d].load(std::memory_order_relaxed);
      }
    }
    for (size_t l = 0; l < num_lanes_; ++l) {
      t.now_ns += lanes_[l].ns.load(std::memory_order_relaxed);
    }
    return t;
  }

  double now_ns() const { return Snapshot().now_ns; }

  /// Energy of one domain, picojoules.
  double DomainPj(EnergyDomain domain) const {
    return Snapshot().DomainPj(domain);
  }

  /// Total "package" energy across all domains, picojoules.
  double TotalPj() const { return Snapshot().TotalPj(); }

  /// Total energy in millijoules, convenient for printing.
  double TotalMj() const { return Snapshot().TotalMj(); }

  void Reset() {
    for (size_t l = 0; l < num_lanes_; ++l) {
      for (int d = 0; d < kNumEnergyDomains; ++d) {
        lanes_[l].pj[d].store(0, std::memory_order_relaxed);
      }
      lanes_[l].ns.store(0, std::memory_order_relaxed);
    }
  }

  /// Records a (time, cumulative total energy) sample, for timelines.
  /// Not synchronized: call only from one thread while no charger is
  /// active (the timeline harnesses are single-threaded).
  void Sample() {
    EnergyTotals t = Snapshot();
    samples_.emplace_back(t.now_ns, t.TotalPj());
  }
  /// Timeline samples. Same single-threaded discipline as Sample().
  const std::vector<std::pair<double, double>>& samples() const {
    return samples_;
  }

 private:
  /// One accounting slab. Cache-line sized and aligned so two lanes never
  /// false-share; std::atomic<double> is lock-free on every target we
  /// build for.
  struct alignas(64) Lane {
    std::atomic<double> pj[kNumEnergyDomains] = {};
    std::atomic<double> ns{0};
  };
  static_assert(std::atomic<double>::is_always_lock_free,
                "lock-free doubles required for the charge fast path");

  size_t num_lanes_;
  std::unique_ptr<Lane[]> lanes_;
  std::vector<std::pair<double, double>> samples_;
};

/// Converts device events to energy/latency using PcmParams. Stateless;
/// shared by the device and by software-layer components that need to
/// charge CPU/DRAM costs.
class EnergyModel {
 public:
  explicit EnergyModel(PcmParams params) : p_(params) {}

  const PcmParams& params() const { return p_; }

  /// Energy of one write request that flips `set_bits` 0->1, `reset_bits`
  /// 1->0 and dirties `dirty_lines` cache lines. Picojoules. Includes the
  /// fixed per-request overhead.
  double WritePj(size_t set_bits, size_t reset_bits,
                 size_t dirty_lines) const {
    return p_.request_overhead_pj +
           static_cast<double>(set_bits) * p_.set_energy_pj +
           static_cast<double>(reset_bits) * p_.reset_energy_pj +
           static_cast<double>(dirty_lines) * p_.line_overhead_pj;
  }

  /// Energy of reading `bits` cells. Picojoules.
  double ReadPj(size_t bits) const {
    return static_cast<double>(bits) * p_.read_energy_pj;
  }

  /// Latency of a write dirtying `dirty_lines` lines. Nanoseconds.
  double WriteNs(size_t dirty_lines) const {
    return p_.write_base_ns +
           static_cast<double>(dirty_lines) * p_.write_ns_per_line;
  }

  /// Latency of reading `lines` cache lines. Nanoseconds.
  double ReadNs(size_t lines) const {
    return static_cast<double>(lines) * p_.read_ns_per_line;
  }

  /// DRAM bookkeeping traffic energy (DAP updates, index writes).
  double DramPj(size_t bits) const {
    return static_cast<double>(bits) * p_.dram_energy_pj_per_bit;
  }

  /// CPU energy for `flops` floating-point operations (model math).
  double CpuPj(double flops) const {
    return flops * p_.cpu_energy_pj_per_flop;
  }

  /// CPU time for `flops` floating-point operations, nanoseconds.
  double CpuNs(double flops) const {
    return flops / p_.cpu_flops_per_second * 1e9;
  }

 private:
  PcmParams p_;
};

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_ENERGY_H_
