#ifndef E2NVM_NVM_ENERGY_H_
#define E2NVM_NVM_ENERGY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "nvm/constants.h"

namespace e2nvm::nvm {

/// Energy accounting domains, mirroring the RAPL domains the paper samples
/// with `perf` (package, DRAM, and we separate PMem writes/reads and the
/// CPU cost of the ML models).
enum class EnergyDomain : int {
  kPmemWrite = 0,
  kPmemRead = 1,
  kDram = 2,
  kCpuModel = 3,  // VAE/K-means/LSTM training + prediction
  kNumDomains = 4,
};

/// A RAPL-style accumulating energy meter. Components charge picojoules to
/// domains; experiments snapshot or sample the meter to produce the
/// energy series of Figs 1, 7, 8, 11, 13, 16, 18.
///
/// The meter also carries a simulated clock (nanoseconds) so timeline
/// experiments (Fig 16) can plot cumulative energy against simulated time.
///
/// Thread-safe: charges take an internal mutex, so one meter can absorb
/// concurrent accounting from every shard of a ShardedStore (the shared
/// device charges reads/writes while each shard's engine charges model
/// flops). Under concurrency the accumulation order — and hence the
/// floating-point rounding — depends on the interleaving; with a single
/// caller the sums are bit-identical to the pre-lock implementation.
/// `now_ns` accumulates *serialized* simulated time: concurrent charges
/// from N shards add up as if the operations ran back to back.
class EnergyMeter {
 public:
  /// Adds `pj` picojoules to `domain`.
  void Charge(EnergyDomain domain, double pj) {
    std::lock_guard<std::mutex> lock(mu_);
    pj_[static_cast<int>(domain)] += pj;
  }

  /// Advances the simulated clock.
  void AdvanceTime(double ns) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ns_ += ns;
  }

  double now_ns() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_ns_;
  }

  /// Energy of one domain, picojoules.
  double DomainPj(EnergyDomain domain) const {
    std::lock_guard<std::mutex> lock(mu_);
    return pj_[static_cast<int>(domain)];
  }

  /// Total "package" energy across all domains, picojoules.
  double TotalPj() const {
    std::lock_guard<std::mutex> lock(mu_);
    return TotalPjLocked();
  }

  /// Total energy in millijoules, convenient for printing.
  double TotalMj() const { return TotalPj() * 1e-9; }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (double& v : pj_) v = 0;
    now_ns_ = 0;
  }

  /// Records a (time, cumulative total energy) sample, for timelines.
  void Sample() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.emplace_back(now_ns_, TotalPjLocked());
  }
  /// Timeline samples. Not synchronized: read only while no charger is
  /// active (the timeline harnesses are single-threaded).
  const std::vector<std::pair<double, double>>& samples() const {
    return samples_;
  }

 private:
  double TotalPjLocked() const {
    double s = 0;
    for (double v : pj_) s += v;
    return s;
  }

  mutable std::mutex mu_;
  double pj_[static_cast<int>(EnergyDomain::kNumDomains)] = {0, 0, 0, 0};
  double now_ns_ = 0;
  std::vector<std::pair<double, double>> samples_;
};

/// Converts device events to energy/latency using PcmParams. Stateless;
/// shared by the device and by software-layer components that need to
/// charge CPU/DRAM costs.
class EnergyModel {
 public:
  explicit EnergyModel(PcmParams params) : p_(params) {}

  const PcmParams& params() const { return p_; }

  /// Energy of one write request that flips `set_bits` 0->1, `reset_bits`
  /// 1->0 and dirties `dirty_lines` cache lines. Picojoules. Includes the
  /// fixed per-request overhead.
  double WritePj(size_t set_bits, size_t reset_bits,
                 size_t dirty_lines) const {
    return p_.request_overhead_pj +
           static_cast<double>(set_bits) * p_.set_energy_pj +
           static_cast<double>(reset_bits) * p_.reset_energy_pj +
           static_cast<double>(dirty_lines) * p_.line_overhead_pj;
  }

  /// Energy of reading `bits` cells. Picojoules.
  double ReadPj(size_t bits) const {
    return static_cast<double>(bits) * p_.read_energy_pj;
  }

  /// Latency of a write dirtying `dirty_lines` lines. Nanoseconds.
  double WriteNs(size_t dirty_lines) const {
    return p_.write_base_ns +
           static_cast<double>(dirty_lines) * p_.write_ns_per_line;
  }

  /// Latency of reading `lines` cache lines. Nanoseconds.
  double ReadNs(size_t lines) const {
    return static_cast<double>(lines) * p_.read_ns_per_line;
  }

  /// DRAM bookkeeping traffic energy (DAP updates, index writes).
  double DramPj(size_t bits) const {
    return static_cast<double>(bits) * p_.dram_energy_pj_per_bit;
  }

  /// CPU energy for `flops` floating-point operations (model math).
  double CpuPj(double flops) const {
    return flops * p_.cpu_energy_pj_per_flop;
  }

  /// CPU time for `flops` floating-point operations, nanoseconds.
  double CpuNs(double flops) const {
    return flops / p_.cpu_flops_per_second * 1e9;
  }

 private:
  PcmParams p_;
};

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_ENERGY_H_
