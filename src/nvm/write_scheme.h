#ifndef E2NVM_NVM_WRITE_SCHEME_H_
#define E2NVM_NVM_WRITE_SCHEME_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/bitvec.h"

namespace e2nvm::nvm {

/// Outcome of encoding a logical value onto a segment's current cells.
struct WriteResult {
  /// New raw cell contents for the data region of the segment.
  BitVector stored;
  /// Data-cell flips incurred (Hamming distance old vs stored).
  size_t data_bits_flipped = 0;
  /// Flips in the scheme's auxiliary cells (flip flags, shift tags).
  size_t aux_bits_flipped = 0;
  /// Total cells the scheme had to *program* (for schemes without
  /// read-before-write this is every cell; with RBW only the flips).
  size_t bits_programmed = 0;

  /// Extra program attempts the device needed because read-back verify
  /// found faulty cells (populated by NvmDevice, not by schemes).
  uint32_t verify_retries = 0;
  /// True when the committed cells still differ from the intended image
  /// after every retry and the spare-cell repair budget: the segment
  /// should be quarantined by the caller.
  bool verify_failed = false;

  size_t total_bits_flipped() const {
    return data_bits_flipped + aux_bits_flipped;
  }
};

/// A hardware write scheme: given the current cell content of a segment and
/// the logical value to store, decides the new raw cell pattern and any
/// auxiliary metadata, and reports how many cells flip. Implementations
/// model the paper's RBW baselines — DCW [52], Flip-N-Write [10],
/// MinShift [37], Captopril [23] — plus a naive write-through.
///
/// Schemes may keep *per-segment* auxiliary state (e.g. FNW's flip flags);
/// they are told the segment id so that state survives across writes.
/// Implementations must be deterministic.
class WriteScheme {
 public:
  virtual ~WriteScheme() = default;

  /// Stable scheme name for reports ("DCW", "FNW", ...).
  virtual std::string_view name() const = 0;

  /// Encodes `data` over the current `old` cells of `segment_id`.
  /// `old.size() == data.size()` is required.
  virtual WriteResult Write(uint64_t segment_id, const BitVector& old,
                            const BitVector& data) = 0;

  /// Write into a caller-provided result, enabling scratch reuse on the
  /// hot write path: `out` may hold a previous write's outcome, and the
  /// implementation must overwrite EVERY field (including the
  /// device-populated verify_retries/verify_failed), while `out->stored`
  /// keeps its heap capacity across calls. The default delegates to
  /// Write; schemes on the PUT path override it allocation-free.
  virtual void WriteInto(uint64_t segment_id, const BitVector& old,
                         const BitVector& data, WriteResult* out) {
    *out = Write(segment_id, old, data);
  }

  /// Decodes the raw cell content of `segment_id` back to the logical
  /// value. For schemes that store data verbatim this is the identity.
  virtual BitVector Decode(uint64_t segment_id,
                           const BitVector& stored) const = 0;

  /// Decode into a caller-owned buffer (`out` keeps its heap capacity
  /// across calls, like WriteInto's `stored`). The default delegates to
  /// Decode; verbatim schemes override it with a capacity-reusing copy
  /// so Release-path content peeks stay off the heap.
  virtual void DecodeInto(uint64_t segment_id, const BitVector& stored,
                          BitVector* out) const {
    *out = Decode(segment_id, stored);
  }

  /// Auxiliary metadata cells the scheme consumes per segment of
  /// `segment_bits` data bits (flag/tag overhead, for capacity accounting).
  virtual size_t AuxBitsPerSegment(size_t segment_bits) const { return 0; }

  /// Notifies the scheme that the raw cells of `src` were copied onto
  /// `dst` (a wear-leveling gap move): per-segment auxiliary state must
  /// follow the cells or decoding at `dst` breaks. Default: stateless.
  virtual void OnMigrate(uint64_t src, uint64_t dst) {}

  /// Drops all per-segment state (device reset).
  virtual void Reset() {}
};

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_WRITE_SCHEME_H_
