#ifndef E2NVM_NVM_WEAR_LEVELER_H_
#define E2NVM_NVM_WEAR_LEVELER_H_

#include <cstdint>

#include "nvm/device.h"

namespace e2nvm::nvm {

/// Start-Gap wear leveling (Qureshi et al., MICRO'09), the style of
/// rotation the paper assumes the proprietary controller performs: "a
/// memory segment swap every psi write operations, typically on the order
/// of 10s of writes" (§2.1).
///
/// The device exposes N+1 physical segments for N logical ones; the extra
/// slot is the *gap*. Every `psi` logical writes the gap moves one slot
/// (a segment's cells are physically copied into the gap — this copy costs
/// real bit flips, which is why very small psi hurts every scheme in
/// Fig 2). After the gap traverses all slots, the start register advances,
/// slowly rotating the whole address space over the physical cells.
class StartGapLeveler {
 public:
  /// `num_logical`: logical segments (device must have num_logical + 1
  /// physical segments). `psi`: writes between gap moves; psi == 0
  /// disables leveling.
  StartGapLeveler(size_t num_logical, uint64_t psi)
      : n_(num_logical), psi_(psi), gap_(num_logical) {}

  /// Maps a logical segment to its current physical slot.
  size_t Map(size_t logical) const {
    size_t pa = (logical + start_) % n_;
    if (pa >= gap_) ++pa;
    return pa;
  }

  /// Notifies the leveler of one completed logical write; performs a gap
  /// move on `device` when the period elapses. `scheme` (optional) is
  /// told about the migration so per-segment aux state follows the cells.
  /// Returns true if a move happened.
  bool OnWrite(NvmDevice& device, WriteScheme* scheme = nullptr);

  /// Forces a gap move regardless of the period (tests).
  void ForceMove(NvmDevice& device, WriteScheme* scheme = nullptr) {
    MoveGap(device, scheme);
  }

  uint64_t psi() const { return psi_; }
  size_t gap() const { return gap_; }
  size_t start() const { return start_; }
  uint64_t moves() const { return moves_; }

 private:
  void MoveGap(NvmDevice& device, WriteScheme* scheme);

  size_t n_;
  uint64_t psi_;
  size_t start_ = 0;
  size_t gap_;  // In [0, n_]; physical slot currently unmapped.
  uint64_t writes_ = 0;
  uint64_t moves_ = 0;
};

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_WEAR_LEVELER_H_
