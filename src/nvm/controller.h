#ifndef E2NVM_NVM_CONTROLLER_H_
#define E2NVM_NVM_CONTROLLER_H_

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/bitvec.h"
#include "common/kernels.h"
#include "nvm/device.h"
#include "nvm/wear_leveler.h"
#include "nvm/write_scheme.h"

namespace e2nvm::nvm {

/// The memory controller of the system model (§2.1): intercepts every
/// operation to NVM, applies a hardware write scheme, and optionally runs
/// Start-Gap wear leveling underneath the software layer.
///
/// Software (E2-NVM, the KV store, the indexes) addresses *logical*
/// segments; the controller owns the logical -> physical mapping. This
/// mirrors the paper's setup where the wear-leveling period psi is a
/// property of the (emulated) controller that software cannot control.
class MemoryController {
 public:
  /// Takes shared ownership of nothing: `device` and `scheme` must outlive
  /// the controller. If `psi > 0`, Start-Gap leveling is enabled and the
  /// device must have been created with one extra physical segment
  /// (num_logical + 1).
  MemoryController(NvmDevice* device, WriteScheme* scheme, size_t num_logical,
                   uint64_t psi)
      : device_(device), scheme_(scheme), num_logical_(num_logical) {
    if (psi > 0) {
      leveler_.emplace(num_logical, psi);
    }
  }

  size_t num_logical() const { return num_logical_; }
  size_t segment_bits() const { return device_->segment_bits(); }

  /// Logical read through the mapping (charges device read costs) and the
  /// scheme's decode.
  BitVector Read(size_t logical) {
    size_t pa = Physical(logical);
    return scheme_->Decode(pa, device_->ReadSegment(pa));
  }

  /// Logical read into a caller-owned buffer (reuses `out`'s capacity) —
  /// the allocation-free variant of Read for steady-state serving paths
  /// (net/server GETs). Charges the same device read costs.
  void ReadInto(size_t logical, BitVector* out) {
    size_t pa = Physical(logical);
    scheme_->DecodeInto(pa, device_->ReadSegment(pa), out);
  }

  /// Zero-cost logical content inspection (software bookkeeping).
  BitVector Peek(size_t logical) const {
    size_t pa = Physical(logical);
    return scheme_->Decode(pa, device_->PeekSegment(pa));
  }

  /// Peek into a caller-owned buffer (reuses `out`'s capacity) — the
  /// allocation-free variant for steady-state Release-path peeks.
  void PeekInto(size_t logical, BitVector* out) const {
    size_t pa = Physical(logical);
    scheme_->DecodeInto(pa, device_->PeekSegment(pa), out);
  }

  /// Logical write through the scheme; advances wear leveling (scheme
  /// aux state migrates with the moved cells). A write whose read-back
  /// verify still fails after retries and spare-cell repair quarantines
  /// the logical segment: it stays mapped (its cells remain readable)
  /// but callers should stop placing fresh data onto it.
  WriteResult Write(size_t logical, const BitVector& data) {
    WriteResult r;
    WriteInto(logical, data, &r);
    return r;
  }

  /// Allocation-free Write: commits into the caller's scratch result
  /// (see WriteScheme::WriteInto for the reuse contract).
  void WriteInto(size_t logical, const BitVector& data, WriteResult* r) {
    size_t pa = Physical(logical);
    device_->WriteSegmentInto(pa, data, *scheme_, r);
    if (r->verify_failed) quarantined_.insert(logical);
    if (!expected_crc_.empty()) {
      if (r->verify_failed) {
        // The committed cells are known-wrong; nothing to verify against.
        expected_valid_[logical] = 0;
      } else {
        expected_crc_[logical] = StoredCrc(r->stored);
        expected_valid_[logical] = 1;
      }
    }
    if (leveler_) leveler_->OnWrite(*device_, scheme_);
  }

  // --- Segment-content integrity map (scrubber support) ---

  /// Starts recording the CRC32C of every committed intended image, per
  /// logical segment, so VerifySegment can later detect silent in-array
  /// corruption (retention drift, stuck cells flipping between writes).
  /// Costs 5 bytes per logical segment plus one crc per write.
  void EnableIntegrityTracking() {
    expected_crc_.assign(num_logical_, 0);
    expected_valid_.assign(num_logical_, 0);
  }
  bool integrity_tracking() const { return !expected_crc_.empty(); }

  enum class SegmentCheck {
    kOk = 0,      // Committed cells match the recorded checksum.
    kMismatch,    // Silent corruption: cells differ from what was written.
    kUntracked,   // No checksummed write since tracking was enabled.
  };

  /// Compares `logical`'s committed cells (zero-cost peek, no read
  /// disturb) against the recorded checksum of the last intended image.
  SegmentCheck VerifySegment(size_t logical) const {
    if (expected_crc_.empty() || expected_valid_[logical] == 0) {
      return SegmentCheck::kUntracked;
    }
    return StoredCrc(device_->PeekSegment(Physical(logical))) ==
                   expected_crc_[logical]
               ? SegmentCheck::kOk
               : SegmentCheck::kMismatch;
  }

  /// Adopts `logical`'s current committed cells as the expected content
  /// (after a scrub repair, or for drifted free segments whose content
  /// only feeds model training).
  void RestampSegment(size_t logical) {
    if (expected_crc_.empty()) return;
    expected_crc_[logical] =
        StoredCrc(device_->PeekSegment(Physical(logical)));
    expected_valid_[logical] = 1;
  }

  /// True if `logical` has been quarantined (write-verify keeps failing).
  bool IsQuarantined(size_t logical) const {
    return quarantined_.count(logical) != 0;
  }

  /// Manually quarantines a logical segment (tests, scrubbers).
  void Quarantine(size_t logical) { quarantined_.insert(logical); }

  size_t quarantined_count() const { return quarantined_.size(); }
  const std::unordered_set<size_t>& quarantined() const {
    return quarantined_;
  }

  /// Seeds a logical segment without cost accounting (load phase).
  void Seed(size_t logical, const BitVector& content) {
    device_->SeedSegment(Physical(logical), content);
    if (!expected_crc_.empty()) {
      expected_crc_[logical] = StoredCrc(content);
      expected_valid_[logical] = 1;
    }
  }

  size_t Physical(size_t logical) const {
    return leveler_ ? leveler_->Map(logical) : logical;
  }

  NvmDevice& device() { return *device_; }
  const NvmDevice& device() const { return *device_; }
  WriteScheme& scheme() { return *scheme_; }
  const StartGapLeveler* leveler() const {
    return leveler_ ? &*leveler_ : nullptr;
  }

 private:
  /// Checksum of a raw stored image (the pre-decode cell content).
  static uint32_t StoredCrc(const BitVector& stored) {
    return e2nvm::Crc32c(stored.words().data(), stored.num_words() * 8);
  }

  NvmDevice* device_;
  WriteScheme* scheme_;
  size_t num_logical_;
  std::optional<StartGapLeveler> leveler_;
  std::unordered_set<size_t> quarantined_;  // Logical bad-segment list.
  // Integrity map (empty unless EnableIntegrityTracking): per logical
  // segment, the CRC32C of the last committed intended image and whether
  // it is trustworthy.
  std::vector<uint32_t> expected_crc_;
  std::vector<uint8_t> expected_valid_;
};

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_CONTROLLER_H_
