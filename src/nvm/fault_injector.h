#ifndef E2NVM_NVM_FAULT_INJECTOR_H_
#define E2NVM_NVM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bitvec.h"
#include "common/lock_audit.h"
#include "common/rng.h"

namespace e2nvm::nvm {

/// Configuration of the fault-injection policy. All probabilities are
/// evaluated on the injector's own deterministic Rng, so a run with a given
/// seed replays bit-for-bit regardless of what the rest of the system does.
struct FaultConfig {
  uint64_t seed = 0xFA017EC7ull;

  /// --- Stuck-at cells (wear-out) ---
  /// Fraction of all cells stuck at a random value when the injector is
  /// attached — models a pre-worn / partially failed device.
  double initial_stuck_fraction = 0.0;
  /// A cell becomes eligible to stick once its wear exceeds this fraction
  /// of the device's `endurance_writes` budget.
  double wear_onset_fraction = 1.0;
  /// Probability that an eligible cell sticks (at the value just
  /// programmed) on each further program.
  double stuck_on_program_probability = 0.0;

  /// --- Torn writes ---
  /// Probability that a segment program commits only a prefix of its
  /// changed bits (power droop / interrupted program pulse). Torn writes
  /// are transient: a retry re-programs the missing bits.
  double torn_write_probability = 0.0;

  /// --- Read disturb ---
  /// Probability that a read returns one transiently flipped bit. The
  /// cells themselves are unaffected.
  double read_disturb_probability = 0.0;

  /// --- Repair budget (spare-cell remapping) ---
  /// Stuck cells the device may remap to spare cells per segment before
  /// write-verify must give up on the segment (quarantine). Models the
  /// in-DIMM redundancy real PCM parts pair with write-verify.
  size_t spare_cells_per_segment = 32;
};

/// Counters of everything the injector did. Deterministic for a fixed
/// seed and operation sequence.
struct FaultStats {
  uint64_t stuck_cells = 0;        // Currently stuck (excludes repaired).
  uint64_t cells_stuck_total = 0;  // Ever stuck, including repaired ones.
  uint64_t torn_writes = 0;        // Programs that committed a prefix only.
  uint64_t read_disturbs = 0;      // Reads returned with a flipped bit.
  uint64_t stuck_clamps = 0;       // Programs perturbed by a stuck cell.
  uint64_t repaired_cells = 0;     // Stuck cells remapped to spares.
  uint64_t repairs_denied = 0;     // Repair requests over the spare budget.
};

/// Seeded, deterministic fault model for an NvmDevice. The paper's
/// endurance argument (§1: 1e8-1e9 writes/cell) is about exactly these
/// failures: worn cells stop accepting programs ("stuck-at"), interrupted
/// programs tear, and aggressive reads disturb neighbors. The injector
/// turns those into reproducible events so the datapath's degradation
/// behavior (write-verify, spare-cell repair, quarantine, re-placement)
/// can be tested and benchmarked.
///
/// Attach with NvmDevice::AttachFaultInjector; the injector must outlive
/// the device. All hooks are called by the device on its datapath.
///
/// Thread-safety: all mutable state (stuck map, spare budgets, stats,
/// rng) sits behind an internal mutex, so one injector may serve a
/// sharded device written by many threads. Determinism then holds per
/// total order of injector calls: single-threaded runs replay
/// bit-for-bit; concurrent runs are honest chaos.
///
/// Unarmed fast path: an injector whose tear probability is zero and
/// whose stuck set is empty cannot perturb a write, and the locked path
/// would neither draw from the rng nor touch the stats — so
/// MutateWrite/ClampStuck skip the mutex entirely in that state (an
/// atomic stuck-cell count, maintained under the mutex, gates the
/// skip). An *attached but unarmed* injector therefore adds no shared
/// lock to the steady-state datapath, which keeps it inside the
/// contention-free contract audited by common/lock_audit.h.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config)
      : config_(config),
        tear_armed_(config.torn_write_probability > 0.0),
        rng_(config.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// True when no write-path perturbation is currently possible (no
  /// stuck cells, and tearing is either unconfigured or disallowed):
  /// the unarmed mutex-free fast path.
  bool WriteUnarmed(bool allow_tear) const {
    return (!allow_tear || !tear_armed_) &&
           armed_stuck_cells_.load(std::memory_order_acquire) == 0;
  }

  /// Fixes the device geometry and endurance budget; sticks
  /// `initial_stuck_fraction` of all cells at random values. Called by
  /// NvmDevice::AttachFaultInjector.
  void Bind(size_t num_segments, size_t segment_bits,
            uint64_t endurance_writes);

  bool bound() const { return segment_bits_ != 0; }

  /// Explicitly sticks a cell at `value` (deterministic test hook).
  void StickCell(size_t seg, size_t bit, bool value);

  /// True if the cell is currently stuck (not yet repaired).
  bool IsStuck(size_t seg, size_t bit) const {
    debug::AuditedLockGuard lock(mu_);
    return stuck_.count(CellKey(seg, bit)) != 0;
  }

  /// Perturbs the image about to be programmed over `old`: with
  /// `torn_write_probability` (and `allow_tear`) only a prefix of the
  /// changed bits commits, and stuck cells always hold their stuck value.
  /// Returns true if the image was changed; `*torn` (optional) reports
  /// whether a tear specifically fired, so the caller can attribute its
  /// own torn-write counter race-free.
  bool MutateWrite(size_t seg, const BitVector& old, BitVector* stored,
                   bool allow_tear, bool* torn = nullptr);

  /// Forces stuck cells of `seg` onto `stored` without any stochastic
  /// faults (used for raw migrations).
  bool ClampStuck(size_t seg, BitVector* stored);

  /// Wear-driven sticking: called for each cell programmed to `value`
  /// whose lifetime program count is now `wear`.
  void OnCellProgrammed(size_t seg, size_t bit, bool value, uint64_t wear);

  /// Possibly flips one bit of `*out` (a copy of the segment about to be
  /// returned by a read). Returns true if a disturb fired.
  bool MutateRead(size_t seg, BitVector* out);

  /// Remaps the stuck cells among `bits` of `seg` to spare cells, if the
  /// per-segment spare budget allows; repaired cells stop being stuck.
  /// All-or-nothing: returns false (repairing nothing) over budget.
  bool RepairCells(size_t seg, const std::vector<size_t>& bits);

  /// Spare cells already consumed by `seg`.
  size_t SparesUsed(size_t seg) const {
    debug::AuditedLockGuard lock(mu_);
    return SparesUsedLocked(seg);
  }

  /// Consistent snapshot of the counters (by value: the injector may be
  /// serving concurrent writers).
  FaultStats stats() const {
    debug::AuditedLockGuard lock(mu_);
    return stats_;
  }
  const FaultConfig& config() const { return config_; }

 private:
  uint64_t CellKey(size_t seg, size_t bit) const {
    return static_cast<uint64_t>(seg) * segment_bits_ + bit;
  }

  size_t SparesUsedLocked(size_t seg) const {
    auto it = spares_used_.find(seg);
    return it == spares_used_.end() ? 0 : it->second;
  }

  /// ClampStuck body; mu_ held.
  bool ClampStuckLocked(size_t seg, BitVector* stored);

  FaultConfig config_;
  /// Fixed at construction: whether torn writes can ever fire.
  bool tear_armed_ = false;
  /// stuck_.size(), mirrored into an atomic at every mutation (under
  /// mu_) so the unarmed fast path can read it lock-free.
  std::atomic<uint64_t> armed_stuck_cells_{0};
  mutable std::mutex mu_;  // Guards everything below.
  Rng rng_;
  size_t num_segments_ = 0;
  size_t segment_bits_ = 0;
  uint64_t wear_onset_ = UINT64_MAX;
  std::unordered_map<uint64_t, bool> stuck_;  // Cell key -> stuck value.
  std::unordered_map<size_t, size_t> spares_used_;  // Segment -> count.
  FaultStats stats_;
};

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_FAULT_INJECTOR_H_
