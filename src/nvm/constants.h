#ifndef E2NVM_NVM_CONSTANTS_H_
#define E2NVM_NVM_CONSTANTS_H_

#include <cstddef>
#include <cstdint>

namespace e2nvm::nvm {

/// Physical cost parameters of a PCM-class (Optane / 3D XPoint) device.
///
/// Defaults follow the figures quoted in the paper's introduction:
/// flipping one PCM bit costs ~50 pJ vs ~1 pJ/bit for a DRAM page write,
/// and PCM endurance is on the order of 1e8-1e9 writes per cell.
/// RESET (1->0, amorphization) draws more current than SET on real PCM;
/// the defaults reflect a mild asymmetry.
struct PcmParams {
  /// Energy to program one bit 0 -> 1 (SET), picojoules.
  double set_energy_pj = 50.0;
  /// Energy to program one bit 1 -> 0 (RESET), picojoules.
  double reset_energy_pj = 60.0;
  /// Energy to read one bit, picojoules.
  double read_energy_pj = 2.0;
  /// Fixed peripheral/array overhead per *dirty* 64-byte cache line
  /// written (row drivers, write buffers), picojoules. Clean lines are
  /// skipped by the controller (paper §2.2).
  double line_overhead_pj = 250.0;
  /// Fixed energy per write *request* (command decode, row activation,
  /// charge pumps), picojoules. This floor is why the paper measures
  /// "up to 56%" savings rather than savings proportional to the flip
  /// reduction alone.
  double request_overhead_pj = 50'000.0;

  /// Controller latency charged per dirty cache line written, ns.
  double write_ns_per_line = 90.0;
  /// Fixed latency per write request (queueing + command), ns.
  double write_base_ns = 60.0;
  /// Latency per cache line read, ns (Optane read ≈ 300 ns / 4 lines).
  double read_ns_per_line = 75.0;

  /// Cell endurance: writes before a cell becomes unreliable.
  uint64_t endurance_writes = 100'000'000;  // 1e8 (paper: 1e8-1e9)

  /// DRAM comparison point, used by the energy meter for DAP/index
  /// bookkeeping traffic.
  double dram_energy_pj_per_bit = 1.0;

  /// Energy per floating-point multiply-accumulate of the compute device
  /// running the models, picojoules. Used to cost model training and
  /// prediction (Figs 8, 16, 18). The paper trains and serves its models
  /// on NVIDIA Tesla K80/K20m GPUs; GPU-class dense math lands around
  /// 0.05-0.3 pJ/FLOP, and the default follows that setup. (A scalar CPU
  /// would be ~2 pJ/FLOP — set this accordingly to model a CPU-only
  /// deployment; note that at CPU energy costs the per-write prediction
  /// can exceed the flip savings, which is exactly why the paper leans on
  /// accelerator inference.)
  double cpu_energy_pj_per_flop = 0.05;
  /// Model-compute throughput used to convert FLOPs to simulated seconds
  /// (K80-class sustained throughput).
  double cpu_flops_per_second = 1.0e10;
};

/// CPU cache line size: the unit at which the memory controller decides
/// whether a line is dirty.
inline constexpr size_t kCacheLineBits = 64 * 8;

}  // namespace e2nvm::nvm

#endif  // E2NVM_NVM_CONSTANTS_H_
