#include "nvm/wear_leveler.h"

namespace e2nvm::nvm {

bool StartGapLeveler::OnWrite(NvmDevice& device, WriteScheme* scheme) {
  if (psi_ == 0) return false;
  ++writes_;
  if (writes_ % psi_ != 0) return false;
  MoveGap(device, scheme);
  return true;
}

void StartGapLeveler::MoveGap(NvmDevice& device, WriteScheme* scheme) {
  ++moves_;
  if (gap_ == 0) {
    // Wrap: the logical segment living at physical slot n_ moves into
    // slot 0 and the start register advances one step.
    device.MigrateSegment(/*src=*/n_, /*dst=*/0);
    if (scheme != nullptr) scheme->OnMigrate(n_, 0);
    gap_ = n_;
    start_ = (start_ + 1) % n_;
  } else {
    // The segment just below the gap slides up into it.
    device.MigrateSegment(/*src=*/gap_ - 1, /*dst=*/gap_);
    if (scheme != nullptr) scheme->OnMigrate(gap_ - 1, gap_);
    gap_ -= 1;
  }
}

}  // namespace e2nvm::nvm
