#ifndef E2NVM_ML_LSTM_H_
#define E2NVM_ML_LSTM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/layers.h"
#include "ml/matrix.h"

namespace e2nvm::ml {

/// LSTM sequence-regression model configuration. E2-NVM's learned padding
/// (§4.1.3, Fig 6) slides a 64-bit window over the data, treated here as
/// 8 timesteps of 8 features, and predicts the next 8 bits with a linear
/// head trained under MSE — matching the paper's Keras snippet
/// (LSTM(10) + Dense(linear), loss='mse', optimizer='adam').
struct LstmConfig {
  size_t input_size = 8;    // Features per timestep.
  size_t timesteps = 8;     // Window = input_size * timesteps bits.
  size_t hidden_size = 10;  // The paper's LSTM(10).
  size_t output_size = 8;   // Bits predicted per step.
  AdamConfig adam;
  uint64_t seed = 42;
};

/// A single-layer LSTM (Hochreiter & Schmidhuber) with full BPTT and a
/// linear dense head, trained with MSE. Inputs are flattened sequences:
/// a row of the input matrix holds timesteps * input_size values in time
/// order.
class Lstm {
 public:
  explicit Lstm(const LstmConfig& config);

  const LstmConfig& config() const { return config_; }

  /// Runs the model on flattened sequences (batch x T*input) and returns
  /// predictions (batch x output).
  Matrix Predict(const Matrix& x);

  /// Convenience: predicts for a single flattened window.
  std::vector<float> PredictOne(const std::vector<float>& window);

  /// One optimization step on (x, y); returns the batch MSE.
  double TrainBatch(const Matrix& x, const Matrix& y);

  /// Epoch loop over the full dataset with mini-batches; returns the
  /// per-epoch training MSE curve.
  std::vector<double> Train(const Matrix& x, const Matrix& y, int epochs,
                            size_t batch_size, uint64_t shuffle_seed = 7);

  /// Multiply-accumulates per PredictOne (CPU energy model).
  double PredictFlops() const;

  size_t ParamCount() const;

 private:
  struct StepCache {
    Matrix concat;  // batch x (hidden + input)
    Matrix i, f, o, g;
    Matrix c, tanh_c;
    Matrix c_prev;
  };

  /// Forward over all timesteps, filling caches when `train` is true.
  Matrix RunForward(const Matrix& x, bool train);

  LstmConfig config_;
  Rng rng_;
  ParamBlock w_;  // (hidden+input) x 4*hidden, gate order [i f o g]
  ParamBlock b_;  // 1 x 4*hidden
  std::unique_ptr<Dense> head_;
  std::vector<StepCache> caches_;
  Matrix last_h_;
  int step_ = 0;
};

}  // namespace e2nvm::ml

#endif  // E2NVM_ML_LSTM_H_
