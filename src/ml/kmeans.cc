#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace e2nvm::ml {

double KMeans::DistSq(const float* a, const float* b, size_t dim) const {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s;
}

void KMeans::InitPlusPlus(const Matrix& x, Rng& rng) {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  centroids_ = Matrix(config_.k, dim);

  // First centroid: uniform random sample.
  size_t first = rng.NextBounded(n);
  centroids_.CopyRowFrom(x, first, 0);

  std::vector<double> d2(n, std::numeric_limits<double>::max());
  for (size_t c = 1; c < config_.k; ++c) {
    // Update distances to the nearest chosen centroid.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = DistSq(x.Row(i), centroids_.Row(c - 1), dim);
      d2[i] = std::min(d2[i], d);
      total += d2[i];
    }
    // Sample proportional to squared distance.
    size_t chosen = n - 1;
    if (total > 0.0) {
      double r = rng.NextDouble() * total;
      double cum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cum += d2[i];
        if (cum >= r) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.NextBounded(n);
    }
    centroids_.CopyRowFrom(x, chosen, c);
  }
}

Status KMeans::Fit(const Matrix& x) {
  if (x.rows() < config_.k) {
    return Status::InvalidArgument("fewer samples than clusters");
  }
  if (config_.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  const size_t n = x.rows();
  const size_t dim = x.cols();
  Rng rng(config_.seed);
  InitPlusPlus(x, rng);

  std::vector<size_t> assign(n, 0);
  double prev_sse = std::numeric_limits<double>::max();
  iters_run_ = 0;
  for (int iter = 0; iter < config_.max_iters; ++iter) {
    ++iters_run_;
    // Assignment step.
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      size_t best_c = 0;
      for (size_t c = 0; c < config_.k; ++c) {
        double d = DistSq(x.Row(i), centroids_.Row(c), dim);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      assign[i] = best_c;
      sse += best;
    }
    // Update step.
    Matrix sums(config_.k, dim);
    std::vector<size_t> counts(config_.k, 0);
    for (size_t i = 0; i < n; ++i) {
      float* srow = sums.Row(assign[i]);
      const float* xrow = x.Row(i);
      for (size_t d = 0; d < dim; ++d) srow[d] += xrow[d];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < config_.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random sample.
        centroids_.CopyRowFrom(x, rng.NextBounded(n), c);
        continue;
      }
      float inv = 1.0f / static_cast<float>(counts[c]);
      float* crow = centroids_.Row(c);
      const float* srow = sums.Row(c);
      for (size_t d = 0; d < dim; ++d) crow[d] = srow[d] * inv;
    }
    if (prev_sse - sse < config_.tol * std::max(prev_sse, 1.0)) break;
    prev_sse = sse;
  }
  return Status::Ok();
}

size_t KMeans::Predict(const float* v, size_t dim) const {
  double best = std::numeric_limits<double>::max();
  size_t best_c = 0;
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    double d = DistSq(v, centroids_.Row(c), dim);
    if (d < best) {
      best = d;
      best_c = c;
    }
  }
  return best_c;
}

std::vector<size_t> KMeans::PredictBatch(const Matrix& x) const {
  std::vector<size_t> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    out[i] = Predict(x.Row(i), x.cols());
  }
  return out;
}

double KMeans::Sse(const Matrix& x) const {
  double sse = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    double best = std::numeric_limits<double>::max();
    for (size_t c = 0; c < centroids_.rows(); ++c) {
      best = std::min(best, DistSq(x.Row(i), centroids_.Row(c), x.cols()));
    }
    sse += best;
  }
  return sse;
}

size_t FindElbow(const std::vector<double>& sse) {
  if (sse.size() < 3) return sse.empty() ? 1 : sse.size();
  // Distance of each point to the chord from (1, sse[0]) to (n, sse[n-1]),
  // with both axes normalized to [0,1] so scale doesn't bias the knee.
  const double n = static_cast<double>(sse.size() - 1);
  const double y0 = sse.front();
  const double yn = sse.back();
  const double yrange = std::max(std::abs(y0 - yn), 1e-12);
  double best_d = -1.0;
  size_t best_k = 1;
  for (size_t i = 0; i < sse.size(); ++i) {
    double xs = static_cast<double>(i) / n;
    double ys = (sse[i] - yn) / yrange;  // 1 at start, 0 at end (decreasing).
    // Chord runs from (0,1) to (1,0): distance ∝ |xs + ys - 1|.
    double d = std::abs(xs + ys - 1.0);
    if (d > best_d) {
      best_d = d;
      best_k = i + 1;
    }
  }
  return best_k;
}

}  // namespace e2nvm::ml
