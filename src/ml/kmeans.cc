#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"

namespace e2nvm::ml {

namespace {

/// Rows per parallel block in the sample-indexed loops. A fixed grain
/// keeps the block count a function of n alone, so per-block partial
/// sums combined in block order give the same answer for every pool
/// size (determinism guarantee of DESIGN.md §8).
constexpr size_t kRowGrain = 64;

/// Samples below which the fit loops stay serial (fork-join overhead).
constexpr size_t kMinParallelRows = 128;

}  // namespace

double KMeans::DistSq(const float* a, const float* b, size_t dim) const {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s;
}

void KMeans::InitPlusPlus(const Matrix& x, Rng& rng) {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  centroids_ = Matrix(config_.k, dim);

  // First centroid: uniform random sample.
  size_t first = rng.NextBounded(n);
  centroids_.CopyRowFrom(x, first, 0);

  ThreadPool* pool = compute_pool();
  const bool parallel = pool != nullptr && n >= kMinParallelRows;

  std::vector<double> d2(n, std::numeric_limits<double>::max());
  for (size_t c = 1; c < config_.k; ++c) {
    // Update distances to the nearest chosen centroid.
    double total = 0.0;
    if (parallel) {
      std::vector<double> partial(ThreadPool::NumBlocks(n, kRowGrain), 0.0);
      pool->ParallelForBlocks(
          0, n, kRowGrain, [&](size_t lo, size_t hi, size_t blk) {
            double t = 0.0;
            for (size_t i = lo; i < hi; ++i) {
              double d = DistSq(x.Row(i), centroids_.Row(c - 1), dim);
              d2[i] = std::min(d2[i], d);
              t += d2[i];
            }
            partial[blk] = t;
          });
      for (double t : partial) total += t;
    } else {
      for (size_t i = 0; i < n; ++i) {
        double d = DistSq(x.Row(i), centroids_.Row(c - 1), dim);
        d2[i] = std::min(d2[i], d);
        total += d2[i];
      }
    }
    // Sample proportional to squared distance.
    size_t chosen = n - 1;
    if (total > 0.0) {
      double r = rng.NextDouble() * total;
      double cum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cum += d2[i];
        if (cum >= r) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.NextBounded(n);
    }
    centroids_.CopyRowFrom(x, chosen, c);
  }
}

Status KMeans::Fit(const Matrix& x) {
  if (x.rows() < config_.k) {
    return Status::InvalidArgument("fewer samples than clusters");
  }
  if (config_.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  const size_t n = x.rows();
  const size_t dim = x.cols();
  norms_valid_ = false;  // Centroids change below; cache rebuilds lazily.
  Rng rng(config_.seed);
  InitPlusPlus(x, rng);

  ThreadPool* pool = compute_pool();
  const bool parallel = pool != nullptr && n >= kMinParallelRows;
  const size_t blocks = ThreadPool::NumBlocks(n, kRowGrain);

  std::vector<size_t> assign(n, 0);
  // Final-iteration cluster sizes, kept after the loop to seed
  // PartialFit's warm-start counts.
  std::vector<size_t> counts(config_.k, 0);
  double prev_sse = std::numeric_limits<double>::max();
  iters_run_ = 0;
  for (int iter = 0; iter < config_.max_iters; ++iter) {
    ++iters_run_;
    // Assignment step: each sample independent; the SSE is reduced via
    // per-block partials combined in block order (pool-size invariant).
    double sse = 0.0;
    auto assign_range = [&](size_t lo, size_t hi) {
      double s = 0.0;
      for (size_t i = lo; i < hi; ++i) {
        double best = std::numeric_limits<double>::max();
        size_t best_c = 0;
        for (size_t c = 0; c < config_.k; ++c) {
          double d = DistSq(x.Row(i), centroids_.Row(c), dim);
          if (d < best) {
            best = d;
            best_c = c;
          }
        }
        assign[i] = best_c;
        s += best;
      }
      return s;
    };
    if (parallel) {
      std::vector<double> partial(blocks, 0.0);
      pool->ParallelForBlocks(0, n, kRowGrain,
                              [&](size_t lo, size_t hi, size_t blk) {
                                partial[blk] = assign_range(lo, hi);
                              });
      for (double s : partial) sse += s;
    } else {
      sse = assign_range(0, n);
    }
    // Update step: per-block centroid sums merged in block order.
    Matrix sums(config_.k, dim);
    counts.assign(config_.k, 0);
    auto accumulate = [&](Matrix& s, std::vector<size_t>& cnt, size_t lo,
                          size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        float* srow = s.Row(assign[i]);
        const float* xrow = x.Row(i);
        for (size_t d = 0; d < dim; ++d) srow[d] += xrow[d];
        ++cnt[assign[i]];
      }
    };
    if (parallel) {
      std::vector<Matrix> psums(blocks);
      std::vector<std::vector<size_t>> pcounts(blocks);
      pool->ParallelForBlocks(
          0, n, kRowGrain, [&](size_t lo, size_t hi, size_t blk) {
            psums[blk] = Matrix(config_.k, dim);
            pcounts[blk].assign(config_.k, 0);
            accumulate(psums[blk], pcounts[blk], lo, hi);
          });
      for (size_t blk = 0; blk < blocks; ++blk) {
        AddInPlace(sums, psums[blk]);
        for (size_t c = 0; c < config_.k; ++c) counts[c] += pcounts[blk][c];
      }
    } else {
      accumulate(sums, counts, 0, n);
    }
    for (size_t c = 0; c < config_.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random sample.
        centroids_.CopyRowFrom(x, rng.NextBounded(n), c);
        continue;
      }
      float inv = 1.0f / static_cast<float>(counts[c]);
      float* crow = centroids_.Row(c);
      const float* srow = sums.Row(c);
      for (size_t d = 0; d < dim; ++d) crow[d] = srow[d] * inv;
    }
    if (prev_sse - sse < config_.tol * std::max(prev_sse, 1.0)) break;
    prev_sse = sse;
  }
  // Seed PartialFit's warm-start mass from the final assignment: each
  // centroid starts incremental updates weighted by the samples that
  // shaped it, so the first refinement nudges rather than teleports.
  partial_counts_.assign(counts.begin(), counts.end());
  return Status::Ok();
}

Status KMeans::PartialFit(const Matrix& x) {
  if (!fitted()) {
    return Status::FailedPrecondition("PartialFit before Fit");
  }
  if (x.cols() != dim()) {
    return Status::InvalidArgument("sample width != centroid dim");
  }
  const size_t d = dim();
  if (partial_counts_.size() != centroids_.rows()) {
    // Centroids were installed via SetCentroids without a Fit on this
    // instance; give each unit mass so updates start responsive.
    partial_counts_.assign(centroids_.rows(), 1);
  }
  for (size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.Row(i);
    size_t c = Predict(row, d);
    float lr = 1.0f / static_cast<float>(++partial_counts_[c]);
    float* crow = centroids_.Row(c);
    for (size_t j = 0; j < d; ++j) crow[j] += lr * (row[j] - crow[j]);
  }
  norms_valid_ = false;  // Centroids moved; fused cache rebuilds lazily.
  return Status::Ok();
}

size_t KMeans::Predict(const float* v, size_t dim) const {
  double best = std::numeric_limits<double>::max();
  size_t best_c = 0;
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    double d = DistSq(v, centroids_.Row(c), dim);
    if (d < best) {
      best = d;
      best_c = c;
    }
  }
  return best_c;
}

const std::vector<double>& KMeans::CentroidNormsSq() const {
  if (!norms_valid_) {
    const size_t k = centroids_.rows();
    const size_t dim = centroids_.cols();
    cnorm2_.assign(k, 0.0);
    cmax_norm_ = 0.0;
    for (size_t c = 0; c < k; ++c) {
      const float* crow = centroids_.Row(c);
      double s = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        s += static_cast<double>(crow[i]) * crow[i];
      }
      cnorm2_[c] = s;
      cmax_norm_ = std::max(cmax_norm_, std::sqrt(s));
    }
    norms_valid_ = true;
  }
  return cnorm2_;
}

void KMeans::AssignFusedInto(const Matrix& x, Matrix* scores,
                             std::vector<size_t>* out) const {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  const size_t k = centroids_.rows();
  const std::vector<double>& cn = CentroidNormsSq();
  // One GEMM scores every row against every centroid.
  MatMulTransBInto(x, centroids_, scores);
  out->resize(n);
  for (size_t r = 0; r < n; ++r) {
    const float* srow = scores->Row(r);
    const float* xrow = x.Row(r);
    // Fused score per centroid: ||c||^2 - 2 x.c (the ||x||^2 term is
    // constant across c and is dropped from the comparison).
    double best = std::numeric_limits<double>::max();
    for (size_t c = 0; c < k; ++c) {
      double f = cn[c] - 2.0 * static_cast<double>(srow[c]);
      best = std::min(best, f);
    }
    // Error band of the float dot product: |dot_f - dot| <=
    // dim * eps_f * ||x|| * ||c||, doubled for the 2x scaling and
    // doubled again for margin; the small absolute term covers
    // degenerate zero norms. Every centroid whose fused score could be
    // the true minimum falls inside the band.
    double xnorm2 = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      xnorm2 += static_cast<double>(xrow[i]) * xrow[i];
    }
    const double band =
        8.0 * static_cast<double>(dim) *
            static_cast<double>(std::numeric_limits<float>::epsilon()) *
            std::sqrt(xnorm2) * cmax_norm_ +
        1e-9;
    // Exact refine over the band in Predict's scan order (ascending c,
    // first-strictly-smaller wins) guarantees the same id and the same
    // tie-breaking as the reference path. Almost always one candidate.
    double best_d = std::numeric_limits<double>::max();
    size_t best_c = 0;
    bool found = false;
    for (size_t c = 0; c < k; ++c) {
      double f = cn[c] - 2.0 * static_cast<double>(srow[c]);
      if (f > best + band) continue;
      double d = DistSq(xrow, centroids_.Row(c), dim);
      if (!found || d < best_d) {
        best_d = d;
        best_c = c;
        found = true;
      }
    }
    (*out)[r] = best_c;
  }
}

std::vector<size_t> KMeans::PredictBatch(const Matrix& x) const {
  std::vector<size_t> out(x.rows());
  ThreadPool* pool = compute_pool();
  if (pool != nullptr && x.rows() >= kMinParallelRows) {
    pool->ParallelFor(0, x.rows(), kRowGrain, [&](size_t i) {
      out[i] = Predict(x.Row(i), x.cols());
    });
  } else {
    for (size_t i = 0; i < x.rows(); ++i) {
      out[i] = Predict(x.Row(i), x.cols());
    }
  }
  return out;
}

double KMeans::Sse(const Matrix& x) const {
  const size_t n = x.rows();
  auto range_sse = [&](size_t lo, size_t hi) {
    double s = 0.0;
    for (size_t i = lo; i < hi; ++i) {
      double best = std::numeric_limits<double>::max();
      for (size_t c = 0; c < centroids_.rows(); ++c) {
        best =
            std::min(best, DistSq(x.Row(i), centroids_.Row(c), x.cols()));
      }
      s += best;
    }
    return s;
  };
  ThreadPool* pool = compute_pool();
  if (pool != nullptr && n >= kMinParallelRows) {
    std::vector<double> partial(ThreadPool::NumBlocks(n, kRowGrain), 0.0);
    pool->ParallelForBlocks(0, n, kRowGrain,
                            [&](size_t lo, size_t hi, size_t blk) {
                              partial[blk] = range_sse(lo, hi);
                            });
    double sse = 0.0;
    for (double s : partial) sse += s;
    return sse;
  }
  return range_sse(0, n);
}

size_t FindElbow(const std::vector<double>& sse) {
  if (sse.size() < 3) return sse.empty() ? 1 : sse.size();
  // Distance of each point to the chord from (1, sse[0]) to (n, sse[n-1]),
  // with both axes normalized to [0,1] so scale doesn't bias the knee.
  const double n = static_cast<double>(sse.size() - 1);
  const double y0 = sse.front();
  const double yn = sse.back();
  const double yrange = std::max(std::abs(y0 - yn), 1e-12);
  double best_d = -1.0;
  size_t best_k = 1;
  for (size_t i = 0; i < sse.size(); ++i) {
    double xs = static_cast<double>(i) / n;
    double ys = (sse[i] - yn) / yrange;  // 1 at start, 0 at end (decreasing).
    // Chord runs from (0,1) to (1,0): distance ∝ |xs + ys - 1|.
    double d = std::abs(xs + ys - 1.0);
    if (d > best_d) {
      best_d = d;
      best_k = i + 1;
    }
  }
  return best_k;
}

}  // namespace e2nvm::ml
