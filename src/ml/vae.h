#ifndef E2NVM_ML_VAE_H_
#define E2NVM_ML_VAE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/layers.h"
#include "ml/matrix.h"

namespace e2nvm::ml {

/// Variational Autoencoder configuration.
struct VaeConfig {
  size_t input_dim = 2048;
  size_t hidden_dim = 128;
  /// The paper downsizes inputs to a ~10-dimensional latent space (§3.2).
  size_t latent_dim = 10;
  /// Weight of the KL regularizer in the ELBO.
  float beta = 1.0f;
  AdamConfig adam;
  uint64_t seed = 42;
};

/// Per-epoch training record (Fig 9's learning curves).
struct TrainHistory {
  std::vector<double> train_loss;
  std::vector<double> val_loss;
  /// Total multiply-accumulates spent by Train() — feeds the CPU energy
  /// model for Figs 8, 16 and 18.
  double flops = 0.0;
};

/// Options for Vae::Train.
struct VaeTrainOptions {
  int epochs = 10;
  size_t batch_size = 64;
  /// Fraction of rows held out for the validation curve.
  double validation_fraction = 0.1;
  uint64_t shuffle_seed = 7;
  /// Optional joint-clustering term (DEC-style): when `centroids` is
  /// non-null, the loss adds cluster_weight * ||z - c(z)||^2 with
  /// c(z) the row of `centroids` given by `assignments` (paper §3.2:
  /// "integrates the VAE's reconstruction loss and the K-means clustering
  /// loss to jointly train cluster label assignment and features").
  const Matrix* centroids = nullptr;
  const std::vector<size_t>* assignments = nullptr;
  float cluster_weight = 0.0f;
};

/// An MLP Variational Autoencoder over bit vectors:
///   encoder: input -> hidden (ReLU) -> {mu, logvar} (latent)
///   decoder: latent -> hidden (ReLU) -> input logits (Bernoulli)
/// Loss: binary cross-entropy reconstruction + beta * KL(q(z|x) || N(0,I))
/// — the negative ELBO given in §3.1 of the paper.
class Vae {
 public:
  explicit Vae(const VaeConfig& config);

  const VaeConfig& config() const { return config_; }

  /// Deterministic encoding: returns the posterior mean mu for each row.
  /// This is the "only the encoder part is needed after training" path
  /// used for placement prediction (§3.3.1).
  Matrix EncodeMu(const Matrix& x);

  /// Encodes a single vector (length input_dim) to its latent mean.
  std::vector<float> EncodeOne(const std::vector<float>& x);

  /// Inference-only encoder into caller-owned scratch: hidden = ReLU(x W1
  /// + b1), mu = hidden W2 + b2. Skips the logvar head, the training
  /// caches, and every temporary of EncodeMu, so a warmed-up call
  /// performs zero heap allocations; the mu values are bit-identical to
  /// EncodeMu (same kernels, same accumulation order). This is the "only
  /// the encoder part is needed after training" write path of §3.3.1.
  void EncodeMuInto(const Matrix& x, Matrix* hidden, Matrix* mu);

  /// Decodes latent codes to Bernoulli means (sigmoid outputs).
  Matrix Decode(const Matrix& z);

  /// One SGD step on a mini-batch. Returns (reconstruction, KL, cluster)
  /// losses averaged per sample.
  struct BatchLoss {
    double recon = 0;
    double kl = 0;
    double cluster = 0;
    double total() const { return recon + kl + cluster; }
  };
  BatchLoss TrainBatch(const Matrix& x, const VaeTrainOptions& opts);

  /// Loss of `x` without updating parameters (eps = 0, deterministic).
  double EvalLoss(const Matrix& x);

  /// Full training loop: shuffles, splits train/validation, runs epochs.
  TrainHistory Train(const Matrix& x, const VaeTrainOptions& opts);

  /// Incremental mini-batch update (the replay-ring refinement path,
  /// DESIGN.md §16): runs one pure-ELBO TrainBatch step per
  /// `batch_size` chunk of `x`, in row order, on the *current*
  /// parameters — no re-initialization, no shuffling, no validation
  /// split. Returns the multiply-accumulates spent. The update is a
  /// deterministic function of (parameters, internal RNG state, x):
  /// chunk order is fixed and the kernels are pool-size invariant, so
  /// refinement preserves the engine's determinism contract.
  double PartialFit(const Matrix& x, size_t batch_size);

  /// Multiply-accumulates of one EncodeOne call.
  double PredictFlops() const;
  /// Approximate multiply-accumulates of one training step on `batch` rows
  /// (forward + backward ~ 3x forward).
  double TrainStepFlops(size_t batch) const;

  size_t ParamCount() const;

 private:
  /// Forward pass through the encoder caching layer state; outputs mu and
  /// logvar (clamped to [-8, 8] for stability).
  void EncodeForward(const Matrix& x, Matrix* mu, Matrix* logvar);

  VaeConfig config_;
  Rng rng_;
  Sequential encoder_body_;
  /// The encoder body's Dense layer (borrowed from encoder_body_) — the
  /// direct handle EncodeMuInto uses to reach the weights without the
  /// Layer::Forward caching machinery.
  Dense* enc_in_ = nullptr;
  std::unique_ptr<Dense> mu_head_;
  std::unique_ptr<Dense> logvar_head_;
  Sequential decoder_;
  int step_ = 0;
};

}  // namespace e2nvm::ml

#endif  // E2NVM_ML_VAE_H_
