#include "ml/pca.h"

#include <cmath>

#include "common/rng.h"

namespace e2nvm::ml {

Status Pca::Fit(const Matrix& x) {
  const size_t n = x.rows();
  const size_t dim = x.cols();
  if (n < 2) return Status::InvalidArgument("PCA needs >= 2 samples");
  size_t c = std::min(config_.num_components, std::min(n, dim));

  mean_.assign(dim, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    const float* row = x.Row(i);
    for (size_t d = 0; d < dim; ++d) mean_[d] += row[d];
  }
  for (size_t d = 0; d < dim; ++d) mean_[d] /= static_cast<float>(n);

  components_ = Matrix(c, dim);
  eigenvalues_.assign(c, 0.0);
  Rng rng(config_.seed);

  // Power iteration with deflation. The centered matrix-vector product
  // C v = (1/n) Xc^T (Xc v) is evaluated implicitly:
  //   Xc v = X v - (mean . v) * 1_n
  //   Xc^T u = X^T u - mean * sum(u)
  std::vector<double> v(dim), u(n), w(dim);
  for (size_t comp = 0; comp < c; ++comp) {
    for (auto& e : v) e = rng.NextGaussian();
    double lambda = 0.0;
    for (int iter = 0; iter < config_.power_iters; ++iter) {
      // Deflate: remove projections on earlier components.
      for (size_t p = 0; p < comp; ++p) {
        const float* prow = components_.Row(p);
        double dot = 0.0;
        for (size_t d = 0; d < dim; ++d) dot += v[d] * prow[d];
        for (size_t d = 0; d < dim; ++d) v[d] -= dot * prow[d];
      }
      // u = Xc v.
      double mean_dot_v = 0.0;
      for (size_t d = 0; d < dim; ++d) mean_dot_v += mean_[d] * v[d];
      for (size_t i = 0; i < n; ++i) {
        const float* row = x.Row(i);
        double s = 0.0;
        for (size_t d = 0; d < dim; ++d) s += row[d] * v[d];
        u[i] = s - mean_dot_v;
      }
      // w = Xc^T u / n.
      double sum_u = 0.0;
      for (size_t i = 0; i < n; ++i) sum_u += u[i];
      std::fill(w.begin(), w.end(), 0.0);
      for (size_t i = 0; i < n; ++i) {
        const float* row = x.Row(i);
        const double ui = u[i];
        if (ui == 0.0) continue;
        for (size_t d = 0; d < dim; ++d) w[d] += ui * row[d];
      }
      for (size_t d = 0; d < dim; ++d) {
        w[d] = (w[d] - sum_u * mean_[d]) / static_cast<double>(n);
      }
      // Normalize; the norm estimates the eigenvalue.
      double norm = 0.0;
      for (double e : w) norm += e * e;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      lambda = norm;
      for (size_t d = 0; d < dim; ++d) v[d] = w[d] / norm;
    }
    eigenvalues_[comp] = lambda;
    float* crow = components_.Row(comp);
    for (size_t d = 0; d < dim; ++d) crow[d] = static_cast<float>(v[d]);
  }
  return Status::Ok();
}

Matrix Pca::Transform(const Matrix& x) const {
  Matrix out(x.rows(), components_.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    auto proj = TransformOne(x.Row(i), x.cols());
    for (size_t cidx = 0; cidx < proj.size(); ++cidx) {
      out(i, cidx) = proj[cidx];
    }
  }
  return out;
}

std::vector<float> Pca::TransformOne(const float* v, size_t dim) const {
  std::vector<float> out(components_.rows(), 0.0f);
  for (size_t c = 0; c < components_.rows(); ++c) {
    const float* crow = components_.Row(c);
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      s += (v[d] - mean_[d]) * crow[d];
    }
    out[c] = static_cast<float>(s);
  }
  return out;
}

}  // namespace e2nvm::ml
