#ifndef E2NVM_ML_LAYERS_H_
#define E2NVM_ML_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/matrix.h"

namespace e2nvm::ml {

/// Adam hyper-parameters (Kingma & Ba), the optimizer used throughout —
/// matching the paper's `optimizer='adam'` snippet.
struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// A trainable parameter tensor: value, accumulated gradient, and Adam
/// moment estimates.
class ParamBlock {
 public:
  ParamBlock() = default;
  ParamBlock(size_t rows, size_t cols)
      : value(rows, cols), grad(rows, cols), m(rows, cols), v(rows, cols) {}

  /// Applies one Adam update with bias correction at step `t` (1-based),
  /// then leaves the gradient untouched (call ZeroGrad separately).
  void Step(const AdamConfig& cfg, int t);

  void ZeroGrad() { grad.Fill(0.0f); }

  size_t size() const { return value.size(); }

  Matrix value;
  Matrix grad;
  Matrix m;
  Matrix v;
};

/// Abstract differentiable layer operating on (batch x features) matrices.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; caches whatever Backward needs.
  virtual Matrix Forward(const Matrix& x) = 0;

  /// Backward pass: receives dL/dY, accumulates parameter gradients,
  /// returns dL/dX. Must follow the matching Forward.
  virtual Matrix Backward(const Matrix& dy) = 0;

  virtual void Step(const AdamConfig& cfg, int t) {}
  virtual void ZeroGrad() {}
  virtual size_t ParamCount() const { return 0; }

  /// Multiply-accumulate count of one forward pass over `batch` rows —
  /// consumed by the CPU energy model (Figs 8, 16, 18).
  virtual double ForwardFlops(size_t batch) const = 0;
};

/// Fully-connected layer: Y = X W + b, W is (in x out).
class Dense : public Layer {
 public:
  Dense(size_t in, size_t out, Rng& rng);

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& dy) override;
  void Step(const AdamConfig& cfg, int t) override;
  void ZeroGrad() override;
  size_t ParamCount() const override { return w_.size() + b_.size(); }
  double ForwardFlops(size_t batch) const override {
    return 2.0 * static_cast<double>(batch) * static_cast<double>(in_) *
           static_cast<double>(out_);
  }

  size_t in() const { return in_; }
  size_t out() const { return out_; }
  ParamBlock& weights() { return w_; }
  ParamBlock& bias() { return b_; }

 private:
  size_t in_;
  size_t out_;
  ParamBlock w_;
  ParamBlock b_;  // 1 x out
  Matrix x_cache_;
};

/// Elementwise sigmoid.
class Sigmoid : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& dy) override;
  double ForwardFlops(size_t batch) const override {
    return 4.0 * static_cast<double>(batch) *
           static_cast<double>(y_cache_.cols());
  }

 private:
  Matrix y_cache_;
};

/// Elementwise ReLU.
class Relu : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& dy) override;
  double ForwardFlops(size_t batch) const override {
    return static_cast<double>(batch) *
           static_cast<double>(mask_.cols());
  }

 private:
  Matrix mask_;
};

/// Elementwise tanh.
class Tanh : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& dy) override;
  double ForwardFlops(size_t batch) const override {
    return 5.0 * static_cast<double>(batch) *
           static_cast<double>(y_cache_.cols());
  }

 private:
  Matrix y_cache_;
};

/// A sequential stack of layers.
class Sequential {
 public:
  void Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& dy);
  void Step(const AdamConfig& cfg, int t);
  void ZeroGrad();
  size_t ParamCount() const;
  double ForwardFlops(size_t batch) const;

  size_t num_layers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Numerically-stable elementwise sigmoid.
inline float SigmoidScalar(float x) {
  if (x >= 0) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace e2nvm::ml

#endif  // E2NVM_ML_LAYERS_H_
