#ifndef E2NVM_ML_PCA_H_
#define E2NVM_ML_PCA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace e2nvm::ml {

/// Principal component analysis via power iteration with deflation on the
/// *implicit* centered covariance (the covariance matrix is never formed,
/// so feature dimensionalities up to the paper's 16384 stay tractable).
///
/// This is the dimensionality-reduction front-end of the PNW baseline
/// ("PCA + K-means", Fig 4).
struct PcaConfig {
  size_t num_components = 16;
  int power_iters = 30;
  uint64_t seed = 42;
};

class Pca {
 public:
  explicit Pca(const PcaConfig& config) : config_(config) {}

  /// Fits components on `x` (rows are samples).
  Status Fit(const Matrix& x);

  bool fitted() const { return !components_.empty(); }

  /// Projects rows of `x` onto the fitted components -> (n x c).
  Matrix Transform(const Matrix& x) const;

  /// Projects a single vector.
  std::vector<float> TransformOne(const float* v, size_t dim) const;

  /// (c x dim) matrix of principal directions, ordered by eigenvalue.
  const Matrix& components() const { return components_; }
  const PcaConfig& config() const { return config_; }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<double>& explained_variance() const {
    return eigenvalues_;
  }

  /// Multiply-accumulates of one TransformOne (CPU energy model).
  double TransformFlops() const {
    return 2.0 * static_cast<double>(config_.num_components) *
           static_cast<double>(mean_.size());
  }
  /// Multiply-accumulates of the completed Fit.
  double FitFlops(size_t n) const {
    return 4.0 * static_cast<double>(config_.num_components) *
           static_cast<double>(config_.power_iters) * static_cast<double>(n) *
           static_cast<double>(mean_.size());
  }

 private:
  PcaConfig config_;
  Matrix components_;  // c x dim
  std::vector<float> mean_;
  std::vector<double> eigenvalues_;
};

}  // namespace e2nvm::ml

#endif  // E2NVM_ML_PCA_H_
