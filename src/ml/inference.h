#ifndef E2NVM_ML_INFERENCE_H_
#define E2NVM_ML_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace e2nvm::ml {

/// Preallocated, reusable buffers for the write-path inference kernels —
/// the lean serving counterpart to the (allocating) training code. One
/// scratch belongs to one caller (the placement engine): buffers are
/// EnsureShape'd per call, grow monotonically during warm-up, and after
/// that every featurize -> encode -> assign pass is allocation-free. For
/// batched placement the same buffers hold B feature rows and the whole
/// batch runs through one encoder GEMM and one fused assignment pass.
///
/// The results written here are bit-identical to the reference path
/// (Vae::EncodeOne + KMeans::Predict per value): the scratch kernels
/// share the reference kernels' accumulation order, and the fused
/// assignment re-checks near-minimal candidates with the exact distance
/// (see KMeans::AssignFusedInto).
struct InferenceScratch {
  /// Featurized values, one row per staged value (B x input_dim).
  Matrix in;
  /// Encoder hidden activations (B x hidden_dim).
  Matrix hidden;
  /// Latent codes mu (B x latent_dim).
  Matrix latent;
  /// Fused assignment scores x.c^T (B x k).
  Matrix scores;
  /// Cluster id per row, filled by ContentClusterer::AssignScratch.
  std::vector<size_t> clusters;
  /// Per-row featurize-success flags for batched placement (1 = the row
  /// holds valid features; 0 = featurization failed, the value takes the
  /// model-fallback path).
  std::vector<uint8_t> row_ok;
};

}  // namespace e2nvm::ml

#endif  // E2NVM_ML_INFERENCE_H_
