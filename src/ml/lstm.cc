#include "ml/lstm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace e2nvm::ml {

Lstm::Lstm(const LstmConfig& config)
    : config_(config),
      rng_(config.seed),
      w_(config.hidden_size + config.input_size, 4 * config.hidden_size),
      b_(1, 4 * config.hidden_size) {
  w_.value.XavierInit(rng_, config.hidden_size + config.input_size,
                      4 * config.hidden_size);
  // Forget-gate bias at +1: standard trick for gradient flow early on.
  for (size_t j = config.hidden_size; j < 2 * config.hidden_size; ++j) {
    b_.value(0, j) = 1.0f;
  }
  head_ = std::make_unique<Dense>(config.hidden_size, config.output_size,
                                  rng_);
}

Matrix Lstm::RunForward(const Matrix& x, bool train) {
  const size_t batch = x.rows();
  const size_t h_dim = config_.hidden_size;
  const size_t in_dim = config_.input_size;
  const size_t t_steps = config_.timesteps;
  E2_CHECK(x.cols() == in_dim * t_steps, "LSTM input width mismatch");

  if (train) {
    caches_.assign(t_steps, StepCache{});
  }
  Matrix h(batch, h_dim);
  Matrix c(batch, h_dim);
  for (size_t t = 0; t < t_steps; ++t) {
    // concat = [h_{t-1}, x_t]
    Matrix concat(batch, h_dim + in_dim);
    for (size_t r = 0; r < batch; ++r) {
      float* row = concat.Row(r);
      const float* hrow = h.Row(r);
      const float* xrow = x.Row(r) + t * in_dim;
      std::copy(hrow, hrow + h_dim, row);
      std::copy(xrow, xrow + in_dim, row + h_dim);
    }
    Matrix gates = MatMul(concat, w_.value);
    AddRowVector(gates, b_.value.data());

    Matrix ig(batch, h_dim), fg(batch, h_dim), og(batch, h_dim),
        gg(batch, h_dim);
    for (size_t r = 0; r < batch; ++r) {
      const float* grow = gates.Row(r);
      for (size_t j = 0; j < h_dim; ++j) {
        ig(r, j) = SigmoidScalar(grow[j]);
        fg(r, j) = SigmoidScalar(grow[h_dim + j]);
        og(r, j) = SigmoidScalar(grow[2 * h_dim + j]);
        gg(r, j) = std::tanh(grow[3 * h_dim + j]);
      }
    }
    Matrix c_prev = c;
    Matrix tanh_c(batch, h_dim);
    for (size_t idx = 0; idx < c.size(); ++idx) {
      c.data()[idx] = fg.data()[idx] * c.data()[idx] +
                      ig.data()[idx] * gg.data()[idx];
      tanh_c.data()[idx] = std::tanh(c.data()[idx]);
      h.data()[idx] = og.data()[idx] * tanh_c.data()[idx];
    }
    if (train) {
      StepCache& sc = caches_[t];
      sc.concat = std::move(concat);
      sc.i = std::move(ig);
      sc.f = std::move(fg);
      sc.o = std::move(og);
      sc.g = std::move(gg);
      sc.c = c;
      sc.tanh_c = std::move(tanh_c);
      sc.c_prev = std::move(c_prev);
    }
  }
  last_h_ = h;
  return h;
}

Matrix Lstm::Predict(const Matrix& x) {
  Matrix h = RunForward(x, /*train=*/false);
  return head_->Forward(h);
}

std::vector<float> Lstm::PredictOne(const std::vector<float>& window) {
  Matrix x(1, window.size(), window);
  Matrix y = Predict(x);
  return y.data();
}

double Lstm::TrainBatch(const Matrix& x, const Matrix& y) {
  const size_t batch = x.rows();
  const size_t h_dim = config_.hidden_size;
  const float inv_batch = 1.0f / static_cast<float>(batch);

  Matrix h = RunForward(x, /*train=*/true);
  Matrix yhat = head_->Forward(h);

  double mse = 0.0;
  Matrix dyhat(yhat.rows(), yhat.cols());
  for (size_t i = 0; i < yhat.size(); ++i) {
    float diff = yhat.data()[i] - y.data()[i];
    mse += static_cast<double>(diff) * diff;
    dyhat.data()[i] = 2.0f * diff * inv_batch;
  }
  mse /= static_cast<double>(batch);

  Matrix dh = head_->Backward(dyhat);
  Matrix dc(batch, h_dim);

  for (size_t t = config_.timesteps; t-- > 0;) {
    const StepCache& sc = caches_[t];
    // Gate gradients (pre-activation), laid out [i f o g].
    Matrix dgates(batch, 4 * h_dim);
    for (size_t idx = 0; idx < dh.size(); ++idx) {
      float dht = dh.data()[idx];
      float dct = dc.data()[idx] +
                  dht * sc.o.data()[idx] *
                      (1.0f - sc.tanh_c.data()[idx] * sc.tanh_c.data()[idx]);
      float di = dct * sc.g.data()[idx];
      float df = dct * sc.c_prev.data()[idx];
      float do_ = dht * sc.tanh_c.data()[idx];
      float dg = dct * sc.i.data()[idx];
      size_t r = idx / h_dim;
      size_t j = idx % h_dim;
      float iv = sc.i.data()[idx];
      float fv = sc.f.data()[idx];
      float ov = sc.o.data()[idx];
      float gv = sc.g.data()[idx];
      dgates(r, j) = di * iv * (1.0f - iv);
      dgates(r, h_dim + j) = df * fv * (1.0f - fv);
      dgates(r, 2 * h_dim + j) = do_ * ov * (1.0f - ov);
      dgates(r, 3 * h_dim + j) = dg * (1.0f - gv * gv);
      dc.data()[idx] = dct * fv;  // Propagate cell gradient.
    }
    // Parameter gradients.
    AddInPlace(w_.grad, MatMulTransA(sc.concat, dgates));
    std::vector<float> db = ColSums(dgates);
    for (size_t j = 0; j < db.size(); ++j) b_.grad(0, j) += db[j];
    // dconcat -> dh_prev (first h_dim columns).
    Matrix dconcat = MatMulTransB(dgates, w_.value);
    for (size_t r = 0; r < batch; ++r) {
      const float* crow = dconcat.Row(r);
      float* hrow = dh.Row(r);
      std::copy(crow, crow + h_dim, hrow);
    }
  }

  ++step_;
  w_.Step(config_.adam, step_);
  b_.Step(config_.adam, step_);
  head_->Step(config_.adam, step_);
  w_.ZeroGrad();
  b_.ZeroGrad();
  head_->ZeroGrad();
  return mse;
}

std::vector<double> Lstm::Train(const Matrix& x, const Matrix& y, int epochs,
                                size_t batch_size, uint64_t shuffle_seed) {
  std::vector<double> curve;
  const size_t n = x.rows();
  Rng shuffle_rng(shuffle_seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (int e = 0; e < epochs; ++e) {
    shuffle_rng.Shuffle(order);
    double total = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < n; start += batch_size) {
      size_t bs = std::min(batch_size, n - start);
      Matrix bx(bs, x.cols());
      Matrix by(bs, y.cols());
      for (size_t i = 0; i < bs; ++i) {
        bx.CopyRowFrom(x, order[start + i], i);
        by.CopyRowFrom(y, order[start + i], i);
      }
      total += TrainBatch(bx, by);
      ++batches;
    }
    curve.push_back(batches ? total / batches : 0.0);
  }
  return curve;
}

double Lstm::PredictFlops() const {
  double per_step = 2.0 *
                    static_cast<double>(config_.hidden_size +
                                        config_.input_size) *
                    4.0 * static_cast<double>(config_.hidden_size);
  return per_step * static_cast<double>(config_.timesteps) +
         2.0 * static_cast<double>(config_.hidden_size) *
             static_cast<double>(config_.output_size);
}

size_t Lstm::ParamCount() const {
  return w_.size() + b_.size() + head_->ParamCount();
}

}  // namespace e2nvm::ml
