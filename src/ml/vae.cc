#include "ml/vae.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace e2nvm::ml {

namespace {
constexpr float kLogvarMin = -8.0f;
constexpr float kLogvarMax = 8.0f;

/// Elements per parallel block of the flat elementwise loops. Fixed so
/// the block count depends only on the tensor size; reductions combine
/// per-block partials in block order (pool-size invariant).
constexpr size_t kElemGrain = 16 * 1024;

/// Runs body(lo, hi, block) over [0, n): on the compute pool when one is
/// installed and the loop is large enough, else as a single serial block
/// (identical arithmetic to the pre-parallel code).
void ForElements(size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  ThreadPool* pool = compute_pool();
  if (pool != nullptr && n >= 2 * kElemGrain) {
    pool->ParallelForBlocks(0, n, kElemGrain, body);
  } else {
    body(0, n, 0);
  }
}

double BceSum(const Matrix& probs, const Matrix& x) {
  std::vector<double> partial(
      std::max<size_t>(ThreadPool::NumBlocks(probs.size(), kElemGrain), 1),
      0.0);
  ForElements(probs.size(), [&](size_t lo, size_t hi, size_t blk) {
    double l = 0.0;
    for (size_t i = lo; i < hi; ++i) {
      float p = std::clamp(probs.data()[i], 1e-7f, 1.0f - 1e-7f);
      float t = x.data()[i];
      l -= static_cast<double>(t) * std::log(p) +
           (1.0 - static_cast<double>(t)) * std::log(1.0f - p);
    }
    partial[blk] += l;
  });
  double loss = 0.0;
  for (double l : partial) loss += l;
  return loss;
}

/// probs = sigmoid(logits), elementwise.
Matrix SigmoidAll(const Matrix& logits) {
  Matrix probs(logits.rows(), logits.cols());
  ForElements(logits.size(), [&](size_t lo, size_t hi, size_t) {
    for (size_t i = lo; i < hi; ++i) {
      probs.data()[i] = SigmoidScalar(logits.data()[i]);
    }
  });
  return probs;
}
}  // namespace

Vae::Vae(const VaeConfig& config) : config_(config), rng_(config.seed) {
  auto enc_in = std::make_unique<Dense>(config.input_dim,
                                        config.hidden_dim, rng_);
  enc_in_ = enc_in.get();
  encoder_body_.Add(std::move(enc_in));
  encoder_body_.Add(std::make_unique<Relu>());
  mu_head_ =
      std::make_unique<Dense>(config.hidden_dim, config.latent_dim, rng_);
  logvar_head_ =
      std::make_unique<Dense>(config.hidden_dim, config.latent_dim, rng_);
  decoder_.Add(
      std::make_unique<Dense>(config.latent_dim, config.hidden_dim, rng_));
  decoder_.Add(std::make_unique<Relu>());
  decoder_.Add(
      std::make_unique<Dense>(config.hidden_dim, config.input_dim, rng_));
}

void Vae::EncodeForward(const Matrix& x, Matrix* mu, Matrix* logvar) {
  Matrix h = encoder_body_.Forward(x);
  *mu = mu_head_->Forward(h);
  *logvar = logvar_head_->Forward(h);
  for (auto& v : logvar->data()) v = std::clamp(v, kLogvarMin, kLogvarMax);
}

Matrix Vae::EncodeMu(const Matrix& x) {
  Matrix mu, logvar;
  EncodeForward(x, &mu, &logvar);
  return mu;
}

std::vector<float> Vae::EncodeOne(const std::vector<float>& x) {
  E2_CHECK(x.size() == config_.input_dim, "EncodeOne dim mismatch");
  Matrix xm(1, config_.input_dim, x);
  Matrix mu = EncodeMu(xm);
  return mu.data();
}

void Vae::EncodeMuInto(const Matrix& x, Matrix* hidden, Matrix* mu) {
  E2_CHECK(x.cols() == config_.input_dim, "EncodeMuInto dim mismatch");
  // Mirrors EncodeForward's mu branch op for op (Dense::Forward is
  // MatMul + AddRowVector; Relu::Forward's outputs are max(v, 0)), so
  // the latent codes match EncodeMu bit for bit.
  MatMulInto(x, enc_in_->weights().value, hidden);
  AddRowVector(*hidden, enc_in_->bias().value.data());
  ReluInPlace(*hidden);
  MatMulInto(*hidden, mu_head_->weights().value, mu);
  AddRowVector(*mu, mu_head_->bias().value.data());
}

Matrix Vae::Decode(const Matrix& z) {
  Matrix logits = decoder_.Forward(z);
  return SigmoidAll(logits);
}

Vae::BatchLoss Vae::TrainBatch(const Matrix& x, const VaeTrainOptions& opts) {
  const size_t batch = x.rows();
  const float inv_batch = 1.0f / static_cast<float>(batch);

  // ---- Forward ----
  Matrix mu, logvar;
  EncodeForward(x, &mu, &logvar);

  // Reparameterization: z = mu + exp(logvar/2) * eps, eps ~ N(0, I).
  Matrix eps(batch, config_.latent_dim);
  for (auto& e : eps.data()) e = static_cast<float>(rng_.NextGaussian());
  Matrix sigma(batch, config_.latent_dim);
  Matrix z(batch, config_.latent_dim);
  for (size_t i = 0; i < z.size(); ++i) {
    sigma.data()[i] = std::exp(0.5f * logvar.data()[i]);
    z.data()[i] = mu.data()[i] + sigma.data()[i] * eps.data()[i];
  }

  Matrix logits = decoder_.Forward(z);
  Matrix probs = SigmoidAll(logits);

  BatchLoss loss;
  loss.recon = BceSum(probs, x) / static_cast<double>(batch);
  double kl = 0.0;
  for (size_t i = 0; i < mu.size(); ++i) {
    float m = mu.data()[i];
    float lv = logvar.data()[i];
    kl += -0.5 * (1.0 + lv - m * m - std::exp(lv));
  }
  loss.kl = config_.beta * kl / static_cast<double>(batch);

  // ---- Backward ----
  // d(BCE with logits)/dlogits = (p - x), averaged over the batch.
  Matrix dlogits(probs.rows(), probs.cols());
  ForElements(probs.size(), [&](size_t lo, size_t hi, size_t) {
    for (size_t i = lo; i < hi; ++i) {
      dlogits.data()[i] = (probs.data()[i] - x.data()[i]) * inv_batch;
    }
  });
  Matrix dz = decoder_.Backward(dlogits);

  // Optional joint K-means term: cluster_weight * ||z - c||^2.
  if (opts.centroids != nullptr && opts.assignments != nullptr &&
      opts.cluster_weight > 0.0f) {
    const Matrix& cents = *opts.centroids;
    const auto& assign = *opts.assignments;
    E2_CHECK(assign.size() == batch, "assignment/batch size mismatch");
    double closs = 0.0;
    for (size_t i = 0; i < batch; ++i) {
      const float* crow = cents.Row(assign[i]);
      for (size_t d = 0; d < config_.latent_dim; ++d) {
        float diff = z(i, d) - crow[d];
        closs += static_cast<double>(diff) * diff;
        dz(i, d) += opts.cluster_weight * 2.0f * diff * inv_batch;
      }
    }
    loss.cluster = opts.cluster_weight * closs / static_cast<double>(batch);
  }

  // Gradients wrt mu and logvar: z = mu + sigma * eps.
  Matrix dmu = dz;  // dz/dmu = 1.
  Matrix dlogvar(batch, config_.latent_dim);
  for (size_t i = 0; i < dz.size(); ++i) {
    dlogvar.data()[i] =
        dz.data()[i] * eps.data()[i] * 0.5f * sigma.data()[i];
  }
  // KL gradients: dKL/dmu = mu, dKL/dlogvar = 0.5 (e^logvar - 1).
  const float beta_scale = config_.beta * inv_batch;
  for (size_t i = 0; i < dmu.size(); ++i) {
    dmu.data()[i] += beta_scale * mu.data()[i];
    dlogvar.data()[i] +=
        beta_scale * 0.5f * (std::exp(logvar.data()[i]) - 1.0f);
  }

  Matrix dh = mu_head_->Backward(dmu);
  AddInPlace(dh, logvar_head_->Backward(dlogvar));
  encoder_body_.Backward(dh);

  // ---- Update ----
  ++step_;
  encoder_body_.Step(config_.adam, step_);
  mu_head_->Step(config_.adam, step_);
  logvar_head_->Step(config_.adam, step_);
  decoder_.Step(config_.adam, step_);
  encoder_body_.ZeroGrad();
  mu_head_->ZeroGrad();
  logvar_head_->ZeroGrad();
  decoder_.ZeroGrad();
  return loss;
}

double Vae::EvalLoss(const Matrix& x) {
  Matrix mu, logvar;
  EncodeForward(x, &mu, &logvar);
  Matrix probs = Decode(mu);  // eps = 0: z = mu.
  double recon = BceSum(probs, x) / static_cast<double>(x.rows());
  double kl = 0.0;
  for (size_t i = 0; i < mu.size(); ++i) {
    float m = mu.data()[i];
    float lv = logvar.data()[i];
    kl += -0.5 * (1.0 + lv - m * m - std::exp(lv));
  }
  return recon + config_.beta * kl / static_cast<double>(x.rows());
}

TrainHistory Vae::Train(const Matrix& x, const VaeTrainOptions& opts) {
  TrainHistory history;
  const size_t n = x.rows();
  Rng shuffle_rng(opts.shuffle_seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  shuffle_rng.Shuffle(order);

  size_t val_n = static_cast<size_t>(
      static_cast<double>(n) * opts.validation_fraction);
  val_n = std::min(val_n, n > 1 ? n - 1 : size_t{0});
  size_t train_n = n - val_n;

  Matrix val(val_n, x.cols());
  for (size_t i = 0; i < val_n; ++i) {
    val.CopyRowFrom(x, order[train_n + i], i);
  }

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < train_n; start += opts.batch_size) {
      size_t bs = std::min(opts.batch_size, train_n - start);
      Matrix batch(bs, x.cols());
      for (size_t i = 0; i < bs; ++i) {
        batch.CopyRowFrom(x, order[start + i], i);
      }
      // The joint-clustering option needs per-batch assignments, which the
      // caller supplies only for full-batch fine-tuning (see E2Model);
      // inside this generic loop we train the pure ELBO.
      VaeTrainOptions batch_opts = opts;
      batch_opts.centroids = nullptr;
      batch_opts.assignments = nullptr;
      BatchLoss l = TrainBatch(batch, batch_opts);
      epoch_loss += l.total();
      ++batches;
      history.flops += TrainStepFlops(bs);
    }
    history.train_loss.push_back(batches ? epoch_loss / batches : 0.0);
    history.val_loss.push_back(val_n > 0 ? EvalLoss(val)
                                         : history.train_loss.back());
  }
  return history;
}

double Vae::PartialFit(const Matrix& x, size_t batch_size) {
  const size_t n = x.rows();
  if (n == 0) return 0.0;
  const size_t bs_cap = batch_size == 0 ? n : batch_size;
  VaeTrainOptions opts;  // Pure ELBO; no clustering term.
  double flops = 0.0;
  for (size_t start = 0; start < n; start += bs_cap) {
    const size_t bs = std::min(bs_cap, n - start);
    if (bs == n) {
      TrainBatch(x, opts);
    } else {
      Matrix batch(bs, x.cols());
      for (size_t i = 0; i < bs; ++i) batch.CopyRowFrom(x, start + i, i);
      TrainBatch(batch, opts);
    }
    flops += TrainStepFlops(bs);
  }
  return flops;
}

double Vae::PredictFlops() const {
  double enc = 2.0 * static_cast<double>(config_.input_dim) *
                   static_cast<double>(config_.hidden_dim) +
               2.0 * static_cast<double>(config_.hidden_dim) *
                   static_cast<double>(config_.latent_dim);
  return enc;
}

double Vae::TrainStepFlops(size_t batch) const {
  double fwd = encoder_body_.ForwardFlops(batch) +
               mu_head_->ForwardFlops(batch) +
               logvar_head_->ForwardFlops(batch) +
               decoder_.ForwardFlops(batch);
  return 3.0 * fwd;  // Forward + backward ~= 3x forward MACs.
}

size_t Vae::ParamCount() const {
  return encoder_body_.ParamCount() + mu_head_->ParamCount() +
         logvar_head_->ParamCount() + decoder_.ParamCount();
}

}  // namespace e2nvm::ml
