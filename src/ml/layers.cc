#include "ml/layers.h"

#include <cmath>

namespace e2nvm::ml {

void ParamBlock::Step(const AdamConfig& cfg, int t) {
  const float b1 = cfg.beta1;
  const float b2 = cfg.beta2;
  const float correction1 =
      1.0f - std::pow(b1, static_cast<float>(t));
  const float correction2 =
      1.0f - std::pow(b2, static_cast<float>(t));
  for (size_t i = 0; i < value.size(); ++i) {
    float g = grad.data()[i];
    float& mi = m.data()[i];
    float& vi = v.data()[i];
    mi = b1 * mi + (1.0f - b1) * g;
    vi = b2 * vi + (1.0f - b2) * g * g;
    float mhat = mi / correction1;
    float vhat = vi / correction2;
    value.data()[i] -= cfg.lr * mhat / (std::sqrt(vhat) + cfg.eps);
  }
}

Dense::Dense(size_t in, size_t out, Rng& rng)
    : in_(in), out_(out), w_(in, out), b_(1, out) {
  w_.value.XavierInit(rng, in, out);
}

Matrix Dense::Forward(const Matrix& x) {
  x_cache_ = x;
  Matrix y = MatMul(x, w_.value);
  AddRowVector(y, b_.value.data());
  return y;
}

Matrix Dense::Backward(const Matrix& dy) {
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T.
  Matrix dw = MatMulTransA(x_cache_, dy);
  AddInPlace(w_.grad, dw);
  std::vector<float> db = ColSums(dy);
  for (size_t j = 0; j < db.size(); ++j) b_.grad(0, j) += db[j];
  return MatMulTransB(dy, w_.value);
}

void Dense::Step(const AdamConfig& cfg, int t) {
  w_.Step(cfg, t);
  b_.Step(cfg, t);
}

void Dense::ZeroGrad() {
  w_.ZeroGrad();
  b_.ZeroGrad();
}

Matrix Sigmoid::Forward(const Matrix& x) {
  y_cache_ = Matrix(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    y_cache_.data()[i] = SigmoidScalar(x.data()[i]);
  }
  return y_cache_;
}

Matrix Sigmoid::Backward(const Matrix& dy) {
  Matrix dx(dy.rows(), dy.cols());
  for (size_t i = 0; i < dy.size(); ++i) {
    float y = y_cache_.data()[i];
    dx.data()[i] = dy.data()[i] * y * (1.0f - y);
  }
  return dx;
}

Matrix Relu::Forward(const Matrix& x) {
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    bool pos = x.data()[i] > 0.0f;
    mask_.data()[i] = pos ? 1.0f : 0.0f;
    y.data()[i] = pos ? x.data()[i] : 0.0f;
  }
  return y;
}

Matrix Relu::Backward(const Matrix& dy) { return Hadamard(dy, mask_); }

Matrix Tanh::Forward(const Matrix& x) {
  y_cache_ = Matrix(x.rows(), x.cols());
  for (size_t i = 0; i < x.size(); ++i) {
    y_cache_.data()[i] = std::tanh(x.data()[i]);
  }
  return y_cache_;
}

Matrix Tanh::Backward(const Matrix& dy) {
  Matrix dx(dy.rows(), dy.cols());
  for (size_t i = 0; i < dy.size(); ++i) {
    float y = y_cache_.data()[i];
    dx.data()[i] = dy.data()[i] * (1.0f - y * y);
  }
  return dx;
}

Matrix Sequential::Forward(const Matrix& x) {
  Matrix cur = x;
  for (auto& l : layers_) cur = l->Forward(cur);
  return cur;
}

Matrix Sequential::Backward(const Matrix& dy) {
  Matrix cur = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->Backward(cur);
  }
  return cur;
}

void Sequential::Step(const AdamConfig& cfg, int t) {
  for (auto& l : layers_) l->Step(cfg, t);
}

void Sequential::ZeroGrad() {
  for (auto& l : layers_) l->ZeroGrad();
}

size_t Sequential::ParamCount() const {
  size_t n = 0;
  for (const auto& l : layers_) n += l->ParamCount();
  return n;
}

double Sequential::ForwardFlops(size_t batch) const {
  double f = 0;
  for (const auto& l : layers_) f += l->ForwardFlops(batch);
  return f;
}

}  // namespace e2nvm::ml
