#ifndef E2NVM_ML_KMEANS_H_
#define E2NVM_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/matrix.h"

namespace e2nvm::ml {

/// K-means configuration.
struct KMeansConfig {
  size_t k = 10;
  int max_iters = 50;
  /// Stop when the relative SSE improvement falls below this.
  double tol = 1e-4;
  uint64_t seed = 42;
};

/// Lloyd's K-means with k-means++ seeding. Used in three places:
///  - on the VAE latent space (the E2-NVM model);
///  - on raw bit vectors (the PNW "K-means alone" baseline);
///  - on PCA projections (the PNW "PCA+K-means" baseline).
class KMeans {
 public:
  explicit KMeans(const KMeansConfig& config) : config_(config) {}

  /// Fits on `x` (rows are samples). Requires x.rows() >= k.
  Status Fit(const Matrix& x);

  /// True once Fit succeeded.
  bool fitted() const { return !centroids_.empty(); }

  /// Index of the nearest centroid to `v` (length dim()).
  size_t Predict(const float* v, size_t dim) const;

  /// Predicts every row of `x`.
  std::vector<size_t> PredictBatch(const Matrix& x) const;

  /// Fused batched assignment into caller-owned scratch: one x C^T GEMM
  /// (`scores`, reshaped as needed) scores all rows against all centroids
  /// via ||x-c||^2 = ||x||^2 - 2 x.c + ||c||^2 with cached centroid
  /// norms, then each row's argmin is taken. Rows whose fused score lies
  /// within the kernel's floating-point error band of the minimum are
  /// re-checked with the exact Predict() distance in Predict's scan
  /// order, so the chosen ids — including tie-breaks — are identical to
  /// calling Predict per row. Zero heap allocations once the scratch has
  /// warmed up. The centroid-norm cache is rebuilt lazily after any
  /// Fit/SetCentroids (a swapped-in shadow model starts with a cold
  /// cache by construction).
  void AssignFusedInto(const Matrix& x, Matrix* scores,
                       std::vector<size_t>* out) const;

  /// Incremental warm-started update (web-scale mini-batch k-means):
  /// each row of `x` is assigned to its nearest *current* centroid,
  /// which then moves toward the row with a per-centroid learning rate
  /// 1 / cumulative-count. Counts are seeded from the last Fit's final
  /// cluster sizes, so refinement continues from the full fit's mass
  /// instead of re-seeding (or teleporting a centroid onto the first
  /// fresh sample). Requires a prior Fit; rows are consumed in order on
  /// the calling thread, so the post-update centroids are a pure
  /// function of (current centroids, counts, x) — pool-size invariant
  /// by construction. Invalidates the fused-assignment norm cache.
  Status PartialFit(const Matrix& x);

  /// Multiply-accumulates of one PartialFit call on `n` rows (a predict
  /// plus a centroid nudge per row).
  double PartialFitFlops(size_t n) const {
    return 4.0 * static_cast<double>(n) * static_cast<double>(config_.k) *
           static_cast<double>(dim());
  }

  /// Sum of squared distances of rows of `x` to their nearest centroid —
  /// the elbow-method objective (paper Eq. 1).
  double Sse(const Matrix& x) const;

  const Matrix& centroids() const { return centroids_; }
  const KMeansConfig& config() const { return config_; }
  size_t k() const { return config_.k; }
  size_t dim() const { return centroids_.cols(); }
  int iters_run() const { return iters_run_; }

  /// Multiply-accumulates for one Predict call (CPU energy model).
  double PredictFlops() const {
    return 3.0 * static_cast<double>(config_.k) *
           static_cast<double>(dim());
  }
  /// Multiply-accumulates of the completed Fit (for latency/energy accounting).
  double FitFlops(size_t n) const {
    return 3.0 * static_cast<double>(n) * static_cast<double>(config_.k) *
           static_cast<double>(dim()) * static_cast<double>(iters_run_ + 1);
  }

  /// Replaces the centroids (used by joint fine-tuning when centroids are
  /// re-estimated from fresh latent codes). Invalidates the fused
  /// assignment's centroid-norm cache.
  void SetCentroids(Matrix centroids) {
    centroids_ = std::move(centroids);
    norms_valid_ = false;
  }

 private:
  double DistSq(const float* a, const float* b, size_t dim) const;
  void InitPlusPlus(const Matrix& x, Rng& rng);
  /// Squared L2 norm per centroid, rebuilt lazily after centroid changes
  /// (Fit, SetCentroids). Also refreshes cmax_norm_.
  const std::vector<double>& CentroidNormsSq() const;

  KMeansConfig config_;
  Matrix centroids_;  // k x dim
  int iters_run_ = 0;
  // Cumulative per-centroid sample counts driving PartialFit's learning
  // rates; reset to the final assignment counts by Fit.
  std::vector<uint64_t> partial_counts_;
  // Centroid-norm cache for AssignFusedInto. Mutable because the cache
  // is a memo of const state; KMeans is not written to be shared across
  // threads without synchronization (each model instance — serving or
  // shadow — is driven by one thread).
  mutable std::vector<double> cnorm2_;
  mutable double cmax_norm_ = 0.0;
  mutable bool norms_valid_ = false;
};

/// Given SSE values for K = 1..n (index 0 -> K=1), returns the K at the
/// "knee": the point with maximum distance from the chord connecting the
/// first and last points (the standard kneedle construction the paper's
/// elbow method eyeballs). Returns a 1-based K.
size_t FindElbow(const std::vector<double>& sse);

}  // namespace e2nvm::ml

#endif  // E2NVM_ML_KMEANS_H_
