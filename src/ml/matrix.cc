#include "ml/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace e2nvm::ml {

void Matrix::XavierInit(Rng& rng, size_t fan_in, size_t fan_out) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& v : data_) {
    v = (rng.NextFloat() * 2.0f - 1.0f) * limit;
  }
}

void Matrix::CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row) {
  assert(src.cols() == cols_);
  std::memcpy(Row(dst_row), src.Row(src_row), cols_ * sizeof(float));
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float s = 0.0f;
      for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void AddInPlace(Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

void Axpy(Matrix& a, const Matrix& b, float scale) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] += scale * b.data()[i];
}

void AddRowVector(Matrix& a, const std::vector<float>& bias) {
  assert(bias.size() == a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    float* row = a.Row(i);
    for (size_t j = 0; j < a.cols(); ++j) row[j] += bias[j];
  }
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    c.data()[i] = a.data()[i] * b.data()[i];
  }
  return c;
}

std::vector<float> ColSums(const Matrix& a) {
  std::vector<float> s(a.cols(), 0.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.Row(i);
    for (size_t j = 0; j < a.cols(); ++j) s[j] += row[j];
  }
  return s;
}

double FrobeniusSq(const Matrix& a) {
  double s = 0.0;
  for (float v : a.data()) s += static_cast<double>(v) * v;
  return s;
}

}  // namespace e2nvm::ml
