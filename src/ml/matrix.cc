#include "ml/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/kernels.h"
#include "common/thread_pool.h"

namespace e2nvm::ml {

namespace {

std::atomic<ThreadPool*> g_compute_pool{nullptr};

/// Thread-local override stack top (see ScopedComputePool). A separate
/// `active` flag distinguishes "override to serial" (nullptr override)
/// from "no override".
thread_local ThreadPool* t_pool_override = nullptr;
thread_local bool t_pool_override_active = false;

/// Minimum multiply-accumulates before a kernel bothers the pool; below
/// this the fork-join overhead dwarfs the work (a single EncodeOne on a
/// 2048-bit segment is ~260k MACs, so prediction right at the write path
/// threshold stays parallel-eligible while tiny test matrices stay
/// serial).
constexpr double kMinParallelMacs = 64.0 * 1024.0;

/// Minimum multiply-accumulates in the WHOLE kernel before it dispatches
/// at all. Below this (inference-sized GEMMs: a MultiPut batch is at
/// most a few dozen rows) the kernel finishes in tens of microseconds —
/// fork-join latency is comparable, and splitting the row range
/// fragments the p-outer loop's B-row reuse. Training-sized GEMMs
/// (hundreds of rows) clear it easily and still fan out.
constexpr double kMinParallelTotalMacs = 2.0 * 1024.0 * 1024.0;

/// Splits `rows` into at most 64 blocks (>=1 row each). Row-parallel
/// kernels write disjoint output rows with unchanged per-row arithmetic,
/// so any blocking — and any pool size — reproduces the serial result
/// bit-for-bit.
size_t RowGrain(size_t rows) { return std::max<size_t>(1, rows / 64); }

/// Work-based grain for the row-parallel GEMMs: every block carries at
/// least kMinParallelMacs of arithmetic, so a dispatched block is never
/// dominated by fork-join overhead. Combined with the NumBlocks pre-check
/// below, single-row inference GEMMs (and anything else below the grain)
/// run inline on the caller without ever constructing a closure or
/// touching the pool's queue.
size_t WorkGrain(size_t rows, double macs_per_row) {
  size_t by_work = static_cast<size_t>(kMinParallelMacs /
                                       std::max(macs_per_row, 1.0)) +
                   1;
  return std::max(RowGrain(rows), by_work);
}

/// Inline-below-grain check: parallel dispatch only pays when the range
/// splits into at least two blocks and the kernel as a whole carries
/// enough arithmetic to amortize the fork-join.
bool UsePool(ThreadPool* pool, size_t rows, size_t grain,
             double total_macs) {
  return pool != nullptr && total_macs >= kMinParallelTotalMacs &&
         ThreadPool::NumBlocks(rows, grain) > 1;
}

}  // namespace

void SetComputePool(ThreadPool* pool) {
  g_compute_pool.store(pool, std::memory_order_release);
}

ThreadPool* compute_pool() {
  if (t_pool_override_active) return t_pool_override;
  return g_compute_pool.load(std::memory_order_acquire);
}

ScopedComputePool::ScopedComputePool(ThreadPool* pool)
    : prev_(t_pool_override), prev_active_(t_pool_override_active) {
  t_pool_override = pool;
  t_pool_override_active = true;
}

ScopedComputePool::~ScopedComputePool() {
  t_pool_override = prev_;
  t_pool_override_active = prev_active_;
}

void Matrix::XavierInit(Rng& rng, size_t fan_in, size_t fan_out) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& v : data_) {
    v = (rng.NextFloat() * 2.0f - 1.0f) * limit;
  }
}

void Matrix::CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row) {
  assert(src.cols() == cols_);
  std::memcpy(Row(dst_row), src.Row(src_row), cols_ * sizeof(float));
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.cols() == b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  c->EnsureShape(m, n);
  if (m == 1) {
    // The write path's single-row encode: one register-blocked GEMV call
    // instead of k dispatched row updates. Same per-element ascending-p
    // accumulation (and the same a[p] == 0 skip), so still bit-identical
    // to the block loop below — see kernels.h gemv_f32.
    Ops().gemv_f32(a.Row(0), b.Row(0), k, n, c->Row(0));
    return;
  }
  std::fill(c->data().begin(), c->data().end(), 0.0f);
  // p-outer within each row block: every B row is loaded once per block
  // and reused across all of the block's A rows, so a batched GEMM
  // touches B ~block-height times less than row-at-a-time GEMVs would.
  // Each c[i][j] still accumulates its k products in ascending-p order,
  // so the result is bit-identical to the naive i-outer loop (this is
  // what lets MultiPut's one-GEMM placement match sequential Puts).
  // The av == 1.0f lane matters more than it looks: encoder inputs are
  // featurized bit patterns (every element 0.0 or 1.0), so the write
  // path's GEMMs reduce to summing the B rows selected by set bits —
  // and 1.0f * x == x exactly, so the specialization stays bit-identical
  // for every input. The j-inner lanes run through the dispatched SIMD
  // kernels, which are element-wise over j (each c[i][j] still sees its
  // products in ascending-p, mul-then-add order — see kernels.h).
  const KernelOps& kern = Ops();
  auto rows = [&](size_t lo, size_t hi) {
    for (size_t p = 0; p < k; ++p) {
      const float* brow = b.Row(p);
      for (size_t i = lo; i < hi; ++i) {
        const float av = a.Row(i)[p];
        if (av == 0.0f) continue;
        float* crow = c->Row(i);
        if (av == 1.0f) {
          kern.add_f32(crow, brow, n);
        } else {
          kern.axpy_f32(crow, brow, av, n);
        }
      }
    }
  };
  ThreadPool* pool = compute_pool();
  const double macs_per_row = static_cast<double>(k) * n;
  const size_t grain = WorkGrain(m, macs_per_row);
  if (UsePool(pool, m, grain, macs_per_row * m)) {
    pool->ParallelForBlocks(0, m, grain,
                            [&](size_t lo, size_t hi, size_t) {
                              rows(lo, hi);
                            });
  } else {
    rows(0, m);
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulInto(a, b, &c);
  return c;
}

void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* c) {
  assert(a.cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  c->EnsureShape(m, n);
  // Panels of 8 output columns run as 8 SIMD lanes, each accumulating
  // its dot product in the same ascending-p order as the scalar loop
  // below (kernels.h dot8_f32 contract), so any column split is
  // bit-identical to the all-scalar result.
  const KernelOps& kern = Ops();
  auto rows = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const float* arow = a.Row(i);
      float* crow = c->Row(i);
      size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        kern.dot8_f32(arow, b.Row(j), k, k, crow + j);
      }
      for (; j < n; ++j) {
        const float* brow = b.Row(j);
        float s = 0.0f;
        for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        crow[j] = s;
      }
    }
  };
  ThreadPool* pool = compute_pool();
  const double macs_per_row = static_cast<double>(k) * n;
  const size_t grain = WorkGrain(m, macs_per_row);
  if (UsePool(pool, m, grain, macs_per_row * m)) {
    pool->ParallelForBlocks(0, m, grain,
                            [&](size_t lo, size_t hi, size_t) {
                              rows(lo, hi);
                            });
  } else {
    rows(0, m);
  }
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTransBInto(a, b, &c);
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  ThreadPool* pool = compute_pool();
  const KernelOps& kern = Ops();
  const double macs_per_row = static_cast<double>(k) * n;
  const size_t grain = WorkGrain(m, macs_per_row);
  if (UsePool(pool, m, grain, macs_per_row * m)) {
    // Parallel over output rows i (columns of a): each c row accumulates
    // over p in the same ascending order as the serial loop below, so the
    // result is bit-identical; only the loop nest is exchanged.
    pool->ParallelForBlocks(
        0, m, grain, [&](size_t lo, size_t hi, size_t) {
          for (size_t i = lo; i < hi; ++i) {
            float* crow = c.Row(i);
            for (size_t p = 0; p < k; ++p) {
              const float av = a.Row(p)[i];
              if (av == 0.0f) continue;
              kern.axpy_f32(crow, b.Row(p), av, n);
            }
          }
        });
    return c;
  }
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      kern.axpy_f32(c.Row(i), brow, av, n);
    }
  }
  return c;
}

void AddInPlace(Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Ops().add_f32(a.data().data(), b.data().data(), a.size());
}

void Axpy(Matrix& a, const Matrix& b, float scale) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Ops().axpy_f32(a.data().data(), b.data().data(), scale, a.size());
}

void AddRowVector(Matrix& a, const std::vector<float>& bias) {
  assert(bias.size() == a.cols());
  const KernelOps& kern = Ops();
  for (size_t i = 0; i < a.rows(); ++i) {
    kern.add_f32(a.Row(i), bias.data(), a.cols());
  }
}

void ReluInPlace(Matrix& a) {
  for (auto& v : a.data()) v = v > 0.0f ? v : 0.0f;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    c.data()[i] = a.data()[i] * b.data()[i];
  }
  return c;
}

std::vector<float> ColSums(const Matrix& a) {
  std::vector<float> s(a.cols(), 0.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.Row(i);
    for (size_t j = 0; j < a.cols(); ++j) s[j] += row[j];
  }
  return s;
}

double FrobeniusSq(const Matrix& a) {
  double s = 0.0;
  for (float v : a.data()) s += static_cast<double>(v) * v;
  return s;
}

}  // namespace e2nvm::ml
