#ifndef E2NVM_ML_MATRIX_H_
#define E2NVM_ML_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace e2nvm {
class ThreadPool;
}

namespace e2nvm::ml {

/// Installs the process-global pool used by every parallel ML kernel
/// (MatMul*, K-means fit/predict-batch, the VAE's elementwise batch
/// loops) — the library's set-pool hook. nullptr (the default) selects
/// the serial code paths, which are bit-identical to the pre-parallel
/// implementation. The pool must outlive all kernel calls; install
/// before spawning any thread that runs kernels (the pointer itself is
/// read atomically). A thread-local ScopedComputePool override (below)
/// takes precedence on the installing thread.
void SetComputePool(ThreadPool* pool);

/// Currently effective pool for the calling thread: the innermost active
/// ScopedComputePool override if any, else the global hook, else nullptr
/// (serial mode). Kernel results are pool-size invariant by contract, so
/// which pool answers here never changes numerics — only where the work
/// runs.
ThreadPool* compute_pool();

/// RAII thread-local pool override: while alive, kernels issued from the
/// *constructing thread* dispatch to `pool` (nullptr forces the serial
/// path) regardless of the global hook. This is how a sharded store
/// pins each shard's inference/retrain work to that shard's own compute
/// lane — shard A's kernels can never queue behind shard B's retrain,
/// and the steady-state path never touches a pool another shard waits
/// on. Overrides nest; each restores its predecessor on destruction.
class ScopedComputePool {
 public:
  explicit ScopedComputePool(ThreadPool* pool);
  ~ScopedComputePool();
  ScopedComputePool(const ScopedComputePool&) = delete;
  ScopedComputePool& operator=(const ScopedComputePool&) = delete;

 private:
  ThreadPool* prev_;
  bool prev_active_;
};

/// Dense row-major float matrix — the tensor type of the ML substrate.
/// Sized for this library's models (inputs up to a few thousand features,
/// batches of a few hundred), so a straightforward cache-friendly
/// implementation is sufficient; no BLAS dependency.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Builds from explicit data (size must be rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  /// Re-shapes to rows x cols, reusing the existing buffer whenever the
  /// element count matches (and vector capacity otherwise). Contents are
  /// unspecified after a call — the scratch-buffer idiom of the write-path
  /// inference kernels: buffers grow during warm-up, then every further
  /// call is allocation-free.
  void EnsureShape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    if (data_.size() != rows * cols) data_.resize(rows * cols);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Xavier/Glorot uniform initialization for a (out x in)-shaped weight.
  void XavierInit(Rng& rng, size_t fan_in, size_t fan_out);

  /// Copies row `src_row` of `src` into row `dst_row` of *this
  /// (cols must match).
  void CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B into a caller-owned scratch matrix (EnsureShape'd to m x n).
/// Same kernel and accumulation order as MatMul, so results are
/// bit-identical — this is the allocation-free variant the write-path
/// inference scratch uses.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c);

/// C = A * B^T. Shapes: (m x k) * (n x k) -> (m x n).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Allocation-free MatMulTransB (bit-identical; see MatMulInto).
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* c);

/// C = A^T * B. Shapes: (k x m) * (k x n) -> (m x n).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// Elementwise a += b (same shape).
void AddInPlace(Matrix& a, const Matrix& b);

/// Elementwise a += scale * b (same shape).
void Axpy(Matrix& a, const Matrix& b, float scale);

/// Adds a row vector `bias` (1 x n) to every row of `a` (m x n).
void AddRowVector(Matrix& a, const std::vector<float>& bias);

/// Elementwise in-place ReLU: a[i] = max(a[i], 0). Same arithmetic as
/// layers.h's Relu::Forward, without the mask/output allocations.
void ReluInPlace(Matrix& a);

/// Elementwise Hadamard product c = a .* b.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Column sums of `a` -> vector of length cols (bias gradients).
std::vector<float> ColSums(const Matrix& a);

/// Squared Frobenius norm.
double FrobeniusSq(const Matrix& a);

}  // namespace e2nvm::ml

#endif  // E2NVM_ML_MATRIX_H_
