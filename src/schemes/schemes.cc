#include "schemes/schemes.h"

#include <algorithm>

#include "common/logging.h"

namespace e2nvm::schemes {

using nvm::WriteResult;

// ---------------------------------------------------------------- Naive --

WriteResult NaiveWrite::Write(uint64_t segment_id, const BitVector& old,
                              const BitVector& data) {
  WriteResult r;
  WriteInto(segment_id, old, data, &r);
  return r;
}

void NaiveWrite::WriteInto(uint64_t segment_id, const BitVector& old,
                           const BitVector& data, WriteResult* out) {
  (void)segment_id;
  out->stored = data;  // Capacity-reusing copy-assign.
  out->data_bits_flipped = old.HammingDistance(data);
  out->aux_bits_flipped = 0;
  out->bits_programmed = data.size();  // Every cell is driven.
  out->verify_retries = 0;
  out->verify_failed = false;
}

// ------------------------------------------------------------------ DCW --

WriteResult Dcw::Write(uint64_t segment_id, const BitVector& old,
                       const BitVector& data) {
  WriteResult r;
  WriteInto(segment_id, old, data, &r);
  return r;
}

void Dcw::WriteInto(uint64_t segment_id, const BitVector& old,
                    const BitVector& data, WriteResult* out) {
  (void)segment_id;
  out->stored = data;  // Capacity-reusing copy-assign.
  out->data_bits_flipped = old.HammingDistance(data);
  out->aux_bits_flipped = 0;
  out->bits_programmed = out->data_bits_flipped;  // Only differing cells.
  out->verify_retries = 0;
  out->verify_failed = false;
}

// ------------------------------------------------------------------ FNW --

WriteResult FlipNWrite::Write(uint64_t segment_id, const BitVector& old,
                              const BitVector& data) {
  E2_CHECK(old.size() == data.size(), "FNW size mismatch");
  size_t num_words = (data.size() + word_bits_ - 1) / word_bits_;
  auto& flags = flags_[segment_id];
  flags.resize(num_words, false);

  WriteResult r;
  r.stored = BitVector(data.size());
  for (size_t w = 0; w < num_words; ++w) {
    size_t start = w * word_bits_;
    size_t len = std::min(word_bits_, data.size() - start);
    BitVector old_word = old.Slice(start, len);
    BitVector new_word = data.Slice(start, len);
    size_t flips_id = old_word.HammingDistance(new_word);
    size_t flips_inv = len - flips_id;
    // Include the cost of toggling the flag cell itself.
    size_t cost_id = flips_id + (flags[w] ? 1u : 0u);
    size_t cost_inv = flips_inv + (flags[w] ? 0u : 1u);
    bool invert = cost_inv < cost_id;
    if (invert != flags[w]) {
      r.aux_bits_flipped += 1;
      flags[w] = invert;
    }
    BitVector stored_word = invert ? new_word.Inverted() : new_word;
    r.data_bits_flipped += old_word.HammingDistance(stored_word);
    r.stored.Overlay(start, stored_word);
  }
  r.bits_programmed = r.data_bits_flipped + r.aux_bits_flipped;
  return r;
}

BitVector FlipNWrite::Decode(uint64_t segment_id,
                             const BitVector& stored) const {
  auto it = flags_.find(segment_id);
  if (it == flags_.end()) return stored;
  const auto& flags = it->second;
  BitVector out = stored;
  for (size_t w = 0; w < flags.size(); ++w) {
    if (!flags[w]) continue;
    size_t start = w * word_bits_;
    if (start >= stored.size()) break;
    size_t len = std::min(word_bits_, stored.size() - start);
    out.Overlay(start, stored.Slice(start, len).Inverted());
  }
  return out;
}

// ------------------------------------------------------------- MinShift --

size_t MinShift::TagHamming(Tag a, Tag b) {
  uint8_t xa = static_cast<uint8_t>(a.shift | (a.flipped ? 8 : 0));
  uint8_t xb = static_cast<uint8_t>(b.shift | (b.flipped ? 8 : 0));
  return static_cast<size_t>(std::popcount(
      static_cast<unsigned>(xa ^ xb)));
}

WriteResult MinShift::Write(uint64_t segment_id, const BitVector& old,
                            const BitVector& data) {
  E2_CHECK(old.size() == data.size(), "MinShift size mismatch");
  Tag& tag = tags_[segment_id];

  Tag best_tag;
  size_t best_cost = SIZE_MAX;
  BitVector best_stored;
  size_t max_shift = std::min(kMaxShift, data.size());
  for (size_t s = 0; s < max_shift; ++s) {
    BitVector rotated = data.RotatedLeft(s);
    for (int f = 0; f < (try_flip_ ? 2 : 1); ++f) {
      BitVector candidate = (f == 1) ? rotated.Inverted() : rotated;
      Tag cand_tag{static_cast<uint8_t>(s), f == 1};
      size_t cost =
          old.HammingDistance(candidate) + TagHamming(tag, cand_tag);
      if (cost < best_cost) {
        best_cost = cost;
        best_tag = cand_tag;
        best_stored = std::move(candidate);
      }
    }
  }

  WriteResult r;
  r.stored = std::move(best_stored);
  r.data_bits_flipped = old.HammingDistance(r.stored);
  r.aux_bits_flipped = TagHamming(tag, best_tag);
  r.bits_programmed = r.data_bits_flipped + r.aux_bits_flipped;
  tag = best_tag;
  return r;
}

BitVector MinShift::Decode(uint64_t segment_id,
                           const BitVector& stored) const {
  auto it = tags_.find(segment_id);
  if (it == tags_.end()) return stored;
  Tag tag = it->second;
  BitVector out = tag.flipped ? stored.Inverted() : stored;
  if (tag.shift != 0 && out.size() > 0) {
    out = out.RotatedLeft(out.size() - (tag.shift % out.size()));
  }
  return out;
}

// ------------------------------------------------------------ Captopril --

WriteResult Captopril::Write(uint64_t segment_id, const BitVector& old,
                             const BitVector& data) {
  E2_CHECK(old.size() == data.size(), "Captopril size mismatch");
  size_t num_words = (data.size() + word_bits_ - 1) / word_bits_;
  SegState& st = state_[segment_id];
  st.flags.resize(num_words, false);
  st.word_wear.resize(num_words, 0);

  // A word is "hot" if its accumulated flips exceed the segment median.
  std::vector<uint32_t> sorted = st.word_wear;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  uint32_t median = sorted.empty() ? 0 : sorted[sorted.size() / 2];

  WriteResult r;
  r.stored = BitVector(data.size());
  for (size_t w = 0; w < num_words; ++w) {
    size_t start = w * word_bits_;
    size_t len = std::min(word_bits_, data.size() - start);
    BitVector old_word = old.Slice(start, len);
    BitVector new_word = data.Slice(start, len);
    size_t flips_id = old_word.HammingDistance(new_word);
    size_t flips_inv = len - flips_id;
    double weight =
        st.word_wear[w] > median ? (1.0 + hot_penalty_) : 1.0;
    double cost_id =
        weight * static_cast<double>(flips_id) + (st.flags[w] ? 1.0 : 0.0);
    double cost_inv = weight * static_cast<double>(flips_inv) +
                      (st.flags[w] ? 0.0 : 1.0);
    bool invert = cost_inv < cost_id;
    if (invert != st.flags[w]) {
      r.aux_bits_flipped += 1;
      st.flags[w] = invert;
    }
    BitVector stored_word = invert ? new_word.Inverted() : new_word;
    size_t flips = old_word.HammingDistance(stored_word);
    st.word_wear[w] += static_cast<uint32_t>(flips);
    r.data_bits_flipped += flips;
    r.stored.Overlay(start, stored_word);
  }
  r.bits_programmed = r.data_bits_flipped + r.aux_bits_flipped;
  return r;
}

BitVector Captopril::Decode(uint64_t segment_id,
                            const BitVector& stored) const {
  auto it = state_.find(segment_id);
  if (it == state_.end()) return stored;
  const auto& flags = it->second.flags;
  BitVector out = stored;
  for (size_t w = 0; w < flags.size(); ++w) {
    if (!flags[w]) continue;
    size_t start = w * word_bits_;
    if (start >= stored.size()) break;
    size_t len = std::min(word_bits_, stored.size() - start);
    out.Overlay(start, stored.Slice(start, len).Inverted());
  }
  return out;
}

// ------------------------------------------------------------------ FMR --

BitVector FlipMirrorRotate::Apply(const BitVector& word, uint8_t enc) {
  BitVector out = word;
  if (enc & kMirror) {
    BitVector mirrored(word.size());
    for (size_t i = 0; i < word.size(); ++i) {
      mirrored.Set(i, word.Get(word.size() - 1 - i));
    }
    out = mirrored;
  }
  if (enc & kFlip) out = out.Inverted();
  return out;
}

size_t FlipMirrorRotate::TagHamming(uint8_t a, uint8_t b) {
  return static_cast<size_t>(
      std::popcount(static_cast<unsigned>((a ^ b) & 3)));
}

nvm::WriteResult FlipMirrorRotate::Write(uint64_t segment_id,
                                         const BitVector& old,
                                         const BitVector& data) {
  E2_CHECK(old.size() == data.size(), "FMR size mismatch");
  size_t num_words = (data.size() + word_bits_ - 1) / word_bits_;
  auto& tags = tags_[segment_id];
  tags.resize(num_words, kIdentity);

  WriteResult r;
  r.stored = BitVector(data.size());
  for (size_t w = 0; w < num_words; ++w) {
    size_t start = w * word_bits_;
    size_t len = std::min(word_bits_, data.size() - start);
    BitVector old_word = old.Slice(start, len);
    BitVector new_word = data.Slice(start, len);
    uint8_t best_enc = kIdentity;
    size_t best_cost = SIZE_MAX;
    BitVector best_stored;
    for (uint8_t enc = 0; enc < 4; ++enc) {
      BitVector candidate = Apply(new_word, enc);
      size_t cost = old_word.HammingDistance(candidate) +
                    TagHamming(tags[w], enc);
      if (cost < best_cost) {
        best_cost = cost;
        best_enc = enc;
        best_stored = std::move(candidate);
      }
    }
    r.aux_bits_flipped += TagHamming(tags[w], best_enc);
    tags[w] = best_enc;
    r.data_bits_flipped += old_word.HammingDistance(best_stored);
    r.stored.Overlay(start, best_stored);
  }
  r.bits_programmed = r.data_bits_flipped + r.aux_bits_flipped;
  return r;
}

BitVector FlipMirrorRotate::Decode(uint64_t segment_id,
                                   const BitVector& stored) const {
  auto it = tags_.find(segment_id);
  if (it == tags_.end()) return stored;
  const auto& tags = it->second;
  BitVector out = stored;
  for (size_t w = 0; w < tags.size(); ++w) {
    size_t start = w * word_bits_;
    if (start >= stored.size()) break;
    size_t len = std::min(word_bits_, stored.size() - start);
    BitVector word = stored.Slice(start, len);
    // Apply is an involution for each of the four encodings (mirror and
    // complement commute and are self-inverse), so decode == re-apply.
    out.Overlay(start, Apply(word, tags[w]));
  }
  return out;
}

// -------------------------------------------------------------- Factory --

std::unique_ptr<nvm::WriteScheme> MakeScheme(const std::string& name) {
  if (name == "Naive") return std::make_unique<NaiveWrite>();
  if (name == "DCW") return std::make_unique<Dcw>();
  if (name == "FNW") return std::make_unique<FlipNWrite>();
  if (name == "MinShift") return std::make_unique<MinShift>();
  if (name == "Captopril") return std::make_unique<Captopril>();
  if (name == "FMR") return std::make_unique<FlipMirrorRotate>();
  return nullptr;
}

}  // namespace e2nvm::schemes
