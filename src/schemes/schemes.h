#ifndef E2NVM_SCHEMES_SCHEMES_H_
#define E2NVM_SCHEMES_SCHEMES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nvm/write_scheme.h"

namespace e2nvm::schemes {

/// Naive write-through: programs every cell on every write (no
/// read-before-write). Flip count equals the Hamming distance (those are
/// the cells whose value actually changes) but *all* cells are programmed,
/// which is what makes naive writes slow and hot on real PCM.
class NaiveWrite : public nvm::WriteScheme {
 public:
  std::string_view name() const override { return "Naive"; }
  nvm::WriteResult Write(uint64_t segment_id, const BitVector& old,
                         const BitVector& data) override;
  void WriteInto(uint64_t segment_id, const BitVector& old,
                 const BitVector& data, nvm::WriteResult* out) override;
  BitVector Decode(uint64_t segment_id,
                   const BitVector& stored) const override {
    return stored;
  }
  void DecodeInto(uint64_t segment_id, const BitVector& stored,
                  BitVector* out) const override {
    *out = stored;
  }
};

/// DCW — Data-Comparison Write (Yang et al. [52]): read the old content,
/// program only the differing cells. The canonical RBW baseline; its flip
/// count is exactly the Hamming distance between old and new content.
class Dcw : public nvm::WriteScheme {
 public:
  std::string_view name() const override { return "DCW"; }
  nvm::WriteResult Write(uint64_t segment_id, const BitVector& old,
                         const BitVector& data) override;
  /// Allocation-free DCW encode: `out->stored` reuses its capacity, so
  /// the store's steady-state PUT path never touches the heap here.
  void WriteInto(uint64_t segment_id, const BitVector& old,
                 const BitVector& data, nvm::WriteResult* out) override;
  BitVector Decode(uint64_t segment_id,
                   const BitVector& stored) const override {
    return stored;
  }
  void DecodeInto(uint64_t segment_id, const BitVector& stored,
                  BitVector* out) const override {
    *out = stored;
  }
};

/// FNW — Flip-N-Write (Cho & Lee [10]): per `word_bits` word, store either
/// the word or its complement (plus a one-bit flag) — whichever flips
/// fewer cells. Guarantees at most word_bits/2 + 1 flips per word.
class FlipNWrite : public nvm::WriteScheme {
 public:
  /// `word_bits` is the flag granularity; the original paper uses the
  /// memory word (32 bits).
  explicit FlipNWrite(size_t word_bits = 32) : word_bits_(word_bits) {}

  std::string_view name() const override { return "FNW"; }
  nvm::WriteResult Write(uint64_t segment_id, const BitVector& old,
                         const BitVector& data) override;
  BitVector Decode(uint64_t segment_id,
                   const BitVector& stored) const override;
  size_t AuxBitsPerSegment(size_t segment_bits) const override {
    return (segment_bits + word_bits_ - 1) / word_bits_;
  }
  void OnMigrate(uint64_t src, uint64_t dst) override {
    auto it = flags_.find(src);
    if (it != flags_.end()) {
      flags_[dst] = it->second;
    } else {
      flags_.erase(dst);
    }
  }
  void Reset() override { flags_.clear(); }

 private:
  size_t word_bits_;
  /// Per-segment flip flags (true = word stored inverted).
  std::unordered_map<uint64_t, std::vector<bool>> flags_;
};

/// MinShift (Luo et al. [37], "bit shifting and flipping"): try rotations
/// of the incoming data by 0..kMaxShift-1 bit positions (and optionally
/// the complement of each) and store the candidate that minimizes flips
/// against the current cells, recording the chosen (shift, flip) in a
/// small per-segment tag.
class MinShift : public nvm::WriteScheme {
 public:
  static constexpr size_t kMaxShift = 8;

  /// `try_flip`: also consider complemented candidates (the paper's
  /// combined shift+flip mode).
  explicit MinShift(bool try_flip = true) : try_flip_(try_flip) {}

  std::string_view name() const override {
    return try_flip_ ? "MinShift" : "MinShift-noflip";
  }
  nvm::WriteResult Write(uint64_t segment_id, const BitVector& old,
                         const BitVector& data) override;
  BitVector Decode(uint64_t segment_id,
                   const BitVector& stored) const override;
  size_t AuxBitsPerSegment(size_t segment_bits) const override {
    return 4;  // 3 shift bits + 1 flip bit.
  }
  void OnMigrate(uint64_t src, uint64_t dst) override {
    auto it = tags_.find(src);
    if (it != tags_.end()) {
      tags_[dst] = it->second;
    } else {
      tags_.erase(dst);
    }
  }
  void Reset() override { tags_.clear(); }

 private:
  struct Tag {
    uint8_t shift = 0;
    bool flipped = false;
  };
  static size_t TagHamming(Tag a, Tag b);

  bool try_flip_;
  std::unordered_map<uint64_t, Tag> tags_;
};

/// Captopril (Jalili & Sarbazi-Azad [23]): reduces the *pressure of bit
/// flips on hot cells*. Our model keeps a per-segment, per-word flip
/// counter; on a write it chooses per word between identity and
/// complement encoding, minimizing a wear-weighted flip cost in which
/// flips landing on hot words (those above the segment's median wear)
/// are penalized. Falls back to FNW behavior on a cold segment.
class Captopril : public nvm::WriteScheme {
 public:
  explicit Captopril(size_t word_bits = 32, double hot_penalty = 1.0)
      : word_bits_(word_bits), hot_penalty_(hot_penalty) {}

  std::string_view name() const override { return "Captopril"; }
  nvm::WriteResult Write(uint64_t segment_id, const BitVector& old,
                         const BitVector& data) override;
  BitVector Decode(uint64_t segment_id,
                   const BitVector& stored) const override;
  size_t AuxBitsPerSegment(size_t segment_bits) const override {
    return (segment_bits + word_bits_ - 1) / word_bits_;
  }
  void OnMigrate(uint64_t src, uint64_t dst) override {
    auto it = state_.find(src);
    if (it != state_.end()) {
      state_[dst] = it->second;
    } else {
      state_.erase(dst);
    }
  }
  void Reset() override { state_.clear(); }

 private:
  struct SegState {
    std::vector<bool> flags;
    std::vector<uint32_t> word_wear;
  };

  size_t word_bits_;
  double hot_penalty_;
  std::unordered_map<uint64_t, SegState> state_;
};

/// Flip-Mirror-Rotate (Palangappa & Mohanram [46]): per word, choose the
/// encoding among {identity, complement, bit-mirror, mirrored complement}
/// that flips the fewest cells, recording the choice in a 2-bit tag per
/// word. Generalizes FNW's single flip bit with cheap structural
/// transforms.
class FlipMirrorRotate : public nvm::WriteScheme {
 public:
  explicit FlipMirrorRotate(size_t word_bits = 16)
      : word_bits_(word_bits) {}

  std::string_view name() const override { return "FMR"; }
  nvm::WriteResult Write(uint64_t segment_id, const BitVector& old,
                         const BitVector& data) override;
  BitVector Decode(uint64_t segment_id,
                   const BitVector& stored) const override;
  size_t AuxBitsPerSegment(size_t segment_bits) const override {
    return 2 * ((segment_bits + word_bits_ - 1) / word_bits_);
  }
  void OnMigrate(uint64_t src, uint64_t dst) override {
    auto it = tags_.find(src);
    if (it != tags_.end()) {
      tags_[dst] = it->second;
    } else {
      tags_.erase(dst);
    }
  }
  void Reset() override { tags_.clear(); }

 private:
  /// Encodings, also the tag values: bit0 = complement, bit1 = mirror.
  enum Encoding : uint8_t {
    kIdentity = 0,
    kFlip = 1,
    kMirror = 2,
    kMirrorFlip = 3,
  };
  static BitVector Apply(const BitVector& word, uint8_t enc);
  static size_t TagHamming(uint8_t a, uint8_t b);

  size_t word_bits_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> tags_;
};

/// Factory for the baseline write schemes.
/// Names: "Naive", "DCW", "FNW", "MinShift", "Captopril", "FMR".
std::unique_ptr<nvm::WriteScheme> MakeScheme(const std::string& name);

}  // namespace e2nvm::schemes

#endif  // E2NVM_SCHEMES_SCHEMES_H_
