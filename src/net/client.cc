#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace e2nvm::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

Status ToStatus(WireStatus ws) {
  switch (ws) {
    case WireStatus::kOk:
      return Status::Ok();
    case WireStatus::kNotFound:
      return Status::NotFound("key not found");
    case WireStatus::kBadFrame:
      return Status::InvalidArgument("server rejected frame");
    case WireStatus::kError:
      break;
  }
  return Status::Internal("server error");
}
}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(
    uint16_t port, const ClientConfig& config) {
  std::unique_ptr<Client> client(new Client(config));
  client->fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (client->fd_ < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(client->fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::Internal("connect() failed");
  }
  int one = 1;
  ::setsockopt(client->fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

uint32_t Client::QueuePut(uint64_t key, const BitVector& value) {
  const uint32_t seq = next_seq_++;
  EncodePutRequest(&out_, seq, key, value);
  return seq;
}

uint32_t Client::QueueGet(uint64_t key) {
  const uint32_t seq = next_seq_++;
  EncodeKeyRequest(&out_, Op::kGet, seq, key);
  return seq;
}

uint32_t Client::QueueDelete(uint64_t key) {
  const uint32_t seq = next_seq_++;
  EncodeKeyRequest(&out_, Op::kDelete, seq, key);
  return seq;
}

uint32_t Client::QueueMultiPut(const std::pair<uint64_t, BitVector>* kvs,
                               size_t n) {
  const uint32_t seq = next_seq_++;
  EncodeMultiPutRequest(&out_, seq, kvs, n);
  return seq;
}

uint32_t Client::QueueStats() {
  const uint32_t seq = next_seq_++;
  EncodeStatsRequest(&out_, seq);
  return seq;
}

Status Client::Flush() {
  while (!out_.empty()) {
    ssize_t n = ::send(fd_, out_.data(), out_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      out_.Consume(static_cast<size_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Internal("send() failed");
  }
  return Status::Ok();
}

Status Client::SendRaw(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w > 0) {
      p += w;
      n -= static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Internal("send() failed");
  }
  return Status::Ok();
}

StatusOr<Response> Client::ReadResponse() {
  in_.Consume(pending_consume_);
  pending_consume_ = 0;
  while (true) {
    Response r;
    size_t frame_bytes = 0;
    Decoded d = DecodeResponse(in_.data(), in_.size(),
                               config_.max_frame_bytes, &r, &frame_bytes);
    if (d == Decoded::kFrame) {
      // kBadFrame responses echo an unverified request header and are
      // only provoked by frames injected outside Queue*() (TCP protects
      // the stream otherwise), so they don't consume an expected seq;
      // everything else must arrive in issue order.
      if (r.status != WireStatus::kBadFrame &&
          r.seq != next_expected_seq_++) {
        return Status::DataLoss("response out of order");
      }
      pending_consume_ = frame_bytes;
      return r;
    }
    if (d != Decoded::kNeedMore) {
      return Status::DataLoss("corrupt response stream");
    }
    uint8_t* dst = in_.Reserve(kReadChunk);
    ssize_t n = ::recv(fd_, dst, kReadChunk, 0);
    if (n > 0) {
      in_.Commit(static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Internal("server closed connection");
    if (errno == EINTR) continue;
    return Status::Internal("recv() failed");
  }
}

bool Client::HasBufferedResponse() const {
  const size_t off = pending_consume_;
  if (in_.size() < off + kLenBytes) return false;
  uint32_t len;
  std::memcpy(&len, in_.data() + off, sizeof(len));
  return in_.size() - off >= kLenBytes + len;
}

StatusOr<bool> Client::Fill(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int p = ::poll(&pfd, 1, timeout_ms);
  if (p < 0) {
    if (errno == EINTR) return false;
    return Status::Internal("poll() failed");
  }
  if (p == 0 || (pfd.revents & POLLIN) == 0) return false;
  uint8_t* dst = in_.Reserve(kReadChunk);
  ssize_t n = ::recv(fd_, dst, kReadChunk, 0);
  if (n > 0) {
    in_.Commit(static_cast<size_t>(n));
    return true;
  }
  if (n == 0) return Status::Internal("server closed connection");
  if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return false;
  return Status::Internal("recv() failed");
}

Status Client::Put(uint64_t key, const BitVector& value) {
  QueuePut(key, value);
  E2_RETURN_IF_ERROR(Flush());
  E2_ASSIGN_OR_RETURN(Response r, ReadResponse());
  return ToStatus(r.status);
}

StatusOr<BitVector> Client::Get(uint64_t key) {
  QueueGet(key);
  E2_RETURN_IF_ERROR(Flush());
  E2_ASSIGN_OR_RETURN(Response r, ReadResponse());
  E2_RETURN_IF_ERROR(ToStatus(r.status));
  BitVector value;
  value.AssignFromWords(r.value.words, r.value.bits);
  return value;
}

Status Client::Delete(uint64_t key) {
  QueueDelete(key);
  E2_RETURN_IF_ERROR(Flush());
  E2_ASSIGN_OR_RETURN(Response r, ReadResponse());
  return ToStatus(r.status);
}

StatusOr<WireStats> Client::Stats() {
  QueueStats();
  E2_RETURN_IF_ERROR(Flush());
  E2_ASSIGN_OR_RETURN(Response r, ReadResponse());
  E2_RETURN_IF_ERROR(ToStatus(r.status));
  return r.stats;
}

}  // namespace e2nvm::net
