#include "net/protocol.h"

#include "common/kernels.h"

namespace e2nvm::net {

namespace {

// Little-endian field accessors. The codec (like the SIMD kernel layer)
// targets little-endian hosts, so these compile to plain loads/stores;
// memcpy keeps them alignment-safe.
void Store16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
void Store32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void Store64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Reserves one whole frame (len field + `payload_len` payload bytes +
/// CRC) on `out` and writes the length field; returns the payload
/// pointer. The caller fills the payload, then SealFrame stamps the CRC
/// and commits.
uint8_t* BeginFrame(ByteRing* out, size_t payload_len) {
  uint8_t* p = out->Reserve(kLenBytes + payload_len + kCrcBytes);
  Store32(p, static_cast<uint32_t>(payload_len + kCrcBytes));
  return p + kLenBytes;
}

void SealFrame(ByteRing* out, uint8_t* payload, size_t payload_len) {
  Store32(payload + payload_len, Crc32c(payload, payload_len));
  out->Commit(kLenBytes + payload_len + kCrcBytes);
}

void FillHeader(uint8_t* payload, Op op, uint8_t status, uint32_t seq) {
  payload[0] = static_cast<uint8_t>(op);
  payload[1] = status;
  Store16(payload + 2, 0);
  Store32(payload + 4, seq);
}

/// Writes one key/value entry (the PUT body and each MULTI_PUT entry)
/// at `p`; returns the bytes written.
size_t FillEntry(uint8_t* p, uint64_t key, const BitVector& value) {
  Store64(p, key);
  Store32(p + 8, static_cast<uint32_t>(value.size()));
  const size_t vbytes = ValueWireBytes(value.size());
  if (vbytes > 0) std::memcpy(p + 12, value.words().data(), vbytes);
  return 12 + vbytes;
}

/// Shared framing walk of DecodeRequest/DecodeResponse: validates the
/// length prefix and the CRC, fills op/status/seq from the header, and
/// returns the body view. `*result` is kFrame once the body may be
/// parsed.
Decoded DecodeFrame(const uint8_t* data, size_t size, size_t max_frame,
                    size_t* frame_bytes, Op* op, uint8_t* status,
                    uint32_t* seq, const uint8_t** body,
                    size_t* body_len) {
  if (size < kLenBytes) return Decoded::kNeedMore;
  const uint32_t len = Load32(data);
  if (len < kHeaderBytes + kCrcBytes || len > max_frame) {
    // The declared size is not a frame this protocol could have
    // produced: either the stream is corrupt at the framing layer or the
    // peer exceeded the frame limit. Alignment is lost; close.
    return Decoded::kFatal;
  }
  if (size < kLenBytes + len) return Decoded::kNeedMore;
  *frame_bytes = kLenBytes + len;

  const uint8_t* payload = data + kLenBytes;
  const size_t payload_len = len - kCrcBytes;
  // Best-effort header echo for error responses — set before the CRC
  // verdict, trusted only after it.
  *op = static_cast<Op>(payload[0]);
  *status = payload[1];
  *seq = Load32(payload + 4);
  if (Crc32c(payload, payload_len) != Load32(payload + payload_len)) {
    return Decoded::kBadFrame;
  }
  *body = payload + kHeaderBytes;
  *body_len = payload_len - kHeaderBytes;
  return Decoded::kFrame;
}

/// Validates and views one wire value at `p` within `remaining` bytes.
/// Returns the entry size, or 0 when it does not fit.
size_t ViewEntry(const uint8_t* p, size_t remaining, uint64_t* key,
                 WireValue* value) {
  if (remaining < 12) return 0;
  const uint32_t bits = Load32(p + 8);
  const size_t entry = 12 + ValueWireBytes(bits);
  if (remaining < entry) return 0;
  *key = Load64(p);
  value->bits = bits;
  value->words = p + 12;
  return entry;
}

}  // namespace

Decoded DecodeRequest(const uint8_t* data, size_t size, size_t max_frame,
                      Request* out, size_t* frame_bytes) {
  uint8_t status_ignored = 0;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  Decoded d = DecodeFrame(data, size, max_frame, frame_bytes, &out->op,
                          &status_ignored, &out->seq, &body, &body_len);
  if (d != Decoded::kFrame) return d;

  switch (out->op) {
    case Op::kPut: {
      const size_t entry = ViewEntry(body, body_len, &out->key, &out->value);
      return entry == body_len && entry != 0 ? Decoded::kFrame
                                             : Decoded::kBadFrame;
    }
    case Op::kGet:
    case Op::kDelete:
      if (body_len != 8) return Decoded::kBadFrame;
      out->key = Load64(body);
      return Decoded::kFrame;
    case Op::kMultiPut: {
      if (body_len < 4) return Decoded::kBadFrame;
      out->entry_count = Load32(body);
      out->entries = body + 4;
      out->entries_end = body + body_len;
      // Walk the declared entries once so NextEntry can iterate without
      // bounds checks later; the walk must consume the body exactly.
      const uint8_t* p = out->entries;
      size_t remaining = body_len - 4;
      for (uint32_t i = 0; i < out->entry_count; ++i) {
        uint64_t key;
        WireValue v;
        const size_t entry = ViewEntry(p, remaining, &key, &v);
        if (entry == 0) return Decoded::kBadFrame;
        p += entry;
        remaining -= entry;
      }
      return remaining == 0 ? Decoded::kFrame : Decoded::kBadFrame;
    }
    case Op::kStats:
      return body_len == 0 ? Decoded::kFrame : Decoded::kBadFrame;
  }
  return Decoded::kBadFrame;  // Unknown op byte.
}

Decoded DecodeResponse(const uint8_t* data, size_t size, size_t max_frame,
                       Response* out, size_t* frame_bytes) {
  uint8_t status = 0;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  Decoded d = DecodeFrame(data, size, max_frame, frame_bytes, &out->op,
                          &status, &out->seq, &body, &body_len);
  if (d != Decoded::kFrame) return d;
  out->status = static_cast<WireStatus>(status);

  if (out->op == Op::kGet && out->status == WireStatus::kOk) {
    // GET bodies have no key on the response side: just bits + words.
    if (body_len < 4) return Decoded::kBadFrame;
    const uint32_t bits = Load32(body);
    if (body_len != 4 + ValueWireBytes(bits)) return Decoded::kBadFrame;
    out->value.bits = bits;
    out->value.words = body + 4;
    return Decoded::kFrame;
  }
  if (out->op == Op::kStats && out->status == WireStatus::kOk) {
    if (body_len != sizeof(WireStats)) return Decoded::kBadFrame;
    std::memcpy(&out->stats, body, sizeof(WireStats));
    return Decoded::kFrame;
  }
  return body_len == 0 ? Decoded::kFrame : Decoded::kBadFrame;
}

bool NextEntry(const uint8_t** cursor, const uint8_t* end, uint64_t* key,
               WireValue* value) {
  if (*cursor >= end) return false;
  *key = Load64(*cursor);
  value->bits = Load32(*cursor + 8);
  value->words = *cursor + 12;
  *cursor += 12 + ValueWireBytes(value->bits);
  return true;
}

void EncodePutRequest(ByteRing* out, uint32_t seq, uint64_t key,
                      const BitVector& value) {
  const size_t payload_len =
      kHeaderBytes + 12 + ValueWireBytes(value.size());
  uint8_t* p = BeginFrame(out, payload_len);
  FillHeader(p, Op::kPut, 0, seq);
  FillEntry(p + kHeaderBytes, key, value);
  SealFrame(out, p, payload_len);
}

void EncodeKeyRequest(ByteRing* out, Op op, uint32_t seq, uint64_t key) {
  const size_t payload_len = kHeaderBytes + 8;
  uint8_t* p = BeginFrame(out, payload_len);
  FillHeader(p, op, 0, seq);
  Store64(p + kHeaderBytes, key);
  SealFrame(out, p, payload_len);
}

void EncodeStatsRequest(ByteRing* out, uint32_t seq) {
  uint8_t* p = BeginFrame(out, kHeaderBytes);
  FillHeader(p, Op::kStats, 0, seq);
  SealFrame(out, p, kHeaderBytes);
}

void EncodeMultiPutRequest(ByteRing* out, uint32_t seq,
                           const std::pair<uint64_t, BitVector>* kvs,
                           size_t n) {
  size_t payload_len = kHeaderBytes + 4;
  for (size_t i = 0; i < n; ++i) {
    payload_len += 12 + ValueWireBytes(kvs[i].second.size());
  }
  uint8_t* p = BeginFrame(out, payload_len);
  FillHeader(p, Op::kMultiPut, 0, seq);
  Store32(p + kHeaderBytes, static_cast<uint32_t>(n));
  uint8_t* cursor = p + kHeaderBytes + 4;
  for (size_t i = 0; i < n; ++i) {
    cursor += FillEntry(cursor, kvs[i].first, kvs[i].second);
  }
  SealFrame(out, p, payload_len);
}

void EncodeResponse(ByteRing* out, Op op, WireStatus status, uint32_t seq) {
  uint8_t* p = BeginFrame(out, kHeaderBytes);
  FillHeader(p, op, static_cast<uint8_t>(status), seq);
  SealFrame(out, p, kHeaderBytes);
}

void EncodeGetResponse(ByteRing* out, uint32_t seq, const BitVector& value) {
  const size_t vbytes = ValueWireBytes(value.size());
  const size_t payload_len = kHeaderBytes + 4 + vbytes;
  uint8_t* p = BeginFrame(out, payload_len);
  FillHeader(p, Op::kGet, static_cast<uint8_t>(WireStatus::kOk), seq);
  Store32(p + kHeaderBytes, static_cast<uint32_t>(value.size()));
  if (vbytes > 0) {
    std::memcpy(p + kHeaderBytes + 4, value.words().data(), vbytes);
  }
  SealFrame(out, p, payload_len);
}

void EncodeStatsResponse(ByteRing* out, uint32_t seq, const WireStats& s) {
  const size_t payload_len = kHeaderBytes + sizeof(WireStats);
  uint8_t* p = BeginFrame(out, payload_len);
  FillHeader(p, Op::kStats, static_cast<uint8_t>(WireStatus::kOk), seq);
  std::memcpy(p + kHeaderBytes, &s, sizeof(WireStats));
  SealFrame(out, p, payload_len);
}

}  // namespace e2nvm::net
