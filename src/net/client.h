#ifndef E2NVM_NET_CLIENT_H_
#define E2NVM_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/byte_ring.h"
#include "common/status.h"
#include "net/protocol.h"

namespace e2nvm::net {

/// Blocking pipelining client for the net/server wire protocol.
///
/// Two usage styles:
///  - Pipelined: Queue*() encodes request frames into a local send
///    buffer (returning each request's seq), Flush() writes them in one
///    burst, and ReadResponse() returns responses strictly in request
///    order. This is how the benches drive pipeline depth N: queue N,
///    flush once, read N.
///  - Synchronous: Put/Get/Delete/Stats wrap queue+flush+read for
///    depth-1 convenience.
///
/// Thread-compatible: one owner, no internal synchronization. The
/// socket is blocking with TCP_NODELAY; a Flush deeper than the kernel
/// buffers simply blocks until the server drains (servers respond as
/// they read, so this cannot deadlock at sane pipeline depths).
struct ClientConfig {
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class Client {
 public:
  /// Connects to 127.0.0.1:`port`.
  static StatusOr<std::unique_ptr<Client>> Connect(
      uint16_t port, const ClientConfig& config = ClientConfig());
  ~Client();

  // --- Pipelined interface ---

  uint32_t QueuePut(uint64_t key, const BitVector& value);
  uint32_t QueueGet(uint64_t key);
  uint32_t QueueDelete(uint64_t key);
  uint32_t QueueMultiPut(const std::pair<uint64_t, BitVector>* kvs, size_t n);
  uint32_t QueueStats();

  /// Writes every queued frame to the socket.
  Status Flush();

  /// Blocks for the next in-order response. The returned views (a GET
  /// value) borrow the receive buffer and stay valid until the next
  /// ReadResponse call. Verifies the server echoes seqs in issue order
  /// (except on kBadFrame responses, whose echoed header is untrusted);
  /// a violation is kDataLoss.
  StatusOr<Response> ReadResponse();

  /// True when a complete response frame is already buffered, i.e. the
  /// next ReadResponse will not block (open-loop harness hook).
  bool HasBufferedResponse() const;

  /// Waits up to `timeout_ms` for the socket to turn readable and pulls
  /// whatever is available into the receive buffer. Returns true when
  /// new bytes arrived. Combine with HasBufferedResponse() to reap
  /// responses without committing to a blocking read.
  StatusOr<bool> Fill(int timeout_ms);

  /// Writes raw bytes straight to the socket, bypassing the codec —
  /// the fault-injection hook the malformed-frame tests use to send
  /// corrupt, truncated or torn frames.
  Status SendRaw(const void* data, size_t n);

  // --- Synchronous conveniences ---

  Status Put(uint64_t key, const BitVector& value);
  StatusOr<BitVector> Get(uint64_t key);
  Status Delete(uint64_t key);
  StatusOr<WireStats> Stats();

 private:
  explicit Client(const ClientConfig& config) : config_(config) {}

  ClientConfig config_;
  int fd_ = -1;
  ByteRing out_;
  ByteRing in_;
  uint32_t next_seq_ = 0;
  uint32_t next_expected_seq_ = 0;
  size_t pending_consume_ = 0;  // Frame bytes released on the next read.
};

}  // namespace e2nvm::net

#endif  // E2NVM_NET_CLIENT_H_
