#ifndef E2NVM_NET_SERVER_H_
#define E2NVM_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/sharded_store.h"
#include "net/protocol.h"

namespace e2nvm::net {

struct ServerConfig {
  /// Port to bind on 127.0.0.1. 0 picks an ephemeral port; read the
  /// actual one back from Server::port().
  uint16_t port = 0;

  /// Connection-worker threads. Each accepted connection is assigned
  /// (round-robin) to exactly one worker and is touched only by that
  /// worker's thread afterwards, so per-connection state needs no
  /// locking at all.
  size_t num_workers = 2;

  /// Frames declaring a larger size are a framing violation: the
  /// connection is closed (protocol.h, Decoded::kFatal).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Once a worker has served this many requests, it brackets every
  /// subsequent request-processing pass with lock-audit (and, when
  /// `alloc_probe` is set, heap-allocation) sampling, accumulating the
  /// deltas into WireStats::audit_*. The threshold exists because the
  /// first passes legitimately allocate — connection scratch (rings,
  /// shard batches, response slots) grows to its working size — and the
  /// steady-state guarantee starts after that warmup. 0 disables
  /// auditing.
  uint64_t audit_after_requests = 0;

  /// Returns the calling thread's lifetime heap-allocation count.
  /// Tests and benches hook their interposed operator-new counter in
  /// here; nullptr skips allocation auditing (lock auditing still runs).
  uint64_t (*alloc_probe)() = nullptr;
};

/// Non-blocking epoll server exposing a core::ShardedStore over the
/// net/protocol wire format (DESIGN.md §14).
///
/// Threading: one acceptor thread plus `num_workers` connection workers,
/// each with a private epoll instance (edge-triggered) and an eventfd
/// for wakeups. A connection belongs to one worker for its whole life.
///
/// Batching pipeline (the perf core): on every wakeup a worker drains a
/// connection's socket, decodes ALL complete requests, and stages each
/// PUT — single or MULTI_PUT entry — into a per-connection, per-shard
/// batch (key + value copied into a reused slot). Read-path and barrier
/// ops (GET/DELETE/STATS, and bad-frame rejections) flush the staged
/// batches first, so a pipeline observes its own writes in order; the
/// end of the processing pass flushes whatever remains. Each flush
/// submits one ShardedStore::MultiPutShard per touched shard — the
/// zero-allocation PlaceMany batch path is the network write path — and
/// then emits the deferred PUT/MULTI_PUT responses in arrival order
/// (responses are strictly in request order on the wire).
///
/// Error granularity: a PUT/MULTI_PUT response reports kError when any
/// shard batch it contributed to failed (shards are tracked in a 64-bit
/// mask, shard index mod 64), so one failing shard submission may
/// coarsen co-batched responses to kError. Store failures on this path
/// are faults (device/journal), not routine outcomes.
///
/// Steady state is allocation- and shared-lock-free: all per-request
/// scratch (rings, batch slots, pending-response list, GET decode
/// buffer) is connection- or worker-owned and reused in place, and the
/// request path crosses no lock outside the owning shard's mutex. The
/// audit_* counters in STATS make both properties observable
/// (ServerConfig::audit_after_requests).
class Server {
 public:
  /// Binds, listens and starts the acceptor + worker threads. `store`
  /// must outlive the server.
  static StatusOr<std::unique_ptr<Server>> Start(core::ShardedStore* store,
                                                 const ServerConfig& config);

  /// Stops and joins all threads, closing every connection.
  ~Server();

  uint16_t port() const { return port_; }

  /// Aggregated counters across workers — the same numbers the STATS op
  /// serves.
  WireStats Stats() const;

  /// Idempotent shutdown (also run by the destructor).
  void Stop();

 private:
  class Worker;

  Server(core::ShardedStore* store, const ServerConfig& config);

  void AcceptLoop();

  core::ShardedStore* store_;
  ServerConfig config_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int accept_epoll_fd_ = -1;
  int accept_event_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
  std::atomic<uint64_t> connections_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t next_worker_ = 0;
  std::thread acceptor_;
};

}  // namespace e2nvm::net

#endif  // E2NVM_NET_SERVER_H_
