#ifndef E2NVM_NET_PROTOCOL_H_
#define E2NVM_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

#include "common/bitvec.h"
#include "common/byte_ring.h"

namespace e2nvm::net {

/// The wire protocol of the network KV front-end (DESIGN.md §14): a
/// length-prefixed binary request/response format whose every frame is
/// CRC32C-stamped with the PR 7 integrity kernel.
///
/// Frame layout (all integers little-endian; this codec targets the
/// little-endian hosts the SIMD kernel layer targets):
///
///   u32 len | payload[len - 4] | u32 crc32c(payload)
///
/// `len` counts everything after the length field (payload + CRC), so a
/// reader needs exactly 4 bytes to learn the frame size and can skip a
/// frame whose CRC fails without losing stream alignment. Payloads open
/// with a fixed 8-byte header:
///
///   request:  u8 op  | u8 0      | u16 0 | u32 seq
///   response: u8 op  | u8 status | u16 0 | u32 seq (echoed)
///
/// Bodies by op (requests):
///   PUT:       u64 key | u32 value_bits | u64 value_words[ceil(bits/64)]
///   GET:       u64 key
///   DELETE:    u64 key
///   MULTI_PUT: u32 count | count x (u64 key | u32 value_bits | words)
///   STATS:     (empty)
/// Responses carry an empty body except GET-with-kOk (u32 value_bits |
/// words) and STATS-with-kOk (WireStats as consecutive u64s). Values
/// travel as whole 64-bit words, exactly BitVector::words() — both ends
/// memcpy, and BitVector::AssignFromWords re-masks the tail bits.
///
/// Responses are returned strictly in request order (the server
/// pipeline's contract), so `seq` is a client-side consistency check,
/// not a routing key.
enum class Op : uint8_t {
  kPut = 1,
  kGet = 2,
  kDelete = 3,
  kMultiPut = 4,
  kStats = 5,
};

/// Response status byte. kBadFrame reports a frame whose CRC or body
/// failed validation — the frame was skipped, the connection survives.
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kError = 2,
  kBadFrame = 3,
};

constexpr size_t kLenBytes = 4;
constexpr size_t kHeaderBytes = 8;
constexpr size_t kCrcBytes = 4;
/// Frames whose declared length exceeds this are a framing-protocol
/// violation: the decoder reports kFatal and the connection must close
/// (a stream that lies about frame sizes cannot be resynchronized).
constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

/// Server-side counters served by the STATS op, fixed-width so the wire
/// image is just consecutive u64s. `audit_*` expose the steady-state
/// guarantees as observable numbers: over every audited request-loop
/// pass the connection workers count their own heap allocations (via
/// ServerConfig::alloc_probe) and shard-external lock acquisitions
/// (common/lock_audit.h) — both must stay 0.
struct WireStats {
  uint64_t keys = 0;            // Live keys across all shards.
  uint64_t puts = 0;            // Single-PUT requests served.
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t multi_puts = 0;      // MULTI_PUT frames served.
  uint64_t batched_puts = 0;    // PUT entries applied via shard batches.
  uint64_t batches = 0;         // MultiPutShard submissions.
  uint64_t frames_rejected = 0; // Bad-CRC/malformed/fatal frames.
  uint64_t connections = 0;     // Accepted over the server's lifetime.
  uint64_t audit_requests = 0;  // Requests inside audited passes.
  uint64_t audit_allocs = 0;    // Heap allocations inside audited passes.
  uint64_t audit_shared_locks = 0;  // Shard-external lock acquisitions.
};
constexpr size_t kWireStatsFields = 12;
static_assert(sizeof(WireStats) == kWireStatsFields * sizeof(uint64_t),
              "WireStats must be a flat array of u64 on the wire");

/// Bytes a value of `bits` occupies on the wire (whole 64-bit words).
constexpr size_t ValueWireBytes(size_t bits) {
  return ((bits + 63) / 64) * 8;
}

/// A value field inside a decoded frame: a borrowed view into the
/// receive buffer, valid until the frame is consumed.
struct WireValue {
  const uint8_t* words = nullptr;  // ValueWireBytes(bits) bytes.
  uint32_t bits = 0;
};

/// One decoded request, viewing (not owning) the receive buffer.
struct Request {
  Op op = Op::kPut;
  uint32_t seq = 0;
  uint64_t key = 0;         // PUT / GET / DELETE.
  WireValue value;          // PUT.
  const uint8_t* entries = nullptr;  // MULTI_PUT: first entry byte.
  const uint8_t* entries_end = nullptr;
  uint32_t entry_count = 0;
};

/// One decoded response, viewing the receive buffer.
struct Response {
  Op op = Op::kPut;
  WireStatus status = WireStatus::kOk;
  uint32_t seq = 0;
  WireValue value;   // GET with kOk.
  WireStats stats;   // STATS with kOk (copied out; it is small + fixed).
};

/// Decode outcomes. kNeedMore consumes nothing; kFrame consumes
/// `*frame_bytes`; kBadFrame means the frame boundary is known (consume
/// `*frame_bytes`, answer WireStatus::kBadFrame, keep the connection);
/// kFatal means framing itself is broken (close the connection).
enum class Decoded {
  kNeedMore,
  kFrame,
  kBadFrame,
  kFatal,
};

/// Decodes the next request frame from `data[0..size)`. On kFrame the
/// out-views borrow `data`; on kBadFrame `out->op`/`out->seq` carry the
/// (unverified) header bytes so the error response can echo them.
/// MULTI_PUT bodies are fully bounds-checked here, so iterating entries
/// with NextEntry afterwards cannot fail.
Decoded DecodeRequest(const uint8_t* data, size_t size, size_t max_frame,
                      Request* out, size_t* frame_bytes);

/// Decodes the next response frame (client side).
Decoded DecodeResponse(const uint8_t* data, size_t size, size_t max_frame,
                       Response* out, size_t* frame_bytes);

/// Iterates a decoded MULTI_PUT body: advances `*cursor` (starting at
/// Request::entries) and fills one key/value view. Returns false once
/// `end` is reached.
bool NextEntry(const uint8_t** cursor, const uint8_t* end, uint64_t* key,
               WireValue* value);

// --- Encoders (append one complete frame onto a ByteRing) ---

void EncodePutRequest(ByteRing* out, uint32_t seq, uint64_t key,
                      const BitVector& value);
/// GET or DELETE (the two key-only requests).
void EncodeKeyRequest(ByteRing* out, Op op, uint32_t seq, uint64_t key);
void EncodeStatsRequest(ByteRing* out, uint32_t seq);
void EncodeMultiPutRequest(ByteRing* out, uint32_t seq,
                           const std::pair<uint64_t, BitVector>* kvs,
                           size_t n);

/// Body-less response (PUT/DELETE/MULTI_PUT results, GET misses, and
/// every error including kBadFrame).
void EncodeResponse(ByteRing* out, Op op, WireStatus status, uint32_t seq);
void EncodeGetResponse(ByteRing* out, uint32_t seq, const BitVector& value);
void EncodeStatsResponse(ByteRing* out, uint32_t seq, const WireStats& s);

}  // namespace e2nvm::net

#endif  // E2NVM_NET_PROTOCOL_H_
