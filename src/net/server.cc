#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "common/byte_ring.h"
#include "common/lock_audit.h"

namespace e2nvm::net {

namespace {

/// recv() chunk per call; also the initial working size a connection's
/// receive ring grows toward.
constexpr size_t kReadChunk = 64 * 1024;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

WireStatus ToWireStatus(const Status& s) {
  if (s.ok()) return WireStatus::kOk;
  if (s.code() == StatusCode::kNotFound) return WireStatus::kNotFound;
  return WireStatus::kError;
}

}  // namespace

/// One connection worker: a thread, an edge-triggered epoll instance,
/// an eventfd for wakeups/new-connection handoff, and the connections it
/// owns. Only the worker thread touches a connection after AddConnection
/// hands the fd over.
class Server::Worker {
 public:
  Worker(Server* server) : server_(server) {}

  ~Worker() {
    CloseFd(epoll_fd_);
    CloseFd(event_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Status::Internal("epoll_create1 failed");
    event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (event_fd_ < 0) return Status::Internal("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the eventfd.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
      return Status::Internal("epoll_ctl(eventfd) failed");
    }
    return Status::Ok();
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  /// Acceptor-side handoff: enqueue the fd and wake the worker. The
  /// inbox mutex is touched only on connection arrival, never on the
  /// request path.
  void AddConnection(int fd) {
    {
      std::lock_guard<std::mutex> g(inbox_mu_);
      inbox_.push_back(fd);
    }
    Signal();
  }

  void Signal() {
    uint64_t one = 1;
    ssize_t ignored = ::write(event_fd_, &one, sizeof(one));
    (void)ignored;
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    Signal();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Adds this worker's published counters into `s` (relaxed reads; the
  /// worker publishes at the end of every processing pass).
  void AccumulateInto(WireStats* s) const {
    s->puts += pub_puts_.load(std::memory_order_relaxed);
    s->gets += pub_gets_.load(std::memory_order_relaxed);
    s->deletes += pub_deletes_.load(std::memory_order_relaxed);
    s->multi_puts += pub_multi_puts_.load(std::memory_order_relaxed);
    s->batched_puts += pub_batched_puts_.load(std::memory_order_relaxed);
    s->batches += pub_batches_.load(std::memory_order_relaxed);
    s->frames_rejected +=
        pub_frames_rejected_.load(std::memory_order_relaxed);
    s->audit_requests += pub_audit_requests_.load(std::memory_order_relaxed);
    s->audit_allocs += pub_audit_allocs_.load(std::memory_order_relaxed);
    s->audit_shared_locks +=
        pub_audit_shared_locks_.load(std::memory_order_relaxed);
  }

 private:
  /// A staged per-shard PUT batch. `slots` is grow-only: flushing resets
  /// `used` without clear()ing, so every slot's key/BitVector (and the
  /// BitVector's word storage) is reused in place on the next pass.
  struct ShardBatch {
    std::vector<std::pair<uint64_t, BitVector>> slots;
    size_t used = 0;
  };

  /// A deferred PUT/MULTI_PUT response awaiting its batch flush.
  /// Trivially copyable, so the pending vector's clear() keeps capacity
  /// and frees nothing.
  struct PendingResponse {
    Op op;
    uint32_t seq;
    uint64_t shard_mask;  // Bit (s % 64) per shard staged into.
  };

  struct Conn {
    int fd = -1;
    ByteRing in;
    ByteRing out;
    std::vector<ShardBatch> batches;  // One per shard.
    std::vector<PendingResponse> pending;
    bool want_write = false;
  };

  void Run() {
    epoll_event events[64];
    while (!stop_.load(std::memory_order_acquire)) {
      int n = ::epoll_wait(epoll_fd_, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        if (events[i].data.ptr == nullptr) {
          uint64_t junk;
          while (::read(event_fd_, &junk, sizeof(junk)) > 0) {
          }
          DrainInbox();
          continue;
        }
        // epoll coalesces a ready fd into one epoll_event per wait, so
        // `c` cannot have been freed by an earlier event in this batch.
        Conn* c = static_cast<Conn*>(events[i].data.ptr);
        bool alive = true;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          alive = false;
        }
        if (alive && (events[i].events & EPOLLOUT)) alive = FlushSocket(c);
        if (alive && (events[i].events & EPOLLIN)) alive = HandleReadable(c);
        if (!alive) CloseConn(c);
      }
    }
    // Orderly teardown on the owner thread.
    for (auto& [fd, conn] : conns_) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      CloseFd(fd);
    }
    conns_.clear();
  }

  void DrainInbox() {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> g(inbox_mu_);
      fds.swap(inbox_);
    }
    for (int fd : fds) {
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->batches.resize(server_->store_->num_shards());
      Conn* c = conn.get();
      conns_.emplace(fd, std::move(conn));
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET;
      ev.data.ptr = c;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        conns_.erase(fd);
        CloseFd(fd);
        continue;
      }
      // Data may have arrived before the ADD; process once eagerly
      // rather than relying on the registration edge.
      if (!HandleReadable(c)) CloseConn(c);
    }
  }

  /// One full processing pass for a readable connection: drain the
  /// socket, decode + serve every complete request, flush batches and
  /// the response buffer. This pass is the audited window — in steady
  /// state it performs zero heap allocations and acquires no lock
  /// outside the owning shards' mutexes. Returns false when the
  /// connection must close.
  bool HandleReadable(Conn* c) {
    const ServerConfig& cfg = server_->config_;
    const bool audit = cfg.audit_after_requests > 0 &&
                       requests_served_ >= cfg.audit_after_requests;
    const uint64_t locks0 = audit ? debug::SharedLockAcquisitions() : 0;
    const uint64_t allocs0 =
        audit && cfg.alloc_probe != nullptr ? cfg.alloc_probe() : 0;
    const uint64_t served0 = requests_served_;

    bool alive = true;
    while (true) {
      uint8_t* dst = c->in.Reserve(kReadChunk);
      ssize_t n = ::recv(c->fd, dst, kReadChunk, 0);
      if (n > 0) {
        c->in.Commit(static_cast<size_t>(n));
        // A short read means the socket is drained; skip the recv that
        // would just return EAGAIN. Safe under EPOLLET: data arriving
        // after this read raises a fresh edge.
        if (static_cast<size_t>(n) < kReadChunk) break;
        continue;
      }
      if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
        if (n < 0 && errno == EINTR) continue;
        alive = false;
      }
      break;
    }
    if (alive) alive = ProcessInput(c);
    if (alive) alive = FlushSocket(c);

    if (audit) {
      audit_requests_ += requests_served_ - served0;
      audit_shared_locks_ += debug::SharedLockAcquisitions() - locks0;
      if (cfg.alloc_probe != nullptr) {
        audit_allocs_ += cfg.alloc_probe() - allocs0;
      }
    }
    PublishCounters();
    return alive;
  }

  /// Decodes and serves every complete request buffered on `c`.
  bool ProcessInput(Conn* c) {
    while (true) {
      Request req;
      size_t frame_bytes = 0;
      Decoded d =
          DecodeRequest(c->in.data(), c->in.size(),
                        server_->config_.max_frame_bytes, &req, &frame_bytes);
      if (d == Decoded::kNeedMore) break;
      if (d == Decoded::kFatal) {
        ++frames_rejected_;
        return false;
      }
      if (d == Decoded::kBadFrame) {
        ++frames_rejected_;
        // Keep response order: settle deferred responses, then reject.
        FlushBatches(c);
        EncodeResponse(&c->out, req.op, WireStatus::kBadFrame, req.seq);
        c->in.Consume(frame_bytes);
        continue;
      }
      HandleFrame(c, req);
      // Staged values were copied out of the ring by HandleFrame, so the
      // frame can be released now.
      c->in.Consume(frame_bytes);
      ++requests_served_;
    }
    // End-of-pass barrier: answer everything decoded this pass instead
    // of waiting for more input.
    FlushBatches(c);
    return true;
  }

  void HandleFrame(Conn* c, const Request& req) {
    switch (req.op) {
      case Op::kPut: {
        const uint64_t mask = StagePut(c, req.key, req.value);
        c->pending.push_back({Op::kPut, req.seq, mask});
        ++puts_;
        return;
      }
      case Op::kMultiPut: {
        uint64_t mask = 0;
        const uint8_t* cursor = req.entries;
        uint64_t key;
        WireValue value;
        while (NextEntry(&cursor, req.entries_end, &key, &value)) {
          mask |= StagePut(c, key, value);
        }
        c->pending.push_back({Op::kMultiPut, req.seq, mask});
        ++multi_puts_;
        return;
      }
      case Op::kGet: {
        FlushBatches(c);  // Read-your-writes within the pipeline.
        Status s = server_->store_->GetInto(req.key, &get_scratch_);
        if (s.ok()) {
          EncodeGetResponse(&c->out, req.seq, get_scratch_);
        } else {
          EncodeResponse(&c->out, Op::kGet, ToWireStatus(s), req.seq);
        }
        ++gets_;
        return;
      }
      case Op::kDelete: {
        FlushBatches(c);
        Status s = server_->store_->Delete(req.key);
        EncodeResponse(&c->out, Op::kDelete, ToWireStatus(s), req.seq);
        ++deletes_;
        return;
      }
      case Op::kStats: {
        FlushBatches(c);
        PublishCounters();  // Include this pass's own counts.
        EncodeStatsResponse(&c->out, req.seq, server_->Stats());
        return;
      }
    }
    // Unknown ops never reach here: DecodeRequest rejects them.
  }

  /// Copies one PUT into its shard's staged batch; returns the shard's
  /// mask bit. Slot reuse (AssignFromWords into an existing BitVector)
  /// makes this allocation-free once slots have grown to working size.
  uint64_t StagePut(Conn* c, uint64_t key, const WireValue& value) {
    const size_t s = server_->store_->ShardOf(key);
    ShardBatch& b = c->batches[s];
    if (b.used == b.slots.size()) b.slots.emplace_back();
    auto& slot = b.slots[b.used];
    slot.first = key;
    slot.second.AssignFromWords(value.words, value.bits);
    ++b.used;
    return uint64_t{1} << (s % 64);
  }

  /// Submits every staged shard batch through MultiPutShard, then emits
  /// the deferred PUT/MULTI_PUT responses in arrival order.
  void FlushBatches(Conn* c) {
    if (c->pending.empty()) return;  // Nothing staged implies nothing pending.
    uint64_t failed_mask = 0;
    for (size_t s = 0; s < c->batches.size(); ++s) {
      ShardBatch& b = c->batches[s];
      if (b.used == 0) continue;
      Status st = server_->store_->MultiPutShard(s, b.slots.data(), b.used);
      batched_puts_ += b.used;
      ++batches_;
      b.used = 0;
      if (!st.ok()) failed_mask |= uint64_t{1} << (s % 64);
    }
    for (const PendingResponse& p : c->pending) {
      const WireStatus ws = (p.shard_mask & failed_mask) != 0
                                ? WireStatus::kError
                                : WireStatus::kOk;
      EncodeResponse(&c->out, p.op, ws, p.seq);
    }
    c->pending.clear();
  }

  /// Writes the response buffer until drained or EAGAIN; arms EPOLLOUT
  /// exactly while unsent bytes remain. Returns false on a dead socket.
  bool FlushSocket(Conn* c) {
    while (!c->out.empty()) {
      ssize_t n = ::send(c->fd, c->out.data(), c->out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c->out.Consume(static_cast<size_t>(n));
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    const bool want_write = !c->out.empty();
    if (want_write != c->want_write) {
      c->want_write = want_write;
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET | (want_write ? EPOLLOUT : 0u);
      ev.data.ptr = c;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev) != 0) {
        return false;
      }
    }
    return true;
  }

  void CloseConn(Conn* c) {
    const int fd = c->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    CloseFd(fd);
    conns_.erase(fd);
  }

  /// Publishes the worker-local counters (plain ints, single writer)
  /// into the relaxed atomics Stats() reads cross-thread.
  void PublishCounters() {
    pub_puts_.store(puts_, std::memory_order_relaxed);
    pub_gets_.store(gets_, std::memory_order_relaxed);
    pub_deletes_.store(deletes_, std::memory_order_relaxed);
    pub_multi_puts_.store(multi_puts_, std::memory_order_relaxed);
    pub_batched_puts_.store(batched_puts_, std::memory_order_relaxed);
    pub_batches_.store(batches_, std::memory_order_relaxed);
    pub_frames_rejected_.store(frames_rejected_, std::memory_order_relaxed);
    pub_audit_requests_.store(audit_requests_, std::memory_order_relaxed);
    pub_audit_allocs_.store(audit_allocs_, std::memory_order_relaxed);
    pub_audit_shared_locks_.store(audit_shared_locks_,
                                  std::memory_order_relaxed);
  }

  Server* server_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex inbox_mu_;
  std::vector<int> inbox_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  BitVector get_scratch_;  // Reused GET decode buffer.

  // Worker-local counters (only the worker thread writes these).
  uint64_t requests_served_ = 0;
  uint64_t puts_ = 0;
  uint64_t gets_ = 0;
  uint64_t deletes_ = 0;
  uint64_t multi_puts_ = 0;
  uint64_t batched_puts_ = 0;
  uint64_t batches_ = 0;
  uint64_t frames_rejected_ = 0;
  uint64_t audit_requests_ = 0;
  uint64_t audit_allocs_ = 0;
  uint64_t audit_shared_locks_ = 0;

  // Published images of the counters above (relaxed cross-thread reads).
  std::atomic<uint64_t> pub_puts_{0};
  std::atomic<uint64_t> pub_gets_{0};
  std::atomic<uint64_t> pub_deletes_{0};
  std::atomic<uint64_t> pub_multi_puts_{0};
  std::atomic<uint64_t> pub_batched_puts_{0};
  std::atomic<uint64_t> pub_batches_{0};
  std::atomic<uint64_t> pub_frames_rejected_{0};
  std::atomic<uint64_t> pub_audit_requests_{0};
  std::atomic<uint64_t> pub_audit_allocs_{0};
  std::atomic<uint64_t> pub_audit_shared_locks_{0};
};

Server::Server(core::ShardedStore* store, const ServerConfig& config)
    : store_(store), config_(config) {
  if (config_.num_workers == 0) config_.num_workers = 1;
}

StatusOr<std::unique_ptr<Server>> Server::Start(core::ShardedStore* store,
                                                const ServerConfig& config) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  std::unique_ptr<Server> server(new Server(store, config));

  server->listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (server->listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind() failed");
  }
  if (::listen(server->listen_fd_, 128) != 0) {
    return Status::Internal("listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Status::Internal("getsockname() failed");
  }
  server->port_ = ntohs(addr.sin_port);

  server->accept_epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  server->accept_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (server->accept_epoll_fd_ < 0 || server->accept_event_fd_ < 0) {
    return Status::Internal("acceptor epoll/eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = server->listen_fd_;
  if (::epoll_ctl(server->accept_epoll_fd_, EPOLL_CTL_ADD, server->listen_fd_,
                  &ev) != 0) {
    return Status::Internal("epoll_ctl(listen) failed");
  }
  ev.data.fd = server->accept_event_fd_;
  if (::epoll_ctl(server->accept_epoll_fd_, EPOLL_CTL_ADD,
                  server->accept_event_fd_, &ev) != 0) {
    return Status::Internal("epoll_ctl(accept eventfd) failed");
  }

  for (size_t i = 0; i < server->config_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>(server.get());
    E2_RETURN_IF_ERROR(worker->Init());
    server->workers_.push_back(std::move(worker));
  }
  for (auto& worker : server->workers_) worker->StartThread();
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  if (accept_event_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = ::write(accept_event_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) worker->RequestStop();
  for (auto& worker : workers_) worker->Join();
  CloseFd(listen_fd_);
  CloseFd(accept_epoll_fd_);
  CloseFd(accept_event_fd_);
  listen_fd_ = accept_epoll_fd_ = accept_event_fd_ = -1;
}

WireStats Server::Stats() const {
  WireStats s;
  s.keys = store_->size();
  s.connections = connections_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) worker->AccumulateInto(&s);
  return s;
}

void Server::AcceptLoop() {
  epoll_event events[8];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(accept_epoll_fd_, events, 8, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == accept_event_fd_) {
        uint64_t junk;
        while (::read(accept_event_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;  // Stop flag re-checked by the outer loop.
      }
      while (true) {
        int fd = ::accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN: accepted everything pending.
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        connections_.fetch_add(1, std::memory_order_relaxed);
        workers_[next_worker_]->AddConnection(fd);
        next_worker_ = (next_worker_ + 1) % workers_.size();
      }
    }
  }
}

}  // namespace e2nvm::net
