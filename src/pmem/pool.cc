#include "pmem/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/kernels.h"
#include "pmem/tx.h"

namespace e2nvm::pmem {

Pool::~Pool() {
  if (!closed_) Close();
  if (base_ != nullptr) {
    munmap(base_, size_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::unique_ptr<Pool>> Pool::Create(const std::string& path,
                                             const std::string& layout,
                                             size_t size) {
  if (size < kHeaderBytes + TxLog::kLogBytes + 4096) {
    return Status::InvalidArgument("pool size too small");
  }
  if (layout.size() >= sizeof(Header::layout)) {
    return Status::InvalidArgument("layout name too long");
  }
  struct stat st;
  if (stat(path.c_str(), &st) == 0) {
    return Status::AlreadyExists("pool file exists: " + path);
  }
  std::unique_ptr<Pool> pool(new Pool());
  E2_RETURN_IF_ERROR(pool->MapFile(path, size, /*create=*/true));
  pool->InitHeader(layout, size);
  return pool;
}

StatusOr<std::unique_ptr<Pool>> Pool::Open(const std::string& path,
                                           const std::string& layout) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    return Status::NotFound("pool file not found: " + path);
  }
  std::unique_ptr<Pool> pool(new Pool());
  E2_RETURN_IF_ERROR(
      pool->MapFile(path, static_cast<size_t>(st.st_size), /*create=*/false));
  E2_RETURN_IF_ERROR(pool->ValidateHeader(layout));
  pool->layout_ = layout;
  E2_RETURN_IF_ERROR(pool->RecoverAndMarkOpen());
  return pool;
}

StatusOr<std::unique_ptr<Pool>> Pool::CreateAnonymous(
    const std::string& layout, size_t size) {
  if (size < kHeaderBytes + TxLog::kLogBytes + 4096) {
    return Status::InvalidArgument("pool size too small");
  }
  if (layout.size() >= sizeof(Header::layout)) {
    return Status::InvalidArgument("layout name too long");
  }
  std::unique_ptr<Pool> pool(new Pool());
  void* mem = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return Status::ResourceExhausted("mmap failed for anonymous pool");
  }
  pool->base_ = mem;
  pool->size_ = size;
  pool->anonymous_ = true;
  pool->InitHeader(layout, size);
  return pool;
}

StatusOr<std::unique_ptr<Pool>> Pool::OpenFromImage(
    const std::vector<uint8_t>& image, const std::string& layout) {
  if (image.size() < kHeaderBytes + TxLog::kLogBytes) {
    return Status::InvalidArgument("image too small for a pool");
  }
  std::unique_ptr<Pool> pool(new Pool());
  void* mem = mmap(nullptr, image.size(), PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return Status::ResourceExhausted("mmap failed for image pool");
  }
  std::memcpy(mem, image.data(), image.size());
  pool->base_ = mem;
  pool->size_ = image.size();
  pool->anonymous_ = true;
  E2_RETURN_IF_ERROR(pool->ValidateHeader(layout));
  pool->layout_ = layout;
  // A crash image never saw Close(), so this runs recovery; an image
  // snapshotted after Close() reopens clean like a file would.
  E2_RETURN_IF_ERROR(pool->RecoverAndMarkOpen());
  return pool;
}

Status Pool::MapFile(const std::string& path, size_t size, bool create) {
  int flags = create ? (O_RDWR | O_CREAT | O_EXCL) : O_RDWR;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::Internal("open failed for pool file: " + path);
  }
  if (create && ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    return Status::Internal("ftruncate failed for pool file");
  }
  void* mem =
      mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mem == MAP_FAILED) {
    ::close(fd);
    return Status::ResourceExhausted("mmap failed for pool file");
  }
  base_ = mem;
  size_ = size;
  fd_ = fd;
  return Status::Ok();
}

void Pool::InitHeader(const std::string& layout, size_t size) {
  layout_ = layout;
  auto* h = header();
  std::memset(h, 0, sizeof(Header));
  h->magic = Header::kMagic;
  h->version = kVersion;
  std::strncpy(h->layout, layout.c_str(), sizeof(h->layout) - 1);
  h->pool_size = size;
  h->root = kNullOffset;
  h->clean_shutdown = 0;
  h->tx_log = kHeaderBytes;
  h->heap_state = kHeaderBytes + TxLog::kLogBytes;
  TxLog::InitAt(*this, h->tx_log);
  StampHeaderCrc();
  Persist(0, sizeof(Header));
}

void Pool::StampHeaderCrc() {
  auto* h = header();
  h->header_crc = Crc32c(h, offsetof(Header, header_crc));
}

Status Pool::ValidateHeader(const std::string& layout) const {
  const auto* h = header();
  if (h->magic != Header::kMagic) {
    return Status::DataLoss("bad pool magic");
  }
  if (h->version != kVersion) {
    return Status::FailedPrecondition("unsupported pool version");
  }
  if (h->header_crc != Crc32c(h, offsetof(Header, header_crc))) {
    return Status::DataLoss("pool header checksum mismatch");
  }
  if (h->pool_size != size_) {
    return Status::DataLoss("pool size mismatch with file size");
  }
  if (layout != h->layout) {
    return Status::InvalidArgument("layout mismatch: pool has '" +
                                   std::string(h->layout) + "'");
  }
  return Status::Ok();
}

Status Pool::RecoverAndMarkOpen() {
  TxLog log(this, header()->tx_log);
  if (header()->clean_shutdown == 1) {
    // A clean mark promises the log went idle before shutdown; an active
    // transaction under it means the header and log disagree — refuse to
    // guess which one to trust.
    if (log.active()) {
      return Status::DataLoss(
          "pool marked cleanly shut down but its tx log is active");
    }
    recovered_ = false;
  } else {
    log.Recover();
    recovered_ = true;
  }
  header()->clean_shutdown = 0;
  StampHeaderCrc();
  Persist(0, sizeof(Header));
  return Status::Ok();
}

void Pool::RunRecovery() {
  TxLog log(this, header()->tx_log);
  log.Recover();
}

void Pool::Close() {
  if (closed_ || base_ == nullptr) return;
  header()->clean_shutdown = 1;
  StampHeaderCrc();
  Persist(0, sizeof(Header));
  if (!anonymous_ && fd_ >= 0) {
    msync(base_, size_, MS_SYNC);
  }
  closed_ = true;
}

void Pool::set_root(PoolOffset off) {
  header()->root = off;
  StampHeaderCrc();
  Persist(0, sizeof(Header));
}

void Pool::Persist(PoolOffset off, size_t len) {
  flush_tracker_.FlushRange(Direct(off), len);
  flush_tracker_.Fence();
  if (crash_point_ != nullptr) crash_point_->OnPersist(base_, size_);
}

}  // namespace e2nvm::pmem
