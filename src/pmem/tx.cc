#include "pmem/tx.h"

#include <cstring>
#include <vector>

namespace e2nvm::pmem {

namespace {
constexpr size_t Align8(size_t n) { return (n + 7) & ~size_t{7}; }
}  // namespace

void TxLog::InitAt(Pool& pool, PoolOffset off) {
  auto* h = pool.As<LogHeader>(off);
  h->state = kIdle;
  h->num_entries = 0;
  h->bytes_used = sizeof(LogHeader);
  pool.Persist(off, sizeof(LogHeader));
}

Status TxLog::Begin() {
  if (hdr()->state == kActive) {
    return Status::FailedPrecondition("transaction already active");
  }
  hdr()->state = kActive;
  hdr()->num_entries = 0;
  hdr()->bytes_used = sizeof(LogHeader);
  pool_->Persist(log_off_, sizeof(LogHeader));
  return Status::Ok();
}

Status TxLog::Snapshot(PoolOffset off, size_t len) {
  if (hdr()->state != kActive) {
    return Status::FailedPrecondition("snapshot outside a transaction");
  }
  size_t need = sizeof(EntryHeader) + Align8(len);
  if (hdr()->bytes_used + need > kLogBytes) {
    return Status::ResourceExhausted("tx undo log full");
  }
  PoolOffset entry_off = log_off_ + hdr()->bytes_used;
  auto* eh = pool_->As<EntryHeader>(entry_off);
  eh->offset = off;
  eh->len = len;
  std::memcpy(pool_->Direct(entry_off + sizeof(EntryHeader)),
              pool_->Direct(off), len);
  // Persist the image before publishing it via the header update: the
  // entry must be durable before a crash can observe num_entries+1.
  pool_->Persist(entry_off, sizeof(EntryHeader) + len);
  hdr()->bytes_used += need;
  hdr()->num_entries += 1;
  pool_->Persist(log_off_, sizeof(LogHeader));
  return Status::Ok();
}

void TxLog::Commit() {
  if (hdr()->state != kActive) return;
  hdr()->state = kIdle;
  hdr()->num_entries = 0;
  hdr()->bytes_used = sizeof(LogHeader);
  pool_->Persist(log_off_, sizeof(LogHeader));
}

void TxLog::Abort() {
  if (hdr()->state != kActive) return;
  ApplyUndoReverse();
  Commit();
}

bool TxLog::Recover() {
  if (hdr()->state != kActive) return false;
  ApplyUndoReverse();
  Commit();
  return true;
}

void TxLog::ApplyUndoReverse() {
  // Walk entries forward collecting their offsets, then restore in reverse
  // so overlapping snapshots resolve to the oldest image.
  std::vector<PoolOffset> entries;
  entries.reserve(hdr()->num_entries);
  PoolOffset cur = log_off_ + sizeof(LogHeader);
  for (uint64_t i = 0; i < hdr()->num_entries; ++i) {
    entries.push_back(cur);
    const auto* eh = pool_->As<EntryHeader>(cur);
    cur += sizeof(EntryHeader) + Align8(eh->len);
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const auto* eh = pool_->As<EntryHeader>(*it);
    std::memcpy(pool_->Direct(eh->offset),
                pool_->Direct(*it + sizeof(EntryHeader)), eh->len);
    pool_->Persist(eh->offset, eh->len);
  }
}

}  // namespace e2nvm::pmem
