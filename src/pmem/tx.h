#ifndef E2NVM_PMEM_TX_H_
#define E2NVM_PMEM_TX_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "pmem/pool.h"

namespace e2nvm::pmem {

/// The persistent undo log that backs transactions, living at a fixed
/// offset inside the pool. The log has three states:
///   kIdle      — no transaction in flight;
///   kActive    — a transaction is logging undo images;
///   (committed is not a persistent state: commit atomically returns the
///    log to kIdle after the data writes are persisted).
///
/// Crash semantics: if a pool is opened and the log is kActive, the
/// transaction did not commit, and Recover() applies the undo images in
/// reverse order — exactly PMDK's libpmemobj undo-log protocol.
class TxLog {
 public:
  static constexpr size_t kLogBytes = 256 * 1024;

  enum State : uint64_t { kIdle = 0, kActive = 1 };

  /// Persistent log header, stored at the log offset inside the pool.
  struct LogHeader {
    uint64_t state;
    uint64_t num_entries;
    uint64_t bytes_used;  // Includes this header.
  };

  /// Per-entry header, followed by `len` bytes of undo image.
  struct EntryHeader {
    uint64_t offset;  // Pool offset the image restores.
    uint64_t len;
  };

  /// Wraps the log region of `pool` at `log_off` (usually
  /// pool->header()->tx_log).
  TxLog(Pool* pool, PoolOffset log_off) : pool_(pool), log_off_(log_off) {}

  /// Formats an empty log at `off` in `pool`. Called once at pool creation.
  static void InitAt(Pool& pool, PoolOffset off);

  /// Marks a transaction active. Fails if one is already active (the log is
  /// single-writer; the store serializes transactions).
  Status Begin();

  /// Snapshots [off, off+len) into the log so it can be undone. Must be
  /// called *before* mutating that range. Fails if the log is full.
  Status Snapshot(PoolOffset off, size_t len);

  /// Commits: persists all data writes are assumed done by the caller; the
  /// log is truncated and returned to kIdle.
  void Commit();

  /// Aborts: re-applies undo images in reverse order, then truncates.
  void Abort();

  /// Crash recovery: if the log is kActive, behaves like Abort().
  /// Returns true if a rollback was performed.
  bool Recover();

  bool active() const { return hdr()->state == kActive; }
  uint64_t num_entries() const { return hdr()->num_entries; }
  /// Bytes of log capacity still free.
  size_t FreeBytes() const { return kLogBytes - hdr()->bytes_used; }

 private:
  LogHeader* hdr() { return pool_->As<LogHeader>(log_off_); }
  const LogHeader* hdr() const { return pool_->As<const LogHeader>(log_off_); }
  void ApplyUndoReverse();

  Pool* pool_;
  PoolOffset log_off_;
};

/// RAII transaction over a pool's undo log, the analogue of PMDK's
/// TX_BEGIN/TX_ADD/TX_END. Usage:
///
///   Transaction tx(pool);
///   E2_RETURN_IF_ERROR(tx.Begin());
///   E2_RETURN_IF_ERROR(tx.AddRange(off, len));   // before writing
///   ... mutate pool bytes at [off, off+len) ...
///   tx.Commit();                                  // or let dtor abort
///
/// If the Transaction is destroyed without Commit(), the mutation is rolled
/// back — matching libpmemobj's abort-on-scope-exit behavior.
class Transaction {
 public:
  explicit Transaction(Pool* pool)
      : pool_(pool), log_(pool, pool->header()->tx_log) {}

  ~Transaction() {
    if (began_ && !committed_) log_.Abort();
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Status Begin() {
    E2_RETURN_IF_ERROR(log_.Begin());
    began_ = true;
    return Status::Ok();
  }

  /// Registers [off, off+len) for undo; call before mutating.
  Status AddRange(PoolOffset off, size_t len) {
    return log_.Snapshot(off, len);
  }

  /// Persists the mutated ranges and commits the transaction.
  void Commit() {
    log_.Commit();
    committed_ = true;
  }

  /// Explicit rollback.
  void Abort() {
    if (began_ && !committed_) {
      log_.Abort();
      committed_ = true;  // Prevent double-abort in dtor.
    }
  }

 private:
  Pool* pool_;
  TxLog log_;
  bool began_ = false;
  bool committed_ = false;
};

}  // namespace e2nvm::pmem

#endif  // E2NVM_PMEM_TX_H_
