#ifndef E2NVM_PMEM_ALLOCATOR_H_
#define E2NVM_PMEM_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "pmem/pool.h"

namespace e2nvm::pmem {

/// A persistent segregated-fit allocator over a Pool, the analogue of
/// libpmemobj's object allocator. All allocator state (bump pointer and
/// per-class free lists) lives *inside* the pool, so a reopened pool
/// resumes allocation where it left off.
///
/// Design:
///  - Sizes are rounded up to power-of-two classes starting at 32 bytes.
///  - Every chunk is preceded by an 8-byte header holding the chunk size
///    (including header) with the low bit as the allocated flag.
///  - Free chunks thread an intrusive singly-linked list through their
///    first payload word (offset of next free chunk).
///
/// Thread-compatibility: the allocator itself is not synchronized; callers
/// (the KV store) serialize allocation, matching the paper's single
/// allocator path.
class Allocator {
 public:
  /// Number of power-of-two size classes: class i serves 32 << i bytes.
  static constexpr int kNumClasses = 26;  // up to 1 GiB chunks
  static constexpr size_t kMinChunk = 32;
  static constexpr size_t kChunkHeaderBytes = 8;

  /// Persistent allocator state (lives at pool->header()->heap_state).
  struct HeapState {
    uint64_t initialized;
    PoolOffset bump;               // Next never-allocated byte.
    PoolOffset heap_end;           // One past the last usable byte.
    PoolOffset free_lists[kNumClasses];
    uint64_t allocated_bytes;      // Live payload bytes (rounded).
    uint64_t live_objects;
  };

  /// Attaches to (and if necessary formats) the heap of `pool`.
  explicit Allocator(Pool* pool);

  /// Allocates at least `size` payload bytes; returns the payload offset.
  StatusOr<PoolOffset> Alloc(size_t size);

  /// Frees a payload offset previously returned by Alloc.
  Status Free(PoolOffset off);

  /// Payload capacity of an allocated offset (its class size).
  size_t UsableSize(PoolOffset off) const;

  uint64_t allocated_bytes() const { return state()->allocated_bytes; }
  uint64_t live_objects() const { return state()->live_objects; }
  /// Bytes remaining in the never-allocated region.
  uint64_t BumpRemaining() const {
    return state()->heap_end - state()->bump;
  }

  /// Size class index for a payload size; exposed for tests.
  static int ClassFor(size_t payload);
  /// Payload bytes served by class `c`.
  static size_t ClassSize(int c) { return kMinChunk << c; }

 private:
  HeapState* state() { return pool_->As<HeapState>(state_off_); }
  const HeapState* state() const {
    return pool_->As<const HeapState>(state_off_);
  }

  Pool* pool_;
  PoolOffset state_off_;
};

}  // namespace e2nvm::pmem

#endif  // E2NVM_PMEM_ALLOCATOR_H_
