#ifndef E2NVM_PMEM_PERSIST_H_
#define E2NVM_PMEM_PERSIST_H_

#include <cstddef>
#include <cstdint>

namespace e2nvm::pmem {

/// Cache-line size assumed by the persistence model. Optane's internal
/// write granularity is 256 B (an "XPLine"), but the CPU flushes at 64 B.
inline constexpr size_t kCacheLineBytes = 64;

/// Counts the persistence primitives a PMDK-backed program would issue:
/// CLWB-style cache-line write-backs and SFENCE-style ordering points.
/// On real hardware these dominate the cost of small persistent writes;
/// the NVM energy/latency models consume these counters.
///
/// The tracker is deliberately explicit (an object, not a global) so tests
/// can assert exact flush counts for a given operation.
class FlushTracker {
 public:
  /// Records a flush of the cache lines covering [addr, addr+len).
  /// Returns the number of distinct lines flushed.
  size_t FlushRange(const void* addr, size_t len) {
    if (len == 0) return 0;
    auto start = reinterpret_cast<uintptr_t>(addr) / kCacheLineBytes;
    auto end =
        (reinterpret_cast<uintptr_t>(addr) + len - 1) / kCacheLineBytes;
    size_t lines = static_cast<size_t>(end - start + 1);
    lines_flushed_ += lines;
    return lines;
  }

  /// Records an ordering fence (SFENCE after CLWBs).
  void Fence() { ++fences_; }

  uint64_t lines_flushed() const { return lines_flushed_; }
  uint64_t fences() const { return fences_; }

  void Reset() {
    lines_flushed_ = 0;
    fences_ = 0;
  }

 private:
  uint64_t lines_flushed_ = 0;
  uint64_t fences_ = 0;
};

}  // namespace e2nvm::pmem

#endif  // E2NVM_PMEM_PERSIST_H_
