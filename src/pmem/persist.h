#ifndef E2NVM_PMEM_PERSIST_H_
#define E2NVM_PMEM_PERSIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace e2nvm::pmem {

/// Cache-line size assumed by the persistence model. Optane's internal
/// write granularity is 256 B (an "XPLine"), but the CPU flushes at 64 B.
inline constexpr size_t kCacheLineBytes = 64;

/// Counts the persistence primitives a PMDK-backed program would issue:
/// CLWB-style cache-line write-backs and SFENCE-style ordering points.
/// On real hardware these dominate the cost of small persistent writes;
/// the NVM energy/latency models consume these counters.
///
/// The tracker is deliberately explicit (an object, not a global) so tests
/// can assert exact flush counts for a given operation.
class FlushTracker {
 public:
  /// Records a flush of the cache lines covering [addr, addr+len).
  /// Returns the number of distinct lines flushed.
  size_t FlushRange(const void* addr, size_t len) {
    if (len == 0) return 0;
    auto start = reinterpret_cast<uintptr_t>(addr) / kCacheLineBytes;
    auto end =
        (reinterpret_cast<uintptr_t>(addr) + len - 1) / kCacheLineBytes;
    size_t lines = static_cast<size_t>(end - start + 1);
    lines_flushed_ += lines;
    return lines;
  }

  /// Records an ordering fence (SFENCE after CLWBs).
  void Fence() { ++fences_; }

  uint64_t lines_flushed() const { return lines_flushed_; }
  uint64_t fences() const { return fences_; }

  void Reset() {
    lines_flushed_ = 0;
    fences_ = 0;
  }

 private:
  uint64_t lines_flushed_ = 0;
  uint64_t fences_ = 0;
};

/// Simulated power loss at a chosen persist boundary. Attach to a Pool
/// via SetCrashPoint and ArmAt(k): when the k-th persist (0-based, counted
/// from the arming) completes, the hook captures a byte-for-byte image of
/// the pool — exactly what would have reached media if power failed right
/// after that fence. The program keeps running (no exception, the live
/// pool is untouched); a test then reopens the frozen image with
/// Pool::OpenFromImage and asserts recovery restores a consistent state.
///
/// Stores between persists write straight into the mapping, so the image
/// at persist k conservatively contains every store issued before that
/// fence — the durable prefix under an ADR-style persistence model.
class CrashPoint {
 public:
  /// Arms the hook to fire at the k-th subsequent persist. Resets the
  /// counter and drops any previously captured image.
  void ArmAt(uint64_t k) {
    arm_k_ = k;
    armed_ = true;
    fired_ = false;
    persists_seen_ = 0;
    image_.clear();
  }

  void Disarm() { armed_ = false; }

  /// Called by Pool::Persist after the flush+fence completes.
  void OnPersist(const void* base, size_t size) {
    if (armed_ && !fired_ && persists_seen_ == arm_k_) {
      const auto* p = static_cast<const uint8_t*>(base);
      image_.assign(p, p + size);
      fired_ = true;
    }
    ++persists_seen_;
  }

  bool armed() const { return armed_; }
  /// True once the armed persist has happened and the image is captured.
  bool fired() const { return fired_; }
  /// Persists observed since the last ArmAt.
  uint64_t persists_seen() const { return persists_seen_; }
  /// The captured pool image; empty until fired.
  const std::vector<uint8_t>& image() const { return image_; }

 private:
  bool armed_ = false;
  bool fired_ = false;
  uint64_t arm_k_ = 0;
  uint64_t persists_seen_ = 0;
  std::vector<uint8_t> image_;
};

}  // namespace e2nvm::pmem

#endif  // E2NVM_PMEM_PERSIST_H_
