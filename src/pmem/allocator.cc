#include "pmem/allocator.h"

#include <bit>
#include <cstring>

namespace e2nvm::pmem {

namespace {
constexpr uint64_t kAllocatedBit = 1;

uint64_t* ChunkHeaderAt(Pool* pool, PoolOffset payload) {
  return pool->As<uint64_t>(payload - Allocator::kChunkHeaderBytes);
}
}  // namespace

Allocator::Allocator(Pool* pool)
    : pool_(pool), state_off_(pool->header()->heap_state) {
  auto* s = state();
  if (s->initialized != 1) {
    std::memset(s, 0, sizeof(HeapState));
    s->initialized = 1;
    s->bump = state_off_ + sizeof(HeapState);
    // Align bump to 32 bytes for tidy chunk placement.
    s->bump = (s->bump + 31) & ~PoolOffset{31};
    s->heap_end = pool->size();
    pool->Persist(state_off_, sizeof(HeapState));
  }
}

int Allocator::ClassFor(size_t payload) {
  if (payload < kMinChunk) payload = kMinChunk;
  // Round up to a power of two, then take log2 relative to kMinChunk.
  size_t rounded = std::bit_ceil(payload);
  int c = std::countr_zero(rounded) - std::countr_zero(kMinChunk);
  return c;
}

StatusOr<PoolOffset> Allocator::Alloc(size_t size) {
  if (size == 0) return Status::InvalidArgument("zero-size allocation");
  int c = ClassFor(size);
  if (c >= kNumClasses) {
    return Status::InvalidArgument("allocation too large for any class");
  }
  auto* s = state();
  size_t payload = ClassSize(c);
  PoolOffset result = kNullOffset;
  if (s->free_lists[c] != kNullOffset) {
    // Pop the head of the class free list.
    result = s->free_lists[c];
    PoolOffset next = *pool_->As<PoolOffset>(result);
    s->free_lists[c] = next;
  } else {
    size_t chunk = kChunkHeaderBytes + payload;
    if (s->bump + chunk > s->heap_end) {
      return Status::ResourceExhausted("pool heap exhausted");
    }
    PoolOffset header_off = s->bump;
    s->bump += chunk;
    *pool_->As<uint64_t>(header_off) = chunk;  // size, not yet allocated
    result = header_off + kChunkHeaderBytes;
  }
  uint64_t* hdr = ChunkHeaderAt(pool_, result);
  *hdr |= kAllocatedBit;
  s->allocated_bytes += payload;
  s->live_objects += 1;
  pool_->Persist(result - kChunkHeaderBytes, kChunkHeaderBytes);
  pool_->Persist(state_off_, sizeof(HeapState));
  return result;
}

Status Allocator::Free(PoolOffset off) {
  if (off == kNullOffset || off < state_off_ + sizeof(HeapState)) {
    return Status::InvalidArgument("free of invalid offset");
  }
  uint64_t* hdr = ChunkHeaderAt(pool_, off);
  if ((*hdr & kAllocatedBit) == 0) {
    return Status::FailedPrecondition("double free detected");
  }
  size_t chunk = *hdr & ~kAllocatedBit;
  size_t payload = chunk - kChunkHeaderBytes;
  int c = ClassFor(payload);
  *hdr &= ~kAllocatedBit;
  auto* s = state();
  // Push onto the class free list.
  *pool_->As<PoolOffset>(off) = s->free_lists[c];
  s->free_lists[c] = off;
  s->allocated_bytes -= payload;
  s->live_objects -= 1;
  pool_->Persist(off - kChunkHeaderBytes, kChunkHeaderBytes + 8);
  pool_->Persist(state_off_, sizeof(HeapState));
  return Status::Ok();
}

size_t Allocator::UsableSize(PoolOffset off) const {
  const uint64_t* hdr =
      pool_->As<const uint64_t>(off - kChunkHeaderBytes);
  return (*hdr & ~kAllocatedBit) - kChunkHeaderBytes;
}

}  // namespace e2nvm::pmem
