#ifndef E2NVM_PMEM_POOL_H_
#define E2NVM_PMEM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pmem/persist.h"

namespace e2nvm::pmem {

/// Byte offset inside a pool. Offset 0 is reserved (the header), so 0 doubles
/// as the null offset, mirroring PMDK's OID semantics.
using PoolOffset = uint64_t;
inline constexpr PoolOffset kNullOffset = 0;

/// A persistent memory pool: a fixed-size byte region with a recoverable
/// header, modeled after PMDK's `pmemobj` pools. The region is backed either
/// by a memory-mapped file (`Create`/`Open` with a path) or by anonymous
/// memory (`CreateAnonymous`, for tests and simulation where no file system
/// persistence is needed).
///
/// All intra-pool references are PoolOffsets, never raw pointers, so a pool
/// file reopened at a different base address remains valid — the same
/// discipline PMDK imposes.
class Pool {
 public:
  /// In-pool header, stored at offset 0. 4 KiB reserved.
  ///
  /// Every field before `header_crc` is covered by the CRC32C stored in
  /// `header_crc`, restamped after each header mutation (InitHeader,
  /// set_root, open/close shutdown marks). The header is mutated and
  /// persisted as a unit between persist ordinals, so crash images always
  /// carry a valid checksum; a mismatch on open means the header bytes
  /// themselves were torn or bit-rotted on media, and open fails with
  /// kDataLoss instead of trusting the geometry.
  struct Header {
    static constexpr uint64_t kMagic = 0xE2B17F11AE2B17F1ull;
    uint64_t magic;
    uint64_t version;
    char layout[32];       // User-chosen layout name, checked on Open.
    uint64_t pool_size;    // Total bytes including header.
    PoolOffset root;       // User root object, kNullOffset if unset.
    uint64_t clean_shutdown;  // 1 if Close() completed; 0 while open.
    PoolOffset heap_state;    // Allocator persistent state.
    PoolOffset tx_log;        // Transaction undo log region.
    uint64_t header_crc;      // CRC32C of every field above (low 32 bits).
  };
  static constexpr size_t kHeaderBytes = 4096;
  static constexpr uint64_t kVersion = 2;

  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Creates a new pool file of `size` bytes at `path` with the given layout
  /// name. Fails if the file exists.
  static StatusOr<std::unique_ptr<Pool>> Create(const std::string& path,
                                                const std::string& layout,
                                                size_t size);

  /// Opens an existing pool file, validating magic/layout/header checksum.
  /// Honors `Header::clean_shutdown`: a pool that did not see Close() is
  /// reopened through the recovery path (rolls back any uncommitted
  /// transaction found in the log, `recovered()` true); a cleanly shut
  /// down pool skips recovery — unless its tx log claims an active
  /// transaction, which is inconsistent with a clean mark and fails with
  /// kDataLoss.
  static StatusOr<std::unique_ptr<Pool>> Open(const std::string& path,
                                              const std::string& layout);

  /// Creates a pool backed by anonymous memory (no file). Contents survive
  /// only as long as the process; used by the device simulator and tests.
  static StatusOr<std::unique_ptr<Pool>> CreateAnonymous(
      const std::string& layout, size_t size);

  /// Reopens a pool from a byte image captured by a CrashPoint: validates
  /// the header and runs crash recovery exactly as Open() would on a file
  /// that lost power. The resulting pool is anonymous (in-memory only).
  static StatusOr<std::unique_ptr<Pool>> OpenFromImage(
      const std::vector<uint8_t>& image, const std::string& layout);

  /// Flushes the header and marks clean shutdown. Called by the destructor
  /// if not called explicitly.
  void Close();

  /// Total pool size in bytes (including the header).
  size_t size() const { return size_; }
  const std::string& layout() const { return layout_; }
  /// True if Open() detected an unclean shutdown (recovery ran).
  bool recovered() const { return recovered_; }

  /// Translates an offset to a pointer. Requires off < size().
  void* Direct(PoolOffset off) {
    return static_cast<uint8_t*>(base_) + off;
  }
  const void* Direct(PoolOffset off) const {
    return static_cast<const uint8_t*>(base_) + off;
  }

  /// Typed accessor: Pool::As<T>(off) — caller asserts T lives at off.
  template <typename T>
  T* As(PoolOffset off) {
    return reinterpret_cast<T*>(Direct(off));
  }
  template <typename T>
  const T* As(PoolOffset off) const {
    return reinterpret_cast<const T*>(Direct(off));
  }

  /// Translates a pointer inside the mapping back to an offset.
  PoolOffset OffsetOf(const void* ptr) const {
    return static_cast<PoolOffset>(static_cast<const uint8_t*>(ptr) -
                                   static_cast<const uint8_t*>(base_));
  }

  /// Root object management (PMDK pmemobj_root analogue).
  PoolOffset root() const { return header()->root; }
  void set_root(PoolOffset off);

  /// Persists [off, off+len): counts the flush in the tracker and issues a
  /// fence. This is the moral equivalent of pmem_persist().
  void Persist(PoolOffset off, size_t len);

  /// The persistence-cost tracker for this pool.
  FlushTracker& flush_tracker() { return flush_tracker_; }
  const FlushTracker& flush_tracker() const { return flush_tracker_; }

  /// Attaches (or detaches, with nullptr) a crash-injection hook. The
  /// hook is notified after every Persist and captures the pool image at
  /// its armed persist ordinal; it must outlive its attachment.
  void SetCrashPoint(CrashPoint* cp) { crash_point_ = cp; }
  CrashPoint* crash_point() { return crash_point_; }

  /// Byte-for-byte copy of the whole pool (what a power loss right now
  /// would leave on media).
  std::vector<uint8_t> SnapshotImage() const {
    const auto* p = static_cast<const uint8_t*>(base_);
    return std::vector<uint8_t>(p, p + size_);
  }

  Header* header() { return As<Header>(0); }
  const Header* header() const { return As<const Header>(0); }

 private:
  Pool() = default;

  Status MapFile(const std::string& path, size_t size, bool create);
  void InitHeader(const std::string& layout, size_t size);
  Status ValidateHeader(const std::string& layout) const;
  /// Honors clean_shutdown, runs recovery when dirty, and re-marks the
  /// pool open — the shared tail of Open()/OpenFromImage().
  Status RecoverAndMarkOpen();
  /// Recomputes header_crc over the current header fields (no persist).
  void StampHeaderCrc();
  void RunRecovery();

  void* base_ = nullptr;
  size_t size_ = 0;
  int fd_ = -1;
  bool anonymous_ = false;
  bool closed_ = false;
  bool recovered_ = false;
  std::string layout_;
  FlushTracker flush_tracker_;
  CrashPoint* crash_point_ = nullptr;
};

}  // namespace e2nvm::pmem

#endif  // E2NVM_PMEM_POOL_H_
