#include "core/address_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace e2nvm::core {

void DynamicAddressPool::Insert(size_t cluster, uint64_t addr) {
  E2_CHECK(cluster < lists_.size(), "cluster %zu out of range", cluster);
  std::lock_guard<std::mutex> lock(mu_);
  lists_[cluster].push_back(addr);
  ++total_free_;
}

std::optional<uint64_t> DynamicAddressPool::Acquire(size_t cluster) {
  E2_CHECK(cluster < lists_.size(), "cluster %zu out of range", cluster);
  std::lock_guard<std::mutex> lock(mu_);
  size_t c = cluster;
  if (lists_[c].empty()) {
    c = LargestClusterLocked();
    if (lists_[c].empty()) return std::nullopt;
  }
  uint64_t addr = lists_[c].front();
  lists_[c].pop_front();
  --total_free_;
  return addr;
}

size_t DynamicAddressPool::LargestClusterLocked() const {
  size_t best = 0;
  size_t best_size = 0;
  for (size_t c = 0; c < lists_.size(); ++c) {
    if (lists_[c].size() > best_size) {
      best_size = lists_[c].size();
      best = c;
    }
  }
  return best;
}

size_t DynamicAddressPool::FreeCount(size_t cluster) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lists_[cluster].size();
}

size_t DynamicAddressPool::TotalFree() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_free_;
}

size_t DynamicAddressPool::MinClusterFree() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t mn = SIZE_MAX;
  for (const auto& l : lists_) mn = std::min(mn, l.size());
  return mn == SIZE_MAX ? 0 : mn;
}

size_t DynamicAddressPool::MemoryFootprintBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  // 8 bytes per stored address plus fixed per-cluster list headers.
  return total_free_ * sizeof(uint64_t) +
         lists_.size() * (sizeof(std::deque<uint64_t>) + 64);
}

std::vector<uint64_t> DynamicAddressPool::AllFree() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(total_free_);
  for (const auto& l : lists_) {
    out.insert(out.end(), l.begin(), l.end());
  }
  return out;
}

void DynamicAddressPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& l : lists_) l.clear();
  total_free_ = 0;
}

}  // namespace e2nvm::core
