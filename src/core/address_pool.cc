#include "core/address_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace e2nvm::core {

size_t DynamicAddressPool::ClampClusterLocked(size_t cluster) const {
  if (cluster < lists_.size()) return cluster;
  // A degraded or buggy clusterer handed us an id we have no list for.
  // Clamp instead of indexing out of bounds; the caller still gets a
  // valid (if arbitrary) cluster, and the incident is observable.
  ++clamped_ids_;
  return lists_.size() - 1;
}

void DynamicAddressPool::Insert(size_t cluster, uint64_t addr) {
  MaybeLock lock(*this);
  if (lists_.empty()) {
    E2_LOG(kWarning, "dropping address %llu: pool has no clusters",
           static_cast<unsigned long long>(addr));
    return;
  }
  lists_[ClampClusterLocked(cluster)].push_back(addr);
  ++total_free_;
}

std::optional<uint64_t> DynamicAddressPool::Acquire(size_t cluster) {
  MaybeLock lock(*this);
  if (lists_.empty()) return std::nullopt;
  size_t c = ClampClusterLocked(cluster);
  if (lists_[c].empty()) {
    c = LargestClusterLocked();
    if (lists_[c].empty()) return std::nullopt;
  }
  uint64_t addr = lists_[c].front();
  lists_[c].pop_front();
  --total_free_;
  return addr;
}

std::optional<uint64_t> DynamicAddressPool::AcquireAny() {
  MaybeLock lock(*this);
  if (lists_.empty()) return std::nullopt;
  size_t c = LargestClusterLocked();
  if (lists_[c].empty()) return std::nullopt;
  uint64_t addr = lists_[c].front();
  lists_[c].pop_front();
  --total_free_;
  return addr;
}

size_t DynamicAddressPool::LargestClusterLocked() const {
  size_t best = 0;
  size_t best_size = 0;
  for (size_t c = 0; c < lists_.size(); ++c) {
    if (lists_[c].size() > best_size) {
      best_size = lists_[c].size();
      best = c;
    }
  }
  return best;
}

size_t DynamicAddressPool::FreeCount(size_t cluster) const {
  MaybeLock lock(*this);
  if (cluster >= lists_.size()) {
    ++clamped_ids_;
    return 0;
  }
  return lists_[cluster].size();
}

size_t DynamicAddressPool::TotalFree() const {
  MaybeLock lock(*this);
  return total_free_;
}

uint64_t DynamicAddressPool::clamped_ids() const {
  MaybeLock lock(*this);
  return clamped_ids_;
}

size_t DynamicAddressPool::MinClusterFree() const {
  MaybeLock lock(*this);
  size_t mn = SIZE_MAX;
  for (const auto& l : lists_) mn = std::min(mn, l.size());
  return mn == SIZE_MAX ? 0 : mn;
}

size_t DynamicAddressPool::MemoryFootprintBytes() const {
  MaybeLock lock(*this);
  // Ring capacity per cluster (>= stored addresses) plus list headers.
  size_t bytes = lists_.size() * sizeof(FreeList);
  for (const auto& l : lists_) bytes += l.capacity() * sizeof(uint64_t);
  return bytes;
}

std::vector<uint64_t> DynamicAddressPool::AllFree() const {
  MaybeLock lock(*this);
  std::vector<uint64_t> out;
  out.reserve(total_free_);
  for (const auto& l : lists_) {
    for (size_t i = 0; i < l.size(); ++i) out.push_back(l[i]);
  }
  return out;
}

void DynamicAddressPool::Clear() {
  MaybeLock lock(*this);
  for (auto& l : lists_) l.clear();
  total_free_ = 0;
}

}  // namespace e2nvm::core
