#ifndef E2NVM_CORE_REPLAY_RING_H_
#define E2NVM_CORE_REPLAY_RING_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "ml/matrix.h"

namespace e2nvm::core {

/// Fixed-capacity ring of recently written segment images — the training
/// data source of the incremental learning pipeline (DESIGN.md §16).
///
/// One ring per PlacementEngine (so one per shard): the PUT path appends
/// the committed segment image of every placement, and refinement steps
/// read the most recent rows back as mini-batches. The backing matrix is
/// allocated once by Reset, AppendRow only hands out slots (overwriting
/// the oldest row once full), so the steady-state write path stays
/// allocation-free. Rows are stored in append order and addressed
/// newest-first via RecentRow — a deterministic function of the write
/// stream alone, which is what makes refinement mini-batches (and
/// therefore the refined model) seed-deterministic and pool-size
/// invariant.
///
/// Single-caller like the engine that owns it: appends and reads are
/// serialized by the engine's external-locking contract.
class ReplayRing {
 public:
  /// Sizes the ring to `capacity` rows of `dim` floats (one allocation;
  /// contents cleared). capacity 0 disables the ring.
  void Reset(size_t capacity, size_t dim) {
    rows_ = ml::Matrix(capacity, dim);
    head_ = 0;
    count_ = 0;
    appends_ = 0;
  }

  /// Slot for the next row (the caller writes dim() floats into it),
  /// overwriting the oldest row once the ring is full. Never allocates.
  float* AppendRow() {
    assert(capacity() > 0);
    float* slot = rows_.Row(head_);
    head_ = (head_ + 1) % capacity();
    if (count_ < capacity()) ++count_;
    ++appends_;
    return slot;
  }

  /// The i-th most recent row (i = 0 is the newest append).
  const float* RecentRow(size_t i) const {
    assert(i < count_);
    size_t idx = (head_ + capacity() - 1 - i) % capacity();
    return rows_.Row(idx);
  }

  size_t size() const { return count_; }
  size_t capacity() const { return rows_.rows(); }
  size_t dim() const { return rows_.cols(); }
  /// Lifetime appends (diagnostics and determinism tests).
  uint64_t total_appends() const { return appends_; }
  /// Raw backing matrix, for byte-level determinism comparisons.
  const ml::Matrix& raw() const { return rows_; }

 private:
  ml::Matrix rows_;
  size_t head_ = 0;
  size_t count_ = 0;
  uint64_t appends_ = 0;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_REPLAY_RING_H_
