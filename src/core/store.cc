#include "core/store.h"

namespace e2nvm::core {

namespace {

/// Model + engine construction shared by the standalone and shard
/// factories (the stack above the device/controller is identical).
void BuildModelAndEngine(const StoreConfig& config, uint64_t first_segment,
                         nvm::MemoryController* ctrl,
                         std::unique_ptr<E2Model>* model,
                         std::unique_ptr<PlacementEngine>* engine,
                         ThreadPool* retrain_pool) {
  E2ModelConfig mc = config.model;
  mc.input_dim = config.segment_bits;
  *model = std::make_unique<E2Model>(mc);

  PlacementEngine::Config ec;
  ec.first_segment = first_segment;
  ec.num_segments = config.num_segments;
  ec.search_best_in_cluster = config.search_best_in_cluster;
  ec.auto_retrain = config.auto_retrain || config.background_retrain;
  ec.retrain = config.retrain;
  ec.retrain_backoff_writes = config.retrain_backoff_writes;
  ec.reference_inference = config.reference_inference;
  ec.incremental.enabled = config.incremental_learning;
  ec.incremental.ring_capacity = config.replay_ring_capacity;
  ec.incremental.refine_batch = config.refine_batch;
  *engine = std::make_unique<PlacementEngine>(ctrl, model->get(), ec);
  if (config.background_retrain) {
    (*engine)->EnableBackgroundRetrain(retrain_pool);
  }
}

}  // namespace

E2KvStore::E2KvStore(const StoreConfig& config) : config_(config) {}

E2KvStore::~E2KvStore() {
  // The engine's background retrainer may be mid-training on the compute
  // pool; join it before the pool (and its global registration) go away.
  engine_.reset();
  if (installed_pool_ && ml::compute_pool() == pool_.get()) {
    ml::SetComputePool(nullptr);
  }
}

StatusOr<std::unique_ptr<E2KvStore>> E2KvStore::Create(
    const StoreConfig& config) {
  if (config.num_segments == 0 || config.segment_bits == 0) {
    return Status::InvalidArgument("empty store geometry");
  }
  std::unique_ptr<E2KvStore> store(new E2KvStore(config));

  if (config.pool_threads > 0) {
    store->pool_ = std::make_unique<ThreadPool>(config.pool_threads);
    if (ml::compute_pool() == nullptr) {
      ml::SetComputePool(store->pool_.get());
      store->installed_pool_ = true;
    }
  }

  nvm::DeviceConfig dc;
  dc.num_segments = config.num_segments + (config.psi > 0 ? 1 : 0);
  dc.segment_bits = config.segment_bits;
  dc.track_bit_wear = config.track_bit_wear;
  dc.pcm = config.pcm;
  dc.verify_writes = config.verify_writes;
  dc.max_write_retries = config.max_write_retries;
  store->device_ =
      std::make_unique<nvm::NvmDevice>(dc, &store->meter_);
  store->dev_ = store->device_.get();
  store->ctrl_ = std::make_unique<nvm::MemoryController>(
      store->device_.get(), &store->scheme_, config.num_segments,
      config.psi);
  if (config.integrity_tracking) store->ctrl_->EnableIntegrityTracking();

  BuildModelAndEngine(config, /*first_segment=*/0, store->ctrl_.get(),
                      &store->model_, &store->engine_,
                      /*retrain_pool=*/nullptr);
  return store;
}

StatusOr<std::unique_ptr<E2KvStore>> E2KvStore::CreateShard(
    const StoreConfig& config, const ShardAttachment& attach) {
  if (config.num_segments == 0 || config.segment_bits == 0) {
    return Status::InvalidArgument("empty shard geometry");
  }
  if (attach.device == nullptr) {
    return Status::InvalidArgument("shard needs a shared device");
  }
  if (config.psi != 0) {
    return Status::InvalidArgument(
        "Start-Gap wear leveling cannot run under a shard (gap moves "
        "would migrate cells across shard ranges)");
  }
  if (config.segment_bits != attach.device->segment_bits()) {
    return Status::InvalidArgument(
        "shard segment_bits does not match the shared device");
  }
  if (attach.first_segment + config.num_segments >
      attach.device->num_segments()) {
    return Status::OutOfRange("shard range exceeds the shared device");
  }
  std::unique_ptr<E2KvStore> store(new E2KvStore(config));
  store->dev_ = attach.device;
  store->first_segment_ = attach.first_segment;
  // The controller spans the whole shared device (identity mapping, no
  // leveler); this shard's engine only ever addresses its own range.
  store->ctrl_ = std::make_unique<nvm::MemoryController>(
      attach.device, &store->scheme_, attach.device->num_segments(),
      /*psi=*/0);
  if (config.integrity_tracking) store->ctrl_->EnableIntegrityTracking();

  BuildModelAndEngine(config, attach.first_segment, store->ctrl_.get(),
                      &store->model_, &store->engine_,
                      attach.retrain_pool);
  return store;
}

void E2KvStore::Seed(const workload::BitDataset& contents) {
  workload::BitDataset sized =
      workload::ResizeItems(contents, config_.segment_bits);
  for (size_t i = 0; i < config_.num_segments; ++i) {
    ctrl_->Seed(first_segment_ + i, sized.items[i % sized.items.size()]);
  }
}

Status E2KvStore::Bootstrap() { return engine_->Bootstrap(); }

Status E2KvStore::Put(uint64_t key, const BitVector& value) {
  E2_ASSIGN_OR_RETURN(uint64_t addr, engine_->Place(value));
  auto old = tree_.Get(key);
  tree_.Put(key, addr);
  value_bits_[key] = value.size();
  if (old.has_value()) {
    // UPDATE: the previous location is recycled by content (Alg. 2).
    E2_RETURN_IF_ERROR(engine_->Release(*old));
  }
  return Status::Ok();
}

Status E2KvStore::MultiPut(
    const std::vector<std::pair<uint64_t, BitVector>>& kvs) {
  return MultiPut(kvs.data(), kvs.size());
}

Status E2KvStore::MultiPut(const std::pair<uint64_t, BitVector>* kvs,
                           size_t n) {
  if (n == 0) return Status::Ok();
  std::vector<const BitVector*>& values = mp_values_;
  values.clear();
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(&kvs[i].second);
  std::vector<uint64_t>& addrs = mp_addrs_;
  addrs.clear();
  addrs.reserve(n);
  Status placed = engine_->PlaceMany(values, &addrs);
  // Index every value that made it, even when the batch failed part-way
  // (addrs then covers a prefix of kvs).
  for (size_t i = 0; i < addrs.size(); ++i) {
    const auto& [key, value] = kvs[i];
    auto old = tree_.Get(key);
    tree_.Put(key, addrs[i]);
    value_bits_[key] = value.size();
    if (old.has_value()) {
      // UPDATE: recycle the superseded location (Alg. 2). A key staged
      // twice in one batch recycles its first placement here.
      E2_RETURN_IF_ERROR(engine_->Release(*old));
    }
  }
  return placed;
}

StatusOr<BitVector> E2KvStore::Get(uint64_t key) {
  auto addr = tree_.Get(key);
  if (!addr.has_value()) return Status::NotFound("key not found");
  return engine_->Read(*addr, value_bits_.at(key));
}

Status E2KvStore::GetInto(uint64_t key, BitVector* out) {
  auto addr = tree_.Get(key);
  if (!addr.has_value()) return Status::NotFound("key not found");
  engine_->ReadInto(*addr, value_bits_.at(key), out);
  return Status::Ok();
}

StatusOr<BitVector> E2KvStore::PeekValue(uint64_t key) const {
  auto addr = tree_.Get(key);
  if (!addr.has_value()) return Status::NotFound("key not found");
  return ctrl_->Peek(*addr).Slice(0, value_bits_.at(key));
}

Status E2KvStore::Delete(uint64_t key) {
  auto addr = tree_.Erase(key);
  if (!addr.has_value()) return Status::NotFound("key not found");
  value_bits_.erase(key);
  return engine_->Release(*addr);
}

std::vector<std::pair<uint64_t, BitVector>> E2KvStore::Scan(uint64_t start,
                                                            size_t count) {
  std::vector<std::pair<uint64_t, BitVector>> out;
  for (auto& [key, addr] : tree_.Scan(start, count)) {
    out.emplace_back(key, engine_->Read(addr, value_bits_.at(key)));
  }
  return out;
}

}  // namespace e2nvm::core
