#include "core/e2_model.h"

#include <algorithm>

#include "common/logging.h"

namespace e2nvm::core {

E2Model::E2Model(const E2ModelConfig& config)
    : config_(config),
      kmeans_({.k = config.k,
               .max_iters = config.kmeans_iters,
               .seed = config.seed}) {
  ml::VaeConfig vc;
  vc.input_dim = config.input_dim;
  vc.hidden_dim = config.hidden_dim;
  vc.latent_dim = config.latent_dim;
  vc.beta = config.beta;
  vc.seed = config.seed;
  vae_ = std::make_unique<ml::Vae>(vc);
}

Status E2Model::Train(const ml::Matrix& contents) {
  if (contents.rows() < config_.k) {
    return Status::InvalidArgument("fewer segments than clusters");
  }
  if (contents.cols() != config_.input_dim) {
    return Status::InvalidArgument("content width != model input_dim");
  }
  // Recreate the VAE so re-training starts from a fresh model (the paper
  // trains the replacement model from scratch in the background).
  ml::VaeConfig vc = vae_->config();
  vae_ = std::make_unique<ml::Vae>(vc);

  // Phase 1: ELBO pretraining.
  ml::VaeTrainOptions opts;
  opts.epochs = config_.pretrain_epochs;
  opts.batch_size = config_.batch_size;
  history_ = vae_->Train(contents, opts);
  last_train_flops_ = history_.flops;

  // Phase 2: K-means on latent codes.
  ml::Matrix z = vae_->EncodeMu(contents);
  E2_RETURN_IF_ERROR(kmeans_.Fit(z));
  last_train_flops_ += kmeans_.FitFlops(z.rows());

  // Phase 3: joint fine-tuning (DEC-style): the encoder is pulled toward
  // the centroids while still reconstructing; centroids are re-estimated
  // between rounds.
  if (config_.joint_finetune) {
    for (int round = 0; round < config_.finetune_rounds; ++round) {
      ml::Matrix latent = vae_->EncodeMu(contents);
      std::vector<size_t> assign = kmeans_.PredictBatch(latent);

      // One epoch of cluster-regularized batches.
      const size_t n = contents.rows();
      for (size_t start = 0; start < n; start += config_.batch_size) {
        size_t bs = std::min(config_.batch_size, n - start);
        ml::Matrix batch(bs, contents.cols());
        std::vector<size_t> batch_assign(bs);
        for (size_t i = 0; i < bs; ++i) {
          batch.CopyRowFrom(contents, start + i, i);
          batch_assign[i] = assign[start + i];
        }
        ml::VaeTrainOptions ft;
        ft.centroids = &kmeans_.centroids();
        ft.assignments = &batch_assign;
        ft.cluster_weight = config_.cluster_weight;
        vae_->TrainBatch(batch, ft);
        last_train_flops_ += vae_->TrainStepFlops(bs);
      }

      // Re-estimate centroids from the updated encoder.
      ml::Matrix z2 = vae_->EncodeMu(contents);
      std::vector<size_t> assign2 = kmeans_.PredictBatch(z2);
      ml::Matrix centroids(config_.k, config_.latent_dim);
      std::vector<size_t> counts(config_.k, 0);
      for (size_t i = 0; i < z2.rows(); ++i) {
        float* crow = centroids.Row(assign2[i]);
        for (size_t d = 0; d < config_.latent_dim; ++d) {
          crow[d] += z2(i, d);
        }
        ++counts[assign2[i]];
      }
      for (size_t c = 0; c < config_.k; ++c) {
        if (counts[c] == 0) {
          // Keep the stale centroid for empty clusters.
          for (size_t d = 0; d < config_.latent_dim; ++d) {
            centroids(c, d) = kmeans_.centroids()(c, d);
          }
          continue;
        }
        float inv = 1.0f / static_cast<float>(counts[c]);
        for (size_t d = 0; d < config_.latent_dim; ++d) {
          centroids(c, d) *= inv;
        }
      }
      kmeans_.SetCentroids(std::move(centroids));
      last_train_flops_ += kmeans_.PredictFlops() * z2.rows() * 2.0;
    }
  }
  return Status::Ok();
}

Status E2Model::PartialFit(const ml::Matrix& batch) {
  if (!kmeans_.fitted()) {
    return Status::FailedPrecondition("PartialFit before Train");
  }
  if (batch.cols() != config_.input_dim) {
    return Status::InvalidArgument("batch width != model input_dim");
  }
  if (batch.rows() == 0) {
    last_partial_fit_flops_ = 0;
    return Status::Ok();
  }
  // Warm ELBO steps on the current encoder/decoder; the existing
  // parameters are the starting point, which is the whole point.
  last_partial_fit_flops_ = vae_->PartialFit(batch, config_.batch_size);
  // Pull the latent centroids toward the refreshed codes.
  ml::Matrix z = vae_->EncodeMu(batch);
  E2_RETURN_IF_ERROR(kmeans_.PartialFit(z));
  last_partial_fit_flops_ +=
      vae_->PredictFlops() * static_cast<double>(batch.rows()) +
      kmeans_.PartialFitFlops(z.rows());
  return Status::Ok();
}

size_t E2Model::PredictCluster(const std::vector<float>& features) {
  E2_CHECK(features.size() == config_.input_dim,
           "feature width %zu != input_dim %zu", features.size(),
           config_.input_dim);
  std::vector<float> z = vae_->EncodeOne(features);
  return kmeans_.Predict(z.data(), z.size());
}

void E2Model::AssignScratch(ml::InferenceScratch* scratch) {
  E2_CHECK(scratch->in.cols() == config_.input_dim,
           "feature width %zu != input_dim %zu", scratch->in.cols(),
           config_.input_dim);
  vae_->EncodeMuInto(scratch->in, &scratch->hidden, &scratch->latent);
  kmeans_.AssignFusedInto(scratch->latent, &scratch->scores,
                          &scratch->clusters);
}

double E2Model::LatentSse(const ml::Matrix& contents) {
  ml::Matrix z = vae_->EncodeMu(contents);
  return kmeans_.Sse(z);
}

}  // namespace e2nvm::core
