#include "core/background_retrainer.h"

#include <utility>

namespace e2nvm::core {

BackgroundRetrainer::~BackgroundRetrainer() {
  if (worker_.joinable()) worker_.join();
  // Pool mode: the submitted task captures `this`; wait until it has
  // published (running_ release pairs with this acquire, so result_ and
  // the flags are fully written before we destruct).
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void BackgroundRetrainer::TrainAndPublish(
    std::unique_ptr<placement::ContentClusterer> shadow,
    ml::Matrix contents) {
  result_.status = shadow->Train(contents);
  if (result_.status.ok()) {
    result_.train_flops = shadow->LastTrainFlops();
    const size_t n = contents.rows();
    result_.clusters.resize(n);
    std::vector<float> row(contents.cols());
    for (size_t i = 0; i < n; ++i) {
      const float* src = contents.Row(i);
      row.assign(src, src + contents.cols());
      result_.clusters[i] = shadow->PredictCluster(row);
      result_.predict_flops += shadow->PredictFlops();
    }
    result_.model = std::move(shadow);
  }
  generations_.fetch_add(1, std::memory_order_acq_rel);
  ready_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

bool BackgroundRetrainer::Start(
    std::unique_ptr<placement::ContentClusterer> shadow,
    ml::Matrix contents, std::vector<uint64_t> addrs) {
  if (running() || ready()) return false;
  if (worker_.joinable()) worker_.join();  // Reap the previous worker.

  result_ = Result{};
  result_.addrs = std::move(addrs);
  running_.store(true, std::memory_order_release);

  // The worker owns the shadow and the snapshot until the ready_ release;
  // the foreground only reads result_ after the matching acquire.
  if (pool_ != nullptr) {
    // Submit takes a copyable std::function; park the move-only payload
    // in a shared_ptr the (single) execution steals from.
    auto job = std::make_shared<
        std::pair<std::unique_ptr<placement::ContentClusterer>, ml::Matrix>>(
        std::move(shadow), std::move(contents));
    pool_->Submit([this, job] {
      TrainAndPublish(std::move(job->first), std::move(job->second));
    });
    return true;
  }
  worker_ = std::thread(
      [this, shadow = std::move(shadow),
       contents = std::move(contents)]() mutable {
        TrainAndPublish(std::move(shadow), std::move(contents));
      });
  return true;
}

std::optional<BackgroundRetrainer::Result> BackgroundRetrainer::TryCollect() {
  if (!ready()) return std::nullopt;
  if (worker_.joinable()) worker_.join();
  Result r = std::move(result_);
  result_ = Result{};
  ready_.store(false, std::memory_order_release);
  return r;
}

}  // namespace e2nvm::core
