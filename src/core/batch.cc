#include "core/batch.h"

#include <algorithm>

namespace e2nvm::core {

Status BatchWriter::Put(uint64_t key, const BitVector& value) {
  if (value.size() > batch_bits_) {
    return Status::InvalidArgument("value wider than the batch");
  }
  if (value.empty()) {
    return Status::InvalidArgument("empty value");
  }
  // Supersede any previous version.
  DropPlaced(key);
  for (auto it = staged_order_.begin(); it != staged_order_.end(); ++it) {
    if (it->first == key) {
      // Restage: old staged bytes become dead space in the buffer (they
      // flush as padding and are never referenced again).
      staged_order_.erase(it);
      break;
    }
  }
  if (staged_bits_ + value.size() > batch_bits_) {
    E2_RETURN_IF_ERROR(Flush());
  }
  return PutStaged(key, value);
}

Status BatchWriter::PutStaged(uint64_t key, const BitVector& value) {
  if (staging_.size() != batch_bits_) {
    staging_ = BitVector(batch_bits_);
    staged_bits_ = 0;
  }
  staging_.Overlay(staged_bits_, value);
  staged_order_.emplace_back(key,
                             std::make_pair(staged_bits_, value.size()));
  staged_bits_ += value.size();
  return Status::Ok();
}

Status BatchWriter::Flush() {
  if (staged_order_.empty()) return Status::Ok();
  E2_ASSIGN_OR_RETURN(uint64_t addr, placer_->Place(staging_));
  ++batches_placed_;
  BatchInfo& info = batches_[addr];
  for (auto& [key, span] : staged_order_) {
    locations_[key] = Location{addr, span.first, span.second};
    ++info.live;
  }
  staged_order_.clear();
  staging_ = BitVector(batch_bits_);
  staged_bits_ = 0;
  return Status::Ok();
}

StatusOr<BitVector> BatchWriter::Get(uint64_t key) {
  for (auto& [k, span] : staged_order_) {
    if (k == key) {
      return staging_.Slice(span.first, span.second);
    }
  }
  auto it = locations_.find(key);
  if (it == locations_.end()) return Status::NotFound("key not found");
  const Location& loc = it->second;
  BitVector batch = placer_->Read(loc.addr, loc.offset + loc.bits);
  return batch.Slice(loc.offset, loc.bits);
}

void BatchWriter::DropPlaced(uint64_t key) {
  auto it = locations_.find(key);
  if (it == locations_.end()) return;
  uint64_t addr = it->second.addr;
  locations_.erase(it);
  auto bit = batches_.find(addr);
  if (bit != batches_.end() && --bit->second.live == 0) {
    batches_.erase(bit);
    (void)placer_->Release(addr);
    ++segments_reclaimed_;
  }
}

Status BatchWriter::Delete(uint64_t key) {
  for (auto it = staged_order_.begin(); it != staged_order_.end(); ++it) {
    if (it->first == key) {
      staged_order_.erase(it);
      return Status::Ok();
    }
  }
  if (locations_.find(key) == locations_.end()) {
    return Status::NotFound("key not found");
  }
  DropPlaced(key);
  return Status::Ok();
}

}  // namespace e2nvm::core
