#include "core/batch.h"

#include <algorithm>

namespace e2nvm::core {

Status BatchWriter::Put(uint64_t key, const BitVector& value) {
  if (value.size() > batch_bits_) {
    return Status::InvalidArgument("value wider than the batch");
  }
  if (value.empty()) {
    return Status::InvalidArgument("empty value");
  }
  // Supersede any previous version.
  DropPlaced(key);
  DropStaged(key);
  if (current_.used + value.size() > batch_bits_) {
    SealCurrent();
    if (sealed_.size() >= flush_batches_) {
      E2_RETURN_IF_ERROR(FlushSealed());
    }
  }
  return PutStaged(key, value);
}

Status BatchWriter::PutStaged(uint64_t key, const BitVector& value) {
  if (current_.bits.size() != batch_bits_) {
    current_.bits = BitVector(batch_bits_);
    current_.used = 0;
  }
  current_.bits.Overlay(current_.used, value);
  current_.order.emplace_back(key,
                              std::make_pair(current_.used, value.size()));
  current_.used += value.size();
  return Status::Ok();
}

void BatchWriter::SealCurrent() {
  if (current_.order.empty()) {
    // Nothing live staged; recycle the buffer in place.
    current_.used = 0;
    current_.bits = BitVector();
    return;
  }
  sealed_.push_back(std::move(current_));
  current_ = Staged{};
}

Status BatchWriter::FlushSealed() {
  if (sealed_.empty()) return Status::Ok();
  // One grouped placement for every sealed batch: the placer featurizes
  // them into one matrix and runs the model once (PlaceMany).
  std::vector<const BitVector*> values;
  values.reserve(sealed_.size());
  for (const Staged& s : sealed_) values.push_back(&s.bits);
  std::vector<uint64_t> addrs;
  addrs.reserve(values.size());
  Status placed = placer_->PlaceMany(values, &addrs);
  // Record what landed (a prefix of the queue when the batch failed
  // part-way), then drop those buffers.
  for (size_t i = 0; i < addrs.size(); ++i) {
    const Staged& s = sealed_[i];
    ++batches_placed_;
    BatchInfo& info = batches_[addrs[i]];
    for (const auto& [key, span] : s.order) {
      locations_[key] = Location{addrs[i], span.first, span.second};
      ++info.live;
    }
  }
  sealed_.erase(sealed_.begin(),
                sealed_.begin() + static_cast<ptrdiff_t>(addrs.size()));
  return placed;
}

Status BatchWriter::Flush() {
  SealCurrent();
  return FlushSealed();
}

StatusOr<BitVector> BatchWriter::Get(uint64_t key) {
  for (auto& [k, span] : current_.order) {
    if (k == key) {
      return current_.bits.Slice(span.first, span.second);
    }
  }
  for (Staged& s : sealed_) {
    for (auto& [k, span] : s.order) {
      if (k == key) {
        return s.bits.Slice(span.first, span.second);
      }
    }
  }
  auto it = locations_.find(key);
  if (it == locations_.end()) return Status::NotFound("key not found");
  const Location& loc = it->second;
  BitVector batch = placer_->Read(loc.addr, loc.offset + loc.bits);
  return batch.Slice(loc.offset, loc.bits);
}

void BatchWriter::DropPlaced(uint64_t key) {
  auto it = locations_.find(key);
  if (it == locations_.end()) return;
  uint64_t addr = it->second.addr;
  locations_.erase(it);
  auto bit = batches_.find(addr);
  if (bit != batches_.end() && --bit->second.live == 0) {
    batches_.erase(bit);
    (void)placer_->Release(addr);
    ++segments_reclaimed_;
  }
}

void BatchWriter::DropStaged(uint64_t key) {
  for (auto it = current_.order.begin(); it != current_.order.end(); ++it) {
    if (it->first == key) {
      // Restage: old staged bytes become dead space in the buffer (they
      // flush as padding and are never referenced again).
      current_.order.erase(it);
      return;
    }
  }
  for (Staged& s : sealed_) {
    for (auto it = s.order.begin(); it != s.order.end(); ++it) {
      if (it->first == key) {
        s.order.erase(it);
        return;
      }
    }
  }
}

Status BatchWriter::Delete(uint64_t key) {
  for (auto it = current_.order.begin(); it != current_.order.end(); ++it) {
    if (it->first == key) {
      current_.order.erase(it);
      return Status::Ok();
    }
  }
  for (Staged& s : sealed_) {
    for (auto it = s.order.begin(); it != s.order.end(); ++it) {
      if (it->first == key) {
        s.order.erase(it);
        return Status::Ok();
      }
    }
  }
  if (locations_.find(key) == locations_.end()) {
    return Status::NotFound("key not found");
  }
  DropPlaced(key);
  return Status::Ok();
}

}  // namespace e2nvm::core
