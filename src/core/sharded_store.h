#ifndef E2NVM_CORE_SHARDED_STORE_H_
#define E2NVM_CORE_SHARDED_STORE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "core/shard_journal.h"
#include "core/store.h"
#include "nvm/device.h"
#include "nvm/energy.h"

namespace e2nvm::core {

struct ShardedStoreConfig {
  /// Number of independent shards. Keys are hash-partitioned; each shard
  /// owns `shard.num_segments` segments of the one shared device, so the
  /// device holds num_shards * shard.num_segments segments total.
  size_t num_shards = 1;

  /// Per-shard configuration (geometry, model, retraining, fault knobs).
  /// `shard.psi` must be 0 (Start-Gap would migrate cells across shard
  /// ranges) and `shard.pool_threads` is ignored — the sharded store owns
  /// the one compute pool, sized by `pool_threads` below.
  StoreConfig shard;

  /// Worker threads of the shared compute pool (ML kernels + background
  /// retraining for every shard). 0 = serial kernels and, when
  /// `shard.background_retrain` is set, dedicated retrain threads.
  size_t pool_threads = 0;

  /// Attach a persistent redo journal (ShardJournal) to every shard:
  /// PUT/DELETE is appended durably before it touches the shard, so a
  /// crash image replays to a prefix of the applied operations.
  bool journal = false;
  /// Slots per shard journal (appends beyond this fail).
  size_t journal_capacity = 4096;
};

/// A sharded concurrent front-end over N independent E2KvStore shards
/// (MCAS-style hash partitioning): every key is owned by exactly one
/// shard, each shard runs the full E2-NVM pipeline — its own placement
/// engine, model, DAP, index and segment range — behind its own mutex, and
/// all shards share one NvmDevice, one EnergyMeter and one ThreadPool.
///
/// Concurrency model:
///  - Client threads: any number; operations lock only the owning shard,
///    so operations on different shards proceed concurrently.
///  - Shared device: per-segment state is touched only by the owning shard
///    (ranges are disjoint), device-wide counters and the energy meter are
///    internally synchronized (see nvm/device.h, nvm/energy.h).
///  - Background retraining: each shard's engine hands training to the
///    shared pool (BackgroundRetrainer pool mode); the swap happens under
///    that shard's mutex on its next Place.
///
/// Determinism contract: with num_shards == 1 every placement decision,
/// bit flip and retrain trigger is bit-identical to a plain E2KvStore with
/// the same StoreConfig, and with one client thread runs are reproducible
/// at any shard count (pinned by tests/sharded_store_test.cc).
class ShardedStore {
 public:
  static StatusOr<std::unique_ptr<ShardedStore>> Create(
      const ShardedStoreConfig& config);

  /// Joins all background retraining, then tears down shards before the
  /// shared pool/device.
  ~ShardedStore();

  /// Seeds every shard's segment range with initial content. Each shard
  /// cycles the dataset from its start, so a 1-shard store seeds exactly
  /// like E2KvStore::Seed.
  void Seed(const workload::BitDataset& contents);

  /// Trains every shard's model on its seeded contents and populates its
  /// DAP. Serial per shard (deterministic).
  Status Bootstrap();

  /// Inserts or updates `key` on its owning shard.
  Status Put(uint64_t key, const BitVector& value);

  /// Batched insert/update: splits the batch by owning shard (preserving
  /// per-shard order) and runs one E2KvStore::MultiPut per shard, so each
  /// shard's placement model runs once over its sub-batch. A batch whose
  /// keys all hash to one shard is forwarded copy-free. Returns the
  /// first per-shard error, after attempting every shard.
  Status MultiPut(const std::vector<std::pair<uint64_t, BitVector>>& kvs);

  StatusOr<BitVector> Get(uint64_t key);

  Status Delete(uint64_t key);

  /// Total keys across all shards.
  size_t size() const;

  /// Which shard owns `key` (splitmix-style mix, then mod num_shards).
  size_t ShardOf(uint64_t key) const {
    uint64_t x = key * 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<size_t>(x % num_shards_);
  }

  /// Merged view across shards for experiments and benchmarks: summed
  /// engine stats, the shared device counters and the total energy.
  struct Snapshot {
    EngineStats engine;       // Summed across shards (EngineStats::MergeFrom).
    nvm::DeviceStats device;  // The one shared device.
    double total_pj = 0.0;
    size_t keys = 0;
  };
  /// Takes every shard lock (in index order), so the snapshot is
  /// consistent with respect to in-flight operations.
  Snapshot TakeSnapshot();

  /// Adopts any finished shadow models immediately on every shard
  /// (test/harness hook; see PlacementEngine::PumpBackgroundRetrain).
  /// Returns the number of shards that swapped.
  size_t PumpRetrains();

  size_t num_shards() const { return num_shards_; }
  nvm::NvmDevice& device() { return *device_; }
  nvm::EnergyMeter& meter() { return meter_; }
  /// Direct shard access for tests; the caller owns synchronization.
  E2KvStore& shard(size_t i) { return *shards_[i]; }
  /// This shard's journal, or nullptr when journaling is off.
  ShardJournal* journal(size_t i) { return journals_[i].get(); }
  const ShardedStoreConfig& config() const { return config_; }

 private:
  explicit ShardedStore(const ShardedStoreConfig& config);

  /// Journals (if enabled) and applies one shard's sub-batch under its
  /// shard lock.
  Status MultiPutShard(size_t s,
                       const std::vector<std::pair<uint64_t, BitVector>>& kvs);

  ShardedStoreConfig config_;
  size_t num_shards_ = 1;
  nvm::EnergyMeter meter_;
  std::unique_ptr<ThreadPool> pool_;
  bool installed_pool_ = false;
  std::unique_ptr<nvm::NvmDevice> device_;
  std::vector<std::unique_ptr<ShardJournal>> journals_;
  // Shards destruct first (declared last): their engines may still hold
  // background-retrain jobs on pool_ and addresses on device_.
  std::unique_ptr<std::mutex[]> shard_mu_;
  std::vector<std::unique_ptr<E2KvStore>> shards_;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_SHARDED_STORE_H_
