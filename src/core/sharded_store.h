#ifndef E2NVM_CORE_SHARDED_STORE_H_
#define E2NVM_CORE_SHARDED_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "core/shard_journal.h"
#include "core/store.h"
#include "nvm/device.h"
#include "nvm/energy.h"

namespace e2nvm::core {

struct ShardedStoreConfig {
  /// Number of independent shards. Keys are hash-partitioned; each shard
  /// owns `shard.num_segments` segments of the one shared device, so the
  /// device holds num_shards * shard.num_segments segments total.
  size_t num_shards = 1;

  /// Per-shard configuration (geometry, model, retraining, fault knobs).
  /// `shard.psi` must be 0 (Start-Gap would migrate cells across shard
  /// ranges) and `shard.pool_threads` is ignored — the sharded store owns
  /// the one compute pool, sized by `pool_threads` below.
  StoreConfig shard;

  /// Total worker-thread budget for compute, split into one private lane
  /// (ThreadPool) per shard — each lane gets max(1, pool_threads /
  /// num_shards) workers, so a shard's ML kernels and background
  /// retrains run only on its own lane and can never stall another
  /// shard's PlaceMany. 0 = serial kernels and, when
  /// `shard.background_retrain` is set, dedicated retrain threads.
  size_t pool_threads = 0;

  /// Attach a persistent redo journal (ShardJournal) to every shard:
  /// PUT/DELETE is appended durably before it touches the shard, so a
  /// crash image replays to a prefix of the applied operations.
  bool journal = false;
  /// Slots per shard journal. A shard whose journal fills checkpoints
  /// its live state into a fresh journal generation and retries, so
  /// capacity bounds journal size, not operation count — but it must be
  /// >= the shard's live key count for the checkpoint to fit.
  size_t journal_capacity = 4096;

  /// Segments each shard verifies per ScrubTick (see StartBackgroundScrub).
  size_t scrub_segments_per_tick = 32;
};

/// A sharded concurrent front-end over N independent E2KvStore shards
/// (MCAS-style hash partitioning): every key is owned by exactly one
/// shard, each shard runs the full E2-NVM pipeline — its own placement
/// engine, model, DAP, index and segment range — behind its own mutex,
/// and all shards share one NvmDevice and one EnergyMeter.
///
/// Concurrency model (DESIGN.md §13): the steady-state PUT/GET/DELETE
/// path acquires NO lock outside the owning shard.
///  - Client threads: any number; operations lock only the owning shard,
///    so operations on different shards proceed concurrently.
///  - Shared device: per-segment state is touched only by the owning
///    shard (ranges are disjoint); the aggregate counters and the energy
///    meter are striped into per-shard relaxed-atomic lanes
///    (ConfigureAccountingLanes / EnergyMeter::SetLanes) merged only at
///    snapshot time — no device or meter mutex exists.
///  - Compute: each shard owns a private ThreadPool lane; every shard
///    operation installs it as a thread-local ml::ScopedComputePool, so
///    one shard's kernels or background retrain can never queue behind
///    (or stall) another shard's.
///  - DAP: each engine's free list runs in externally-synchronized mode
///    under the shard lock — no pool mutex on Acquire/Release.
///  - Background retraining: each shard's engine hands training to its
///    own lane (BackgroundRetrainer pool mode); the swap happens under
///    that shard's mutex on its next Place.
///
/// Determinism contract: with num_shards == 1 every placement decision,
/// bit flip and retrain trigger is bit-identical to a plain E2KvStore
/// with the same StoreConfig, and with one client thread runs are
/// reproducible at any shard count (pinned by
/// tests/sharded_store_test.cc). Accounting totals are additionally
/// independent of the *client thread count*: per-shard charge streams
/// land on per-shard lanes merged in lane order, so a concurrent run
/// reports byte-identical energy/flip/wear totals to a serial replay of
/// the same per-shard operation streams (tests/energy_accounting_test.cc).
class ShardedStore {
 public:
  static StatusOr<std::unique_ptr<ShardedStore>> Create(
      const ShardedStoreConfig& config);

  /// Joins all background retraining, then tears down shards before the
  /// shared pool/device.
  ~ShardedStore();

  /// Seeds every shard's segment range with initial content. Each shard
  /// cycles the dataset from its start, so a 1-shard store seeds exactly
  /// like E2KvStore::Seed.
  void Seed(const workload::BitDataset& contents);

  /// Trains every shard's model on its seeded contents and populates its
  /// DAP. Serial per shard (deterministic).
  Status Bootstrap();

  /// Inserts or updates `key` on its owning shard.
  Status Put(uint64_t key, const BitVector& value);

  /// Batched insert/update: splits the batch by owning shard (preserving
  /// per-shard order) and runs one E2KvStore::MultiPut per shard, so each
  /// shard's placement model runs once over its sub-batch. A batch whose
  /// keys all hash to one shard is forwarded copy-free. Returns the
  /// first per-shard error, after attempting every shard.
  Status MultiPut(const std::vector<std::pair<uint64_t, BitVector>>& kvs);

  /// Shard-grouped batch entry point: applies a batch already grouped by
  /// owning shard (every key must hash to shard `s`; rejected with
  /// kInvalidArgument otherwise) through one E2KvStore::MultiPut under
  /// shard `s`'s lock. This is the natural path for front-ends that
  /// group requests by destination themselves — net/server's
  /// per-connection ingest stages decoded PUTs into per-shard scratch
  /// and submits each group here, so the zero-allocation PlaceMany batch
  /// path *is* the network write path, with no per-batch vector
  /// materialization in between.
  Status MultiPutShard(size_t s, const std::pair<uint64_t, BitVector>* kvs,
                       size_t n);

  StatusOr<BitVector> Get(uint64_t key);

  /// Allocation-free Get: decodes the value into `out` (capacity reused
  /// across calls); `out` is untouched when the key is missing.
  Status GetInto(uint64_t key, BitVector* out);

  Status Delete(uint64_t key);

  /// Total keys across all shards.
  size_t size() const;

  /// Which shard owns `key` (splitmix-style mix, then mod num_shards).
  size_t ShardOf(uint64_t key) const {
    uint64_t x = key * 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<size_t>(x % num_shards_);
  }

  /// What the integrity scrubber did so far (per shard, mergeable).
  /// Requires shard.integrity_tracking; all zero otherwise.
  struct ScrubStats {
    uint64_t segments_scanned = 0;   // Segment checksum verifications run.
    uint64_t mismatches = 0;         // Silent corruption detected.
    uint64_t repaired = 0;           // Live keys re-placed from a journal copy.
    uint64_t quarantined = 0;        // Corrupt segments with no clean copy.
    uint64_t restamped = 0;          // Drifted free segments adopted.
    uint64_t passes = 0;             // Full shard sweeps completed.
    uint64_t journal_slots_scanned = 0;  // Journal slot CRCs verified.
    uint64_t journal_bad_slots = 0;      // Journal slots that failed CRC.

    void MergeFrom(const ScrubStats& o) {
      segments_scanned += o.segments_scanned;
      mismatches += o.mismatches;
      repaired += o.repaired;
      quarantined += o.quarantined;
      restamped += o.restamped;
      passes += o.passes;
      journal_slots_scanned += o.journal_slots_scanned;
      journal_bad_slots += o.journal_bad_slots;
    }
  };

  /// Merged view across shards for experiments and benchmarks: summed
  /// engine stats, the shared device counters and the total energy.
  struct Snapshot {
    EngineStats engine;       // Summed across shards (EngineStats::MergeFrom).
    nvm::DeviceStats device;  // The one shared device.
    ScrubStats scrub;         // Summed across shards.
    uint64_t journal_checkpoints = 0;  // Checkpoint-and-truncate events.
    double total_pj = 0.0;
    size_t keys = 0;
  };
  /// Takes every shard lock (in index order), so the snapshot is
  /// consistent with respect to in-flight operations.
  Snapshot TakeSnapshot();

  /// Adopts any finished shadow models immediately on every shard
  /// (test/harness hook; see PlacementEngine::PumpBackgroundRetrain).
  /// Returns the number of shards that swapped.
  size_t PumpRetrains();

  // --- Integrity scrubbing (DESIGN.md §12) ---

  /// Verifies up to `budget` of shard `s`'s segments against the
  /// controller's integrity map (under the shard lock). A mismatched
  /// segment holding a live key is repaired by re-placing the key from
  /// its latest CRC-valid journal copy (going through write-verify /
  /// spare-cell repair / quarantine); a corrupt segment with no clean
  /// copy is quarantined; a drifted free segment is adopted (its content
  /// only feeds model training). Completing a sweep also verifies every
  /// committed journal slot. No-op without shard.integrity_tracking.
  void ScrubShard(size_t s, size_t budget);

  /// One scrub round: `scrub_segments_per_tick` segments of every shard.
  void ScrubTick();

  /// Starts the background scrubber: a low-priority self-requeueing task
  /// on shard 0's compute lane running ScrubTick between client
  /// operations. Returns false when there are no lanes (pool_threads ==
  /// 0) or the scrubber is already running.
  bool StartBackgroundScrub();

  /// Stops the background scrubber and waits for it to park. Safe to
  /// call when it never started.
  void StopBackgroundScrub();

  /// Summed scrub counters (takes the shard locks).
  ScrubStats TakeScrubStats();

  /// Flips one raw cell of shard `s`'s segment `seg_off` (silent bit
  /// rot — no stats, no energy; only a scrub can notice). Test hook.
  void InjectBitRot(size_t s, size_t seg_off, size_t bit);

  size_t num_shards() const { return num_shards_; }
  nvm::NvmDevice& device() { return *device_; }
  nvm::EnergyMeter& meter() { return meter_; }
  /// Shard `s`'s private compute lane, or nullptr when pool_threads == 0.
  ThreadPool* shard_lane(size_t s) {
    return lanes_.empty() ? nullptr : lanes_[s].get();
  }
  /// Direct shard access for tests; the caller owns synchronization.
  E2KvStore& shard(size_t i) { return *shards_[i]; }
  /// This shard's journal, or nullptr when journaling is off.
  ShardJournal* journal(size_t i) { return journals_[i].get(); }
  const ShardedStoreConfig& config() const { return config_; }

 private:
  explicit ShardedStore(const ShardedStoreConfig& config);

  /// Journals (if enabled) and applies one shard's sub-batch under its
  /// shard lock; keys are trusted to hash to shard `s` (the public span
  /// entry point validates, MultiPut groups correctly by construction).
  Status MultiPutShardUnchecked(size_t s,
                                const std::pair<uint64_t, BitVector>* kvs,
                                size_t n);

  /// Appends to shard `s`'s journal; on a full journal, checkpoints the
  /// shard's live state into a fresh generation and retries once.
  /// Caller holds the shard lock.
  Status JournalAppend(size_t s, ShardJournal::Op op, uint64_t key,
                       const BitVector& value);

  /// Checkpoint-and-truncate: replaces shard `s`'s journal contents with
  /// one kPut per live key (key order, values peeked from the device),
  /// whose replay is equivalent to the full retired history. Caller
  /// holds the shard lock.
  Status CheckpointShardJournal(size_t s);

  /// ScrubShard body; caller holds the shard lock.
  void ScrubShardLocked(size_t s, size_t budget);

  /// Self-requeueing pool task driving ScrubTick until stopped.
  void ScrubLoop();

  ShardedStoreConfig config_;
  size_t num_shards_ = 1;
  nvm::EnergyMeter meter_;
  /// One compute lane per shard (empty when pool_threads == 0). Declared
  /// before shards_ so lanes outlive the engines whose retrains run on
  /// them.
  std::vector<std::unique_ptr<ThreadPool>> lanes_;
  std::unique_ptr<nvm::NvmDevice> device_;
  std::vector<std::unique_ptr<ShardJournal>> journals_;
  // Per-shard scrub state, guarded by the owning shard's mutex.
  std::vector<ScrubStats> scrub_stats_;
  std::vector<size_t> scrub_cursor_;
  std::vector<uint64_t> checkpoints_;  // Checkpoint-and-truncate events.
  // Background scrubber handshake: the loop parks (running_ -> false)
  // once it observes stop_; StopBackgroundScrub waits for the park.
  std::atomic<bool> scrub_stop_{false};
  std::atomic<bool> scrub_running_{false};
  // Shards destruct first (declared last): their engines may still hold
  // background-retrain jobs on pool_ and addresses on device_.
  std::unique_ptr<std::mutex[]> shard_mu_;
  std::vector<std::unique_ptr<E2KvStore>> shards_;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_SHARDED_STORE_H_
