#include "core/elbow.h"

#include "ml/kmeans.h"

namespace e2nvm::core {

ElbowResult SweepK(const ml::Matrix& latent, size_t k_min, size_t k_max,
                   uint64_t seed) {
  ElbowResult out;
  for (size_t k = k_min; k <= k_max && k <= latent.rows(); ++k) {
    ml::KMeans km({.k = k, .max_iters = 50, .seed = seed});
    if (!km.Fit(latent).ok()) break;
    out.ks.push_back(k);
    out.sse.push_back(km.Sse(latent));
  }
  if (!out.sse.empty()) {
    size_t idx = ml::FindElbow(out.sse) - 1;  // FindElbow is 1-based.
    if (idx < out.ks.size()) out.best_k = out.ks[idx];
  }
  return out;
}

}  // namespace e2nvm::core
