#ifndef E2NVM_CORE_RETRAIN_H_
#define E2NVM_CORE_RETRAIN_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/address_pool.h"

namespace e2nvm::core {

/// Decides *when* to rebuild the model and DAP (§4.1.4 and §5.3):
///
///  1. capacity trigger — some cluster's free list fell below a minimum
///     threshold, so the pool is at risk of failing to serve its cluster
///     ("we set a minimum threshold ... and trigger the re-training
///     process in the background when one of the clusters reaches it");
///  2. efficiency trigger — the recent flips-per-bit ratio degraded past
///     `degradation_factor` times the ratio observed right after the last
///     (re)training, meaning the model no longer reflects memory content
///     (the Fig 17 scenario-3/4 situation).
class RetrainPolicy {
 public:
  struct Config {
    size_t min_free_per_cluster = 2;
    /// Writes in the moving window used to estimate current efficiency.
    size_t window = 256;
    /// Trigger when current ratio > factor * post-train baseline.
    double degradation_factor = 1.6;
    /// Writes to collect after a retrain before freezing the baseline.
    size_t baseline_writes = 128;
  };

  explicit RetrainPolicy(const Config& config) : config_(config) {}

  /// Records the outcome of one placed write.
  void RecordWrite(size_t bits_flipped, size_t bits_written);

  /// Marks a completed (re)training; resets the baseline.
  void OnRetrain();

  /// Combined decision over both triggers.
  bool ShouldRetrain(const DynamicAddressPool& pool) const;

  /// Current moving-window flips-per-bit (diagnostics).
  double CurrentRatio() const;
  double BaselineRatio() const { return baseline_ratio_; }
  const Config& config() const { return config_; }

 private:
  size_t WindowSize() const { return window_count_; }

  Config config_;
  // Fixed-capacity ring over the last `config_.window` writes of
  // (flips, bits): RecordWrite runs on every placement, so the window
  // must not churn heap blocks the way a deque does.
  std::vector<std::pair<size_t, size_t>> window_;
  size_t window_head_ = 0;
  size_t window_count_ = 0;
  size_t window_flips_ = 0;
  size_t window_bits_ = 0;
  size_t writes_since_retrain_ = 0;
  double baseline_ratio_ = -1.0;  // <0 means not yet frozen.
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_RETRAIN_H_
