#ifndef E2NVM_CORE_RETRAIN_H_
#define E2NVM_CORE_RETRAIN_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/address_pool.h"

namespace e2nvm::core {

/// What the policy wants done about the model right now (the escalating
/// drift detector of DESIGN.md §16).
enum class RetrainAction {
  kNone,
  /// Run one cheap inline PartialFit refinement step on the replay ring.
  kRefine,
  /// Rebuild model + DAP from scratch (the pre-incremental behavior).
  kFullRetrain,
};

/// Decides *when* to rebuild the model and DAP (§4.1.4 and §5.3):
///
///  1. capacity trigger — some cluster's free list fell below a minimum
///     threshold, so the pool is at risk of failing to serve its cluster
///     ("we set a minimum threshold ... and trigger the re-training
///     process in the background when one of the clusters reaches it");
///  2. efficiency trigger — the recent flips-per-bit ratio degraded past
///     `degradation_factor` times the ratio observed right after the last
///     (re)training, meaning the model no longer reflects memory content
///     (the Fig 17 scenario-3/4 situation).
///
/// With incremental learning on (`refine_enabled`), Decide() runs the
/// two triggers through an escalation state machine: the efficiency
/// trigger first answers with kRefine (one cheap mini-batch refinement
/// every `refine_interval` writes), and only escalates to kFullRetrain
/// after `max_refine_rounds` consecutive refinements fail to pull the
/// window ratio back under `recovery_factor` x baseline. The capacity
/// trigger always escalates straight to a full retrain — refinement
/// never rebuilds the DAP, so it cannot fix a starving cluster. With
/// refine_enabled off (the default), Decide() is exactly
/// ShouldRetrain() mapped to kNone/kFullRetrain — bit-identical to the
/// pre-incremental schedule.
class RetrainPolicy {
 public:
  struct Config {
    size_t min_free_per_cluster = 2;
    /// Writes in the moving window used to estimate current efficiency.
    size_t window = 256;
    /// Trigger when current ratio > factor * post-train baseline.
    double degradation_factor = 1.6;
    /// Writes to collect after a retrain before freezing the baseline.
    size_t baseline_writes = 128;

    /// --- Incremental refinement (DESIGN.md §16). Defaults reproduce
    /// today's full-retrain-only behavior: refine_enabled is off, and
    /// PlacementEngine derives it from its own incremental config (it is
    /// forced off unless the clusterer supports PartialFit). ---
    bool refine_enabled = false;
    /// Minimum writes between two refinement steps while degraded (lets
    /// each step's effect reach the moving window before the next).
    size_t refine_interval = 64;
    /// Consecutive refinement steps without recovery before the
    /// degradation escalates to a full retrain.
    size_t max_refine_rounds = 8;
    /// Degradation counts as recovered — resetting the escalation
    /// counter — once the window ratio falls back under recovery_factor
    /// * baseline. Keep <= degradation_factor so recovery is reachable.
    double recovery_factor = 1.2;
  };

  explicit RetrainPolicy(const Config& config) : config_(config) {}

  /// Records the outcome of one placed write.
  void RecordWrite(size_t bits_flipped, size_t bits_written);

  /// Marks a completed (re)training; resets the baseline and the
  /// refinement escalation state.
  void OnRetrain();

  /// Records a completed refinement step (advances the escalation
  /// counter and restarts the refine interval).
  void OnRefine();

  /// Combined decision over both triggers.
  bool ShouldRetrain(const DynamicAddressPool& pool) const;

  /// Three-way decision of the escalating drift detector (see class
  /// comment). Non-const: observing a recovered window resets the
  /// escalation counter.
  RetrainAction Decide(const DynamicAddressPool& pool);

  /// Current moving-window flips-per-bit (diagnostics).
  double CurrentRatio() const;
  double BaselineRatio() const { return baseline_ratio_; }
  /// Consecutive refinement steps in the current degradation episode.
  size_t refine_rounds() const { return refine_rounds_; }
  const Config& config() const { return config_; }

 private:
  size_t WindowSize() const { return window_count_; }

  Config config_;
  // Fixed-capacity ring over the last `config_.window` writes of
  // (flips, bits): RecordWrite runs on every placement, so the window
  // must not churn heap blocks the way a deque does.
  std::vector<std::pair<size_t, size_t>> window_;
  size_t window_head_ = 0;
  size_t window_count_ = 0;
  size_t window_flips_ = 0;
  size_t window_bits_ = 0;
  size_t writes_since_retrain_ = 0;
  double baseline_ratio_ = -1.0;  // <0 means not yet frozen.
  // Escalation state of the drift detector (refine_enabled mode).
  size_t refine_rounds_ = 0;
  size_t writes_since_refine_ = 0;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_RETRAIN_H_
