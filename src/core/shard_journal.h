#ifndef E2NVM_CORE_SHARD_JOURNAL_H_
#define E2NVM_CORE_SHARD_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "pmem/allocator.h"
#include "pmem/pool.h"

namespace e2nvm::core {

/// A per-shard persistent redo journal of logical operations, the durable
/// companion to a ShardedStore shard (the simulated NVM device itself is
/// volatile state of the simulator; the journal is what a crash leaves
/// behind, in the style of MCAS/FlatStore per-core logs).
///
/// Layout: one pmem::Pool per journal holding TWO fixed-capacity slot
/// halves preallocated at creation time — appends never touch allocator
/// state, so a crash mid-append can only be about the record itself, never
/// heap metadata. Only the half named by `Header::active_half` is live;
/// the other is the staging area for checkpoint-and-truncate. Each Append
/// is one undo-log transaction:
///
///   1. write the record into active[count], CRC32C-stamped
///                                          (dead bytes until step 3)
///   2. AddRange(header.count)              (undo image of the old count)
///   3. header.count++                      (the commit point)
///   4. Commit                              (log back to idle)
///
/// A crash at any persist ordinal inside Append leaves either the old count
/// (record invisible; partial slot bytes are dead) or, after recovery rolls
/// back an active transaction, exactly the pre-append state. Replay of a
/// crash image therefore yields a prefix of the appended operations —
/// asserted per-persist-ordinal by tests/crash_recovery_test.cc and
/// continuously by tests/recovery_fuzz_test.cc.
///
/// Checkpoint(records) writes a fresh generation into the inactive half
/// and flips {count, active_half, generation} in one transaction, so a
/// crash during a checkpoint replays either the full old history or
/// exactly the new checkpoint — never a mix.
///
/// Integrity: every committed slot carries a CRC32C over its header
/// fields and value words, and the journal geometry carries its own CRC.
/// Replay verifies both; see ReplayResult for the torn-tail vs. mid-log
/// corruption semantics.
///
/// Thread-compatibility: not synchronized; the owning shard serializes
/// appends behind its shard mutex.
class ShardJournal {
 public:
  enum class Op : uint64_t { kPut = 1, kDelete = 2 };

  /// One replayed logical operation. `value` is empty for kDelete.
  struct Record {
    Op op;
    uint64_t key;
    BitVector value;
  };

  /// Outcome of a checksum-verified replay. `records` is always a clean
  /// prefix of the journaled history:
  ///  - !torn_tail && !corrupted: every committed record was valid.
  ///  - torn_tail: the LAST committed record failed its CRC — the record
  ///    bytes tore on media after the count bump. Replay truncates it
  ///    cleanly; the prefix before it is intact.
  ///  - corrupted: a record strictly before the last failed its CRC
  ///    (mid-log bit rot). `records` holds the valid prefix before
  ///    `first_bad_slot`; everything at and after it is untrusted and the
  ///    caller should quarantine the journal's tail, not replay it.
  struct ReplayResult {
    std::vector<Record> records;
    size_t committed_count = 0;  // Header count at the crash.
    uint64_t generation = 0;     // Checkpoint generation replayed.
    bool torn_tail = false;
    bool corrupted = false;
    size_t first_bad_slot = 0;   // Meaningful when torn_tail || corrupted.
  };

  /// Creates an anonymous-pool journal with room for `capacity` records of
  /// up to `max_value_bits` bits each (per half).
  static StatusOr<std::unique_ptr<ShardJournal>> Create(
      size_t capacity, size_t max_value_bits);

  /// Appends one record transactionally. `value` must be empty for
  /// kDelete and at most max_value_bits wide for kPut. Fails with
  /// kResourceExhausted on a full journal — the owner is expected to
  /// Checkpoint() live state and retry (ShardedStore does).
  Status Append(Op op, uint64_t key, const BitVector& value);

  /// Atomically replaces the journal contents with `records` as a fresh
  /// generation: the records are staged into the inactive half (dead
  /// bytes), then one undo-logged transaction flips {count, active_half,
  /// generation}. `records.size()` must be <= capacity; the caller
  /// passes the live state of the shard, whose replay is equivalent to
  /// replaying the full retired history.
  Status Checkpoint(const std::vector<Record>& records);

  /// Records appended so far (the persistent count).
  size_t count() const;
  size_t capacity() const { return capacity_; }
  size_t max_value_bits() const { return max_value_bits_; }
  /// Checkpoint generations completed (0 until the first Checkpoint).
  uint64_t generation() const;

  /// The backing pool, for CrashPoint attachment and snapshots.
  pmem::Pool& pool() { return *pool_; }

  /// Byte image of the journal as a power loss right now would leave it.
  std::vector<uint8_t> SnapshotImage() const {
    return pool_->SnapshotImage();
  }

  /// Latest committed, CRC-valid value for `key` in the live journal:
  /// scans the active half backward and returns the newest kPut value,
  /// or nullopt if the key's latest valid record is a delete (or it was
  /// never journaled). The scrubber's redundant copy for repair.
  std::optional<BitVector> FindLatestPut(uint64_t key) const;

  /// Verifies the CRC of every committed slot in the live journal.
  /// Returns the number of slots whose checksum failed; `slots_scanned`
  /// (optional) receives the committed count.
  size_t VerifySlots(size_t* slots_scanned = nullptr) const;

  /// Reopens `image` (running crash recovery) and returns every committed
  /// record in append order. A torn tail is truncated silently; mid-log
  /// corruption fails with kDataLoss. Use ReplayImageVerified when the
  /// recovered prefix of a corrupt journal is still wanted.
  static StatusOr<std::vector<Record>> ReplayImage(
      const std::vector<uint8_t>& image);

  /// Checksum-verified replay with the full torn-tail / mid-log report.
  /// Fails only when the image's pool or journal geometry is unusable;
  /// record-level corruption is reported in the result, with the valid
  /// prefix recovered.
  static StatusOr<ReplayResult> ReplayImageVerified(
      const std::vector<uint8_t>& image);

 private:
  /// Persistent journal header, stored at the pool root offset, followed
  /// immediately by the two slot halves.
  struct Header {
    static constexpr uint64_t kMagic = 0x5A4A4E414C4C5A31ull;
    uint64_t magic;
    uint64_t capacity;
    uint64_t slot_bytes;
    uint64_t max_value_bits;
    uint64_t geometry_crc;  // CRC32C of the four fields above.
    // Mutable state: `count` is flipped under the undo log (and together
    // with `active_half`/`generation` during a checkpoint, so the trio
    // must stay contiguous for one AddRange).
    uint64_t count;
    uint64_t active_half;   // 0 or 1: which slot half replay reads.
    uint64_t generation;    // Checkpoints completed.
  };

  /// Per-slot record header, followed by the value words.
  struct SlotHeader {
    uint64_t op;
    uint64_t key;
    uint64_t value_bits;
    uint64_t crc;  // CRC32C of op/key/value_bits + value words (low 32).
  };

  ShardJournal() = default;

  static size_t SlotBytes(size_t max_value_bits) {
    return sizeof(SlotHeader) + ((max_value_bits + 63) / 64) * 8;
  }

  /// Offset of slot `i` of half `half`.
  pmem::PoolOffset SlotOff(uint64_t half, uint64_t i) const {
    return header_off_ + sizeof(Header) +
           (half * capacity_ + i) * slot_bytes_;
  }

  /// Fills one slot (record bytes + CRC stamp) and persists it.
  void FillSlot(pmem::PoolOffset slot_off, Op op, uint64_t key,
                const BitVector& value);

  std::unique_ptr<pmem::Pool> pool_;
  pmem::PoolOffset header_off_ = pmem::kNullOffset;
  size_t capacity_ = 0;
  size_t max_value_bits_ = 0;
  size_t slot_bytes_ = 0;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_SHARD_JOURNAL_H_
