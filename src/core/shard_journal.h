#ifndef E2NVM_CORE_SHARD_JOURNAL_H_
#define E2NVM_CORE_SHARD_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "pmem/allocator.h"
#include "pmem/pool.h"

namespace e2nvm::core {

/// A per-shard persistent redo journal of logical operations, the durable
/// companion to a ShardedStore shard (the simulated NVM device itself is
/// volatile state of the simulator; the journal is what a crash leaves
/// behind, in the style of MCAS/FlatStore per-core logs).
///
/// Layout: one pmem::Pool per journal holding a fixed-capacity slot array
/// preallocated at creation time — appends never touch allocator state, so
/// a crash mid-append can only be about the record itself, never heap
/// metadata. Each Append is one undo-log transaction:
///
///   1. write the record into slot[count]   (dead bytes until step 3)
///   2. AddRange(header.count)              (undo image of the old count)
///   3. header.count++                      (the commit point)
///   4. Commit                              (log back to idle)
///
/// A crash at any persist ordinal inside Append leaves either the old count
/// (record invisible; partial slot bytes are dead) or, after recovery rolls
/// back an active transaction, exactly the pre-append state. Replay of a
/// crash image therefore yields a prefix of the appended operations —
/// asserted per-persist-ordinal by tests/crash_recovery_test.cc.
///
/// Thread-compatibility: not synchronized; the owning shard serializes
/// appends behind its shard mutex.
class ShardJournal {
 public:
  enum class Op : uint64_t { kPut = 1, kDelete = 2 };

  /// One replayed logical operation. `value` is empty for kDelete.
  struct Record {
    Op op;
    uint64_t key;
    BitVector value;
  };

  /// Creates an anonymous-pool journal with room for `capacity` records of
  /// up to `max_value_bits` bits each.
  static StatusOr<std::unique_ptr<ShardJournal>> Create(
      size_t capacity, size_t max_value_bits);

  /// Appends one record transactionally. `value` must be empty for
  /// kDelete and at most max_value_bits wide for kPut.
  Status Append(Op op, uint64_t key, const BitVector& value);

  /// Records appended so far (the persistent count).
  size_t count() const;
  size_t capacity() const { return capacity_; }
  size_t max_value_bits() const { return max_value_bits_; }

  /// The backing pool, for CrashPoint attachment and snapshots.
  pmem::Pool& pool() { return *pool_; }

  /// Byte image of the journal as a power loss right now would leave it.
  std::vector<uint8_t> SnapshotImage() const {
    return pool_->SnapshotImage();
  }

  /// Reopens `image` (running crash recovery) and returns every committed
  /// record in append order.
  static StatusOr<std::vector<Record>> ReplayImage(
      const std::vector<uint8_t>& image);

 private:
  /// Persistent journal header, stored at the pool root offset, followed
  /// immediately by the slot array.
  struct Header {
    static constexpr uint64_t kMagic = 0x5A4A4E414C4C5A31ull;
    uint64_t magic;
    uint64_t capacity;
    uint64_t slot_bytes;
    uint64_t max_value_bits;
    uint64_t count;
  };

  /// Per-slot record header, followed by the value words.
  struct SlotHeader {
    uint64_t op;
    uint64_t key;
    uint64_t value_bits;
  };

  ShardJournal() = default;

  static size_t SlotBytes(size_t max_value_bits) {
    return sizeof(SlotHeader) + ((max_value_bits + 63) / 64) * 8;
  }

  std::unique_ptr<pmem::Pool> pool_;
  pmem::PoolOffset header_off_ = pmem::kNullOffset;
  size_t capacity_ = 0;
  size_t max_value_bits_ = 0;
  size_t slot_bytes_ = 0;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_SHARD_JOURNAL_H_
