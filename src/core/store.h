#ifndef E2NVM_CORE_STORE_H_
#define E2NVM_CORE_STORE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/e2_model.h"
#include "core/placement_engine.h"
#include "index/rbtree.h"
#include "nvm/controller.h"
#include "nvm/device.h"
#include "schemes/schemes.h"
#include "workload/datasets.h"

namespace e2nvm::core {

/// Configuration of a full E2-NVM key-value store instance.
struct StoreConfig {
  /// NVM geometry.
  size_t num_segments = 1024;
  size_t segment_bits = 2048;
  /// Wear-leveling period of the underlying controller (0 = disabled;
  /// the device then gets one extra physical segment for the gap).
  uint64_t psi = 0;
  bool track_bit_wear = false;
  nvm::PcmParams pcm;

  /// Model configuration (input_dim is forced to segment_bits).
  E2ModelConfig model;

  /// Placement engine knobs.
  bool search_best_in_cluster = false;
  bool auto_retrain = false;
  /// Train replacement models on a background thread and swap them in
  /// atomically instead of stalling a PUT for the whole rebuild (implies
  /// auto_retrain; see PlacementEngine::EnableBackgroundRetrain).
  bool background_retrain = false;
  /// Worker threads for the parallel ML kernels (0 = serial kernels,
  /// bit-identical to the single-threaded implementation). The store
  /// owns the pool and installs it as the process compute pool
  /// (ml::SetComputePool) if none is installed yet.
  size_t pool_threads = 0;
  /// Retrain triggers (capacity + flip-efficiency) and, when
  /// `incremental_learning` is on, the drift-escalation thresholds
  /// (refine_interval, max_refine_rounds, recovery_factor). The
  /// refine_enabled bit itself is derived from `incremental_learning`
  /// by the engine — leave it alone here.
  RetrainPolicy::Config retrain;
  /// Placements skipped after a failed auto-retrain (doubles per
  /// consecutive failure); see PlacementEngine::Config.
  size_t retrain_backoff_writes = 64;

  /// --- Incremental online learning (DESIGN.md §16) ---
  /// Feed a per-shard replay ring with every committed segment image and
  /// answer model drift with inline mini-batch PartialFit refinement
  /// steps (warm VAE SGD + warm-started k-means) instead of launching a
  /// full retrain, escalating to one only on persistent degradation or
  /// the capacity trigger. Off by default: placements, flips, and the
  /// retrain schedule stay bit-identical to the full-retrain-only store.
  bool incremental_learning = false;
  /// Replay-ring rows per engine/shard (one allocation at build time;
  /// the PUT-path append never allocates).
  size_t replay_ring_capacity = 256;
  /// Rows per refinement step (the most recent writes, oldest first).
  size_t refine_batch = 16;
  /// Serve placements through the allocating reference inference path
  /// instead of the scratch/batched fast path (bit-identical results;
  /// for the equivalence tests and A/B debugging).
  bool reference_inference = false;

  /// Fault tolerance: read-back verify of every segment write, with up to
  /// `max_write_retries` reprogram attempts before spare-cell repair and,
  /// failing that, quarantine. Only meaningful when a FaultInjector is
  /// attached to the device.
  bool verify_writes = false;
  size_t max_write_retries = 3;
  /// Record a CRC32C of every committed segment image in the controller
  /// so an integrity scrubber can detect silent in-array corruption
  /// (see MemoryController::VerifySegment). ~5 bytes/segment.
  bool integrity_tracking = false;
};

/// The persistent key-value store of Fig 3: an RB-tree data index in DRAM,
/// an NVM device behind a memory controller (DCW write scheme, optional
/// Start-Gap wear leveling), and the E2-NVM placement engine in between.
///
/// Operations implement Algorithms 1 and 2:
///   PUT/UPDATE: predict cluster -> pop address from DAP -> differential
///               write -> index update (old address recycled on update);
///   DELETE:     index lookup -> flag reset -> recycle address by content;
///   GET/SCAN:   index lookup -> device read.
class E2KvStore {
 public:
  /// Builds the device/controller/model/engine stack. Seed() +
  /// Bootstrap() must run before operations.
  static StatusOr<std::unique_ptr<E2KvStore>> Create(
      const StoreConfig& config);

  /// How a shard attaches to resources owned by a ShardedStore.
  struct ShardAttachment {
    /// The shared device, already sized to cover every shard. Must
    /// outlive the store.
    nvm::NvmDevice* device = nullptr;
    /// First logical segment of this shard's range; the shard manages
    /// [first_segment, first_segment + config.num_segments).
    uint64_t first_segment = 0;
    /// Shared worker pool for background retraining (nullptr keeps the
    /// dedicated-thread retrainer). Must outlive the store.
    ThreadPool* retrain_pool = nullptr;
  };

  /// Builds one shard of a ShardedStore: the same model/engine/index
  /// stack as Create, but over a borrowed device and a segment range
  /// instead of an owned device. `config.num_segments` is the *shard's*
  /// segment count; `config.psi` must be 0 (Start-Gap would migrate
  /// cells across shard ranges) and `config.pool_threads` is ignored
  /// (the ShardedStore owns the one compute pool). With first_segment 0
  /// and a device covering exactly config.num_segments, behavior is
  /// bit-identical to Create (the shards=1 determinism contract,
  /// pinned by tests/sharded_store_test.cc).
  static StatusOr<std::unique_ptr<E2KvStore>> CreateShard(
      const StoreConfig& config, const ShardAttachment& attach);

  /// Joins any background retraining and uninstalls the compute pool if
  /// this store installed it.
  ~E2KvStore();

  /// Seeds device segments with initial content ("old data"), cycling
  /// through `contents` items resized to the segment width.
  void Seed(const workload::BitDataset& contents);

  /// Trains the model on the seeded contents and populates the DAP.
  Status Bootstrap();

  /// Inserts or updates `key`. The value may be narrower than a segment.
  Status Put(uint64_t key, const BitVector& value);

  /// Batched insert/update (§4.1.4): stages every value, runs the
  /// placement model once over the whole batch (one encoder GEMM + one
  /// fused assignment), then writes in order. Per-key results match
  /// sequential Puts, with one scheduling difference: addresses freed by
  /// updates are recycled after the whole batch has been placed, not
  /// interleaved between placements.
  Status MultiPut(const std::vector<std::pair<uint64_t, BitVector>>& kvs);

  /// Span form of MultiPut — the entry point for callers that stage
  /// batches in reusable scratch (the network front-end's per-connection
  /// shard batches) instead of materializing a vector per batch.
  /// Identical semantics; steady-state (every key already inserted,
  /// scratch at working size) it allocates nothing.
  Status MultiPut(const std::pair<uint64_t, BitVector>* kvs, size_t n);

  StatusOr<BitVector> Get(uint64_t key);

  /// Allocation-free Get: decodes the key's value into `out` (capacity
  /// reused across calls). `out` is untouched when the key is missing.
  Status GetInto(uint64_t key, BitVector* out);

  /// Zero-cost Get (no read energy, no read disturb): decodes the key's
  /// committed cells as they are. Software bookkeeping for checkpoints
  /// and scrub repair, not a datapath read.
  StatusOr<BitVector> PeekValue(uint64_t key) const;

  Status Delete(uint64_t key);

  /// Up to `count` key-value pairs with key >= `start`, in key order.
  std::vector<std::pair<uint64_t, BitVector>> Scan(uint64_t start,
                                                   size_t count);

  size_t size() const { return tree_.size(); }

  // --- Introspection for experiments ---
  nvm::NvmDevice& device() { return *dev_; }
  /// First logical segment this store manages (0 unless a shard).
  uint64_t first_segment() const { return first_segment_; }
  nvm::MemoryController& controller() { return *ctrl_; }
  PlacementEngine& engine() { return *engine_; }
  E2Model& model() { return *model_; }
  nvm::EnergyMeter& meter() { return meter_; }
  const index::RbTree& tree() const { return tree_; }
  const StoreConfig& config() const { return config_; }

 private:
  explicit E2KvStore(const StoreConfig& config);

  StoreConfig config_;
  nvm::EnergyMeter meter_;
  std::unique_ptr<ThreadPool> pool_;
  bool installed_pool_ = false;
  std::unique_ptr<nvm::NvmDevice> device_;  // Owned (standalone mode).
  nvm::NvmDevice* dev_ = nullptr;  // The device in use (owned or shared).
  uint64_t first_segment_ = 0;
  schemes::Dcw scheme_;
  std::unique_ptr<nvm::MemoryController> ctrl_;
  std::unique_ptr<E2Model> model_;
  std::unique_ptr<PlacementEngine> engine_;
  index::RbTree tree_;
  std::unordered_map<uint64_t, size_t> value_bits_;
  // MultiPut staging scratch, reused across batches so steady-state
  // batched PUTs stay off the heap (safe under the store's single-caller
  // contract; MultiPut is not reentrant).
  std::vector<const BitVector*> mp_values_;
  std::vector<uint64_t> mp_addrs_;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_STORE_H_
