#ifndef E2NVM_CORE_BATCH_H_
#define E2NVM_CORE_BATCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "index/value_placer.h"

namespace e2nvm::core {

/// Write batching for small key-value pairs (§4.1.4: "To overcome the
/// overhead incurred due to small key-value pairs, batching can be
/// applied so that small writes are grouped together to form larger
/// writes to memory segments. This way, E2-NVM needs to map the free
/// memory locations based on the batch size rather than the key-value
/// pair size").
///
/// Small values accumulate in a DRAM staging buffer; when the buffer
/// reaches the segment payload, it is placed as one segment-sized write
/// through the underlying ValuePlacer (E2-NVM or arbitrary). The writer
/// keeps a key -> (segment address, offset, width) map, serves reads by
/// slicing the stored batch, and reclaims a segment once every pair in
/// it has been deleted or superseded.
class BatchWriter {
 public:
  /// `batch_bits` is the grouped-write width — at most the placer's
  /// segment width. `Flush()` or a full buffer triggers placement.
  BatchWriter(index::ValuePlacer* placer, size_t batch_bits)
      : placer_(placer), batch_bits_(batch_bits) {}

  ~BatchWriter() = default;
  BatchWriter(const BatchWriter&) = delete;
  BatchWriter& operator=(const BatchWriter&) = delete;

  /// Stages (or restages) a small value; flushes automatically when the
  /// staging buffer cannot take the pair. Values wider than batch_bits
  /// are rejected.
  Status Put(uint64_t key, const BitVector& value);

  /// Reads a value from the staging buffer or from NVM.
  StatusOr<BitVector> Get(uint64_t key);

  /// Removes a key. The slot becomes garbage; when the last live pair of
  /// a placed batch dies, the segment address is released to the placer.
  Status Delete(uint64_t key);

  /// Forces the staging buffer out as a (possibly partial) batch.
  Status Flush();

  size_t size() const { return locations_.size() + staged_order_.size(); }
  size_t staged_pairs() const { return staged_order_.size(); }
  uint64_t batches_placed() const { return batches_placed_; }
  uint64_t segments_reclaimed() const { return segments_reclaimed_; }

 private:
  struct Location {
    uint64_t addr;    // Segment the batch was placed at.
    size_t offset;    // Bit offset within the batch.
    size_t bits;      // Value width.
  };
  struct BatchInfo {
    size_t live = 0;  // Live pairs still referencing the segment.
  };

  Status PutStaged(uint64_t key, const BitVector& value);
  void DropPlaced(uint64_t key);

  index::ValuePlacer* placer_;
  size_t batch_bits_;

  // Staging buffer (DRAM).
  BitVector staging_{};
  std::vector<std::pair<uint64_t, std::pair<size_t, size_t>>>
      staged_order_;  // key -> (offset, bits)
  size_t staged_bits_ = 0;

  std::unordered_map<uint64_t, Location> locations_;
  std::unordered_map<uint64_t, BatchInfo> batches_;
  uint64_t batches_placed_ = 0;
  uint64_t segments_reclaimed_ = 0;
};

}  // namespace e2nvm::core

#endif  // E2NVM_CORE_BATCH_H_
